/**
 * @file
 * mediaworm_sim - command-line front-end over the whole library.
 *
 * Runs one experiment point (wormhole or PCS) with every knob the
 * paper varies exposed as an option, and prints either a
 * human-readable report or a CSV row for scripting.
 *
 *   mediaworm_sim --load 0.9 --mix 0.8 --scheduler fifo
 *   mediaworm_sim --topology fat-mesh --load 0.8 --csv
 *   mediaworm_sim --pcs --load 0.87
 */

#include <cstdio>
#include <string>

#include "config/options.hh"
#include "core/mediaworm.hh"
#include "pcs/pcs_experiment.hh"

namespace {

using namespace mediaworm;

int
runPcs(double load, int frames, double scale, long long seed, bool csv)
{
    pcs::PcsExperimentConfig cfg;
    cfg.traffic.inputLoad = load;
    cfg.traffic.warmupFrames = 2;
    cfg.traffic.measuredFrames = frames;
    cfg.timeScale = scale;
    cfg.seed = static_cast<std::uint64_t>(seed);

    const pcs::PcsExperimentResult r = pcs::runPcsExperiment(cfg);
    if (csv) {
        std::printf("pcs,%.3f,%.4f,%.4f,%llu,%llu,%llu\n", load,
                    r.meanIntervalNormMs, r.stddevIntervalNormMs,
                    static_cast<unsigned long long>(r.attempts),
                    static_cast<unsigned long long>(r.established),
                    static_cast<unsigned long long>(r.dropped));
        return 0;
    }
    std::printf("PCS router at load %.2f\n", load);
    std::printf("  d = %.2f ms, sigma_d = %.3f ms (%llu intervals)\n",
                r.meanIntervalNormMs, r.stddevIntervalNormMs,
                static_cast<unsigned long long>(r.intervalSamples));
    std::printf("  connections: %llu attempts, %llu established, "
                "%llu dropped\n",
                static_cast<unsigned long long>(r.attempts),
                static_cast<unsigned long long>(r.established),
                static_cast<unsigned long long>(r.dropped));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    double load = 0.8;
    double mix = 0.8;
    int vcs = 16;
    int buffers = 20;
    int link_mbps = 400;
    int message_flits = 20;
    int frames = 6;
    double scale = 0.1;
    int seed = 1;
    int scheduler = 2;  // virtual-clock
    int crossbar = 0;   // multiplexed
    int topology = 0;   // single-switch
    int rt_kind = 0;    // vbr
    int placement = 0;  // balanced
    bool pcs_mode = false;
    bool csv = false;
    bool dump_stats = false;

    config::OptionParser parser(
        "mediaworm_sim",
        "Flit-level simulation of the MediaWorm QoS router "
        "(HPCA 2000)");
    parser.addDouble("load", "offered input load (fraction of link)",
                     &load, 0.01, 1.5);
    parser.addDouble("mix", "real-time share x/(x+y) of the load",
                     &mix, 0.0, 1.0);
    parser.addInt("vcs", "virtual channels per physical channel",
                  &vcs, 1, 256);
    parser.addInt("buffers", "flit buffer depth per VC", &buffers, 1,
                  4096);
    parser.addInt("link-mbps", "physical channel bandwidth",
                  &link_mbps, 1, 100000);
    parser.addInt("message-flits", "real-time message size",
                  &message_flits, 2, 100000);
    parser.addInt("frames", "measured frames per stream", &frames, 1,
                  1000);
    parser.addDouble("scale", "time-scale compression (1 = paper's "
                              "full MPEG-2 workload)",
                     &scale, 0.001, 1.0);
    parser.addInt("seed", "random seed", &seed, 0, 1 << 30);
    parser.addChoice("scheduler", "multiplexer discipline",
                     {"fifo", "round-robin", "virtual-clock",
                      "weighted-rr"},
                     &scheduler);
    parser.addChoice("crossbar", "crossbar organisation",
                     {"multiplexed", "full"}, &crossbar);
    parser.addChoice("topology", "interconnect",
                     {"single-switch", "fat-mesh"}, &topology);
    parser.addChoice("rt-kind", "real-time traffic model",
                     {"vbr", "cbr", "mpeg-gop"}, &rt_kind);
    parser.addChoice("placement", "stream placement policy",
                     {"balanced", "uniform-random"}, &placement);
    parser.addFlag("pcs", "simulate the PCS baseline instead",
                   &pcs_mode);
    parser.addFlag("csv", "emit one CSV row instead of a report",
                   &csv);
    parser.addFlag("stats", "dump the full component stat registry",
                   &dump_stats);

    std::string error;
    if (!parser.parse(argc, argv, &error)) {
        std::fprintf(stderr, "%s\n%s", error.c_str(),
                     parser.help().c_str());
        return 2;
    }
    if (parser.helpRequested()) {
        std::printf("%s", parser.help().c_str());
        return 0;
    }

    if (pcs_mode)
        return runPcs(load, frames, scale, seed, csv);

    core::ExperimentConfig cfg;
    cfg.router.numVcs = vcs;
    cfg.router.flitBufferDepth = buffers;
    cfg.router.linkBandwidthMbps = link_mbps;
    cfg.router.scheduler =
        static_cast<config::SchedulerKind>(scheduler);
    cfg.router.crossbar = static_cast<config::CrossbarKind>(crossbar);
    cfg.network.topology = static_cast<config::TopologyKind>(topology);
    cfg.traffic.inputLoad = load;
    cfg.traffic.realTimeFraction = mix;
    cfg.traffic.realTimeKind =
        static_cast<config::RealTimeKind>(rt_kind);
    cfg.traffic.streamPlacement =
        static_cast<config::StreamPlacement>(placement);
    cfg.traffic.messageFlits = message_flits;
    cfg.traffic.warmupFrames = 2;
    cfg.traffic.measuredFrames = frames;
    cfg.timeScale = scale;
    cfg.seed = static_cast<std::uint64_t>(seed);

    const core::ExperimentResult r = core::runExperiment(cfg);

    if (csv) {
        std::printf("wormhole,%.3f,%.3f,%s,%s,%d,%.4f,%.4f,%.2f,%.2f\n",
                    load, mix, config::toString(cfg.router.scheduler),
                    config::toString(cfg.router.crossbar), vcs,
                    r.meanIntervalNormMs, r.stddevIntervalNormMs,
                    r.beLatencyUs, r.beNetworkLatencyUs);
        return 0;
    }

    std::printf("MediaWorm %s | %s\n",
                cfg.router.describe().c_str(),
                cfg.network.describe().c_str());
    std::printf("Workload: %s\n\n", cfg.traffic.describe().c_str());
    std::printf("Real-time: d = %.2f ms, sigma_d = %.3f ms "
                "(%llu intervals, %d streams)\n",
                r.meanIntervalNormMs, r.stddevIntervalNormMs,
                static_cast<unsigned long long>(r.intervalSamples),
                r.rtStreams);
    std::printf("Best-effort: %.1f us total, %.1f us in-network "
                "(%llu messages)\n",
                r.beLatencyUs, r.beNetworkLatencyUs,
                static_cast<unsigned long long>(r.beMessages));
    std::printf("Simulated %.1f ms in %.2f s (%llu events)%s\n",
                r.simulatedMs, r.wallSeconds,
                static_cast<unsigned long long>(r.eventsFired),
                r.truncated ? " [TRUNCATED]" : "");

    if (dump_stats) {
        // Re-run with a registry attached would double the cost;
        // instead report the aggregate counters we already have.
        std::printf("\nframes delivered: %llu\nflits delivered: "
                    "%llu\n",
                    static_cast<unsigned long long>(r.framesDelivered),
                    static_cast<unsigned long long>(
                        r.flitsDelivered));
    }
    return 0;
}
