/**
 * @file
 * mediaworm_sim - command-line front-end over the whole library.
 *
 * Runs one experiment point (wormhole or PCS) - or a multi-point
 * load sweep - with every knob the paper varies exposed as an
 * option. Points x replications execute on the parallel campaign
 * engine; output is a human-readable report, a CSV table or a JSON
 * campaign artifact.
 *
 *   mediaworm_sim --load 0.9 --mix 0.8 --scheduler fifo
 *   mediaworm_sim --topology fat-mesh --load 0.8 --csv
 *   mediaworm_sim --pcs --load 0.87
 *   mediaworm_sim --loads 0.6,0.8,0.9 --jobs 8 --replications 5 \
 *       --json-out out.json
 *
 * The JSON artifact (schema mediaworm-campaign-v3) is by default a
 * pure function of configuration + seed: byte-identical for any
 * --jobs value. Pass --json-timing to append the wall-clock timing
 * section (making the file host- and run-dependent).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/artifact.hh"
#include "config/options.hh"
#include "core/mediaworm.hh"
#include "obs/chrome_trace.hh"
#include "pcs/pcs_experiment.hh"

namespace {

using namespace mediaworm;

int
runPcs(double load, int frames, double scale, long long seed, bool csv)
{
    pcs::PcsExperimentConfig cfg;
    cfg.traffic.inputLoad = load;
    cfg.traffic.warmupFrames = 2;
    cfg.traffic.measuredFrames = frames;
    cfg.timeScale = scale;
    cfg.seed = static_cast<std::uint64_t>(seed);

    const pcs::PcsExperimentResult r = pcs::runPcsExperiment(cfg);
    if (csv) {
        std::printf("pcs,%.3f,%.4f,%.4f,%llu,%llu,%llu\n", load,
                    r.meanIntervalNormMs, r.stddevIntervalNormMs,
                    static_cast<unsigned long long>(r.attempts),
                    static_cast<unsigned long long>(r.established),
                    static_cast<unsigned long long>(r.dropped));
        return 0;
    }
    std::printf("PCS router at load %.2f\n", load);
    std::printf("  d = %.2f ms, sigma_d = %.3f ms (%llu intervals)\n",
                r.meanIntervalNormMs, r.stddevIntervalNormMs,
                static_cast<unsigned long long>(r.intervalSamples));
    std::printf("  connections: %llu attempts, %llu established, "
                "%llu dropped\n",
                static_cast<unsigned long long>(r.attempts),
                static_cast<unsigned long long>(r.established),
                static_cast<unsigned long long>(r.dropped));
    return 0;
}

/** Parses a comma-separated load list; empty on error. */
std::vector<double>
parseLoads(const std::string& text)
{
    std::vector<double> loads;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(pos, end - pos);
        char* rest = nullptr;
        const double value = std::strtod(item.c_str(), &rest);
        if (rest == item.c_str() || *rest != '\0' || value <= 0.0
            || value > 1.5)
            return {};
        loads.push_back(value);
        pos = end + 1;
    }
    return loads;
}

} // namespace

int
main(int argc, char** argv)
{
    double load = 0.8;
    double mix = 0.8;
    int vcs = 16;
    int buffers = 20;
    int link_mbps = 400;
    int message_flits = 20;
    int frames = 6;
    double scale = 0.1;
    int seed = 1;
    int scheduler = 2;  // virtual-clock
    int crossbar = 0;   // multiplexed
    int topology = 0;   // single-switch
    int routing = 0;    // default (topology's natural policy)
    int rt_kind = 0;    // vbr
    int placement = 0;  // balanced
    int jobs = 1;
    int replications = 1;
    int shards = 1;
    std::string loads_arg;
    std::string json_out;
    bool json_timing = false;
    bool pcs_mode = false;
    bool csv = false;
    bool dump_stats = false;
    bool telemetry = false;
    bool flight_recorder = false;
    bool bounds_flag = false;
    bool provision_mode = false;
    bool no_fast_forward = false;
    bool no_simd = false;
    double sla_ms = 33.0;
    std::string trace_out;

    config::OptionParser parser(
        "mediaworm_sim",
        "Flit-level simulation of the MediaWorm QoS router "
        "(HPCA 2000)");
    parser.addDouble("load", "offered input load (fraction of link)",
                     &load, 0.01, 1.5);
    parser.addString("loads", "comma-separated load list (multi-point "
                              "sweep; overrides --load)",
                     &loads_arg);
    parser.addDouble("mix", "real-time share x/(x+y) of the load",
                     &mix, 0.0, 1.0);
    parser.addInt("vcs", "virtual channels per physical channel",
                  &vcs, 1, 256);
    parser.addInt("buffers", "flit buffer depth per VC", &buffers, 1,
                  4096);
    parser.addInt("link-mbps", "physical channel bandwidth",
                  &link_mbps, 1, 100000);
    parser.addInt("message-flits", "real-time message size",
                  &message_flits, 2, 100000);
    parser.addInt("frames", "measured frames per stream", &frames, 1,
                  1000);
    parser.addDouble("scale", "time-scale compression (1 = paper's "
                              "full MPEG-2 workload)",
                     &scale, 0.001, 1.0);
    parser.addInt("seed", "root random seed", &seed, 0, 1 << 30);
    parser.addInt("jobs", "worker threads (0 = all hardware threads)",
                  &jobs, 0, 256);
    parser.addInt("replications",
                  "seed replications per point (95% CIs)",
                  &replications, 1, 1000);
    parser.addInt("shards",
                  "parallel shards per experiment (multi-router "
                  "topologies; 0 = one per hardware thread; results "
                  "are bit-identical for any value)",
                  &shards, 0, 256);
    parser.addString("json-out", "write a JSON campaign artifact "
                                 "(schema mediaworm-campaign-v3)",
                     &json_out);
    parser.addFlag("json-timing", "include the wall-clock timing "
                                  "section in the JSON artifact",
                   &json_timing);
    parser.addChoice("scheduler", "multiplexer discipline",
                     {"fifo", "round-robin", "virtual-clock",
                      "weighted-rr"},
                     &scheduler);
    parser.addChoice("crossbar", "crossbar organisation",
                     {"multiplexed", "full"}, &crossbar);
    parser.addChoice("topology", "interconnect",
                     {"single-switch", "fat-mesh", "mesh8x8",
                      "torus8x8", "clos"},
                     &topology);
    parser.addChoice("routing",
                     "routing policy on mesh8x8/torus8x8/clos "
                     "(default = the topology's natural policy)",
                     {"default", "dor", "updown", "adaptive"},
                     &routing);
    parser.addChoice("rt-kind", "real-time traffic model",
                     {"vbr", "cbr", "mpeg-gop"}, &rt_kind);
    parser.addChoice("placement", "stream placement policy",
                     {"balanced", "uniform-random"}, &placement);
    parser.addFlag("pcs", "simulate the PCS baseline instead",
                   &pcs_mode);
    parser.addFlag("csv", "emit CSV rows instead of a report",
                   &csv);
    parser.addFlag("stats", "dump the full component stat registry",
                   &dump_stats);
    parser.addFlag("telemetry",
                   "collect per-stream sliding-window QoS telemetry "
                   "(adds a telemetry section to the report and the "
                   "JSON artifact)",
                   &telemetry);
    parser.addFlag("bounds",
                   "compute network-calculus worst-case delay bounds "
                   "per admitted stream (adds a bounds section to the "
                   "report and the JSON artifact)",
                   &bounds_flag);
    parser.addFlag("provision",
                   "pick VC count and reserved Virtual Clock rates "
                   "so every stream's analytic bound meets --sla-ms, "
                   "then simulate under that allocation",
                   &provision_mode);
    parser.addDouble("sla-ms",
                     "per-stream worst-case delay SLA for "
                     "--provision, in unscaled (paper-axis) ms",
                     &sla_ms, 0.001, 10000.0);
    parser.addString("trace-out",
                     "write a Chrome-trace JSON (load at "
                     "chrome://tracing) of the first point's flit "
                     "events",
                     &trace_out);
    parser.addFlag("no-fast-forward",
                   "disable idle-epoch fast-forward (legacy "
                   "always-scan kernel path; results are "
                   "bit-identical either way)",
                   &no_fast_forward);
    parser.addFlag("no-simd",
                   "disable the vectorized arbitration kernels "
                   "(scalar picks; results are bit-identical "
                   "either way)",
                   &no_simd);
    parser.addFlag("flight-recorder",
                   "arm the crash-time flight recorder (dumps the "
                   "recent event trail to stderr on an assertion "
                   "failure)",
                   &flight_recorder);

    std::string error;
    if (!parser.parse(argc, argv, &error)) {
        std::fprintf(stderr, "%s\n%s", error.c_str(),
                     parser.help().c_str());
        return 2;
    }
    if (parser.helpRequested()) {
        std::printf("%s", parser.help().c_str());
        return 0;
    }

    if (pcs_mode)
        return runPcs(load, frames, scale, seed, csv);

    std::vector<double> loads{load};
    if (!loads_arg.empty()) {
        loads = parseLoads(loads_arg);
        if (loads.empty()) {
            std::fprintf(stderr,
                         "--loads: expected comma-separated values "
                         "in (0, 1.5], got '%s'\n",
                         loads_arg.c_str());
            return 2;
        }
    }

    core::ExperimentConfig base;
    base.router.numVcs = vcs;
    base.router.flitBufferDepth = buffers;
    base.router.linkBandwidthMbps = link_mbps;
    base.router.scheduler =
        static_cast<config::SchedulerKind>(scheduler);
    base.router.crossbar = static_cast<config::CrossbarKind>(crossbar);
    switch (topology) {
      case 0:
        base.network.topology = config::TopologyKind::SingleSwitch;
        break;
      case 1:
        base.network.topology = config::TopologyKind::FatMesh;
        break;
      case 2: // 8-ary 2-mesh, one endpoint per switch (64 nodes).
      case 3: // 8-ary 2-torus, same shape with wraparound.
        base.network.topology = topology == 2
            ? config::TopologyKind::Mesh
            : config::TopologyKind::Torus;
        base.network.meshWidth = 8;
        base.network.meshHeight = 8;
        base.network.endpointsPerSwitch = 1;
        break;
      case 4: // 3-stage Clos: 4 spines, 16 leaves x 4 endpoints.
        base.network.topology = config::TopologyKind::Clos;
        base.network.closM = 4;
        base.network.closN = 4;
        base.network.closR = 16;
        // Each spine needs one port per leaf.
        base.router.numPorts = 16;
        break;
    }
    base.network.routing = static_cast<config::RoutingKind>(routing);
    base.traffic.inputLoad = load;
    base.traffic.realTimeFraction = mix;
    base.traffic.realTimeKind =
        static_cast<config::RealTimeKind>(rt_kind);
    base.traffic.streamPlacement =
        static_cast<config::StreamPlacement>(placement);
    base.traffic.messageFlits = message_flits;
    base.traffic.warmupFrames = 2;
    base.traffic.measuredFrames = frames;
    base.timeScale = scale;
    base.seed = static_cast<std::uint64_t>(seed);
    base.obs.telemetry.enabled = telemetry;
    base.obs.flightRecorder = flight_recorder;
    base.obs.trace = !trace_out.empty();
    base.calculus.enabled = bounds_flag || provision_mode;
    base.fastForward = !no_fast_forward;
    base.router.simdArbiter = !no_simd;

    if (provision_mode) {
        calculus::ProvisionRequest request;
        // The SLA arrives on the paper's unscaled axis; the oracle
        // works in the run's scaled time base.
        request.slaUs = sla_ms * 1000.0 * scale;
        // Provision at the sweep's heaviest point: an allocation
        // whose bound holds there holds at every lighter load too.
        const double provisionLoad =
            *std::max_element(loads.begin(), loads.end());
        config::TrafficConfig provisionTraffic = base.traffic;
        provisionTraffic.inputLoad = provisionLoad;
        const calculus::ProvisionResult alloc = calculus::provision(
            base.router, provisionTraffic, base.network, base.seed,
            scale, request);
        std::printf("Provisioning: %s\n", alloc.describe().c_str());
        if (!alloc.feasible) {
            std::fprintf(stderr,
                         "provision: no allocation meets the %.2f ms "
                         "SLA at load %.2f; lower the load or relax "
                         "--sla-ms\n",
                         sla_ms, provisionLoad);
            return 1;
        }
        base.router.numVcs = alloc.numVcs;
        base.traffic.reservedRateFactor = alloc.reservedRateFactor;
    }

    core::Sweep sweep(base);
    sweep.setJobs(jobs);
    sweep.setReplications(replications);
    sweep.setShards(shards);
    sweep.addLoadAxis(loads);
    sweep.run();

    if (!json_out.empty()) {
        if (!campaign::writeTextFile(
                json_out, sweep.toJson("mediaworm_sim", json_timing)))
            return 1;
        std::fprintf(stderr, "wrote %s\n", json_out.c_str());
    }

    if (!trace_out.empty()) {
        const auto& obs0 = sweep.rows()[0].result.observations;
        if (obs0 == nullptr || !obs0->hasTrace
            || !obs::writeChromeTrace(trace_out, obs0->trace))
            return 1;
        std::fprintf(stderr, "wrote %s (%zu events)\n",
                     trace_out.c_str(), obs0->trace.size());
    }

    if (csv) {
        std::printf("%s", sweep.toCsv().c_str());
        return 0;
    }

    std::printf("MediaWorm %s | %s\n",
                base.router.describe().c_str(),
                base.network.describe().c_str());
    std::printf("Workload: %s\n", base.traffic.describe().c_str());
    std::printf("Campaign: %zu point(s) x %d replication(s), "
                "jobs=%d, root seed %d\n\n",
                loads.size(), replications, jobs, seed);
    std::printf("%s\n", sweep.toTable().toString().c_str());

    // Single-point classic report details.
    if (loads.size() == 1) {
        const core::Sweep::Row& row = sweep.rows()[0];
        const core::ExperimentResult& r = row.result;
        const campaign::PointSummary& s = row.summary;
        std::printf("Real-time: d = %.2f ms, sigma_d = %.3f ms "
                    "(%llu intervals, %d streams)\n",
                    s.mean("mean_interval_norm_ms"),
                    s.mean("stddev_interval_norm_ms"),
                    static_cast<unsigned long long>(
                        r.intervalSamples),
                    r.rtStreams);
        if (replications > 1) {
            const campaign::MetricSummary& d =
                s.metric("mean_interval_norm_ms");
            std::printf("  d 95%% CI: [%.3f, %.3f] ms over %zu "
                        "replications\n",
                        d.lo(), d.hi(), d.n);
        }
        std::printf("Best-effort: %.1f us total, %.1f us in-network "
                    "(%llu messages)\n",
                    s.mean("be_latency_us"),
                    s.mean("be_network_latency_us"),
                    static_cast<unsigned long long>(r.beMessages));
        if (r.observations != nullptr
            && r.observations->hasTelemetry) {
            const obs::TelemetryReport& t = r.observations->telemetry;
            const double div = t.timeScale > 0.0 ? t.timeScale : 1.0;
            std::printf("Telemetry: %zu streams, worst sigma_d = "
                        "%.3f ms (stream %d), window %.2f ms "
                        "(unscaled axis)\n",
                        t.streams.size(), t.worstStddevMs / div,
                        t.worstStream.valid()
                            ? t.worstStream.value()
                            : -1,
                        sim::toMilliseconds(t.window) / div);
        }
        if (r.bounds != nullptr) {
            const calculus::BoundsReport& b = *r.bounds;
            if (b.allBounded()) {
                std::printf("Bounds: %zu streams, worst analytic "
                            "bound %.1f us (scaled axis, %.2f ms "
                            "unscaled)\n",
                            b.streams.size(), b.maxBoundUs,
                            b.maxBoundUs / 1000.0
                                / (scale > 0.0 ? scale : 1.0));
            } else {
                std::printf("Bounds: %zu streams, %d with no finite "
                            "bound at this operating point\n",
                            b.streams.size(), b.unboundedStreams);
            }
            if (r.observations != nullptr
                && r.observations->hasTelemetry) {
                double min_margin = calculus::kUnbounded;
                int tightest = -1;
                for (const calculus::StreamBound& sb : b.streams) {
                    const obs::StreamSeries* series =
                        r.observations->telemetry.find(sb.stream);
                    if (series == nullptr || !sb.bounded)
                        continue;
                    const double margin =
                        sb.boundUs - series->worstMessageDelayUs;
                    if (margin < min_margin) {
                        min_margin = margin;
                        tightest = sb.stream.value();
                    }
                }
                if (tightest >= 0) {
                    std::printf("  tightest bound-vs-observed margin: "
                                "%.1f us (stream %d)\n",
                                min_margin, tightest);
                }
            }
        }
        std::printf("Simulated %.1f ms in %.2f s (%llu events, "
                    "%.2f Mev/s)%s\n",
                    r.simulatedMs, r.wallSeconds,
                    static_cast<unsigned long long>(r.eventsFired),
                    r.eventsPerSec / 1e6,
                    r.truncated ? " [TRUNCATED]" : "");

        if (dump_stats) {
            // Re-run with a registry attached would double the cost;
            // instead report the aggregate counters we already have.
            std::printf("\nframes delivered: %llu\nflits delivered: "
                        "%llu\n",
                        static_cast<unsigned long long>(
                            r.framesDelivered),
                        static_cast<unsigned long long>(
                            r.flitsDelivered));
            // Reporting-only counters (shard-dependent, so they stay
            // out of the deterministic JSON artifact): how much work
            // the lazy-elision and idle-epoch fast-forward machinery
            // avoided (DESIGN.md sections 13-14).
            std::printf("elided wakeups: %llu\nidle ticks skipped: "
                        "%llu\n",
                        static_cast<unsigned long long>(
                            r.elidedEvents),
                        static_cast<unsigned long long>(
                            r.idleTicksSkipped));
        }
    }
    return 0;
}
