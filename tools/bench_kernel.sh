#!/usr/bin/env bash
# Runs the kernel micro benchmarks and records the results as one
# labeled entry in BENCH_kernel.json, the repo's kernel-performance
# trend file (see EXPERIMENTS.md for how to read it).
#
# usage: tools/bench_kernel.sh <build-dir> <label> [min-time]
#
#   build-dir  A configured build tree containing bench/micro_kernel
#              (and bench/micro_arbiter, whose rows are merged into
#              the same entry). Use a Release build for numbers worth
#              recording.
#   label      Name for this measurement ("seed-heap", "pr2-two-tier",
#              "ci-<sha>", ...). Re-using a label replaces the entry.
#   min-time   --benchmark_min_time seconds per benchmark (default 2).
#
# The headline number is BM_EndToEndExperiment's events/s counter:
# whole-simulator throughput on a fixed small experiment. The other
# benchmarks localize regressions (queue, RNG, arbitration, link).
#
# Each entry also records host metadata (logical core count, CPU
# model) because the BM_EndToEndFatMeshShards/N rows measure parallel
# shard scaling: their events/s is only meaningful relative to how
# many cores the host actually had. Shard-scaling rows carry their
# shard count in a "shards" field next to the timing.

set -euo pipefail

build_dir=${1:?usage: tools/bench_kernel.sh <build-dir> <label> [min-time]}
label=${2:?usage: tools/bench_kernel.sh <build-dir> <label> [min-time]}
min_time=${3:-2}

repo_root=$(cd "$(dirname "$0")/.." && pwd)
bench="$build_dir/bench/micro_kernel"
arbiter_bench="$build_dir/bench/micro_arbiter"
out_json="$repo_root/BENCH_kernel.json"

if [ ! -x "$bench" ]; then
    echo "error: $bench not found; build the tree first" >&2
    exit 1
fi

raw=$(mktemp)
arbiter_raw=$(mktemp)
trap 'rm -f "$raw" "$arbiter_raw"' EXIT

"$bench" --benchmark_format=json \
         --benchmark_min_time="$min_time" > "$raw"

if [ -x "$arbiter_bench" ]; then
    "$arbiter_bench" --benchmark_format=json \
                     --benchmark_min_time="$min_time" > "$arbiter_raw"
else
    echo "warning: $arbiter_bench not found; skipping arbiter rows" >&2
    echo '{"benchmarks": []}' > "$arbiter_raw"
fi

cores=$(nproc)
cpu_model=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo \
    2>/dev/null || true)
cpu_model=${cpu_model:-unknown}

python3 - "$raw" "$arbiter_raw" "$out_json" "$label" \
    "$cores" "$cpu_model" <<'EOF'
import json
import sys

raw_path, arbiter_path, out_path, label, cores, cpu_model = sys.argv[1:7]

benchmarks = {}
events_per_sec = None
for path in (raw_path, arbiter_path):
    with open(path) as f:
        raw = json.load(f)
    for b in raw.get("benchmarks", []):
        entry = {"real_time_ns": b["real_time"] * {
            "ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "events/s" in b:
            entry["events_per_second"] = b["events/s"]
        # Shard-scaling rows (BM_EndToEndFatMeshShards/N[/real_time]):
        # surface the shard count so readers need not parse names.
        parts = b["name"].split("/")
        if parts[0] == "BM_EndToEndFatMeshShards" and len(parts) > 1:
            entry["shards"] = int(parts[1])
        benchmarks[b["name"]] = entry
        if b["name"] == "BM_EndToEndExperiment":
            events_per_sec = b.get("events/s")

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"schema": "mediaworm-bench-kernel-v1",
           "headline": "BM_EndToEndExperiment events_per_second",
           "entries": []}

doc["entries"] = [e for e in doc["entries"] if e["label"] != label]
doc["entries"].append({
    "label": label,
    "events_per_second": events_per_sec,
    "host": {"cores": int(cores), "cpu_model": cpu_model},
    "benchmarks": benchmarks,
})

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"{label}: {events_per_sec:.0f} events/s -> {out_path}")
EOF
