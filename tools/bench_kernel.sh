#!/usr/bin/env bash
# Runs the kernel micro benchmarks and records the results as one
# labeled entry in BENCH_kernel.json, the repo's kernel-performance
# trend file (see EXPERIMENTS.md for how to read it).
#
# usage: tools/bench_kernel.sh <build-dir> <label> [min-time]
#
#   build-dir  A configured build tree containing bench/micro_kernel
#              (and bench/micro_arbiter, whose rows are merged into
#              the same entry). Use a Release build for numbers worth
#              recording.
#   label      Name for this measurement ("seed-heap", "pr2-two-tier",
#              "ci-<sha>", ...). Re-using a label replaces the entry.
#   min-time   --benchmark_min_time seconds per benchmark (default 2).
#
# The headline number is BM_EndToEndExperiment's events/s counter:
# whole-simulator throughput on a fixed small experiment. The other
# benchmarks localize regressions (queue, RNG, arbitration, link).
#
# Each entry also records host metadata (logical core count, CPU
# model) because the BM_EndToEndFatMeshShards/N rows measure parallel
# shard scaling: their events/s is only meaningful relative to how
# many cores the host actually had. Shard-scaling rows carry their
# shard count in a "shards" field next to the timing.

set -euo pipefail

build_dir=${1:?usage: tools/bench_kernel.sh <build-dir> <label> [min-time]}
label=${2:?usage: tools/bench_kernel.sh <build-dir> <label> [min-time]}
min_time=${3:-2}

repo_root=$(cd "$(dirname "$0")/.." && pwd)
bench="$build_dir/bench/micro_kernel"
arbiter_bench="$build_dir/bench/micro_arbiter"
out_json="$repo_root/BENCH_kernel.json"

if [ ! -x "$bench" ]; then
    echo "error: $bench not found; build the tree first" >&2
    exit 1
fi

raw=$(mktemp)
arbiter_raw=$(mktemp)
trap 'rm -f "$raw" "$arbiter_raw"' EXIT

"$bench" --benchmark_format=json \
         --benchmark_min_time="$min_time" > "$raw"

if [ -x "$arbiter_bench" ]; then
    "$arbiter_bench" --benchmark_format=json \
                     --benchmark_min_time="$min_time" > "$arbiter_raw"
else
    echo "warning: $arbiter_bench not found; skipping arbiter rows" >&2
    echo '{"benchmarks": []}' > "$arbiter_raw"
fi

cores=$(nproc)
cpu_model=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo \
    2>/dev/null || true)
cpu_model=${cpu_model:-unknown}

# Frequency-management state: numbers taken under "powersave" or with
# turbo enabled are not comparable run-to-run, so record both.
governor=$(cat /sys/devices/system/cpu/cpu0/cpufreq/scaling_governor \
    2>/dev/null || true)
governor=${governor:-unknown}
if [ -r /sys/devices/system/cpu/intel_pstate/no_turbo ]; then
    case $(cat /sys/devices/system/cpu/intel_pstate/no_turbo) in
        0) turbo=on ;;
        1) turbo=off ;;
        *) turbo=unknown ;;
    esac
elif [ -r /sys/devices/system/cpu/cpufreq/boost ]; then
    case $(cat /sys/devices/system/cpu/cpufreq/boost) in
        1) turbo=on ;;
        0) turbo=off ;;
        *) turbo=unknown ;;
    esac
else
    turbo=unknown
fi

# Compiler and optimization flags from the build tree's cache, so an
# entry accidentally measured on a Debug tree is self-incriminating.
cache="$build_dir/CMakeCache.txt"
cache_var() {
    sed -n "s/^$1:[^=]*=//p" "$cache" 2>/dev/null | head -n1
}
build_type=$(cache_var CMAKE_BUILD_TYPE)
build_type=${build_type:-unknown}
case "$build_type" in
    Release) type_flags=$(cache_var CMAKE_CXX_FLAGS_RELEASE) ;;
    RelWithDebInfo) type_flags=$(cache_var CMAKE_CXX_FLAGS_RELWITHDEBINFO) ;;
    Debug) type_flags=$(cache_var CMAKE_CXX_FLAGS_DEBUG) ;;
    *) type_flags= ;;
esac
compiler_flags=$(echo "$(cache_var CMAKE_CXX_FLAGS) $type_flags" \
    | xargs || true)
compiler=$(cache_var CMAKE_CXX_COMPILER)
compiler=${compiler:-unknown}
# MEDIAWORM_SIMD=ON adds -mavx2 via add_compile_options, which the
# cached CMAKE_CXX_FLAGS does not show - record the option itself.
simd=$(cache_var MEDIAWORM_SIMD)
simd=${simd:-unknown}

python3 - "$raw" "$arbiter_raw" "$out_json" "$label" \
    "$cores" "$cpu_model" "$governor" "$turbo" "$build_type" \
    "$compiler" "$compiler_flags" "$simd" <<'EOF'
import json
import sys

(raw_path, arbiter_path, out_path, label, cores, cpu_model, governor,
 turbo, build_type, compiler, compiler_flags, simd) = sys.argv[1:13]

benchmarks = {}
events_per_sec = None
for path in (raw_path, arbiter_path):
    with open(path) as f:
        raw = json.load(f)
    for b in raw.get("benchmarks", []):
        entry = {"real_time_ns": b["real_time"] * {
            "ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "events/s" in b:
            entry["events_per_second"] = b["events/s"]
        # Shard-scaling rows (BM_EndToEndFatMeshShards/N[/real_time]):
        # surface the shard count so readers need not parse names.
        parts = b["name"].split("/")
        if parts[0] == "BM_EndToEndFatMeshShards" and len(parts) > 1:
            entry["shards"] = int(parts[1])
        benchmarks[b["name"]] = entry
        if b["name"] == "BM_EndToEndExperiment":
            events_per_sec = b.get("events/s")

try:
    with open(out_path) as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {"schema": "mediaworm-bench-kernel-v1",
           "headline": "BM_EndToEndExperiment events_per_second",
           "entries": []}

host = {
    "cores": int(cores),
    "cpu_model": cpu_model,
    "governor": governor,
    "turbo": turbo,
    "build_type": build_type,
    "compiler": compiler,
    "compiler_flags": compiler_flags,
    "simd": simd,
}

# Cross-host comparisons are the main way this trend file misleads:
# warn when the machine state differs from the most recent prior
# entry (the de-facto baseline the new numbers will be read against).
prior = [e for e in doc["entries"] if e["label"] != label]
if prior:
    base = prior[-1].get("host", {})
    for key in ("cpu_model", "cores", "governor", "turbo",
                "build_type", "compiler_flags", "simd"):
        theirs = base.get(key)
        ours = host.get(key)
        if theirs is not None and theirs != ours:
            print(f"warning: host {key} differs from baseline entry "
                  f"'{prior[-1]['label']}': {theirs!r} -> {ours!r}; "
                  "events/s ratios across these entries are not "
                  "meaningful", file=sys.stderr)

doc["entries"] = prior
doc["entries"].append({
    "label": label,
    "events_per_second": events_per_sec,
    "host": host,
    "benchmarks": benchmarks,
})

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"{label}: {events_per_sec:.0f} events/s -> {out_path}")
EOF
