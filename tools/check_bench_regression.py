#!/usr/bin/env python3
"""Gate on the kernel-benchmark trend file.

Compares the headline events/s of one BENCH_kernel.json entry (the
measurement just taken, e.g. by tools/bench_kernel.sh in CI) against a
baseline entry and exits non-zero when it regressed by more than the
threshold.

usage: check_bench_regression.py <json> <current-label>
           [--baseline LABEL] [--threshold FRACTION]
           [--benchmark NAME]

The baseline defaults to the last entry recorded before the current
label (the tracked number committed by the most recent perf PR). The
default threshold of 0.30 is deliberately loose: shared CI runners
are noisy, and the gate exists to catch structural regressions (an
accidental re-virtualization, a quadratic rescan) that cost far more
than run-to-run jitter, not to police single-digit drift - use the
committed BENCH_kernel.json entries for that (see EXPERIMENTS.md).

--benchmark gates one named row instead of the headline, using its
events_per_second (falling back to items_per_second). CI uses it with
--threshold 0.05 on BM_EndToEndExperiment to enforce that the
telemetry-off hot path stays within 5% of the committed baseline (the
observability hooks must cost nothing when disabled).
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail on kernel benchmark regressions.")
    parser.add_argument("json_path", help="BENCH_kernel.json path")
    parser.add_argument("current", help="label of the new entry")
    parser.add_argument("--baseline", default=None,
                        help="baseline label (default: last entry "
                             "before the current one)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional drop "
                             "(default 0.30)")
    parser.add_argument("--benchmark", default=None,
                        help="gate this benchmark row instead of the "
                             "entry headline (events_per_second, "
                             "else items_per_second)")
    args = parser.parse_args()

    with open(args.json_path) as f:
        doc = json.load(f)
    entries = doc.get("entries", [])
    by_label = {e["label"]: e for e in entries}

    if args.current not in by_label:
        print(f"error: no entry labeled '{args.current}'",
              file=sys.stderr)
        return 2
    current = by_label[args.current]

    if args.baseline is not None:
        if args.baseline not in by_label:
            print(f"error: no baseline entry '{args.baseline}'",
                  file=sys.stderr)
            return 2
        baseline = by_label[args.baseline]
    else:
        previous = [e for e in entries if e["label"] != args.current]
        if not previous:
            print("no baseline entry to compare against; passing")
            return 0
        baseline = previous[-1]

    if args.benchmark is not None:
        def rate(entry):
            row = entry.get("benchmarks", {}).get(args.benchmark)
            if row is None:
                return None
            return row.get("events_per_second",
                           row.get("items_per_second"))
        cur = rate(current)
        base = rate(baseline)
        what = args.benchmark
    else:
        cur = current.get("events_per_second")
        base = baseline.get("events_per_second")
        what = "headline"
    if not cur or not base:
        print(f"error: entries lack a rate for '{what}'",
              file=sys.stderr)
        return 2

    ratio = cur / base
    print(f"[{what}] {args.current}: {cur:.3e} events/s vs "
          f"{baseline['label']}: {base:.3e} events/s "
          f"({ratio:.2f}x, threshold {1 - args.threshold:.2f}x)")
    if ratio < 1.0 - args.threshold:
        print(f"FAIL: more than {args.threshold:.0%} below baseline",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
