#!/usr/bin/env python3
"""Gate on the kernel-benchmark trend file.

Compares the headline events/s of one BENCH_kernel.json entry (the
measurement just taken, e.g. by tools/bench_kernel.sh in CI) against a
baseline entry and exits non-zero when it regressed by more than the
threshold.

usage: check_bench_regression.py <json> <current-label>
           [--baseline LABEL] [--threshold FRACTION]
           [--benchmark NAME] [--best-of N]

The baseline defaults to the last entry recorded before the current
label (the tracked number committed by the most recent perf PR). The
default threshold of 0.30 is deliberately loose: shared CI runners
are noisy, and the gate exists to catch structural regressions (an
accidental re-virtualization, a quadratic rescan) that cost far more
than run-to-run jitter, not to police single-digit drift - use the
committed BENCH_kernel.json entries for that (see EXPERIMENTS.md).

--best-of N compares the best (maximum) rate among up to N repeated
measurements of the current label: the entry labeled LABEL plus any
labeled "LABEL#2" .. "LABEL#N" (record repeats by running
tools/bench_kernel.sh once per suffix). Throughput noise on shared
runners is one-sided - a run can only be slowed by interference, never
sped up - so the max over repeats estimates the machine's true rate
far better than any single run, and the gate stops failing on one
unlucky measurement. The baseline stays a single committed entry.

--benchmark gates one named row instead of the headline, using its
events_per_second (falling back to items_per_second). CI uses it with
--threshold 0.05 on BM_EndToEndExperiment to enforce that the
telemetry-off hot path stays within 5% of the committed baseline (the
observability hooks must cost nothing when disabled).

A missing baseline is an error (exit 2), never a silent pass: a gate
that passes because the entry it should compare against is absent is
indistinguishable from a gate that ran, and has hidden a mislabeled
trend file before. --self-test exercises the gate against built-in
documents (no file needed) so CI can prove the failure modes stay
loud.
"""

import argparse
import json
import sys


def self_test() -> int:
    """Run the gate against canned documents; 0 when all pass."""
    doc = {
        "entries": [
            {"label": "pr-1", "events_per_second": 1.0e6,
             "benchmarks": {
                 "BM_EndToEndExperiment":
                     {"events_per_second": 2.0e6}}},
            {"label": "pr-2", "events_per_second": 0.9e6,
             "benchmarks": {
                 "BM_EndToEndExperiment":
                     {"events_per_second": 0.5e6}}},
            # Repeat runs of pr-2 for the --best-of mode: the first
            # measurement above was unlucky; the repeat was not.
            {"label": "pr-2#2", "events_per_second": 0.99e6,
             "benchmarks": {
                 "BM_EndToEndExperiment":
                     {"events_per_second": 1.99e6}}},
        ]
    }
    cases = [
        # (argv-extras, entries-subset, expected-exit, description)
        (["pr-2"], None, 0, "10% drop passes the loose default"),
        (["pr-2", "--threshold", "0.05"], None, 1,
         "10% drop fails a 5% threshold"),
        (["pr-2", "--benchmark", "BM_EndToEndExperiment"], None, 1,
         "75% row drop fails"),
        (["pr-2", "--baseline", "nope"], None, 2,
         "explicit missing baseline errors"),
        (["nope"], None, 2, "missing current entry errors"),
        (["pr-1"], [doc["entries"][0]], 2,
         "no baseline entry errors instead of passing"),
        (["pr-2", "--benchmark", "BM_Missing"], None, 2,
         "missing benchmark row errors"),
        # --best-of: the max over repeat entries is what gates.
        (["pr-2", "--threshold", "0.05", "--best-of", "2"], None, 0,
         "best-of-2 rescues an unlucky first run"),
        (["pr-2", "--benchmark", "BM_EndToEndExperiment",
          "--best-of", "2"], None, 0,
         "best-of-2 applies to named rows too"),
        (["pr-2", "--threshold", "0.05", "--best-of", "2",
          "--baseline", "pr-1"], None, 0,
         "best-of-2 with an explicit baseline"),
        # A repeat entry must never be chosen as the implicit
        # baseline for its own label.
        (["pr-2#2", "--threshold", "0.05"], None, 0,
         "naming a repeat directly gates it as its own label"),
        (["pr-2", "--threshold", "0.05", "--best-of", "3"], None, 0,
         "missing repeats degrade to the runs present"),
    ]
    failures = 0
    for extras, subset, expected, description in cases:
        trimmed = doc if subset is None else {"entries": subset}
        got = run_gate(trimmed, parse_args(["<self-test>"] + extras))
        status = "ok" if got == expected else "FAIL"
        if got != expected:
            failures += 1
        print(f"self-test [{status}] {description} "
              f"(exit {got}, want {expected})")
    if failures:
        print(f"self-test: {failures} case(s) failed",
              file=sys.stderr)
        return 1
    print("self-test: all cases passed")
    return 0


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Fail on kernel benchmark regressions.")
    parser.add_argument("json_path", nargs="?", default=None,
                        help="BENCH_kernel.json path (optional with "
                             "--self-test)")
    parser.add_argument("current", nargs="?", default=None,
                        help="label of the new entry")
    parser.add_argument("--baseline", default=None,
                        help="baseline label (default: last entry "
                             "before the current one)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated fractional drop "
                             "(default 0.30)")
    parser.add_argument("--benchmark", default=None,
                        help="gate this benchmark row instead of the "
                             "entry headline (events_per_second, "
                             "else items_per_second)")
    parser.add_argument("--best-of", type=int, default=1,
                        dest="best_of", metavar="N",
                        help="take the best rate among the current "
                             "label and its '#2'..'#N' repeat entries "
                             "(default 1: the single entry)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in behavioral checks and "
                             "exit")
    return parser.parse_args(argv)


def run_gate(doc, args) -> int:
    entries = doc.get("entries", [])
    by_label = {e["label"]: e for e in entries}

    if args.current not in by_label:
        print(f"error: no entry labeled '{args.current}' in "
              f"{args.json_path} (have: "
              f"{', '.join(sorted(by_label)) or 'none'})",
              file=sys.stderr)
        return 2
    current = by_label[args.current]

    # Repeat entries for --best-of: "<label>", "<label>#2", ...
    repeat_labels = [args.current] + [
        f"{args.current}#{i}" for i in range(2, args.best_of + 1)]
    repeats = [by_label[lbl] for lbl in repeat_labels
               if lbl in by_label]
    if args.best_of > 1 and len(repeats) < args.best_of:
        missing = [lbl for lbl in repeat_labels
                   if lbl not in by_label]
        print(f"note: --best-of {args.best_of} found "
              f"{len(repeats)} run(s); missing {', '.join(missing)}")

    if args.baseline is not None:
        if args.baseline not in by_label:
            print(f"error: no baseline entry '{args.baseline}' in "
                  f"{args.json_path} (have: "
                  f"{', '.join(sorted(by_label)) or 'none'})",
                  file=sys.stderr)
            return 2
        baseline = by_label[args.baseline]
    else:
        # Never gate a label against its own repeat runs, whatever
        # --best-of says: "<label>#k" entries are measurements of the
        # same code, not a baseline.
        previous = [e for e in entries
                    if e["label"] != args.current
                    and not e["label"].startswith(args.current + "#")]
        if not previous:
            print(f"error: no baseline entry before '{args.current}' "
                  f"in {args.json_path}; a gate with nothing to "
                  "compare against must not pass (record a baseline "
                  "entry or name one with --baseline)",
                  file=sys.stderr)
            return 2
        baseline = previous[-1]

    if args.benchmark is not None:
        def rate(entry):
            row = entry.get("benchmarks", {}).get(args.benchmark)
            if row is None:
                return None
            return row.get("events_per_second",
                           row.get("items_per_second"))
        what = args.benchmark
    else:
        def rate(entry):
            return entry.get("events_per_second")
        what = "headline"

    runs = [r for r in (rate(e) for e in repeats) if r]
    cur = max(runs, default=None)
    base = rate(baseline)
    if not cur or not base:
        print(f"error: entries '{args.current}' / "
              f"'{baseline['label']}' lack a rate for '{what}'",
              file=sys.stderr)
        return 2

    ratio = cur / base
    best_note = (f", best of {len(runs)} run(s)"
                 if args.best_of > 1 else "")
    print(f"[{what}] {args.current}: {cur:.3e} events/s vs "
          f"{baseline['label']}: {base:.3e} events/s "
          f"({ratio:.2f}x, threshold {1 - args.threshold:.2f}x"
          f"{best_note})")
    if ratio < 1.0 - args.threshold:
        print(f"FAIL: more than {args.threshold:.0%} below baseline",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


def main() -> int:
    args = parse_args(sys.argv[1:])
    if args.self_test:
        return self_test()
    if args.json_path is None or args.current is None:
        print("error: a trend file path and a current entry label "
              "are required", file=sys.stderr)
        return 2
    with open(args.json_path) as f:
        doc = json.load(f)
    return run_gate(doc, args)


if __name__ == "__main__":
    sys.exit(main())
