#!/usr/bin/env bash
# Profiles the simulator hot path with Linux perf and prints the
# hottest symbols, using the `profile` CMake preset (Release
# optimization + -fno-omit-frame-pointer, so --call-graph fp resolves
# cheap, accurate stacks through the kernel/router serve loops).
#
# usage: tools/profile_hotpath.sh [bench-binary] [bench-args...]
#
#   bench-binary  Executable to profile, relative to the profile
#                 build tree or absolute. Default:
#                 bench/micro_kernel, filtered to the end-to-end
#                 experiment (the headline workload).
#
# Examples:
#   tools/profile_hotpath.sh
#   tools/profile_hotpath.sh bench/micro_kernel \
#       --benchmark_filter=BM_BatchedRouterTick
#   tools/profile_hotpath.sh tools/mediaworm_sim \
#       --loads 0.6 --frames 2 --scale 0.05
#
# The perf.data file is left in the profile build tree for
# interactive drill-down with `perf report`.

set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir="$repo_root/build-profile"

if ! command -v perf > /dev/null; then
    echo "error: linux-perf not installed (perf(1) not on PATH)" >&2
    exit 1
fi

# Configure + build via the preset on first use (cmake >= 3.21).
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake --preset profile -S "$repo_root"
fi
cmake --build --preset profile -j "$(nproc)"

binary=${1:-bench/micro_kernel}
shift || true
case "$binary" in
    /*) ;;
    *) binary="$build_dir/$binary" ;;
esac
if [ ! -x "$binary" ]; then
    echo "error: $binary not found or not executable" >&2
    exit 1
fi

args=("$@")
if [ ${#args[@]} -eq 0 ] \
       && [[ "$binary" == */bench/micro_kernel ]]; then
    args=(--benchmark_filter='BM_EndToEndExperiment$'
          --benchmark_min_time=2)
fi

data="$build_dir/perf.data"
perf record --call-graph fp -F 997 -o "$data" -- \
    "$binary" "${args[@]}"

echo
echo "=== hottest symbols (self time) ==="
perf report -i "$data" --stdio --no-children \
    --percent-limit 1 2> /dev/null | head -40
echo
echo "perf.data: $data (drill down with: perf report -i $data)"
