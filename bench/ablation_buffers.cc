/**
 * @file
 * Ablation: per-VC flit-buffer depth.
 *
 * The paper fixes 20-flit buffers (one message). Shallower buffers
 * increase credit stalls and spread wormhole blocking; deeper ones
 * decouple stages. This sweep quantifies how much of the jitter-free
 * region depends on that choice.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: buffer depth",
                  "Per-VC flit buffers at 80:20, Virtual Clock");

    core::Table table({"load", "buffer (flits)", "d (ms)",
                       "sigma_d (ms)", "BE total (us)"});

    for (double load : {0.80, 0.96}) {
        for (int depth : {4, 8, 20, 64}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.flitBufferDepth = depth;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;

            const core::ExperimentResult r = core::runExperiment(cfg);
            table.addRow({core::Table::num(load, 2),
                          core::Table::num(
                              static_cast<std::int64_t>(depth)),
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3),
                          core::Table::num(r.beLatencyUs, 1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
