/**
 * @file
 * Ablation: per-VC flit-buffer depth.
 *
 * The paper fixes 20-flit buffers (one message). Shallower buffers
 * increase credit stalls and spread wormhole blocking; deeper ones
 * decouple stages. This sweep quantifies how much of the jitter-free
 * region depends on that choice.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: buffer depth",
                  "Per-VC flit buffers at 80:20, Virtual Clock");

    const double loads[] = {0.80, 0.96};
    const int depths[] = {4, 8, 20, 64};

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : loads) {
        for (int depth : depths) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.flitBufferDepth = depth;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;
            camp.addPoint(core::Table::num(load, 2) + "/"
                              + std::to_string(depth) + "fl",
                          cfg);
        }
    }
    const auto& results =
        bench::runCampaign("ablation_buffers", camp);

    core::Table table({"load", "buffer (flits)", "d (ms)",
                       "sigma_d (ms)", "BE total (us)"});
    std::size_t i = 0;
    for (double load : loads) {
        for (int depth : depths) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2),
                 core::Table::num(static_cast<std::int64_t>(depth)),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3),
                 core::Table::num(r.mean("be_latency_us"), 1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
