/**
 * @file
 * Figure 5: mixed VBR/best-effort traffic (16 VCs).
 *
 * Paper result: up to an input load of 0.80 delivery is jitter-free
 * regardless of the mix; beyond that, jitter becomes significant
 * only when the real-time component dominates.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 5",
                  "d and sigma_d vs real-time share, 16 VCs");

    const double mixes[] = {0.2, 0.5, 0.8, 0.9, 1.0};
    const double loads[] = {0.60, 0.70, 0.80, 0.90, 0.96};

    auto mixLabel = [](double rt) {
        char mix[16];
        std::snprintf(mix, sizeof(mix), "%.0f:%.0f", rt * 100,
                      (1 - rt) * 100);
        return std::string(mix);
    };

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : loads) {
        for (double rt : mixes) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = rt;
            camp.addPoint(
                core::Table::num(load, 2) + "/" + mixLabel(rt), cfg);
        }
    }
    const auto& results =
        bench::runCampaign("fig5_mixed_traffic", camp);

    core::Table table({"load", "mix (x:y)", "d (ms)", "sigma_d (ms)"});
    std::size_t i = 0;
    for (double load : loads) {
        for (double rt : mixes) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2), mixLabel(rt),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: jitter-free to load 0.8 for every mix; beyond "
                "that only RT-dominant mixes degrade.\n");
    return 0;
}
