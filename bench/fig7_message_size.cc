/**
 * @file
 * Figure 7: effect of message size on jitter (16 VCs).
 *
 * Paper result: message size barely affects QoS except at very small
 * sizes, where the one-header-per-message overhead (5% at 20 flits)
 * becomes noticeable.
 *
 * The paper sweeps 20..2560 flits against its 4167-flit frames; at
 * our time-scale-compressed frame size the equivalent sweep runs up
 * to whole-frame messages (the 2560-flit point's role: one or two
 * messages per frame).
 */

#include <cmath>

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 7", "Message size sweep at loads 0.64, 0.80");

    core::ExperimentConfig probe = bench::paperConfig();
    // Payload flits per frame at the compressed scale; the largest
    // message size makes one message carry a whole frame.
    const double frame_bytes =
        probe.traffic.frameBytesMean * bench::timeScale();
    const int flit_bytes = probe.router.flitSizeBits / 8;
    const int whole_frame = static_cast<int>(
        std::ceil(frame_bytes / flit_bytes)) + 1;

    const int sizes[] = {8, 20, 40, 80, 160, whole_frame};
    const double loads[] = {0.64, 0.80};

    campaign::Campaign camp(bench::campaignConfig());
    for (int size : sizes) {
        for (double load : loads) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 1.0;
            cfg.traffic.messageFlits = size;
            camp.addPoint(std::to_string(size) + "fl/"
                              + core::Table::num(load, 2),
                          cfg);
        }
    }
    const auto& results =
        bench::runCampaign("fig7_message_size", camp);

    core::Table table({"msg flits", "load", "d (ms)", "sigma_d (ms)"});
    std::size_t i = 0;
    for (int size : sizes) {
        for (double load : loads) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(static_cast<std::int64_t>(size)),
                 core::Table::num(load, 2),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: little impact except at very small messages "
                "(header overhead); no need for large messages.\n");
    return 0;
}
