/**
 * @file
 * Shared scaffolding for the figure/table benchmark binaries.
 *
 * Every bench builds a campaign of labelled experiment points and
 * runs it through the parallel campaign engine (src/campaign/), so
 * wall-clock time scales with cores rather than point count while
 * results stay bit-identical to a sequential run. Environment knobs:
 *
 *   MW_BENCH_FRAMES    measured frames per stream (default 6)
 *   MW_BENCH_SCALE     time-scale compression (default 0.1)
 *   MW_BENCH_JOBS      worker threads (default: hardware threads)
 *   MW_BENCH_REPS      seed replications per point (default 1)
 *   MW_BENCH_JSON_DIR  if set, write a BENCH_<name>.json campaign
 *                      artifact (schema mediaworm-campaign-v2,
 *                      timing section included) into this directory
 */

#ifndef MEDIAWORM_BENCH_COMMON_HH
#define MEDIAWORM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/mediaworm.hh"

namespace bench {

/** Integer environment knob with a default. */
inline int
envInt(const char* name, int fallback)
{
    if (const char* env = std::getenv(name))
        return std::atoi(env);
    return fallback;
}

/** Measured frames per stream (env-overridable). */
inline int
measuredFrames()
{
    return envInt("MW_BENCH_FRAMES", 6);
}

/** Time-scale compression (env-overridable). */
inline double
timeScale()
{
    if (const char* env = std::getenv("MW_BENCH_SCALE"))
        return std::atof(env);
    return 0.1;
}

/** Campaign execution settings from the environment. */
inline mediaworm::campaign::CampaignConfig
campaignConfig()
{
    mediaworm::campaign::CampaignConfig cfg;
    cfg.jobs = envInt("MW_BENCH_JOBS", 0); // 0 = hardware threads
    cfg.replications = envInt("MW_BENCH_REPS", 1);
    cfg.showProgress = true;
    return cfg;
}

/** Paper-default experiment configuration (Table 1). */
inline mediaworm::core::ExperimentConfig
paperConfig()
{
    mediaworm::core::ExperimentConfig cfg;
    cfg.router.numPorts = 8;
    cfg.router.numVcs = 16;
    cfg.router.flitBufferDepth = 20;
    cfg.router.flitSizeBits = 32;
    cfg.router.linkBandwidthMbps = 400;
    cfg.traffic.warmupFrames = 2;
    cfg.traffic.measuredFrames = measuredFrames();
    cfg.timeScale = timeScale();
    return cfg;
}

/**
 * Runs @p campaign, writes the BENCH_<name>.json artifact when
 * MW_BENCH_JSON_DIR is set, and prints campaign throughput.
 *
 * @return Point summaries in insertion order.
 */
inline const std::vector<mediaworm::campaign::PointSummary>&
runCampaign(const char* name, mediaworm::campaign::Campaign& campaign)
{
    const auto& results = campaign.run();

    if (const char* dir = std::getenv("MW_BENCH_JSON_DIR")) {
        mediaworm::campaign::ArtifactOptions options;
        options.name = name;
        const std::string path =
            std::string(dir) + "/BENCH_" + name + ".json";
        if (mediaworm::campaign::writeArtifact(path, campaign,
                                               options))
            std::fprintf(stderr, "wrote %s\n", path.c_str());
    }

    const double wall = campaign.wallSeconds();
    std::fprintf(stderr,
                 "campaign: %zu points x %d reps on %d jobs in "
                 "%.2fs (%.2f Mev/s)\n",
                 campaign.size(), campaign.config().replications,
                 campaign.config().effectiveJobs(), wall,
                 wall > 0.0
                     ? static_cast<double>(campaign.totalEvents())
                         / wall / 1e6
                     : 0.0);
    return results;
}

/** Prints the bench banner. */
inline void
banner(const char* experiment, const char* what)
{
    std::printf("=== MediaWorm reproduction: %s ===\n%s\n", experiment,
                what);
    std::printf("(timeScale=%.2f, measured frames=%d; d and sigma_d "
                "are re-normalised to the paper's 33 ms axis)\n\n",
                timeScale(), measuredFrames());
}

} // namespace bench

#endif // MEDIAWORM_BENCH_COMMON_HH
