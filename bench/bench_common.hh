/**
 * @file
 * Shared scaffolding for the figure/table benchmark binaries.
 *
 * Every bench prints the paper rows it reproduces. Counts are sized
 * so each binary finishes in tens of seconds; set MW_BENCH_FRAMES to
 * raise the measured-frame count (more samples, slower) and
 * MW_BENCH_SCALE to change the time-scale compression (1.0 = the
 * paper's full MPEG-2 workload).
 */

#ifndef MEDIAWORM_BENCH_COMMON_HH
#define MEDIAWORM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>

#include "core/mediaworm.hh"

namespace bench {

/** Measured frames per stream (env-overridable). */
inline int
measuredFrames()
{
    if (const char* env = std::getenv("MW_BENCH_FRAMES"))
        return std::atoi(env);
    return 6;
}

/** Time-scale compression (env-overridable). */
inline double
timeScale()
{
    if (const char* env = std::getenv("MW_BENCH_SCALE"))
        return std::atof(env);
    return 0.1;
}

/** Paper-default experiment configuration (Table 1). */
inline mediaworm::core::ExperimentConfig
paperConfig()
{
    mediaworm::core::ExperimentConfig cfg;
    cfg.router.numPorts = 8;
    cfg.router.numVcs = 16;
    cfg.router.flitBufferDepth = 20;
    cfg.router.flitSizeBits = 32;
    cfg.router.linkBandwidthMbps = 400;
    cfg.traffic.warmupFrames = 2;
    cfg.traffic.measuredFrames = measuredFrames();
    cfg.timeScale = timeScale();
    return cfg;
}

/** Prints the bench banner. */
inline void
banner(const char* experiment, const char* what)
{
    std::printf("=== MediaWorm reproduction: %s ===\n%s\n", experiment,
                what);
    std::printf("(timeScale=%.2f, measured frames=%d; d and sigma_d "
                "are re-normalised to the paper's 33 ms axis)\n\n",
                timeScale(), measuredFrames());
}

} // namespace bench

#endif // MEDIAWORM_BENCH_COMMON_HH
