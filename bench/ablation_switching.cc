/**
 * @file
 * Ablation: wormhole vs virtual cut-through switching.
 *
 * The paper keeps wormhole switching and changes only the scheduler;
 * the hybrid routers it compares against (MMR, Mercury-style) use
 * virtual cut-through instead. This sweep asks whether the switching
 * discipline matters once Virtual Clock is in place: VCT parks
 * blocked messages in one node instead of letting them stretch
 * across links, which mainly matters in the multi-hop fat-mesh.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: switching",
                  "Wormhole vs virtual cut-through, Virtual Clock, "
                  "80:20");

    const config::TopologyKind topologies[] = {
        config::TopologyKind::SingleSwitch,
        config::TopologyKind::FatMesh,
    };
    const double loads[] = {0.80, 0.96};
    const config::SwitchingKind switchings[] = {
        config::SwitchingKind::Wormhole,
        config::SwitchingKind::VirtualCutThrough,
    };

    campaign::Campaign camp(bench::campaignConfig());
    for (auto topology : topologies) {
        for (double load : loads) {
            for (auto switching : switchings) {
                core::ExperimentConfig cfg = bench::paperConfig();
                cfg.network.topology = topology;
                cfg.router.switching = switching;
                cfg.traffic.inputLoad = load;
                cfg.traffic.realTimeFraction = 0.8;
                camp.addPoint(std::string(config::toString(topology))
                                  + "/" + core::Table::num(load, 2)
                                  + "/"
                                  + config::toString(switching),
                              cfg);
            }
        }
    }
    const auto& results =
        bench::runCampaign("ablation_switching", camp);

    core::Table table({"topology", "load", "switching", "d (ms)",
                       "sigma_d (ms)", "BE total (us)"});
    std::size_t i = 0;
    for (auto topology : topologies) {
        for (double load : loads) {
            for (auto switching : switchings) {
                const campaign::PointSummary& r = results[i++];
                table.addRow(
                    {config::toString(topology),
                     core::Table::num(load, 2),
                     config::toString(switching),
                     core::Table::num(r.mean("mean_interval_norm_ms"),
                                      2),
                     core::Table::num(
                         r.mean("stddev_interval_norm_ms"), 3),
                     core::Table::num(r.mean("be_latency_us"), 1)});
            }
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
