/**
 * @file
 * Ablation: wormhole vs virtual cut-through switching.
 *
 * The paper keeps wormhole switching and changes only the scheduler;
 * the hybrid routers it compares against (MMR, Mercury-style) use
 * virtual cut-through instead. This sweep asks whether the switching
 * discipline matters once Virtual Clock is in place: VCT parks
 * blocked messages in one node instead of letting them stretch
 * across links, which mainly matters in the multi-hop fat-mesh.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: switching",
                  "Wormhole vs virtual cut-through, Virtual Clock, "
                  "80:20");

    core::Table table({"topology", "load", "switching", "d (ms)",
                       "sigma_d (ms)", "BE total (us)"});

    for (auto topology : {config::TopologyKind::SingleSwitch,
                          config::TopologyKind::FatMesh}) {
        for (double load : {0.80, 0.96}) {
            for (auto switching :
                 {config::SwitchingKind::Wormhole,
                  config::SwitchingKind::VirtualCutThrough}) {
                core::ExperimentConfig cfg = bench::paperConfig();
                cfg.network.topology = topology;
                cfg.router.switching = switching;
                cfg.traffic.inputLoad = load;
                cfg.traffic.realTimeFraction = 0.8;

                const core::ExperimentResult r =
                    core::runExperiment(cfg);
                table.addRow(
                    {config::toString(topology),
                     core::Table::num(load, 2),
                     config::toString(switching),
                     core::Table::num(r.meanIntervalNormMs, 2),
                     core::Table::num(r.stddevIntervalNormMs, 3),
                     core::Table::num(r.beLatencyUs, 1)});
            }
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
