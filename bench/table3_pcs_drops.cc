/**
 * @file
 * Table 3: attempted, established and dropped connections in the PCS
 * router (8x8, 100 Mbps, 24 VCs).
 *
 * Paper rows:
 *   load  attempts  established  dropped
 *   0.91     718        187         531
 *   0.87     540        175         365
 *   0.80     476        160         316
 *   0.74     372        148         224
 *   0.67     332        134         198
 *   0.64     224        107         117
 *   0.42     172         83          89
 *   0.37     166         73          93
 *
 * Established counts depend only on the load arithmetic and
 * reproduce closely. Attempt/drop counts additionally depend on the
 * paper's (unspecified) attempt arrival process; our
 * retry-until-established process reproduces the superlinear growth
 * of attempts with load.
 *
 * Runs through the campaign engine's generic addJob() path with a
 * per-(point, replication) side table for the PCS connection
 * accounting (see fig8 for the pattern).
 */

#include <memory>

#include "bench_common.hh"
#include "pcs/pcs_experiment.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Table 3", "PCS connection establishment accounting");

    const double loads[] = {0.91, 0.87, 0.80, 0.74,
                            0.67, 0.64, 0.42, 0.37};

    campaign::Campaign camp(bench::campaignConfig());
    const int reps = camp.config().replications;

    auto raw = std::make_shared<
        std::vector<std::vector<pcs::PcsExperimentResult>>>(
        std::size(loads),
        std::vector<pcs::PcsExperimentResult>(
            static_cast<std::size_t>(reps)));

    for (std::size_t li = 0; li < std::size(loads); ++li) {
        pcs::PcsExperimentConfig cfg;
        cfg.traffic.inputLoad = loads[li];
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2; // setup stats need no traffic
        cfg.timeScale = bench::timeScale();

        camp.addJob(
            "load=" + core::Table::num(loads[li], 2),
            [cfg, li, raw](std::uint64_t seed, int replication) {
                pcs::PcsExperimentConfig run = cfg;
                run.seed = seed;
                const pcs::PcsExperimentResult p =
                    pcs::runPcsExperiment(run);
                (*raw)[li][static_cast<std::size_t>(replication)] = p;

                core::ExperimentResult r;
                r.meanIntervalNormMs = p.meanIntervalNormMs;
                r.stddevIntervalNormMs = p.stddevIntervalNormMs;
                r.intervalSamples = p.intervalSamples;
                r.framesDelivered = p.framesDelivered;
                r.eventsFired = p.eventsFired;
                r.truncated = p.truncated;
                r.rtStreams = static_cast<int>(p.established);
                return r;
            },
            cfg.seed);
    }
    bench::runCampaign("table3_pcs_drops", camp);

    core::Table table({"load", "#conn. attempts", "#established",
                       "#dropped"});
    for (std::size_t li = 0; li < std::size(loads); ++li) {
        const pcs::PcsExperimentResult& r = (*raw)[li][0];
        table.addRow(
            {core::Table::num(loads[li], 2),
             core::Table::num(static_cast<std::int64_t>(r.attempts)),
             core::Table::num(
                 static_cast<std::int64_t>(r.established)),
             core::Table::num(static_cast<std::int64_t>(r.dropped))});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: ~60%% of requests dropped at load 0.7; "
                "attempts grow superlinearly with load because probes "
                "pick destination VCs blindly.\n");
    return 0;
}
