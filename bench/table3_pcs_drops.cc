/**
 * @file
 * Table 3: attempted, established and dropped connections in the PCS
 * router (8x8, 100 Mbps, 24 VCs).
 *
 * Paper rows:
 *   load  attempts  established  dropped
 *   0.91     718        187         531
 *   0.87     540        175         365
 *   0.80     476        160         316
 *   0.74     372        148         224
 *   0.67     332        134         198
 *   0.64     224        107         117
 *   0.42     172         83          89
 *   0.37     166         73          93
 *
 * Established counts depend only on the load arithmetic and
 * reproduce closely. Attempt/drop counts additionally depend on the
 * paper's (unspecified) attempt arrival process; our
 * retry-until-established process reproduces the superlinear growth
 * of attempts with load.
 */

#include "bench_common.hh"
#include "pcs/pcs_experiment.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Table 3", "PCS connection establishment accounting");

    core::Table table({"load", "#conn. attempts", "#established",
                       "#dropped"});

    for (double load :
         {0.91, 0.87, 0.80, 0.74, 0.67, 0.64, 0.42, 0.37}) {
        pcs::PcsExperimentConfig cfg;
        cfg.traffic.inputLoad = load;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2; // setup stats need no traffic
        cfg.timeScale = bench::timeScale();

        const pcs::PcsExperimentResult r = pcs::runPcsExperiment(cfg);
        table.addRow(
            {core::Table::num(load, 2),
             core::Table::num(static_cast<std::int64_t>(r.attempts)),
             core::Table::num(static_cast<std::int64_t>(r.established)),
             core::Table::num(static_cast<std::int64_t>(r.dropped))});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: ~60%% of requests dropped at load 0.7; "
                "attempts grow superlinearly with load because probes "
                "pick destination VCs blindly.\n");
    return 0;
}
