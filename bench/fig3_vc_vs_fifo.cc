/**
 * @file
 * Figure 3: Virtual Clock vs FIFO scheduling (16 VCs, 80:20 mix).
 *
 * Paper result: with FIFO, d and sigma_d start growing beyond a load
 * of 0.8 (significant jitter); switching the crossbar-input
 * multiplexer to Virtual Clock keeps delivery jitter-free up to a
 * link load of ~0.96.
 *
 * Our event-driven router switches somewhat more efficiently than
 * the paper's RTL-level pipeline, so FIFO's degradation onset lands
 * at ~0.92 rather than 0.8 - the ordering (Virtual Clock jitter-free
 * far past FIFO's breakdown) is what this bench checks.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 3",
                  "Virtual Clock vs FIFO, 8x8 switch, 16 VCs, "
                  "VBR:BE = 80:20");

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : {0.60, 0.70, 0.80, 0.90, 0.96, 1.00}) {
        for (auto sched : {config::SchedulerKind::VirtualClock,
                           config::SchedulerKind::Fifo}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.scheduler = sched;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;
            camp.addPoint(core::Table::num(load, 2) + "/"
                              + config::toString(sched),
                          cfg);
        }
    }
    const auto& results = bench::runCampaign("fig3_vc_vs_fifo", camp);

    core::Table table({"load", "scheduler", "d (ms)", "sigma_d (ms)",
                       "BE total (us)", "BE network (us)"});
    std::size_t i = 0;
    for (double load : {0.60, 0.70, 0.80, 0.90, 0.96, 1.00}) {
        for (auto sched : {config::SchedulerKind::VirtualClock,
                           config::SchedulerKind::Fifo}) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2), config::toString(sched),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3),
                 core::Table::num(r.mean("be_latency_us"), 1),
                 core::Table::num(r.mean("be_network_latency_us"),
                                  1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: FIFO jitters beyond load 0.8 (sigma_d up to "
                "~15 ms); Virtual Clock stays jitter-free to ~0.96.\n");
    return 0;
}
