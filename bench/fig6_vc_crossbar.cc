/**
 * @file
 * Figure 6: impact of VC count and crossbar organisation
 * (400 Mbps links, real-time only).
 *
 * Paper result: more VCs extend the jitter-free region (16 > 8 > 4
 * with a multiplexed crossbar); a 4-VC full crossbar (32x32) beats
 * the 8-VC multiplexed design and is competitive with 16 VCs.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 6",
                  "VC count and crossbar organisation, 100:0 VBR");

    struct Point
    {
        int vcs;
        config::CrossbarKind crossbar;
    };
    const Point points[] = {
        {16, config::CrossbarKind::Multiplexed},
        {8, config::CrossbarKind::Multiplexed},
        {4, config::CrossbarKind::Multiplexed},
        {4, config::CrossbarKind::Full},
    };
    const double loads[] = {0.50, 0.60, 0.70, 0.80, 0.90, 0.96};

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : loads) {
        for (const Point& point : points) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.numVcs = point.vcs;
            cfg.router.crossbar = point.crossbar;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 1.0;
            camp.addPoint(core::Table::num(load, 2) + "/"
                              + std::to_string(point.vcs) + "vc/"
                              + config::toString(point.crossbar),
                          cfg);
        }
    }
    const auto& results = bench::runCampaign("fig6_vc_crossbar", camp);

    core::Table table({"load", "VCs", "crossbar", "d (ms)",
                       "sigma_d (ms)"});
    std::size_t i = 0;
    for (double load : loads) {
        for (const Point& point : points) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2),
                 core::Table::num(
                     static_cast<std::int64_t>(point.vcs)),
                 config::toString(point.crossbar),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: 16 VCs jitter-free to the highest load; the "
                "4-VC full crossbar beats the 8-VC multiplexed "
                "design.\n");
    return 0;
}
