/**
 * @file
 * Figure 6: impact of VC count and crossbar organisation
 * (400 Mbps links, real-time only).
 *
 * Paper result: more VCs extend the jitter-free region (16 > 8 > 4
 * with a multiplexed crossbar); a 4-VC full crossbar (32x32) beats
 * the 8-VC multiplexed design and is competitive with 16 VCs.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 6",
                  "VC count and crossbar organisation, 100:0 VBR");

    struct Point
    {
        int vcs;
        config::CrossbarKind crossbar;
    };
    const Point points[] = {
        {16, config::CrossbarKind::Multiplexed},
        {8, config::CrossbarKind::Multiplexed},
        {4, config::CrossbarKind::Multiplexed},
        {4, config::CrossbarKind::Full},
    };

    core::Table table({"load", "VCs", "crossbar", "d (ms)",
                       "sigma_d (ms)"});

    for (double load : {0.50, 0.60, 0.70, 0.80, 0.90, 0.96}) {
        for (const Point& point : points) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.numVcs = point.vcs;
            cfg.router.crossbar = point.crossbar;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 1.0;

            const core::ExperimentResult r = core::runExperiment(cfg);
            table.addRow({core::Table::num(load, 2),
                          core::Table::num(
                              static_cast<std::int64_t>(point.vcs)),
                          config::toString(point.crossbar),
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: 16 VCs jitter-free to the highest load; the "
                "4-VC full crossbar beats the 8-VC multiplexed "
                "design.\n");
    return 0;
}
