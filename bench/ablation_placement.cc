/**
 * @file
 * Ablation: stream placement (admission control assumption).
 *
 * The paper's capacity arithmetic ("at most 6 connections per VC",
 * "48 outstanding/incoming streams at each node") implies balanced
 * admission. This sweep shows what happens without it: uniformly
 * random destinations/lanes oversubscribe some output (port, VC)
 * pairs by sqrt(n) imbalance and jitter appears well before the
 * balanced workload's saturation point - the quantitative case for
 * the admission-control strategies the paper's conclusions call for.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: stream placement",
                  "Balanced (admission-controlled) vs uniform random");

    const double loads[] = {0.70, 0.80, 0.90, 0.96};
    const config::StreamPlacement placements[] = {
        config::StreamPlacement::Balanced,
        config::StreamPlacement::UniformRandom,
    };

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : loads) {
        for (auto placement : placements) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;
            cfg.traffic.streamPlacement = placement;
            camp.addPoint(core::Table::num(load, 2) + "/"
                              + config::toString(placement),
                          cfg);
        }
    }
    const auto& results =
        bench::runCampaign("ablation_placement", camp);

    core::Table table({"load", "placement", "d (ms)", "sigma_d (ms)"});
    std::size_t i = 0;
    for (double load : loads) {
        for (auto placement : placements) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2),
                 config::toString(placement),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
