/**
 * @file
 * Ablation: stream placement (admission control assumption).
 *
 * The paper's capacity arithmetic ("at most 6 connections per VC",
 * "48 outstanding/incoming streams at each node") implies balanced
 * admission. This sweep shows what happens without it: uniformly
 * random destinations/lanes oversubscribe some output (port, VC)
 * pairs by sqrt(n) imbalance and jitter appears well before the
 * balanced workload's saturation point - the quantitative case for
 * the admission-control strategies the paper's conclusions call for.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: stream placement",
                  "Balanced (admission-controlled) vs uniform random");

    core::Table table({"load", "placement", "d (ms)", "sigma_d (ms)"});

    for (double load : {0.70, 0.80, 0.90, 0.96}) {
        for (auto placement :
             {config::StreamPlacement::Balanced,
              config::StreamPlacement::UniformRandom}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;
            cfg.traffic.streamPlacement = placement;

            const core::ExperimentResult r = core::runExperiment(cfg);
            table.addRow({core::Table::num(load, 2),
                          config::toString(placement),
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
