/**
 * @file
 * Figure 8: MediaWorm (wormhole) vs Pipelined Circuit Switching
 * (8x8 switch, 100 Mbps links, 24 VCs per PC).
 *
 * Paper result: PCS stays jitter-free past load 0.8 while wormhole
 * manages ~0.7 at this low link bandwidth - but PCS achieves it by
 * dropping a large share of connection requests (Table 3), whereas
 * wormhole accepts every stream.
 */

#include "bench_common.hh"
#include "pcs/pcs_experiment.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 8",
                  "Wormhole vs PCS, 100 Mbps links, 24 VCs");

    core::Table table({"load", "router", "d (ms)", "sigma_d (ms)",
                       "streams", "dropped"});

    for (double load : {0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90}) {
        {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.linkBandwidthMbps = 100;
            cfg.router.numVcs = 24;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 1.0;
            // Apples-to-apples with PCS, whose blind probes place
            // connections randomly: give wormhole the same random
            // placement (the paper's workload) instead of balanced
            // admission.
            cfg.traffic.streamPlacement =
                config::StreamPlacement::UniformRandom;

            const core::ExperimentResult r = core::runExperiment(cfg);
            table.addRow({core::Table::num(load, 2), "wormhole",
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3),
                          core::Table::num(static_cast<std::int64_t>(
                              r.rtStreams)),
                          "0"});
        }
        {
            pcs::PcsExperimentConfig cfg;
            cfg.traffic.inputLoad = load;
            cfg.traffic.warmupFrames = 2;
            cfg.traffic.measuredFrames = bench::measuredFrames();
            cfg.timeScale = bench::timeScale();

            const pcs::PcsExperimentResult r =
                pcs::runPcsExperiment(cfg);
            table.addRow({core::Table::num(load, 2), "PCS",
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3),
                          core::Table::num(static_cast<std::int64_t>(
                              r.established)),
                          core::Table::num(static_cast<std::int64_t>(
                              r.dropped))});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: PCS slightly better jitter at high load, at "
                "the cost of many dropped connection requests; "
                "wormhole turns nothing away.\n");
    return 0;
}
