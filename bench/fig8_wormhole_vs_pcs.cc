/**
 * @file
 * Figure 8: MediaWorm (wormhole) vs Pipelined Circuit Switching
 * (8x8 switch, 100 Mbps links, 24 VCs per PC).
 *
 * Paper result: PCS stays jitter-free past load 0.8 while wormhole
 * manages ~0.7 at this low link bandwidth - but PCS achieves it by
 * dropping a large share of connection requests (Table 3), whereas
 * wormhole accepts every stream.
 *
 * The PCS points run through the campaign engine's generic addJob()
 * path: an adapter maps PcsExperimentResult onto the shared
 * ExperimentResult metric slots and stashes the PCS-specific
 * connection accounting in a per-(point, replication) side table.
 */

#include <memory>

#include "bench_common.hh"
#include "pcs/pcs_experiment.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 8",
                  "Wormhole vs PCS, 100 Mbps links, 24 VCs");

    const double loads[] = {0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90};

    campaign::Campaign camp(bench::campaignConfig());
    const int reps = camp.config().replications;

    // dropped[point pairs][replication]; each (point, replication)
    // task writes its own pre-allocated slot, so no locking needed.
    auto dropped = std::make_shared<
        std::vector<std::vector<std::uint64_t>>>(
        std::size(loads),
        std::vector<std::uint64_t>(static_cast<std::size_t>(reps)));

    for (std::size_t li = 0; li < std::size(loads); ++li) {
        const double load = loads[li];
        {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.linkBandwidthMbps = 100;
            cfg.router.numVcs = 24;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 1.0;
            // Apples-to-apples with PCS, whose blind probes place
            // connections randomly: give wormhole the same random
            // placement (the paper's workload) instead of balanced
            // admission.
            cfg.traffic.streamPlacement =
                config::StreamPlacement::UniformRandom;
            camp.addPoint(core::Table::num(load, 2) + "/wormhole",
                          cfg);
        }
        {
            pcs::PcsExperimentConfig cfg;
            cfg.traffic.inputLoad = load;
            cfg.traffic.warmupFrames = 2;
            cfg.traffic.measuredFrames = bench::measuredFrames();
            cfg.timeScale = bench::timeScale();

            camp.addJob(
                core::Table::num(load, 2) + "/PCS",
                [cfg, li, dropped](std::uint64_t seed,
                                   int replication) {
                    pcs::PcsExperimentConfig run = cfg;
                    run.seed = seed;
                    const pcs::PcsExperimentResult p =
                        pcs::runPcsExperiment(run);
                    (*dropped)[li][static_cast<std::size_t>(
                        replication)] = p.dropped;

                    core::ExperimentResult r;
                    r.meanIntervalMs = p.meanIntervalMs;
                    r.stddevIntervalMs = p.stddevIntervalMs;
                    r.meanIntervalNormMs = p.meanIntervalNormMs;
                    r.stddevIntervalNormMs = p.stddevIntervalNormMs;
                    r.intervalSamples = p.intervalSamples;
                    r.framesDelivered = p.framesDelivered;
                    r.eventsFired = p.eventsFired;
                    r.truncated = p.truncated;
                    r.rtStreams = static_cast<int>(p.established);
                    return r;
                },
                cfg.seed);
        }
    }
    const auto& results =
        bench::runCampaign("fig8_wormhole_vs_pcs", camp);

    core::Table table({"load", "router", "d (ms)", "sigma_d (ms)",
                       "streams", "dropped"});
    std::size_t i = 0;
    for (std::size_t li = 0; li < std::size(loads); ++li) {
        const campaign::PointSummary& wh = results[i++];
        table.addRow(
            {core::Table::num(loads[li], 2), "wormhole",
             core::Table::num(wh.mean("mean_interval_norm_ms"), 2),
             core::Table::num(wh.mean("stddev_interval_norm_ms"), 3),
             core::Table::num(
                 static_cast<std::int64_t>(wh.first().rtStreams)),
             "0"});

        const campaign::PointSummary& pc = results[i++];
        table.addRow(
            {core::Table::num(loads[li], 2), "PCS",
             core::Table::num(pc.mean("mean_interval_norm_ms"), 2),
             core::Table::num(pc.mean("stddev_interval_norm_ms"), 3),
             core::Table::num(
                 static_cast<std::int64_t>(pc.first().rtStreams)),
             core::Table::num(static_cast<std::int64_t>(
                 (*dropped)[li][0]))});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: PCS slightly better jitter at high load, at "
                "the cost of many dropped connection requests; "
                "wormhole turns nothing away.\n");
    return 0;
}
