/**
 * @file
 * Arbitration-only microbenchmarks: the incremental MuxArbiter
 * kernels against the legacy rebuild-and-scan Scheduler pattern,
 * across scheduler kinds and VC counts.
 *
 * Both benchmarks run the same steady-state workload: every slot
 * holds a flit, each round picks a winner and the winner's next head
 * arrives with a fresh (stamp, seq). The legacy variant rebuilds the
 * candidate vector by scanning all slots each round - exactly the
 * pattern the router's serve loops used before the MuxArbiter - so
 * the pair isolates the cost the eligibility bitmask removed from
 * the per-flit path.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "config/router_config.hh"
#include "router/arbiter.hh"
#include "router/scheduler.hh"
#include "sim/random.hh"

namespace {

using namespace mediaworm;
using router::Candidate;
using router::MuxArbiter;
using sim::Tick;

constexpr Tick kCycle = 80000; // 400 Mbps, 32-bit flits.

/** A slot's requested rate; mixes CBR-like and best-effort flows. */
Tick
vtickFor(int slot)
{
    switch (slot % 4) {
      case 0:
        return 4 * sim::kMicrosecond;
      case 1:
        return 8 * sim::kMicrosecond;
      case 2:
        return 33 * sim::kMicrosecond;
      default:
        return router::kBestEffortVtick;
    }
}

void
BM_ArbiterKernelPick(benchmark::State& state)
{
    const auto kind =
        static_cast<config::SchedulerKind>(state.range(0));
    const int num_vcs = static_cast<int>(state.range(1));

    MuxArbiter arb;
    arb.init(kind, num_vcs);
    sim::Rng rng(17);
    std::uint64_t seq = 0;
    Tick now = 0;
    for (int v = 0; v < num_vcs; ++v) {
        arb.setEligible(v,
                        static_cast<Tick>(rng.uniformInt(1000000)),
                        seq++, vtickFor(v));
    }

    for (auto _ : state) {
        now += kCycle;
        const int winner = arb.pick();
        benchmark::DoNotOptimize(winner);
        // The winner's head leaves; the next queued flit arrives.
        arb.setEligible(
            winner,
            now + static_cast<Tick>(rng.uniformInt(1000000)), seq++,
            vtickFor(winner));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_LegacySchedulerPick(benchmark::State& state)
{
    const auto kind =
        static_cast<config::SchedulerKind>(state.range(0));
    const int num_vcs = static_cast<int>(state.range(1));

    auto scheduler = router::makeScheduler(kind);
    sim::Rng rng(17);
    std::uint64_t seq = 0;
    Tick now = 0;
    std::vector<Candidate> slots;
    for (int v = 0; v < num_vcs; ++v) {
        slots.push_back(
            {v, static_cast<Tick>(rng.uniformInt(1000000)), seq++,
             vtickFor(v)});
    }

    std::vector<Candidate> candidates;
    candidates.reserve(static_cast<std::size_t>(num_vcs));
    for (auto _ : state) {
        now += kCycle;
        // The pre-arbiter serve-loop pattern: rescan every slot into
        // a candidate vector, then pay the virtual pick.
        candidates.clear();
        for (int v = 0; v < num_vcs; ++v)
            candidates.push_back(slots[static_cast<std::size_t>(v)]);
        const std::size_t index = scheduler->pick(candidates);
        const int winner = candidates[index].slot;
        benchmark::DoNotOptimize(winner);
        Candidate& won = slots[static_cast<std::size_t>(winner)];
        won.stamp = now + static_cast<Tick>(rng.uniformInt(1000000));
        won.fifoSeq = seq++;
    }
    state.SetItemsProcessed(state.iterations());
}

void
arbiterArgs(benchmark::internal::Benchmark* bench)
{
    bench->ArgNames({"kind", "vcs"});
    for (int kind : {static_cast<int>(config::SchedulerKind::Fifo),
                     static_cast<int>(config::SchedulerKind::RoundRobin),
                     static_cast<int>(config::SchedulerKind::VirtualClock),
                     static_cast<int>(
                         config::SchedulerKind::WeightedRoundRobin)}) {
        for (int vcs : {4, 8, 16, 64})
            bench->Args({kind, vcs});
    }
}

BENCHMARK(BM_ArbiterKernelPick)->Apply(arbiterArgs);
BENCHMARK(BM_LegacySchedulerPick)->Apply(arbiterArgs);

/**
 * SoA-vs-AoS layout A/B for one Virtual Clock arbitration round.
 *
 * The MuxArbiter stores its cached head fields as three parallel
 * arrays (struct-of-arrays); before DESIGN.md section 13 they were a
 * vector of HeadRecord structs embedded among the rest of the per-VC
 * hot state. This pair isolates the layout effect alone: both
 * variants run the identical (stamp, fifoSeq) lexicographic kernel
 * over the same slot data, but the AoS variant strides through
 * fat per-VC records sized like the old InputVc/OutputVc structs, so
 * each comparison drags a full cache line of unrelated state.
 */

/** The pre-SoA layout: head fields embedded in a fat per-VC struct
 *  (padding stands in for buffers, pointers and flags). */
struct FatVcRecord
{
    Tick stamp = 0;
    std::uint64_t fifoSeq = 0;
    Tick vtick = router::kBestEffortVtick;
    char padding[104]; // the rest of the old per-VC hot struct
};

void
BM_ArbiterRoundAos(benchmark::State& state)
{
    const int num_vcs = static_cast<int>(state.range(0));
    std::vector<FatVcRecord> slots(
        static_cast<std::size_t>(num_vcs));
    sim::Rng rng(23);
    std::uint64_t seq = 0;
    Tick now = 0;
    for (auto& s : slots) {
        s.stamp = static_cast<Tick>(rng.uniformInt(1000000));
        s.fifoSeq = seq++;
    }

    const std::uint64_t mask = num_vcs >= 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << static_cast<unsigned>(num_vcs)) - 1;
    for (auto _ : state) {
        now += kCycle;
        std::uint64_t m = mask;
        int best = __builtin_ctzll(m);
        m &= m - 1;
        while (m != 0) {
            const int slot = __builtin_ctzll(m);
            m &= m - 1;
            const FatVcRecord& c =
                slots[static_cast<std::size_t>(slot)];
            const FatVcRecord& b =
                slots[static_cast<std::size_t>(best)];
            if (c.stamp < b.stamp
                || (c.stamp == b.stamp && c.fifoSeq < b.fifoSeq))
                best = slot;
        }
        benchmark::DoNotOptimize(best);
        FatVcRecord& won = slots[static_cast<std::size_t>(best)];
        won.stamp = now + static_cast<Tick>(rng.uniformInt(1000000));
        won.fifoSeq = seq++;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ArbiterRoundSoa(benchmark::State& state)
{
    const int num_vcs = static_cast<int>(state.range(0));
    MuxArbiter arb;
    arb.init(config::SchedulerKind::VirtualClock, num_vcs);
    sim::Rng rng(23);
    std::uint64_t seq = 0;
    Tick now = 0;
    for (int v = 0; v < num_vcs; ++v) {
        arb.setEligible(v,
                        static_cast<Tick>(rng.uniformInt(1000000)),
                        seq++, router::kBestEffortVtick);
    }

    for (auto _ : state) {
        now += kCycle;
        const int winner = arb.pick();
        benchmark::DoNotOptimize(winner);
        arb.setEligible(
            winner,
            now + static_cast<Tick>(rng.uniformInt(1000000)), seq++,
            router::kBestEffortVtick);
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ArbiterRoundAos)->ArgName("vcs")->Arg(16)->Arg(64);
BENCHMARK(BM_ArbiterRoundSoa)->ArgName("vcs")->Arg(16)->Arg(64);

/**
 * All-ports arbitration round through the MultiPortArbiter: one
 * vectorized peekAll() sweep over every port's eligibility mask,
 * then the per-port pickMasked() serve the router actually commits
 * (kept separate because serve side effects must stay in per-port
 * event order; see DESIGN.md section 14). The simd argument A/Bs the
 * vector kernels against the scalar ctz walk on identical state -
 * winners are bit-identical by construction, only the time moves.
 */
void
BM_MultiPortArbiter(benchmark::State& state)
{
    const int num_ports = static_cast<int>(state.range(0));
    const int num_vcs = static_cast<int>(state.range(1));
    const bool use_simd = state.range(2) != 0;

    router::MultiPortArbiter arb;
    arb.init(config::SchedulerKind::VirtualClock, num_ports, num_vcs,
             use_simd);
    sim::Rng rng(29);
    std::uint64_t seq = 0;
    Tick now = 0;
    for (int p = 0; p < num_ports; ++p) {
        for (int v = 0; v < num_vcs; ++v) {
            arb.setEligible(p, v,
                            static_cast<Tick>(rng.uniformInt(1000000)),
                            seq++, vtickFor(v));
        }
    }

    std::vector<int> winners(static_cast<std::size_t>(num_ports));
    for (auto _ : state) {
        now += kCycle;
        arb.peekAll(winners.data());
        benchmark::DoNotOptimize(winners.data());
        for (int p = 0; p < num_ports; ++p) {
            const int won = arb.pickMasked(p, arb.mask(p));
            benchmark::DoNotOptimize(won);
            arb.setEligible(
                p, won,
                now + static_cast<Tick>(rng.uniformInt(1000000)),
                seq++, vtickFor(won));
        }
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(num_ports));
}

void
multiPortArgs(benchmark::internal::Benchmark* bench)
{
    bench->ArgNames({"ports", "vcs", "simd"});
    for (int vcs : {16, 64}) {
        for (int simd : {0, 1})
            bench->Args({8, vcs, simd});
    }
}

BENCHMARK(BM_MultiPortArbiter)->Apply(multiPortArgs);

} // namespace

BENCHMARK_MAIN();
