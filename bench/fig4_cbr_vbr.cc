/**
 * @file
 * Figure 4: CBR-only vs VBR-only traffic (16 VCs, 400 Mbps links).
 *
 * Paper result: both classes behave nearly identically, with CBR
 * remaining jitter-free to a slightly higher load than VBR (constant
 * frame sizes tolerate jitter better), which is why the remaining
 * experiments focus on the more challenging VBR workload.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 4",
                  "CBR vs VBR, real-time only (100:0), 16 VCs");

    core::Table table({"load", "class", "d (ms)", "sigma_d (ms)"});

    for (double load : {0.60, 0.70, 0.80, 0.90, 0.96, 1.00}) {
        for (auto kind : {config::RealTimeKind::Cbr,
                          config::RealTimeKind::Vbr}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 1.0;
            cfg.traffic.realTimeKind = kind;

            const core::ExperimentResult r = core::runExperiment(cfg);
            table.addRow({core::Table::num(load, 2),
                          config::toString(kind),
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: CBR and VBR nearly identical; CBR jitter-free "
                "to slightly higher load.\n");
    return 0;
}
