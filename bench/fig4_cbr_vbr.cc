/**
 * @file
 * Figure 4: CBR-only vs VBR-only traffic (16 VCs, 400 Mbps links).
 *
 * Paper result: both classes behave nearly identically, with CBR
 * remaining jitter-free to a slightly higher load than VBR (constant
 * frame sizes tolerate jitter better), which is why the remaining
 * experiments focus on the more challenging VBR workload.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 4",
                  "CBR vs VBR, real-time only (100:0), 16 VCs");

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : {0.60, 0.70, 0.80, 0.90, 0.96, 1.00}) {
        for (auto kind : {config::RealTimeKind::Cbr,
                          config::RealTimeKind::Vbr}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 1.0;
            cfg.traffic.realTimeKind = kind;
            camp.addPoint(core::Table::num(load, 2) + "/"
                              + config::toString(kind),
                          cfg);
        }
    }
    const auto& results = bench::runCampaign("fig4_cbr_vbr", camp);

    core::Table table({"load", "class", "d (ms)", "sigma_d (ms)"});
    std::size_t i = 0;
    for (double load : {0.60, 0.70, 0.80, 0.90, 0.96, 1.00}) {
        for (auto kind : {config::RealTimeKind::Cbr,
                          config::RealTimeKind::Vbr}) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2), config::toString(kind),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: CBR and VBR nearly identical; CBR jitter-free "
                "to slightly higher load.\n");
    return 0;
}
