/**
 * @file
 * Ablation: fat-channel link-selection policy in the 2x2 fat-mesh.
 *
 * The paper routes over "any one of the two links ... based on the
 * current load". This sweep compares that least-loaded choice with
 * a static (hash) assignment and a random pick.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: fat-link policy",
                  "2x2 fat-mesh at 80:20, Virtual Clock");

    core::Table table({"load", "policy", "d (ms)", "sigma_d (ms)",
                       "BE total (us)"});

    for (double load : {0.70, 0.90}) {
        for (auto policy : {config::FatLinkPolicy::LeastLoaded,
                            config::FatLinkPolicy::Static,
                            config::FatLinkPolicy::Random}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.network.topology = config::TopologyKind::FatMesh;
            cfg.network.fatLinkPolicy = policy;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;

            const core::ExperimentResult r = core::runExperiment(cfg);
            table.addRow({core::Table::num(load, 2), toString(policy),
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3),
                          core::Table::num(r.beLatencyUs, 1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
