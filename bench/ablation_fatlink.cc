/**
 * @file
 * Ablation: fat-channel link-selection policy in the 2x2 fat-mesh.
 *
 * The paper routes over "any one of the two links ... based on the
 * current load". This sweep compares that least-loaded choice with
 * a static (hash) assignment and a random pick.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: fat-link policy",
                  "2x2 fat-mesh at 80:20, Virtual Clock");

    const double loads[] = {0.70, 0.90};
    const config::FatLinkPolicy policies[] = {
        config::FatLinkPolicy::LeastLoaded,
        config::FatLinkPolicy::Static,
        config::FatLinkPolicy::Random,
    };

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : loads) {
        for (auto policy : policies) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.network.topology = config::TopologyKind::FatMesh;
            cfg.network.fatLinkPolicy = policy;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;
            camp.addPoint(core::Table::num(load, 2) + "/"
                              + toString(policy),
                          cfg);
        }
    }
    const auto& results =
        bench::runCampaign("ablation_fatlink", camp);

    core::Table table({"load", "policy", "d (ms)", "sigma_d (ms)",
                       "BE total (us)"});
    std::size_t i = 0;
    for (double load : loads) {
        for (auto policy : policies) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2), toString(policy),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3),
                 core::Table::num(r.mean("be_latency_us"), 1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
