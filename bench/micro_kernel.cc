/**
 * @file
 * google-benchmark microbenchmarks of the simulator hot paths: event
 * queue operations, random number generation, scheduler picks and a
 * small end-to-end experiment (events per second).
 */

#include <benchmark/benchmark.h>

#include "core/mediaworm.hh"

namespace {

using namespace mediaworm;

void
BM_EventQueueScheduleFire(benchmark::State& state)
{
    sim::Simulator simulator(7);
    const int fanout = static_cast<int>(state.range(0));
    std::vector<std::unique_ptr<sim::CallbackEvent>> events;
    events.reserve(static_cast<std::size_t>(fanout));
    for (int i = 0; i < fanout; ++i) {
        events.push_back(std::make_unique<sim::CallbackEvent>(
            [] {}, "bench"));
    }
    sim::Tick when = 1;
    for (auto _ : state) {
        for (auto& event : events)
            simulator.schedule(*event,
                               when + static_cast<sim::Tick>(
                                   simulator.rng().uniformInt(1000)));
        simulator.run(when + 1000);
        when += 2000;
    }
    state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(16)->Arg(256)->Arg(4096);

void
BM_RngUniform(benchmark::State& state)
{
    sim::Rng rng(3);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.uniformInt(1000);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void
BM_NormalDistribution(benchmark::State& state)
{
    sim::Rng rng(3);
    sim::NormalDistribution normal(16666.0, 3333.0);
    double sink = 0;
    for (auto _ : state)
        sink += normal.sample(rng);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NormalDistribution);

void
BM_SchedulerPick(benchmark::State& state)
{
    const auto kind =
        static_cast<config::SchedulerKind>(state.range(0));
    auto scheduler = router::makeScheduler(kind);
    std::vector<router::Candidate> candidates;
    sim::Rng rng(11);
    for (int i = 0; i < 16; ++i) {
        candidates.push_back(
            {i, static_cast<sim::Tick>(rng.uniformInt(1000000)),
             rng.next(), 8 * sim::kMicrosecond});
    }
    std::size_t sink = 0;
    for (auto _ : state)
        sink += scheduler->pick(candidates);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerPick)
    ->Arg(static_cast<int>(config::SchedulerKind::Fifo))
    ->Arg(static_cast<int>(config::SchedulerKind::VirtualClock))
    ->Arg(static_cast<int>(config::SchedulerKind::WeightedRoundRobin));

void
BM_EndToEndExperiment(benchmark::State& state)
{
    for (auto _ : state) {
        core::ExperimentConfig cfg;
        cfg.traffic.inputLoad = 0.6;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2;
        cfg.timeScale = 0.05;
        const core::ExperimentResult result =
            core::runExperiment(cfg);
        benchmark::DoNotOptimize(result.eventsFired);
        state.counters["events/s"] = benchmark::Counter(
            static_cast<double>(result.eventsFired),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
