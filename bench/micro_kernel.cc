/**
 * @file
 * google-benchmark microbenchmarks of the simulator hot paths: event
 * queue operations, random number generation, scheduler picks and a
 * small end-to-end experiment (events per second).
 */

#include <benchmark/benchmark.h>

#include "core/mediaworm.hh"

namespace {

using namespace mediaworm;

void
BM_EventQueueScheduleFire(benchmark::State& state)
{
    sim::Simulator simulator(7);
    const int fanout = static_cast<int>(state.range(0));
    std::vector<std::unique_ptr<sim::CallbackEvent>> events;
    events.reserve(static_cast<std::size_t>(fanout));
    for (int i = 0; i < fanout; ++i) {
        events.push_back(std::make_unique<sim::CallbackEvent>(
            [] {}, "bench"));
    }
    sim::Tick when = 1;
    for (auto _ : state) {
        for (auto& event : events)
            simulator.schedule(*event,
                               when + static_cast<sim::Tick>(
                                   simulator.rng().uniformInt(1000)));
        simulator.run(when + 1000);
        when += 2000;
    }
    state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(16)->Arg(256)->Arg(4096);

/**
 * The dominant real scheduling pattern: each fired event reschedules
 * itself 1-4 cycles ahead, like the router's multiplexer service
 * slots and link deliveries. Exercises the near-tier fast path.
 */
void
BM_EventQueueNearFuture(benchmark::State& state)
{
    constexpr sim::Tick kCycle = 80000; // 400 Mbps, 32-bit flits
    const int population = static_cast<int>(state.range(0));
    sim::Simulator simulator(7);
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<sim::CallbackEvent>> events;
    events.reserve(static_cast<std::size_t>(population));
    for (int i = 0; i < population; ++i) {
        auto event = std::make_unique<sim::CallbackEvent>([] {},
                                                          "bench");
        sim::CallbackEvent* raw = event.get();
        raw->setCallback([&simulator, &fired, raw] {
            ++fired;
            const sim::Tick delta =
                (1 + static_cast<sim::Tick>(
                         simulator.rng().uniformInt(4)))
                * kCycle;
            simulator.schedule(*raw, simulator.now() + delta);
        });
        events.push_back(std::move(event));
    }
    sim::Tick horizon = 0;
    for (auto _ : state) {
        if (horizon == 0) {
            for (auto& event : events)
                simulator.schedule(*event, horizon + kCycle);
        }
        horizon += 100 * kCycle;
        simulator.run(horizon);
    }
    for (auto& event : events)
        simulator.deschedule(*event);
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueNearFuture)->Arg(64)->Arg(1024);

/** Link transfer: flits and (coalesced) credits through the pipes. */
void
BM_LinkFlitCreditTransfer(benchmark::State& state)
{
    class Sink final : public router::FlitReceiver,
                       public router::CreditReceiver
    {
      public:
        explicit Sink(router::Link& reverse) : reverse_(reverse) {}
        void
        receiveFlit(const router::Flit& flit, int vc) override
        {
            (void)flit;
            reverse_.sendCredit(vc);
        }
        void creditReturned(int vc) override { credits_ += vc; }
        std::uint64_t credits_ = 0;

      private:
        router::Link& reverse_;
    };

    sim::Simulator simulator(7);
    const sim::Tick delay = 2 * 80000; // two cycles
    router::Link link(simulator, delay, "bench");
    Sink sink(link);
    link.connectReceiver(&sink);
    link.connectCreditReceiver(&sink);

    router::Flit flit;
    std::uint64_t sent = 0;
    for (auto _ : state) {
        for (int burst = 0; burst < 64; ++burst) {
            link.sendFlit(flit, burst % 4);
            ++sent;
        }
        simulator.run(simulator.now() + 10 * delay);
    }
    benchmark::DoNotOptimize(sink.credits_);
    state.SetItemsProcessed(static_cast<std::int64_t>(sent));
}
BENCHMARK(BM_LinkFlitCreditTransfer);

void
BM_RngUniform(benchmark::State& state)
{
    sim::Rng rng(3);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.uniformInt(1000);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void
BM_NormalDistribution(benchmark::State& state)
{
    sim::Rng rng(3);
    sim::NormalDistribution normal(16666.0, 3333.0);
    double sink = 0;
    for (auto _ : state)
        sink += normal.sample(rng);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NormalDistribution);

void
BM_SchedulerPick(benchmark::State& state)
{
    const auto kind =
        static_cast<config::SchedulerKind>(state.range(0));
    auto scheduler = router::makeScheduler(kind);
    std::vector<router::Candidate> candidates;
    sim::Rng rng(11);
    for (int i = 0; i < 16; ++i) {
        candidates.push_back(
            {i, static_cast<sim::Tick>(rng.uniformInt(1000000)),
             rng.next(), 8 * sim::kMicrosecond});
    }
    std::size_t sink = 0;
    for (auto _ : state)
        sink += scheduler->pick(candidates);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerPick)
    ->Arg(static_cast<int>(config::SchedulerKind::Fifo))
    ->Arg(static_cast<int>(config::SchedulerKind::VirtualClock))
    ->Arg(static_cast<int>(config::SchedulerKind::WeightedRoundRobin));

void
BM_EndToEndExperiment(benchmark::State& state)
{
    for (auto _ : state) {
        core::ExperimentConfig cfg;
        cfg.traffic.inputLoad = 0.6;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2;
        cfg.timeScale = 0.05;
        const core::ExperimentResult result =
            core::runExperiment(cfg);
        benchmark::DoNotOptimize(result.eventsFired);
        state.counters["events/s"] = benchmark::Counter(
            static_cast<double>(result.eventsFired),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

/**
 * The same experiment with per-stream telemetry collecting, so the
 * observation overhead is a tracked number. Compare its events/s
 * against BM_EndToEndExperiment in the same entry: the gap is the
 * telemetry tax (expected low single-digit percent), and the
 * telemetry-off row itself is gated against the committed baseline
 * (tools/check_bench_regression.py --threshold 0.05 in CI) so the
 * hooks can never silently slow the disabled path.
 */
void
BM_EndToEndExperimentTelemetry(benchmark::State& state)
{
    for (auto _ : state) {
        core::ExperimentConfig cfg;
        cfg.traffic.inputLoad = 0.6;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2;
        cfg.timeScale = 0.05;
        cfg.obs.telemetry.enabled = true;
        const core::ExperimentResult result =
            core::runExperiment(cfg);
        benchmark::DoNotOptimize(result.eventsFired);
        benchmark::DoNotOptimize(result.observations);
        state.counters["events/s"] = benchmark::Counter(
            static_cast<double>(result.eventsFired),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_EndToEndExperimentTelemetry)
    ->Unit(benchmark::kMillisecond);

/**
 * Multi-hop end-to-end row on the topology-graph path: a 4x4 torus
 * under dimension-order routing with dateline VC classes, the shape
 * the Fig-3/5/9 multi-hop comparisons run on. Tracks the cost of
 * table-routed wormhole traversal (route table lookups, VC-class
 * mapping, per-hop credit loops) the single-switch headline never
 * exercises. Gated against the committed baseline in CI.
 */
void
BM_EndToEndTorus(benchmark::State& state)
{
    for (auto _ : state) {
        core::ExperimentConfig cfg;
        cfg.network.topology = config::TopologyKind::Torus;
        cfg.network.meshWidth = 4;
        cfg.network.meshHeight = 4;
        cfg.network.endpointsPerSwitch = 1;
        cfg.traffic.inputLoad = 0.6;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2;
        cfg.timeScale = 0.05;
        const core::ExperimentResult result =
            core::runExperiment(cfg);
        benchmark::DoNotOptimize(result.eventsFired);
        state.counters["events/s"] = benchmark::Counter(
            static_cast<double>(result.eventsFired),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_EndToEndTorus)->Unit(benchmark::kMillisecond);

/**
 * Batched router-tick dispatch A/B (DESIGN.md section 13): the same
 * small experiment with the legacy per-event loop (batched:0) and
 * with one-virtual-call-per-router-tick batching plus lazy-tick
 * elision (batched:1). Results are bit-identical either way
 * (tests/test_determinism.cc); the events/s gap is the dispatch +
 * elision win. The batched:1 row is gated against the committed
 * baseline in CI.
 */
void
BM_BatchedRouterTick(benchmark::State& state)
{
    const bool batched = state.range(0) != 0;
    for (auto _ : state) {
        core::ExperimentConfig cfg;
        cfg.traffic.inputLoad = 0.6;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2;
        cfg.timeScale = 0.05;
        cfg.batchedDispatch = batched;
        const core::ExperimentResult result =
            core::runExperiment(cfg);
        benchmark::DoNotOptimize(result.eventsFired);
        state.counters["events/s"] = benchmark::Counter(
            static_cast<double>(result.eventsFired),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_BatchedRouterTick)
    ->ArgName("batched")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Idle-epoch fast-forward A/B (DESIGN.md section 14): a nearly idle
 * router (2% offered load) whose simulated time is dominated by
 * empty stretches between frames. With fastforward:0 the kernel
 * still walks every lazy-elision drain scan on the legacy path;
 * with fastforward:1 the O(1) lazy index lets the clock jump
 * straight between real events. Results are bit-identical either
 * way (tests/test_determinism.cc); the wall-time gap is the pure
 * fast-forward win, and the skipped_ticks counter shows how much
 * simulated time never touched the calendar ring.
 */
void
BM_IdleEpochFastForward(benchmark::State& state)
{
    const bool fast_forward = state.range(0) != 0;
    for (auto _ : state) {
        core::ExperimentConfig cfg;
        cfg.traffic.inputLoad = 0.02;
        cfg.traffic.realTimeFraction = 1.0;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2;
        cfg.timeScale = 0.05;
        cfg.fastForward = fast_forward;
        const core::ExperimentResult result =
            core::runExperiment(cfg);
        benchmark::DoNotOptimize(result.eventsFired);
        state.counters["events/s"] = benchmark::Counter(
            static_cast<double>(result.eventsFired),
            benchmark::Counter::kIsIterationInvariantRate);
        state.counters["skipped_ticks"] = benchmark::Counter(
            static_cast<double>(result.idleTicksSkipped));
    }
}
BENCHMARK(BM_IdleEpochFastForward)
    ->ArgName("fastforward")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Conservative-PDES scaling: one 4x2 fat-mesh experiment partitioned
 * across N shards (Arg = ExperimentConfig::shards; 1 is the classic
 * single-threaded kernel and the determinism oracle - every arg
 * produces the bit-identical result, see tests/test_pdes.cc). The
 * interesting comparison is events/s across args on the same host:
 * speedup is bounded by the host's core count and by how much work
 * each 160 ns lookahead window holds, so read these rows together
 * with the entry's recorded host metadata (cores, CPU model) in
 * BENCH_kernel.json - a 1-core host legitimately shows slowdown, not
 * speedup, and that is worth recording too.
 */
void
BM_EndToEndFatMeshShards(benchmark::State& state)
{
    for (auto _ : state) {
        core::ExperimentConfig cfg;
        cfg.network.topology = config::TopologyKind::FatMesh;
        cfg.network.meshWidth = 4;
        cfg.network.meshHeight = 2;
        cfg.network.fatFactor = 2;
        cfg.network.endpointsPerSwitch = 4;
        cfg.router.numPorts = 10;
        cfg.traffic.inputLoad = 0.7;
        cfg.traffic.realTimeFraction = 0.6;
        cfg.traffic.warmupFrames = 1;
        cfg.traffic.measuredFrames = 2;
        cfg.timeScale = 0.05;
        cfg.shards = static_cast<int>(state.range(0));
        const core::ExperimentResult result =
            core::runExperiment(cfg);
        benchmark::DoNotOptimize(result.eventsFired);
        state.counters["events/s"] = benchmark::Counter(
            static_cast<double>(result.eventsFired),
            benchmark::Counter::kIsIterationInvariantRate);
    }
}
BENCHMARK(BM_EndToEndFatMeshShards)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    // Rates must divide by wall-clock time, not the main thread's
    // CPU time: with N shards the main thread spends most of the run
    // blocked on the epoch barrier, which would inflate events/s by
    // exactly the factor the benchmark exists to measure.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
