/**
 * @file
 * Figure 9: a (2x2) fat-mesh of MediaWorm routers (two parallel
 * links between adjacent switches, four endpoints per switch).
 *
 * Paper result: VBR stays jitter-free for 40:60 and 60:40 mixes even
 * at a total load of 0.9; only (load 0.9, mix 80:20) degrades.
 * Best-effort latency rises with the VBR share at every load. The
 * fat-mesh saturates slightly earlier than a single switch
 * (compare Figure 5).
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 9", "2x2 fat-mesh, d / sigma_d / BE latency");

    core::Table table({"load", "mix (x:y)", "d (ms)", "sigma_d (ms)",
                       "BE total (us)", "BE network (us)"});

    for (double load : {0.70, 0.80, 0.90}) {
        for (double rt : {0.4, 0.6, 0.8}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.network.topology = config::TopologyKind::FatMesh;
            cfg.network.meshWidth = 2;
            cfg.network.meshHeight = 2;
            cfg.network.fatFactor = 2;
            cfg.network.endpointsPerSwitch = 4;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = rt;

            const core::ExperimentResult r = core::runExperiment(cfg);
            char mix[16];
            std::snprintf(mix, sizeof(mix), "%.0f:%.0f", rt * 100,
                          (1 - rt) * 100);
            table.addRow({core::Table::num(load, 2), mix,
                          core::Table::num(r.meanIntervalNormMs, 2),
                          core::Table::num(r.stddevIntervalNormMs, 3),
                          core::Table::num(r.beLatencyUs, 1),
                          core::Table::num(r.beNetworkLatencyUs, 1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: only (0.9, 80:20) degrades; BE latency grows "
                "with the VBR share at a given load.\n");
    return 0;
}
