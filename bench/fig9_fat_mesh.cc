/**
 * @file
 * Figure 9: a (2x2) fat-mesh of MediaWorm routers (two parallel
 * links between adjacent switches, four endpoints per switch).
 *
 * Paper result: VBR stays jitter-free for 40:60 and 60:40 mixes even
 * at a total load of 0.9; only (load 0.9, mix 80:20) degrades.
 * Best-effort latency rises with the VBR share at every load. The
 * fat-mesh saturates slightly earlier than a single switch
 * (compare Figure 5).
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Figure 9", "2x2 fat-mesh, d / sigma_d / BE latency");

    const double loads[] = {0.70, 0.80, 0.90};
    const double rts[] = {0.4, 0.6, 0.8};

    auto mixLabel = [](double rt) {
        char mix[16];
        std::snprintf(mix, sizeof(mix), "%.0f:%.0f", rt * 100,
                      (1 - rt) * 100);
        return std::string(mix);
    };

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : loads) {
        for (double rt : rts) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.network.topology = config::TopologyKind::FatMesh;
            cfg.network.meshWidth = 2;
            cfg.network.meshHeight = 2;
            cfg.network.fatFactor = 2;
            cfg.network.endpointsPerSwitch = 4;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = rt;
            camp.addPoint(
                core::Table::num(load, 2) + "/" + mixLabel(rt), cfg);
        }
    }
    const auto& results = bench::runCampaign("fig9_fat_mesh", camp);

    core::Table table({"load", "mix (x:y)", "d (ms)", "sigma_d (ms)",
                       "BE total (us)", "BE network (us)"});
    std::size_t i = 0;
    for (double load : loads) {
        for (double rt : rts) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2), mixLabel(rt),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3),
                 core::Table::num(r.mean("be_latency_us"), 1),
                 core::Table::num(r.mean("be_network_latency_us"),
                                  1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Paper: only (0.9, 80:20) degrades; BE latency grows "
                "with the VBR share at a given load.\n");
    return 0;
}
