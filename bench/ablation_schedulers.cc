/**
 * @file
 * Ablation: all four multiplexer disciplines at the crossbar input
 * (FIFO, round-robin, weighted round-robin, Virtual Clock).
 *
 * The paper only contrasts Virtual Clock with FIFO; this sweep
 * checks that rate-awareness (not merely fairness) is what buys the
 * extended jitter-free region: round-robin is fair but rate-blind,
 * weighted round-robin is rate-aware but not deadline-ordered.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Ablation: schedulers",
                  "Discipline sweep at the crossbar-input mux, 80:20");

    const double loads[] = {0.80, 0.90, 0.96, 1.00};
    const config::SchedulerKind scheds[] = {
        config::SchedulerKind::Fifo,
        config::SchedulerKind::RoundRobin,
        config::SchedulerKind::WeightedRoundRobin,
        config::SchedulerKind::VirtualClock,
    };

    campaign::Campaign camp(bench::campaignConfig());
    for (double load : loads) {
        for (auto sched : scheds) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.router.scheduler = sched;
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = 0.8;
            camp.addPoint(core::Table::num(load, 2) + "/"
                              + config::toString(sched),
                          cfg);
        }
    }
    const auto& results =
        bench::runCampaign("ablation_schedulers", camp);

    core::Table table({"load", "scheduler", "d (ms)", "sigma_d (ms)",
                       "BE total (us)"});
    std::size_t i = 0;
    for (double load : loads) {
        for (auto sched : scheds) {
            const campaign::PointSummary& r = results[i++];
            table.addRow(
                {core::Table::num(load, 2), config::toString(sched),
                 core::Table::num(r.mean("mean_interval_norm_ms"), 2),
                 core::Table::num(r.mean("stddev_interval_norm_ms"),
                                  3),
                 core::Table::num(r.mean("be_latency_us"), 1)});
        }
    }

    std::printf("%s\n", table.toString().c_str());
    return 0;
}
