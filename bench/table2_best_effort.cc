/**
 * @file
 * Table 2: average best-effort latency (us) across mixes and loads
 * (8x8 switch, 16 VCs, 400 Mbps links).
 *
 * Paper rows (microseconds; "Sat." = saturated):
 *   mix    0.60  0.70   0.80   0.90   0.96
 *   20:80   6.3   9.0   16.2   36.9   43.6
 *   50:50   7.7  11.4   25.5   56.1   64.6
 *   80:20  10.3  15.8   39.7  106.9   Sat.
 *   90:10  11.9  19.3  106.2   Sat.   Sat.
 *
 * The paper does not state whether host-side (source queue) time is
 * included; our in-network column matches its magnitudes, and the
 * total column diverges exactly where the paper marks saturation.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Table 2",
                  "Average best-effort latency vs mix and load");

    core::Table total({"mix (x:y)", "0.60", "0.70", "0.80", "0.90",
                       "0.96"});
    core::Table network({"mix (x:y)", "0.60", "0.70", "0.80", "0.90",
                         "0.96"});

    for (double rt : {0.2, 0.5, 0.8, 0.9}) {
        char mix[16];
        std::snprintf(mix, sizeof(mix), "%.0f:%.0f", rt * 100,
                      (1 - rt) * 100);
        std::vector<std::string> total_row{mix};
        std::vector<std::string> net_row{mix};
        for (double load : {0.60, 0.70, 0.80, 0.90, 0.96}) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = rt;

            const core::ExperimentResult r = core::runExperiment(cfg);
            // Call a point saturated when host queues push total
            // latency beyond a millisecond (offered > sustainable).
            total_row.push_back(r.beLatencyUs > 1000.0
                                    ? "Sat."
                                    : core::Table::num(r.beLatencyUs,
                                                       1));
            net_row.push_back(
                core::Table::num(r.beNetworkLatencyUs, 1));
        }
        total.addRow(std::move(total_row));
        network.addRow(std::move(net_row));
    }

    std::printf("Total latency (host queue + network), us:\n%s\n",
                total.toString().c_str());
    std::printf("In-network latency (NI exit to sink), us:\n%s\n",
                network.toString().c_str());
    std::printf("Paper: latency grows with load and with the RT "
                "share; (80:20, 0.96) and (90:10, >=0.90) saturate.\n");
    return 0;
}
