/**
 * @file
 * Table 2: average best-effort latency (us) across mixes and loads
 * (8x8 switch, 16 VCs, 400 Mbps links).
 *
 * Paper rows (microseconds; "Sat." = saturated):
 *   mix    0.60  0.70   0.80   0.90   0.96
 *   20:80   6.3   9.0   16.2   36.9   43.6
 *   50:50   7.7  11.4   25.5   56.1   64.6
 *   80:20  10.3  15.8   39.7  106.9   Sat.
 *   90:10  11.9  19.3  106.2   Sat.   Sat.
 *
 * The paper does not state whether host-side (source queue) time is
 * included; our in-network column matches its magnitudes, and the
 * total column diverges exactly where the paper marks saturation.
 */

#include "bench_common.hh"

int
main()
{
    using namespace mediaworm;
    bench::banner("Table 2",
                  "Average best-effort latency vs mix and load");

    const double rts[] = {0.2, 0.5, 0.8, 0.9};
    const double loads[] = {0.60, 0.70, 0.80, 0.90, 0.96};

    auto mixLabel = [](double rt) {
        char mix[16];
        std::snprintf(mix, sizeof(mix), "%.0f:%.0f", rt * 100,
                      (1 - rt) * 100);
        return std::string(mix);
    };

    campaign::Campaign camp(bench::campaignConfig());
    for (double rt : rts) {
        for (double load : loads) {
            core::ExperimentConfig cfg = bench::paperConfig();
            cfg.traffic.inputLoad = load;
            cfg.traffic.realTimeFraction = rt;
            camp.addPoint(
                mixLabel(rt) + "/" + core::Table::num(load, 2), cfg);
        }
    }
    const auto& results =
        bench::runCampaign("table2_best_effort", camp);

    core::Table total({"mix (x:y)", "0.60", "0.70", "0.80", "0.90",
                       "0.96"});
    core::Table network({"mix (x:y)", "0.60", "0.70", "0.80", "0.90",
                         "0.96"});
    std::size_t i = 0;
    for (double rt : rts) {
        std::vector<std::string> total_row{mixLabel(rt)};
        std::vector<std::string> net_row{mixLabel(rt)};
        for (double load : loads) {
            (void)load;
            const campaign::PointSummary& r = results[i++];
            const double be = r.mean("be_latency_us");
            // Call a point saturated when host queues push total
            // latency beyond a millisecond (offered > sustainable).
            total_row.push_back(be > 1000.0
                                    ? "Sat."
                                    : core::Table::num(be, 1));
            net_row.push_back(core::Table::num(
                r.mean("be_network_latency_us"), 1));
        }
        total.addRow(std::move(total_row));
        network.addRow(std::move(net_row));
    }

    std::printf("Total latency (host queue + network), us:\n%s\n",
                total.toString().c_str());
    std::printf("In-network latency (NI exit to sink), us:\n%s\n",
                network.toString().c_str());
    std::printf("Paper: latency grows with load and with the RT "
                "share; (80:20, 0.96) and (90:10, >=0.90) saturate.\n");
    return 0;
}
