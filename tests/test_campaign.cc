/**
 * @file
 * Tests for the parallel campaign engine: seed derivation, thread
 * pool, confidence-interval math, the JSON writer, and the
 * parallel-vs-sequential determinism contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "campaign/aggregate.hh"
#include "campaign/artifact.hh"
#include "campaign/campaign.hh"
#include "campaign/json.hh"
#include "campaign/seeds.hh"
#include "campaign/thread_pool.hh"
#include "core/experiment.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::campaign;

// --- Seed derivation ---------------------------------------------------

TEST(Seeds, DerivationIsDeterministic)
{
    EXPECT_EQ(deriveSeed(1, 2, 3), deriveSeed(1, 2, 3));
    EXPECT_NE(deriveSeed(1, 0, 0), 1u) << "root must be mixed";
}

TEST(Seeds, UniqueAcrossPointsAndReplications)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t point = 0; point < 64; ++point)
        for (std::uint64_t rep = 0; rep < 16; ++rep)
            seen.insert(deriveSeed(42, point, rep));
    EXPECT_EQ(seen.size(), 64u * 16u)
        << "every (point, replication) pair needs its own seed";
}

TEST(Seeds, ComponentsAreNotInterchangeable)
{
    // (point, rep) must not commute, and the root must matter.
    EXPECT_NE(deriveSeed(1, 2, 3), deriveSeed(1, 3, 2));
    EXPECT_NE(deriveSeed(1, 2, 3), deriveSeed(2, 2, 3));
}

TEST(Seeds, SplitmixIsBijectiveOnSamples)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t x = 0; x < 4096; ++x)
        seen.insert(splitmix64(x));
    EXPECT_EQ(seen.size(), 4096u);
}

// --- Confidence-interval math ------------------------------------------

TEST(Aggregate, HandComputedFiveValues)
{
    // {1..5}: mean 3, sample stddev sqrt(2.5), t(0.975, df=4)=2.776
    // => ci95 = 2.776 * 1.5811388 / sqrt(5) = 1.96293.
    const MetricSummary s = aggregate({1, 2, 3, 4, 5});
    EXPECT_EQ(s.n, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_NEAR(s.stddev, 1.5811388, 1e-6);
    EXPECT_NEAR(s.ci95, 1.96293, 1e-4);
    EXPECT_NEAR(s.lo(), 3.0 - 1.96293, 1e-4);
    EXPECT_NEAR(s.hi(), 3.0 + 1.96293, 1e-4);
}

TEST(Aggregate, HandComputedTwoValues)
{
    // {2, 4}: mean 3, stddev sqrt(2), t(0.975, df=1)=12.706
    // => ci95 = 12.706 * sqrt(2) / sqrt(2) = 12.706.
    const MetricSummary s = aggregate({2, 4});
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(s.ci95, 12.706, 1e-9);
}

TEST(Aggregate, SingleValueHasNoErrorBar)
{
    const MetricSummary s = aggregate({7.5});
    EXPECT_EQ(s.n, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 7.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Aggregate, TCriticalTable)
{
    EXPECT_NEAR(tCritical95(1), 12.706, 1e-9);
    EXPECT_NEAR(tCritical95(4), 2.776, 1e-9);
    EXPECT_NEAR(tCritical95(30), 2.042, 1e-9);
    EXPECT_NEAR(tCritical95(100), 1.960, 1e-9);
}

// --- JSON writer -------------------------------------------------------

TEST(Json, ObjectsArraysAndEscapes)
{
    JsonWriter json;
    json.beginObject();
    json.member("name", "a\"b\\c\nd");
    json.key("values");
    json.beginArray();
    json.value(std::int64_t{-3});
    json.value(2.5);
    json.value(true);
    json.endArray();
    json.endObject();

    const std::string text = json.str();
    EXPECT_NE(text.find("\"a\\\"b\\\\c\\nd\""), std::string::npos)
        << text;
    EXPECT_NE(text.find("-3"), std::string::npos);
    EXPECT_NE(text.find("2.5"), std::string::npos);
    EXPECT_NE(text.find("true"), std::string::npos);
}

TEST(Json, NonFiniteBecomesNull)
{
    JsonWriter json;
    json.beginObject();
    json.member("nan", std::nan(""));
    json.endObject();
    EXPECT_NE(json.str().find("\"nan\": null"), std::string::npos)
        << json.str();
}

TEST(Json, ControlCharactersEscaped)
{
    EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
    EXPECT_EQ(JsonWriter::escape("\t"), "\\t");
}

// --- Thread pool -------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

// --- Campaign engine ---------------------------------------------------

core::ExperimentConfig
tinyConfig()
{
    core::ExperimentConfig cfg;
    cfg.traffic.warmupFrames = 0;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.02;
    return cfg;
}

Campaign
tinyCampaign(int jobs, int replications)
{
    CampaignConfig ccfg;
    ccfg.jobs = jobs;
    ccfg.replications = replications;
    Campaign camp(ccfg);
    for (double load : {0.3, 0.5, 0.7}) {
        core::ExperimentConfig cfg = tinyConfig();
        cfg.traffic.inputLoad = load;
        camp.addPoint("load=" + std::to_string(load), cfg);
    }
    return camp;
}

TEST(Campaign, ParallelAggregatesMatchSequentialExactly)
{
    Campaign seq = tinyCampaign(1, 3);
    Campaign par = tinyCampaign(8, 3);
    const auto& a = seq.run();
    const auto& b = par.run();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        ASSERT_EQ(a[p].reps.size(), b[p].reps.size());
        for (std::size_t r = 0; r < a[p].reps.size(); ++r) {
            EXPECT_EQ(a[p].reps[r].eventsFired,
                      b[p].reps[r].eventsFired);
            EXPECT_EQ(a[p].reps[r].framesDelivered,
                      b[p].reps[r].framesDelivered);
        }
        const auto& defs = metricDefs();
        for (std::size_t m = 0; m < defs.size(); ++m) {
            if (!defs[m].deterministic)
                continue;
            EXPECT_EQ(a[p].metrics[m].mean, b[p].metrics[m].mean)
                << defs[m].name;
            EXPECT_EQ(a[p].metrics[m].ci95, b[p].metrics[m].ci95)
                << defs[m].name;
        }
    }
}

TEST(Campaign, ArtifactWithoutTimingIsByteIdenticalAcrossJobs)
{
    Campaign seq = tinyCampaign(1, 2);
    Campaign par = tinyCampaign(8, 2);
    seq.run();
    par.run();

    ArtifactOptions options;
    options.name = "determinism-check";
    options.includeTiming = false;
    EXPECT_EQ(toJson(seq, options), toJson(par, options));
}

TEST(Campaign, ReplicationsUseDistinctSeeds)
{
    Campaign camp = tinyCampaign(1, 3);
    const auto& results = camp.run();
    // Different derived seeds give different event interleavings;
    // identical counts across all pairs would mean a shared seed.
    const auto& reps = results[0].reps;
    EXPECT_FALSE(reps[0].eventsFired == reps[1].eventsFired
                 && reps[1].eventsFired == reps[2].eventsFired)
        << "replications ran with identical seeds";
}

TEST(Campaign, AggregatesCoverAllMetrics)
{
    Campaign camp = tinyCampaign(2, 2);
    const auto& results = camp.run();
    ASSERT_EQ(results.size(), 3u);
    for (const PointSummary& point : results) {
        ASSERT_EQ(point.metrics.size(), metricDefs().size());
        EXPECT_EQ(point.metric("mean_interval_norm_ms").n, 2u);
        EXPECT_GT(point.mean("simulated_ms"), 0.0);
    }
}

TEST(Campaign, ArtifactSchemaShape)
{
    Campaign camp = tinyCampaign(1, 2);
    camp.run();
    ArtifactOptions options;
    options.name = "shape";
    const std::string text = toJson(camp, options);
    EXPECT_NE(text.find("\"schema\": \"mediaworm-campaign-v3\""),
              std::string::npos);
    EXPECT_NE(text.find("\"name\": \"shape\""), std::string::npos);
    EXPECT_NE(text.find("\"points\""), std::string::npos);
    EXPECT_NE(text.find("\"mean_interval_norm_ms\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ci95\""), std::string::npos);
    EXPECT_NE(text.find("\"counts\""), std::string::npos);
    EXPECT_NE(text.find("\"timing\""), std::string::npos);
    // Timing metrics live only in the timing section.
    EXPECT_GT(text.find("\"wall_seconds\""), text.find("\"timing\""));
}

TEST(Campaign, CustomJobAdapterRuns)
{
    CampaignConfig ccfg;
    ccfg.jobs = 2;
    ccfg.replications = 2;
    Campaign camp(ccfg);
    camp.addJob(
        "custom",
        [](std::uint64_t seed, int replication) {
            core::ExperimentResult r;
            r.meanIntervalNormMs =
                static_cast<double>(seed % 100) + replication;
            r.eventsFired = seed;
            return r;
        },
        7);
    const auto& results = camp.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].reps[0].eventsFired, deriveSeed(7, 0, 0));
    EXPECT_EQ(results[0].reps[1].eventsFired, deriveSeed(7, 0, 1));
}

} // namespace
