/**
 * @file
 * Unit tests for the statistics toolkit: accumulator, histogram,
 * time-weighted average, rate monitor, interval tracker, registry.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "stats/accumulator.hh"
#include "stats/histogram.hh"
#include "stats/interval_tracker.hh"
#include "stats/rate_monitor.hh"
#include "stats/registry.hh"
#include "stats/time_average.hh"

namespace {

using namespace mediaworm::stats;
using namespace mediaworm::sim;

// --- Accumulator -----------------------------------------------------------

TEST(Accumulator, EmptyDefaults)
{
    Accumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_NEAR(acc.sampleVariance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator acc;
    acc.add(3.5);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.sampleVariance(), 0.0);
}

TEST(Accumulator, ResetClearsEverything)
{
    Accumulator acc;
    acc.add(1.0);
    acc.add(2.0);
    acc.reset();
    EXPECT_TRUE(acc.empty());
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(Accumulator, MergeEqualsCombinedStream)
{
    Rng rng(17);
    Accumulator combined;
    Accumulator left;
    Accumulator right;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform(-5.0, 13.0);
        combined.add(x);
        (i % 3 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), combined.count());
    EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), combined.min());
    EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(Accumulator, MergeWithEmptySides)
{
    Accumulator a;
    Accumulator b;
    a.add(2.0);
    a.merge(b); // empty rhs
    EXPECT_EQ(a.count(), 1u);
    b.merge(a); // empty lhs
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, NumericallyStableForLargeOffsets)
{
    // Naive sum-of-squares would lose all precision here.
    Accumulator acc;
    const double offset = 1e12;
    for (double x : {offset + 1, offset + 2, offset + 3})
        acc.add(x);
    EXPECT_NEAR(acc.variance(), 2.0 / 3.0, 1e-6);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketsAndEdges)
{
    Histogram hist(0.0, 10.0, 5);
    EXPECT_EQ(hist.buckets(), 5u);
    EXPECT_DOUBLE_EQ(hist.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(hist.bucketLow(4), 8.0);
    hist.add(0.5);
    hist.add(1.9);
    hist.add(2.0);
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(-1.0);
    hist.add(10.0); // hi edge is exclusive
    hist.add(99.0);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.count(), 3u);
}

TEST(Histogram, QuantilesOfUniformData)
{
    Histogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        hist.add(i + 0.5);
    EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(hist.quantile(0.9), 90.0, 1.5);
    // q=0 interpolates to the low edge of the first occupied bucket.
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileOnEmpty)
{
    Histogram hist(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

TEST(Histogram, ResetClears)
{
    Histogram hist(0.0, 1.0, 4);
    hist.add(0.5);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.bucketCount(2), 0u);
}

TEST(Histogram, ToStringMentionsStats)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(5.0);
    const std::string text = hist.toString();
    EXPECT_NE(text.find("n=1"), std::string::npos);
}

// --- TimeAverage ---------------------------------------------------------------

TEST(TimeAverage, PiecewiseConstantSignal)
{
    TimeAverage avg(0);
    avg.update(0, 2.0);   // 2.0 over [0, 10)
    avg.update(10, 6.0);  // 6.0 over [10, 20)
    EXPECT_DOUBLE_EQ(avg.average(20), 4.0);
    EXPECT_DOUBLE_EQ(avg.current(), 6.0);
}

TEST(TimeAverage, ZeroElapsedReturnsCurrent)
{
    TimeAverage avg(5);
    avg.update(5, 3.0);
    EXPECT_DOUBLE_EQ(avg.average(5), 3.0);
}

TEST(TimeAverage, ResetRestartsWindow)
{
    TimeAverage avg(0);
    avg.update(0, 100.0);
    avg.reset(10);
    avg.update(10, 2.0);
    EXPECT_DOUBLE_EQ(avg.average(20), 2.0);
}

// --- RateMonitor ---------------------------------------------------------------

TEST(RateMonitor, RatePerSecond)
{
    RateMonitor rate;
    rate.reset(0);
    rate.add(1000);
    EXPECT_DOUBLE_EQ(rate.ratePerSecond(kSecond), 1000.0);
    EXPECT_DOUBLE_EQ(rate.ratePerSecond(kSecond / 2), 2000.0);
}

TEST(RateMonitor, UtilizationFromServiceTime)
{
    RateMonitor rate;
    rate.reset(0);
    // 5000 flits of 80 ns on a 1 ms window = 40% utilization.
    rate.add(5000);
    EXPECT_NEAR(rate.utilization(kMillisecond, nanoseconds(80)), 0.4,
                1e-12);
}

TEST(RateMonitor, ZeroWindowIsZero)
{
    RateMonitor rate;
    rate.reset(100);
    rate.add(5);
    EXPECT_DOUBLE_EQ(rate.ratePerSecond(100), 0.0);
}

// --- IntervalTracker --------------------------------------------------------------

TEST(IntervalTracker, MeasuresSuccessiveDeliveries)
{
    IntervalTracker tracker;
    tracker.enable();
    const StreamId s(1);
    tracker.recordDelivery(s, milliseconds(0));
    tracker.recordDelivery(s, milliseconds(33));
    tracker.recordDelivery(s, milliseconds(66));
    EXPECT_EQ(tracker.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(tracker.meanIntervalMs(), 33.0);
    EXPECT_DOUBLE_EQ(tracker.stddevIntervalMs(), 0.0);
}

TEST(IntervalTracker, JitterShowsInStddev)
{
    IntervalTracker tracker;
    tracker.enable();
    const StreamId s(1);
    tracker.recordDelivery(s, milliseconds(0));
    tracker.recordDelivery(s, milliseconds(30));
    tracker.recordDelivery(s, milliseconds(66));
    EXPECT_DOUBLE_EQ(tracker.meanIntervalMs(), 33.0);
    EXPECT_DOUBLE_EQ(tracker.stddevIntervalMs(), 3.0);
}

TEST(IntervalTracker, WarmupDeliveriesSetBaselineOnly)
{
    IntervalTracker tracker;
    const StreamId s(1);
    tracker.recordDelivery(s, milliseconds(0));  // disabled
    tracker.recordDelivery(s, milliseconds(40)); // disabled
    tracker.enable();
    tracker.recordDelivery(s, milliseconds(73));
    EXPECT_EQ(tracker.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(tracker.meanIntervalMs(), 33.0);
    EXPECT_EQ(tracker.framesDelivered(), 3u);
}

TEST(IntervalTracker, StreamsAreIndependent)
{
    IntervalTracker tracker;
    tracker.enable();
    tracker.recordDelivery(StreamId(1), milliseconds(0));
    tracker.recordDelivery(StreamId(2), milliseconds(10));
    tracker.recordDelivery(StreamId(1), milliseconds(33));
    tracker.recordDelivery(StreamId(2), milliseconds(43));
    EXPECT_EQ(tracker.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(tracker.meanIntervalMs(), 33.0);
}

TEST(IntervalTracker, ResetMeasurementKeepsBaselines)
{
    IntervalTracker tracker;
    tracker.enable();
    const StreamId s(1);
    tracker.recordDelivery(s, milliseconds(0));
    tracker.recordDelivery(s, milliseconds(40));
    tracker.resetMeasurement();
    tracker.recordDelivery(s, milliseconds(73));
    EXPECT_EQ(tracker.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(tracker.meanIntervalMs(), 33.0);
}

// --- Registry -------------------------------------------------------------------

TEST(Registry, LookupAndDump)
{
    Registry registry;
    double value = 1.5;
    registry.add("router0.flits", "flits forwarded",
                 [&] { return value; });
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_DOUBLE_EQ(registry.lookup("router0.flits"), 1.5);
    value = 2.5;
    EXPECT_DOUBLE_EQ(registry.lookup("router0.flits"), 2.5);
    EXPECT_TRUE(std::isnan(registry.lookup("missing")));

    const std::string text = registry.dumpText();
    EXPECT_NE(text.find("router0.flits"), std::string::npos);
    EXPECT_NE(text.find("flits forwarded"), std::string::npos);

    const std::string csv = registry.dumpCsv();
    EXPECT_NE(csv.find("stat,value"), std::string::npos);
    EXPECT_NE(csv.find("router0.flits,2.5"), std::string::npos);
}

} // namespace
