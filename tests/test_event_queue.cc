/**
 * @file
 * Unit and property tests for the two-tier event queue (near-future
 * calendar buckets + far-future binary heap). Ordering must never
 * depend on which tier holds an event.
 */

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace {

using namespace mediaworm::sim;

class RecordingEvent final : public Event
{
  public:
    explicit RecordingEvent(std::vector<int>* log = nullptr, int id = 0)
        : log_(log), id_(id)
    {
    }

    void
    fire() override
    {
        if (log_)
            log_->push_back(id_);
    }

  private:
    std::vector<int>* log_;
    int id_;
};

TEST(EventQueue, StartsEmpty)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.nextTime(), kTickNever);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    RecordingEvent c;
    queue.schedule(a, 30);
    queue.schedule(b, 10);
    queue.schedule(c, 20);

    EXPECT_EQ(queue.nextTime(), 10);
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &c);
    EXPECT_EQ(&queue.pop(), &a);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue queue;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    for (int i = 0; i < 32; ++i) {
        events.push_back(std::make_unique<RecordingEvent>());
        queue.schedule(*events.back(), 100);
    }
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(&queue.pop(), events[static_cast<std::size_t>(i)].get())
            << "tie-break broke FIFO order at " << i;
}

TEST(EventQueue, ScheduledFlagTracksMembership)
{
    EventQueue queue;
    RecordingEvent event;
    EXPECT_FALSE(event.scheduled());
    queue.schedule(event, 5);
    EXPECT_TRUE(event.scheduled());
    EXPECT_EQ(event.when(), 5);
    queue.pop();
    EXPECT_FALSE(event.scheduled());
}

TEST(EventQueue, DescheduleRemovesArbitraryElement)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    RecordingEvent c;
    queue.schedule(a, 1);
    queue.schedule(b, 2);
    queue.schedule(c, 3);

    queue.deschedule(b);
    EXPECT_FALSE(b.scheduled());
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(&queue.pop(), &a);
    EXPECT_EQ(&queue.pop(), &c);
}

TEST(EventQueue, DescheduleHeadUpdatesNextTime)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 1);
    queue.schedule(b, 9);
    queue.deschedule(a);
    EXPECT_EQ(queue.nextTime(), 9);
    queue.deschedule(b); // events must not be destroyed scheduled
}

TEST(EventQueue, DescheduleUnscheduledIsNoop)
{
    EventQueue queue;
    RecordingEvent a;
    queue.deschedule(a); // must not crash
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RescheduleMovesBothDirections)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 10);
    queue.schedule(b, 20);

    queue.reschedule(b, 5); // move earlier
    EXPECT_EQ(&queue.pop(), &b);

    queue.schedule(b, 15);
    queue.reschedule(a, 30); // move later
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &a);
}

TEST(EventQueue, RescheduleUnscheduledSchedules)
{
    EventQueue queue;
    RecordingEvent a;
    queue.reschedule(a, 7);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 7);
    queue.deschedule(a); // events must not be destroyed scheduled
}

// --- two-tier specifics -----------------------------------------------------

/** One tick past the near-tier horizon as seen from an empty queue
 *  anchored at tick 0. */
constexpr Tick kBeyondHorizon =
    static_cast<Tick>(EventQueue::kNumBuckets)
    << EventQueue::kBucketShift;

TEST(EventQueueTiers, FarFutureGoesToHeapAndStillOrders)
{
    EventQueue queue;
    RecordingEvent anchor;
    RecordingEvent far1;
    RecordingEvent far2;
    RecordingEvent near1;

    queue.schedule(anchor, 0); // anchors the near window at bucket 0
    queue.schedule(far1, kBeyondHorizon + 500);
    queue.schedule(far2, kBeyondHorizon + 100);
    queue.schedule(near1, 42);

    EXPECT_EQ(queue.nearSize(), 2u);
    EXPECT_EQ(queue.farSize(), 2u);
    EXPECT_EQ(queue.size(), 4u);
    EXPECT_EQ(queue.nextTime(), 0);

    EXPECT_EQ(&queue.pop(), &anchor);
    EXPECT_EQ(&queue.pop(), &near1);
    EXPECT_EQ(&queue.pop(), &far2);
    EXPECT_EQ(&queue.pop(), &far1);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTiers, EmptyNearTierReanchorsItsWindow)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;

    queue.schedule(a, 0);
    EXPECT_EQ(&queue.pop(), &a);

    // With the near tier drained, a time far beyond the old window
    // must land in the near tier again, not leak to the heap.
    queue.schedule(b, 100 * kBeyondHorizon);
    EXPECT_EQ(queue.nearSize(), 1u);
    EXPECT_EQ(queue.farSize(), 0u);
    EXPECT_EQ(&queue.pop(), &b);
}

TEST(EventQueueTiers, SameTickFifoAcrossTiers)
{
    EventQueue queue;
    RecordingEvent anchor;
    RecordingEvent first;
    RecordingEvent second;
    const Tick when = kBeyondHorizon + 7;

    // 'first' is scheduled while the near window sits at bucket 0, so
    // it overflows to the heap; 'second' lands in the near tier after
    // the window re-anchors. Same tick, different tiers: FIFO by
    // scheduling order must still hold.
    queue.schedule(anchor, 0);
    queue.schedule(first, when);
    EXPECT_EQ(queue.farSize(), 1u);
    EXPECT_EQ(&queue.pop(), &anchor);
    queue.schedule(second, when);
    EXPECT_EQ(queue.nearSize(), 1u);
    EXPECT_EQ(queue.farSize(), 1u);

    EXPECT_EQ(&queue.pop(), &first);
    EXPECT_EQ(&queue.pop(), &second);
}

TEST(EventQueueTiers, DescheduleWorksInBothTiers)
{
    EventQueue queue;
    RecordingEvent near_mid;
    RecordingEvent near_head;
    RecordingEvent near_tail;
    RecordingEvent far_mid;
    RecordingEvent far_keep;

    queue.schedule(near_head, 10);
    queue.schedule(near_mid, 20);
    queue.schedule(near_tail, 30);
    queue.schedule(far_mid, kBeyondHorizon + 10);
    queue.schedule(far_keep, kBeyondHorizon + 20);

    queue.deschedule(near_mid); // middle of a bucket chain
    queue.deschedule(far_mid);  // heap interior
    EXPECT_FALSE(near_mid.scheduled());
    EXPECT_FALSE(far_mid.scheduled());
    EXPECT_EQ(queue.size(), 3u);

    EXPECT_EQ(&queue.pop(), &near_head);
    EXPECT_EQ(&queue.pop(), &near_tail);
    EXPECT_EQ(&queue.pop(), &far_keep);
}

TEST(EventQueueTiers, RescheduleCrossesTiers)
{
    EventQueue queue;
    RecordingEvent anchor;
    RecordingEvent mover;

    queue.schedule(anchor, 0);
    queue.schedule(mover, 5); // near
    EXPECT_EQ(queue.nearSize(), 2u);

    queue.reschedule(mover, kBeyondHorizon + 5); // near -> far
    EXPECT_EQ(queue.nearSize(), 1u);
    EXPECT_EQ(queue.farSize(), 1u);

    queue.reschedule(mover, 5); // far -> near
    EXPECT_EQ(queue.nearSize(), 2u);
    EXPECT_EQ(queue.farSize(), 0u);

    EXPECT_EQ(&queue.pop(), &anchor);
    EXPECT_EQ(&queue.pop(), &mover);
}

TEST(EventQueueTiers, BoundedInsertScanOverflowsToHeap)
{
    EventQueue queue;
    // Deep descending insert into one bucket: every insert scans from
    // the bucket tail, so past the scan bound the events must spill
    // to the heap - and the global order must be unaffected.
    std::vector<std::unique_ptr<RecordingEvent>> events;
    constexpr int kCount = 64;
    for (int i = 0; i < kCount; ++i) {
        events.push_back(std::make_unique<RecordingEvent>());
        queue.schedule(*events.back(), kCount - i);
    }
    EXPECT_GT(queue.farSize(), 0u);
    EXPECT_EQ(queue.size(), static_cast<std::size_t>(kCount));

    Tick last = -1;
    for (int i = 0; i < kCount; ++i) {
        Event& popped = queue.pop();
        EXPECT_GT(popped.when(), last);
        last = popped.when();
    }
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTiers, ClearResetsBothTiers)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 1);
    queue.schedule(b, kBeyondHorizon + 1);
    queue.clear();
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(a.scheduled());
    EXPECT_FALSE(b.scheduled());
    // The queue must be fully reusable after clear().
    queue.schedule(a, 3);
    queue.schedule(b, 2);
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &a);
}

// --- canonical tie-break keys ----------------------------------------------

TEST(EventQueueCanonical, CanonicalKeysPrecedeCounterKeysAtSameTick)
{
    // Canonical keys live below kFirstDynamicSeq, so at one tick every
    // canonical-key event must fire before every counter-keyed event,
    // and canonical events must fire in key order - not in schedule
    // order. This is the property the sharded executor relies on to
    // merge cross-shard link events deterministically (sim/pdes.hh).
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent plain_a(&log, 100);
    RecordingEvent plain_b(&log, 101);
    RecordingEvent canon_hi(&log, 2);
    RecordingEvent canon_lo(&log, 0);
    RecordingEvent canon_mid(&log, 1);
    canon_hi.setCanonicalSeq(2);
    canon_lo.setCanonicalSeq(0);
    canon_mid.setCanonicalSeq(1);

    // Deliberately adversarial schedule order: counter-keyed events
    // first, canonical keys descending.
    const Tick when = 64;
    queue.schedule(plain_a, when);
    queue.schedule(plain_b, when);
    queue.schedule(canon_hi, when);
    queue.schedule(canon_lo, when);
    queue.schedule(canon_mid, when);

    while (!queue.empty())
        queue.pop().fire();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 100, 101}));
}

TEST(EventQueueCanonical, KeySurvivesPopAndReschedule)
{
    // setCanonicalSeq() pins the key forever: after a pop or a
    // reschedule the event must still sort by its canonical key, not
    // by a freshly drawn counter value.
    EventQueue queue;
    RecordingEvent canon;
    RecordingEvent plain;
    canon.setCanonicalSeq(5);

    queue.schedule(canon, 10);
    EXPECT_EQ(&queue.pop(), &canon);
    EXPECT_TRUE(canon.hasCanonicalSeq());

    // Second round: the plain event is scheduled first, so a counter
    // key would put it ahead; the canonical key must still win.
    queue.schedule(plain, 20);
    queue.schedule(canon, 20);
    EXPECT_EQ(&queue.pop(), &canon);
    EXPECT_EQ(&queue.pop(), &plain);

    // And across reschedule() onto an occupied tick.
    queue.schedule(plain, 30);
    queue.schedule(canon, 40);
    queue.reschedule(canon, 30);
    EXPECT_EQ(&queue.pop(), &canon);
    EXPECT_EQ(&queue.pop(), &plain);
}

TEST(EventQueueCanonical, CanonicalOrderHoldsAcrossTiers)
{
    // A counter-keyed event that overflowed to the far heap and a
    // canonical-key event in the near ring share a tick; tier
    // placement must not override the canonical-first order.
    EventQueue queue;
    RecordingEvent anchor;
    RecordingEvent plain;
    RecordingEvent canon;
    canon.setCanonicalSeq(3);
    const Tick when = kBeyondHorizon + 11;

    queue.schedule(anchor, 0);
    queue.schedule(plain, when); // beyond the window: far tier
    EXPECT_EQ(queue.farSize(), 1u);
    EXPECT_EQ(&queue.pop(), &anchor);
    queue.schedule(canon, when); // window re-anchored: near tier
    EXPECT_EQ(queue.nearSize(), 1u);

    EXPECT_EQ(&queue.pop(), &canon);
    EXPECT_EQ(&queue.pop(), &plain);
}

TEST(EventQueueCanonical, CanonicalInsertStaysNearAgainstDeepSameTickBatch)
{
    // A canonical-key event belongs ahead of every same-tick
    // counter-keyed event, so its insert walks from the bucket head
    // and terminates immediately - it must never exhaust the bounded
    // scan against a deep same-tick batch and bounce to the far
    // heap. (Link flit/credit events are canonical-keyed; before the
    // head-first walk they degraded to heap traffic exactly on the
    // busiest ticks.)
    EventQueue queue;
    std::vector<std::unique_ptr<RecordingEvent>> batch;
    const Tick when = 64;
    for (int i = 0; i < 48; ++i) {
        batch.push_back(std::make_unique<RecordingEvent>());
        queue.schedule(*batch.back(), when);
    }
    ASSERT_EQ(queue.farSize(), 0u);

    std::vector<int> log;
    RecordingEvent canon_b(&log, 1);
    RecordingEvent canon_a(&log, 0);
    canon_b.setCanonicalSeq(11);
    canon_a.setCanonicalSeq(10);
    queue.schedule(canon_b, when);
    queue.schedule(canon_a, when); // head walk passes one canonical
    EXPECT_EQ(queue.farSize(), 0u)
        << "canonical insert exhausted the bounded scan";

    EXPECT_EQ(&queue.pop(), &canon_a);
    EXPECT_EQ(&queue.pop(), &canon_b);
    for (int i = 0; i < 48; ++i)
        EXPECT_EQ(&queue.pop(), batch[static_cast<std::size_t>(i)].get());
}

// --- shard-horizon windows --------------------------------------------------

/**
 * The sharded executor advances each shard with Simulator::run(T +
 * W - 1): events exactly on the window edge belong to the window,
 * events one past it must wait for the next epoch. A lookahead
 * off-by-one here silently reorders cross-shard traffic, so the edge
 * semantics are pinned down explicitly.
 */
TEST(EventQueueHorizon, EventOnTheWindowEdgeFiresInItsWindow)
{
    Simulator sim;
    std::vector<int> log;
    RecordingEvent before_edge(&log, 0);
    RecordingEvent on_edge(&log, 1);
    RecordingEvent past_edge(&log, 2);
    const Tick window_end = 160'000 - 1; // one link delay of lookahead

    sim.schedule(before_edge, window_end - 1);
    sim.schedule(on_edge, window_end);
    sim.schedule(past_edge, window_end + 1);

    EXPECT_EQ(sim.run(window_end), 2u);
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
    EXPECT_TRUE(past_edge.scheduled());
    EXPECT_EQ(sim.now(), window_end);

    EXPECT_EQ(sim.run(2 * window_end), 1u);
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueHorizon, BoundedWindowsDrainAcrossTierBoundaries)
{
    // Drain a schedule that spans both tiers in fixed-width windows,
    // the way PdesExecutor epochs do. Every event must fire inside
    // the first window that covers it - no loss, no reordering, no
    // leakage past a window edge - even when the window boundary cuts
    // through the near/far handover.
    Simulator sim;
    struct Fired final : Event
    {
        void
        fire() override
        {
            *fired_at = owner->now();
        }
        Simulator* owner = nullptr;
        Tick* fired_at = nullptr;
    };

    constexpr int kCount = 48;
    std::vector<Fired> events(kCount);
    std::vector<Tick> fired_at(kCount, kTickNever);
    std::vector<Tick> when(kCount);
    Rng rng(0xcafe);
    for (int i = 0; i < kCount; ++i) {
        events[static_cast<std::size_t>(i)].owner = &sim;
        events[static_cast<std::size_t>(i)].fired_at =
            &fired_at[static_cast<std::size_t>(i)];
        // Bimodal spread: half inside the initial near window, half
        // far beyond it, so windowed draining forces tier crossings.
        Tick t = static_cast<Tick>(rng.uniformInt(5000));
        if (i % 2 == 0)
            t += 2 * kBeyondHorizon;
        when[static_cast<std::size_t>(i)] = t;
        sim.schedule(events[static_cast<std::size_t>(i)], t);
    }

    const Tick horizon = 3 * kBeyondHorizon;
    constexpr Tick kWindow = 100'000;
    std::uint64_t fired = 0;
    for (Tick end = kWindow - 1;
         fired < static_cast<std::uint64_t>(kCount); end += kWindow) {
        fired += sim.run(end);
        for (int i = 0; i < kCount; ++i) {
            const std::size_t n = static_cast<std::size_t>(i);
            if (when[n] <= end)
                EXPECT_EQ(fired_at[n], when[n])
                    << "event " << i << " missed window ending " << end;
            else
                EXPECT_EQ(fired_at[n], kTickNever)
                    << "event " << i << " leaked past window " << end;
        }
        ASSERT_LT(end, horizon) << "drain did not terminate";
    }
    EXPECT_TRUE(sim.queue().empty());
}

/**
 * Property: against a reference model (multimap keyed by time with
 * insertion counters), random interleavings of schedule, deschedule
 * and pop always produce the same service order.
 */
TEST(EventQueueProperty, MatchesReferenceModelUnderRandomOps)
{
    Rng rng(0xfeed);
    for (int round = 0; round < 20; ++round) {
        EventQueue queue;
        constexpr int kEvents = 128;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < kEvents; ++i)
            events.push_back(std::make_unique<RecordingEvent>());

        // Reference: (time, seq) -> index, mirroring queue content.
        std::map<std::pair<Tick, std::uint64_t>, int> reference;
        std::vector<std::uint64_t> seq_of(kEvents, 0);
        std::uint64_t next_seq = 0;

        for (int op = 0; op < 1000; ++op) {
            const int i = static_cast<int>(rng.uniformInt(kEvents));
            auto& event = *events[static_cast<std::size_t>(i)];
            const int action = static_cast<int>(rng.uniformInt(3));
            if (action == 0 && !event.scheduled()) {
                const Tick when =
                    static_cast<Tick>(rng.uniformInt(50));
                queue.schedule(event, when);
                seq_of[static_cast<std::size_t>(i)] = next_seq;
                reference[{when, next_seq++}] = i;
            } else if (action == 1 && event.scheduled()) {
                queue.deschedule(event);
                reference.erase(
                    {event.when(),
                     seq_of[static_cast<std::size_t>(i)]});
            } else if (action == 2 && !queue.empty()) {
                Event& popped = queue.pop();
                ASSERT_FALSE(reference.empty());
                const auto expected = reference.begin();
                EXPECT_EQ(&popped,
                          events[static_cast<std::size_t>(
                                     expected->second)]
                              .get());
                reference.erase(expected);
            }
            ASSERT_EQ(queue.size(), reference.size());
            if (!queue.empty()) {
                ASSERT_EQ(queue.nextTime(),
                          reference.begin()->first.first);
            }
        }
        while (!queue.empty()) {
            Event& popped = queue.pop();
            const auto expected = reference.begin();
            EXPECT_EQ(&popped, events[static_cast<std::size_t>(
                                          expected->second)]
                                   .get());
            reference.erase(expected);
        }
    }
}

/**
 * Property: as above, but with a bimodal time distribution (near the
 * window / far beyond it) so random interleavings constantly cross
 * the tier boundary and exercise the heap fallback.
 */
TEST(EventQueueProperty, MatchesReferenceModelAcrossTiers)
{
    Rng rng(0xbead);
    for (int round = 0; round < 10; ++round) {
        EventQueue queue;
        constexpr int kEvents = 96;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < kEvents; ++i)
            events.push_back(std::make_unique<RecordingEvent>());

        std::map<std::pair<Tick, std::uint64_t>, int> reference;
        std::vector<std::uint64_t> seq_of(kEvents, 0);
        std::uint64_t next_seq = 0;
        Tick low = 0;

        for (int op = 0; op < 1500; ++op) {
            const int i = static_cast<int>(rng.uniformInt(kEvents));
            auto& event = *events[static_cast<std::size_t>(i)];
            const int action = static_cast<int>(rng.uniformInt(3));
            if (action == 0 && !event.scheduled()) {
                Tick when =
                    low + static_cast<Tick>(rng.uniformInt(5000));
                if (rng.uniformInt(4) == 0)
                    when += 3 * kBeyondHorizon; // far beyond any window
                queue.schedule(event, when);
                seq_of[static_cast<std::size_t>(i)] = next_seq;
                reference[{when, next_seq++}] = i;
            } else if (action == 1 && event.scheduled()) {
                queue.deschedule(event);
                reference.erase(
                    {event.when(),
                     seq_of[static_cast<std::size_t>(i)]});
            } else if (action == 2 && !queue.empty()) {
                Event& popped = queue.pop();
                ASSERT_FALSE(reference.empty());
                const auto expected = reference.begin();
                EXPECT_EQ(&popped,
                          events[static_cast<std::size_t>(
                                     expected->second)]
                              .get());
                // Simulated time marches forward: later schedules
                // never precede what has already been served.
                low = std::max(low, popped.when());
                reference.erase(expected);
            }
            ASSERT_EQ(queue.size(), reference.size());
            if (!queue.empty()) {
                ASSERT_EQ(queue.nextTime(),
                          reference.begin()->first.first);
            }
        }
        while (!queue.empty()) {
            Event& popped = queue.pop();
            const auto expected = reference.begin();
            EXPECT_EQ(&popped, events[static_cast<std::size_t>(
                                          expected->second)]
                                   .get());
            reference.erase(expected);
        }
    }
}

} // namespace
