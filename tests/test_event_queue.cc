/**
 * @file
 * Unit and property tests for the two-tier event queue (near-future
 * calendar buckets + far-future binary heap). Ordering must never
 * depend on which tier holds an event.
 */

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace {

using namespace mediaworm::sim;

class RecordingEvent final : public Event
{
  public:
    explicit RecordingEvent(std::vector<int>* log = nullptr, int id = 0)
        : log_(log), id_(id)
    {
    }

    void
    fire() override
    {
        if (log_)
            log_->push_back(id_);
    }

  private:
    std::vector<int>* log_;
    int id_;
};

TEST(EventQueue, StartsEmpty)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.nextTime(), kTickNever);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    RecordingEvent c;
    queue.schedule(a, 30);
    queue.schedule(b, 10);
    queue.schedule(c, 20);

    EXPECT_EQ(queue.nextTime(), 10);
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &c);
    EXPECT_EQ(&queue.pop(), &a);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue queue;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    for (int i = 0; i < 32; ++i) {
        events.push_back(std::make_unique<RecordingEvent>());
        queue.schedule(*events.back(), 100);
    }
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(&queue.pop(), events[static_cast<std::size_t>(i)].get())
            << "tie-break broke FIFO order at " << i;
}

TEST(EventQueue, ScheduledFlagTracksMembership)
{
    EventQueue queue;
    RecordingEvent event;
    EXPECT_FALSE(event.scheduled());
    queue.schedule(event, 5);
    EXPECT_TRUE(event.scheduled());
    EXPECT_EQ(event.when(), 5);
    queue.pop();
    EXPECT_FALSE(event.scheduled());
}

TEST(EventQueue, DescheduleRemovesArbitraryElement)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    RecordingEvent c;
    queue.schedule(a, 1);
    queue.schedule(b, 2);
    queue.schedule(c, 3);

    queue.deschedule(b);
    EXPECT_FALSE(b.scheduled());
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(&queue.pop(), &a);
    EXPECT_EQ(&queue.pop(), &c);
}

TEST(EventQueue, DescheduleHeadUpdatesNextTime)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 1);
    queue.schedule(b, 9);
    queue.deschedule(a);
    EXPECT_EQ(queue.nextTime(), 9);
    queue.deschedule(b); // events must not be destroyed scheduled
}

TEST(EventQueue, DescheduleUnscheduledIsNoop)
{
    EventQueue queue;
    RecordingEvent a;
    queue.deschedule(a); // must not crash
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RescheduleMovesBothDirections)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 10);
    queue.schedule(b, 20);

    queue.reschedule(b, 5); // move earlier
    EXPECT_EQ(&queue.pop(), &b);

    queue.schedule(b, 15);
    queue.reschedule(a, 30); // move later
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &a);
}

TEST(EventQueue, RescheduleUnscheduledSchedules)
{
    EventQueue queue;
    RecordingEvent a;
    queue.reschedule(a, 7);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 7);
    queue.deschedule(a); // events must not be destroyed scheduled
}

// --- two-tier specifics -----------------------------------------------------

/** One tick past the near-tier horizon as seen from an empty queue
 *  anchored at tick 0. */
constexpr Tick kBeyondHorizon =
    static_cast<Tick>(EventQueue::kNumBuckets)
    << EventQueue::kBucketShift;

TEST(EventQueueTiers, FarFutureGoesToHeapAndStillOrders)
{
    EventQueue queue;
    RecordingEvent anchor;
    RecordingEvent far1;
    RecordingEvent far2;
    RecordingEvent near1;

    queue.schedule(anchor, 0); // anchors the near window at bucket 0
    queue.schedule(far1, kBeyondHorizon + 500);
    queue.schedule(far2, kBeyondHorizon + 100);
    queue.schedule(near1, 42);

    EXPECT_EQ(queue.nearSize(), 2u);
    EXPECT_EQ(queue.farSize(), 2u);
    EXPECT_EQ(queue.size(), 4u);
    EXPECT_EQ(queue.nextTime(), 0);

    EXPECT_EQ(&queue.pop(), &anchor);
    EXPECT_EQ(&queue.pop(), &near1);
    EXPECT_EQ(&queue.pop(), &far2);
    EXPECT_EQ(&queue.pop(), &far1);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTiers, EmptyNearTierReanchorsItsWindow)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;

    queue.schedule(a, 0);
    EXPECT_EQ(&queue.pop(), &a);

    // With the near tier drained, a time far beyond the old window
    // must land in the near tier again, not leak to the heap.
    queue.schedule(b, 100 * kBeyondHorizon);
    EXPECT_EQ(queue.nearSize(), 1u);
    EXPECT_EQ(queue.farSize(), 0u);
    EXPECT_EQ(&queue.pop(), &b);
}

TEST(EventQueueTiers, SameTickFifoAcrossTiers)
{
    EventQueue queue;
    RecordingEvent anchor;
    RecordingEvent first;
    RecordingEvent second;
    const Tick when = kBeyondHorizon + 7;

    // 'first' is scheduled while the near window sits at bucket 0, so
    // it overflows to the heap; 'second' lands in the near tier after
    // the window re-anchors. Same tick, different tiers: FIFO by
    // scheduling order must still hold.
    queue.schedule(anchor, 0);
    queue.schedule(first, when);
    EXPECT_EQ(queue.farSize(), 1u);
    EXPECT_EQ(&queue.pop(), &anchor);
    queue.schedule(second, when);
    EXPECT_EQ(queue.nearSize(), 1u);
    EXPECT_EQ(queue.farSize(), 1u);

    EXPECT_EQ(&queue.pop(), &first);
    EXPECT_EQ(&queue.pop(), &second);
}

TEST(EventQueueTiers, DescheduleWorksInBothTiers)
{
    EventQueue queue;
    RecordingEvent near_mid;
    RecordingEvent near_head;
    RecordingEvent near_tail;
    RecordingEvent far_mid;
    RecordingEvent far_keep;

    queue.schedule(near_head, 10);
    queue.schedule(near_mid, 20);
    queue.schedule(near_tail, 30);
    queue.schedule(far_mid, kBeyondHorizon + 10);
    queue.schedule(far_keep, kBeyondHorizon + 20);

    queue.deschedule(near_mid); // middle of a bucket chain
    queue.deschedule(far_mid);  // heap interior
    EXPECT_FALSE(near_mid.scheduled());
    EXPECT_FALSE(far_mid.scheduled());
    EXPECT_EQ(queue.size(), 3u);

    EXPECT_EQ(&queue.pop(), &near_head);
    EXPECT_EQ(&queue.pop(), &near_tail);
    EXPECT_EQ(&queue.pop(), &far_keep);
}

TEST(EventQueueTiers, RescheduleCrossesTiers)
{
    EventQueue queue;
    RecordingEvent anchor;
    RecordingEvent mover;

    queue.schedule(anchor, 0);
    queue.schedule(mover, 5); // near
    EXPECT_EQ(queue.nearSize(), 2u);

    queue.reschedule(mover, kBeyondHorizon + 5); // near -> far
    EXPECT_EQ(queue.nearSize(), 1u);
    EXPECT_EQ(queue.farSize(), 1u);

    queue.reschedule(mover, 5); // far -> near
    EXPECT_EQ(queue.nearSize(), 2u);
    EXPECT_EQ(queue.farSize(), 0u);

    EXPECT_EQ(&queue.pop(), &anchor);
    EXPECT_EQ(&queue.pop(), &mover);
}

TEST(EventQueueTiers, BoundedInsertScanOverflowsToHeap)
{
    EventQueue queue;
    // Deep descending insert into one bucket: every insert scans from
    // the bucket tail, so past the scan bound the events must spill
    // to the heap - and the global order must be unaffected.
    std::vector<std::unique_ptr<RecordingEvent>> events;
    constexpr int kCount = 64;
    for (int i = 0; i < kCount; ++i) {
        events.push_back(std::make_unique<RecordingEvent>());
        queue.schedule(*events.back(), kCount - i);
    }
    EXPECT_GT(queue.farSize(), 0u);
    EXPECT_EQ(queue.size(), static_cast<std::size_t>(kCount));

    Tick last = -1;
    for (int i = 0; i < kCount; ++i) {
        Event& popped = queue.pop();
        EXPECT_GT(popped.when(), last);
        last = popped.when();
    }
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTiers, ClearResetsBothTiers)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 1);
    queue.schedule(b, kBeyondHorizon + 1);
    queue.clear();
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(a.scheduled());
    EXPECT_FALSE(b.scheduled());
    // The queue must be fully reusable after clear().
    queue.schedule(a, 3);
    queue.schedule(b, 2);
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &a);
}

/**
 * Property: against a reference model (multimap keyed by time with
 * insertion counters), random interleavings of schedule, deschedule
 * and pop always produce the same service order.
 */
TEST(EventQueueProperty, MatchesReferenceModelUnderRandomOps)
{
    Rng rng(0xfeed);
    for (int round = 0; round < 20; ++round) {
        EventQueue queue;
        constexpr int kEvents = 128;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < kEvents; ++i)
            events.push_back(std::make_unique<RecordingEvent>());

        // Reference: (time, seq) -> index, mirroring queue content.
        std::map<std::pair<Tick, std::uint64_t>, int> reference;
        std::vector<std::uint64_t> seq_of(kEvents, 0);
        std::uint64_t next_seq = 0;

        for (int op = 0; op < 1000; ++op) {
            const int i = static_cast<int>(rng.uniformInt(kEvents));
            auto& event = *events[static_cast<std::size_t>(i)];
            const int action = static_cast<int>(rng.uniformInt(3));
            if (action == 0 && !event.scheduled()) {
                const Tick when =
                    static_cast<Tick>(rng.uniformInt(50));
                queue.schedule(event, when);
                seq_of[static_cast<std::size_t>(i)] = next_seq;
                reference[{when, next_seq++}] = i;
            } else if (action == 1 && event.scheduled()) {
                queue.deschedule(event);
                reference.erase(
                    {event.when(),
                     seq_of[static_cast<std::size_t>(i)]});
            } else if (action == 2 && !queue.empty()) {
                Event& popped = queue.pop();
                ASSERT_FALSE(reference.empty());
                const auto expected = reference.begin();
                EXPECT_EQ(&popped,
                          events[static_cast<std::size_t>(
                                     expected->second)]
                              .get());
                reference.erase(expected);
            }
            ASSERT_EQ(queue.size(), reference.size());
            if (!queue.empty()) {
                ASSERT_EQ(queue.nextTime(),
                          reference.begin()->first.first);
            }
        }
        while (!queue.empty()) {
            Event& popped = queue.pop();
            const auto expected = reference.begin();
            EXPECT_EQ(&popped, events[static_cast<std::size_t>(
                                          expected->second)]
                                   .get());
            reference.erase(expected);
        }
    }
}

/**
 * Property: as above, but with a bimodal time distribution (near the
 * window / far beyond it) so random interleavings constantly cross
 * the tier boundary and exercise the heap fallback.
 */
TEST(EventQueueProperty, MatchesReferenceModelAcrossTiers)
{
    Rng rng(0xbead);
    for (int round = 0; round < 10; ++round) {
        EventQueue queue;
        constexpr int kEvents = 96;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < kEvents; ++i)
            events.push_back(std::make_unique<RecordingEvent>());

        std::map<std::pair<Tick, std::uint64_t>, int> reference;
        std::vector<std::uint64_t> seq_of(kEvents, 0);
        std::uint64_t next_seq = 0;
        Tick low = 0;

        for (int op = 0; op < 1500; ++op) {
            const int i = static_cast<int>(rng.uniformInt(kEvents));
            auto& event = *events[static_cast<std::size_t>(i)];
            const int action = static_cast<int>(rng.uniformInt(3));
            if (action == 0 && !event.scheduled()) {
                Tick when =
                    low + static_cast<Tick>(rng.uniformInt(5000));
                if (rng.uniformInt(4) == 0)
                    when += 3 * kBeyondHorizon; // far beyond any window
                queue.schedule(event, when);
                seq_of[static_cast<std::size_t>(i)] = next_seq;
                reference[{when, next_seq++}] = i;
            } else if (action == 1 && event.scheduled()) {
                queue.deschedule(event);
                reference.erase(
                    {event.when(),
                     seq_of[static_cast<std::size_t>(i)]});
            } else if (action == 2 && !queue.empty()) {
                Event& popped = queue.pop();
                ASSERT_FALSE(reference.empty());
                const auto expected = reference.begin();
                EXPECT_EQ(&popped,
                          events[static_cast<std::size_t>(
                                     expected->second)]
                              .get());
                // Simulated time marches forward: later schedules
                // never precede what has already been served.
                low = std::max(low, popped.when());
                reference.erase(expected);
            }
            ASSERT_EQ(queue.size(), reference.size());
            if (!queue.empty()) {
                ASSERT_EQ(queue.nextTime(),
                          reference.begin()->first.first);
            }
        }
        while (!queue.empty()) {
            Event& popped = queue.pop();
            const auto expected = reference.begin();
            EXPECT_EQ(&popped, events[static_cast<std::size_t>(
                                          expected->second)]
                                   .get());
            reference.erase(expected);
        }
    }
}

} // namespace
