/**
 * @file
 * Unit and property tests for the indexed binary-heap event queue.
 */

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace {

using namespace mediaworm::sim;

class RecordingEvent final : public Event
{
  public:
    explicit RecordingEvent(std::vector<int>* log = nullptr, int id = 0)
        : log_(log), id_(id)
    {
    }

    void
    fire() override
    {
        if (log_)
            log_->push_back(id_);
    }

  private:
    std::vector<int>* log_;
    int id_;
};

TEST(EventQueue, StartsEmpty)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.nextTime(), kTickNever);
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    RecordingEvent c;
    queue.schedule(a, 30);
    queue.schedule(b, 10);
    queue.schedule(c, 20);

    EXPECT_EQ(queue.nextTime(), 10);
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &c);
    EXPECT_EQ(&queue.pop(), &a);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue queue;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    for (int i = 0; i < 32; ++i) {
        events.push_back(std::make_unique<RecordingEvent>());
        queue.schedule(*events.back(), 100);
    }
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(&queue.pop(), events[static_cast<std::size_t>(i)].get())
            << "tie-break broke FIFO order at " << i;
}

TEST(EventQueue, ScheduledFlagTracksMembership)
{
    EventQueue queue;
    RecordingEvent event;
    EXPECT_FALSE(event.scheduled());
    queue.schedule(event, 5);
    EXPECT_TRUE(event.scheduled());
    EXPECT_EQ(event.when(), 5);
    queue.pop();
    EXPECT_FALSE(event.scheduled());
}

TEST(EventQueue, DescheduleRemovesArbitraryElement)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    RecordingEvent c;
    queue.schedule(a, 1);
    queue.schedule(b, 2);
    queue.schedule(c, 3);

    queue.deschedule(b);
    EXPECT_FALSE(b.scheduled());
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(&queue.pop(), &a);
    EXPECT_EQ(&queue.pop(), &c);
}

TEST(EventQueue, DescheduleHeadUpdatesNextTime)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 1);
    queue.schedule(b, 9);
    queue.deschedule(a);
    EXPECT_EQ(queue.nextTime(), 9);
    queue.deschedule(b); // events must not be destroyed scheduled
}

TEST(EventQueue, DescheduleUnscheduledIsNoop)
{
    EventQueue queue;
    RecordingEvent a;
    queue.deschedule(a); // must not crash
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RescheduleMovesBothDirections)
{
    EventQueue queue;
    RecordingEvent a;
    RecordingEvent b;
    queue.schedule(a, 10);
    queue.schedule(b, 20);

    queue.reschedule(b, 5); // move earlier
    EXPECT_EQ(&queue.pop(), &b);

    queue.schedule(b, 15);
    queue.reschedule(a, 30); // move later
    EXPECT_EQ(&queue.pop(), &b);
    EXPECT_EQ(&queue.pop(), &a);
}

TEST(EventQueue, RescheduleUnscheduledSchedules)
{
    EventQueue queue;
    RecordingEvent a;
    queue.reschedule(a, 7);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 7);
    queue.deschedule(a); // events must not be destroyed scheduled
}

/**
 * Property: against a reference model (multimap keyed by time with
 * insertion counters), random interleavings of schedule, deschedule
 * and pop always produce the same service order.
 */
TEST(EventQueueProperty, MatchesReferenceModelUnderRandomOps)
{
    Rng rng(0xfeed);
    for (int round = 0; round < 20; ++round) {
        EventQueue queue;
        constexpr int kEvents = 128;
        std::vector<std::unique_ptr<RecordingEvent>> events;
        for (int i = 0; i < kEvents; ++i)
            events.push_back(std::make_unique<RecordingEvent>());

        // Reference: (time, seq) -> index, mirroring queue content.
        std::map<std::pair<Tick, std::uint64_t>, int> reference;
        std::vector<std::uint64_t> seq_of(kEvents, 0);
        std::uint64_t next_seq = 0;

        for (int op = 0; op < 1000; ++op) {
            const int i = static_cast<int>(rng.uniformInt(kEvents));
            auto& event = *events[static_cast<std::size_t>(i)];
            const int action = static_cast<int>(rng.uniformInt(3));
            if (action == 0 && !event.scheduled()) {
                const Tick when =
                    static_cast<Tick>(rng.uniformInt(50));
                queue.schedule(event, when);
                seq_of[static_cast<std::size_t>(i)] = next_seq;
                reference[{when, next_seq++}] = i;
            } else if (action == 1 && event.scheduled()) {
                queue.deschedule(event);
                reference.erase(
                    {event.when(),
                     seq_of[static_cast<std::size_t>(i)]});
            } else if (action == 2 && !queue.empty()) {
                Event& popped = queue.pop();
                ASSERT_FALSE(reference.empty());
                const auto expected = reference.begin();
                EXPECT_EQ(&popped,
                          events[static_cast<std::size_t>(
                                     expected->second)]
                              .get());
                reference.erase(expected);
            }
            ASSERT_EQ(queue.size(), reference.size());
            if (!queue.empty()) {
                ASSERT_EQ(queue.nextTime(),
                          reference.begin()->first.first);
            }
        }
        while (!queue.empty()) {
            Event& popped = queue.pop();
            const auto expected = reference.begin();
            EXPECT_EQ(&popped, events[static_cast<std::size_t>(
                                          expected->second)]
                                   .get());
            reference.erase(expected);
        }
    }
}

} // namespace
