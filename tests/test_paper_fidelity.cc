/**
 * @file
 * Statistical paper-fidelity tests (ctest label: fidelity).
 *
 * A miniature of the paper's Figure 3 experiment - FIFO vs Virtual
 * Clock scheduling at loads 0.8 and 1.0, three seed replications per
 * point on the campaign engine - asserting the paper's *qualitative
 * claims* with statistical confidence rather than chasing exact
 * curves (EXPERIMENTS.md records where our absolute numbers sit):
 *
 *  - Virtual Clock holds sigma_d small (<= 1 ms normalised) and the
 *    mean delivery interval pinned at the 33 ms frame interval even
 *    at load 1.0 (Section 5.1).
 *  - FIFO jitter at saturation is much larger, with non-overlapping
 *    95% confidence intervals against Virtual Clock.
 *  - FIFO jitter grows with load.
 *
 * The per-stream telemetry series (obs::StreamTelemetry) backs the
 * per-stream claims: under Virtual Clock no individual stream hides
 * a large jitter behind a small aggregate.
 *
 * Kept out of the main test binary because each point simulates a
 * full 568-stream switch; the suite runs under the "fidelity" ctest
 * label (CI runs it in the Release job).
 */

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "core/mediaworm.hh"

namespace {

using namespace mediaworm;

struct PointResult
{
    campaign::MetricSummary sigma; ///< stddev_interval_norm_ms
    campaign::MetricSummary d;     ///< mean_interval_norm_ms
    core::ExperimentResult rep0;
};

/** Runs one (scheduler, load) point: 3 replications, telemetry on. */
PointResult
runPoint(config::SchedulerKind scheduler, double load)
{
    core::ExperimentConfig cfg;
    cfg.router.scheduler = scheduler;
    cfg.traffic.inputLoad = load;
    cfg.traffic.realTimeFraction = 0.8;
    // Matches the bench/fig3 calibration recorded in EXPERIMENTS.md
    // (warmup 2, 6 measured frames, timeScale 0.1) so the numeric
    // bounds below line up with the measured values there.
    cfg.traffic.warmupFrames = 2;
    cfg.traffic.measuredFrames = 6;
    cfg.timeScale = 0.1;
    cfg.seed = 1;
    cfg.obs.telemetry.enabled = true;

    campaign::CampaignConfig ccfg;
    ccfg.jobs = 0; // All hardware threads.
    ccfg.replications = 3;
    campaign::Campaign camp(ccfg);
    camp.addPoint("point", cfg);
    const auto& results = camp.run();

    PointResult out;
    out.sigma = results[0].metric("stddev_interval_norm_ms");
    out.d = results[0].metric("mean_interval_norm_ms");
    out.rep0 = results[0].first();
    return out;
}

class PaperFidelity : public testing::Test
{
  protected:
    // One shared grid for every assertion; computed once.
    static void
    SetUpTestSuite()
    {
        vc08_ = new PointResult(
            runPoint(config::SchedulerKind::VirtualClock, 0.8));
        vc10_ = new PointResult(
            runPoint(config::SchedulerKind::VirtualClock, 1.0));
        fifo08_ = new PointResult(
            runPoint(config::SchedulerKind::Fifo, 0.8));
        fifo10_ = new PointResult(
            runPoint(config::SchedulerKind::Fifo, 1.0));
    }

    static void
    TearDownTestSuite()
    {
        delete vc08_;
        delete vc10_;
        delete fifo08_;
        delete fifo10_;
        vc08_ = vc10_ = fifo08_ = fifo10_ = nullptr;
    }

    static PointResult* vc08_;
    static PointResult* vc10_;
    static PointResult* fifo08_;
    static PointResult* fifo10_;
};

PointResult* PaperFidelity::vc08_ = nullptr;
PointResult* PaperFidelity::vc10_ = nullptr;
PointResult* PaperFidelity::fifo08_ = nullptr;
PointResult* PaperFidelity::fifo10_ = nullptr;

TEST_F(PaperFidelity, VirtualClockBoundsJitterAtFullLoad)
{
    // Section 5.1 / Fig. 3: Virtual Clock keeps the deviation small
    // through load 1.0 (paper: fractions of a ms; our measured value
    // is <= 0.64 ms, see EXPERIMENTS.md).
    EXPECT_LE(vc10_->sigma.mean, 1.0)
        << "VC sigma_d at load 1.0: " << vc10_->sigma.mean << " ms";
    EXPECT_LE(vc08_->sigma.mean, 1.0);
}

TEST_F(PaperFidelity, VirtualClockPinsDeliveryIntervalAtFrameRate)
{
    // d stays at the 33 ms frame interval: streams neither starve
    // nor drift even at saturation.
    EXPECT_NEAR(vc08_->d.mean, 33.0, 0.5);
    EXPECT_NEAR(vc10_->d.mean, 33.0, 0.5);
}

TEST_F(PaperFidelity, FifoJitterExceedsVirtualClockAtFullLoad)
{
    // The paper's headline contrast. Statistical form: the 95% CIs
    // of sigma_d at load 1.0 must not even overlap.
    EXPECT_GT(fifo10_->sigma.mean, vc10_->sigma.mean);
    EXPECT_GT(fifo10_->sigma.lo(), vc10_->sigma.hi())
        << "FIFO CI [" << fifo10_->sigma.lo() << ", "
        << fifo10_->sigma.hi() << "] overlaps VC CI ["
        << vc10_->sigma.lo() << ", " << vc10_->sigma.hi() << "]";
}

TEST_F(PaperFidelity, FifoJitterGrowsWithLoad)
{
    EXPECT_GT(fifo10_->sigma.mean, fifo08_->sigma.mean);
}

TEST_F(PaperFidelity, PerStreamTelemetryBacksTheAggregates)
{
    // The aggregate claims hold per stream: under Virtual Clock at
    // load 1.0 even the worst stream's sigma_d stays bounded, and
    // every stream's overall d sits at the frame interval. This is
    // what the end-of-run aggregates cannot show (a scheduler could
    // starve one stream while the mean stays flat).
    ASSERT_NE(vc10_->rep0.observations, nullptr);
    ASSERT_TRUE(vc10_->rep0.observations->hasTelemetry);
    const obs::TelemetryReport& t = vc10_->rep0.observations->telemetry;
    ASSERT_GT(t.timeScale, 0.0);
    ASSERT_FALSE(t.streams.empty());

    // Empirically ~2.1 ms: the single worst stream out of ~570 with
    // only ~6 measured intervals has a fat small-sample tail, but it
    // still sits well under FIFO's *aggregate* sigma_d (4.4 ms).
    EXPECT_LE(t.worstStddevMs / t.timeScale, 3.0)
        << "worst stream " << t.worstStream.value() << " sigma_d";

    std::size_t with_series = 0;
    for (const obs::StreamSeries& s : t.streams) {
        if (s.intervalCount < 2)
            continue;
        ++with_series;
        EXPECT_FALSE(s.samples.empty());
        EXPECT_NEAR(s.meanIntervalMs / t.timeScale, 33.0, 1.5)
            << "stream " << s.stream.value();
    }
    // Nearly all offered streams deliver enough frames to measure.
    EXPECT_GT(with_series, t.streams.size() / 2);

    // FIFO at load 1.0: the worst stream is strictly worse than the
    // Virtual Clock worst stream.
    ASSERT_NE(fifo10_->rep0.observations, nullptr);
    const obs::TelemetryReport& f =
        fifo10_->rep0.observations->telemetry;
    EXPECT_GT(f.worstStddevMs, t.worstStddevMs);
}

} // namespace
