/**
 * @file
 * Unit tests for the Virtual Clock state machine (Section 3.3).
 */

#include <gtest/gtest.h>

#include "router/virtual_clock.hh"

namespace {

using namespace mediaworm::router;
using namespace mediaworm::sim;

TEST(VirtualClock, StampsAdvanceByVtick)
{
    VirtualClockState state;
    state.beginMessage(microseconds(8));
    // Backlogged arrivals at the same instant space out by Vtick.
    EXPECT_EQ(state.tick(microseconds(100)), microseconds(108));
    EXPECT_EQ(state.tick(microseconds(100)), microseconds(116));
    EXPECT_EQ(state.tick(microseconds(100)), microseconds(124));
}

TEST(VirtualClock, IdleConnectionResyncsToWallClock)
{
    VirtualClockState state;
    state.beginMessage(microseconds(8));
    state.tick(microseconds(100)); // auxVC = 108
    // Arrival long after the clock caught up: max(Clock, auxVC)
    // resets the base to the wall clock (no credit accumulation).
    EXPECT_EQ(state.tick(microseconds(500)), microseconds(508));
}

TEST(VirtualClock, FasterStreamsGetEarlierStamps)
{
    VirtualClockState fast;
    VirtualClockState slow;
    fast.beginMessage(microseconds(4));
    slow.beginMessage(microseconds(16));
    const Tick now = milliseconds(1);
    EXPECT_LT(fast.tick(now), slow.tick(now));
}

TEST(VirtualClock, BeginMessageResetsAux)
{
    VirtualClockState state;
    state.beginMessage(microseconds(8));
    state.tick(microseconds(100));
    state.tick(microseconds(100));
    // New message: aux restarts from the wall clock.
    state.beginMessage(microseconds(8));
    EXPECT_EQ(state.tick(microseconds(100)), microseconds(108));
}

TEST(VirtualClock, EndMessageDiscardsState)
{
    VirtualClockState state;
    state.beginMessage(microseconds(8));
    state.tick(microseconds(100));
    state.endMessage();
    EXPECT_EQ(state.vtick(), kBestEffortVtick);
    EXPECT_EQ(state.auxVc(), 0);
}

TEST(VirtualClock, BestEffortSaturatesWithoutOverflow)
{
    VirtualClockState state;
    state.beginMessage(kBestEffortVtick);
    for (int i = 0; i < 100; ++i) {
        const Tick stamp = state.tick(seconds(1));
        EXPECT_EQ(stamp, kBestEffortVtick) << "iteration " << i;
        EXPECT_GT(stamp, 0);
    }
}

TEST(VirtualClock, BestEffortAlwaysLosesToRealTime)
{
    VirtualClockState best_effort;
    VirtualClockState real_time;
    best_effort.beginMessage(kBestEffortVtick);
    real_time.beginMessage(microseconds(8));
    // Even a heavily backlogged RT connection outranks best effort.
    Tick rt_stamp = 0;
    for (int i = 0; i < 100000; ++i)
        rt_stamp = real_time.tick(0);
    EXPECT_LT(rt_stamp, best_effort.tick(0));
}

TEST(VirtualClock, DefaultStateIsBestEffort)
{
    VirtualClockState state;
    EXPECT_EQ(state.vtick(), kBestEffortVtick);
    EXPECT_EQ(state.tick(100), kBestEffortVtick);
}

} // namespace
