/**
 * @file
 * Tests for the experiment harness: time-scale compression,
 * measurement windows, result fields and reproducibility.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::core;

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 3;
    cfg.timeScale = 0.05;
    return cfg;
}

TEST(Experiment, ReportsStreamArithmetic)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.8;
    cfg.traffic.realTimeFraction = 0.8;
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_NEAR(result.streamsPerNode, 64, 1);
    EXPECT_EQ(result.rtStreams, result.streamsPerNode * 8);
}

TEST(Experiment, NormalisationDividesByTimeScale)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.4;
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_NEAR(result.meanIntervalNormMs,
                result.meanIntervalMs / cfg.timeScale, 1e-9);
    // At 0.05 scale the raw interval is ~1.65 ms.
    EXPECT_NEAR(result.meanIntervalMs, 1.65, 0.1);
}

TEST(Experiment, CountsAreConsistent)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.5;
    const ExperimentResult result = runExperiment(cfg);
    // Every stream delivers warmup+measured frames.
    EXPECT_EQ(result.framesDelivered,
              static_cast<std::uint64_t>(result.rtStreams) * 4);
    // Intervals: at most frames-1 per stream, minus warmup gating.
    EXPECT_LE(result.intervalSamples, result.framesDelivered);
    EXPECT_GT(result.intervalSamples, 0u);
    EXPECT_GT(result.flitsDelivered, 0u);
    EXPECT_GT(result.eventsFired, result.flitsDelivered);
}

TEST(Experiment, CbrRunsJitterFreeAtModerateLoad)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.6;
    cfg.traffic.realTimeFraction = 1.0;
    cfg.traffic.realTimeKind = config::RealTimeKind::Cbr;
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 0.5);
    EXPECT_LT(result.stddevIntervalNormMs, 1.0);
}

TEST(Experiment, MpegGopRunsToCompletion)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.5;
    cfg.traffic.realTimeFraction = 1.0;
    cfg.traffic.realTimeKind = config::RealTimeKind::MpegGop;
    cfg.traffic.measuredFrames = 12;
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_GT(result.intervalSamples, 0u);
    // GoP frames vary widely, so some interval spread is expected,
    // but the mean period must hold.
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 2.0);
}

TEST(Experiment, TruncationFlagOnTinyBudget)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.5;
    cfg.maxSimTime = sim::microseconds(200);
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_TRUE(result.truncated);
}

TEST(Experiment, TailLatencyDominatesMean)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.8;
    cfg.traffic.realTimeFraction = 0.8;
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_GT(result.beLatencyP99Us, 0.0);
    // The best-effort latency distribution is right-skewed: p99 sits
    // at or above the mean.
    EXPECT_GE(result.beLatencyP99Us, result.beLatencyUs * 0.9);
    // And network-only latency never exceeds the host-to-sink total.
    EXPECT_LE(result.beNetworkLatencyUs, result.beLatencyUs + 1e-9);
}

TEST(Experiment, SeedChangesResults)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.7;
    cfg.seed = 1;
    const auto a = runExperiment(cfg);
    cfg.seed = 2;
    const auto b = runExperiment(cfg);
    EXPECT_NE(a.eventsFired, b.eventsFired);
}

TEST(Experiment, DescribeMentionsHeadlineNumbers)
{
    ExperimentConfig cfg = smallConfig();
    cfg.traffic.inputLoad = 0.4;
    const ExperimentResult result = runExperiment(cfg);
    const std::string text = result.describe();
    EXPECT_NE(text.find("d="), std::string::npos);
    EXPECT_NE(text.find("intervals"), std::string::npos);
    EXPECT_EQ(text.find("TRUNCATED"), std::string::npos);
}

TEST(ExperimentDeath, RejectsBadTimeScale)
{
    ExperimentConfig cfg = smallConfig();
    cfg.timeScale = 0.0;
    EXPECT_EXIT(runExperiment(cfg), testing::ExitedWithCode(1),
                "timeScale");
}

TEST(Experiment, FullScaleWorkloadRunsUnscaled)
{
    // timeScale = 1.0 must reproduce the paper's exact workload
    // parameters; keep it tiny (low load, 2 frames) for test speed.
    ExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.1;
    cfg.traffic.warmupFrames = 0;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 1.0;
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_NEAR(result.meanIntervalMs, 33.0, 0.5);
    EXPECT_NEAR(result.meanIntervalNormMs, result.meanIntervalMs,
                1e-9);
}

} // namespace
