/**
 * @file
 * Cross-module integration tests: conservation laws over a manually
 * assembled network, scheduler orderings at saturation, and
 * end-to-end runs of every topology/crossbar combination.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "network/network.hh"
#include "traffic/best_effort_source.hh"
#include "traffic/frame_source.hh"
#include "traffic/traffic_mix.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;

/**
 * Builds a network plus sources by hand (mirroring runExperiment) so
 * the test can inspect component counters afterwards.
 */
struct Harness
{
    explicit Harness(double load, double rt_fraction,
                     config::TopologyKind topology =
                         config::TopologyKind::SingleSwitch)
        : simulator(7)
    {
        routerCfg.numVcs = 8;
        netCfg.topology = topology;
        traffic.inputLoad = load;
        traffic.realTimeFraction = rt_fraction;
        traffic.warmupFrames = 1;
        traffic.measuredFrames = 2;
        // Compressed workload (like ExperimentConfig.timeScale 0.05).
        traffic.frameBytesMean *= 0.05;
        traffic.frameBytesStddev *= 0.05;
        traffic.frameInterval = static_cast<Tick>(
            static_cast<double>(traffic.frameInterval) * 0.05);

        netRng = simulator.rng().split();
        net = std::make_unique<network::Network>(
            simulator, routerCfg, netCfg, metrics, netRng);
        Rng mix_rng = simulator.rng().split();
        plan = traffic::planMix(routerCfg, traffic, net->numNodes(),
                                mix_rng);
        for (const traffic::Stream& stream : plan.streams) {
            sources.push_back(std::make_unique<traffic::FrameSource>(
                simulator, stream, traffic, routerCfg.flitSizeBits,
                net->ni(stream.src.value()), simulator.rng().split()));
            sources.back()->start();
        }
        const Tick horizon =
            static_cast<Tick>(traffic.warmupFrames
                              + traffic.measuredFrames + 1)
            * traffic.frameInterval;
        for (int node = 0;
             plan.beInterval != kTickNever && node < net->numNodes();
             ++node) {
            beSources.push_back(
                std::make_unique<traffic::BestEffortSource>(
                    simulator, StreamId(1000000 + node), NodeId(node),
                    net->numNodes(), traffic.beMessageFlits,
                    plan.beInterval, horizon, plan.partition.beFirst,
                    plan.partition.beCount, net->ni(node),
                    simulator.rng().split()));
            beSources.back()->start();
        }
    }

    void
    run()
    {
        simulator.run(seconds(2));
        ASSERT_TRUE(simulator.queue().empty()) << "did not drain";
    }

    Simulator simulator;
    config::RouterConfig routerCfg;
    config::NetworkConfig netCfg;
    config::TrafficConfig traffic;
    network::MetricsHub metrics;
    Rng netRng{0};
    std::unique_ptr<network::Network> net;
    traffic::MixPlan plan;
    std::vector<std::unique_ptr<traffic::FrameSource>> sources;
    std::vector<std::unique_ptr<traffic::BestEffortSource>> beSources;
};

TEST(Integration, FlitConservationSingleSwitch)
{
    Harness harness(0.7, 0.8);
    harness.run();

    std::uint64_t injected = 0;
    for (int node = 0; node < harness.net->numNodes(); ++node)
        injected += harness.net->ni(node).flitsInjected();
    EXPECT_EQ(injected, harness.metrics.flitsDelivered())
        << "flits were lost or duplicated in the network";
    EXPECT_EQ(harness.net->totalBacklogFlits(), 0u);
    harness.net->router(0).checkInvariants();
}

TEST(Integration, FrameConservationSingleSwitch)
{
    Harness harness(0.6, 1.0);
    harness.run();

    std::uint64_t frames_generated = 0;
    for (const auto& source : harness.sources)
        frames_generated += static_cast<std::uint64_t>(
            source->framesGenerated());
    EXPECT_EQ(harness.metrics.frames().framesDelivered(),
              frames_generated);
}

TEST(Integration, MessageConservationWithBestEffort)
{
    Harness harness(0.7, 0.5);
    harness.run();

    std::uint64_t be_injected = 0;
    for (const auto& source : harness.beSources)
        be_injected += static_cast<std::uint64_t>(
            source->messagesInjected());
    EXPECT_EQ(harness.metrics.beMessages(), be_injected);
}

TEST(Integration, FlitConservationFatMesh)
{
    Harness harness(0.6, 0.8, config::TopologyKind::FatMesh);
    harness.run();

    std::uint64_t injected = 0;
    for (int node = 0; node < harness.net->numNodes(); ++node)
        injected += harness.net->ni(node).flitsInjected();
    EXPECT_EQ(injected, harness.metrics.flitsDelivered());
    for (int r = 0; r < harness.net->numRouters(); ++r)
        harness.net->router(r).checkInvariants();
}

TEST(Integration, RouterCountersMatchDeliveredTraffic)
{
    Harness harness(0.5, 1.0);
    harness.run();
    // Single switch: every delivered flit passed the one router.
    EXPECT_EQ(harness.net->router(0).flitsForwarded(),
              harness.metrics.flitsDelivered());
}

TEST(Integration, VirtualClockBeatsFifoAtSaturation)
{
    core::ExperimentConfig cfg;
    cfg.traffic.inputLoad = 1.0;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 4;
    cfg.timeScale = 0.05;

    cfg.router.scheduler = config::SchedulerKind::VirtualClock;
    const auto vc = core::runExperiment(cfg);
    cfg.router.scheduler = config::SchedulerKind::Fifo;
    const auto fifo = core::runExperiment(cfg);

    EXPECT_LT(vc.stddevIntervalNormMs, fifo.stddevIntervalNormMs)
        << "the paper's headline claim failed";
    EXPECT_LT(vc.stddevIntervalNormMs, 1.5);
}

TEST(Integration, BestEffortPaysForRealTimePriority)
{
    core::ExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.9;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 4;
    cfg.timeScale = 0.05;

    cfg.traffic.realTimeFraction = 0.2;
    const auto few_rt = core::runExperiment(cfg);
    cfg.traffic.realTimeFraction = 0.8;
    const auto many_rt = core::runExperiment(cfg);

    // Table 2's trend: more RT share at equal load hurts BE latency.
    EXPECT_GT(many_rt.beLatencyUs, few_rt.beLatencyUs);
}

TEST(Integration, FullCrossbarEndToEnd)
{
    core::ExperimentConfig cfg;
    cfg.router.numVcs = 4;
    cfg.router.crossbar = config::CrossbarKind::Full;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 1.0;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 3;
    cfg.timeScale = 0.05;

    const auto result = core::runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 1.0);
}

TEST(Integration, MoreVcsNeverHurtJitter)
{
    core::ExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.9;
    cfg.traffic.realTimeFraction = 1.0;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 4;
    cfg.timeScale = 0.05;

    cfg.router.numVcs = 4;
    const auto four = core::runExperiment(cfg);
    cfg.router.numVcs = 16;
    const auto sixteen = core::runExperiment(cfg);
    EXPECT_LE(sixteen.stddevIntervalNormMs,
              four.stddevIntervalNormMs * 1.1)
        << "Figure 6's VC ordering failed";
}

TEST(Integration, FatMeshDeliversUnderMixedLoad)
{
    core::ExperimentConfig cfg;
    cfg.network.topology = config::TopologyKind::FatMesh;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.6;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 3;
    cfg.timeScale = 0.05;

    const auto result = core::runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 1.0);
    EXPECT_LT(result.stddevIntervalNormMs, 2.0);
    EXPECT_GT(result.beMessages, 0u);
}

} // namespace
