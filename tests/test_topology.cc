/**
 * @file
 * Topology-graph and routing-policy test battery (ctest label
 * "topology").
 *
 * Three groups:
 *
 *  1. Graph properties over parameter sweeps: exact node/router/
 *     channel counts, degrees and port budgets, link symmetry and
 *     connectivity for every builder (single switch, fat mesh,
 *     mesh, torus, Clos).
 *
 *  2. Routing delivery: for every topology x policy and every
 *     (src, dst) pair, walking the tables reaches the destination
 *     within the theoretical hop limit - checked for the first
 *     candidate (the deterministic path) and for the escape (last)
 *     candidate of adaptive entries separately.
 *
 *  3. Deadlock freedom: the channel-dependency graph of every
 *     deterministic policy is acyclic; adaptive policies have an
 *     acyclic escape-only CDG and a non-empty escape candidate at
 *     every (router, dest) - Duato's condition. A negative control
 *     (torus dimension-order squeezed to one VC class) proves the
 *     cycle detector actually detects the wrap cycle.
 */

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "network/routing.hh"
#include "network/topology.hh"

namespace {

using namespace mediaworm;
using network::RoutingTables;
using network::Topology;

/** Undirected channel count of a width x height grid. */
int
gridPairs(int w, int h)
{
    return (w - 1) * h + w * (h - 1);
}

// --- Graph properties ------------------------------------------------------

TEST(Topology, SingleSwitchShape)
{
    for (int ports : {2, 8, 16}) {
        const Topology t = Topology::singleSwitch(ports);
        EXPECT_EQ(t.numRouters(), 1);
        EXPECT_EQ(t.numNodes(), ports);
        EXPECT_EQ(t.portsRequired(), ports);
        EXPECT_TRUE(t.channels().empty());
        EXPECT_TRUE(t.connected());
        EXPECT_TRUE(t.symmetric());
        for (int p = 0; p < ports; ++p) {
            EXPECT_EQ(t.endpoints()[static_cast<std::size_t>(p)].port,
                      p);
            EXPECT_EQ(t.routerOfNode(p), 0);
        }
    }
}

TEST(Topology, MeshShapeSweep)
{
    for (const auto& [w, h] : std::vector<std::pair<int, int>>{
             {2, 2}, {3, 3}, {4, 2}, {8, 8}, {1, 4}}) {
        for (int eps : {1, 2}) {
            const Topology t = Topology::mesh(w, h, eps);
            EXPECT_EQ(t.numRouters(), w * h);
            EXPECT_EQ(t.numNodes(), w * h * eps);
            EXPECT_EQ(static_cast<int>(t.channels().size()),
                      2 * gridPairs(w, h));
            EXPECT_TRUE(t.connected());
            EXPECT_TRUE(t.symmetric());
            // Degree: 2 at corners, up to 4 in the interior.
            for (int s = 0; s < w * h; ++s) {
                const int x = s % w;
                const int y = s / w;
                const int expected = (x > 0) + (x < w - 1) + (y > 0)
                    + (y < h - 1);
                EXPECT_EQ(t.degreeOf(s), expected)
                    << w << "x" << h << " switch " << s;
            }
            // Port budget: endpoints + one link per present
            // direction at the busiest switch.
            const int max_deg = (w > 2 ? 2 : w - 1)
                + (h > 2 ? 2 : h - 1);
            EXPECT_EQ(t.portsRequired(), eps + max_deg);
        }
    }
}

TEST(Topology, TorusShapeSweep)
{
    for (const auto& [w, h] : std::vector<std::pair<int, int>>{
             {2, 2}, {3, 3}, {4, 2}, {8, 8}}) {
        for (int eps : {1, 2}) {
            const Topology t = Topology::torus(w, h, eps);
            EXPECT_EQ(t.numRouters(), w * h);
            EXPECT_EQ(t.numNodes(), w * h * eps);
            // Every switch has all present directions: w*h channels
            // per direction pair that exists.
            const int expected_channels =
                (w > 1 ? 2 * w * h : 0) + (h > 1 ? 2 * w * h : 0);
            EXPECT_EQ(static_cast<int>(t.channels().size()),
                      expected_channels);
            EXPECT_TRUE(t.connected());
            EXPECT_TRUE(t.symmetric());
            const int uniform_deg = 2 * (w > 1) + 2 * (h > 1);
            for (int s = 0; s < w * h; ++s) {
                // Neighbours, not channels: on a 2-wide ring East
                // and West reach the same switch.
                EXPECT_LE(t.degreeOf(s), uniform_deg);
                EXPECT_GE(t.degreeOf(s), uniform_deg / 2);
            }
            EXPECT_EQ(t.portsRequired(), eps + uniform_deg);
        }
    }
}

TEST(Topology, ClosShapeSweep)
{
    for (const auto& [m, n, r] :
         std::vector<std::tuple<int, int, int>>{
             {2, 2, 2}, {4, 4, 8}, {3, 2, 4}, {4, 4, 16}}) {
        const Topology t = Topology::clos(m, n, r);
        EXPECT_EQ(t.numRouters(), r + m);
        EXPECT_EQ(t.numNodes(), n * r);
        EXPECT_EQ(static_cast<int>(t.channels().size()), 2 * m * r);
        EXPECT_TRUE(t.connected());
        EXPECT_TRUE(t.symmetric());
        for (int leaf = 0; leaf < r; ++leaf)
            EXPECT_EQ(t.degreeOf(leaf), m);
        for (int spine = r; spine < r + m; ++spine)
            EXPECT_EQ(t.degreeOf(spine), r);
        // Leaves need n + m ports; spines need r.
        EXPECT_EQ(t.portsRequired(), std::max(n + m, r));
        // Node l*n+e lives on leaf l at port e.
        for (int node = 0; node < n * r; ++node) {
            EXPECT_EQ(t.routerOfNode(node), node / n);
            EXPECT_EQ(
                t.endpoints()[static_cast<std::size_t>(node)].port,
                node % n);
        }
    }
}

TEST(Topology, FatMeshShapeMatchesLegacyLayout)
{
    const Topology t = Topology::fatMesh(2, 2, 2, 4);
    EXPECT_EQ(t.numRouters(), 4);
    EXPECT_EQ(t.numNodes(), 16);
    EXPECT_EQ(static_cast<int>(t.channels().size()),
              2 * 2 * gridPairs(2, 2));
    EXPECT_TRUE(t.connected());
    EXPECT_TRUE(t.symmetric());
    EXPECT_EQ(t.portsRequired(), 4 + 2 * 2);
    // Endpoint ports come first; the East fat pair of switch 0
    // starts right after them.
    EXPECT_EQ(t.dirPort(0, 0), 4);
}

TEST(Topology, OutChannelMapIsConsistent)
{
    for (const Topology& t :
         {Topology::mesh(3, 3, 1), Topology::torus(4, 4, 2),
          Topology::clos(4, 4, 8), Topology::fatMesh(2, 2, 2, 4)}) {
        // Every channel is reachable through its (router, port)
        // slot, and every slot round-trips.
        for (std::size_t c = 0; c < t.channels().size(); ++c) {
            const network::TopoChannel& ch = t.channels()[c];
            EXPECT_EQ(t.outChannelAt(ch.srcRouter, ch.srcPort),
                      static_cast<int>(c));
        }
        for (int r = 0; r < t.numRouters(); ++r) {
            for (int chan : t.outChannelsOf(r))
                EXPECT_EQ(t.channels()[static_cast<std::size_t>(chan)]
                              .srcRouter,
                          r);
        }
    }
}

// --- Routing delivery ------------------------------------------------------

/**
 * Walks @p tables from @p src's router toward @p dst taking
 * candidate @p pick at every hop (clamped to the entry's count) and
 * returns the hop count, or -1 when the walk exceeds @p limit.
 */
int
walk(const Topology& topo, const RoutingTables& tables, int src,
     int dst, int pick, int limit)
{
    int cur = topo.routerOfNode(src);
    const int dest = topo.routerOfNode(dst);
    int hops = 0;
    while (cur != dest) {
        const router::RouteCandidates& rc =
            tables.perRouter[static_cast<std::size_t>(cur)]
                            [static_cast<std::size_t>(dst)];
        if (rc.count < 1 || ++hops > limit)
            return -1;
        const int i = std::min(pick, rc.count - 1);
        const int chan = topo.outChannelAt(
            cur, rc.ports[static_cast<std::size_t>(i)]);
        if (chan < 0)
            return -1;
        cur = topo.channels()[static_cast<std::size_t>(chan)]
                  .dstRouter;
    }
    // Final hop: the entry at the destination router names the
    // ejection port.
    const router::RouteCandidates& rc =
        tables.perRouter[static_cast<std::size_t>(dest)]
                        [static_cast<std::size_t>(dst)];
    EXPECT_EQ(rc.count, 1);
    EXPECT_EQ(rc.ports[0],
              topo.endpoints()[static_cast<std::size_t>(dst)].port);
    return hops;
}

void
expectDelivers(const Topology& topo, config::RoutingKind kind)
{
    const RoutingTables tables = buildRouting(topo, kind);
    const int limit = 2 * topo.numRouters() + 2;
    for (int src = 0; src < topo.numNodes(); ++src) {
        for (int dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            // First candidate (the deterministic choice) and the
            // escape (last) candidate must both reach.
            EXPECT_GE(walk(topo, tables, src, dst, 0, limit), 0)
                << "first candidate " << src << "->" << dst;
            EXPECT_GE(walk(topo, tables, src, dst, 3, limit), 0)
                << "escape candidate " << src << "->" << dst;
        }
    }
}

TEST(Routing, DimensionOrderDeliversEverywhere)
{
    expectDelivers(Topology::mesh(4, 3, 2),
                   config::RoutingKind::DimensionOrder);
    expectDelivers(Topology::torus(4, 4, 1),
                   config::RoutingKind::DimensionOrder);
    expectDelivers(Topology::clos(4, 4, 8),
                   config::RoutingKind::DimensionOrder);
}

TEST(Routing, UpDownDeliversEverywhere)
{
    expectDelivers(Topology::mesh(4, 3, 2),
                   config::RoutingKind::UpDown);
    expectDelivers(Topology::torus(4, 4, 1),
                   config::RoutingKind::UpDown);
    expectDelivers(Topology::clos(4, 4, 8),
                   config::RoutingKind::UpDown);
}

TEST(Routing, AdaptiveDeliversEverywhere)
{
    expectDelivers(Topology::mesh(4, 3, 2),
                   config::RoutingKind::Adaptive);
    expectDelivers(Topology::torus(4, 4, 1),
                   config::RoutingKind::Adaptive);
    expectDelivers(Topology::clos(4, 4, 8),
                   config::RoutingKind::Adaptive);
}

TEST(Routing, DimensionOrderGridPathsAreMinimal)
{
    const Topology mesh = Topology::mesh(5, 4, 1);
    const RoutingTables tables =
        buildRouting(mesh, config::RoutingKind::DimensionOrder);
    for (int src = 0; src < mesh.numNodes(); ++src) {
        for (int dst = 0; dst < mesh.numNodes(); ++dst) {
            if (src == dst)
                continue;
            const int manhattan = std::abs(src % 5 - dst % 5)
                + std::abs(src / 5 - dst / 5);
            EXPECT_EQ(walk(mesh, tables, src, dst, 0, 64), manhattan);
        }
    }
}

TEST(Routing, BfsTreeSpansEveryTopology)
{
    for (const Topology& t :
         {Topology::mesh(4, 3, 1), Topology::torus(4, 4, 1),
          Topology::clos(4, 4, 8)}) {
        const std::vector<int> parents = network::bfsTreeParents(t);
        ASSERT_EQ(static_cast<int>(parents.size()), t.numRouters());
        EXPECT_EQ(parents[0], -1);
        for (int r = 1; r < t.numRouters(); ++r) {
            // Every router reaches the root through finitely many
            // parents.
            int cur = r;
            int steps = 0;
            while (cur != 0) {
                cur = parents[static_cast<std::size_t>(cur)];
                ASSERT_GE(cur, 0);
                ASSERT_LE(++steps, t.numRouters());
            }
        }
    }
}

// --- Deadlock freedom ------------------------------------------------------

void
expectAcyclicCdg(const Topology& topo, config::RoutingKind kind,
                 bool escape_only)
{
    const RoutingTables tables = buildRouting(topo, kind);
    const auto edges =
        network::channelDependencyEdges(topo, tables, escape_only);
    const int num_nodes =
        static_cast<int>(topo.channels().size()) * tables.vcClasses;
    EXPECT_TRUE(network::acyclic(num_nodes, edges))
        << "kind=" << config::toString(kind)
        << " escape_only=" << escape_only;
}

TEST(Deadlock, DimensionOrderCdgIsAcyclic)
{
    expectAcyclicCdg(Topology::mesh(4, 4, 1),
                     config::RoutingKind::DimensionOrder, false);
    expectAcyclicCdg(Topology::mesh(8, 8, 1),
                     config::RoutingKind::DimensionOrder, false);
    expectAcyclicCdg(Topology::torus(4, 4, 1),
                     config::RoutingKind::DimensionOrder, false);
    expectAcyclicCdg(Topology::torus(8, 8, 1),
                     config::RoutingKind::DimensionOrder, false);
    expectAcyclicCdg(Topology::torus(3, 5, 2),
                     config::RoutingKind::DimensionOrder, false);
    expectAcyclicCdg(Topology::clos(4, 4, 16),
                     config::RoutingKind::DimensionOrder, false);
}

TEST(Deadlock, UpDownCdgIsAcyclic)
{
    expectAcyclicCdg(Topology::mesh(4, 4, 1),
                     config::RoutingKind::UpDown, false);
    expectAcyclicCdg(Topology::torus(4, 4, 1),
                     config::RoutingKind::UpDown, false);
    expectAcyclicCdg(Topology::torus(8, 8, 1),
                     config::RoutingKind::UpDown, false);
    expectAcyclicCdg(Topology::clos(4, 4, 16),
                     config::RoutingKind::UpDown, false);
    expectAcyclicCdg(Topology::clos(2, 2, 8),
                     config::RoutingKind::UpDown, false);
}

TEST(Deadlock, AdaptiveEscapeCdgIsAcyclic)
{
    // Duato's condition: allocation waits only happen on the escape
    // candidates (the router takes an adaptive candidate only when
    // its VC is free right now), so the escape-only CDG being
    // acyclic makes the full adaptive policy deadlock-free.
    expectAcyclicCdg(Topology::mesh(4, 4, 1),
                     config::RoutingKind::Adaptive, true);
    expectAcyclicCdg(Topology::mesh(8, 8, 1),
                     config::RoutingKind::Adaptive, true);
    expectAcyclicCdg(Topology::torus(4, 4, 1),
                     config::RoutingKind::Adaptive, true);
    expectAcyclicCdg(Topology::torus(8, 8, 1),
                     config::RoutingKind::Adaptive, true);
    expectAcyclicCdg(Topology::clos(4, 4, 16),
                     config::RoutingKind::Adaptive, true);
}

TEST(Deadlock, AdaptiveAlwaysHasAnEscapeCandidate)
{
    for (const Topology& topo :
         {Topology::mesh(4, 4, 1), Topology::torus(4, 4, 1),
          Topology::clos(4, 4, 8)}) {
        const RoutingTables tables =
            buildRouting(topo, config::RoutingKind::Adaptive);
        EXPECT_TRUE(tables.adaptive);
        for (int r = 0; r < topo.numRouters(); ++r) {
            for (int dst = 0; dst < topo.numNodes(); ++dst) {
                const router::RouteCandidates& rc =
                    tables.perRouter[static_cast<std::size_t>(r)]
                                    [static_cast<std::size_t>(dst)];
                if (rc.count == 0)
                    continue; // Spine row toward itself is unused.
                ASSERT_GE(rc.count, 1);
                ASSERT_LE(rc.count, 4);
                // The escape (last) candidate's VC class must be an
                // escape class (below the adaptive top class) on
                // multi-class grids, so allocation waits land on the
                // acyclic subnetwork.
                if (tables.vcClasses > 1) {
                    EXPECT_LT(
                        rc.vcClasses[static_cast<std::size_t>(
                            rc.count - 1)],
                        tables.vcClasses - 1);
                }
            }
        }
    }
}

TEST(Deadlock, TorusWithoutDatelineClassesIsDetectedCyclic)
{
    // Negative control for the detector: squeeze the torus
    // dimension-order tables onto a single VC class. The wrap
    // channels then close each ring's dependency cycle, and
    // acyclic() must say so.
    const Topology topo = Topology::torus(4, 4, 1);
    RoutingTables tables =
        buildRouting(topo, config::RoutingKind::DimensionOrder);
    ASSERT_EQ(tables.vcClasses, 2);
    tables.vcClasses = 1;
    for (router::RouteTable& table : tables.perRouter) {
        for (router::RouteCandidates& rc : table) {
            for (std::size_t i = 0; i < 4; ++i)
                rc.vcClasses[i] = 0;
        }
    }
    const auto edges =
        network::channelDependencyEdges(topo, tables, false);
    EXPECT_FALSE(network::acyclic(
        static_cast<int>(topo.channels().size()), edges));
}

TEST(Deadlock, VcClassCountsMatchThePolicyContract)
{
    const Topology mesh = Topology::mesh(4, 4, 1);
    const Topology torus = Topology::torus(4, 4, 1);
    const Topology clos = Topology::clos(4, 4, 8);
    using K = config::RoutingKind;
    EXPECT_EQ(buildRouting(mesh, K::DimensionOrder).vcClasses, 1);
    EXPECT_EQ(buildRouting(torus, K::DimensionOrder).vcClasses, 2);
    EXPECT_EQ(buildRouting(mesh, K::Adaptive).vcClasses, 2);
    EXPECT_EQ(buildRouting(torus, K::Adaptive).vcClasses, 3);
    EXPECT_EQ(buildRouting(clos, K::DimensionOrder).vcClasses, 1);
    EXPECT_EQ(buildRouting(clos, K::UpDown).vcClasses, 1);
    EXPECT_EQ(buildRouting(clos, K::Adaptive).vcClasses, 1);
    EXPECT_EQ(buildRouting(mesh, K::UpDown).vcClasses, 1);
}

} // namespace
