/**
 * @file
 * Unit tests for the best-effort traffic generator.
 */

#include <vector>

#include <gtest/gtest.h>

#include "traffic/best_effort_source.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::traffic;

class CapturingInjector final : public Injector
{
  public:
    explicit CapturingInjector(Simulator& simulator)
        : simulator_(simulator)
    {
    }

    void
    injectMessage(const MessageDesc& message) override
    {
        times.push_back(simulator_.now());
        messages.push_back(message);
    }

    std::vector<Tick> times;
    std::vector<MessageDesc> messages;

  private:
    Simulator& simulator_;
};

class BestEffortSourceTest : public testing::Test
{
  protected:
    BestEffortSourceTest() : injector(simulator) {}

    void
    run(Tick interval, Tick stop, int vc_first = 12, int vc_count = 4,
        std::uint64_t seed = 9)
    {
        source = std::make_unique<BestEffortSource>(
            simulator, StreamId(1000), NodeId(2), /*num_nodes=*/8,
            /*message_flits=*/20, interval, stop, vc_first, vc_count,
            injector, Rng(seed));
        source->start();
        simulator.runToCompletion();
    }

    Simulator simulator;
    CapturingInjector injector;
    std::unique_ptr<BestEffortSource> source;
};

TEST_F(BestEffortSourceTest, ConstantRateWithinStopTime)
{
    run(microseconds(10), milliseconds(1));
    // ~100 messages in 1 ms at one per 10 us (random initial phase).
    EXPECT_GE(injector.messages.size(), 98u);
    EXPECT_LE(injector.messages.size(), 101u);
    for (std::size_t i = 1; i < injector.times.size(); ++i)
        EXPECT_EQ(injector.times[i] - injector.times[i - 1],
                  microseconds(10));
}

TEST_F(BestEffortSourceTest, StopsAtStopTime)
{
    run(microseconds(10), microseconds(55));
    for (Tick t : injector.times)
        EXPECT_LT(t, microseconds(55));
}

TEST_F(BestEffortSourceTest, NeverSendsToSelf)
{
    run(microseconds(5), milliseconds(2));
    for (const auto& message : injector.messages) {
        EXPECT_NE(message.dest, NodeId(2));
        EXPECT_GE(message.dest.value(), 0);
        EXPECT_LT(message.dest.value(), 8);
    }
}

TEST_F(BestEffortSourceTest, CoversAllDestinations)
{
    run(microseconds(5), milliseconds(5));
    std::vector<int> seen(8, 0);
    for (const auto& message : injector.messages)
        ++seen[static_cast<std::size_t>(message.dest.value())];
    for (int node = 0; node < 8; ++node) {
        if (node == 2)
            continue;
        EXPECT_GT(seen[static_cast<std::size_t>(node)], 0)
            << "node " << node << " never targeted";
    }
}

TEST_F(BestEffortSourceTest, LanesStayInPartition)
{
    run(microseconds(5), milliseconds(2), /*vc_first=*/12,
        /*vc_count=*/4);
    std::vector<int> lanes(16, 0);
    for (const auto& message : injector.messages) {
        EXPECT_GE(message.vcLane, 12);
        EXPECT_LT(message.vcLane, 16);
        ++lanes[static_cast<std::size_t>(message.vcLane)];
    }
    for (int lane = 12; lane < 16; ++lane)
        EXPECT_GT(lanes[static_cast<std::size_t>(lane)], 0);
}

TEST_F(BestEffortSourceTest, MessagesAreBestEffortClass)
{
    run(microseconds(10), milliseconds(1));
    MessageSeq expected_seq = 0;
    for (const auto& message : injector.messages) {
        EXPECT_EQ(message.cls, router::TrafficClass::BestEffort);
        EXPECT_EQ(message.vtick, router::kBestEffortVtick);
        EXPECT_FALSE(message.endOfFrame);
        EXPECT_EQ(message.numFlits, 20);
        EXPECT_EQ(message.seq, expected_seq++);
    }
}

TEST_F(BestEffortSourceTest, NoInjectionWhenStopBeforePhase)
{
    run(milliseconds(10), microseconds(1));
    EXPECT_TRUE(injector.messages.empty());
}

} // namespace
