/**
 * @file
 * Unit, property and parameterized tests for the multiplexer
 * scheduling disciplines.
 */

#include <gtest/gtest.h>

#include "router/flit.hh"
#include "router/scheduler.hh"
#include "sim/random.hh"

namespace {

using namespace mediaworm::router;
using namespace mediaworm::config;
using mediaworm::sim::Rng;
using mediaworm::sim::Tick;
using mediaworm::sim::microseconds;

Candidate
candidate(int slot, Tick stamp, std::uint64_t seq,
          Tick vtick = microseconds(8))
{
    return {slot, stamp, seq, vtick};
}

// --- FIFO ---------------------------------------------------------------------

TEST(FifoScheduler, PicksOldestArrival)
{
    FifoScheduler fifo;
    const std::vector<Candidate> candidates = {
        candidate(0, 100, 7),
        candidate(1, 50, 3),
        candidate(2, 200, 9),
    };
    EXPECT_EQ(fifo.pick(candidates), 1u);
}

TEST(FifoScheduler, IgnoresStamps)
{
    FifoScheduler fifo;
    const std::vector<Candidate> candidates = {
        candidate(0, 1, 10), // earliest stamp, latest arrival
        candidate(1, 999, 2),
    };
    EXPECT_EQ(fifo.pick(candidates), 1u);
}

// --- Virtual Clock -----------------------------------------------------------

TEST(VirtualClockScheduler, PicksLowestStamp)
{
    VirtualClockScheduler vc;
    const std::vector<Candidate> candidates = {
        candidate(0, 300, 1),
        candidate(1, 100, 2),
        candidate(2, 200, 3),
    };
    EXPECT_EQ(vc.pick(candidates), 1u);
}

TEST(VirtualClockScheduler, BreaksTiesFifo)
{
    VirtualClockScheduler vc;
    const std::vector<Candidate> candidates = {
        candidate(0, 100, 9),
        candidate(1, 100, 4),
    };
    EXPECT_EQ(vc.pick(candidates), 1u);
}

TEST(VirtualClockScheduler, RealTimeBeatsBestEffort)
{
    VirtualClockScheduler vc;
    const std::vector<Candidate> candidates = {
        candidate(0, kBestEffortVtick, 1, kBestEffortVtick),
        candidate(1, microseconds(500), 99),
    };
    EXPECT_EQ(vc.pick(candidates), 1u);
}

// --- Round robin ----------------------------------------------------------------

TEST(RoundRobinScheduler, RotatesAcrossSlots)
{
    RoundRobinScheduler rr;
    const std::vector<Candidate> candidates = {
        candidate(0, 0, 0),
        candidate(1, 0, 1),
        candidate(2, 0, 2),
    };
    std::vector<int> picks;
    for (int i = 0; i < 6; ++i)
        picks.push_back(
            candidates[rr.pick(candidates)].slot);
    EXPECT_EQ(picks, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(RoundRobinScheduler, SkipsMissingSlots)
{
    RoundRobinScheduler rr;
    const std::vector<Candidate> all = {
        candidate(0, 0, 0),
        candidate(1, 0, 1),
        candidate(2, 0, 2),
    };
    EXPECT_EQ(all[rr.pick(all)].slot, 0);
    // Slot 1 drops out; rotation continues from the last winner.
    const std::vector<Candidate> partial = {
        candidate(0, 0, 0),
        candidate(2, 0, 2),
    };
    EXPECT_EQ(partial[rr.pick(partial)].slot, 2);
    EXPECT_EQ(partial[rr.pick(partial)].slot, 0);
}

// --- Weighted round robin ---------------------------------------------------------

TEST(WeightedRoundRobin, ServesProportionallyToRate)
{
    WeightedRoundRobinScheduler wrr;
    // Slot 0 requests twice the rate of slot 1.
    const std::vector<Candidate> candidates = {
        candidate(0, 0, 0, microseconds(4)),
        candidate(1, 0, 1, microseconds(8)),
    };
    int grants[2] = {};
    for (int i = 0; i < 300; ++i)
        ++grants[candidates[wrr.pick(candidates)].slot];
    EXPECT_NEAR(static_cast<double>(grants[0]) / grants[1], 2.0, 0.1);
}

TEST(WeightedRoundRobin, EqualRatesShareEvenly)
{
    WeightedRoundRobinScheduler wrr;
    const std::vector<Candidate> candidates = {
        candidate(0, 0, 0, microseconds(8)),
        candidate(1, 0, 1, microseconds(8)),
        candidate(2, 0, 2, microseconds(8)),
    };
    int grants[3] = {};
    for (int i = 0; i < 300; ++i)
        ++grants[candidates[wrr.pick(candidates)].slot];
    EXPECT_NEAR(grants[0], 100, 5);
    EXPECT_NEAR(grants[1], 100, 5);
    EXPECT_NEAR(grants[2], 100, 5);
}

TEST(WeightedRoundRobin, AllBestEffortStillProgresses)
{
    WeightedRoundRobinScheduler wrr;
    const std::vector<Candidate> candidates = {
        candidate(0, 0, 0, kBestEffortVtick),
        candidate(1, 0, 1, kBestEffortVtick),
    };
    int grants[2] = {};
    for (int i = 0; i < 100; ++i)
        ++grants[candidates[wrr.pick(candidates)].slot];
    EXPECT_GT(grants[0], 20);
    EXPECT_GT(grants[1], 20);
}

// --- Factory -------------------------------------------------------------------

TEST(SchedulerFactory, MakesEveryKind)
{
    for (auto kind :
         {SchedulerKind::Fifo, SchedulerKind::RoundRobin,
          SchedulerKind::VirtualClock,
          SchedulerKind::WeightedRoundRobin}) {
        auto scheduler = makeScheduler(kind);
        ASSERT_NE(scheduler, nullptr);
        EXPECT_STREQ(scheduler->name(), toString(kind));
    }
}

// --- Parameterized properties over all disciplines --------------------------------

class AllSchedulers : public testing::TestWithParam<SchedulerKind>
{
};

TEST_P(AllSchedulers, PickIsAlwaysInRange)
{
    auto scheduler = makeScheduler(GetParam());
    Rng rng(2024);
    for (int round = 0; round < 500; ++round) {
        const std::size_t n = 1 + rng.uniformInt(16);
        std::vector<Candidate> candidates;
        for (std::size_t i = 0; i < n; ++i) {
            candidates.push_back(candidate(
                static_cast<int>(rng.uniformInt(32)),
                static_cast<Tick>(rng.uniformInt(1000)), rng.next(),
                microseconds(1 + rng.uniformInt(20))));
        }
        const std::size_t pick = scheduler->pick(candidates);
        ASSERT_LT(pick, candidates.size());
    }
}

TEST_P(AllSchedulers, SingleCandidateAlwaysWins)
{
    auto scheduler = makeScheduler(GetParam());
    const std::vector<Candidate> one = {candidate(5, 123, 9)};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(scheduler->pick(one), 0u);
}

TEST_P(AllSchedulers, DeterministicGivenSameHistory)
{
    auto a = makeScheduler(GetParam());
    auto b = makeScheduler(GetParam());
    Rng rng(7);
    for (int round = 0; round < 200; ++round) {
        const std::size_t n = 1 + rng.uniformInt(8);
        std::vector<Candidate> candidates;
        for (std::size_t i = 0; i < n; ++i) {
            candidates.push_back(candidate(
                static_cast<int>(i),
                static_cast<Tick>(rng.uniformInt(1000)), rng.next(),
                microseconds(1 + rng.uniformInt(20))));
        }
        ASSERT_EQ(a->pick(candidates), b->pick(candidates));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Disciplines, AllSchedulers,
    testing::Values(SchedulerKind::Fifo, SchedulerKind::RoundRobin,
                    SchedulerKind::VirtualClock,
                    SchedulerKind::WeightedRoundRobin),
    [](const testing::TestParamInfo<SchedulerKind>& info) {
        std::string name = toString(info.param);
        for (char& c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
