/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace {

using namespace mediaworm::sim;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator simulator;
    EXPECT_EQ(simulator.now(), 0);
    EXPECT_EQ(simulator.eventsFired(), 0u);
    EXPECT_FALSE(simulator.step());
}

TEST(Simulator, AdvancesClockToEventTimes)
{
    Simulator simulator;
    std::vector<Tick> seen;
    CallbackEvent a([&] { seen.push_back(simulator.now()); });
    CallbackEvent b([&] { seen.push_back(simulator.now()); });
    simulator.schedule(a, 500);
    simulator.schedule(b, 100);
    simulator.runToCompletion();
    EXPECT_EQ(seen, (std::vector<Tick>{100, 500}));
    EXPECT_EQ(simulator.now(), 500);
    EXPECT_EQ(simulator.eventsFired(), 2u);
}

TEST(Simulator, RunStopsAtDeadlineInclusive)
{
    Simulator simulator;
    int fired = 0;
    CallbackEvent at_deadline([&] { ++fired; });
    CallbackEvent after_deadline([&] { ++fired; });
    simulator.schedule(at_deadline, 100);
    simulator.schedule(after_deadline, 101);

    simulator.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(simulator.now(), 100);

    simulator.run(200);
    EXPECT_EQ(fired, 2);
    // Clock advances to the deadline even with no events left.
    EXPECT_EQ(simulator.now(), 200);
}

TEST(Simulator, ScheduleAfterIsRelative)
{
    Simulator simulator;
    Tick fired_at = -1;
    CallbackEvent first([&] { fired_at = simulator.now(); });
    simulator.scheduleAfter(first, 70);
    simulator.runToCompletion();
    EXPECT_EQ(fired_at, 70);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator simulator;
    std::vector<Tick> ticks;
    CallbackEvent repeating;
    repeating.setCallback([&] {
        ticks.push_back(simulator.now());
        if (ticks.size() < 5)
            simulator.scheduleAfter(repeating, 10);
    });
    simulator.schedule(repeating, 10);
    simulator.runToCompletion();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 20, 30, 40, 50}));
}

TEST(Simulator, DescheduleCancelsPendingEvent)
{
    Simulator simulator;
    bool fired = false;
    CallbackEvent event([&] { fired = true; });
    simulator.schedule(event, 10);
    simulator.deschedule(event);
    simulator.runToCompletion();
    EXPECT_FALSE(fired);
}

TEST(Simulator, RescheduleFromInsideEvent)
{
    Simulator simulator;
    int count = 0;
    CallbackEvent target([&] { ++count; });
    CallbackEvent mover([&] { simulator.reschedule(target, 90); });
    simulator.schedule(target, 50);
    simulator.schedule(mover, 40);
    simulator.run(60);
    EXPECT_EQ(count, 0) << "event should have moved past the deadline";
    simulator.run(100);
    EXPECT_EQ(count, 1);
}

TEST(Simulator, SeedControlsRngStream)
{
    Simulator a(7);
    Simulator b(7);
    Simulator c(8);
    const auto x = a.rng().next();
    EXPECT_EQ(x, b.rng().next());
    EXPECT_NE(x, c.rng().next());
}

TEST(Simulator, ZeroDelaySelfScheduleFiresSameTime)
{
    Simulator simulator;
    int fired = 0;
    CallbackEvent chain;
    chain.setCallback([&] {
        if (++fired < 3)
            simulator.scheduleAfter(chain, 0);
    });
    simulator.schedule(chain, 5);
    simulator.runToCompletion();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(simulator.now(), 5);
}

/*
 * Idle-epoch fast-forward (DESIGN.md section 14): the skipped-tick
 * accounting and the O(1) lazy settle index, including the edge
 * cases where an elided wakeup's readyAt lands inside a stretch of
 * simulated time the clock jumped over.
 */

TEST(Simulator, IdleTicksSkippedCountsInterEventGapsAndTail)
{
    Simulator simulator;
    CallbackEvent a([] {});
    CallbackEvent b([] {});
    simulator.schedule(a, 10);
    simulator.schedule(b, 1000);
    simulator.run(2000);
    // Ticks 1..9 (9), 11..999 (989) and 1001..2000 (1000) never
    // touched the ring.
    EXPECT_EQ(simulator.idleTicksSkipped(), 9u + 989u + 1000u);
    EXPECT_EQ(simulator.now(), 2000);
}

TEST(Simulator, IdleTicksSkippedSameTickEventsCountOnce)
{
    Simulator simulator;
    CallbackEvent a([] {});
    CallbackEvent b([] {});
    simulator.schedule(a, 50);
    simulator.schedule(b, 50);
    simulator.run(50);
    EXPECT_EQ(simulator.idleTicksSkipped(), 49u);
    EXPECT_EQ(simulator.eventsFired(), 2u);
}

TEST(Simulator, EmptySimulationTerminatesAndSkipsToHorizon)
{
    Simulator simulator;
    simulator.run(123456);
    EXPECT_EQ(simulator.now(), 123456);
    EXPECT_EQ(simulator.idleTicksSkipped(), 123456u);
    EXPECT_EQ(simulator.eventsFired(), 0u);
    // settleLazy on an empty index is the O(1) fast path.
    EXPECT_EQ(simulator.settleLazy(123456), 0u);
    EXPECT_FALSE(simulator.lazyTickPending());
}

/** Minimal LazyDrain component: one elidable service slot, as the
 *  router/NI multiplexers use it. */
class OneSlotMux final : public LazyDrain
{
  public:
    explicit OneSlotMux(Simulator& sim) : sim_(sim)
    {
        event_.setCallback([this] {
            tick_.fired();
            ++fires_;
        });
        sim_.addLazyDrain(this);
    }

    std::uint64_t flushLazy(Tick until) override
    {
        return tick_.flush(until);
    }
    bool lazyPending() const override { return tick_.pending(); }

    Simulator& sim_;
    CallbackEvent event_;
    LazyTick tick_;
    int fires_ = 0;
};

TEST(Simulator, LazyKickInsideSkippedEpochCreditsElidedWakeup)
{
    Simulator simulator;
    OneSlotMux mux(simulator);

    // Elide a wakeup maturing at t=100 (empty arbitration mask).
    mux.tick_.arm(simulator, mux.event_, 100, /*maskEmpty=*/true);
    EXPECT_TRUE(mux.tick_.pending());

    // Nothing matures by t=50: the settle fast path must not scan
    // the wakeup away.
    simulator.run(50);
    EXPECT_TRUE(mux.tick_.pending());
    EXPECT_EQ(simulator.elidedEvents(), 0u);

    // A real event at t=200 makes the clock jump clear over the
    // elided wakeup's readyAt=100. Kicking from inside that event
    // must recognise the wakeup as already-fired (it would have run
    // as a no-op at t=100 in the legacy order) and credit it.
    bool serve_inline = false;
    CallbackEvent wake([&] {
        serve_inline = mux.tick_.kick(simulator, mux.event_);
    });
    simulator.schedule(wake, 200);
    simulator.run(300);

    EXPECT_TRUE(serve_inline);
    EXPECT_FALSE(mux.tick_.pending());
    EXPECT_EQ(simulator.elidedEvents(), 1u);
    EXPECT_EQ(mux.fires_, 0) << "the elided wakeup must never fire";
    // eventsFired counts the credited no-op plus the kicking event.
    EXPECT_EQ(simulator.eventsFired(), 2u);
}

TEST(Simulator, LazyKickAheadOfClockRematerializesExactly)
{
    Simulator simulator;
    OneSlotMux mux(simulator);

    mux.tick_.arm(simulator, mux.event_, 100, /*maskEmpty=*/true);

    // Kick at t=30, before the wakeup matures: it must re-enter the
    // queue at its original (when, seq) and fire at exactly t=100.
    bool serve_inline = true;
    CallbackEvent early([&] {
        serve_inline = mux.tick_.kick(simulator, mux.event_);
    });
    simulator.schedule(early, 30);
    simulator.run(300);

    EXPECT_FALSE(serve_inline);
    EXPECT_EQ(mux.fires_, 1);
    EXPECT_EQ(simulator.elidedEvents(), 0u);
}

TEST(Simulator, SettleLazyCreditsMaturedWakeupsAtRunEnd)
{
    for (const bool fast_forward : {true, false}) {
        Simulator simulator;
        simulator.setFastForward(fast_forward);
        OneSlotMux mux(simulator);

        mux.tick_.arm(simulator, mux.event_, 100, /*maskEmpty=*/true);
        // run() settles matured wakeups on its way out; the legacy
        // and fast-forward paths must agree exactly.
        simulator.run(150);
        EXPECT_EQ(simulator.elidedEvents(), 1u) << fast_forward;
        EXPECT_EQ(simulator.eventsFired(), 1u) << fast_forward;
        EXPECT_FALSE(mux.tick_.pending());
        EXPECT_FALSE(simulator.lazyTickPending());

        // A second arm beyond the horizon stays pending (the run
        // would report truncation), in both modes.
        mux.tick_.arm(simulator, mux.event_, 500, /*maskEmpty=*/true);
        simulator.run(200);
        EXPECT_TRUE(simulator.lazyTickPending()) << fast_forward;
        EXPECT_EQ(simulator.elidedEvents(), 1u) << fast_forward;
    }
}

} // namespace
