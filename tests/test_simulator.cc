/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace {

using namespace mediaworm::sim;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator simulator;
    EXPECT_EQ(simulator.now(), 0);
    EXPECT_EQ(simulator.eventsFired(), 0u);
    EXPECT_FALSE(simulator.step());
}

TEST(Simulator, AdvancesClockToEventTimes)
{
    Simulator simulator;
    std::vector<Tick> seen;
    CallbackEvent a([&] { seen.push_back(simulator.now()); });
    CallbackEvent b([&] { seen.push_back(simulator.now()); });
    simulator.schedule(a, 500);
    simulator.schedule(b, 100);
    simulator.runToCompletion();
    EXPECT_EQ(seen, (std::vector<Tick>{100, 500}));
    EXPECT_EQ(simulator.now(), 500);
    EXPECT_EQ(simulator.eventsFired(), 2u);
}

TEST(Simulator, RunStopsAtDeadlineInclusive)
{
    Simulator simulator;
    int fired = 0;
    CallbackEvent at_deadline([&] { ++fired; });
    CallbackEvent after_deadline([&] { ++fired; });
    simulator.schedule(at_deadline, 100);
    simulator.schedule(after_deadline, 101);

    simulator.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(simulator.now(), 100);

    simulator.run(200);
    EXPECT_EQ(fired, 2);
    // Clock advances to the deadline even with no events left.
    EXPECT_EQ(simulator.now(), 200);
}

TEST(Simulator, ScheduleAfterIsRelative)
{
    Simulator simulator;
    Tick fired_at = -1;
    CallbackEvent first([&] { fired_at = simulator.now(); });
    simulator.scheduleAfter(first, 70);
    simulator.runToCompletion();
    EXPECT_EQ(fired_at, 70);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator simulator;
    std::vector<Tick> ticks;
    CallbackEvent repeating;
    repeating.setCallback([&] {
        ticks.push_back(simulator.now());
        if (ticks.size() < 5)
            simulator.scheduleAfter(repeating, 10);
    });
    simulator.schedule(repeating, 10);
    simulator.runToCompletion();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 20, 30, 40, 50}));
}

TEST(Simulator, DescheduleCancelsPendingEvent)
{
    Simulator simulator;
    bool fired = false;
    CallbackEvent event([&] { fired = true; });
    simulator.schedule(event, 10);
    simulator.deschedule(event);
    simulator.runToCompletion();
    EXPECT_FALSE(fired);
}

TEST(Simulator, RescheduleFromInsideEvent)
{
    Simulator simulator;
    int count = 0;
    CallbackEvent target([&] { ++count; });
    CallbackEvent mover([&] { simulator.reschedule(target, 90); });
    simulator.schedule(target, 50);
    simulator.schedule(mover, 40);
    simulator.run(60);
    EXPECT_EQ(count, 0) << "event should have moved past the deadline";
    simulator.run(100);
    EXPECT_EQ(count, 1);
}

TEST(Simulator, SeedControlsRngStream)
{
    Simulator a(7);
    Simulator b(7);
    Simulator c(8);
    const auto x = a.rng().next();
    EXPECT_EQ(x, b.rng().next());
    EXPECT_NE(x, c.rng().next());
}

TEST(Simulator, ZeroDelaySelfScheduleFiresSameTime)
{
    Simulator simulator;
    int fired = 0;
    CallbackEvent chain;
    chain.setCallback([&] {
        if (++fired < 3)
            simulator.scheduleAfter(chain, 0);
    });
    simulator.schedule(chain, 5);
    simulator.runToCompletion();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(simulator.now(), 5);
}

} // namespace
