/**
 * @file
 * Topology-level tests: wiring of the single switch and the fat
 * mesh, end-to-end delivery between every node pair, and fat-link
 * policy behaviour.
 */

#include <gtest/gtest.h>

#include "network/network.hh"
#include "traffic/stream.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::network;

class NetworkTest : public testing::Test
{
  protected:
    void
    build(config::TopologyKind topology,
          config::FatLinkPolicy policy =
              config::FatLinkPolicy::LeastLoaded)
    {
        netCfg.topology = topology;
        netCfg.fatLinkPolicy = policy;
        rng = Rng(5);
        net = std::make_unique<Network>(simulator, routerCfg, netCfg,
                                        metrics, rng);
    }

    /** Sends one message and returns delivered frame count delta. */
    void
    sendMessage(int src, int dst, int lane = 0, bool eof = true)
    {
        traffic::MessageDesc desc;
        desc.stream = StreamId(src * 100 + dst);
        desc.dest = NodeId(dst);
        desc.cls = router::TrafficClass::Vbr;
        desc.vcLane = lane;
        desc.vtick = microseconds(8);
        desc.numFlits = 5;
        desc.endOfFrame = eof;
        net->ni(src).injectMessage(desc);
    }

    Simulator simulator;
    config::RouterConfig routerCfg;
    config::NetworkConfig netCfg;
    MetricsHub metrics;
    Rng rng{5};
    std::unique_ptr<Network> net;
};

TEST_F(NetworkTest, SingleSwitchShape)
{
    build(config::TopologyKind::SingleSwitch);
    EXPECT_EQ(net->numNodes(), 8);
    EXPECT_EQ(net->numRouters(), 1);
    EXPECT_EQ(net->switchOfNode(5), 0);
    // 8 injection + 8 ejection links.
    EXPECT_EQ(net->links().size(), 16u);
}

TEST_F(NetworkTest, SingleSwitchAllPairsDeliver)
{
    build(config::TopologyKind::SingleSwitch);
    int sent = 0;
    for (int src = 0; src < 8; ++src) {
        for (int dst = 0; dst < 8; ++dst) {
            if (src == dst)
                continue;
            sendMessage(src, dst, (src + dst) % routerCfg.numVcs);
            ++sent;
        }
    }
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(),
              static_cast<std::uint64_t>(sent));
    EXPECT_EQ(metrics.flitsDelivered(),
              static_cast<std::uint64_t>(sent) * 5);
    EXPECT_EQ(net->totalBacklogFlits(), 0u);
    net->router(0).checkInvariants();
}

TEST_F(NetworkTest, FatMeshShape)
{
    build(config::TopologyKind::FatMesh);
    EXPECT_EQ(net->numNodes(), 16);
    EXPECT_EQ(net->numRouters(), 4);
    EXPECT_EQ(net->switchOfNode(0), 0);
    EXPECT_EQ(net->switchOfNode(7), 1);
    EXPECT_EQ(net->switchOfNode(15), 3);
    // 16 NI link pairs + 8 directed fat channels per dimension:
    // 4 adjacent switch pairs x fat 2 x 2 directions = 16.
    EXPECT_EQ(net->links().size(), 16u * 2 + 16u);
}

TEST_F(NetworkTest, FatMeshAllPairsDeliver)
{
    build(config::TopologyKind::FatMesh);
    int sent = 0;
    for (int src = 0; src < 16; ++src) {
        for (int dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            sendMessage(src, dst, (src * 3 + dst) % routerCfg.numVcs);
            ++sent;
        }
    }
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(),
              static_cast<std::uint64_t>(sent));
    for (int r = 0; r < 4; ++r)
        net->router(r).checkInvariants();
    EXPECT_EQ(net->totalBacklogFlits(), 0u);
}

TEST_F(NetworkTest, FatMeshSameSwitchTrafficStaysLocal)
{
    build(config::TopologyKind::FatMesh);
    sendMessage(0, 3); // both on switch 0
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(), 1u);
    // No inter-switch link carried any flits.
    for (const auto& link : net->links()) {
        if (link->name().find("sw") == 0) {
            EXPECT_EQ(link->flitRate().count(), 0u) << link->name();
        }
    }
}

TEST_F(NetworkTest, FatMeshDiagonalTakesTwoHops)
{
    build(config::TopologyKind::FatMesh);
    sendMessage(0, 15); // switch 0 -> switch 3 (diagonal)
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(), 1u);
    // Flits crossed exactly two inter-switch channels (5 flits each).
    std::uint64_t inter_switch = 0;
    for (const auto& link : net->links()) {
        if (link->name().find("sw") == 0)
            inter_switch += link->flitRate().count();
    }
    EXPECT_EQ(inter_switch, 10u);
}

TEST_F(NetworkTest, StaticPolicyDeliversEverything)
{
    build(config::TopologyKind::FatMesh, config::FatLinkPolicy::Static);
    for (int dst = 4; dst < 16; ++dst)
        sendMessage(0, dst, dst % routerCfg.numVcs);
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(), 12u);
}

TEST_F(NetworkTest, RandomPolicyDeliversEverything)
{
    build(config::TopologyKind::FatMesh, config::FatLinkPolicy::Random);
    for (int dst = 4; dst < 16; ++dst)
        sendMessage(0, dst, dst % routerCfg.numVcs);
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(), 12u);
}

TEST_F(NetworkTest, LeastLoadedSpreadsAcrossFatLinks)
{
    build(config::TopologyKind::FatMesh);
    // Many concurrent messages from switch 0 to switch 1: the two
    // eastbound links should both carry traffic.
    for (int lane = 0; lane < 8; ++lane) {
        for (int e = 0; e < 4; ++e)
            sendMessage(e, 4 + e, lane, false);
    }
    simulator.runToCompletion();
    std::vector<std::uint64_t> east_counts;
    for (const auto& link : net->links()) {
        if (link->name().find("sw0") == 0
            && link->flitRate().count() > 0) {
            east_counts.push_back(link->flitRate().count());
        }
    }
    EXPECT_GE(east_counts.size(), 2u)
        << "all traffic funnelled through one fat link";
}

} // namespace
