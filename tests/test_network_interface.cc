/**
 * @file
 * Unit tests for the network interface: flitization, injection
 * pacing, credit respect and sink-side metric reporting.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "network/network_interface.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::network;

/** Captures what the NI puts on the injection link. */
class WireTap final : public router::FlitReceiver
{
  public:
    explicit WireTap(Simulator& simulator) : simulator_(simulator) {}

    void
    receiveFlit(const router::Flit& flit, int vc) override
    {
        times.push_back(simulator_.now());
        flits.push_back(flit);
        vcs.push_back(vc);
    }

    std::vector<Tick> times;
    std::vector<router::Flit> flits;
    std::vector<int> vcs;

  private:
    Simulator& simulator_;
};

class NetworkInterfaceTest : public testing::Test
{
  protected:
    NetworkInterfaceTest()
        : tap(simulator),
          link(simulator, 0, "inj"),
          ejection(simulator, 0, "ej")
    {
        cfg.numPorts = 8;
        cfg.numVcs = 4;
        ni = std::make_unique<NetworkInterface>(
            simulator, NodeId(1), cfg, metrics, "ni1");
        link.connectReceiver(&tap);
        ni->connectInjectionLink(link, /*router_buffer_depth=*/4);
        ni->connectEjectionLink(ejection);
    }

    traffic::MessageDesc
    message(int flits, int lane = 0, MessageSeq seq = 0)
    {
        traffic::MessageDesc desc;
        desc.stream = StreamId(3);
        desc.dest = NodeId(5);
        desc.cls = router::TrafficClass::Vbr;
        desc.vcLane = lane;
        desc.vtick = microseconds(8);
        desc.seq = seq;
        desc.numFlits = flits;
        return desc;
    }

    Simulator simulator;
    config::RouterConfig cfg;
    MetricsHub metrics;
    WireTap tap;
    router::Link link;
    router::Link ejection;
    std::unique_ptr<NetworkInterface> ni;
};

TEST_F(NetworkInterfaceTest, FlitizesMessageCorrectly)
{
    ni->injectMessage(message(5));
    simulator.runToCompletion();

    ASSERT_EQ(tap.flits.size(), 4u)
        << "router buffer depth limits in-flight flits";
    EXPECT_TRUE(tap.flits[0].isHeader());
    EXPECT_EQ(tap.flits[0].messageFlits, 5);
    EXPECT_EQ(tap.flits[0].dest, NodeId(5));
    EXPECT_EQ(tap.flits[0].vtick, microseconds(8));
    for (std::size_t i = 0; i < tap.flits.size(); ++i) {
        EXPECT_EQ(tap.flits[i].index, static_cast<int>(i));
        EXPECT_EQ(tap.vcs[i], 0);
    }
}

TEST_F(NetworkInterfaceTest, PacesAtOneFlitPerCycle)
{
    ni->injectMessage(message(4));
    simulator.runToCompletion();

    ASSERT_EQ(tap.times.size(), 4u);
    for (std::size_t i = 1; i < tap.times.size(); ++i)
        EXPECT_EQ(tap.times[i] - tap.times[i - 1], cfg.cycleTime());
}

TEST_F(NetworkInterfaceTest, RespectsCreditsThenResumes)
{
    ni->injectMessage(message(6));
    simulator.runToCompletion();
    EXPECT_EQ(tap.flits.size(), 4u); // depth-limited
    EXPECT_EQ(ni->backlogFlits(), 2u);

    CallbackEvent credits([&] {
        ni->creditReturned(0);
        ni->creditReturned(0);
    });
    simulator.schedule(credits, simulator.now() + microseconds(1));
    simulator.runToCompletion();
    EXPECT_EQ(tap.flits.size(), 6u);
    EXPECT_TRUE(tap.flits.back().isTail());
    EXPECT_EQ(ni->backlogFlits(), 0u);
    EXPECT_EQ(ni->flitsInjected(), 6u);
}

TEST_F(NetworkInterfaceTest, TailCarriesEndOfFrameOnlyWhenFlagged)
{
    traffic::MessageDesc desc = message(3);
    desc.endOfFrame = true;
    ni->injectMessage(desc);
    simulator.runToCompletion();
    ASSERT_EQ(tap.flits.size(), 3u);
    EXPECT_FALSE(tap.flits[0].endOfFrame);
    EXPECT_FALSE(tap.flits[1].endOfFrame);
    EXPECT_TRUE(tap.flits[2].endOfFrame);
}

TEST_F(NetworkInterfaceTest, LanesDrainIndependently)
{
    ni->injectMessage(message(3, /*lane=*/0));
    ni->injectMessage(message(3, /*lane=*/2, /*seq=*/1));
    simulator.runToCompletion();

    ASSERT_EQ(tap.flits.size(), 6u);
    int lane0 = 0;
    int lane2 = 0;
    for (int vc : tap.vcs) {
        lane0 += vc == 0;
        lane2 += vc == 2;
    }
    EXPECT_EQ(lane0, 3);
    EXPECT_EQ(lane2, 3);
}

TEST_F(NetworkInterfaceTest, SinkReportsFrameDelivery)
{
    metrics.enable(0);
    router::Flit tail;
    tail.type = router::FlitType::Tail;
    tail.cls = router::TrafficClass::Vbr;
    tail.stream = StreamId(3);
    tail.endOfFrame = true;
    tail.injectTime = 0;

    ni->receiveFlit(tail, 0);
    EXPECT_EQ(metrics.frames().framesDelivered(), 1u);
    EXPECT_EQ(metrics.rtMessages(), 1u);
    EXPECT_EQ(metrics.flitsDelivered(), 1u);
}

TEST_F(NetworkInterfaceTest, SinkReportsBestEffortLatency)
{
    metrics.enable(0);
    router::Flit tail;
    tail.type = router::FlitType::Tail;
    tail.cls = router::TrafficClass::BestEffort;
    tail.stream = StreamId(9);
    tail.injectTime = 0;
    tail.networkEnterTime = 0;

    CallbackEvent deliver([&] { ni->receiveFlit(tail, 1); });
    simulator.schedule(deliver, microseconds(42));
    simulator.runToCompletion();

    EXPECT_EQ(metrics.beMessages(), 1u);
    EXPECT_DOUBLE_EQ(metrics.beLatency().mean(), 42.0);
}

TEST_F(NetworkInterfaceTest, BodyFlitsDoNotCountAsMessages)
{
    metrics.enable(0);
    router::Flit body;
    body.type = router::FlitType::Body;
    body.cls = router::TrafficClass::Vbr;
    ni->receiveFlit(body, 0);
    EXPECT_EQ(metrics.rtMessages(), 0u);
    EXPECT_EQ(metrics.flitsDelivered(), 1u);
}

TEST_F(NetworkInterfaceTest, LatencyHistogramTracksDeliveries)
{
    metrics.enable(0);
    router::Flit tail;
    tail.type = router::FlitType::Tail;
    tail.cls = router::TrafficClass::BestEffort;
    tail.injectTime = 0;
    tail.networkEnterTime = 0;

    CallbackEvent first([&] { ni->receiveFlit(tail, 0); });
    CallbackEvent second([&] { ni->receiveFlit(tail, 0); });
    simulator.schedule(first, microseconds(10));
    simulator.schedule(second, microseconds(30));
    simulator.runToCompletion();

    const auto& histogram = metrics.beLatencyHistogram();
    EXPECT_EQ(histogram.count(), 2u);
    EXPECT_NEAR(histogram.quantile(0.99), 30.0, 11.0);
    EXPECT_DOUBLE_EQ(histogram.summary().min(), 10.0);
}

TEST_F(NetworkInterfaceTest, MetricsHubFiltersWarmupMessages)
{
    metrics.enable(microseconds(100));
    router::Flit tail;
    tail.type = router::FlitType::Tail;
    tail.cls = router::TrafficClass::BestEffort;
    tail.injectTime = microseconds(50); // injected before enable
    tail.networkEnterTime = microseconds(50);
    ni->receiveFlit(tail, 0);
    EXPECT_EQ(metrics.beMessages(), 1u);
    EXPECT_EQ(metrics.beLatency().count(), 0u)
        << "warmup message contaminated the measurement";
}

} // namespace
