/**
 * @file
 * Randomized stress tests: storms of random messages through the
 * network under every mechanism combination, checking the system's
 * conservation laws (every flit injected is delivered exactly once,
 * every tail completes a message) and the router invariants after
 * drain. These catch interaction bugs the targeted unit tests miss.
 */

#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "network/network.hh"
#include "obs/flight_recorder.hh"
#include "sim/random.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::network;

struct FuzzParams
{
    std::uint64_t seed;
    config::CrossbarKind crossbar;
    config::SwitchingKind switching;
    config::TopologyKind topology;
};

class FuzzStorm : public testing::TestWithParam<FuzzParams>
{
};

TEST_P(FuzzStorm, RandomMessageStormConservesEverything)
{
    const FuzzParams params = GetParam();
    Simulator simulator(params.seed);
    config::RouterConfig cfg;
    cfg.numVcs = 6;
    cfg.flitBufferDepth = 16;
    cfg.crossbar = params.crossbar;
    cfg.switching = params.switching;
    config::NetworkConfig net_cfg;
    net_cfg.topology = params.topology;
    MetricsHub metrics;
    Rng net_rng = simulator.rng().split();
    Network net(simulator, cfg, net_cfg, metrics, net_rng);

    // Inject a storm: random sources, destinations, lanes, sizes and
    // classes, at random times across a 200 us window.
    Rng rng(params.seed * 77 + 3);
    const int num_nodes = net.numNodes();
    constexpr int kMessages = 400;
    std::uint64_t flits_expected = 0;
    int frames_expected = 0;

    struct PendingInjection
    {
        CallbackEvent event;
    };
    std::vector<std::unique_ptr<CallbackEvent>> events;
    for (int i = 0; i < kMessages; ++i) {
        traffic::MessageDesc desc;
        desc.stream = StreamId(i);
        const int src =
            static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(num_nodes)));
        const int draw = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(num_nodes - 1)));
        desc.dest = NodeId(draw >= src ? draw + 1 : draw);
        desc.cls = rng.bernoulli(0.7)
            ? router::TrafficClass::Vbr
            : router::TrafficClass::BestEffort;
        desc.vcLane = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(cfg.numVcs)));
        desc.vtick = desc.cls == router::TrafficClass::Vbr
            ? microseconds(static_cast<std::int64_t>(
                  1 + rng.uniformInt(16)))
            : router::kBestEffortVtick;
        // Sizes 2..16 flits (<= buffer depth for cut-through).
        desc.numFlits = static_cast<int>(2 + rng.uniformInt(15));
        desc.endOfFrame = desc.cls == router::TrafficClass::Vbr;
        if (desc.endOfFrame)
            ++frames_expected;
        flits_expected += static_cast<std::uint64_t>(desc.numFlits);

        events.push_back(std::make_unique<CallbackEvent>(
            [&net, src, desc] { net.ni(src).injectMessage(desc); }));
        simulator.schedule(*events.back(),
                           static_cast<Tick>(rng.uniformInt(
                               static_cast<std::uint64_t>(
                                   microseconds(200)))));
    }

    simulator.run(seconds(1));
    ASSERT_TRUE(simulator.queue().empty()) << "network did not drain";

    EXPECT_EQ(metrics.flitsDelivered(), flits_expected);
    EXPECT_EQ(metrics.frames().framesDelivered(),
              static_cast<std::uint64_t>(frames_expected));
    EXPECT_EQ(net.totalBacklogFlits(), 0u);
    std::uint64_t injected = 0;
    for (int node = 0; node < num_nodes; ++node)
        injected += net.ni(node).flitsInjected();
    EXPECT_EQ(injected, flits_expected);
    for (int r = 0; r < net.numRouters(); ++r)
        net.router(r).checkInvariants();
}

/**
 * The crash path end to end: run a small storm with the flight
 * recorder armed, corrupt one router VC through the debug hook, and
 * check that the resulting invariant panic (a) names the offending
 * router, port and VC and (b) dumps the recorder's event trail to
 * stderr before dying.
 */
TEST(FuzzFlightRecorder, InvariantViolationDumpsTrail)
{
    auto crash = [] {
        Simulator simulator(11);
        config::RouterConfig cfg;
        cfg.numVcs = 6;
        config::NetworkConfig net_cfg;
        MetricsHub metrics;
        Rng net_rng = simulator.rng().split();
        Network net(simulator, cfg, net_cfg, metrics, net_rng);

        obs::FlightRecorder recorder(256);
        net.attachTracer(recorder.tracer());
        recorder.arm();

        // A little traffic so the recorder has a trail to dump.
        traffic::MessageDesc desc;
        desc.stream = StreamId(7);
        desc.dest = NodeId(3);
        desc.cls = router::TrafficClass::Vbr;
        desc.vcLane = 1;
        desc.vtick = microseconds(4);
        desc.numFlits = 6;
        desc.endOfFrame = true;
        CallbackEvent inject(
            [&net, desc] { net.ni(0).injectMessage(desc); });
        simulator.schedule(inject, 0);
        simulator.run(seconds(1));

        net.router(0).debugCorruptVcForTest(2, 3);
        net.router(0).checkInvariants(); // Panics.
    };
    EXPECT_DEATH(crash(),
                 "invariant .* failed at port=2 vc=3"
                 ".*flight recorder: last .* events"
                 ".*host-inject.*stream=7");
}

std::vector<FuzzParams>
fuzzMatrix()
{
    std::vector<FuzzParams> params;
    const config::CrossbarKind crossbars[] = {
        config::CrossbarKind::Multiplexed, config::CrossbarKind::Full};
    const config::SwitchingKind switchings[] = {
        config::SwitchingKind::Wormhole,
        config::SwitchingKind::VirtualCutThrough};
    const config::TopologyKind topologies[] = {
        config::TopologyKind::SingleSwitch,
        config::TopologyKind::FatMesh};
    std::uint64_t seed = 1;
    for (auto crossbar : crossbars) {
        for (auto switching : switchings) {
            for (auto topology : topologies) {
                for (int i = 0; i < 3; ++i) {
                    params.push_back(
                        {seed++, crossbar, switching, topology});
                }
            }
        }
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    Storms, FuzzStorm, testing::ValuesIn(fuzzMatrix()),
    [](const testing::TestParamInfo<FuzzParams>& info) {
        const FuzzParams& p = info.param;
        std::string name = std::string(toString(p.crossbar)) + "_"
            + (p.switching == config::SwitchingKind::Wormhole
                   ? "wh"
                   : "vct")
            + "_"
            + (p.topology == config::TopologyKind::SingleSwitch
                   ? "sw"
                   : "mesh")
            + "_s" + std::to_string(p.seed);
        return name;
    });

} // namespace
