/**
 * @file
 * Tests for statistics-registry wiring across the network components
 * and for larger mesh shapes than the paper's 2x2.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "network/network.hh"
#include "stats/registry.hh"
#include "traffic/stream.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::network;

traffic::MessageDesc
simpleMessage(int src, int dst)
{
    traffic::MessageDesc desc;
    desc.stream = StreamId(src * 100 + dst);
    desc.dest = NodeId(dst);
    desc.cls = router::TrafficClass::Vbr;
    desc.vcLane = 0;
    desc.vtick = microseconds(8);
    desc.numFlits = 5;
    desc.endOfFrame = true;
    return desc;
}

TEST(StatsWiring, SingleSwitchRegistryTracksTraffic)
{
    Simulator simulator;
    config::RouterConfig router_cfg;
    config::NetworkConfig net_cfg;
    MetricsHub metrics;
    Rng rng(1);
    Network net(simulator, router_cfg, net_cfg, metrics, rng);

    stats::Registry registry;
    net.registerStats(registry);
    // 3 router counters + 8 port loads + 16 NI stats + 16 links.
    EXPECT_EQ(registry.size(), 3u + 8 + 16 + 16);
    EXPECT_DOUBLE_EQ(registry.lookup("router0.flits_forwarded"), 0.0);

    net.ni(0).injectMessage(simpleMessage(0, 5));
    simulator.runToCompletion();

    EXPECT_DOUBLE_EQ(registry.lookup("router0.flits_forwarded"), 5.0);
    EXPECT_DOUBLE_EQ(registry.lookup("router0.headers_routed"), 1.0);
    EXPECT_DOUBLE_EQ(registry.lookup("ni0.flits_injected"), 5.0);
    EXPECT_DOUBLE_EQ(registry.lookup("ni0.backlog_flits"), 0.0);
    EXPECT_DOUBLE_EQ(registry.lookup("link.inj0.flits"), 5.0);
    EXPECT_DOUBLE_EQ(registry.lookup("link.ej5.flits"), 5.0);

    const std::string dump = registry.dumpText();
    EXPECT_NE(dump.find("router0.allocation_waits"),
              std::string::npos);
}

TEST(StatsWiring, FatMeshRegistersEveryRouter)
{
    Simulator simulator;
    config::RouterConfig router_cfg;
    config::NetworkConfig net_cfg;
    net_cfg.topology = config::TopologyKind::FatMesh;
    MetricsHub metrics;
    Rng rng(1);
    Network net(simulator, router_cfg, net_cfg, metrics, rng);

    stats::Registry registry;
    net.registerStats(registry);
    for (int r = 0; r < 4; ++r) {
        EXPECT_FALSE(std::isnan(registry.lookup(
            "router" + std::to_string(r) + ".flits_forwarded")))
            << "router " << r << " missing from the registry";
    }
}

TEST(LargerMesh, ThreeByThreeThinMeshDelivers)
{
    // Beyond the paper: a 3x3 mesh with single (thin) inter-switch
    // links fits the 8-port router with 4 endpoints per switch.
    Simulator simulator;
    config::RouterConfig router_cfg;
    config::NetworkConfig net_cfg;
    net_cfg.topology = config::TopologyKind::FatMesh;
    net_cfg.meshWidth = 3;
    net_cfg.meshHeight = 3;
    net_cfg.fatFactor = 1;
    net_cfg.endpointsPerSwitch = 4;
    MetricsHub metrics;
    Rng rng(1);
    Network net(simulator, router_cfg, net_cfg, metrics, rng);

    EXPECT_EQ(net.numNodes(), 36);
    EXPECT_EQ(net.numRouters(), 9);

    // Corner to corner crosses four hops of XY routing.
    net.ni(0).injectMessage(simpleMessage(0, 35));
    // And a reverse-direction message exercises west/north ports.
    net.ni(35).injectMessage(simpleMessage(35, 0));
    simulator.runToCompletion();

    EXPECT_EQ(metrics.frames().framesDelivered(), 2u);
    for (int r = 0; r < 9; ++r)
        net.router(r).checkInvariants();
}

TEST(LargerMesh, RectangularMeshDelivers)
{
    // 4x2 mesh, fat factor 1: row-interior switches have 3
    // neighbours (3 ports) + 4 endpoints = 7 ports.
    Simulator simulator;
    config::RouterConfig router_cfg;
    config::NetworkConfig net_cfg;
    net_cfg.topology = config::TopologyKind::FatMesh;
    net_cfg.meshWidth = 4;
    net_cfg.meshHeight = 2;
    net_cfg.fatFactor = 1;
    net_cfg.endpointsPerSwitch = 4;
    MetricsHub metrics;
    Rng rng(1);
    Network net(simulator, router_cfg, net_cfg, metrics, rng);

    EXPECT_EQ(net.numNodes(), 32);
    int sent = 0;
    for (int src : {0, 13, 31}) {
        for (int dst : {5, 18, 27}) {
            if (src == dst)
                continue;
            net.ni(src).injectMessage(simpleMessage(src, dst));
            ++sent;
        }
    }
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(),
              static_cast<std::uint64_t>(sent));
}

} // namespace
