/**
 * @file
 * Tests for virtual cut-through switching: the downstream full-
 * message space gate at VC allocation and at injection, and
 * end-to-end equivalence with wormhole when nothing blocks.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "network/network.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::network;

TEST(SwitchingConfig, EnumNames)
{
    EXPECT_STREQ(toString(config::SwitchingKind::Wormhole),
                 "wormhole");
    EXPECT_STREQ(
        toString(config::SwitchingKind::VirtualCutThrough),
        "virtual-cut-through");
}

/**
 * Drives one message towards a throttled destination through a
 * single switch and reports how many flits crossed the ejection
 * link. Wormhole lets the head advance and stall mid-link; virtual
 * cut-through refuses to launch until the whole message fits.
 */
class VctGateTest : public testing::Test
{
  protected:
    std::uint64_t
    flitsLaunched(config::SwitchingKind switching, int message_flits,
                  int buffer_depth)
    {
        Simulator simulator;
        config::RouterConfig cfg;
        cfg.numVcs = 4;
        cfg.flitBufferDepth = buffer_depth;
        cfg.switching = switching;
        MetricsHub metrics;
        config::NetworkConfig net_cfg;
        Rng rng(3);
        Network net(simulator, cfg, net_cfg, metrics, rng);

        traffic::MessageDesc desc;
        desc.stream = StreamId(1);
        desc.dest = NodeId(5);
        desc.cls = router::TrafficClass::Vbr;
        desc.vcLane = 0;
        desc.vtick = microseconds(8);
        desc.numFlits = message_flits;
        desc.endOfFrame = true;
        net.ni(0).injectMessage(desc);
        simulator.runToCompletion();
        return net.ni(0).flitsInjected();
    }
};

TEST_F(VctGateTest, UnblockedMessagesBehaveIdentically)
{
    const auto wormhole = flitsLaunched(
        config::SwitchingKind::Wormhole, 8, 20);
    const auto vct = flitsLaunched(
        config::SwitchingKind::VirtualCutThrough, 8, 20);
    EXPECT_EQ(wormhole, 8u);
    EXPECT_EQ(vct, 8u);
}

TEST_F(VctGateTest, InjectionGateHoldsWholeMessageAtHost)
{
    // Buffer (6) is smaller than the message (8): wormhole trickles
    // the first 6 flits into the router buffer; cut-through would
    // have to refuse - but a full-size buffer run must still work.
    const auto wormhole = flitsLaunched(
        config::SwitchingKind::Wormhole, 8, 6);
    EXPECT_EQ(wormhole, 8u); // drains through to the sink
    const auto vct = flitsLaunched(
        config::SwitchingKind::VirtualCutThrough, 8, 8);
    EXPECT_EQ(vct, 8u);
}

TEST(VctDeath, OversizeMessageIsAUserError)
{
    EXPECT_EXIT(
        {
            Simulator simulator;
            config::RouterConfig cfg;
            cfg.numVcs = 4;
            cfg.flitBufferDepth = 6;
            cfg.switching =
                config::SwitchingKind::VirtualCutThrough;
            MetricsHub metrics;
            config::NetworkConfig net_cfg;
            Rng rng(3);
            Network net(simulator, cfg, net_cfg, metrics, rng);
            traffic::MessageDesc desc;
            desc.stream = StreamId(1);
            desc.dest = NodeId(5);
            desc.vcLane = 0;
            desc.numFlits = 8;
            net.ni(0).injectMessage(desc);
        },
        testing::ExitedWithCode(1), "cut-through");
}

TEST(VctEndToEnd, RunsJitterFreeAtModerateLoad)
{
    core::ExperimentConfig cfg;
    cfg.router.switching = config::SwitchingKind::VirtualCutThrough;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 3;
    cfg.timeScale = 0.05;

    const core::ExperimentResult result = core::runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 1.0);
    EXPECT_LT(result.stddevIntervalNormMs, 1.5);
    EXPECT_EQ(result.framesDelivered,
              static_cast<std::uint64_t>(result.rtStreams) * 4);
}

TEST(VctEndToEnd, FatMeshDeliversEverything)
{
    core::ExperimentConfig cfg;
    cfg.router.switching = config::SwitchingKind::VirtualCutThrough;
    cfg.network.topology = config::TopologyKind::FatMesh;
    cfg.traffic.inputLoad = 0.6;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 3;
    cfg.timeScale = 0.05;

    const core::ExperimentResult result = core::runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.framesDelivered,
              static_cast<std::uint64_t>(result.rtStreams) * 4);
}

TEST(VctEndToEnd, DeterministicLikeWormhole)
{
    core::ExperimentConfig cfg;
    cfg.router.switching = config::SwitchingKind::VirtualCutThrough;
    cfg.traffic.inputLoad = 0.5;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.05;
    const auto a = core::runExperiment(cfg);
    const auto b = core::runExperiment(cfg);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_DOUBLE_EQ(a.stddevIntervalMs, b.stddevIntervalMs);
}

} // namespace
