/**
 * @file
 * Unit tests for the text-table report builder.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/table.hh"

namespace {

using mediaworm::core::Table;

TEST(Table, AlignsColumns)
{
    Table table({"load", "d (ms)"});
    table.addRow({"0.8", "33.00"});
    table.addRow({"0.96", "41.23"});
    const std::string text = table.toString();

    // Every line has the same width.
    std::size_t line_start = 0;
    std::vector<std::string> lines;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == '\n') {
            lines.push_back(text.substr(line_start, i - line_start));
            line_start = i + 1;
        }
    }
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[0].size(), lines[2].size());
    EXPECT_EQ(lines[2].size(), lines[3].size());
}

TEST(Table, CountsRows)
{
    Table table({"a"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, CsvUsesCommas)
{
    Table table({"load", "d"});
    table.addRow({"0.8", "33"});
    EXPECT_EQ(table.toCsv(), "load,d\n0.8,33\n");
}

TEST(Table, NumFormatsDoubles)
{
    EXPECT_EQ(Table::num(33.0, 2), "33.00");
    EXPECT_EQ(Table::num(0.1234, 3), "0.123");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, NumFormatsIntegers)
{
    EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
    EXPECT_EQ(Table::num(static_cast<std::int64_t>(-7)), "-7");
}

TEST(Table, HeaderRendersInFirstLine)
{
    Table table({"alpha", "beta"});
    const std::string text = table.toString();
    EXPECT_LT(text.find("alpha"), text.find('\n'));
    EXPECT_LT(text.find("beta"), text.find('\n'));
}

} // namespace
