/**
 * @file
 * Unit and property tests for the traffic-mix planner: VC
 * partitioning, stream counts, balanced placement and best-effort
 * rate derivation (Section 4.2.3 arithmetic).
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "traffic/traffic_mix.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::traffic;

// --- VC partitioning -------------------------------------------------------

TEST(VcPartition, SplitsProportionally)
{
    const VcPartition p = partitionVcs(16, 0.8);
    EXPECT_EQ(p.rtFirst, 0);
    EXPECT_EQ(p.rtCount, 13);
    EXPECT_EQ(p.beFirst, 13);
    EXPECT_EQ(p.beCount, 3);
}

TEST(VcPartition, EvenSplitAtFiftyFifty)
{
    const VcPartition p = partitionVcs(16, 0.5);
    EXPECT_EQ(p.rtCount, 8);
    EXPECT_EQ(p.beCount, 8);
}

TEST(VcPartition, AllRealTime)
{
    const VcPartition p = partitionVcs(16, 1.0);
    EXPECT_EQ(p.rtCount, 16);
    EXPECT_EQ(p.beCount, 0);
}

TEST(VcPartition, AllBestEffort)
{
    const VcPartition p = partitionVcs(16, 0.0);
    EXPECT_EQ(p.rtCount, 0);
    EXPECT_EQ(p.beCount, 16);
}

TEST(VcPartition, EachPresentClassGetsALane)
{
    // 90:10 with 4 VCs would round best-effort to zero lanes.
    const VcPartition p = partitionVcs(4, 0.9);
    EXPECT_GE(p.beCount, 1);
    EXPECT_GE(p.rtCount, 1);
    // And the mirror case.
    const VcPartition q = partitionVcs(4, 0.05);
    EXPECT_GE(q.rtCount, 1);
}

TEST(VcPartition, PartitionsAreDisjointAndCover)
{
    for (double f : {0.0, 0.1, 0.3, 0.5, 0.8, 0.95, 1.0}) {
        const VcPartition p = partitionVcs(16, f);
        EXPECT_EQ(p.rtFirst, 0);
        EXPECT_EQ(p.beFirst, p.rtCount);
        EXPECT_EQ(p.rtCount + p.beCount, 16) << "fraction " << f;
    }
}

// --- Mix planning ------------------------------------------------------------

class MixTest : public testing::Test
{
  protected:
    MixPlan
    plan(double load, double rt_fraction,
         config::StreamPlacement placement =
             config::StreamPlacement::Balanced,
         int num_nodes = 8)
    {
        config::RouterConfig router;
        config::TrafficConfig traffic;
        traffic.inputLoad = load;
        traffic.realTimeFraction = rt_fraction;
        traffic.streamPlacement = placement;
        Rng rng(77);
        return planMix(router, traffic, num_nodes, rng);
    }
};

TEST_F(MixTest, StreamCountMatchesPaperArithmetic)
{
    // Paper: load 0.8 at 80:20 -> RT load 0.64 of 400 Mbps = 256
    // Mbps per node = 64 four-Mbps streams (63 with the exact
    // 16,666-byte frame rate of 4.04 Mbps).
    const MixPlan p = plan(0.8, 0.8);
    EXPECT_NEAR(p.streamsPerNode, 64, 1);
    EXPECT_EQ(p.streams.size(),
              static_cast<std::size_t>(p.streamsPerNode) * 8);
    EXPECT_NEAR(p.plannedRtLoad, 0.64, 0.01);
    EXPECT_NEAR(p.plannedBeLoad, 0.16, 1e-9);
}

TEST_F(MixTest, StreamsPerVcCapacityIsSix)
{
    // Paper: 400 Mbps / 16 VCs / 4 Mbps = 6 connections per VC.
    const MixPlan p = plan(0.8, 0.8);
    EXPECT_EQ(p.streamsPerVcCapacity, 6);
}

TEST_F(MixTest, PureRealTimeHasNoBestEffort)
{
    const MixPlan p = plan(0.8, 1.0);
    EXPECT_EQ(p.beInterval, kTickNever);
    EXPECT_DOUBLE_EQ(p.plannedBeLoad, 0.0);
}

TEST_F(MixTest, PureBestEffortHasNoStreams)
{
    const MixPlan p = plan(0.8, 0.0);
    EXPECT_TRUE(p.streams.empty());
    EXPECT_NE(p.beInterval, kTickNever);
}

TEST_F(MixTest, BestEffortIntervalMatchesRate)
{
    const MixPlan p = plan(0.8, 0.5);
    // BE load 0.4 of 12.5 Mflit/s over 20-flit messages = 250k
    // msgs/s -> 4 us spacing.
    EXPECT_NEAR(static_cast<double>(p.beInterval),
                static_cast<double>(microseconds(4)), 1000.0);
}

TEST_F(MixTest, BalancedPlacementBalancesEndpoints)
{
    const MixPlan p = plan(0.9, 1.0);
    std::map<int, int> out_degree;
    std::map<int, int> in_degree;
    for (const Stream& stream : p.streams) {
        ++out_degree[stream.src.value()];
        ++in_degree[stream.dst.value()];
        EXPECT_NE(stream.src, stream.dst);
    }
    for (int node = 0; node < 8; ++node) {
        EXPECT_EQ(out_degree[node], p.streamsPerNode);
        EXPECT_EQ(in_degree[node], p.streamsPerNode);
    }
}

TEST_F(MixTest, BalancedPlacementBalancesLanes)
{
    const MixPlan p = plan(0.9, 1.0);
    // Per (destination, lane) stream counts differ by at most one.
    std::map<std::pair<int, int>, int> per_dest_lane;
    for (const Stream& stream : p.streams)
        ++per_dest_lane[{stream.dst.value(), stream.vcLane}];
    int lo = 1 << 30;
    int hi = 0;
    for (const auto& [key, count] : per_dest_lane) {
        lo = std::min(lo, count);
        hi = std::max(hi, count);
    }
    EXPECT_LE(hi - lo, 1);
    EXPECT_LE(hi, p.streamsPerVcCapacity)
        << "admission arithmetic violated";
}

TEST_F(MixTest, UniformPlacementStaysInPartitionAndAvoidsSelf)
{
    const MixPlan p =
        plan(0.9, 0.8, config::StreamPlacement::UniformRandom);
    for (const Stream& stream : p.streams) {
        EXPECT_NE(stream.src, stream.dst);
        EXPECT_GE(stream.vcLane, p.partition.rtFirst);
        EXPECT_LT(stream.vcLane,
                  p.partition.rtFirst + p.partition.rtCount);
    }
}

TEST_F(MixTest, StreamsCarryWorkloadParameters)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.inputLoad = 0.5;
    traffic.realTimeFraction = 1.0;
    Rng rng(3);
    const MixPlan p = planMix(router, traffic, 8, rng);
    const Tick vtick = traffic.streamVtick(router.flitSizeBits);
    for (const Stream& stream : p.streams) {
        EXPECT_EQ(stream.vtick, vtick);
        EXPECT_EQ(stream.frameInterval, traffic.frameInterval);
        EXPECT_GE(stream.startOffset, 0);
        EXPECT_LT(stream.startOffset, traffic.frameInterval);
        EXPECT_EQ(stream.cls, router::TrafficClass::Vbr);
    }
}

TEST_F(MixTest, CbrMixProducesCbrStreams)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.inputLoad = 0.5;
    traffic.realTimeFraction = 1.0;
    traffic.realTimeKind = config::RealTimeKind::Cbr;
    Rng rng(3);
    const MixPlan p = planMix(router, traffic, 8, rng);
    for (const Stream& stream : p.streams)
        EXPECT_EQ(stream.cls, router::TrafficClass::Cbr);
}

TEST_F(MixTest, UniqueStreamIds)
{
    const MixPlan p = plan(0.9, 0.9);
    std::map<int, int> ids;
    for (const Stream& stream : p.streams)
        ++ids[stream.id.value()];
    for (const auto& [id, count] : ids)
        EXPECT_EQ(count, 1) << "stream id " << id << " duplicated";
}

TEST_F(MixTest, DescribeSummarizesPlan)
{
    const MixPlan p = plan(0.8, 0.8);
    const std::string text = p.describe();
    EXPECT_NE(text.find("RT streams"), std::string::npos);
    EXPECT_NE(text.find("BE"), std::string::npos);
}

/** Parameterized property sweep over loads. */
class MixLoadSweep : public testing::TestWithParam<double>
{
};

TEST_P(MixLoadSweep, PlannedLoadTracksRequestedLoad)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.inputLoad = GetParam();
    traffic.realTimeFraction = 0.8;
    Rng rng(5);
    const MixPlan p = planMix(router, traffic, 8, rng);
    // Quantization error is at most one stream's bandwidth.
    EXPECT_NEAR(p.plannedRtLoad, GetParam() * 0.8, 4.1 / 400.0);
    // Lanes never exceed the admission capacity at admissible loads.
    std::map<std::pair<int, int>, int> per_dest_lane;
    for (const Stream& stream : p.streams)
        ++per_dest_lane[{stream.dst.value(), stream.vcLane}];
    for (const auto& [key, count] : per_dest_lane)
        EXPECT_LE(count, p.streamsPerVcCapacity);
}

INSTANTIATE_TEST_SUITE_P(Loads, MixLoadSweep,
                         testing::Values(0.1, 0.3, 0.5, 0.7, 0.8, 0.9,
                                         0.96));

} // namespace
