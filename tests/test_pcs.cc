/**
 * @file
 * Unit tests for the PCS subsystem: configuration, connection
 * establishment/accounting, circuit data transport and the
 * experiment harness.
 */

#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "network/metrics.hh"
#include "pcs/connection_table.hh"
#include "pcs/pcs_experiment.hh"
#include "pcs/pcs_network.hh"
#include "traffic/frame_source.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::pcs;

// --- PcsConfig ---------------------------------------------------------------

TEST(PcsConfig, PaperDefaults)
{
    PcsConfig cfg;
    EXPECT_EQ(cfg.numPorts, 8);
    EXPECT_EQ(cfg.numVcs, 24);
    EXPECT_EQ(cfg.linkBandwidthMbps, 100);
    EXPECT_EQ(cfg.cycleTime(), nanoseconds(320));
    cfg.validate();
    EXPECT_NE(cfg.describe().find("PCS"), std::string::npos);
}

TEST(PcsConfigDeath, RejectsBadShape)
{
    PcsConfig cfg;
    cfg.numPorts = 1;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "numPorts");
}

// --- ConnectionTable ------------------------------------------------------------

TEST(ConnectionTable, EstablishReservesBothEnds)
{
    PcsConfig cfg;
    ConnectionTable table(cfg);
    Rng rng(1);
    const auto connection =
        table.establish(NodeId(2), microseconds(8), rng);
    ASSERT_TRUE(connection.has_value());
    EXPECT_EQ(connection->src, NodeId(2));
    EXPECT_NE(connection->dst, NodeId(2));
    EXPECT_GE(connection->srcVc, 0);
    EXPECT_LT(connection->srcVc, 24);
    EXPECT_EQ(table.established(), 1u);
    EXPECT_EQ(table.sourceOccupancy(2), 1);
    EXPECT_EQ(table.destinationOccupancy(connection->dst.value()), 1);
    EXPECT_NE(table.find(connection->stream), nullptr);
}

TEST(ConnectionTable, ReleaseFreesReservations)
{
    PcsConfig cfg;
    ConnectionTable table(cfg);
    Rng rng(1);
    const auto connection =
        table.establish(NodeId(2), microseconds(8), rng);
    ASSERT_TRUE(connection.has_value());
    table.release(*connection);
    EXPECT_EQ(table.sourceOccupancy(2), 0);
    EXPECT_EQ(table.find(connection->stream), nullptr);
    EXPECT_TRUE(table.connections().empty());
}

TEST(ConnectionTable, AttemptAccountingIsConsistent)
{
    PcsConfig cfg;
    ConnectionTable table(cfg);
    Rng rng(7);
    for (int i = 0; i < 150; ++i)
        table.establish(NodeId(i % 8), microseconds(8), rng);
    EXPECT_EQ(table.attempts(),
              table.established() + table.dropped());
    EXPECT_EQ(table.established(), 150u)
        << "150 of 192 circuit slots must be reachable with retries";
}

TEST(ConnectionTable, DropsGrowWithOccupancy)
{
    PcsConfig cfg;
    ConnectionTable table(cfg);
    Rng rng(7);
    for (int i = 0; i < 96; ++i)
        table.establish(NodeId(i % 8), microseconds(8), rng);
    const auto drops_at_half = table.dropped();
    for (int i = 0; i < 84; ++i)
        table.establish(NodeId(i % 8), microseconds(8), rng);
    const auto drops_later = table.dropped() - drops_at_half;
    EXPECT_GT(drops_later, drops_at_half)
        << "blind destination-VC probes must drop more as VCs fill";
}

TEST(ConnectionTable, SourceSideFullMeansNoMoreConnections)
{
    PcsConfig cfg;
    cfg.maxAttemptsPerConnection = 200;
    ConnectionTable table(cfg);
    Rng rng(3);
    // Node 0 sources connections until its 24 source VCs are gone.
    int established = 0;
    for (int i = 0; i < 30; ++i) {
        if (table.establish(NodeId(0), microseconds(8), rng))
            ++established;
    }
    EXPECT_EQ(established, 24);
    EXPECT_EQ(table.sourceOccupancy(0), 24);
}

TEST(ConnectionTable, NoDuplicateVcAssignments)
{
    PcsConfig cfg;
    ConnectionTable table(cfg);
    Rng rng(11);
    for (int i = 0; i < 180; ++i)
        table.establish(NodeId(i % 8), microseconds(8), rng);
    // Each (node, vc) appears at most once per side.
    std::set<std::pair<int, int>> src_slots;
    std::set<std::pair<int, int>> dst_slots;
    for (const Connection& c : table.connections()) {
        EXPECT_TRUE(
            src_slots.insert({c.src.value(), c.srcVc}).second);
        EXPECT_TRUE(
            dst_slots.insert({c.dst.value(), c.dstVc}).second);
    }
}

// --- PcsNetwork data path ---------------------------------------------------------

class PcsNetworkTest : public testing::Test
{
  protected:
    PcsNetworkTest() : net(simulator, cfg, metrics) {}

    Connection
    connect(int src)
    {
        Rng rng(13);
        const auto connection = net.table().establish(
            NodeId(src), microseconds(8), rng);
        EXPECT_TRUE(connection.has_value());
        net.registerConnection(*connection);
        return *connection;
    }

    void
    inject(const Connection& connection, int flits, bool eof = true)
    {
        traffic::MessageDesc desc;
        desc.stream = connection.stream;
        desc.dest = connection.dst;
        desc.cls = router::TrafficClass::Vbr;
        desc.vcLane = connection.srcVc;
        desc.vtick = connection.vtick;
        desc.numFlits = flits;
        desc.endOfFrame = eof;
        net.injectMessage(desc);
    }

    Simulator simulator;
    PcsConfig cfg;
    network::MetricsHub metrics;
    PcsNetwork net;
};

TEST_F(PcsNetworkTest, CircuitDeliversMessages)
{
    const Connection connection = connect(0);
    inject(connection, 20);
    simulator.runToCompletion();
    EXPECT_EQ(metrics.flitsDelivered(), 20u);
    EXPECT_EQ(metrics.frames().framesDelivered(), 1u);
    EXPECT_EQ(net.flitsDelivered(), 20u);
}

TEST_F(PcsNetworkTest, BackToBackMessagesShareTheCircuit)
{
    const Connection connection = connect(0);
    inject(connection, 20, false);
    inject(connection, 20, true);
    simulator.runToCompletion();
    EXPECT_EQ(metrics.flitsDelivered(), 40u);
    EXPECT_EQ(metrics.frames().framesDelivered(), 1u);
}

TEST_F(PcsNetworkTest, ConcurrentCircuitsDoNotInterfereAtLowLoad)
{
    std::vector<Connection> circuits;
    for (int src = 0; src < 8; ++src)
        circuits.push_back(connect(src));
    for (const Connection& connection : circuits)
        inject(connection, 20);
    simulator.runToCompletion();
    EXPECT_EQ(metrics.frames().framesDelivered(), 8u);
    EXPECT_EQ(metrics.flitsDelivered(), 160u);
}

// --- Experiment harness -------------------------------------------------------------

TEST(PcsExperiment, LowLoadIsJitterFree)
{
    PcsExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.4;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 3;
    cfg.timeScale = 0.05;

    const PcsExperimentResult result = runPcsExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 0.5);
    EXPECT_LT(result.stddevIntervalNormMs, 1.0);
    EXPECT_EQ(result.attempts,
              result.established + result.dropped);
    // Target: 0.4 * 8 * ~24.75 streams.
    EXPECT_NEAR(static_cast<double>(result.connectionsRequested), 79.0,
                2.0);
}

TEST(PcsExperiment, HighLoadDropsManyButEstablishesTarget)
{
    PcsExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.9;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.05;

    const PcsExperimentResult result = runPcsExperiment(cfg);
    EXPECT_GT(result.dropped, result.established / 2)
        << "paper reports massive drop counts at high load";
    EXPECT_NEAR(static_cast<double>(result.established),
                static_cast<double>(result.connectionsRequested), 8.0);
}

TEST(PcsExperiment, DeterministicForSeed)
{
    PcsExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.6;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.05;
    cfg.seed = 99;

    const auto a = runPcsExperiment(cfg);
    const auto b = runPcsExperiment(cfg);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_DOUBLE_EQ(a.meanIntervalMs, b.meanIntervalMs);
}

} // namespace
