/**
 * @file
 * Statistical tests for the variate distributions.
 */

#include <memory>

#include <gtest/gtest.h>

#include "sim/distributions.hh"
#include "stats/accumulator.hh"

namespace {

using namespace mediaworm::sim;
using mediaworm::stats::Accumulator;

Accumulator
sample(Distribution& dist, int n, std::uint64_t seed = 99)
{
    Rng rng(seed);
    Accumulator acc;
    for (int i = 0; i < n; ++i)
        acc.add(dist.sample(rng));
    return acc;
}

TEST(Distributions, ConstantAlwaysReturnsValue)
{
    ConstantDistribution dist(16666.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 16666.0);
    const Accumulator acc = sample(dist, 100);
    EXPECT_DOUBLE_EQ(acc.min(), 16666.0);
    EXPECT_DOUBLE_EQ(acc.max(), 16666.0);
}

TEST(Distributions, UniformBoundsAndMean)
{
    UniformDistribution dist(10.0, 20.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 15.0);
    const Accumulator acc = sample(dist, 50000);
    EXPECT_GE(acc.min(), 10.0);
    EXPECT_LT(acc.max(), 20.0);
    EXPECT_NEAR(acc.mean(), 15.0, 0.05);
    // Variance of U(a,b) is (b-a)^2/12.
    EXPECT_NEAR(acc.variance(), 100.0 / 12.0, 0.2);
}

TEST(Distributions, NormalMatchesMoments)
{
    NormalDistribution dist(16666.0, 3333.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 16666.0);
    EXPECT_DOUBLE_EQ(dist.stddev(), 3333.0);
    const Accumulator acc = sample(dist, 100000);
    EXPECT_NEAR(acc.mean(), 16666.0, 40.0);
    EXPECT_NEAR(acc.stddev(), 3333.0, 40.0);
}

TEST(Distributions, NormalIsSymmetric)
{
    NormalDistribution dist(0.0, 1.0);
    Rng rng(3);
    int above = 0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i)
        above += dist.sample(rng) > 0.0;
    EXPECT_NEAR(static_cast<double>(above) / kSamples, 0.5, 0.01);
}

TEST(Distributions, NormalZeroStddevIsDegenerate)
{
    NormalDistribution dist(5.0, 0.0);
    const Accumulator acc = sample(dist, 100);
    EXPECT_DOUBLE_EQ(acc.min(), 5.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Distributions, TruncatedNormalRespectsFloor)
{
    // Aggressive truncation: floor only one sigma below the mean.
    TruncatedNormalDistribution dist(100.0, 50.0, 50.0);
    const Accumulator acc = sample(dist, 50000);
    EXPECT_GE(acc.min(), 50.0);
    // Truncation shifts the mean up.
    EXPECT_GT(acc.mean(), 100.0);
}

TEST(Distributions, TruncatedNormalBarelyAffectsDistantFloor)
{
    // The paper's frame-size model: floor is 5 sigma below the mean.
    TruncatedNormalDistribution dist(16666.0, 3333.0, 76.0);
    const Accumulator acc = sample(dist, 50000);
    EXPECT_NEAR(acc.mean(), 16666.0, 60.0);
    EXPECT_NEAR(acc.stddev(), 3333.0, 60.0);
}

TEST(Distributions, ExponentialMoments)
{
    ExponentialDistribution dist(250.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 250.0);
    const Accumulator acc = sample(dist, 100000);
    EXPECT_NEAR(acc.mean(), 250.0, 5.0);
    // Exponential stddev equals its mean.
    EXPECT_NEAR(acc.stddev(), 250.0, 8.0);
    EXPECT_GE(acc.min(), 0.0);
}

TEST(Distributions, SamplingIsDeterministicPerSeed)
{
    NormalDistribution a(10.0, 2.0);
    NormalDistribution b(10.0, 2.0);
    Rng ra(42);
    Rng rb(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.sample(ra), b.sample(rb));
}

TEST(Distributions, PolymorphicUseThroughBase)
{
    std::unique_ptr<Distribution> dist =
        std::make_unique<UniformDistribution>(0.0, 1.0);
    Rng rng(1);
    const double x = dist->sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
}

} // namespace
