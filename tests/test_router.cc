/**
 * @file
 * Behavioural tests for the MediaWorm wormhole router: routing,
 * wormhole output-VC holding, flit ordering, credit backpressure,
 * fat-channel selection and both crossbar organisations, driven by
 * hand-built flits over raw links.
 */

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "config/router_config.hh"
#include "router/link.hh"
#include "router/wormhole_router.hh"
#include "sim/simulator.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::router;
using namespace mediaworm::sim;

/** Records every flit an output port delivers. */
class Sink final : public FlitReceiver
{
  public:
    void
    init(Simulator* simulator)
    {
        simulator_ = simulator;
    }

    void
    receiveFlit(const Flit& flit, int vc) override
    {
        arrivals.push_back({simulator_->now(), flit, vc});
    }

    struct Arrival
    {
        Tick when;
        Flit flit;
        int vc;
    };
    std::vector<Arrival> arrivals;

  private:
    Simulator* simulator_ = nullptr;
};

/** Swallows credits the router returns towards the sources. */
class CreditSink final : public CreditReceiver
{
  public:
    void creditReturned(int vc) override { ++credits[vc]; }
    std::map<int, int> credits;
};

class RouterTest : public testing::Test
{
  protected:
    static constexpr int kPorts = 4;
    static constexpr int kVcs = 4;
    static constexpr int kDepth = 8;
    static constexpr int kSinkDepth = 1 << 20;

    void
    build(config::CrossbarKind crossbar =
              config::CrossbarKind::Multiplexed,
          config::SchedulerKind scheduler =
              config::SchedulerKind::VirtualClock,
          int sink_depth = kSinkDepth)
    {
        cfg.numPorts = kPorts;
        cfg.numVcs = kVcs;
        cfg.flitBufferDepth = kDepth;
        cfg.crossbar = crossbar;
        cfg.scheduler = scheduler;
        router = std::make_unique<WormholeRouter>(simulator, cfg,
                                                  "dut");
        router->setRouteFunction([this](NodeId dest) {
            if (routeOverride)
                return routeOverride(dest);
            return RouteCandidates::single(dest.value());
        });
        for (int p = 0; p < kPorts; ++p) {
            inLinks.push_back(std::make_unique<Link>(
                simulator, cfg.cycleTime(), "in"));
            router->connectInputLink(p, *inLinks.back());
            inLinks.back()->connectCreditReceiver(&creditSinks[p]);

            outLinks.push_back(std::make_unique<Link>(
                simulator, cfg.cycleTime(), "out"));
            sinks[p].init(&simulator);
            outLinks.back()->connectReceiver(&sinks[p]);
            router->connectOutputLink(p, *outLinks.back(), sink_depth);
        }
    }

    /** Sends a whole message into (port, vc) at the current time. */
    void
    sendMessage(int port, int vc, int dest, int flits, int stream,
                Tick vtick = microseconds(8))
    {
        Flit flit;
        flit.stream = StreamId(stream);
        flit.messageFlits = flits;
        flit.dest = NodeId(dest);
        flit.vcLane = vc;
        flit.vtick = vtick;
        for (int i = 0; i < flits; ++i) {
            flit.index = i;
            flit.type = i == 0 ? FlitType::Header
                : i == flits - 1 ? FlitType::Tail
                                 : FlitType::Body;
            inLinks[static_cast<std::size_t>(port)]->sendFlit(flit, vc);
        }
    }

    /** Tail-arrival time of @p stream at @p port; -1 if missing. */
    Tick
    tailTime(int port, int stream) const
    {
        for (const auto& arrival : sinks[port].arrivals) {
            if (arrival.flit.stream == StreamId(stream)
                && arrival.flit.isTail()) {
                return arrival.when;
            }
        }
        return -1;
    }

    Simulator simulator;
    config::RouterConfig cfg;
    std::unique_ptr<WormholeRouter> router;
    std::vector<std::unique_ptr<Link>> inLinks;
    std::vector<std::unique_ptr<Link>> outLinks;
    Sink sinks[kPorts];
    CreditSink creditSinks[kPorts];
    std::function<RouteCandidates(NodeId)> routeOverride;
};

TEST_F(RouterTest, DeliversSingleMessageInOrder)
{
    build();
    sendMessage(/*port=*/0, /*vc=*/1, /*dest=*/2, /*flits=*/5,
                /*stream=*/7);
    simulator.runToCompletion();

    ASSERT_EQ(sinks[2].arrivals.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        const auto& arrival =
            sinks[2].arrivals[static_cast<std::size_t>(i)];
        EXPECT_EQ(arrival.flit.index, i);
        EXPECT_EQ(arrival.vc, 1);
        EXPECT_EQ(arrival.flit.stream, StreamId(7));
    }
    EXPECT_TRUE(sinks[2].arrivals.front().flit.isHeader());
    EXPECT_TRUE(sinks[2].arrivals.back().flit.isTail());
    for (int p : {0, 1, 3})
        EXPECT_TRUE(sinks[p].arrivals.empty());
    EXPECT_EQ(router->headersRouted(), 1u);
    EXPECT_EQ(router->flitsForwarded(), 5u);
    router->checkInvariants();
}

TEST_F(RouterTest, ReturnsOneCreditPerFlit)
{
    build();
    sendMessage(0, 1, 2, 5, 7);
    simulator.runToCompletion();
    EXPECT_EQ(creditSinks[0].credits[1], 5);
}

TEST_F(RouterTest, WormholeHoldsOutputVcUntilTail)
{
    build();
    // Two messages from different inputs to the same (port 3, VC 2):
    // their flits must not interleave on that output VC.
    sendMessage(0, 2, 3, 6, 100);
    sendMessage(1, 2, 3, 6, 200);
    simulator.runToCompletion();

    ASSERT_EQ(sinks[3].arrivals.size(), 12u);
    int switches = 0;
    int last_stream = -1;
    for (const auto& arrival : sinks[3].arrivals) {
        const int stream = arrival.flit.stream.value();
        if (stream != last_stream) {
            ++switches;
            last_stream = stream;
        }
    }
    EXPECT_EQ(switches, 2)
        << "flits of the two messages interleaved on one output VC";
    EXPECT_EQ(router->allocationWaits(), 1u);
    router->checkInvariants();
}

TEST_F(RouterTest, DistinctVcsShareTheLinkConcurrently)
{
    build();
    // Same output port, different VC lanes: flit-level multiplexing
    // interleaves them (Section 3.2's flit-level strategy).
    sendMessage(0, 0, 3, 6, 100);
    sendMessage(1, 1, 3, 6, 200);
    simulator.runToCompletion();

    ASSERT_EQ(sinks[3].arrivals.size(), 12u);
    const Tick tail_a = tailTime(3, 100);
    const Tick tail_b = tailTime(3, 200);
    // Both finish within each other's service window: neither had
    // to wait for the other's tail.
    EXPECT_LT(std::llabs(tail_a - tail_b),
              6 * cfg.cycleTime() + cfg.cycleTime());
    EXPECT_EQ(router->allocationWaits(), 0u);
}

TEST_F(RouterTest, CreditBackpressureStallsAtDepth)
{
    build(config::CrossbarKind::Multiplexed,
          config::SchedulerKind::VirtualClock, /*sink_depth=*/2);
    sendMessage(0, 1, 2, 6, 7);
    simulator.runToCompletion();

    // Only the downstream buffer's worth of flits may cross.
    EXPECT_EQ(sinks[2].arrivals.size(), 2u);

    // Returning credits releases the rest.
    CallbackEvent release([&] {
        for (int i = 0; i < 4; ++i)
            outLinks[2]->sendCredit(1);
    });
    simulator.schedule(release, simulator.now() + microseconds(1));
    simulator.runToCompletion();
    EXPECT_EQ(sinks[2].arrivals.size(), 6u);
    router->checkInvariants();
}

TEST_F(RouterTest, BackToBackMessagesOnOneInputVc)
{
    build();
    // Second message's header queues behind the first's tail in the
    // same input VC and must restart routing after it drains.
    sendMessage(0, 1, 2, 4, 100);
    sendMessage(0, 1, 3, 4, 200);
    simulator.runToCompletion();

    EXPECT_EQ(sinks[2].arrivals.size(), 4u);
    EXPECT_EQ(sinks[3].arrivals.size(), 4u);
    EXPECT_GT(tailTime(3, 200), tailTime(2, 100));
    EXPECT_EQ(router->headersRouted(), 2u);
    router->checkInvariants();
}

TEST_F(RouterTest, AllocationWaitersAreServedInArrivalOrder)
{
    build();
    sendMessage(0, 2, 3, 5, 100);
    CallbackEvent second(
        [&] { sendMessage(1, 2, 3, 5, 200); });
    CallbackEvent third(
        [&] { sendMessage(2, 2, 3, 5, 300); });
    simulator.schedule(second, cfg.cycleTime() * 2);
    simulator.schedule(third, cfg.cycleTime() * 4);
    simulator.runToCompletion();

    EXPECT_EQ(router->allocationWaits(), 2u);
    EXPECT_LT(tailTime(3, 100), tailTime(3, 200));
    EXPECT_LT(tailTime(3, 200), tailTime(3, 300));
}

TEST_F(RouterTest, FatChannelPicksLeastLoadedCandidate)
{
    build(config::CrossbarKind::Multiplexed,
          config::SchedulerKind::VirtualClock, /*sink_depth=*/2);
    // Destination 9 may leave through port 1 or port 2.
    routeOverride = [](NodeId dest) {
        if (dest.value() == 9) {
            RouteCandidates rc;
            rc.ports = {1, 2, 0, 0};
            rc.count = 2;
            return rc;
        }
        return RouteCandidates::single(dest.value());
    };

    // First message ties break towards port 1; the tiny sink depth
    // keeps its flits queued there so the second header sees port 1
    // loaded and diverts to port 2.
    sendMessage(0, 0, 9, 6, 100);
    CallbackEvent second([&] { sendMessage(3, 1, 9, 6, 200); });
    simulator.schedule(second, cfg.cycleTime() * 8);
    simulator.runToCompletion();

    EXPECT_FALSE(sinks[1].arrivals.empty());
    EXPECT_FALSE(sinks[2].arrivals.empty());
    for (const auto& arrival : sinks[1].arrivals)
        EXPECT_EQ(arrival.flit.stream, StreamId(100));
    for (const auto& arrival : sinks[2].arrivals)
        EXPECT_EQ(arrival.flit.stream, StreamId(200));
}

TEST_F(RouterTest, VirtualClockPrefersRealTimeOverBestEffort)
{
    build();
    // Both messages arrive together at the same input port for the
    // same output; the best-effort one carries an infinite Vtick and
    // must yield the crossbar-input multiplexer to the VBR message.
    sendMessage(0, 0, 3, 8, 900, kBestEffortVtick);
    sendMessage(0, 1, 3, 8, 100, microseconds(8));
    simulator.runToCompletion();

    EXPECT_LT(tailTime(3, 100), tailTime(3, 900));
}

TEST_F(RouterTest, FifoServesInArrivalOrderInstead)
{
    build(config::CrossbarKind::Multiplexed,
          config::SchedulerKind::Fifo);
    sendMessage(0, 0, 3, 8, 900, kBestEffortVtick);
    sendMessage(0, 1, 3, 8, 100, microseconds(8));
    simulator.runToCompletion();

    // FIFO is rate-agnostic: the earlier-arrived best-effort message
    // finishes first.
    EXPECT_LT(tailTime(3, 900), tailTime(3, 100));
}

TEST_F(RouterTest, FullCrossbarDeliversAndInterleaves)
{
    build(config::CrossbarKind::Full);
    sendMessage(0, 0, 3, 6, 100);
    sendMessage(1, 1, 3, 6, 200);
    simulator.runToCompletion();

    ASSERT_EQ(sinks[3].arrivals.size(), 12u);
    for (int i = 0; i + 1 < 12; ++i) {
        // Per-VC order still holds.
        const auto& a = sinks[3].arrivals[static_cast<std::size_t>(i)];
        const auto& b =
            sinks[3].arrivals[static_cast<std::size_t>(i + 1)];
        if (a.vc == b.vc) {
            EXPECT_LT(a.flit.index, b.flit.index);
        }
    }
    router->checkInvariants();
}

TEST_F(RouterTest, FullCrossbarWormholeHoldStillApplies)
{
    build(config::CrossbarKind::Full);
    sendMessage(0, 2, 3, 6, 100);
    sendMessage(1, 2, 3, 6, 200);
    simulator.runToCompletion();

    int switches = 0;
    int last_stream = -1;
    for (const auto& arrival : sinks[3].arrivals) {
        if (arrival.flit.stream.value() != last_stream) {
            ++switches;
            last_stream = arrival.flit.stream.value();
        }
    }
    EXPECT_EQ(switches, 2);
    EXPECT_EQ(router->allocationWaits(), 1u);
}

TEST_F(RouterTest, OutputLoadReflectsQueuedFlits)
{
    build(config::CrossbarKind::Multiplexed,
          config::SchedulerKind::VirtualClock, /*sink_depth=*/1);
    EXPECT_EQ(router->outputLoad(2), 0);
    sendMessage(0, 1, 2, 6, 7);
    simulator.runToCompletion();
    EXPECT_GT(router->outputLoad(2), 0);
}

TEST_F(RouterTest, ManyPortsSimultaneouslyAllToAll)
{
    build();
    // Every port sends to every other port on its own VC lane.
    int stream = 0;
    for (int src = 0; src < kPorts; ++src) {
        for (int dst = 0; dst < kPorts; ++dst) {
            if (src == dst)
                continue;
            sendMessage(src, dst % kVcs, dst, 4, stream++);
        }
    }
    simulator.runToCompletion();
    for (int p = 0; p < kPorts; ++p)
        EXPECT_EQ(sinks[p].arrivals.size(), 3u * 4u) << "port " << p;
    EXPECT_EQ(router->flitsForwarded(), 12u * 4u);
    router->checkInvariants();
}

} // namespace
