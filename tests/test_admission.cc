/**
 * @file
 * Unit tests for the admission controller (the paper's Section 6
 * future-work strategy, built on its Sections 4-5 arithmetic).
 */

#include <vector>

#include <gtest/gtest.h>

#include "traffic/admission.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::traffic;

class AdmissionTest : public testing::Test
{
  protected:
    AdmissionTest()
        : partition(partitionVcs(router.numVcs, 0.8)),
          controller(router, partition, 8)
    {
    }

    /** A 4 Mbps-class stream request (vtick 8 us = 1% of link). */
    Stream
    request(int src, int dst, int lane = 0,
            Tick vtick = microseconds(8))
    {
        Stream stream;
        stream.id = StreamId(nextId++);
        stream.src = NodeId(src);
        stream.dst = NodeId(dst);
        stream.cls = router::TrafficClass::Vbr;
        stream.vcLane = lane;
        stream.vtick = vtick;
        stream.frameInterval = milliseconds(33);
        return stream;
    }

    config::RouterConfig router;
    VcPartition partition;
    AdmissionController controller;
    int nextId = 0;
};

TEST_F(AdmissionTest, AdmitsWithinBudget)
{
    EXPECT_TRUE(controller.tryAdmit(request(0, 1)));
    EXPECT_EQ(controller.admitted(), 1u);
    EXPECT_EQ(controller.live(), 1);
    // vtick 8 us over 80 ns cycles = 1% of the link.
    EXPECT_NEAR(controller.sourceLoad(0), 0.01, 1e-12);
    EXPECT_NEAR(controller.destinationLoad(1), 0.01, 1e-12);
}

TEST_F(AdmissionTest, RejectsLaneOutsideRealTimePartition)
{
    // 80:20 partition on 16 VCs: lanes 13..15 are best-effort.
    EXPECT_FALSE(controller.tryAdmit(request(0, 1, /*lane=*/14)));
    EXPECT_EQ(controller.rejected(), 1u);
    EXPECT_EQ(controller.live(), 0);
}

TEST_F(AdmissionTest, RejectsSelfTraffic)
{
    EXPECT_FALSE(controller.tryAdmit(request(3, 3)));
}

TEST_F(AdmissionTest, EnforcesSourceBudget)
{
    // Each stream is 1% of the link; the 0.75 default budget admits
    // 75 per source (spread over lanes to dodge the lane cap).
    int admitted = 0;
    for (int i = 0; i < 100; ++i) {
        if (controller.tryAdmit(request(0, 1 + i % 7,
                                        i % partition.rtCount))) {
            ++admitted;
        }
    }
    EXPECT_EQ(admitted, 75);
    EXPECT_NEAR(controller.sourceLoad(0), 0.75, 1e-9);
}

TEST_F(AdmissionTest, EnforcesDestinationBudget)
{
    int admitted = 0;
    for (int i = 0; i < 100; ++i) {
        if (controller.tryAdmit(request(i % 7 + 1, 0,
                                        i % partition.rtCount))) {
            ++admitted;
        }
    }
    EXPECT_EQ(admitted, 75);
    EXPECT_NEAR(controller.destinationLoad(0), 0.75, 1e-9);
}

TEST_F(AdmissionTest, EnforcesLaneCapacity)
{
    // All requests on one destination lane: the paper's arithmetic
    // caps it at floor(1 / (16 * 0.01)) = 6 connections.
    int admitted = 0;
    for (int i = 0; i < 10; ++i)
        admitted += controller.tryAdmit(request(i % 7 + 1, 0, 2));
    EXPECT_EQ(admitted, 6);
    EXPECT_EQ(controller.laneOccupancy(0, 2), 6);
    EXPECT_EQ(controller.laneCapacity(), 6);
}

TEST_F(AdmissionTest, LaneCapacityCanBeDisabled)
{
    AdmissionPolicy policy;
    policy.enforceLaneCapacity = false;
    AdmissionController permissive(router, partition, 8, policy);
    int admitted = 0;
    for (int i = 0; i < 10; ++i)
        admitted += permissive.tryAdmit(request(i % 7 + 1, 0, 2));
    EXPECT_EQ(admitted, 10);
}

TEST_F(AdmissionTest, ReleaseReturnsCapacity)
{
    std::vector<Stream> admitted;
    for (int i = 0; i < 6; ++i) {
        Stream stream = request(i + 1, 0, 2);
        ASSERT_TRUE(controller.tryAdmit(stream));
        admitted.push_back(stream);
    }
    EXPECT_FALSE(controller.tryAdmit(request(7, 0, 2)));

    controller.release(admitted.back());
    EXPECT_EQ(controller.live(), 5);
    EXPECT_TRUE(controller.tryAdmit(request(7, 0, 2)));
}

TEST_F(AdmissionTest, FasterStreamsConsumeMoreBudget)
{
    // A 4x-rate stream (vtick 2 us = 4% of the link) fills the 0.75
    // budget in 18 admissions instead of 75.
    int admitted = 0;
    for (int i = 0; i < 40; ++i) {
        if (controller.tryAdmit(request(0, 1 + i % 7,
                                        i % partition.rtCount,
                                        microseconds(2)))) {
            ++admitted;
        }
    }
    EXPECT_EQ(admitted, 18);
}

TEST_F(AdmissionTest, BudgetsAreIndependentPerNode)
{
    for (int node = 0; node < 8; ++node) {
        const int dst = (node + 1) % 8;
        EXPECT_TRUE(
            controller.tryAdmit(request(node, dst, node % 13)));
    }
    for (int node = 0; node < 8; ++node)
        EXPECT_NEAR(controller.sourceLoad(node), 0.01, 1e-12);
}

TEST_F(AdmissionTest, RejectsZeroVtick)
{
    // A vtick of zero would divide by zero in the load arithmetic;
    // it must bounce off the sanity check, not reach the table.
    EXPECT_FALSE(controller.tryAdmit(request(0, 1, 0, Tick(0))));
    EXPECT_EQ(controller.rejected(), 1u);
    EXPECT_EQ(controller.live(), 0);
    EXPECT_NEAR(controller.sourceLoad(0), 0.0, 1e-12);
    EXPECT_NEAR(controller.destinationLoad(1), 0.0, 1e-12);
}

TEST_F(AdmissionTest, RejectsNegativeVtick)
{
    EXPECT_FALSE(controller.tryAdmit(
        request(0, 1, 0, -microseconds(8))));
    EXPECT_EQ(controller.rejected(), 1u);
    EXPECT_EQ(controller.laneOccupancy(1, 0), 0);
}

TEST_F(AdmissionTest, RejectsOverCapacityRate)
{
    // A vtick below the flit cycle time asks for more than the whole
    // link; no budget arithmetic can make that admissible.
    const Tick half_cycle = router.cycleTime() / 2;
    ASSERT_GT(half_cycle, 0);
    EXPECT_FALSE(controller.tryAdmit(request(0, 1, 0, half_cycle)));
    EXPECT_EQ(controller.rejected(), 1u);
    EXPECT_EQ(controller.live(), 0);
    EXPECT_NEAR(controller.sourceLoad(0), 0.0, 1e-12);

    // Exactly the link rate is the boundary case: load 1.0 exceeds
    // the default 0.75 budget but passes the sanity check, so it is
    // a capacity rejection, not a malformed request.
    EXPECT_FALSE(
        controller.tryAdmit(request(0, 1, 0, router.cycleTime())));
    EXPECT_EQ(controller.rejected(), 2u);
}

/** Scripted analytic test for the delegation-order contract. */
class ScriptedAnalytic : public AnalyticAdmission
{
  public:
    bool
    permits(const Stream&) const override
    {
        ++asked;
        return allow;
    }

    void
    committed(const Stream&) override
    {
        ++commits;
    }

    void
    released(const Stream&) override
    {
        ++releases;
    }

    bool allow = true;
    mutable int asked = 0;
    int commits = 0;
    int releases = 0;
};

TEST_F(AdmissionTest, AnalyticVetoRejectsAfterBookkeeping)
{
    ScriptedAnalytic analytic;
    analytic.allow = false;
    controller.setAnalyticAdmission(&analytic);

    EXPECT_FALSE(controller.tryAdmit(request(0, 1)));
    EXPECT_EQ(analytic.asked, 1);
    EXPECT_EQ(analytic.commits, 0);
    EXPECT_EQ(controller.rejected(), 1u);
    EXPECT_NEAR(controller.sourceLoad(0), 0.0, 1e-12);

    // Streams the cheap checks already reject never reach the
    // (expensive) analytic test.
    EXPECT_FALSE(controller.tryAdmit(request(3, 3)));
    EXPECT_EQ(analytic.asked, 1);
}

TEST_F(AdmissionTest, AnalyticSeesCommitAndRelease)
{
    ScriptedAnalytic analytic;
    controller.setAnalyticAdmission(&analytic);

    Stream stream = request(0, 1);
    ASSERT_TRUE(controller.tryAdmit(stream));
    EXPECT_EQ(analytic.commits, 1);

    controller.release(stream);
    EXPECT_EQ(analytic.releases, 1);
    EXPECT_EQ(controller.live(), 0);
}

TEST(AdmissionPolicyDeath, RejectsBadBudget)
{
    config::RouterConfig router;
    const VcPartition partition = partitionVcs(16, 0.8);
    AdmissionPolicy policy;
    policy.maxRealTimeLoad = 1.5;
    EXPECT_EXIT(AdmissionController(router, partition, 8, policy),
                testing::ExitedWithCode(1), "maxRealTimeLoad");
}

} // namespace
