/**
 * @file
 * Determinism regression tests.
 *
 * Two layers of protection:
 *
 *  1. Run-twice equality: the same config and seed must produce a
 *     bit-identical ExperimentResult within one process. Catches
 *     accidental dependence on global state, addresses, or wall
 *     time.
 *
 *  2. Golden digests: the deterministicHash() of three fixed
 *     configurations is checked against values captured from the
 *     seed implementation (binary-heap event queue, std::deque data
 *     path). Any behavioural change to the kernel, router, flow
 *     control, scheduling, or traffic generation moves these
 *     digests. Performance work (the two-tier event queue, typed
 *     events, ring buffers, credit coalescing, route tables) must
 *     NOT move them - that is the point of the test.
 *
 * If a deliberate behavioural change (a bug fix, a model change)
 * moves a digest, re-capture it: build Release, run this test, and
 * paste the three printed "digest=0x..." values below. Never update
 * a golden for a change that is supposed to be purely mechanical.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::core;

/** G1: 8-port single switch, Virtual Clock, 0.9 load, 80% RT. */
ExperimentConfig
goldenConfig1()
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 8;
    cfg.router.numVcs = 16;
    cfg.router.flitBufferDepth = 20;
    cfg.router.scheduler = config::SchedulerKind::VirtualClock;
    cfg.traffic.inputLoad = 0.9;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.05;
    cfg.seed = 42;
    return cfg;
}

/** G2: as G1 but FIFO scheduling at saturation load. */
ExperimentConfig
goldenConfig2()
{
    ExperimentConfig cfg = goldenConfig1();
    cfg.router.scheduler = config::SchedulerKind::Fifo;
    cfg.traffic.inputLoad = 0.96;
    return cfg;
}

/** G3: 2x2 fat mesh (fat factor 2, 4 endpoints per switch). */
ExperimentConfig
goldenConfig3()
{
    ExperimentConfig cfg = goldenConfig1();
    cfg.network.topology = config::TopologyKind::FatMesh;
    cfg.network.meshWidth = 2;
    cfg.network.meshHeight = 2;
    cfg.network.fatFactor = 2;
    cfg.network.endpointsPerSwitch = 4;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.6;
    cfg.seed = 7;
    return cfg;
}

/** G4: 4x4 mesh, one endpoint per switch, dimension-order routing. */
ExperimentConfig
goldenConfig4()
{
    ExperimentConfig cfg = goldenConfig1();
    cfg.network.topology = config::TopologyKind::Mesh;
    cfg.network.meshWidth = 4;
    cfg.network.meshHeight = 4;
    cfg.network.endpointsPerSwitch = 1;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.6;
    cfg.seed = 13;
    return cfg;
}

/** G5: 4x4 torus, dimension-order with dateline VC classes. */
ExperimentConfig
goldenConfig5()
{
    ExperimentConfig cfg = goldenConfig4();
    cfg.network.topology = config::TopologyKind::Torus;
    cfg.seed = 17;
    return cfg;
}

/** G6: clos(m=2,n=2,r=4), natural multi-up routing. */
ExperimentConfig
goldenConfig6()
{
    ExperimentConfig cfg = goldenConfig1();
    cfg.network.topology = config::TopologyKind::Clos;
    cfg.network.closM = 2;
    cfg.network.closN = 2;
    cfg.network.closR = 4;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.6;
    cfg.seed = 19;
    return cfg;
}

/**
 * Golden digests. Re-captured for the conservative-PDES change:
 * link delivery events now carry canonical tie-break keys, the
 * metrics-enable event was replaced by threshold gating (one fewer
 * event), and aggregates merge per-node lanes - all deliberate
 * behavioural changes, each moving the digests exactly once. The
 * sharded executor must reproduce these same digests at any shard
 * count (tests/test_pdes.cc).
 */
constexpr std::uint64_t kGolden1 = 0xcc6ebde3298d4797ULL;
constexpr std::uint64_t kGolden2 = 0x7c2a72eb44faf63bULL;
constexpr std::uint64_t kGolden3 = 0x001106412b7e36c6ULL;

/**
 * G4-G6 pin the topology-graph shapes (mesh / torus / Clos over the
 * routing-policy layer), captured when the layer was introduced.
 * The PDES shard-invariance tests (test_pdes.cc) must reproduce
 * these same digests at any shard count.
 */
constexpr std::uint64_t kGolden4 = 0x245d70a718778ae6ULL;
constexpr std::uint64_t kGolden5 = 0x5259e430404b1f03ULL;
constexpr std::uint64_t kGolden6 = 0x6b7fa99fc7d0012fULL;

void
expectIdentical(const ExperimentResult& a, const ExperimentResult& b)
{
    EXPECT_EQ(a.meanIntervalMs, b.meanIntervalMs);
    EXPECT_EQ(a.stddevIntervalMs, b.stddevIntervalMs);
    EXPECT_EQ(a.meanIntervalNormMs, b.meanIntervalNormMs);
    EXPECT_EQ(a.stddevIntervalNormMs, b.stddevIntervalNormMs);
    EXPECT_EQ(a.beLatencyUs, b.beLatencyUs);
    EXPECT_EQ(a.beNetworkLatencyUs, b.beNetworkLatencyUs);
    EXPECT_EQ(a.beLatencyP99Us, b.beLatencyP99Us);
    EXPECT_EQ(a.rtMessageLatencyUs, b.rtMessageLatencyUs);
    EXPECT_EQ(a.intervalSamples, b.intervalSamples);
    EXPECT_EQ(a.framesDelivered, b.framesDelivered);
    EXPECT_EQ(a.beMessages, b.beMessages);
    EXPECT_EQ(a.flitsDelivered, b.flitsDelivered);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_EQ(a.rtStreams, b.rtStreams);
    EXPECT_EQ(a.streamsPerNode, b.streamsPerNode);
    EXPECT_EQ(a.simulatedMs, b.simulatedMs);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.deterministicHash(), b.deterministicHash());
}

TEST(Determinism, RunTwiceIsBitIdentical)
{
    const ExperimentResult a = runExperiment(goldenConfig1());
    const ExperimentResult b = runExperiment(goldenConfig1());
    expectIdentical(a, b);
}

TEST(Determinism, FatMeshRunTwiceIsBitIdentical)
{
    const ExperimentResult a = runExperiment(goldenConfig3());
    const ExperimentResult b = runExperiment(goldenConfig3());
    expectIdentical(a, b);
}

TEST(Determinism, HashCoversResultFields)
{
    ExperimentResult a;
    ExperimentResult b;
    EXPECT_EQ(a.deterministicHash(), b.deterministicHash());
    b.eventsFired = 1;
    EXPECT_NE(a.deterministicHash(), b.deterministicHash());
    b = a;
    b.meanIntervalMs = 33.0;
    EXPECT_NE(a.deterministicHash(), b.deterministicHash());
    // Machine-dependent fields must not contribute.
    b = a;
    b.wallSeconds = 123.0;
    b.eventsPerSec = 4.5e6;
    EXPECT_EQ(a.deterministicHash(), b.deterministicHash());
}

/**
 * Observation must not perturb: a run with every observer enabled
 * (telemetry, trace, flight recorder) produces the same
 * deterministicHash as the plain run - no extra events, no extra RNG
 * draws, identical measured outputs. Checked against the golden too,
 * so the observed run matches the seed implementation bit for bit.
 */
TEST(Determinism, ObserversDoNotPerturbTheHash)
{
    const ExperimentResult plain = runExperiment(goldenConfig1());

    ExperimentConfig observed_cfg = goldenConfig1();
    observed_cfg.obs.telemetry.enabled = true;
    observed_cfg.obs.trace = true;
    observed_cfg.obs.flightRecorder = true;
    const ExperimentResult observed = runExperiment(observed_cfg);

    expectIdentical(plain, observed);
    EXPECT_EQ(observed.deterministicHash(), kGolden1);

    // And the observations themselves arrived.
    ASSERT_NE(observed.observations, nullptr);
    EXPECT_TRUE(observed.observations->hasTelemetry);
    EXPECT_TRUE(observed.observations->hasTrace);
    EXPECT_GT(observed.observations->trace.size(), 0u);
    EXPECT_FALSE(observed.observations->telemetry.streams.empty());
    EXPECT_EQ(plain.observations, nullptr);
}

TEST(Determinism, MatchesGoldenSingleSwitchVirtualClock)
{
    const ExperimentResult r = runExperiment(goldenConfig1());
    RecordProperty("digest", r.deterministicHash());
    std::printf("G1 digest=0x%016llx\n",
                static_cast<unsigned long long>(r.deterministicHash()));
    EXPECT_EQ(r.deterministicHash(), kGolden1);
}

TEST(Determinism, MatchesGoldenSingleSwitchFifo)
{
    const ExperimentResult r = runExperiment(goldenConfig2());
    std::printf("G2 digest=0x%016llx\n",
                static_cast<unsigned long long>(r.deterministicHash()));
    EXPECT_EQ(r.deterministicHash(), kGolden2);
}

TEST(Determinism, MatchesGoldenFatMesh)
{
    const ExperimentResult r = runExperiment(goldenConfig3());
    std::printf("G3 digest=0x%016llx\n",
                static_cast<unsigned long long>(r.deterministicHash()));
    EXPECT_EQ(r.deterministicHash(), kGolden3);
}

TEST(Determinism, MatchesGoldenMesh)
{
    const ExperimentResult r = runExperiment(goldenConfig4());
    std::printf("G4 digest=0x%016llx\n",
                static_cast<unsigned long long>(r.deterministicHash()));
    EXPECT_EQ(r.deterministicHash(), kGolden4);
    expectIdentical(r, runExperiment(goldenConfig4()));
}

TEST(Determinism, MatchesGoldenTorus)
{
    const ExperimentResult r = runExperiment(goldenConfig5());
    std::printf("G5 digest=0x%016llx\n",
                static_cast<unsigned long long>(r.deterministicHash()));
    EXPECT_EQ(r.deterministicHash(), kGolden5);
    expectIdentical(r, runExperiment(goldenConfig5()));
}

TEST(Determinism, MatchesGoldenClos)
{
    const ExperimentResult r = runExperiment(goldenConfig6());
    std::printf("G6 digest=0x%016llx\n",
                static_cast<unsigned long long>(r.deterministicHash()));
    EXPECT_EQ(r.deterministicHash(), kGolden6);
    expectIdentical(r, runExperiment(goldenConfig6()));
}

/**
 * Batched dispatch and lazy-tick elision are pure mechanics: turning
 * them off (the exact legacy per-event loop) must reproduce the same
 * results field for field - including eventsFired, where every elided
 * wakeup is credited at the time the legacy path would have fired it
 * as a no-op. Checked on the Fig-3-shaped single switch and the
 * Fig-9-shaped fat mesh, against each other and the goldens.
 */
TEST(Determinism, BatchedDispatchMatchesPerEventSingleSwitch)
{
    ExperimentConfig legacy_cfg = goldenConfig1();
    legacy_cfg.batchedDispatch = false;
    const ExperimentResult legacy = runExperiment(legacy_cfg);
    const ExperimentResult batched = runExperiment(goldenConfig1());
    expectIdentical(legacy, batched);
    EXPECT_EQ(legacy.deterministicHash(), kGolden1);
}

TEST(Determinism, BatchedDispatchMatchesPerEventFatMesh)
{
    ExperimentConfig legacy_cfg = goldenConfig3();
    legacy_cfg.batchedDispatch = false;
    const ExperimentResult legacy = runExperiment(legacy_cfg);
    const ExperimentResult batched = runExperiment(goldenConfig3());
    expectIdentical(legacy, batched);
    EXPECT_EQ(legacy.deterministicHash(), kGolden3);
}

/**
 * Idle-epoch fast-forward and the vectorized arbitration kernels are
 * pure mechanics too (DESIGN.md section 14): every combination of
 * {fastForward on/off} x {simdArbiter on/off} must reproduce the
 * goldens field for field. On a scalar-fallback build
 * (-DMEDIAWORM_SIMD=OFF) the simdArbiter=true rows silently run the
 * scalar kernels - the digests must still match, which is exactly
 * what the CI scalar job checks.
 */
TEST(Determinism, FastForwardAndSimdMatchGoldenSingleSwitch)
{
    for (const bool ff : {true, false}) {
        for (const bool simd : {true, false}) {
            ExperimentConfig cfg = goldenConfig1();
            cfg.fastForward = ff;
            cfg.router.simdArbiter = simd;
            const ExperimentResult r = runExperiment(cfg);
            EXPECT_EQ(r.deterministicHash(), kGolden1)
                << "fastForward=" << ff << " simdArbiter=" << simd;
        }
    }
}

TEST(Determinism, FastForwardAndSimdMatchGoldenFatMesh)
{
    for (const bool ff : {true, false}) {
        for (const bool simd : {true, false}) {
            ExperimentConfig cfg = goldenConfig3();
            cfg.fastForward = ff;
            cfg.router.simdArbiter = simd;
            const ExperimentResult r = runExperiment(cfg);
            EXPECT_EQ(r.deterministicHash(), kGolden3)
                << "fastForward=" << ff << " simdArbiter=" << simd;
        }
    }
}

/** The toggles must also commute with sharding: the PDES epoch loop
 *  calls the same settle/arbitration paths per shard, so every
 *  {fastForward, simdArbiter} x shards combination lands on the same
 *  golden (shards alone are covered exhaustively in test_pdes.cc). */
TEST(Determinism, FastForwardAndSimdMatchGoldenAcrossShards)
{
    for (const int shards : {2, 4}) {
        for (const bool ff : {true, false}) {
            ExperimentConfig cfg = goldenConfig3();
            cfg.shards = shards;
            cfg.fastForward = ff;
            cfg.router.simdArbiter = ff; // off together with ff once
            const ExperimentResult r = runExperiment(cfg);
            EXPECT_EQ(r.deterministicHash(), kGolden3)
                << "shards=" << shards << " fastForward=" << ff;
        }
    }
}

/**
 * The fast-forward differential must also hold with the legacy
 * per-event loop (fastForward interacts with the lazy-elision drain
 * scan only when batching is on, but the flag must be harmless in
 * every mode) and at saturation, where elided wakeups are rare and
 * the fast path's lazyMin_ bound is exercised hardest.
 */
TEST(Determinism, FastForwardMatchesGoldenAtSaturation)
{
    for (const bool ff : {true, false}) {
        ExperimentConfig cfg = goldenConfig2();
        cfg.fastForward = ff;
        const ExperimentResult r = runExperiment(cfg);
        EXPECT_EQ(r.deterministicHash(), kGolden2)
            << "fastForward=" << ff;
    }
    ExperimentConfig cfg = goldenConfig1();
    cfg.batchedDispatch = false;
    cfg.fastForward = false;
    const ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.deterministicHash(), kGolden1);
}

/** idleTicksSkipped reports, never perturbs: it is excluded from the
 *  hash but must be nonzero whenever the run has idle stretches. */
TEST(Determinism, IdleTicksSkippedIsReportingOnly)
{
    const ExperimentResult on = runExperiment(goldenConfig1());
    ExperimentConfig off_cfg = goldenConfig1();
    off_cfg.fastForward = false;
    const ExperimentResult off = runExperiment(off_cfg);
    expectIdentical(on, off);
    // The clock-jump accounting itself is mode-independent (both
    // paths jump between events; only the drain-scan cost differs).
    EXPECT_EQ(on.idleTicksSkipped, off.idleTicksSkipped);
    EXPECT_GT(on.idleTicksSkipped, 0u);
}

} // namespace
