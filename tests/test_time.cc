/**
 * @file
 * Unit tests for the simulated time base.
 */

#include <gtest/gtest.h>

#include "sim/time.hh"

namespace {

using namespace mediaworm::sim;

TEST(Time, UnitConstantsCompose)
{
    EXPECT_EQ(kNanosecond, 1000 * kPicosecond);
    EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
    EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
    EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(Time, BuildersScale)
{
    EXPECT_EQ(picoseconds(7), 7);
    EXPECT_EQ(nanoseconds(3), 3000);
    EXPECT_EQ(microseconds(2), 2000000);
    EXPECT_EQ(milliseconds(33), 33 * kMillisecond);
    EXPECT_EQ(seconds(1), kSecond);
}

TEST(Time, ConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(toNanoseconds(nanoseconds(80)), 80.0);
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(165)), 165.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(33)), 33.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2)), 2.0);
}

TEST(Time, ConversionsHandleFractions)
{
    EXPECT_DOUBLE_EQ(toMilliseconds(kMillisecond / 2), 0.5);
    EXPECT_DOUBLE_EQ(toMicroseconds(kMicrosecond / 4), 0.25);
}

TEST(Time, SerializationTimeMatchesPaperNumbers)
{
    // A 32-bit flit on a 400 Mbps link takes 80 ns.
    EXPECT_EQ(serializationTime(32, 400), nanoseconds(80));
    // On a 100 Mbps link it takes 320 ns.
    EXPECT_EQ(serializationTime(32, 100), nanoseconds(320));
    // A 16,666-byte MPEG-2 frame at 400 Mbps takes ~333 us.
    const Tick frame = serializationTime(16666 * 8, 400);
    EXPECT_NEAR(toMicroseconds(frame), 333.3, 0.2);
}

TEST(Time, SerializationTimeIsLinearInBits)
{
    EXPECT_EQ(serializationTime(64, 400), 2 * serializationTime(32, 400));
    EXPECT_EQ(serializationTime(32, 200), 2 * serializationTime(32, 400));
}

TEST(Time, FormatPicksAdaptiveUnit)
{
    EXPECT_EQ(formatTime(kTickNever), "never");
    EXPECT_EQ(formatTime(500), "500ps");
    EXPECT_EQ(formatTime(nanoseconds(80)), "80.000ns");
    EXPECT_EQ(formatTime(microseconds(165)), "165.000us");
    EXPECT_EQ(formatTime(milliseconds(33)), "33.000ms");
    EXPECT_EQ(formatTime(seconds(2)), "2.000s");
}

TEST(Time, FormatHandlesNegative)
{
    EXPECT_EQ(formatTime(-nanoseconds(80) * 1000), "-80.000us");
}

} // namespace
