/**
 * @file
 * End-to-end smoke tests: a small single-switch experiment runs to
 * completion and delivers jitter-free traffic at low load.
 */

#include <gtest/gtest.h>

#include "core/mediaworm.hh"

namespace {

using namespace mediaworm;

TEST(Smoke, LowLoadSingleSwitchIsJitterFree)
{
    core::ExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.4;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 4;
    cfg.timeScale = 0.05;

    const core::ExperimentResult result = core::runExperiment(cfg);

    EXPECT_FALSE(result.truncated);
    EXPECT_GT(result.intervalSamples, 100u);
    // Jitter-free: d equals the (normalised) 33 ms frame interval.
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 1.0);
    EXPECT_LT(result.stddevIntervalNormMs, 2.0);
    EXPECT_GT(result.beMessages, 0u);
}

TEST(Smoke, DeterministicAcrossRuns)
{
    core::ExperimentConfig cfg;
    cfg.traffic.inputLoad = 0.5;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.05;
    cfg.seed = 42;

    const auto a = core::runExperiment(cfg);
    const auto b = core::runExperiment(cfg);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_DOUBLE_EQ(a.meanIntervalMs, b.meanIntervalMs);
    EXPECT_DOUBLE_EQ(a.stddevIntervalMs, b.stddevIntervalMs);
    EXPECT_DOUBLE_EQ(a.beLatencyUs, b.beLatencyUs);
}

} // namespace
