/**
 * @file
 * Soundness suite for the delay-bound oracle (ctest label
 * "calculus"): across miniature versions of the paper's Figure 3
 * operating points, every admitted stream's simulated worst-case
 * message delay must respect its analytic bound, and the --provision
 * search must return allocations whose SLA the subsequent simulation
 * meets with zero violations.
 *
 * Separate executable (like the fidelity suite) because each case
 * runs a full simulation; the fast structural tests live in
 * test_calculus.cc inside mediaworm_tests.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "calculus/oracle.hh"
#include "calculus/provision.hh"
#include "core/experiment.hh"
#include "obs/telemetry.hh"

namespace {

using namespace mediaworm;

/** A miniature Figure-3 point: full stream mix, compressed frames. */
core::ExperimentConfig
miniature(config::SchedulerKind scheduler, double load)
{
    core::ExperimentConfig cfg;
    cfg.router.scheduler = scheduler;
    cfg.traffic.inputLoad = load;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 2;
    cfg.traffic.measuredFrames = 6;
    cfg.timeScale = 0.1;
    cfg.seed = 1;
    cfg.obs.telemetry.enabled = true;
    cfg.calculus.enabled = true;
    return cfg;
}

/**
 * The suite's core invariant: for every stream with a finite
 * analytic bound, the whole-run observed worst message delay stays
 * at or under it. Returns the number of streams actually checked.
 */
int
expectSimulationWithinBounds(const core::ExperimentResult& r)
{
    EXPECT_NE(r.bounds, nullptr);
    EXPECT_NE(r.observations, nullptr);
    if (r.bounds == nullptr || r.observations == nullptr
        || !r.observations->hasTelemetry)
        return 0;

    int checked = 0;
    for (const calculus::StreamBound& b : r.bounds->streams) {
        const obs::StreamSeries* series =
            r.observations->telemetry.find(b.stream);
        if (series == nullptr || series->messages == 0)
            continue;
        if (!b.bounded)
            continue; // "no guarantee" is trivially respected
        EXPECT_LE(series->worstMessageDelayUs, b.boundUs)
            << "stream " << b.stream.value() << " ("
            << b.src.value() << "->" << b.dst.value()
            << ") observed worst " << series->worstMessageDelayUs
            << " us above its analytic bound " << b.boundUs
            << " us";
        ++checked;
    }
    return checked;
}

TEST(CalculusBounds, VirtualClockAdmissibleLoad)
{
    const core::ExperimentResult r =
        core::runExperiment(miniature(
            config::SchedulerKind::VirtualClock, 0.8));
    ASSERT_NE(r.bounds, nullptr);
    // Inside the paper's guarantee region every stream has a finite
    // bound, and the simulation respects each one.
    EXPECT_TRUE(r.bounds->allBounded());
    EXPECT_GT(expectSimulationWithinBounds(r), 0);
}

TEST(CalculusBounds, FifoModerateLoad)
{
    const core::ExperimentResult r = core::runExperiment(
        miniature(config::SchedulerKind::Fifo, 0.8));
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_GT(expectSimulationWithinBounds(r), 0);
}

TEST(CalculusBounds, WeightedRoundRobinModerateLoad)
{
    const core::ExperimentResult r = core::runExperiment(
        miniature(config::SchedulerKind::WeightedRoundRobin, 0.8));
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_GT(expectSimulationWithinBounds(r), 0);
}

TEST(CalculusBounds, FatMeshVirtualClock)
{
    core::ExperimentConfig cfg =
        miniature(config::SchedulerKind::VirtualClock, 0.6);
    cfg.network.topology = config::TopologyKind::FatMesh;
    const core::ExperimentResult r = core::runExperiment(cfg);
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_GT(expectSimulationWithinBounds(r), 0);
}

/**
 * Multi-hop soundness on the topology-graph shapes: the per-hop
 * TFA/SFA walk over table-built routes must still dominate every
 * observed delay. Loads sit inside the guarantee region so the
 * check is non-vacuous (finite bounds exist to violate).
 */
TEST(CalculusBounds, MeshMultiHopBoundsHold)
{
    core::ExperimentConfig cfg =
        miniature(config::SchedulerKind::VirtualClock, 0.4);
    cfg.network.topology = config::TopologyKind::Mesh;
    cfg.network.meshWidth = 4;
    cfg.network.meshHeight = 4;
    cfg.network.endpointsPerSwitch = 1;
    const core::ExperimentResult r = core::runExperiment(cfg);
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_GT(expectSimulationWithinBounds(r), 0);
    // Multi-hop routes really appear: some stream crosses several
    // routers.
    int max_hops = 0;
    for (const calculus::StreamBound& b : r.bounds->streams)
        max_hops = std::max(max_hops, b.hops);
    EXPECT_GE(max_hops, 3);
}

TEST(CalculusBounds, TorusMultiHopBoundsHold)
{
    // Two dateline VC classes: the oracle must fall back to the
    // blind-multiplexing residual (the stamp-rate branch assumes
    // lane-exact FIFO sharing) and still dominate the simulation.
    core::ExperimentConfig cfg =
        miniature(config::SchedulerKind::VirtualClock, 0.4);
    cfg.network.topology = config::TopologyKind::Torus;
    cfg.network.meshWidth = 4;
    cfg.network.meshHeight = 4;
    cfg.network.endpointsPerSwitch = 1;
    const core::ExperimentResult r = core::runExperiment(cfg);
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_GT(expectSimulationWithinBounds(r), 0);
}

TEST(CalculusBounds, ClosMultiHopBoundsHold)
{
    core::ExperimentConfig cfg =
        miniature(config::SchedulerKind::VirtualClock, 0.4);
    cfg.network.topology = config::TopologyKind::Clos;
    cfg.network.closM = 2;
    cfg.network.closN = 2;
    cfg.network.closR = 4;
    const core::ExperimentResult r = core::runExperiment(cfg);
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_GT(expectSimulationWithinBounds(r), 0);
}

TEST(CalculusBounds, AdaptiveRoutingRefusesToCertify)
{
    // Adaptive paths depend on run-time load; the oracle must report
    // every stream unbounded rather than guess a path.
    core::ExperimentConfig cfg =
        miniature(config::SchedulerKind::VirtualClock, 0.4);
    cfg.network.topology = config::TopologyKind::Torus;
    cfg.network.routing = config::RoutingKind::Adaptive;
    cfg.network.meshWidth = 4;
    cfg.network.meshHeight = 4;
    cfg.network.endpointsPerSwitch = 1;
    const core::ExperimentResult r = core::runExperiment(cfg);
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_FALSE(r.bounds->streams.empty());
    EXPECT_EQ(r.bounds->unboundedStreams,
              static_cast<int>(r.bounds->streams.size()));
}

TEST(CalculusBounds, SaturatedFifoReportsNoGuarantee)
{
    // Full-load FIFO is the paper's missed-deadline region: the
    // oracle must refuse to certify it rather than emit a number the
    // run could exceed.
    const core::ExperimentResult r = core::runExperiment(
        miniature(config::SchedulerKind::Fifo, 1.0));
    ASSERT_NE(r.bounds, nullptr);
    EXPECT_GT(r.bounds->unboundedStreams, 0);
    expectSimulationWithinBounds(r); // finite ones still hold
}

TEST(CalculusBounds, ProvisionedAllocationMeetsTheSla)
{
    // Inverse mode: ask for an allocation meeting a 100 ms unscaled
    // SLA at a moderate load, then run the simulation under the
    // returned allocation and demand zero violations.
    core::ExperimentConfig cfg =
        miniature(config::SchedulerKind::VirtualClock, 0.3);

    calculus::ProvisionRequest request;
    const double sla_unscaled_ms = 100.0;
    request.slaUs = sla_unscaled_ms * 1000.0 * cfg.timeScale;
    request.oracle = cfg.calculus;

    const calculus::ProvisionResult alloc = calculus::provision(
        cfg.router, cfg.traffic, cfg.network, cfg.seed,
        cfg.timeScale, request);
    ASSERT_TRUE(alloc.feasible) << alloc.describe();
    EXPECT_LE(alloc.worstBoundUs, request.slaUs);
    EXPECT_GT(alloc.rtStreams, 0);

    cfg.router.numVcs = alloc.numVcs;
    cfg.traffic.reservedRateFactor = alloc.reservedRateFactor;
    const core::ExperimentResult r = core::runExperiment(cfg);

    ASSERT_NE(r.bounds, nullptr);
    ASSERT_TRUE(r.bounds->allBounded());
    EXPECT_LE(r.bounds->maxBoundUs, request.slaUs);
    EXPECT_GT(expectSimulationWithinBounds(r), 0);

    // Zero violations: every observed worst delay is inside the SLA.
    ASSERT_TRUE(r.observations != nullptr
                && r.observations->hasTelemetry);
    for (const obs::StreamSeries& series :
         r.observations->telemetry.streams) {
        if (series.messages == 0)
            continue;
        EXPECT_LE(series.worstMessageDelayUs, request.slaUs)
            << "stream " << series.stream.value();
    }
}

TEST(CalculusBounds, ReservedRateTightensTheBound)
{
    // The provisioning lever must actually move the analytics. The
    // stamp-rate branch wins only when every scheduling point on the
    // route is strict-priority (so injection must run Virtual Clock
    // too), lanes are thinly shared (32 VCs at load 0.3), and the
    // reservation lifts the lane rate above its members' aggregate
    // rate while the summed lane rates still fit the link - factor 4
    // sits inside that window (6 is already past the feasibility
    // cliff and falls back to the blind residual).
    core::ExperimentConfig base =
        miniature(config::SchedulerKind::VirtualClock, 0.3);
    base.router.numVcs = 32;
    base.router.injectionScheduler =
        config::SchedulerKind::VirtualClock;
    core::ExperimentConfig reserved = base;
    reserved.traffic.reservedRateFactor = 4.0;

    const core::ExperimentResult r0 = core::runExperiment(base);
    const core::ExperimentResult r4 = core::runExperiment(reserved);
    ASSERT_NE(r0.bounds, nullptr);
    ASSERT_NE(r4.bounds, nullptr);
    ASSERT_TRUE(r0.bounds->allBounded());
    ASSERT_TRUE(r4.bounds->allBounded());
    EXPECT_LT(r4.bounds->maxBoundUs, r0.bounds->maxBoundUs);
    EXPECT_GT(expectSimulationWithinBounds(r4), 0);
}

} // namespace
