/**
 * @file
 * Unit tests for the command-line option parser.
 */

#include <gtest/gtest.h>

#include "config/options.hh"

namespace {

using mediaworm::config::OptionParser;

struct Parsed
{
    bool ok;
    std::string error;
};

Parsed
parse(OptionParser& parser, std::initializer_list<const char*> args)
{
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    std::string error;
    const bool ok = parser.parse(static_cast<int>(argv.size()),
                                 argv.data(), &error);
    return {ok, error};
}

TEST(Options, ParsesEqualsAndSpaceForms)
{
    double load = 0.0;
    int vcs = 0;
    OptionParser parser("test");
    parser.addDouble("load", "", &load, 0.0, 1.5);
    parser.addInt("vcs", "", &vcs, 1, 256);

    const Parsed result =
        parse(parser, {"--load=0.9", "--vcs", "16"});
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_DOUBLE_EQ(load, 0.9);
    EXPECT_EQ(vcs, 16);
}

TEST(Options, FlagsDefaultFalseSetTrue)
{
    bool csv = false;
    OptionParser parser("test");
    parser.addFlag("csv", "", &csv);
    ASSERT_TRUE(parse(parser, {"--csv"}).ok);
    EXPECT_TRUE(csv);

    csv = true;
    ASSERT_TRUE(parse(parser, {"--csv=false"}).ok);
    EXPECT_FALSE(csv);
}

TEST(Options, RejectsUnknownOption)
{
    OptionParser parser("test");
    const Parsed result = parse(parser, {"--bogus=1"});
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("unknown option --bogus"),
              std::string::npos);
}

TEST(Options, RejectsMissingValue)
{
    int vcs = 0;
    OptionParser parser("test");
    parser.addInt("vcs", "", &vcs, 1, 256);
    const Parsed result = parse(parser, {"--vcs"});
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("needs a value"), std::string::npos);
}

TEST(Options, RejectsOutOfRangeInt)
{
    int vcs = 0;
    OptionParser parser("test");
    parser.addInt("vcs", "", &vcs, 1, 256);
    const Parsed result = parse(parser, {"--vcs=999"});
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("outside"), std::string::npos);
}

TEST(Options, RejectsOutOfRangeDouble)
{
    double load = 0.0;
    OptionParser parser("test");
    parser.addDouble("load", "", &load, 0.0, 1.5);
    EXPECT_FALSE(parse(parser, {"--load=2.0"}).ok);
}

TEST(Options, RejectsMalformedNumbers)
{
    int vcs = 0;
    double load = 0.0;
    OptionParser parser("test");
    parser.addInt("vcs", "", &vcs, 1, 256);
    parser.addDouble("load", "", &load, 0.0, 1.5);
    EXPECT_FALSE(parse(parser, {"--vcs=ten"}).ok);
    EXPECT_FALSE(parse(parser, {"--vcs=16x"}).ok);
    EXPECT_FALSE(parse(parser, {"--load=0.8f"}).ok);
}

TEST(Options, ChoiceStoresIndex)
{
    int scheduler = -1;
    OptionParser parser("test");
    parser.addChoice("scheduler", "", {"fifo", "virtual-clock"},
                     &scheduler);
    ASSERT_TRUE(parse(parser, {"--scheduler=virtual-clock"}).ok);
    EXPECT_EQ(scheduler, 1);

    const Parsed bad = parse(parser, {"--scheduler=lifo"});
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("unknown choice"), std::string::npos);
}

TEST(Options, StringOptionTakesAnything)
{
    std::string out;
    OptionParser parser("test");
    parser.addString("output", "", &out);
    ASSERT_TRUE(parse(parser, {"--output", "results.csv"}).ok);
    EXPECT_EQ(out, "results.csv");
}

TEST(Options, CollectsPositionalArguments)
{
    OptionParser parser("test");
    bool flag = false;
    parser.addFlag("x", "", &flag);
    ASSERT_TRUE(parse(parser, {"alpha", "--x", "beta"}).ok);
    EXPECT_EQ(parser.positional(),
              (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Options, HelpShortCircuits)
{
    int vcs = 7;
    OptionParser parser("test");
    parser.addInt("vcs", "", &vcs, 1, 256);
    const Parsed result = parse(parser, {"--help", "--vcs=999"});
    EXPECT_TRUE(result.ok);
    EXPECT_TRUE(parser.helpRequested());
    EXPECT_EQ(vcs, 7) << "parsing continued past --help";
}

TEST(Options, HelpTextListsOptions)
{
    int vcs = 0;
    OptionParser parser("mediaworm_sim", "a simulator");
    parser.addInt("vcs", "virtual channels", &vcs, 1, 256);
    const std::string text = parser.help();
    EXPECT_NE(text.find("usage: mediaworm_sim"), std::string::npos);
    EXPECT_NE(text.find("--vcs <int 1..256>"), std::string::npos);
    EXPECT_NE(text.find("virtual channels"), std::string::npos);
    EXPECT_NE(text.find("--help"), std::string::npos);
}

TEST(Options, LastValueWins)
{
    double load = 0.0;
    OptionParser parser("test");
    parser.addDouble("load", "", &load, 0.0, 1.5);
    ASSERT_TRUE(parse(parser, {"--load=0.3", "--load=0.7"}).ok);
    EXPECT_DOUBLE_EQ(load, 0.7);
}

} // namespace
