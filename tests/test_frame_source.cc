/**
 * @file
 * Unit tests for the CBR/VBR/GoP frame stream source, using a
 * capturing injector instead of a network.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "traffic/frame_source.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::traffic;

class CapturingInjector final : public Injector
{
  public:
    explicit CapturingInjector(Simulator& simulator)
        : simulator_(simulator)
    {
    }

    void
    injectMessage(const MessageDesc& message) override
    {
        times.push_back(simulator_.now());
        messages.push_back(message);
    }

    std::vector<Tick> times;
    std::vector<MessageDesc> messages;

  private:
    Simulator& simulator_;
};

Stream
testStream(config::TrafficConfig& cfg)
{
    Stream stream;
    stream.id = StreamId(5);
    stream.src = NodeId(0);
    stream.dst = NodeId(3);
    stream.cls = router::TrafficClass::Vbr;
    stream.vcLane = 2;
    stream.vtick = cfg.streamVtick(32);
    stream.frameInterval = cfg.frameInterval;
    stream.startOffset = milliseconds(1);
    return stream;
}

class FrameSourceTest : public testing::Test
{
  protected:
    FrameSourceTest() : injector(simulator) {}

    void
    run(config::TrafficConfig cfg)
    {
        cfg.validate();
        const Stream stream = testStream(cfg);
        source = std::make_unique<FrameSource>(
            simulator, stream, cfg, 32, injector, Rng(42));
        source->start();
        simulator.runToCompletion();
    }

    Simulator simulator;
    CapturingInjector injector;
    std::unique_ptr<FrameSource> source;
};

TEST_F(FrameSourceTest, GeneratesExactFrameCount)
{
    config::TrafficConfig cfg;
    cfg.warmupFrames = 2;
    cfg.measuredFrames = 3;
    run(cfg);

    EXPECT_EQ(source->framesGenerated(), 5);
    int end_of_frame = 0;
    for (const auto& message : injector.messages)
        end_of_frame += message.endOfFrame;
    EXPECT_EQ(end_of_frame, 5);
}

TEST_F(FrameSourceTest, CbrFramesHaveIdenticalMessageCounts)
{
    config::TrafficConfig cfg;
    cfg.realTimeKind = config::RealTimeKind::Cbr;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 4;
    run(cfg);

    // 16666 bytes / (19 payload flits * 4 B) = 220 messages per frame.
    const int expected_messages = static_cast<int>(
        std::ceil(16666.0 / (19 * 4)));
    std::vector<int> per_frame(4, 0);
    for (const auto& message : injector.messages)
        ++per_frame[static_cast<std::size_t>(message.frame)];
    for (int frame = 0; frame < 4; ++frame)
        EXPECT_EQ(per_frame[static_cast<std::size_t>(frame)],
                  expected_messages);
}

TEST_F(FrameSourceTest, VbrFrameSizesVary)
{
    config::TrafficConfig cfg;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 8;
    run(cfg);

    std::vector<int> per_frame(8, 0);
    for (const auto& message : injector.messages)
        ++per_frame[static_cast<std::size_t>(message.frame)];
    int distinct = 0;
    for (int frame = 1; frame < 8; ++frame)
        distinct += per_frame[static_cast<std::size_t>(frame)]
            != per_frame[0];
    EXPECT_GT(distinct, 0) << "VBR frames all had the same size";
}

TEST_F(FrameSourceTest, MessagesCarryStreamDescriptor)
{
    config::TrafficConfig cfg;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 1;
    run(cfg);

    ASSERT_FALSE(injector.messages.empty());
    MessageSeq expected_seq = 0;
    for (const auto& message : injector.messages) {
        EXPECT_EQ(message.stream, StreamId(5));
        EXPECT_EQ(message.dest, NodeId(3));
        EXPECT_EQ(message.vcLane, 2);
        EXPECT_EQ(message.cls, router::TrafficClass::Vbr);
        EXPECT_EQ(message.seq, expected_seq++);
        EXPECT_GE(message.numFlits, 2);
    }
}

TEST_F(FrameSourceTest, InjectionTimesAreMonotoneAndWithinFrames)
{
    config::TrafficConfig cfg;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 3;
    run(cfg);

    for (std::size_t i = 1; i < injector.times.size(); ++i)
        EXPECT_GE(injector.times[i], injector.times[i - 1]);

    // First message of each frame lands on the frame boundary
    // (offset by the stream's start offset).
    std::vector<Tick> frame_starts;
    for (std::size_t i = 0; i < injector.messages.size(); ++i) {
        if (injector.messages[i].seq == 0
            || injector.messages[i - 1].frame
                != injector.messages[i].frame) {
            frame_starts.push_back(injector.times[i]);
        }
    }
    ASSERT_EQ(frame_starts.size(), 3u);
    EXPECT_EQ(frame_starts[0], milliseconds(1));
    EXPECT_EQ(frame_starts[1], milliseconds(1) + cfg.frameInterval);
}

TEST_F(FrameSourceTest, AnchoredTailLandsOneNominalGapBeforeNextFrame)
{
    config::TrafficConfig cfg;
    cfg.realTimeKind = config::RealTimeKind::Vbr;
    cfg.anchorFrameTail = true;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 6;
    run(cfg);

    const int nominal_messages =
        static_cast<int>(std::ceil(16666.0 / (19 * 4)));
    const Tick nominal_gap =
        cfg.frameInterval / nominal_messages;

    std::vector<Tick> tails;
    for (std::size_t i = 0; i < injector.messages.size(); ++i) {
        if (injector.messages[i].endOfFrame)
            tails.push_back(injector.times[i]);
    }
    ASSERT_EQ(tails.size(), 6u);
    for (std::size_t i = 0; i < tails.size(); ++i) {
        const Tick frame_start = milliseconds(1)
            + static_cast<Tick>(i) * cfg.frameInterval;
        const Tick expected =
            frame_start + cfg.frameInterval - nominal_gap;
        EXPECT_NEAR(static_cast<double>(tails[i]),
                    static_cast<double>(expected),
                    static_cast<double>(nominal_gap) / 2.0)
            << "frame " << i;
    }
}

TEST_F(FrameSourceTest, LastMessageOfFrameMayBeShort)
{
    config::TrafficConfig cfg;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 4;
    run(cfg);

    for (std::size_t i = 0; i < injector.messages.size(); ++i) {
        const auto& message = injector.messages[i];
        if (!message.endOfFrame) {
            EXPECT_EQ(message.numFlits, cfg.messageFlits);
        } else {
            EXPECT_LE(message.numFlits, cfg.messageFlits);
            EXPECT_GE(message.numFlits, 2);
        }
    }
}

TEST_F(FrameSourceTest, GopPatternProducesLargeIFrames)
{
    config::TrafficConfig cfg;
    cfg.realTimeKind = config::RealTimeKind::MpegGop;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 24; // two full GoPs
    run(cfg);

    std::vector<int> per_frame(24, 0);
    for (const auto& message : injector.messages)
        ++per_frame[static_cast<std::size_t>(message.frame)];
    // I frames (positions 0, 12) dominate their neighbours (B).
    EXPECT_GT(per_frame[0], 2 * per_frame[1]);
    EXPECT_GT(per_frame[12], 2 * per_frame[13]);
    // P frames (position 3) sit between.
    EXPECT_GT(per_frame[3], per_frame[1]);
    EXPECT_LT(per_frame[3], per_frame[0]);
}

TEST_F(FrameSourceTest, DeterministicForSameRngSeed)
{
    config::TrafficConfig cfg;
    cfg.warmupFrames = 0;
    cfg.measuredFrames = 3;

    run(cfg);
    const auto first = injector.messages;
    injector.messages.clear();
    injector.times.clear();

    // Fresh simulator/state, same seed: identical message stream.
    Simulator simulator2;
    CapturingInjector injector2(simulator2);
    cfg.validate();
    const Stream stream = testStream(cfg);
    FrameSource source2(simulator2, stream, cfg, 32, injector2,
                        Rng(42));
    source2.start();
    simulator2.runToCompletion();

    ASSERT_EQ(first.size(), injector2.messages.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].numFlits, injector2.messages[i].numFlits);
}

} // namespace
