/**
 * @file
 * Deadlock saturation soak (ctest label "deadlock").
 *
 * The CDG acyclicity proofs in test_topology.cc are static; this
 * suite drives the real simulator into the regimes where a wormhole
 * deadlock would actually bite - saturation load, minimal VC counts
 * (one lane per VC class), shallow buffers - and demands that every
 * run drains: `truncated` means the experiment hit its time cap with
 * flits still stuck in the network, which is precisely the deadlock
 * signature (a cycle of flits holding VCs and waiting on each other
 * never drains, no matter how long the cap).
 *
 * Separate executable so the fast CI jobs can exclude the label; the
 * Release job runs it with -L deadlock.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::core;

/** Saturation miniature on a multi-hop topology. */
ExperimentConfig
soak(config::TopologyKind topology, config::RoutingKind routing,
     int vcs)
{
    ExperimentConfig cfg;
    cfg.router.numVcs = vcs;
    cfg.router.flitBufferDepth = 4; // shallow: maximal credit waits
    cfg.network.topology = topology;
    cfg.network.routing = routing;
    cfg.network.meshWidth = 4;
    cfg.network.meshHeight = 4;
    cfg.network.endpointsPerSwitch = 1;
    cfg.network.closM = 4;
    cfg.network.closN = 4;
    cfg.network.closR = 8;
    cfg.traffic.inputLoad = 0.96;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.05;
    cfg.seed = 42;
    return cfg;
}

void
expectDrains(const ExperimentConfig& cfg)
{
    const ExperimentResult r = runExperiment(cfg);
    EXPECT_FALSE(r.truncated)
        << "flits stuck at the time cap - deadlock signature";
    EXPECT_GT(r.flitsDelivered, 0u);
    EXPECT_GT(r.framesDelivered, 0u);
}

TEST(DeadlockSoak, TorusDimensionOrderAtSaturation)
{
    // Two dateline classes, one lane each: the tightest legal VC
    // budget for torus dimension-order routing.
    expectDrains(soak(config::TopologyKind::Torus,
                      config::RoutingKind::DimensionOrder, 2));
}

TEST(DeadlockSoak, TorusAdaptiveAtSaturation)
{
    // Three classes (two datelines + adaptive), one lane each.
    expectDrains(soak(config::TopologyKind::Torus,
                      config::RoutingKind::Adaptive, 3));
}

TEST(DeadlockSoak, TorusAdaptiveWideAtSaturation)
{
    // The acceptance shape: 8-ary 2-torus at saturation with the
    // usual VC budget.
    ExperimentConfig cfg = soak(config::TopologyKind::Torus,
                                config::RoutingKind::Adaptive, 16);
    cfg.network.meshWidth = 8;
    cfg.network.meshHeight = 8;
    expectDrains(cfg);
}

TEST(DeadlockSoak, MeshAdaptiveAtSaturation)
{
    expectDrains(soak(config::TopologyKind::Mesh,
                      config::RoutingKind::Adaptive, 2));
}

TEST(DeadlockSoak, MeshUpDownTreeRootOverload)
{
    // Tree routing concentrates the whole grid's traffic at the
    // root - the hardest single-class stress. The offered load is
    // moderate so the post-injection backlog still drains inside
    // the experiment's safety cap (the root link is saturated far
    // below this offered load anyway).
    // 2 VCs: one real-time + one best-effort lane, the smallest
    // budget the mixed workload admits.
    ExperimentConfig cfg = soak(config::TopologyKind::Mesh,
                                config::RoutingKind::UpDown, 2);
    cfg.traffic.inputLoad = 0.6;
    expectDrains(cfg);
}

TEST(DeadlockSoak, ClosUpDownAtSaturation)
{
    expectDrains(soak(config::TopologyKind::Clos,
                      config::RoutingKind::UpDown, 2));
}

TEST(DeadlockSoak, ClosAdaptiveAtSaturation)
{
    expectDrains(soak(config::TopologyKind::Clos,
                      config::RoutingKind::Adaptive, 2));
}

} // namespace
