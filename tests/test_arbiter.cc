/**
 * @file
 * Differential fuzz of the MuxArbiter kernels against the legacy
 * Scheduler classes, plus targeted tests of the incremental-state
 * API and the fixed-point WRR deficit accounting.
 *
 * The MuxArbiter (router/arbiter.hh) must select the same winner as
 * the virtual Scheduler it replaced for every discipline and every
 * reachable mux state, including across rounds for the stateful
 * disciplines (round robin's rotation pointer, WRR's deficits). The
 * fuzzer drives both implementations with one randomized stream of
 * arbitration rounds per discipline and requires identical winners
 * on every round.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "config/router_config.hh"
#include "router/arbiter.hh"
#include "router/flit.hh"
#include "router/scheduler.hh"
#include "sim/random.hh"

namespace {

using namespace mediaworm::router;
using mediaworm::config::SchedulerKind;
using mediaworm::sim::Rng;
using mediaworm::sim::Tick;
using mediaworm::sim::microseconds;

// --- incremental-state API ----------------------------------------------------

TEST(MuxArbiter, MaskTracksSetAndClear)
{
    MuxArbiter arb;
    arb.init(SchedulerKind::Fifo, 8);
    EXPECT_FALSE(arb.anyEligible());

    arb.setEligible(3, /*stamp=*/10, /*fifo_seq=*/1, microseconds(8));
    arb.setEligible(5, /*stamp=*/20, /*fifo_seq=*/2, microseconds(8));
    EXPECT_TRUE(arb.anyEligible());
    EXPECT_EQ(arb.mask(), (std::uint64_t{1} << 3) | (std::uint64_t{1} << 5));
    EXPECT_TRUE(arb.eligible(3));
    EXPECT_FALSE(arb.eligible(4));

    arb.clearEligible(3);
    arb.clearEligible(3); // idempotent
    EXPECT_EQ(arb.mask(), std::uint64_t{1} << 5);
}

TEST(MuxArbiter, SetEligibleRefreshesHeadRecord)
{
    MuxArbiter arb;
    arb.init(SchedulerKind::VirtualClock, 4);
    arb.setEligible(2, 100, 7, microseconds(4));
    EXPECT_EQ(arb.head(2).stamp, 100);
    EXPECT_EQ(arb.head(2).fifoSeq, 7u);

    // A pop exposing the next flit re-caches via the same call.
    arb.setEligible(2, 250, 9, microseconds(4));
    EXPECT_EQ(arb.head(2).stamp, 250);
    EXPECT_EQ(arb.head(2).fifoSeq, 9u);
}

TEST(MuxArbiter, PickMaskedRestrictsToSubset)
{
    MuxArbiter arb;
    arb.init(SchedulerKind::VirtualClock, 8);
    arb.setEligible(1, /*stamp=*/10, 1, microseconds(8)); // global best
    arb.setEligible(6, /*stamp=*/99, 2, microseconds(8));
    // Gating away slot 1 (as the input mux's space/crossbar gates do)
    // must hand the round to the best of what remains.
    EXPECT_EQ(arb.pickMasked(std::uint64_t{1} << 6), 6);
    EXPECT_EQ(arb.pick(), 1);
}

// --- differential fuzz vs the legacy schedulers -------------------------------

/**
 * One randomized mux: a fixed slot population whose heads change
 * between rounds, feeding both implementations identically.
 */
class DifferentialFuzz : public ::testing::TestWithParam<SchedulerKind>
{
};

TEST_P(DifferentialFuzz, WinnersMatchLegacySchedulers)
{
    const SchedulerKind kind = GetParam();
    constexpr int kRounds = 120000;
    constexpr int kNumSlots = 16;

    Rng rng(0x715eed5eed5eedULL
            + static_cast<std::uint64_t>(kind) * 0x9e37ULL);

    MuxArbiter arb;
    arb.init(kind, kNumSlots);
    auto legacy = makeScheduler(kind);

    // Persistent per-slot head state, mutated incrementally the way a
    // real mux does: winners pop (new head or empty), idle slots
    // occasionally gain a flit. The legacy candidate vector is
    // rebuilt from the same state by an ascending-slot scan, exactly
    // like the code the arbiter replaced.
    struct SlotState
    {
        bool eligible = false;
        Tick stamp = 0;
        std::uint64_t fifoSeq = 0;
        Tick vtick = kBestEffortVtick;
    };
    std::vector<SlotState> slots(kNumSlots);
    std::uint64_t next_seq = 0;
    Tick now = 0;

    // Vticks drawn from the paper's operating range plus best-effort
    // "infinity", so WRR weights exercise both exact and truncated
    // fixed-point ratios.
    const Tick vticks[] = {microseconds(3), microseconds(4),
                           microseconds(8), microseconds(10),
                           microseconds(33), kBestEffortVtick};

    auto arrive = [&](int s) {
        SlotState& st = slots[static_cast<std::size_t>(s)];
        st.eligible = true;
        st.stamp = now + static_cast<Tick>(rng.uniformInt(2000));
        st.fifoSeq = next_seq++;
        st.vtick = vticks[rng.uniformInt(std::size(vticks))];
        arb.setEligible(s, st.stamp, st.fifoSeq, st.vtick);
    };

    int rounds_run = 0;
    for (int round = 0; round < kRounds; ++round) {
        now += static_cast<Tick>(rng.uniformInt(100));

        // Mutate: each slot may flip eligibility or re-stamp its head
        // (a fresh arrival behind an empty slot, or an upstream
        // re-route changing the head).
        for (int s = 0; s < kNumSlots; ++s) {
            const double roll = rng.uniform01();
            if (roll < 0.25) {
                arrive(s);
            } else if (roll < 0.32) {
                slots[static_cast<std::size_t>(s)].eligible = false;
                arb.clearEligible(s);
            }
        }

        std::vector<Candidate> candidates;
        for (int s = 0; s < kNumSlots; ++s) {
            const SlotState& st = slots[static_cast<std::size_t>(s)];
            if (st.eligible)
                candidates.push_back(
                    {s, st.stamp, st.fifoSeq, st.vtick});
        }
        if (candidates.empty())
            continue;
        ++rounds_run;

        const std::size_t legacy_index = legacy->pick(candidates);
        const int legacy_slot = candidates[legacy_index].slot;
        const int kernel_slot = arb.pick();
        ASSERT_EQ(kernel_slot, legacy_slot)
            << "divergence at round " << round << " for "
            << mediaworm::config::toString(kind);

        // The winner's head flit leaves; usually another queued flit
        // becomes the head with a later stamp/seq.
        SlotState& won = slots[static_cast<std::size_t>(legacy_slot)];
        if (rng.bernoulli(0.7)) {
            won.stamp = now + static_cast<Tick>(rng.uniformInt(2000));
            won.fifoSeq = next_seq++;
            arb.setEligible(legacy_slot, won.stamp, won.fifoSeq,
                            won.vtick);
        } else {
            won.eligible = false;
            arb.clearEligible(legacy_slot);
        }
    }
    // The mutation rates keep the mux busy; make sure the loop
    // actually exercised arbitration and did not vacuously pass.
    EXPECT_GT(rounds_run, kRounds / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DifferentialFuzz,
    ::testing::Values(SchedulerKind::Fifo, SchedulerKind::RoundRobin,
                      SchedulerKind::VirtualClock,
                      SchedulerKind::WeightedRoundRobin),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
        switch (info.param) {
          case SchedulerKind::Fifo:
            return "Fifo";
          case SchedulerKind::RoundRobin:
            return "RoundRobin";
          case SchedulerKind::VirtualClock:
            return "VirtualClock";
          case SchedulerKind::WeightedRoundRobin:
            return "WeightedRoundRobin";
        }
        return "Unknown";
    });

// --- WRR fixed-point fairness -------------------------------------------------

/**
 * Long-run service shares must follow the requested rates (1/Vtick)
 * even when the rate ratio has no finite binary expansion. With the
 * old double-based deficits a 1:3 ratio accumulated rounding error
 * every replenish pass; the Q32.32 integer accounting pins the
 * shares exactly.
 */
TEST(WrrFairness, ServiceSharesTrackRatesWithoutDrift)
{
    MuxArbiter arb;
    arb.init(SchedulerKind::WeightedRoundRobin, 2);

    // Slot 0 requests one flit per 3 us, slot 1 one per 9 us: a 3:1
    // service ratio whose weight (1/3) is inexact in binary.
    arb.setEligible(0, 0, 0, microseconds(3));
    arb.setEligible(1, 0, 1, microseconds(9));

    constexpr int kServes = 400000;
    std::map<int, int> served;
    for (int i = 0; i < kServes; ++i)
        ++served[arb.pick()];

    // Exactly 3:1 up to the +-1 flit granularity of the rotation.
    const double share0 =
        static_cast<double>(served[0]) / static_cast<double>(kServes);
    EXPECT_NEAR(share0, 0.75, 0.001);
    EXPECT_EQ(served[0] + served[1], kServes);
}

/** The legacy scheduler shares the fixed-point accounting. */
TEST(WrrFairness, LegacySchedulerMatchesFixedPointShares)
{
    WeightedRoundRobinScheduler wrr;
    const std::vector<Candidate> candidates = {
        {0, 0, 0, microseconds(3)},
        {1, 0, 1, microseconds(9)},
    };

    constexpr int kServes = 400000;
    int served0 = 0;
    for (int i = 0; i < kServes; ++i) {
        if (candidates[wrr.pick(candidates)].slot == 0)
            ++served0;
    }
    const double share0 =
        static_cast<double>(served0) / static_cast<double>(kServes);
    EXPECT_NEAR(share0, 0.75, 0.001);
}

/**
 * Replenishment is exact: after any number of rounds the deficits of
 * a 1:2 population stay on the lattice {0, quantum/2, quantum, ...}
 * so the faster slot never "saves up" more than one extra serve.
 * Observable consequence: the serve pattern is perfectly periodic.
 */
TEST(WrrFairness, ServePatternIsPeriodic)
{
    MuxArbiter arb;
    arb.init(SchedulerKind::WeightedRoundRobin, 2);
    arb.setEligible(0, 0, 0, microseconds(4));
    arb.setEligible(1, 0, 1, microseconds(8));

    std::vector<int> first(6);
    for (int& winner : first)
        winner = arb.pick();
    // Every later window of 6 serves must repeat the first exactly;
    // drift would eventually insert an extra serve somewhere.
    for (int window = 0; window < 50000; ++window) {
        for (int i = 0; i < 6; ++i)
            ASSERT_EQ(arb.pick(), first[static_cast<std::size_t>(i)])
                << "pattern broke in window " << window;
    }
}

} // namespace
