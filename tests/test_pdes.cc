/**
 * @file
 * Conservative-parallel execution tests.
 *
 * Three layers:
 *
 *  1. Partition planner units: single switch stays on one shard, a
 *     mesh is cut into balanced contiguous strips, requested counts
 *     clamp to the router count, auto mode follows the thread count.
 *
 *  2. PdesExecutor + cross-shard Link mechanics in isolation: a
 *     hand-wired two-shard channel delivers flits and credits at
 *     exactly the ticks the single-kernel link would, in order.
 *
 *  3. The headline determinism contract: for the golden miniature
 *     configurations (the single-switch Fig-3 setup and the 2x2
 *     fat-mesh Fig-9 setup, plus a 4x2 mesh that admits 8 shards),
 *     deterministicHash() is identical across --shards in {1,2,4,8}.
 *     This is what lets sharded runs substitute for the
 *     single-threaded oracle everywhere.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "network/partition.hh"
#include "router/link.hh"
#include "sim/pdes.hh"
#include "sim/simulator.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::core;

// --- Partition planner -----------------------------------------------------

config::NetworkConfig
meshConfig(int width, int height)
{
    config::NetworkConfig net;
    net.topology = config::TopologyKind::FatMesh;
    net.meshWidth = width;
    net.meshHeight = height;
    net.fatFactor = 2;
    net.endpointsPerSwitch = 4;
    return net;
}

TEST(Partition, SingleSwitchIsAlwaysTrivial)
{
    config::NetworkConfig net;
    net.topology = config::TopologyKind::SingleSwitch;
    const network::ShardPlan plan = network::planShards(net, 8, 16);
    EXPECT_TRUE(plan.trivial());
    EXPECT_EQ(plan.numShards, 1);
}

TEST(Partition, MeshSplitsIntoBalancedContiguousStrips)
{
    const network::ShardPlan plan =
        network::planShards(meshConfig(4, 4), 4, 16);
    ASSERT_EQ(plan.numShards, 4);
    ASSERT_EQ(plan.routerShard.size(), 16u);
    std::vector<int> per_shard(4, 0);
    for (int r = 0; r < 16; ++r) {
        const int shard = plan.shardOfRouter(r);
        ++per_shard[static_cast<std::size_t>(shard)];
        // Contiguous: shard ids never decrease along the row-major
        // router index.
        if (r > 0)
            EXPECT_GE(shard, plan.shardOfRouter(r - 1));
    }
    for (int count : per_shard)
        EXPECT_EQ(count, 4);
}

TEST(Partition, UnevenCountsStayBalanced)
{
    // 8 routers over 3 shards: sizes must be 3/3/2 in some order.
    const network::ShardPlan plan =
        network::planShards(meshConfig(4, 2), 3, 16);
    ASSERT_EQ(plan.numShards, 3);
    std::vector<int> per_shard(3, 0);
    for (int r = 0; r < 8; ++r)
        ++per_shard[static_cast<std::size_t>(plan.shardOfRouter(r))];
    for (int count : per_shard) {
        EXPECT_GE(count, 2);
        EXPECT_LE(count, 3);
    }
}

TEST(Partition, RequestClampsToRouterCount)
{
    const network::ShardPlan plan =
        network::planShards(meshConfig(2, 2), 64, 16);
    EXPECT_EQ(plan.numShards, 4);
}

TEST(Partition, AutoModeFollowsHardwareThreads)
{
    EXPECT_EQ(network::planShards(meshConfig(4, 4), 0, 8).numShards, 8);
    EXPECT_EQ(network::planShards(meshConfig(2, 2), 0, 8).numShards, 4);
    EXPECT_TRUE(network::planShards(meshConfig(4, 4), 0, 1).trivial());
}

// --- Executor + cross-shard link mechanics ---------------------------------

/** Sink that acks every flit with a credit, like a real NI. */
class CountingReceiver final : public router::FlitReceiver
{
  public:
    CountingReceiver(sim::Simulator& simulator, router::Link& link)
        : simulator_(simulator), link_(link)
    {
    }

    void
    receiveFlit(const router::Flit& flit, int vc) override
    {
        arrivals.push_back({simulator_.now(), flit.index, vc});
        link_.sendCredit(vc);
    }

    struct Arrival
    {
        sim::Tick when;
        int index;
        int vc;
    };
    std::vector<Arrival> arrivals;

  private:
    sim::Simulator& simulator_;
    router::Link& link_;
};

class CountingCredits final : public router::CreditReceiver
{
  public:
    explicit CountingCredits(sim::Simulator& simulator)
        : simulator_(simulator)
    {
    }

    void
    creditReturned(int vc) override
    {
        credits.push_back({simulator_.now(), vc});
    }

    struct Credit
    {
        sim::Tick when;
        int vc;
    };
    std::vector<Credit> credits;

  private:
    sim::Simulator& simulator_;
};

router::Flit
makeFlit(int index)
{
    router::Flit flit;
    flit.index = index;
    return flit;
}

TEST(PdesExecutor, CrossShardChannelDeliversOnSchedule)
{
    const sim::Tick delay = sim::nanoseconds(160);
    sim::Simulator sender_sim(1);
    sim::Simulator receiver_sim(2);

    router::Link link(sender_sim, delay, "x",
                      router::ChannelIds::forLinkIndex(0));
    link.bindShards(sender_sim, receiver_sim);
    ASSERT_TRUE(link.crossShard());

    CountingReceiver receiver(receiver_sim, link);
    CountingCredits credits(sender_sim);
    link.connectReceiver(&receiver);
    link.connectCreditReceiver(&credits);

    // Sender-side process: inject three flits at t=0, 40ns, 80ns,
    // all inside one lookahead window.
    int sent = 0;
    sim::CallbackEvent send_event(
        [&] {
            link.sendFlit(makeFlit(sent), sent % 2);
            if (++sent < 3)
                sender_sim.scheduleAfter(send_event,
                                         sim::nanoseconds(40));
        },
        "send");
    sender_sim.schedule(send_event, 0);

    sim::PdesExecutor executor({&sender_sim, &receiver_sim}, delay);
    executor.addMailbox(1, [&] { return link.flushFlitOutbox(); });
    executor.addMailbox(0, [&] { return link.flushCreditOutbox(); });
    executor.run(sim::microseconds(10));

    ASSERT_EQ(receiver.arrivals.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(receiver.arrivals[static_cast<std::size_t>(i)].when,
                  static_cast<sim::Tick>(i) * sim::nanoseconds(40)
                      + delay);
        EXPECT_EQ(receiver.arrivals[static_cast<std::size_t>(i)].index,
                  i);
    }
    // The sink acks each flit on delivery, so credits land one link
    // delay later, preserving order and VC.
    ASSERT_EQ(credits.credits.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(credits.credits[static_cast<std::size_t>(i)].when,
                  static_cast<sim::Tick>(i) * sim::nanoseconds(40)
                      + 2 * delay);
        EXPECT_EQ(credits.credits[static_cast<std::size_t>(i)].vc,
                  i % 2);
    }

    const std::vector<sim::ShardRunStats>& stats = executor.stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_GT(stats[0].epochs, 0u);
    EXPECT_EQ(stats[1].mailboxItems, 3u);  // flits into shard 1
    EXPECT_EQ(stats[0].mailboxItems, 3u);  // credits back to shard 0
}

TEST(PdesExecutor, IndependentShardsFastForwardThroughIdleGaps)
{
    sim::Simulator a(1);
    sim::Simulator b(2);
    std::vector<sim::Tick> fired;
    sim::CallbackEvent ea([&] { fired.push_back(a.now()); }, "a");
    sim::CallbackEvent eb([&] { fired.push_back(b.now()); }, "b");
    a.schedule(ea, sim::milliseconds(5));
    b.schedule(eb, sim::milliseconds(9));

    // Tiny lookahead + huge idle gaps: without fast-forward this
    // would grind through millions of empty epochs.
    sim::PdesExecutor executor({&a, &b}, sim::nanoseconds(160));
    executor.run(sim::milliseconds(10));

    EXPECT_EQ(fired.size(), 2u);
    EXPECT_LE(executor.stats()[0].epochs, 4u);
}

TEST(PdesExecutor, FastForwardCountersTrackIdleWindowJumps)
{
    sim::Simulator a(1);
    sim::Simulator b(2);
    std::vector<sim::Tick> fired;
    sim::CallbackEvent ea([&] { fired.push_back(a.now()); }, "a");
    sim::CallbackEvent eb([&] { fired.push_back(b.now()); }, "b");
    a.schedule(ea, sim::milliseconds(5));
    b.schedule(eb, sim::milliseconds(9));

    sim::PdesExecutor executor({&a, &b}, sim::nanoseconds(160));
    executor.run(sim::milliseconds(10));

    EXPECT_EQ(fired.size(), 2u);
    // One real jump: epoch 1 runs its 160 ns window at 5 ms, then
    // the min-reduction lands the next epoch straight on 9 ms. The
    // initial gap to 5 ms is the start-time computation, not a jump.
    const std::vector<sim::ShardRunStats>& stats = executor.stats();
    EXPECT_GE(stats[0].fastForwardEpochs, 1u);
    EXPECT_GT(stats[0].fastForwardTicks,
              static_cast<std::uint64_t>(sim::milliseconds(3)));
    // The jump sequence is global: every shard records the same one.
    EXPECT_EQ(stats[0].fastForwardEpochs, stats[1].fastForwardEpochs);
    EXPECT_EQ(stats[0].fastForwardTicks, stats[1].fastForwardTicks);
}

TEST(PdesExecutor, MailboxArrivalExactlyAtJumpTargetFires)
{
    const sim::Tick delay = sim::nanoseconds(160);
    sim::Simulator sender_sim(1);
    sim::Simulator receiver_sim(2);

    router::Link link(sender_sim, delay, "x",
                      router::ChannelIds::forLinkIndex(0));
    link.bindShards(sender_sim, receiver_sim);
    CountingReceiver receiver(receiver_sim, link);
    CountingCredits credits(sender_sim);
    link.connectReceiver(&receiver);
    link.connectCreditReceiver(&credits);

    // The sender idles for 3 ms, then sends one flit. Its arrival
    // lands at exactly epoch_start + lookahead - the first tick of
    // the next epoch, i.e. the jump target of the min-reduction -
    // and must fire there, not be skipped over.
    const sim::Tick t0 = sim::milliseconds(3);
    sim::CallbackEvent send_event([&] { link.sendFlit(makeFlit(0), 0); },
                                  "send");
    sender_sim.schedule(send_event, t0);

    sim::PdesExecutor executor({&sender_sim, &receiver_sim}, delay);
    executor.addMailbox(1, [&] { return link.flushFlitOutbox(); });
    executor.addMailbox(0, [&] { return link.flushCreditOutbox(); });
    executor.run(sim::milliseconds(10));

    ASSERT_EQ(receiver.arrivals.size(), 1u);
    EXPECT_EQ(receiver.arrivals[0].when, t0 + delay);
    // The receiver's ack credit exercises the same boundary on the
    // way back.
    ASSERT_EQ(credits.credits.size(), 1u);
    EXPECT_EQ(credits.credits[0].when, t0 + 2 * delay);
    // Back-to-back windows (arrival exactly at window_end + 1) are
    // not jumps; the counters must stay quiet for them.
    for (const sim::ShardRunStats& s : executor.stats())
        EXPECT_EQ(s.fastForwardTicks, 0u);
}

// --- Whole-experiment shard invariance -------------------------------------

/** Fig-3 miniature: 8-port single switch under the paper's mix. */
ExperimentConfig
fig3Miniature()
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 8;
    cfg.router.numVcs = 16;
    cfg.router.flitBufferDepth = 20;
    cfg.router.scheduler = config::SchedulerKind::VirtualClock;
    cfg.traffic.inputLoad = 0.9;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.05;
    cfg.seed = 42;
    return cfg;
}

/** Fig-9 miniature: 2x2 fat mesh, mixed traffic. */
ExperimentConfig
fig9Miniature()
{
    ExperimentConfig cfg = fig3Miniature();
    cfg.network.topology = config::TopologyKind::FatMesh;
    cfg.network.meshWidth = 2;
    cfg.network.meshHeight = 2;
    cfg.network.fatFactor = 2;
    cfg.network.endpointsPerSwitch = 4;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.6;
    cfg.seed = 7;
    return cfg;
}

/** 4x2 mesh: 8 routers, so every shard count in {1,2,4,8} is real. */
ExperimentConfig
wideMeshMiniature()
{
    ExperimentConfig cfg = fig9Miniature();
    cfg.network.meshWidth = 4;
    cfg.network.meshHeight = 2;
    // Interior routers have three mesh directions here: 4 endpoint
    // ports + 3 x fat 2 = 10 ports.
    cfg.router.numPorts = 10;
    cfg.seed = 11;
    return cfg;
}

/** 4x4 mesh on the routing-policy layer (golden G4's shape). */
ExperimentConfig
meshMiniature()
{
    ExperimentConfig cfg = fig3Miniature();
    cfg.network.topology = config::TopologyKind::Mesh;
    cfg.network.meshWidth = 4;
    cfg.network.meshHeight = 4;
    cfg.network.endpointsPerSwitch = 1;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.6;
    cfg.seed = 13;
    return cfg;
}

/** 4x4 torus, dateline VC classes (golden G5's shape). */
ExperimentConfig
torusMiniature()
{
    ExperimentConfig cfg = meshMiniature();
    cfg.network.topology = config::TopologyKind::Torus;
    cfg.seed = 17;
    return cfg;
}

/** clos(2,2,4): 6 routers, multi-up routing (golden G6's shape). */
ExperimentConfig
closMiniature()
{
    ExperimentConfig cfg = fig3Miniature();
    cfg.network.topology = config::TopologyKind::Clos;
    cfg.network.closM = 2;
    cfg.network.closN = 2;
    cfg.network.closR = 4;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.6;
    cfg.seed = 19;
    return cfg;
}

void
expectShardInvariant(const ExperimentConfig& base)
{
    ExperimentConfig cfg = base;
    cfg.shards = 1;
    const ExperimentResult oracle = runExperiment(cfg);
    ASSERT_GT(oracle.eventsFired, 0u);

    for (int shards : {2, 4, 8}) {
        cfg.shards = shards;
        const ExperimentResult sharded = runExperiment(cfg);
        EXPECT_EQ(sharded.deterministicHash(),
                  oracle.deterministicHash())
            << "shards=" << shards;
        EXPECT_EQ(sharded.eventsFired, oracle.eventsFired)
            << "shards=" << shards;
        EXPECT_EQ(sharded.intervalSamples, oracle.intervalSamples)
            << "shards=" << shards;
    }
}

TEST(PdesDeterminism, Fig3MiniatureHashIsShardInvariant)
{
    // Single switch: every shard request resolves to the trivial
    // plan, so this pins the request-handling path.
    expectShardInvariant(fig3Miniature());
}

TEST(PdesDeterminism, Fig9MiniatureHashIsShardInvariant)
{
    expectShardInvariant(fig9Miniature());
}

TEST(PdesDeterminism, WideMeshHashIsShardInvariantThrough8Shards)
{
    expectShardInvariant(wideMeshMiniature());
}

/**
 * The topology-graph shapes must satisfy the same contract as the
 * legacy ones: one deterministicHash per configuration, bit-identical
 * across --shards in {1,2,4,8}. The single-shard digests are pinned
 * as goldens G4-G6 in test_determinism.cc, so these tests tie the
 * sharded executor to the same values.
 */
TEST(PdesDeterminism, MeshHashIsShardInvariant)
{
    expectShardInvariant(meshMiniature());
}

TEST(PdesDeterminism, TorusHashIsShardInvariant)
{
    expectShardInvariant(torusMiniature());
}

TEST(PdesDeterminism, ClosHashIsShardInvariant)
{
    // 6 routers: shards 8 clamps to 6, putting both spines alone in
    // the tail shards - the heaviest cross-shard traffic pattern.
    expectShardInvariant(closMiniature());
}

TEST(PdesDeterminism, AdaptiveTorusHashIsShardInvariant)
{
    // Adaptive routing reads run-time VC occupancy and output loads
    // at route time; those are part of the deterministic state, so
    // sharding must not move them.
    ExperimentConfig cfg = torusMiniature();
    cfg.network.routing = config::RoutingKind::Adaptive;
    expectShardInvariant(cfg);
}

TEST(PdesDeterminism, AutoShardCountIsAlsoInvariant)
{
    ExperimentConfig cfg = fig9Miniature();
    cfg.shards = 1;
    const ExperimentResult oracle = runExperiment(cfg);
    cfg.shards = 0; // one shard per hardware thread, clamped
    const ExperimentResult autos = runExperiment(cfg);
    EXPECT_EQ(autos.deterministicHash(), oracle.deterministicHash());
}

TEST(PdesDeterminism, ShardedRunReportsExecutorStats)
{
    ExperimentConfig cfg = fig9Miniature();
    cfg.shards = 4;
    const ExperimentResult r = runExperiment(cfg);
    ASSERT_NE(r.observations, nullptr);
    ASSERT_TRUE(r.observations->hasShards);
    ASSERT_EQ(r.observations->shards.size(), 4u);
    std::uint64_t events = 0;
    std::uint64_t mailbox_items = 0;
    for (const sim::ShardRunStats& s : r.observations->shards) {
        events += s.eventsFired;
        mailbox_items += s.mailboxItems;
        EXPECT_GT(s.epochs, 0u);
        EXPECT_GT(s.maxQueueDepth, 0u);
    }
    EXPECT_EQ(events, r.eventsFired);
    EXPECT_GT(mailbox_items, 0u);
}

TEST(PdesDeterminism, TelemetryMergesAcrossShardsWithoutPerturbing)
{
    ExperimentConfig cfg = fig9Miniature();
    cfg.obs.telemetry.enabled = true;

    cfg.shards = 1;
    const ExperimentResult single = runExperiment(cfg);
    cfg.shards = 4;
    const ExperimentResult sharded = runExperiment(cfg);

    // Telemetry on, sharded: the deterministic outputs still match.
    EXPECT_EQ(sharded.deterministicHash(), single.deterministicHash());

    ASSERT_NE(single.observations, nullptr);
    ASSERT_NE(sharded.observations, nullptr);
    const obs::TelemetryReport& a = single.observations->telemetry;
    const obs::TelemetryReport& b = sharded.observations->telemetry;
    ASSERT_EQ(a.streams.size(), b.streams.size());
    EXPECT_EQ(a.worstStream, b.worstStream);
    EXPECT_EQ(a.worstStddevMs, b.worstStddevMs);
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
        const obs::StreamSeries& sa = a.streams[i];
        const obs::StreamSeries& sb = b.streams[i];
        EXPECT_EQ(sa.stream, sb.stream);
        EXPECT_EQ(sa.frames, sb.frames);
        EXPECT_EQ(sa.intervalCount, sb.intervalCount);
        EXPECT_EQ(sa.meanIntervalMs, sb.meanIntervalMs);
        EXPECT_EQ(sa.stddevIntervalMs, sb.stddevIntervalMs);
        EXPECT_EQ(sa.messages, sb.messages);
        EXPECT_EQ(sa.worstMessageDelayUs, sb.worstMessageDelayUs);
        ASSERT_EQ(sa.samples.size(), sb.samples.size())
            << "stream " << sa.stream.value();
        for (std::size_t w = 0; w < sa.samples.size(); ++w) {
            EXPECT_EQ(sa.samples[w].windowStart,
                      sb.samples[w].windowStart);
            EXPECT_EQ(sa.samples[w].frames, sb.samples[w].frames);
            EXPECT_EQ(sa.samples[w].flits, sb.samples[w].flits);
            EXPECT_EQ(sa.samples[w].intervalCount,
                      sb.samples[w].intervalCount);
        }
    }
}

} // namespace
