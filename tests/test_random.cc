/**
 * @file
 * Unit and statistical tests for the random number generator.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

namespace {

using namespace mediaworm::sim;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng rng(9);
    const auto first = rng.next();
    rng.next();
    rng.seed(9);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, Uniform01InHalfOpenRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform01();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, Uniform01MeanIsHalf)
{
    Rng rng(5);
    double sum = 0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i)
        sum += rng.uniform01();
    EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(6);
    for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.uniformInt(n), n);
    }
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(6);
    int seen[8] = {};
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.uniformInt(8)];
    for (int v = 0; v < 8; ++v)
        EXPECT_GT(seen[v], 800) << "value " << v << " under-sampled";
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto x = rng.uniformRange(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        saw_lo |= x == -3;
        saw_hi |= x == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRangeSingleton)
{
    Rng rng(7);
    EXPECT_EQ(rng.uniformRange(42, 42), 42);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(8);
    int hits = 0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(11);
    Rng child = parent.split();
    // The child must differ from the parent's continuation.
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(11);
    Rng b(11);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    EXPECT_EQ(Rng::min(), 0u);
    EXPECT_EQ(Rng::max(), ~0ull);
    Rng rng(1);
    EXPECT_NE(rng(), rng());
}

} // namespace
