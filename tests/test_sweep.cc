/**
 * @file
 * Tests for the parameter-sweep runner.
 */

#include <gtest/gtest.h>

#include "core/sweep.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::core;

ExperimentConfig
tinyBase()
{
    ExperimentConfig cfg;
    cfg.traffic.warmupFrames = 0;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.02;
    return cfg;
}

TEST(Sweep, RunsEveryPointInOrder)
{
    Sweep sweep(tinyBase());
    sweep.addPoint("low", [](ExperimentConfig& cfg) {
        cfg.traffic.inputLoad = 0.3;
    });
    sweep.addPoint("high", [](ExperimentConfig& cfg) {
        cfg.traffic.inputLoad = 0.6;
    });
    EXPECT_EQ(sweep.size(), 2u);

    const auto& rows = sweep.run();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].label, "low");
    EXPECT_EQ(rows[1].label, "high");
    EXPECT_LT(rows[0].result.rtStreams, rows[1].result.rtStreams);
}

TEST(Sweep, LoadAxisLabelsAndApplies)
{
    Sweep sweep(tinyBase());
    sweep.addLoadAxis({0.3, 0.5});
    const auto& rows = sweep.run();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].label, "load=0.30");
    EXPECT_EQ(rows[1].label, "load=0.50");
}

TEST(Sweep, LoadAxisComposesWithModifier)
{
    Sweep sweep(tinyBase());
    sweep.addLoadAxis({0.4}, [](ExperimentConfig& cfg) {
        cfg.traffic.realTimeFraction = 1.0;
    });
    const auto& rows = sweep.run();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].result.beMessages, 0u)
        << "modifier did not apply on top of the load axis";
}

TEST(Sweep, ProgressCallbackFiresPerPoint)
{
    Sweep sweep(tinyBase());
    sweep.addLoadAxis({0.3, 0.4, 0.5});
    int calls = 0;
    sweep.run([&](const std::string& label,
                  const ExperimentResult& result) {
        ++calls;
        EXPECT_FALSE(label.empty());
        EXPECT_GT(result.framesDelivered, 0u);
    });
    EXPECT_EQ(calls, 3);
}

TEST(Sweep, TableAndCsvRenderRows)
{
    Sweep sweep(tinyBase());
    sweep.addLoadAxis({0.3});
    sweep.run();

    const Table table = sweep.toTable();
    EXPECT_EQ(table.rows(), 1u);
    const std::string text = table.toString();
    EXPECT_NE(text.find("load=0.30"), std::string::npos);
    EXPECT_NE(text.find("sigma_d"), std::string::npos);

    const std::string csv = sweep.toCsv();
    EXPECT_NE(csv.find("point,d (ms)"), std::string::npos);
    EXPECT_NE(csv.find("load=0.30,"), std::string::npos);
}

TEST(Sweep, RerunReplacesRows)
{
    Sweep sweep(tinyBase());
    sweep.addLoadAxis({0.3});
    sweep.run();
    const auto first = sweep.rows()[0].result.eventsFired;
    sweep.run();
    EXPECT_EQ(sweep.rows().size(), 1u);
    EXPECT_EQ(sweep.rows()[0].result.eventsFired, first)
        << "sweeps must be deterministic";
}

TEST(Sweep, ParallelRowsMatchSequential)
{
    Sweep seq(tinyBase());
    seq.addLoadAxis({0.3, 0.4, 0.5});
    seq.run();

    Sweep par(tinyBase());
    par.addLoadAxis({0.3, 0.4, 0.5});
    par.setJobs(4);
    par.run();

    ASSERT_EQ(par.rows().size(), seq.rows().size());
    for (std::size_t i = 0; i < seq.rows().size(); ++i) {
        EXPECT_EQ(par.rows()[i].label, seq.rows()[i].label);
        EXPECT_EQ(par.rows()[i].result.eventsFired,
                  seq.rows()[i].result.eventsFired);
        EXPECT_EQ(par.rows()[i].result.meanIntervalNormMs,
                  seq.rows()[i].result.meanIntervalNormMs);
    }
    EXPECT_EQ(par.toJson("sweep", false), seq.toJson("sweep", false))
        << "aggregate artifact must not depend on the jobs count";
}

TEST(Sweep, ReplicationsAggregateAndRenderCi)
{
    Sweep sweep(tinyBase());
    sweep.addLoadAxis({0.3});
    sweep.setReplications(3);
    sweep.run();

    const auto& summary = sweep.rows()[0].summary;
    EXPECT_EQ(summary.reps.size(), 3u);
    EXPECT_EQ(summary.metric("mean_interval_norm_ms").n, 3u);

    const std::string text = sweep.toTable().toString();
    EXPECT_NE(text.find("d ci95"), std::string::npos) << text;
}

TEST(Sweep, TableSurfacesThroughputColumns)
{
    Sweep sweep(tinyBase());
    sweep.addLoadAxis({0.3});
    sweep.run();
    const std::string text = sweep.toTable().toString();
    EXPECT_NE(text.find("wall (s)"), std::string::npos) << text;
    EXPECT_NE(text.find("Mev/s"), std::string::npos) << text;
    EXPECT_GT(sweep.rows()[0].result.eventsPerSec, 0.0);
}

} // namespace
