/**
 * @file
 * Unit and property tests for the ring-buffer flit FIFO.
 */

#include <deque>

#include <gtest/gtest.h>

#include "router/flit_buffer.hh"
#include "sim/random.hh"

namespace {

using namespace mediaworm::router;
using mediaworm::sim::Rng;

Flit
makeFlit(int index)
{
    Flit flit;
    flit.index = index;
    return flit;
}

TEST(FlitBuffer, BoundedBasics)
{
    FlitBuffer buffer(3);
    EXPECT_TRUE(buffer.empty());
    EXPECT_EQ(buffer.capacity(), 3u);
    EXPECT_EQ(buffer.space(), 3u);

    buffer.push(makeFlit(1));
    buffer.push(makeFlit(2));
    EXPECT_EQ(buffer.size(), 2u);
    EXPECT_EQ(buffer.space(), 1u);
    EXPECT_FALSE(buffer.full());

    buffer.push(makeFlit(3));
    EXPECT_TRUE(buffer.full());
    EXPECT_EQ(buffer.space(), 0u);
}

TEST(FlitBuffer, FifoOrder)
{
    FlitBuffer buffer(4);
    for (int i = 0; i < 4; ++i)
        buffer.push(makeFlit(i));
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(buffer.front().index, i);
        EXPECT_EQ(buffer.pop().index, i);
    }
    EXPECT_TRUE(buffer.empty());
}

TEST(FlitBuffer, WrapsAroundRepeatedly)
{
    FlitBuffer buffer(3);
    int next = 0;
    int expected = 0;
    for (int round = 0; round < 50; ++round) {
        while (!buffer.full())
            buffer.push(makeFlit(next++));
        while (!buffer.empty())
            EXPECT_EQ(buffer.pop().index, expected++);
    }
    EXPECT_EQ(next, expected);
}

TEST(FlitBuffer, FrontIsMutable)
{
    FlitBuffer buffer(2);
    buffer.push(makeFlit(1));
    buffer.front().stamp = 777;
    EXPECT_EQ(buffer.pop().stamp, 777);
}

TEST(FlitBuffer, ClearEmptiesButKeepsCapacity)
{
    FlitBuffer buffer(2);
    buffer.push(makeFlit(1));
    buffer.clear();
    EXPECT_TRUE(buffer.empty());
    EXPECT_EQ(buffer.capacity(), 2u);
    buffer.push(makeFlit(2));
    EXPECT_EQ(buffer.front().index, 2);
}

TEST(FlitBuffer, UnboundedGrows)
{
    FlitBuffer buffer(0);
    EXPECT_EQ(buffer.capacity(), 0u);
    EXPECT_FALSE(buffer.full());
    for (int i = 0; i < 10000; ++i)
        buffer.push(makeFlit(i));
    EXPECT_EQ(buffer.size(), 10000u);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(buffer.pop().index, i);
}

TEST(FlitBuffer, UnboundedGrowthPreservesOrderAcrossWrap)
{
    FlitBuffer buffer(0);
    // Interleave pushes and pops so head is nonzero when it grows.
    for (int i = 0; i < 10; ++i)
        buffer.push(makeFlit(i));
    for (int i = 0; i < 7; ++i)
        buffer.pop();
    for (int i = 10; i < 100; ++i)
        buffer.push(makeFlit(i));
    for (int i = 7; i < 100; ++i)
        EXPECT_EQ(buffer.pop().index, i);
}

/** Property: random push/pop interleavings match std::deque. */
TEST(FlitBufferProperty, MatchesDequeModel)
{
    Rng rng(0xabcd);
    for (int round = 0; round < 10; ++round) {
        const std::size_t capacity = 1 + rng.uniformInt(16);
        FlitBuffer buffer(capacity);
        std::deque<int> model;
        int next = 0;
        for (int op = 0; op < 2000; ++op) {
            if (rng.bernoulli(0.55) && !buffer.full()) {
                buffer.push(makeFlit(next));
                model.push_back(next);
                ++next;
            } else if (!buffer.empty()) {
                ASSERT_EQ(buffer.front().index, model.front());
                ASSERT_EQ(buffer.pop().index, model.front());
                model.pop_front();
            }
            ASSERT_EQ(buffer.size(), model.size());
            ASSERT_EQ(buffer.empty(), model.empty());
            ASSERT_EQ(buffer.full(), model.size() == capacity);
        }
    }
}

} // namespace
