/**
 * @file
 * Unit tests for the observability subsystem (src/obs/): exact-value
 * checks of the sliding-window telemetry collector (rates, interval
 * jitter, window-wrap edges, worst-stream selection), a golden test
 * for the Chrome-trace exporter, flight-recorder dump rendering, and
 * structural checks of the v2 campaign-artifact telemetry section.
 */

#include <gtest/gtest.h>

#include "campaign/artifact.hh"
#include "core/mediaworm.hh"
#include "obs/chrome_trace.hh"
#include "obs/flight_recorder.hh"
#include "obs/telemetry.hh"

namespace {

using namespace mediaworm;
using obs::StreamTelemetry;
using obs::TelemetryConfig;
using obs::TelemetryReport;
using sim::kMillisecond;
using sim::StreamId;

TelemetryConfig
windowConfig(sim::Tick window)
{
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.window = window;
    cfg.measureFrom = 0;
    cfg.flitSizeBits = 32;
    return cfg;
}

// --- StreamTelemetry ---------------------------------------------------

TEST(Telemetry, ExactWindowValues)
{
    StreamTelemetry telemetry(windowConfig(10 * kMillisecond));
    const StreamId s(1);
    for (sim::Tick t : {1, 2, 3, 4, 9})
        telemetry.recordFlit(s, t * kMillisecond);
    for (sim::Tick t : {2, 5, 8})
        telemetry.recordFrameDelivery(s, t * kMillisecond);
    EXPECT_EQ(telemetry.observations(), 8u);

    const TelemetryReport report = telemetry.finish(12 * kMillisecond);
    ASSERT_EQ(report.streams.size(), 1u);
    const obs::StreamSeries* series = report.find(s);
    ASSERT_NE(series, nullptr);

    // One closed window [0, 10 ms); nothing was active in [10, 12).
    ASSERT_EQ(series->samples.size(), 1u);
    const obs::TelemetrySample& w = series->samples[0];
    EXPECT_EQ(w.windowStart, 0);
    EXPECT_EQ(w.windowEnd, 10 * kMillisecond);
    EXPECT_EQ(w.frames, 3u);
    EXPECT_EQ(w.flits, 5u);
    ASSERT_EQ(w.intervalCount, 2u);
    // Deliveries 2, 5, 8 ms: intervals {3, 3} ms exactly.
    EXPECT_DOUBLE_EQ(w.meanIntervalMs, 3.0);
    EXPECT_DOUBLE_EQ(w.stddevIntervalMs, 0.0);
    // 5 flits x 32 bits over 10 ms = 16 kbit/s = 0.016 Mbps.
    EXPECT_DOUBLE_EQ(w.mbps, 0.016);

    EXPECT_EQ(series->frames, 3u);
    EXPECT_EQ(series->intervalCount, 2u);
    EXPECT_DOUBLE_EQ(series->meanIntervalMs, 3.0);
    EXPECT_DOUBLE_EQ(series->stddevIntervalMs, 0.0);

    // All streams have zero jitter, so no stream qualifies as worst.
    EXPECT_FALSE(report.worstStream.valid());
    EXPECT_DOUBLE_EQ(report.worstStddevMs, 0.0);

    EXPECT_EQ(report.find(StreamId(99)), nullptr);
}

TEST(Telemetry, WindowWrapEdges)
{
    StreamTelemetry telemetry(windowConfig(10 * kMillisecond));
    const StreamId s(2);
    // 9 ms lands in window 0; 10 ms is exactly the boundary and must
    // land in window 1; 35 ms skips an idle window (no sample for
    // [20, 30)) and lands in window 3.
    telemetry.recordFrameDelivery(s, 9 * kMillisecond);
    telemetry.recordFrameDelivery(s, 10 * kMillisecond);
    telemetry.recordFrameDelivery(s, 35 * kMillisecond);

    const TelemetryReport report = telemetry.finish(40 * kMillisecond);
    const obs::StreamSeries* series = report.find(s);
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->samples.size(), 3u);

    EXPECT_EQ(series->samples[0].windowStart, 0);
    EXPECT_EQ(series->samples[0].frames, 1u);
    EXPECT_EQ(series->samples[0].intervalCount, 0u);

    // The 9 -> 10 ms interval is accounted to the window the second
    // delivery lands in.
    EXPECT_EQ(series->samples[1].windowStart, 10 * kMillisecond);
    EXPECT_EQ(series->samples[1].frames, 1u);
    ASSERT_EQ(series->samples[1].intervalCount, 1u);
    EXPECT_DOUBLE_EQ(series->samples[1].meanIntervalMs, 1.0);

    EXPECT_EQ(series->samples[2].windowStart, 30 * kMillisecond);
    ASSERT_EQ(series->samples[2].intervalCount, 1u);
    EXPECT_DOUBLE_EQ(series->samples[2].meanIntervalMs, 25.0);
}

TEST(Telemetry, WorstStreamSelection)
{
    StreamTelemetry telemetry(windowConfig(100 * kMillisecond));
    // Stream 1: intervals {3, 3} ms, sigma = 0.
    for (sim::Tick t : {1, 4, 7})
        telemetry.recordFrameDelivery(StreamId(1), t * kMillisecond);
    // Stream 2: intervals {2, 4} ms, population sigma = 1 ms.
    for (sim::Tick t : {1, 3, 7})
        telemetry.recordFrameDelivery(StreamId(2), t * kMillisecond);
    // Stream 3: one interval only - excluded from worst selection.
    for (sim::Tick t : {1, 50})
        telemetry.recordFrameDelivery(StreamId(3), t * kMillisecond);
    // Stream 4: same sigma as stream 2; the tie keeps the lower id.
    for (sim::Tick t : {2, 4, 8})
        telemetry.recordFrameDelivery(StreamId(4), t * kMillisecond);

    const TelemetryReport report = telemetry.finish(60 * kMillisecond);
    ASSERT_EQ(report.streams.size(), 4u);
    // Sorted by stream id.
    EXPECT_EQ(report.streams[0].stream, StreamId(1));
    EXPECT_EQ(report.streams[3].stream, StreamId(4));

    EXPECT_EQ(report.worstStream, StreamId(2));
    EXPECT_DOUBLE_EQ(report.worstStddevMs, 1.0);
    EXPECT_DOUBLE_EQ(report.find(StreamId(4))->stddevIntervalMs, 1.0);
}

TEST(Telemetry, MeasureFromExcludesWarmupIntervals)
{
    TelemetryConfig cfg = windowConfig(10 * kMillisecond);
    cfg.measureFrom = 10 * kMillisecond;
    StreamTelemetry telemetry(cfg);
    const StreamId s(5);
    for (sim::Tick t : {2, 5, 8, 12})
        telemetry.recordFrameDelivery(s, t * kMillisecond);

    const TelemetryReport report = telemetry.finish(20 * kMillisecond);
    const obs::StreamSeries* series = report.find(s);
    ASSERT_NE(series, nullptr);

    // Only the 8 -> 12 ms interval is delivered at/after measureFrom.
    EXPECT_EQ(series->frames, 4u);
    ASSERT_EQ(series->intervalCount, 1u);
    EXPECT_DOUBLE_EQ(series->meanIntervalMs, 4.0);

    // The window samples keep every interval (warmup included).
    std::uint64_t window_intervals = 0;
    for (const obs::TelemetrySample& sample : series->samples)
        window_intervals += sample.intervalCount;
    EXPECT_EQ(window_intervals, 3u);
}

// --- Chrome trace exporter ---------------------------------------------

TEST(ChromeTrace, GoldenSmallTrace)
{
    sim::Tracer tracer(16);
    tracer.record({1 * kMillisecond, sim::TracePoint::HostInject,
                   StreamId(1), 0, 0, 0, -1, 0});
    tracer.record({2 * kMillisecond, sim::TracePoint::RouterArrive,
                   StreamId(1), 0, 0, 0, 1, 2});
    tracer.record({3 * kMillisecond, sim::TracePoint::RouterDepart,
                   StreamId(1), 0, 0, 0, 3, 2});
    tracer.record({4 * kMillisecond, sim::TracePoint::Eject,
                   StreamId(1), 0, 0, 1, -1, 2});
    tracer.record({5 * kMillisecond, sim::TracePoint::CreditReturn,
                   StreamId(), 0, 0, 0, 1, 2});

    const char* golden = R"({
  "displayTimeUnit": "ms",
  "otherData": {
    "schema": "mediaworm-chrome-trace-v1"
  },
  "traceEvents": [
    {
      "name": "process_name",
      "ph": "M",
      "pid": 1,
      "args": {
        "name": "streams"
      }
    },
    {
      "name": "process_name",
      "ph": "M",
      "pid": 2,
      "args": {
        "name": "routers"
      }
    },
    {
      "name": "thread_name",
      "ph": "M",
      "pid": 1,
      "tid": 1,
      "args": {
        "name": "stream1"
      }
    },
    {
      "name": "thread_name",
      "ph": "M",
      "pid": 2,
      "tid": 0,
      "args": {
        "name": "router0"
      }
    },
    {
      "name": "router0.port1.occupancy",
      "cat": "occupancy",
      "ph": "C",
      "ts": 2000,
      "pid": 2,
      "tid": 0,
      "args": {
        "flits": 1
      }
    },
    {
      "name": "s1 m0 f0",
      "cat": "router",
      "ph": "X",
      "ts": 2000,
      "pid": 2,
      "tid": 0,
      "dur": 1000,
      "args": {
        "in_port": 1,
        "in_vc": 2,
        "out_port": 3,
        "out_vc": 2
      }
    },
    {
      "name": "router0.port1.occupancy",
      "cat": "occupancy",
      "ph": "C",
      "ts": 3000,
      "pid": 2,
      "tid": 0,
      "args": {
        "flits": 0
      }
    },
    {
      "name": "s1 m0 f0",
      "cat": "flit",
      "ph": "X",
      "ts": 1000,
      "pid": 1,
      "tid": 1,
      "dur": 3000
    },
    {
      "name": "credit",
      "cat": "credit",
      "ph": "i",
      "ts": 5000,
      "pid": 2,
      "tid": 0,
      "s": "t"
    }
  ]
})";
    EXPECT_EQ(obs::toChromeTraceJson(tracer), golden);
}

// --- Flight recorder ---------------------------------------------------

TEST(FlightRecorder, DumpRendersTailWithHeader)
{
    obs::FlightRecorder recorder(4);
    for (int i = 0; i < 10; ++i) {
        recorder.tracer().record(
            {i * kMillisecond, sim::TracePoint::HostInject, StreamId(i),
             0, 0, 0, -1, 0});
    }
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.totalRecorded(), 10u);

    const std::string dump = recorder.dump();
    EXPECT_NE(dump.find("flight recorder: last 4 of 10 events"),
              std::string::npos);
    // Oldest retained record is stream 6; stream 5 was evicted.
    EXPECT_NE(dump.find("stream=6"), std::string::npos);
    EXPECT_EQ(dump.find("stream=5"), std::string::npos);
}

TEST(FlightRecorder, ArmInstallsAndDisarmReleasesCrashHook)
{
    void* context = nullptr;
    {
        obs::FlightRecorder recorder(8);
        EXPECT_FALSE(recorder.armed());
        recorder.arm();
        EXPECT_TRUE(recorder.armed());
        EXPECT_NE(sim::crashHook(&context), nullptr);
        EXPECT_EQ(context, &recorder);
    }
    // Destruction disarms.
    EXPECT_EQ(sim::crashHook(&context), nullptr);
}

// --- Campaign artifact v2 ----------------------------------------------

TEST(ArtifactV2, TelemetrySectionSerialisedWhenEnabled)
{
    core::ExperimentConfig cfg;
    cfg.traffic.warmupFrames = 0;
    cfg.traffic.measuredFrames = 2;
    cfg.traffic.inputLoad = 0.4;
    cfg.timeScale = 0.02;
    cfg.obs.telemetry.enabled = true;

    campaign::CampaignConfig ccfg;
    ccfg.replications = 1;
    campaign::Campaign camp(ccfg);
    camp.addPoint("p0", cfg);
    camp.run();

    campaign::ArtifactOptions options;
    options.includeTiming = false;
    const std::string text = campaign::toJson(camp, options);

    EXPECT_NE(text.find("\"schema\": \"mediaworm-campaign-v3\""),
              std::string::npos);
    // The telemetry member and its key vocabulary.
    for (const char* key :
         {"\"telemetry\"", "\"window_ms\"", "\"time_scale\"",
          "\"worst_stream\"", "\"worst_sigma_d_norm_ms\"",
          "\"streams\"", "\"d_norm_ms\"", "\"sigma_d_norm_ms\"",
          "\"series\"", "\"t_norm_ms\"", "\"mbps\""}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }

    // v1 compatibility: disabling telemetry removes the member and
    // nothing else changes structurally.
    core::ExperimentConfig off = cfg;
    off.obs.telemetry.enabled = false;
    campaign::Campaign camp_off(ccfg);
    camp_off.addPoint("p0", off);
    camp_off.run();
    const std::string text_off = campaign::toJson(camp_off, options);
    EXPECT_EQ(text_off.find("\"telemetry\""), std::string::npos);
    EXPECT_NE(text_off.find("\"counts\""), std::string::npos);
}

TEST(ArtifactV2, TelemetryIdenticalAcrossJobsCounts)
{
    auto build = [](int jobs) {
        core::ExperimentConfig cfg;
        cfg.traffic.warmupFrames = 0;
        cfg.traffic.measuredFrames = 2;
        cfg.traffic.inputLoad = 0.4;
        cfg.timeScale = 0.02;
        cfg.obs.telemetry.enabled = true;
        campaign::CampaignConfig ccfg;
        ccfg.jobs = jobs;
        ccfg.replications = 2;
        campaign::Campaign camp(ccfg);
        camp.addPoint("p0", cfg);
        camp.run();
        campaign::ArtifactOptions options;
        options.includeTiming = false;
        return campaign::toJson(camp, options);
    };
    EXPECT_EQ(build(1), build(4));
}

} // namespace
