/**
 * @file
 * Unit tests for the physical channel (link) model.
 */

#include <vector>

#include <gtest/gtest.h>

#include "router/link.hh"

namespace {

using namespace mediaworm::router;
using namespace mediaworm::sim;

class CapturingReceiver final : public FlitReceiver
{
  public:
    explicit CapturingReceiver(Simulator& simulator)
        : simulator_(simulator)
    {
    }

    void
    receiveFlit(const Flit& flit, int vc) override
    {
        arrivals.push_back({simulator_.now(), flit.index, vc});
    }

    struct Arrival
    {
        Tick when;
        int index;
        int vc;
    };
    std::vector<Arrival> arrivals;

  private:
    Simulator& simulator_;
};

class CapturingCredits final : public CreditReceiver
{
  public:
    explicit CapturingCredits(Simulator& simulator)
        : simulator_(simulator)
    {
    }

    void
    creditReturned(int vc) override
    {
        credits.push_back({simulator_.now(), vc});
    }

    struct Credit
    {
        Tick when;
        int vc;
    };
    std::vector<Credit> credits;

  private:
    Simulator& simulator_;
};

Flit
makeFlit(int index)
{
    Flit flit;
    flit.index = index;
    return flit;
}

TEST(Link, DeliversAfterDelay)
{
    Simulator simulator;
    Link link(simulator, nanoseconds(160), "test");
    CapturingReceiver receiver(simulator);
    link.connectReceiver(&receiver);

    CallbackEvent send([&] { link.sendFlit(makeFlit(1), 3); });
    simulator.schedule(send, nanoseconds(100));
    simulator.runToCompletion();

    ASSERT_EQ(receiver.arrivals.size(), 1u);
    EXPECT_EQ(receiver.arrivals[0].when, nanoseconds(260));
    EXPECT_EQ(receiver.arrivals[0].index, 1);
    EXPECT_EQ(receiver.arrivals[0].vc, 3);
}

TEST(Link, PreservesOrderUnderBackToBackSends)
{
    Simulator simulator;
    Link link(simulator, nanoseconds(80), "test");
    CapturingReceiver receiver(simulator);
    link.connectReceiver(&receiver);

    CallbackEvent send([&] {
        for (int i = 0; i < 5; ++i)
            link.sendFlit(makeFlit(i), 0);
    });
    simulator.schedule(send, 0);
    simulator.runToCompletion();

    ASSERT_EQ(receiver.arrivals.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(receiver.arrivals[static_cast<std::size_t>(i)].index,
                  i);
        EXPECT_EQ(receiver.arrivals[static_cast<std::size_t>(i)].when,
                  nanoseconds(80));
    }
}

TEST(Link, StaggeredSendsKeepSpacing)
{
    Simulator simulator;
    Link link(simulator, nanoseconds(80), "test");
    CapturingReceiver receiver(simulator);
    link.connectReceiver(&receiver);

    CallbackEvent first([&] { link.sendFlit(makeFlit(0), 0); });
    CallbackEvent second([&] { link.sendFlit(makeFlit(1), 0); });
    simulator.schedule(first, nanoseconds(0));
    simulator.schedule(second, nanoseconds(80));
    simulator.runToCompletion();

    ASSERT_EQ(receiver.arrivals.size(), 2u);
    EXPECT_EQ(receiver.arrivals[0].when, nanoseconds(80));
    EXPECT_EQ(receiver.arrivals[1].when, nanoseconds(160));
}

TEST(Link, CreditsFlowWithSameDelay)
{
    Simulator simulator;
    Link link(simulator, nanoseconds(80), "test");
    CapturingCredits credits(simulator);
    link.connectCreditReceiver(&credits);

    CallbackEvent send([&] {
        link.sendCredit(2);
        link.sendCredit(5);
    });
    simulator.schedule(send, nanoseconds(20));
    simulator.runToCompletion();

    ASSERT_EQ(credits.credits.size(), 2u);
    EXPECT_EQ(credits.credits[0].when, nanoseconds(100));
    EXPECT_EQ(credits.credits[0].vc, 2);
    EXPECT_EQ(credits.credits[1].vc, 5);
}

TEST(Link, ZeroDelayDeliversSameTick)
{
    Simulator simulator;
    Link link(simulator, 0, "test");
    CapturingReceiver receiver(simulator);
    link.connectReceiver(&receiver);

    CallbackEvent send([&] { link.sendFlit(makeFlit(7), 1); });
    simulator.schedule(send, nanoseconds(40));
    simulator.runToCompletion();
    ASSERT_EQ(receiver.arrivals.size(), 1u);
    EXPECT_EQ(receiver.arrivals[0].when, nanoseconds(40));
}

TEST(Link, CountsTransmittedFlits)
{
    Simulator simulator;
    Link link(simulator, nanoseconds(80), "test");
    CapturingReceiver receiver(simulator);
    link.connectReceiver(&receiver);
    CallbackEvent send([&] {
        for (int i = 0; i < 3; ++i)
            link.sendFlit(makeFlit(i), 0);
    });
    simulator.schedule(send, 0);
    simulator.runToCompletion();
    EXPECT_EQ(link.flitRate().count(), 3u);
}

TEST(Link, ExposesNameAndDelay)
{
    Simulator simulator;
    Link link(simulator, nanoseconds(80), "inj0");
    EXPECT_EQ(link.name(), "inj0");
    EXPECT_EQ(link.delay(), nanoseconds(80));
}

} // namespace
