/**
 * @file
 * Tests for the flit tracer: ring semantics, filtering, and the
 * record sequence a message leaves across a network.
 */

#include <vector>

#include <gtest/gtest.h>

#include "network/network.hh"
#include "sim/tracer.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::sim;
using namespace mediaworm::network;

TraceRecord
entry(Tick when, StreamId stream = StreamId(1))
{
    TraceRecord record;
    record.when = when;
    record.stream = stream;
    return record;
}

TEST(Tracer, RetainsInOrder)
{
    Tracer tracer(8);
    for (int i = 0; i < 5; ++i)
        tracer.record(entry(i));
    EXPECT_EQ(tracer.size(), 5u);
    std::vector<Tick> times;
    tracer.forEach([&](const TraceRecord& r) {
        times.push_back(r.when);
    });
    EXPECT_EQ(times, (std::vector<Tick>{0, 1, 2, 3, 4}));
}

TEST(Tracer, RingEvictsOldest)
{
    Tracer tracer(4);
    for (int i = 0; i < 10; ++i)
        tracer.record(entry(i));
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.totalRecorded(), 10u);
    std::vector<Tick> times;
    tracer.forEach([&](const TraceRecord& r) {
        times.push_back(r.when);
    });
    EXPECT_EQ(times, (std::vector<Tick>{6, 7, 8, 9}));
}

TEST(Tracer, FilterAcceptsOnlyChosenStream)
{
    Tracer tracer(8);
    EXPECT_TRUE(tracer.accepts(StreamId(1)));
    tracer.filterStream(StreamId(7));
    EXPECT_TRUE(tracer.accepts(StreamId(7)));
    EXPECT_FALSE(tracer.accepts(StreamId(8)));
}

TEST(Tracer, ClearKeepsTotals)
{
    Tracer tracer(4);
    tracer.record(entry(1));
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.totalRecorded(), 1u);
}

TEST(Tracer, ToStringShowsPointNames)
{
    Tracer tracer(4);
    TraceRecord record = entry(nanoseconds(80));
    record.point = TracePoint::RouterArrive;
    tracer.record(record);
    const std::string text = tracer.toString();
    EXPECT_NE(text.find("router-arrive"), std::string::npos);
    EXPECT_NE(text.find("80.000ns"), std::string::npos);
}

TEST(TracerIntegration, MessageLeavesCompleteLifecycle)
{
    Simulator simulator;
    config::RouterConfig cfg;
    config::NetworkConfig net_cfg;
    MetricsHub metrics;
    Rng rng(3);
    Network net(simulator, cfg, net_cfg, metrics, rng);

    Tracer tracer(1024);
    net.attachTracer(tracer);

    traffic::MessageDesc desc;
    desc.stream = StreamId(9);
    desc.dest = NodeId(4);
    desc.cls = router::TrafficClass::Vbr;
    desc.vcLane = 1;
    desc.vtick = microseconds(8);
    desc.numFlits = 3;
    desc.endOfFrame = true;
    net.ni(0).injectMessage(desc);
    simulator.runToCompletion();

    // 1 host-inject + 3 launches + 3 arrivals + 3 departures +
    // 3 ejects.
    EXPECT_EQ(tracer.totalRecorded(), 13u);

    std::vector<TracePoint> header_path;
    tracer.forEach([&](const TraceRecord& record) {
        EXPECT_EQ(record.stream, StreamId(9));
        if (record.flitIndex <= 0)
            header_path.push_back(record.point);
    });
    EXPECT_EQ(header_path,
              (std::vector<TracePoint>{
                  TracePoint::HostInject, TracePoint::NetworkLaunch,
                  TracePoint::RouterArrive, TracePoint::RouterDepart,
                  TracePoint::Eject}));

    // Timestamps are monotone along the header's path.
    Tick last = -1;
    tracer.forEach([&](const TraceRecord& record) {
        if (record.flitIndex <= 0) {
            EXPECT_GE(record.when, last);
            last = record.when;
        }
    });
}

TEST(TracerIntegration, StreamFilterDropsOtherTraffic)
{
    Simulator simulator;
    config::RouterConfig cfg;
    config::NetworkConfig net_cfg;
    MetricsHub metrics;
    Rng rng(3);
    Network net(simulator, cfg, net_cfg, metrics, rng);

    Tracer tracer(1024);
    tracer.filterStream(StreamId(1));
    net.attachTracer(tracer);

    for (int stream = 0; stream < 4; ++stream) {
        traffic::MessageDesc desc;
        desc.stream = StreamId(stream);
        desc.dest = NodeId(5);
        desc.vcLane = stream % cfg.numVcs;
        desc.vtick = microseconds(8);
        desc.numFlits = 3;
        net.ni(stream % 4).injectMessage(desc);
    }
    simulator.runToCompletion();

    EXPECT_EQ(tracer.totalRecorded(), 13u);
    tracer.forEach([&](const TraceRecord& record) {
        EXPECT_EQ(record.stream, StreamId(1));
    });
}

} // namespace
