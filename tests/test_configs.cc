/**
 * @file
 * Unit tests for the configuration structs, their derived values and
 * their validation (user errors must fatal() with exit code 1).
 */

#include <gtest/gtest.h>

#include "config/network_config.hh"
#include "config/router_config.hh"
#include "config/traffic_config.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::config;
using mediaworm::sim::kMicrosecond;
using mediaworm::sim::kMillisecond;
using mediaworm::sim::nanoseconds;

// --- RouterConfig -----------------------------------------------------------

TEST(RouterConfig, PaperDefaultsAreTable1)
{
    RouterConfig cfg;
    EXPECT_EQ(cfg.numPorts, 8);
    EXPECT_EQ(cfg.numVcs, 16);
    EXPECT_EQ(cfg.flitBufferDepth, 20);
    EXPECT_EQ(cfg.flitSizeBits, 32);
    EXPECT_EQ(cfg.linkBandwidthMbps, 400);
    EXPECT_EQ(cfg.scheduler, SchedulerKind::VirtualClock);
    EXPECT_EQ(cfg.crossbar, CrossbarKind::Multiplexed);
    cfg.validate(); // must not exit
}

TEST(RouterConfig, CycleTimeIsFlitSerialization)
{
    RouterConfig cfg;
    EXPECT_EQ(cfg.cycleTime(), nanoseconds(80));
    cfg.linkBandwidthMbps = 100;
    EXPECT_EQ(cfg.cycleTime(), nanoseconds(320));
}

TEST(RouterConfig, FlitsPerSecond)
{
    RouterConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.flitsPerSecond(), 12.5e6);
}

TEST(RouterConfig, DescribeMentionsKeyKnobs)
{
    RouterConfig cfg;
    const std::string text = cfg.describe();
    EXPECT_NE(text.find("8x8"), std::string::npos);
    EXPECT_NE(text.find("16 VCs"), std::string::npos);
    EXPECT_NE(text.find("virtual-clock"), std::string::npos);
}

TEST(RouterConfigDeath, RejectsBadPortCount)
{
    RouterConfig cfg;
    cfg.numPorts = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "numPorts");
}

TEST(RouterConfigDeath, RejectsBadVcCount)
{
    RouterConfig cfg;
    cfg.numVcs = 500;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "numVcs");
}

TEST(RouterConfigDeath, RejectsBadBuffers)
{
    RouterConfig cfg;
    cfg.flitBufferDepth = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "flitBufferDepth");
}

TEST(RouterConfigDeath, RejectsBadPipeline)
{
    RouterConfig cfg;
    cfg.headerPipelineCycles = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "pipeline");
}

TEST(RouterConfig, EnumNames)
{
    EXPECT_STREQ(toString(SchedulerKind::Fifo), "fifo");
    EXPECT_STREQ(toString(SchedulerKind::VirtualClock),
                 "virtual-clock");
    EXPECT_STREQ(toString(SchedulerKind::RoundRobin), "round-robin");
    EXPECT_STREQ(toString(SchedulerKind::WeightedRoundRobin),
                 "weighted-rr");
    EXPECT_STREQ(toString(CrossbarKind::Full), "full");
    EXPECT_STREQ(toString(CrossbarKind::Multiplexed), "multiplexed");
}

// --- TrafficConfig -----------------------------------------------------------

TEST(TrafficConfig, PaperStreamRateIs4Mbps)
{
    TrafficConfig cfg;
    EXPECT_NEAR(cfg.streamRateMbps(), 4.04, 0.05);
}

TEST(TrafficConfig, VtickIsInverseFlitRate)
{
    TrafficConfig cfg;
    // ~4.04 Mbps over 32-bit flits = ~126k flits/s -> ~7.9 us.
    const double vtick_us =
        static_cast<double>(cfg.streamVtick(32)) / kMicrosecond;
    EXPECT_NEAR(vtick_us, 7.92, 0.1);
}

TEST(TrafficConfig, VtickScalesWithFlitSize)
{
    TrafficConfig cfg;
    EXPECT_NEAR(static_cast<double>(cfg.streamVtick(64)),
                2.0 * static_cast<double>(cfg.streamVtick(32)), 2.0);
}

TEST(TrafficConfig, DefaultsValidate)
{
    TrafficConfig cfg;
    cfg.validate();
    EXPECT_EQ(cfg.frameInterval, 33 * kMillisecond);
    EXPECT_EQ(cfg.streamPlacement, StreamPlacement::Balanced);
}

TEST(TrafficConfigDeath, RejectsBadLoad)
{
    TrafficConfig cfg;
    cfg.inputLoad = -0.1;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "inputLoad");
}

TEST(TrafficConfigDeath, RejectsBadMix)
{
    TrafficConfig cfg;
    cfg.realTimeFraction = 1.5;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "realTimeFraction");
}

TEST(TrafficConfigDeath, RejectsOneFlitMessages)
{
    TrafficConfig cfg;
    cfg.messageFlits = 1;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "flits");
}

TEST(TrafficConfig, DescribeMentionsMix)
{
    TrafficConfig cfg;
    cfg.realTimeFraction = 0.8;
    const std::string text = cfg.describe();
    EXPECT_NE(text.find("80:20"), std::string::npos);
}

// --- NetworkConfig ------------------------------------------------------------

TEST(NetworkConfig, SingleSwitchNodesEqualPorts)
{
    NetworkConfig cfg;
    EXPECT_EQ(cfg.totalNodes(8), 8);
    cfg.validate(8);
}

TEST(NetworkConfig, FatMeshNodeCount)
{
    NetworkConfig cfg;
    cfg.topology = TopologyKind::FatMesh;
    cfg.meshWidth = 2;
    cfg.meshHeight = 2;
    cfg.endpointsPerSwitch = 4;
    EXPECT_EQ(cfg.totalNodes(8), 16);
    cfg.validate(8); // 4 endpoints + 2 neighbours * 2 fat links = 8
}

TEST(NetworkConfigDeath, RejectsPortOverflow)
{
    NetworkConfig cfg;
    cfg.topology = TopologyKind::FatMesh;
    cfg.meshWidth = 3; // middle column has 3 neighbours
    cfg.meshHeight = 2;
    cfg.endpointsPerSwitch = 4;
    EXPECT_EXIT(cfg.validate(8), testing::ExitedWithCode(1), "port");
}

TEST(NetworkConfigDeath, RejectsSingleSwitchMesh)
{
    NetworkConfig cfg;
    cfg.topology = TopologyKind::FatMesh;
    cfg.meshWidth = 1;
    cfg.meshHeight = 1;
    EXPECT_EXIT(cfg.validate(8), testing::ExitedWithCode(1),
                "2 switches");
}

TEST(NetworkConfig, DescribeBothTopologies)
{
    NetworkConfig cfg;
    EXPECT_NE(cfg.describe().find("single switch"), std::string::npos);
    cfg.topology = TopologyKind::FatMesh;
    EXPECT_NE(cfg.describe().find("fat-mesh"), std::string::npos);
}

TEST(NetworkConfig, EnumNames)
{
    EXPECT_STREQ(toString(TopologyKind::SingleSwitch), "single-switch");
    EXPECT_STREQ(toString(FatLinkPolicy::LeastLoaded), "least-loaded");
    EXPECT_STREQ(toString(StreamPlacement::Balanced), "balanced");
    EXPECT_STREQ(toString(StreamPlacement::UniformRandom),
                 "uniform-random");
    EXPECT_STREQ(toString(RealTimeKind::MpegGop), "mpeg-gop");
}

} // namespace
