/**
 * @file
 * Unit tests for batched per-sink event dispatch and lazy-tick
 * elision (DESIGN.md section 13).
 *
 * The contract under test: with batching on, the kernel makes one
 * BatchSink::fireBatch() call per (tick, sink) group but fires the
 * members in exactly the same (when, seq) order as the legacy
 * per-event loop - including events inserted mid-batch, events that
 * migrated from the far (heap) tier into the calendar ring, and
 * batches split by a run() horizon. LazyTick must elide only wakeups
 * that are provable no-ops and credit them at the times the legacy
 * path would have fired them.
 */

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace {

using namespace mediaworm::sim;

/** A batch sink that logs the firing order of its labeled events. */
class RecordingSink final : public BatchSink
{
  public:
    struct LabeledEvent final : Event
    {
        RecordingSink* sink = nullptr;
        int label = 0;
        void fire() override { sink->fired(label); }
        const char* name() const override { return "LabeledEvent"; }
    };

    explicit RecordingSink(Simulator& sim) : sim_(sim) {}

    /** Makes event @p i of this sink carry @p label. */
    LabeledEvent&
    event(std::size_t i, int label)
    {
        LabeledEvent& e = events_.at(i);
        e.sink = this;
        e.label = label;
        e.setBatchSink(this, 0);
        return e;
    }

    void
    fireBatch(Event& first) override
    {
        ++batches_;
        Event* e = &first;
        do {
            e->fire();
            e = sim_.nextBatchMember(this);
        } while (e != nullptr);
    }

    void
    fired(int label)
    {
        order_.push_back({sim_.now(), label});
    }

    const std::vector<std::pair<Tick, int>>& order() const
    {
        return order_;
    }
    int batches() const { return batches_; }

  private:
    Simulator& sim_;
    // Fixed storage: events are intrusive queue nodes and must never
    // move while scheduled.
    std::array<LabeledEvent, 16> events_;
    std::vector<std::pair<Tick, int>> order_;
    int batches_ = 0;
};

TEST(BatchedDispatch, CoalescesSameTickEventsIntoOneBatch)
{
    Simulator sim;
    RecordingSink sink(sim);
    for (int i = 0; i < 8; ++i)
        sim.schedule(sink.event(static_cast<std::size_t>(i), i), 100);
    sim.runToCompletion();

    EXPECT_EQ(sink.batches(), 1);
    ASSERT_EQ(sink.order().size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(sink.order()[static_cast<std::size_t>(i)],
                  (std::pair<Tick, int>{100, i}));
    }
    EXPECT_EQ(sim.eventsFired(), 8u);
}

TEST(BatchedDispatch, ForeignEventEndsTheBatch)
{
    Simulator sim;
    RecordingSink a(sim);
    RecordingSink b(sim);
    sim.schedule(a.event(0, 0), 50);
    sim.schedule(b.event(0, 100), 50);
    sim.schedule(a.event(1, 1), 50);
    sim.runToCompletion();

    // Schedule order fixes the seq order a(0), b(100), a(1): sink a's
    // first batch must stop at b's event, then a second batch fires
    // a(1) - coalescing never reorders across a foreign member.
    EXPECT_EQ(a.batches(), 2);
    EXPECT_EQ(b.batches(), 1);
    ASSERT_EQ(a.order().size(), 2u);
    EXPECT_EQ(a.order()[0].second, 0);
    EXPECT_EQ(a.order()[1].second, 1);
}

/**
 * Service order is (when, seq) even when members entered through
 * different tiers: events scheduled far in the future live in the
 * heap tier until the clock approaches, then migrate into the
 * calendar ring. Batching must not disturb the total order around
 * that crossing.
 */
TEST(BatchedDispatch, PreservesServiceOrderAcrossTierCrossings)
{
    Simulator sim;
    RecordingSink sink(sim);
    // Far beyond the calendar ring's span (2^22 ticks), so these
    // start in the heap tier ...
    const Tick far = Tick{1} << 26;
    sim.schedule(sink.event(0, 0), far);
    sim.schedule(sink.event(1, 1), far);
    // ... while these start in the near ring.
    sim.schedule(sink.event(2, 2), 10);
    sim.schedule(sink.event(3, 3), 10);
    sim.runToCompletion();

    ASSERT_EQ(sink.order().size(), 4u);
    EXPECT_EQ(sink.order()[0], (std::pair<Tick, int>{10, 2}));
    EXPECT_EQ(sink.order()[1], (std::pair<Tick, int>{10, 3}));
    EXPECT_EQ(sink.order()[2], (std::pair<Tick, int>{far, 0}));
    EXPECT_EQ(sink.order()[3], (std::pair<Tick, int>{far, 1}));
    EXPECT_EQ(sink.batches(), 2);
}

/**
 * A batch split by a run() horizon (the PDES shard window boundary)
 * must fire members at the horizon and hold everything later,
 * resuming in order on the next window.
 */
TEST(BatchedDispatch, RunHorizonSplitsBatchInOrder)
{
    Simulator sim;
    RecordingSink sink(sim);
    sim.schedule(sink.event(0, 0), 100);
    sim.schedule(sink.event(1, 1), 100);
    sim.schedule(sink.event(2, 2), 101);

    sim.run(100);
    ASSERT_EQ(sink.order().size(), 2u);
    EXPECT_EQ(sink.order()[0].second, 0);
    EXPECT_EQ(sink.order()[1].second, 1);

    sim.run(200);
    ASSERT_EQ(sink.order().size(), 3u);
    EXPECT_EQ(sink.order()[2], (std::pair<Tick, int>{101, 2}));
}

/** A sink whose first event schedules a same-tick sibling mid-batch. */
class SelfExtendingSink final : public BatchSink
{
  public:
    explicit SelfExtendingSink(Simulator& sim) : sim_(sim)
    {
        for (int i = 0; i < 3; ++i) {
            events_[static_cast<std::size_t>(i)].sink = this;
            events_[static_cast<std::size_t>(i)].label = i;
            events_[static_cast<std::size_t>(i)].setBatchSink(this, 0);
        }
    }

    struct LabeledEvent final : Event
    {
        SelfExtendingSink* sink = nullptr;
        int label = 0;
        void fire() override { sink->fired(label); }
        const char* name() const override { return "SelfExtending"; }
    };

    void
    fireBatch(Event& first) override
    {
        Event* e = &first;
        do {
            e->fire();
            e = sim_.nextBatchMember(this);
        } while (e != nullptr);
    }

    void
    fired(int label)
    {
        order_.push_back(label);
        if (label == 0)
            sim_.schedule(events_[2], sim_.now()); // same tick, new seq
    }

    LabeledEvent events_[3];
    std::vector<int> order_;

  private:
    Simulator& sim_;
};

TEST(BatchedDispatch, MidBatchInsertionFiresWithinTheBatch)
{
    Simulator sim;
    SelfExtendingSink sink(sim);
    sim.schedule(sink.events_[0], 100);
    sim.schedule(sink.events_[1], 100);
    sim.runToCompletion();

    // Event 2 is scheduled while 0 fires, so its seq places it after
    // 1; pulling members off the live queue picks it up in exactly
    // that position.
    EXPECT_EQ(sink.order_, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(sim.eventsFired(), 3u);
}

// --- LazyTick ---------------------------------------------------------------

TEST(LazyTick, ElidedWakeupIsCreditedByRunAtItsDueTime)
{
    Simulator sim;
    CallbackEvent wakeup([] { FAIL() << "elided wakeup must not fire"; });
    LazyTick tick;

    tick.arm(sim, wakeup, 5, /*maskEmpty=*/true);
    EXPECT_TRUE(tick.busy());
    EXPECT_TRUE(tick.pending());
    EXPECT_TRUE(sim.queue().empty());

    // Not yet due: the wakeup stays pending across an earlier run ...
    struct Drain final : LazyDrain
    {
        LazyTick* t;
        std::uint64_t flushLazy(Tick until) override
        {
            return t->flush(until);
        }
        bool lazyPending() const override { return t->pending(); }
    } drain;
    drain.t = &tick;
    sim.addLazyDrain(&drain);

    sim.run(4);
    EXPECT_TRUE(tick.pending());
    EXPECT_EQ(sim.eventsFired(), 0u);

    // ... and is credited as a fired no-op once the window covers it.
    sim.run(10);
    EXPECT_FALSE(tick.pending());
    EXPECT_EQ(sim.eventsFired(), 1u);
    EXPECT_EQ(sim.elidedEvents(), 1u);
}

TEST(LazyTick, KickBeforeDueTimeRematerializesAtExactPosition)
{
    Simulator sim;
    std::vector<int> order;
    CallbackEvent wakeup([&] { order.push_back(0); });
    LazyTick tick;

    // Reserve the wakeup's seq first, then schedule a later rival at
    // the same tick: the rematerialized wakeup must still fire first.
    tick.arm(sim, wakeup, 5, /*maskEmpty=*/true);
    CallbackEvent rival([&] { order.push_back(1); });
    sim.schedule(rival, 5);

    EXPECT_FALSE(tick.kick(sim, wakeup)); // still ahead: rearmed
    EXPECT_TRUE(tick.busy());
    EXPECT_FALSE(tick.pending());

    sim.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(sim.eventsFired(), 2u);
    EXPECT_EQ(sim.elidedEvents(), 0u);
}

TEST(LazyTick, KickAfterDueKeyCreditsAndServesInline)
{
    Simulator sim;
    LazyTick tick;
    CallbackEvent wakeup([] { FAIL() << "credited wakeup must not fire"; });

    bool kicked_ready = false;
    CallbackEvent trigger([&] {
        // At this point the firing event's seq is beyond the
        // wakeup's reserved seq (same tick, reserved earlier), so the
        // legacy path would already have fired the no-op wakeup:
        // kick() credits it and tells the caller to serve inline.
        kicked_ready = tick.kick(sim, wakeup);
    });
    tick.arm(sim, wakeup, 5, /*maskEmpty=*/true);
    sim.schedule(trigger, 5);
    sim.runToCompletion();

    EXPECT_TRUE(kicked_ready);
    EXPECT_FALSE(tick.busy());
    EXPECT_EQ(sim.eventsFired(), 2u); // trigger + credited wakeup
    EXPECT_EQ(sim.elidedEvents(), 1u);
}

TEST(LazyTick, DisabledBatchingFallsBackToRealSchedule)
{
    Simulator sim;
    sim.setBatchedDispatch(false);
    int fired = 0;
    CallbackEvent wakeup([&] { ++fired; });
    LazyTick tick;
    tick.arm(sim, wakeup, 5, /*maskEmpty=*/true);
    EXPECT_FALSE(tick.pending()); // really scheduled, not elided
    sim.runToCompletion();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.elidedEvents(), 0u);
}

} // namespace
