/**
 * @file
 * Unit tests for strong identifiers and the logging level gate.
 */

#include <unordered_set>

#include <gtest/gtest.h>

#include "sim/ids.hh"
#include "sim/logging.hh"

namespace {

using namespace mediaworm::sim;

TEST(StrongId, DefaultIsInvalid)
{
    NodeId id;
    EXPECT_FALSE(id.valid());
    EXPECT_EQ(id.value(), -1);
}

TEST(StrongId, ExplicitValueIsValid)
{
    NodeId id(5);
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.value(), 5);
}

TEST(StrongId, ComparesByValue)
{
    EXPECT_EQ(NodeId(3), NodeId(3));
    EXPECT_NE(NodeId(3), NodeId(4));
    EXPECT_LT(NodeId(3), NodeId(4));
}

TEST(StrongId, DistinctTagsAreDistinctTypes)
{
    static_assert(!std::is_same_v<NodeId, PortId>);
    static_assert(!std::is_same_v<StreamId, VcId>);
    SUCCEED();
}

TEST(StrongId, Hashable)
{
    std::unordered_set<StreamId> set;
    set.insert(StreamId(1));
    set.insert(StreamId(2));
    set.insert(StreamId(1));
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(StreamId(2)));
    EXPECT_FALSE(set.contains(StreamId(3)));
}

TEST(Logging, LevelGateIsAdjustable)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    // Suppressed calls must be safe no-ops.
    warn("suppressed %d", 1);
    inform("suppressed %s", "too");
    debug("suppressed");
    setLogLevel(original);
    EXPECT_EQ(logLevel(), original);
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("user error %d", 42),
                testing::ExitedWithCode(1), "user error 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("bug %s", "here"), "bug here");
}

TEST(LoggingDeath, AssertMacroPanicsWithLocation)
{
    EXPECT_DEATH(MW_ASSERT(1 == 2), "assertion '1 == 2' failed");
}

} // namespace
