/**
 * @file
 * Parameterized property sweeps over the whole system: for every
 * admissible operating point the network must drain, conserve
 * frames, and deliver at the frame period; and every (scheduler,
 * crossbar) combination must satisfy the same invariants.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::core;

ExperimentConfig
sweepConfig()
{
    ExperimentConfig cfg;
    cfg.traffic.warmupFrames = 1;
    cfg.traffic.measuredFrames = 3;
    cfg.timeScale = 0.05;
    return cfg;
}

// --- Load x mix sweep ---------------------------------------------------------

class LoadMixSweep
    : public testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(LoadMixSweep, DrainsAndDeliversEveryFrame)
{
    const auto [load, rt_fraction] = GetParam();
    ExperimentConfig cfg = sweepConfig();
    cfg.traffic.inputLoad = load;
    cfg.traffic.realTimeFraction = rt_fraction;

    const ExperimentResult result = runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    if (result.rtStreams > 0) {
        EXPECT_EQ(result.framesDelivered,
                  static_cast<std::uint64_t>(result.rtStreams) * 4);
    }
}

TEST_P(LoadMixSweep, MeanPeriodHoldsAtAdmissibleLoads)
{
    const auto [load, rt_fraction] = GetParam();
    if (load > 0.85)
        GTEST_SKIP() << "period drift is legitimate near saturation";
    ExperimentConfig cfg = sweepConfig();
    cfg.traffic.inputLoad = load;
    cfg.traffic.realTimeFraction = rt_fraction;

    const ExperimentResult result = runExperiment(cfg);
    if (result.rtStreams == 0)
        GTEST_SKIP() << "no real-time component";
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 1.0)
        << "load " << load << " mix " << rt_fraction;
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, LoadMixSweep,
    testing::Combine(testing::Values(0.3, 0.6, 0.8, 0.96),
                     testing::Values(0.0, 0.5, 0.8, 1.0)));

// --- Scheduler x crossbar sweep ---------------------------------------------------

class MechanismSweep
    : public testing::TestWithParam<
          std::tuple<config::SchedulerKind, config::CrossbarKind>>
{
};

TEST_P(MechanismSweep, EveryMechanismDeliversCorrectly)
{
    const auto [scheduler, crossbar] = GetParam();
    ExperimentConfig cfg = sweepConfig();
    cfg.router.scheduler = scheduler;
    cfg.router.crossbar = crossbar;
    cfg.router.numVcs = 8;
    cfg.traffic.inputLoad = 0.7;
    cfg.traffic.realTimeFraction = 0.8;

    const ExperimentResult result = runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.framesDelivered,
              static_cast<std::uint64_t>(result.rtStreams) * 4);
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, MechanismSweep,
    testing::Combine(
        testing::Values(config::SchedulerKind::Fifo,
                        config::SchedulerKind::RoundRobin,
                        config::SchedulerKind::VirtualClock,
                        config::SchedulerKind::WeightedRoundRobin),
        testing::Values(config::CrossbarKind::Multiplexed,
                        config::CrossbarKind::Full)));

// --- Seed sweep: determinism and seed sensitivity -----------------------------------

class SeedSweep : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, RunsAreReproducible)
{
    ExperimentConfig cfg = sweepConfig();
    cfg.traffic.inputLoad = 0.6;
    cfg.traffic.realTimeFraction = 0.8;
    cfg.traffic.measuredFrames = 2;
    cfg.seed = GetParam();

    const ExperimentResult a = runExperiment(cfg);
    const ExperimentResult b = runExperiment(cfg);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_DOUBLE_EQ(a.meanIntervalMs, b.meanIntervalMs);
    EXPECT_DOUBLE_EQ(a.stddevIntervalMs, b.stddevIntervalMs);
    EXPECT_DOUBLE_EQ(a.beLatencyUs, b.beLatencyUs);
    EXPECT_EQ(a.flitsDelivered, b.flitsDelivered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(1u, 7u, 42u, 1234567u));

// --- Message size sweep --------------------------------------------------------------

class MessageSizeSweep : public testing::TestWithParam<int>
{
};

TEST_P(MessageSizeSweep, AnyMessageSizeDrains)
{
    ExperimentConfig cfg = sweepConfig();
    cfg.traffic.inputLoad = 0.6;
    cfg.traffic.realTimeFraction = 1.0;
    cfg.traffic.messageFlits = GetParam();

    const ExperimentResult result = runExperiment(cfg);
    EXPECT_FALSE(result.truncated);
    EXPECT_NEAR(result.meanIntervalNormMs, 33.0, 1.0);
}

// messageFlits = 2 is excluded: with one header per payload flit the
// effective load doubles (Section 5.5's overhead effect) and 0.6
// offered saturates the link - covered by the test below instead.
INSTANTIATE_TEST_SUITE_P(Sizes, MessageSizeSweep,
                         testing::Values(3, 8, 20, 64, 200));

TEST(MessageSizeOverhead, TwoFlitMessagesSaturateAtModerateLoad)
{
    ExperimentConfig cfg = sweepConfig();
    cfg.traffic.inputLoad = 0.6;
    cfg.traffic.realTimeFraction = 1.0;
    cfg.traffic.messageFlits = 2; // 100% header overhead
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_GT(result.meanIntervalNormMs, 34.0)
        << "header overhead should have saturated the link";
}

} // namespace
