/**
 * @file
 * Unit tests for the network-calculus subsystem: curve arithmetic
 * against hand-computed fixtures, envelope construction, the route
 * model, the oracle's structural properties, SLA admission, and the
 * v3 campaign-artifact round trip.
 *
 * The end-to-end soundness check (simulated worst-case delay <=
 * analytic bound across paper operating points) lives in the
 * separate, slower mediaworm_calculus_tests executable (ctest label
 * "calculus").
 */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "calculus/curves.hh"
#include "calculus/oracle.hh"
#include "calculus/route_model.hh"
#include "calculus/sla_admission.hh"
#include "campaign/artifact.hh"
#include "campaign/json.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "sim/random.hh"
#include "traffic/admission.hh"
#include "traffic/traffic_mix.hh"

namespace {

using namespace mediaworm;
using namespace mediaworm::calculus;

// --------------------------------------------------------------
// Curve arithmetic, hand-computed.
// --------------------------------------------------------------

TEST(Curves, AggregateAddsSigmaAndRho)
{
    const ArrivalCurve sum =
        aggregate({10.0, 2.0}, {5.0, 0.5});
    EXPECT_DOUBLE_EQ(sum.sigmaFlits, 15.0);
    EXPECT_DOUBLE_EQ(sum.rhoFlitsPerUs, 2.5);
    EXPECT_DOUBLE_EQ(sum.at(4.0), 25.0);
}

TEST(Curves, ConvolveIsMinRateSumLatency)
{
    const ServiceCurve tandem =
        convolve({4.0, 1.5}, {6.0, 0.5});
    EXPECT_DOUBLE_EQ(tandem.rateFlitsPerUs, 4.0);
    EXPECT_DOUBLE_EQ(tandem.latencyUs, 2.0);

    // No guarantee anywhere on the path means none end to end.
    EXPECT_FALSE(convolve({4.0, 1.5}, ServiceCurve::none())
                     .guarantees());
    EXPECT_FALSE(convolve(ServiceCurve::none(), {4.0, 1.5})
                     .guarantees());
}

TEST(Curves, ResidualHandComputed)
{
    // C = 10 flits/us shared with cross traffic (5 flits, 4
    // flits/us): leftover rate 6, latency 5/6 plus the 0.5 us fixed
    // pipeline.
    const ServiceCurve left = residual(10.0, {5.0, 4.0}, 0.5);
    EXPECT_DOUBLE_EQ(left.rateFlitsPerUs, 6.0);
    EXPECT_DOUBLE_EQ(left.latencyUs, 5.0 / 6.0 + 0.5);
}

TEST(Curves, ResidualSaturatedIsNone)
{
    EXPECT_FALSE(residual(10.0, {1.0, 10.0}, 0.0).guarantees());
    EXPECT_FALSE(residual(10.0, {1.0, 12.0}, 0.0).guarantees());
}

TEST(Curves, SingleHopDelayBound)
{
    // D = T + sigma / R = 1.5 + 12/4.
    EXPECT_DOUBLE_EQ(delayBoundUs({12.0, 2.0}, {4.0, 1.5}), 4.5);
    // rho > R: the queue grows without bound.
    EXPECT_EQ(delayBoundUs({12.0, 5.0}, {4.0, 1.5}), kUnbounded);
    EXPECT_EQ(delayBoundUs({12.0, 2.0}, ServiceCurve::none()),
              kUnbounded);
}

TEST(Curves, TwoHopPaysTheBurstOnlyOnce)
{
    // Convolving first then bounding charges sigma/R once; bounding
    // each hop separately charges it twice. Both are valid but the
    // convolved bound is strictly better here:
    //   e2e:     D = (1.5 + 0.5) + 12/4          = 5
    //   per-hop: D = (1.5 + 12/4) + (0.5 + 12/6) = 7
    const ArrivalCurve flow{12.0, 2.0};
    const ServiceCurve hop1{4.0, 1.5};
    const ServiceCurve hop2{6.0, 0.5};
    const double e2e = delayBoundUs(flow, convolve(hop1, hop2));
    const double per_hop =
        delayBoundUs(flow, hop1) + delayBoundUs(flow, hop2);
    EXPECT_DOUBLE_EQ(e2e, 5.0);
    EXPECT_DOUBLE_EQ(per_hop, 7.0);
    EXPECT_LT(e2e, per_hop);
}

TEST(Curves, BacklogBound)
{
    // B = sigma + rho * T = 12 + 2 * 1.5.
    EXPECT_DOUBLE_EQ(backlogBoundFlits({12.0, 2.0}, {4.0, 1.5}),
                     15.0);
    EXPECT_EQ(backlogBoundFlits({12.0, 5.0}, {4.0, 1.5}),
              kUnbounded);
}

// --------------------------------------------------------------
// Source envelopes.
// --------------------------------------------------------------

TEST(Envelope, CbrRateIsTheMeanRate)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.realTimeKind = config::RealTimeKind::Cbr;
    const StreamEnvelope env =
        rtStreamEnvelope(router, traffic, OracleConfig{});
    // CBR frames are exactly the mean size: auto margin is zero.
    EXPECT_DOUBLE_EQ(env.curve.rhoFlitsPerUs,
                     env.meanRateFlitsPerUs);
    EXPECT_GE(env.curve.sigmaFlits, env.maxMessageFlits);
    EXPECT_GT(env.meanRateFlitsPerUs, 0.0);
}

TEST(Envelope, VbrCarriesMarginAndLargerBurst)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.realTimeKind = config::RealTimeKind::Cbr;
    const StreamEnvelope cbr =
        rtStreamEnvelope(router, traffic, OracleConfig{});
    traffic.realTimeKind = config::RealTimeKind::Vbr;
    const StreamEnvelope vbr =
        rtStreamEnvelope(router, traffic, OracleConfig{});

    EXPECT_GT(vbr.curve.rhoFlitsPerUs, cbr.curve.rhoFlitsPerUs);
    EXPECT_GT(vbr.curve.sigmaFlits, cbr.curve.sigmaFlits);
}

TEST(Envelope, SigmaGrowsWithBurstSigmas)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.realTimeKind = config::RealTimeKind::Vbr;
    OracleConfig narrow;
    narrow.burstSigmas = 2.0;
    OracleConfig wide;
    wide.burstSigmas = 6.0;
    EXPECT_LT(rtStreamEnvelope(router, traffic, narrow)
                  .curve.sigmaFlits,
              rtStreamEnvelope(router, traffic, wide)
                  .curve.sigmaFlits);
}

// --------------------------------------------------------------
// Route model.
// --------------------------------------------------------------

TEST(RouteModel, SingleSwitchRouteHasTwoPoints)
{
    config::RouterConfig router;
    config::NetworkConfig net;
    const Route route = routeOf(router, net, 0, 5);
    ASSERT_EQ(route.size(), 2u);
    EXPECT_EQ(route[0].key, -1); // injection point of node 0
    EXPECT_EQ(route[0].discipline, router.injectionScheduler);
    EXPECT_EQ(route[1].discipline, router.scheduler);
    const double cap = linkCapacityFlitsPerUs(router);
    EXPECT_DOUBLE_EQ(route[0].capacityFlitsPerUs, cap);
    EXPECT_DOUBLE_EQ(route[1].capacityFlitsPerUs, cap);
    EXPECT_EQ(routerHops(net, 0, 5), 1);
}

TEST(RouteModel, StreamsToSameDestinationShareTheOutputPoint)
{
    config::RouterConfig router;
    config::NetworkConfig net;
    const Route a = routeOf(router, net, 0, 5);
    const Route b = routeOf(router, net, 1, 5);
    const Route c = routeOf(router, net, 0, 6);
    EXPECT_EQ(a.back().key, b.back().key);
    EXPECT_NE(a.back().key, c.back().key);
    EXPECT_NE(a.front().key, b.front().key);
}

TEST(RouteModel, FatMeshRouteLengthMatchesManhattanDistance)
{
    config::RouterConfig router;
    config::NetworkConfig net;
    net.topology = config::TopologyKind::FatMesh;
    net.validate(router.numPorts);
    // 2x2 mesh, 4 endpoints per switch: node 0 is on switch 0, node
    // 15 on switch 3 (diagonal, Manhattan distance 2).
    EXPECT_EQ(routerHops(net, 0, 1), 1);  // same switch
    EXPECT_EQ(routerHops(net, 0, 7), 2);  // adjacent switch
    EXPECT_EQ(routerHops(net, 0, 15), 3); // diagonal
    // Route = injection + one output point per traversed router.
    EXPECT_EQ(routeOf(router, net, 0, 1).size(), 2u);
    EXPECT_EQ(routeOf(router, net, 0, 7).size(), 3u);
    EXPECT_EQ(routeOf(router, net, 0, 15).size(), 4u);
}

// --------------------------------------------------------------
// Oracle structural properties.
// --------------------------------------------------------------

/** Plans the mix exactly as runExperiment(seed) would. */
traffic::MixPlan
planLike(const config::RouterConfig& router,
         const config::TrafficConfig& traffic, int num_nodes,
         std::uint64_t seed)
{
    sim::Rng root(seed);
    sim::Rng net_rng = root.split();
    (void)net_rng;
    sim::Rng mix_rng = root.split();
    return traffic::planMix(router, traffic, num_nodes, mix_rng);
}

TEST(Oracle, AdmissibleVirtualClockMixIsFullyBounded)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.inputLoad = 0.8;
    traffic.realTimeFraction = 0.8;
    const traffic::MixPlan plan =
        planLike(router, traffic, router.numPorts, 1);
    ASSERT_FALSE(plan.streams.empty());

    OracleConfig oracle;
    oracle.enabled = true;
    const BoundsReport report = computeBounds(
        router, traffic, config::NetworkConfig{}, plan.streams,
        oracle);
    ASSERT_EQ(report.streams.size(), plan.streams.size());
    EXPECT_TRUE(report.allBounded());
    EXPECT_GT(report.maxBoundUs, 0.0);
    // Streams are sorted and addressable by id.
    for (std::size_t i = 1; i < report.streams.size(); ++i) {
        EXPECT_LT(report.streams[i - 1].stream.value(),
                  report.streams[i].stream.value());
    }
    const StreamBound* found = report.find(plan.streams[0].id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->stream, plan.streams[0].id);
    EXPECT_EQ(report.find(sim::StreamId(999999)), nullptr);
}

TEST(Oracle, SaturatedFifoLoadHasNoFiniteBound)
{
    config::RouterConfig router;
    router.scheduler = config::SchedulerKind::Fifo;
    config::TrafficConfig traffic;
    traffic.inputLoad = 1.0;
    traffic.realTimeFraction = 0.8;
    const traffic::MixPlan plan =
        planLike(router, traffic, router.numPorts, 1);

    const BoundsReport report = computeBounds(
        router, traffic, config::NetworkConfig{}, plan.streams);
    EXPECT_GT(report.unboundedStreams, 0);
    EXPECT_FALSE(report.allBounded());
}

TEST(Oracle, CompetingStreamRaisesTheBound)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    const sim::Tick vtick = traffic.streamVtick(router.flitSizeBits);

    auto stream = [&](int id, int src, int dst) {
        traffic::Stream s;
        s.id = sim::StreamId(id);
        s.src = sim::NodeId(src);
        s.dst = sim::NodeId(dst);
        s.cls = router::TrafficClass::Vbr;
        s.vcLane = 0;
        s.vtick = vtick;
        s.frameInterval = traffic.frameInterval;
        return s;
    };

    // Suppress best-effort so only the crafted streams interfere.
    traffic.realTimeFraction = 1.0;
    config::NetworkConfig net;
    const std::vector<traffic::Stream> alone{stream(0, 0, 1)};
    const std::vector<traffic::Stream> contended{
        stream(0, 0, 1), stream(1, 2, 1), stream(2, 3, 1)};

    const BoundsReport solo =
        computeBounds(router, traffic, net, alone);
    const BoundsReport shared =
        computeBounds(router, traffic, net, contended);
    ASSERT_TRUE(solo.streams[0].bounded);
    ASSERT_TRUE(shared.streams[0].bounded);
    // The competitors share stream 0's destination output port.
    EXPECT_GT(shared.streams[0].boundUs, solo.streams[0].boundUs);
}

TEST(Oracle, WiderBurstContractLoosensBounds)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    traffic.inputLoad = 0.6;
    const traffic::MixPlan plan =
        planLike(router, traffic, router.numPorts, 1);

    OracleConfig narrow;
    narrow.burstSigmas = 2.0;
    OracleConfig wide;
    wide.burstSigmas = 6.0;
    const BoundsReport tight = computeBounds(
        router, traffic, config::NetworkConfig{}, plan.streams,
        narrow);
    const BoundsReport loose = computeBounds(
        router, traffic, config::NetworkConfig{}, plan.streams,
        wide);
    ASSERT_EQ(tight.streams.size(), loose.streams.size());
    for (std::size_t i = 0; i < tight.streams.size(); ++i) {
        if (!tight.streams[i].bounded)
            continue;
        EXPECT_LE(tight.streams[i].boundUs,
                  loose.streams[i].boundUs);
    }
}

TEST(Oracle, DeterministicHashUnchangedByTheOracle)
{
    core::ExperimentConfig cfg;
    cfg.traffic.warmupFrames = 0;
    cfg.traffic.measuredFrames = 2;
    cfg.timeScale = 0.02;

    core::ExperimentConfig with = cfg;
    with.calculus.enabled = true;

    const core::ExperimentResult off = core::runExperiment(cfg);
    const core::ExperimentResult on = core::runExperiment(with);
    EXPECT_EQ(off.deterministicHash(), on.deterministicHash());
    EXPECT_EQ(off.bounds, nullptr);
    ASSERT_NE(on.bounds, nullptr);
    EXPECT_EQ(on.bounds->streams.size(),
              static_cast<std::size_t>(on.rtStreams));
}

// --------------------------------------------------------------
// SLA admission.
// --------------------------------------------------------------

TEST(SlaAdmissionTest, LooseSlaAdmitsTightSlaVetoes)
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    config::NetworkConfig net;
    const sim::Tick vtick = traffic.streamVtick(router.flitSizeBits);

    traffic::Stream stream;
    stream.id = sim::StreamId(0);
    stream.src = sim::NodeId(0);
    stream.dst = sim::NodeId(1);
    stream.cls = router::TrafficClass::Vbr;
    stream.vcLane = 0;
    stream.vtick = vtick;
    stream.frameInterval = traffic.frameInterval;

    SlaAdmission loose(router, traffic, net, /*sla_us=*/1e9);
    EXPECT_TRUE(loose.permits(stream));

    SlaAdmission tight(router, traffic, net, /*sla_us=*/1e-3);
    EXPECT_FALSE(tight.permits(stream));

    // Wired into the controller, the veto surfaces as a rejection.
    const traffic::VcPartition partition =
        traffic::partitionVcs(router.numVcs, 0.8);
    traffic::AdmissionController controller(router, partition,
                                            router.numPorts);
    controller.setAnalyticAdmission(&tight);
    EXPECT_FALSE(controller.tryAdmit(stream));
    EXPECT_EQ(controller.rejected(), 1u);

    controller.setAnalyticAdmission(&loose);
    EXPECT_TRUE(controller.tryAdmit(stream));
    EXPECT_EQ(loose.admitted().size(), 1u);
    EXPECT_TRUE(loose.report().allBounded());

    controller.release(stream);
    EXPECT_TRUE(loose.admitted().empty());
}

// --------------------------------------------------------------
// Campaign artifact: schema v3 round trip, v2 compatibility,
// parser failure modes.
// --------------------------------------------------------------

TEST(ArtifactV3, RoundTripsThroughTheParser)
{
    core::ExperimentConfig base;
    base.traffic.warmupFrames = 0;
    base.traffic.measuredFrames = 2;
    base.timeScale = 0.02;
    base.obs.telemetry.enabled = true;
    base.calculus.enabled = true;

    core::Sweep sweep(base);
    sweep.addLoadAxis({0.5});
    sweep.run();

    const std::string text = sweep.toJson("round-trip", false);
    const campaign::JsonParseResult parsed =
        campaign::parseJson(text);
    ASSERT_TRUE(parsed.ok) << parsed.error << " at byte "
                           << parsed.position;

    const campaign::JsonValue& doc = parsed.value;
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->string,
              campaign::kArtifactSchema);

    const campaign::JsonValue* points = doc.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_TRUE(points->isArray());
    ASSERT_EQ(points->array.size(), 1u);

    const campaign::JsonValue& point = points->array[0];
    const campaign::JsonValue* bounds = point.find("bounds");
    ASSERT_NE(bounds, nullptr) << "v3 point lacks a bounds member";
    const campaign::JsonValue* per_stream =
        bounds->find("per_stream");
    ASSERT_NE(per_stream, nullptr);
    ASSERT_TRUE(per_stream->isArray());
    EXPECT_EQ(static_cast<double>(per_stream->array.size()),
              bounds->find("streams")->number);

    // With telemetry present every row carries the observed worst
    // delay, and the observed value respects the bound.
    for (const campaign::JsonValue& row : per_stream->array) {
        const campaign::JsonValue* bound = row.find("bound_us");
        const campaign::JsonValue* seen =
            row.find("observed_worst_us");
        ASSERT_NE(bound, nullptr);
        ASSERT_NE(seen, nullptr);
        if (!bound->isNull())
            EXPECT_LE(seen->number, bound->number);
    }
}

TEST(ArtifactV2, LegacyDocumentStillParses)
{
    // A minimal v2 document (no "bounds" member): readers address
    // members by name, so the v3 reader accepts it unchanged.
    const std::string v2 = R"({
  "schema": "mediaworm-campaign-v2",
  "name": "legacy",
  "root_seed": 1,
  "replications": 1,
  "points": [
    {
      "label": "load=0.80",
      "metrics": {
        "mean_interval_norm_ms":
          {"mean": 33.0, "stddev": 0, "ci95": 0, "n": 1}
      },
      "counts": {"rt_streams": 8},
      "telemetry": {"window_ms": 13.2, "streams": []}
    }
  ]
})";
    const campaign::JsonParseResult parsed = campaign::parseJson(v2);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const campaign::JsonValue& doc = parsed.value;
    EXPECT_EQ(doc.find("schema")->string, "mediaworm-campaign-v2");
    const campaign::JsonValue& point =
        doc.find("points")->array[0];
    EXPECT_EQ(point.find("bounds"), nullptr);
    EXPECT_DOUBLE_EQ(
        point.find("metrics")
            ->find("mean_interval_norm_ms")
            ->find("mean")
            ->number,
        33.0);
}

TEST(JsonParser, ReportsMalformedDocuments)
{
    EXPECT_FALSE(campaign::parseJson("").ok);
    EXPECT_FALSE(campaign::parseJson("{").ok);
    EXPECT_FALSE(campaign::parseJson(R"({"a":})").ok);
    EXPECT_FALSE(campaign::parseJson(R"({"a":1} trailing)").ok);
    EXPECT_FALSE(campaign::parseJson(R"(["unterminated)").ok);
    EXPECT_FALSE(campaign::parseJson(R"(["bad \x escape"])").ok);
    EXPECT_FALSE(campaign::parseJson("1.2.3").ok);
    EXPECT_FALSE(campaign::parseJson("[1,]").ok);

    // Depth guard: 80 nested arrays exceed the 64-scope limit.
    std::string deep;
    for (int i = 0; i < 80; ++i)
        deep += '[';
    EXPECT_FALSE(campaign::parseJson(deep).ok);

    const campaign::JsonParseResult bad =
        campaign::parseJson(R"({"a": 1,})");
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());
    EXPECT_GT(bad.position, 0u);
}

TEST(JsonParser, AcceptsWriterOutputConstructs)
{
    const campaign::JsonParseResult parsed = campaign::parseJson(
        R"({"null": null, "t": true, "f": false,)"
        R"( "num": -1.25e3, "esc": "a\n\"bA",)"
        R"( "arr": [1, 2, 3], "empty": {}, "earr": []})");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const campaign::JsonValue& doc = parsed.value;
    EXPECT_TRUE(doc.find("null")->isNull());
    EXPECT_TRUE(doc.find("t")->boolean);
    EXPECT_FALSE(doc.find("f")->boolean);
    EXPECT_DOUBLE_EQ(doc.find("num")->number, -1250.0);
    EXPECT_EQ(doc.find("esc")->string, "a\n\"bA");
    EXPECT_EQ(doc.find("arr")->array.size(), 3u);
    EXPECT_TRUE(doc.find("empty")->isObject());
    EXPECT_TRUE(doc.find("earr")->array.empty());
}

} // namespace
