#include "traffic/frame_source.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mediaworm::traffic {

namespace {

/**
 * MPEG group-of-pictures size multipliers for a 12-frame
 * IBBPBBPBBPBB pattern, normalised to mean 1.0. I frames are large,
 * P frames medium, B frames small; used by the MpegGop extension.
 */
constexpr double kGopPattern[12] = {
    2.4, 0.6, 0.6, 1.2, 0.6, 0.6, 1.2, 0.6, 0.6, 1.2, 0.6, 0.6,
};
constexpr int kGopLength = 12;

} // namespace

FrameSource::FrameSource(sim::Simulator& simulator, const Stream& stream,
                         const config::TrafficConfig& cfg,
                         int flit_size_bits, Injector& injector,
                         sim::Rng rng)
    : simulator_(simulator), stream_(stream), injector_(injector),
      rng_(rng), flitBytes_(flit_size_bits / 8),
      messageFlits_(cfg.messageFlits),
      totalFrames_(cfg.warmupFrames + cfg.measuredFrames),
      anchorTail_(cfg.anchorFrameTail),
      event_(this, "FrameSource")
{
    MW_ASSERT(flit_size_bits % 8 == 0);
    // The header flit carries routing/Vtick information, not payload
    // (its overhead is what Section 5.5 quantifies).
    payloadBytesPerMessage_ = (messageFlits_ - 1) * flitBytes_;

    const int nominal_messages = std::max(
        1, static_cast<int>(std::ceil(
               cfg.frameBytesMean
               / static_cast<double>(payloadBytesPerMessage_))));
    nominalGap_ = stream_.frameInterval
        / static_cast<sim::Tick>(nominal_messages);

    // Keep pathological tail draws out of the distribution; when a
    // message carries more payload than a mean frame (whole-frame
    // messages), fall back to half the mean as the floor.
    const double floor_bytes =
        std::min(static_cast<double>(payloadBytesPerMessage_),
                 cfg.frameBytesMean * 0.5);
    switch (cfg.realTimeKind) {
      case config::RealTimeKind::Cbr:
        frameBytes_ = std::make_unique<sim::ConstantDistribution>(
            cfg.frameBytesMean);
        break;
      case config::RealTimeKind::Vbr:
        frameBytes_ = std::make_unique<sim::TruncatedNormalDistribution>(
            cfg.frameBytesMean, cfg.frameBytesStddev, floor_bytes);
        break;
      case config::RealTimeKind::MpegGop:
        // Base size scaled per GoP position; add VBR noise on top.
        frameBytes_ = std::make_unique<sim::TruncatedNormalDistribution>(
            cfg.frameBytesMean, cfg.frameBytesStddev / 2.0,
            floor_bytes);
        gopMode_ = true;
        break;
    }
}

void
FrameSource::start()
{
    frame_ = 0;
    frameStart_ = simulator_.now() + stream_.startOffset;
    beginFrame();
}

double
FrameSource::sampleFrameBytes()
{
    double bytes = frameBytes_->sample(rng_);
    if (gopMode_) {
        bytes *= kGopPattern[gopPosition_];
        gopPosition_ = (gopPosition_ + 1) % kGopLength;
    }
    return bytes;
}

void
FrameSource::beginFrame()
{
    const double bytes = sampleFrameBytes();
    messagesThisFrame_ = std::max(
        1, static_cast<int>(std::ceil(
               bytes / static_cast<double>(payloadBytesPerMessage_))));
    const double last_payload = bytes
        - static_cast<double>(messagesThisFrame_ - 1)
            * static_cast<double>(payloadBytesPerMessage_);
    // Header flit + payload flits, never fewer than header + tail.
    lastMessageFlits_ = std::max(
        2, 1 + static_cast<int>(std::ceil(
                   last_payload / static_cast<double>(flitBytes_))));
    messageIndex_ = 0;
    if (anchorTail_ && messagesThisFrame_ > 1) {
        // Spread messages so the frame's last message always lands
        // one nominal gap before the next frame start, decoupling
        // the frame-completion instant from the VBR message count.
        messageGap_ = (stream_.frameInterval - nominalGap_)
            / static_cast<sim::Tick>(messagesThisFrame_ - 1);
    } else {
        messageGap_ = stream_.frameInterval
            / static_cast<sim::Tick>(messagesThisFrame_);
    }
    simulator_.schedule(event_, frameStart_);
}

void
FrameSource::injectNextMessage()
{
    const bool last = messageIndex_ == messagesThisFrame_ - 1;

    MessageDesc desc;
    desc.stream = stream_.id;
    desc.dest = stream_.dst;
    desc.cls = stream_.cls;
    desc.vcLane = stream_.vcLane;
    desc.vtick = stream_.vtick;
    desc.seq = nextSeq_++;
    desc.frame = frame_;
    desc.numFlits = last ? lastMessageFlits_ : messageFlits_;
    desc.endOfFrame = last;
    injector_.injectMessage(desc);

    ++messageIndex_;
    if (!last) {
        simulator_.schedule(event_,
                            frameStart_
                                + static_cast<sim::Tick>(messageIndex_)
                                    * messageGap_);
        return;
    }
    ++frame_;
    if (frame_ < totalFrames_) {
        frameStart_ += stream_.frameInterval;
        beginFrame();
    }
}

} // namespace mediaworm::traffic
