#include "traffic/traffic_mix.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::traffic {

namespace {

/**
 * Fills @p perm with a uniformly random fixed-point-free permutation
 * (rejection-sampled Fisher-Yates; acceptance ~1/e independent of n).
 */
void
randomDerangement(std::vector<int>& perm, sim::Rng& rng)
{
    const int n = static_cast<int>(perm.size());
    MW_ASSERT(n >= 2);
    bool ok = false;
    while (!ok) {
        for (int i = 0; i < n; ++i)
            perm[static_cast<std::size_t>(i)] = i;
        for (int i = n - 1; i > 0; --i) {
            const auto j = static_cast<int>(rng.uniformInt(
                static_cast<std::uint64_t>(i) + 1));
            std::swap(perm[static_cast<std::size_t>(i)],
                      perm[static_cast<std::size_t>(j)]);
        }
        ok = true;
        for (int i = 0; i < n; ++i) {
            if (perm[static_cast<std::size_t>(i)] == i) {
                ok = false;
                break;
            }
        }
    }
}

} // namespace

VcPartition
partitionVcs(int num_vcs, double rt_fraction)
{
    MW_ASSERT(num_vcs >= 1);
    VcPartition part;
    int rt = static_cast<int>(
        std::lround(rt_fraction * static_cast<double>(num_vcs)));
    if (rt_fraction > 0.0)
        rt = std::max(rt, 1);
    if (rt_fraction < 1.0)
        rt = std::min(rt, num_vcs - 1);
    rt = std::clamp(rt, 0, num_vcs);

    part.rtFirst = 0;
    part.rtCount = rt;
    part.beFirst = rt;
    part.beCount = num_vcs - rt;
    return part;
}

MixPlan
planMix(const config::RouterConfig& router,
        const config::TrafficConfig& traffic, int num_nodes,
        sim::Rng& rng)
{
    MW_ASSERT(num_nodes >= 2);
    MixPlan plan;
    plan.partition = partitionVcs(router.numVcs,
                                  traffic.realTimeFraction);

    const double rt_load = traffic.inputLoad * traffic.realTimeFraction;
    const double be_load = traffic.inputLoad - rt_load;
    const double stream_rate = traffic.streamRateMbps();
    const double link_rate = static_cast<double>(
        router.linkBandwidthMbps);

    // Streams each node must source so its injection link carries
    // the real-time share of the input load.
    const int streams_per_node = static_cast<int>(
        std::lround(rt_load * link_rate / stream_rate));
    plan.streamsPerNode = streams_per_node;
    plan.plannedRtLoad = static_cast<double>(streams_per_node)
        * stream_rate / link_rate;

    if (plan.partition.rtCount > 0) {
        // The paper's capacity arithmetic: a VC's bandwidth share is
        // link_rate / numVcs, so it can carry that many streams.
        plan.streamsPerVcCapacity = static_cast<int>(
            link_rate / static_cast<double>(router.numVcs)
            / stream_rate);
    }

    const sim::Tick vtick = traffic.streamVtick(router.flitSizeBits);
    const router::TrafficClass cls =
        traffic.realTimeKind == config::RealTimeKind::Cbr
        ? router::TrafficClass::Cbr
        : router::TrafficClass::Vbr;

    auto finish_stream = [&](Stream& stream) {
        stream.vtick = vtick;
        stream.frameInterval = traffic.frameInterval;
        stream.startOffset = static_cast<sim::Tick>(rng.uniformInt(
            static_cast<std::uint64_t>(traffic.frameInterval)));
        plan.streams.push_back(stream);
    };

    if (streams_per_node > 0)
        MW_ASSERT(plan.partition.rtCount > 0);

    int next_id = 0;
    if (traffic.streamPlacement == config::StreamPlacement::Balanced) {
        // One random derangement per round: every node sources and
        // sinks exactly one stream per round, and the round's lane
        // rotates through the real-time partition, so no output
        // (port, VC) pair is oversubscribed at admissible loads.
        std::vector<int> perm(static_cast<std::size_t>(num_nodes));
        for (int round = 0; round < streams_per_node; ++round) {
            randomDerangement(perm, rng);
            const int lane = plan.partition.rtFirst
                + round % plan.partition.rtCount;
            for (int node = 0; node < num_nodes; ++node) {
                Stream stream;
                stream.id = sim::StreamId(next_id++);
                stream.src = sim::NodeId(node);
                stream.dst = sim::NodeId(
                    perm[static_cast<std::size_t>(node)]);
                stream.cls = cls;
                stream.vcLane = lane;
                finish_stream(stream);
            }
        }
    } else {
        for (int node = 0; node < num_nodes; ++node) {
            for (int s = 0; s < streams_per_node; ++s) {
                Stream stream;
                stream.id = sim::StreamId(next_id++);
                stream.src = sim::NodeId(node);
                const auto draw = static_cast<int>(rng.uniformInt(
                    static_cast<std::uint64_t>(num_nodes - 1)));
                stream.dst =
                    sim::NodeId(draw >= node ? draw + 1 : draw);
                stream.cls = cls;
                stream.vcLane = plan.partition.rtFirst
                    + static_cast<int>(rng.uniformInt(
                          static_cast<std::uint64_t>(
                              plan.partition.rtCount)));
                finish_stream(stream);
            }
        }
    }

    if (be_load > 0.0) {
        if (plan.partition.beCount == 0) {
            sim::fatal("planMix: best-effort load %.2f but no "
                       "best-effort VCs in the partition",
                       be_load);
        }
        // Constant injection rate: messages/s = be_load * link flit
        // rate / message length.
        const double msgs_per_second = be_load
            * router.flitsPerSecond()
            / static_cast<double>(traffic.beMessageFlits);
        plan.beInterval = static_cast<sim::Tick>(std::llround(
            static_cast<double>(sim::kSecond) / msgs_per_second));
        plan.plannedBeLoad = be_load;
    }

    return plan;
}

std::string
MixPlan::describe() const
{
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "%zu RT streams (%d/node, lanes [%d,%d), cap %d/VC), "
                  "BE lanes [%d,%d), BE interval %s",
                  streams.size(), streamsPerNode, partition.rtFirst,
                  partition.rtFirst + partition.rtCount,
                  streamsPerVcCapacity, partition.beFirst,
                  partition.beFirst + partition.beCount,
                  beInterval == sim::kTickNever
                      ? "-"
                      : sim::formatTime(beInterval).c_str());
    return buf;
}

} // namespace mediaworm::traffic
