/**
 * @file
 * Traffic stream and message descriptors.
 */

#ifndef MEDIAWORM_TRAFFIC_STREAM_HH
#define MEDIAWORM_TRAFFIC_STREAM_HH

#include "router/flit.hh"
#include "sim/ids.hh"
#include "sim/time.hh"

namespace mediaworm::traffic {

/**
 * One real-time stream (the paper's "connection"): a long-lived
 * source-destination video flow with a fixed VC lane and a negotiated
 * bandwidth request.
 */
struct Stream
{
    sim::StreamId id;
    sim::NodeId src;
    sim::NodeId dst;
    router::TrafficClass cls = router::TrafficClass::Vbr;

    /**
     * VC lane the stream uses on every link of its path. The paper
     * draws input and destination VCs uniformly from the class
     * partition; we use one lane end-to-end, which preserves the
     * streams-per-VC sharing that Section 5.4 studies.
     */
    int vcLane = 0;

    /** Per-flit service interval the headers advertise. */
    sim::Tick vtick = router::kBestEffortVtick;

    /** Frame period (33 ms at full MPEG-2 scale). */
    sim::Tick frameInterval = 0;

    /** Random phase so streams are not synchronized. */
    sim::Tick startOffset = 0;
};

/** One message handed to a network interface for injection. */
struct MessageDesc
{
    sim::StreamId stream;
    sim::NodeId dest;
    router::TrafficClass cls = router::TrafficClass::BestEffort;
    int vcLane = 0;
    sim::Tick vtick = router::kBestEffortVtick;
    sim::MessageSeq seq = 0;
    sim::FrameSeq frame = 0;
    int numFlits = 2;
    bool endOfFrame = false;
};

/** Destination for injected messages; implemented by the NI. */
class Injector
{
  public:
    virtual ~Injector() = default;

    /** Queues a whole message for transmission at the local node. */
    virtual void injectMessage(const MessageDesc& message) = 0;
};

} // namespace mediaworm::traffic

#endif // MEDIAWORM_TRAFFIC_STREAM_HH
