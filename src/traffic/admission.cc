#include "traffic/admission.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mediaworm::traffic {

AdmissionController::AdmissionController(
    const config::RouterConfig& router, const VcPartition& partition,
    int num_nodes, AdmissionPolicy policy)
    : router_(router), partition_(partition), numNodes_(num_nodes),
      policy_(policy),
      srcLoad_(static_cast<std::size_t>(num_nodes), 0.0),
      dstLoad_(static_cast<std::size_t>(num_nodes), 0.0),
      laneStreams_(static_cast<std::size_t>(num_nodes)
                       * static_cast<std::size_t>(router.numVcs),
                   0)
{
    MW_ASSERT(num_nodes >= 2);
    router_.validate();
    if (policy_.maxRealTimeLoad <= 0.0 || policy_.maxRealTimeLoad > 1.0)
        sim::fatal("AdmissionPolicy: maxRealTimeLoad %.3f out of (0,1]",
                   policy_.maxRealTimeLoad);
    // A lane's bandwidth share is linkRate / numVcs; it carries that
    // many unit-rate streams (Section 4.2.3's "6 connections per VC"
    // at Table 1 parameters).
    laneCapacity_ = 0; // derived lazily per stream rate in tryAdmit
}

double
AdmissionController::streamLoad(const Stream& stream) const
{
    // vtick is the requested per-flit service interval; one flit per
    // vtick against one flit per cycleTime is the load fraction.
    MW_ASSERT(stream.vtick > 0);
    return static_cast<double>(router_.cycleTime())
        / static_cast<double>(stream.vtick);
}

std::size_t
AdmissionController::laneIndex(int node, int lane) const
{
    return static_cast<std::size_t>(node)
        * static_cast<std::size_t>(router_.numVcs)
        + static_cast<std::size_t>(lane);
}

bool
AdmissionController::tryAdmit(const Stream& stream)
{
    const int src = stream.src.value();
    const int dst = stream.dst.value();
    MW_ASSERT(src >= 0 && src < numNodes_);
    MW_ASSERT(dst >= 0 && dst < numNodes_);

    // Rate sanity: a non-positive vtick requests infinite (or
    // undefined) bandwidth, and a vtick below the flit cycle time
    // requests more than the link can carry. Either is a broken
    // request, not a capacity shortage - reject it loudly before it
    // reaches the admission table.
    if (stream.vtick <= 0) {
        sim::warn("AdmissionController: stream %d requests "
                  "non-positive vtick %lld; rejecting",
                  stream.id.value(),
                  static_cast<long long>(stream.vtick));
        ++rejected_;
        return false;
    }
    if (streamLoad(stream) > 1.0) {
        sim::warn("AdmissionController: stream %d requests %.3fx "
                  "link capacity (vtick %lld < cycle %lld); "
                  "rejecting",
                  stream.id.value(), streamLoad(stream),
                  static_cast<long long>(stream.vtick),
                  static_cast<long long>(router_.cycleTime()));
        ++rejected_;
        return false;
    }

    const bool lane_in_partition = stream.vcLane >= partition_.rtFirst
        && stream.vcLane < partition_.rtFirst + partition_.rtCount;
    if (!lane_in_partition || src == dst) {
        ++rejected_;
        return false;
    }

    // Tolerance absorbs floating-point accumulation so a budget
    // that divides evenly by the stream rate fills exactly.
    constexpr double kEpsilon = 1e-9;
    const double load = streamLoad(stream);
    if (srcLoad_[static_cast<std::size_t>(src)] + load
            > policy_.maxRealTimeLoad + kEpsilon
        || dstLoad_[static_cast<std::size_t>(dst)] + load
            > policy_.maxRealTimeLoad + kEpsilon) {
        ++rejected_;
        return false;
    }

    if (policy_.enforceLaneCapacity) {
        // The lane's fair share of the link divided by this stream's
        // rate bounds its connection count.
        const int capacity = static_cast<int>(std::floor(
            1.0 / (static_cast<double>(router_.numVcs) * load)));
        laneCapacity_ = capacity;
        if (laneStreams_[laneIndex(dst, stream.vcLane)] >= capacity) {
            ++rejected_;
            return false;
        }
    }

    // The analytic test runs last: it is the most expensive check
    // and should only see streams the bookkeeping already accepts.
    if (analytic_ != nullptr && !analytic_->permits(stream)) {
        ++rejected_;
        return false;
    }

    srcLoad_[static_cast<std::size_t>(src)] += load;
    dstLoad_[static_cast<std::size_t>(dst)] += load;
    ++laneStreams_[laneIndex(dst, stream.vcLane)];
    ++admitted_;
    ++live_;
    if (analytic_ != nullptr)
        analytic_->committed(stream);
    return true;
}

void
AdmissionController::release(const Stream& stream)
{
    const int src = stream.src.value();
    const int dst = stream.dst.value();
    const double load = streamLoad(stream);
    MW_ASSERT(laneStreams_[laneIndex(dst, stream.vcLane)] > 0);
    srcLoad_[static_cast<std::size_t>(src)] -= load;
    dstLoad_[static_cast<std::size_t>(dst)] -= load;
    --laneStreams_[laneIndex(dst, stream.vcLane)];
    --live_;
    if (analytic_ != nullptr)
        analytic_->released(stream);
}

double
AdmissionController::sourceLoad(int node) const
{
    return srcLoad_[static_cast<std::size_t>(node)];
}

double
AdmissionController::destinationLoad(int node) const
{
    return dstLoad_[static_cast<std::size_t>(node)];
}

int
AdmissionController::laneOccupancy(int node, int lane) const
{
    return laneStreams_[laneIndex(node, lane)];
}

} // namespace mediaworm::traffic
