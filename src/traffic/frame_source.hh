/**
 * @file
 * Real-time (CBR/VBR/MPEG-GoP) frame stream source.
 *
 * Reproduces Section 4.2.1: a stream emits one video frame per frame
 * interval; VBR frame sizes come from Normal(16666 B, 3333 B), CBR
 * frames are constant. Each frame is broken into fixed-size messages
 * (except possibly the last), and the messages of a frame are
 * injected evenly across the frame interval (20-flit messages and
 * ~200 messages per frame give the paper's 165 us message spacing).
 */

#ifndef MEDIAWORM_TRAFFIC_FRAME_SOURCE_HH
#define MEDIAWORM_TRAFFIC_FRAME_SOURCE_HH

#include <memory>

#include "config/traffic_config.hh"
#include "sim/distributions.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "traffic/stream.hh"

namespace mediaworm::traffic {

/** Generates the frames of one real-time stream. */
class FrameSource
{
  public:
    /**
     * @param simulator Owning kernel.
     * @param stream Stream descriptor (route, lane, rate).
     * @param cfg Workload parameters (frame size model, counts).
     * @param flit_size_bits Flit width, to convert bytes to flits.
     * @param injector Local NI that accepts the messages.
     * @param rng Private random stream for frame sizes.
     */
    FrameSource(sim::Simulator& simulator, const Stream& stream,
                const config::TrafficConfig& cfg, int flit_size_bits,
                Injector& injector, sim::Rng rng);

    /** Schedules the first frame at the stream's start offset. */
    void start();

    /** Frames generated so far. */
    int framesGenerated() const { return frame_; }

    /** Total frames this source will generate. */
    int totalFrames() const { return totalFrames_; }

    /** Messages injected so far. */
    sim::MessageSeq messagesInjected() const { return nextSeq_; }

    /** The stream being generated. */
    const Stream& stream() const { return stream_; }

  private:
    void beginFrame();
    void injectNextMessage();

    /** Draws the next frame's payload size in bytes. */
    double sampleFrameBytes();

    sim::Simulator& simulator_;
    Stream stream_;
    Injector& injector_;
    sim::Rng rng_;
    std::unique_ptr<sim::Distribution> frameBytes_;

    int payloadBytesPerMessage_;
    int flitBytes_;
    int messageFlits_;
    int totalFrames_;
    bool anchorTail_;
    sim::Tick nominalGap_ = 0; ///< Frame interval / nominal messages.

    // GoP pattern state (MpegGop kind only).
    bool gopMode_ = false;
    int gopPosition_ = 0;

    // Per-frame injection state.
    int frame_ = 0;
    int messagesThisFrame_ = 0;
    int messageIndex_ = 0;
    int lastMessageFlits_ = 0;
    sim::Tick frameStart_ = 0;
    sim::Tick messageGap_ = 0;
    sim::MessageSeq nextSeq_ = 0;

    sim::MemberFuncEvent<&FrameSource::injectNextMessage> event_;
};

} // namespace mediaworm::traffic

#endif // MEDIAWORM_TRAFFIC_FRAME_SOURCE_HH
