#include "traffic/best_effort_source.hh"

#include "sim/logging.hh"

namespace mediaworm::traffic {

BestEffortSource::BestEffortSource(sim::Simulator& simulator,
                                   sim::StreamId id, sim::NodeId src,
                                   int num_nodes, int message_flits,
                                   sim::Tick interval,
                                   sim::Tick stop_time, int vc_first,
                                   int vc_count, Injector& injector,
                                   sim::Rng rng)
    : simulator_(simulator), id_(id), src_(src), numNodes_(num_nodes),
      messageFlits_(message_flits), interval_(interval),
      stopTime_(stop_time), vcFirst_(vc_first), vcCount_(vc_count),
      injector_(injector), rng_(rng),
      event_(this, "BestEffortSource")
{
    MW_ASSERT(interval > 0);
    MW_ASSERT(vc_count >= 1);
    MW_ASSERT(num_nodes >= 2);
}

void
BestEffortSource::start()
{
    // Random phase so the nodes' constant-rate injectors interleave.
    const sim::Tick phase = static_cast<sim::Tick>(
        rng_.uniformInt(static_cast<std::uint64_t>(interval_)));
    const sim::Tick first = simulator_.now() + phase;
    if (first < stopTime_)
        simulator_.schedule(event_, first);
}

void
BestEffortSource::injectNext()
{
    MessageDesc desc;
    desc.stream = id_;
    desc.cls = router::TrafficClass::BestEffort;
    desc.vtick = router::kBestEffortVtick;
    desc.seq = nextSeq_++;
    desc.numFlits = messageFlits_;
    desc.endOfFrame = false;

    // Uniform destination over all nodes except the source.
    const auto draw = static_cast<int>(
        rng_.uniformInt(static_cast<std::uint64_t>(numNodes_ - 1)));
    const int dest =
        draw >= src_.value() ? draw + 1 : draw;
    desc.dest = sim::NodeId(dest);

    desc.vcLane = vcFirst_
        + static_cast<int>(
              rng_.uniformInt(static_cast<std::uint64_t>(vcCount_)));

    injector_.injectMessage(desc);

    const sim::Tick next = simulator_.now() + interval_;
    if (next < stopTime_)
        simulator_.schedule(event_, next);
}

} // namespace mediaworm::traffic
