/**
 * @file
 * Stream admission control.
 *
 * The paper's conclusions call for "admission control strategies
 * devised to track network load and proportion of different traffic
 * mixes" (Section 6): the router provides soft guarantees only while
 * the offered real-time load stays inside the jitter-free region
 * (~70-80% of PC bandwidth, Section 5), and a VC's bandwidth share
 * bounds how many connections may share it (Section 4.2.3).
 *
 * AdmissionController implements that bookkeeping for a single-switch
 * cluster: per-endpoint source/destination bandwidth budgets, a
 * per-(destination, VC-lane) connection cap, and a separate
 * best-effort share reservation.
 */

#ifndef MEDIAWORM_TRAFFIC_ADMISSION_HH
#define MEDIAWORM_TRAFFIC_ADMISSION_HH

#include <cstdint>
#include <vector>

#include "config/router_config.hh"
#include "traffic/stream.hh"
#include "traffic/traffic_mix.hh"

namespace mediaworm::traffic {

/**
 * Optional analytic admission test consulted after the capacity
 * bookkeeping accepts a stream. Implemented by
 * calculus::SlaAdmission, which re-derives every admitted stream's
 * worst-case delay bound and vetoes requests that would break an
 * SLA; declared here (not in calculus/) so the traffic layer never
 * depends on its analytic clients.
 */
class AnalyticAdmission
{
  public:
    virtual ~AnalyticAdmission() = default;

    /** True when admitting @p stream keeps every guarantee. */
    virtual bool permits(const Stream& stream) const = 0;

    /** @p stream passed all checks and is now live. */
    virtual void committed(const Stream& stream) = 0;

    /** A previously committed @p stream was released. */
    virtual void released(const Stream& stream) = 0;
};

/** Policy knobs for the admission decision. */
struct AdmissionPolicy
{
    /**
     * Largest real-time fraction of each physical channel's
     * bandwidth that may be promised; the paper's measurements put
     * the jitter-free boundary at 0.70-0.80 of link bandwidth.
     */
    double maxRealTimeLoad = 0.75;

    /** Enforce the streams-per-VC capacity bound of Section 4.2.3. */
    bool enforceLaneCapacity = true;
};

/** Accepts or rejects stream requests against capacity bookkeeping. */
class AdmissionController
{
  public:
    /**
     * @param router Link bandwidth and VC geometry.
     * @param partition How lanes are split between classes.
     * @param num_nodes Endpoints sharing the switch.
     * @param policy Thresholds (defaults are the paper's).
     */
    AdmissionController(const config::RouterConfig& router,
                        const VcPartition& partition, int num_nodes,
                        AdmissionPolicy policy = {});

    /**
     * Tries to admit @p stream (a real-time connection request).
     *
     * Checks, in order: the requested rate is sane (positive and at
     * most link capacity - nonsense requests are rejected with a
     * warning before touching the admission table); the lane lies in
     * the real-time partition; the source link's and destination
     * link's real-time budgets can absorb the stream's rate; the
     * destination (port, lane) pair has a free connection slot; and
     * the analytic test, when attached, permits the stream.
     *
     * @return True and records the reservation, or false untouched.
     */
    bool tryAdmit(const Stream& stream);

    /**
     * Attaches (or detaches, with nullptr) an analytic admission
     * test; not owned. tryAdmit() consults it last, so it only sees
     * streams the capacity bookkeeping already accepted.
     */
    void setAnalyticAdmission(AnalyticAdmission* analytic)
    {
        analytic_ = analytic;
    }

    /** Releases a previously admitted stream's reservations. */
    void release(const Stream& stream);

    /** Offered real-time load on @p node's injection link. */
    double sourceLoad(int node) const;

    /** Offered real-time load towards @p node's ejection link. */
    double destinationLoad(int node) const;

    /** Live streams on destination @p node's lane @p lane. */
    int laneOccupancy(int node, int lane) const;

    /** Maximum streams a lane's bandwidth share carries (paper: 6). */
    int laneCapacity() const { return laneCapacity_; }

    /** Requests admitted since construction. */
    std::uint64_t admitted() const { return admitted_; }

    /** Requests rejected since construction. */
    std::uint64_t rejected() const { return rejected_; }

    /** Live (admitted minus released) stream count. */
    int live() const { return live_; }

  private:
    /** Per-flit-rate of one stream as a fraction of link rate. */
    double streamLoad(const Stream& stream) const;

    std::size_t laneIndex(int node, int lane) const;

    config::RouterConfig router_;
    VcPartition partition_;
    int numNodes_;
    AdmissionPolicy policy_;
    AnalyticAdmission* analytic_ = nullptr;
    int laneCapacity_;

    std::vector<double> srcLoad_; ///< Real-time load per source link.
    std::vector<double> dstLoad_; ///< Real-time load per dest link.
    std::vector<int> laneStreams_; ///< Streams per (dest, lane).

    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
    int live_ = 0;
};

} // namespace mediaworm::traffic

#endif // MEDIAWORM_TRAFFIC_ADMISSION_HH
