/**
 * @file
 * Traffic-mix planning (Section 4.2.3).
 *
 * For an x:y real-time-to-best-effort mix at a given input load, the
 * planner splits the VCs of every physical channel into two disjoint
 * partitions, computes how many 4 Mbps streams each node must source
 * to offer the real-time share of the load, assigns each stream a
 * destination and a VC lane (respecting the streams-per-VC capacity
 * arithmetic of the paper), and derives the constant injection rate
 * of the best-effort component.
 */

#ifndef MEDIAWORM_TRAFFIC_TRAFFIC_MIX_HH
#define MEDIAWORM_TRAFFIC_TRAFFIC_MIX_HH

#include <string>
#include <vector>

#include "config/router_config.hh"
#include "config/traffic_config.hh"
#include "sim/random.hh"
#include "traffic/stream.hh"

namespace mediaworm::traffic {

/** How VCs of every physical channel are split between classes. */
struct VcPartition
{
    int rtFirst = 0;  ///< First VC lane reserved for CBR/VBR.
    int rtCount = 0;  ///< Lanes reserved for CBR/VBR.
    int beFirst = 0;  ///< First best-effort lane.
    int beCount = 0;  ///< Best-effort lanes.
};

/** Complete workload plan for one experiment point. */
struct MixPlan
{
    VcPartition partition;

    /** All real-time streams, every node's share included. */
    std::vector<Stream> streams;

    /** Real-time streams sourced per node. */
    int streamsPerNode = 0;

    /** Maximum streams a VC's bandwidth share can carry (paper's
     *  "6 connections per VC" arithmetic); informational. */
    int streamsPerVcCapacity = 0;

    /** Best-effort injection interval per node; kTickNever if the
     *  best-effort share is zero. */
    sim::Tick beInterval = sim::kTickNever;

    /** Offered real-time load actually planned (quantized by the
     *  integer stream count). */
    double plannedRtLoad = 0.0;

    /** Offered best-effort load. */
    double plannedBeLoad = 0.0;

    /** Human-readable plan summary. */
    std::string describe() const;
};

/**
 * Computes the VC partition for a real-time fraction, guaranteeing
 * each present class at least one lane.
 */
VcPartition partitionVcs(int num_vcs, double rt_fraction);

/**
 * Builds the workload plan.
 *
 * @param router Router configuration (VC count, link rate, flits).
 * @param traffic Workload configuration (load, mix, stream model).
 * @param num_nodes Endpoints in the topology.
 * @param rng Random stream for destinations, lanes and phases.
 */
MixPlan planMix(const config::RouterConfig& router,
                const config::TrafficConfig& traffic, int num_nodes,
                sim::Rng& rng);

} // namespace mediaworm::traffic

#endif // MEDIAWORM_TRAFFIC_TRAFFIC_MIX_HH
