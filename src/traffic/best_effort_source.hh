/**
 * @file
 * Best-effort traffic generator (Section 4.2.2).
 *
 * Each node injects fixed-length best-effort messages at a constant
 * rate matching the load share allocated to this class. Destinations
 * and VC lanes (within the best-effort partition) are drawn uniformly
 * per message. Best-effort messages advertise an infinite Vtick.
 */

#ifndef MEDIAWORM_TRAFFIC_BEST_EFFORT_SOURCE_HH
#define MEDIAWORM_TRAFFIC_BEST_EFFORT_SOURCE_HH

#include <vector>

#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "traffic/stream.hh"

namespace mediaworm::traffic {

/** Per-node best-effort injector. */
class BestEffortSource
{
  public:
    /**
     * @param simulator Owning kernel.
     * @param id Stream id used to tag this node's best-effort traffic.
     * @param src This node.
     * @param num_nodes Destination universe (src excluded per draw).
     * @param message_flits Fixed message length.
     * @param interval Time between message injections (constant rate).
     * @param stop_time No messages are injected at or after this time.
     * @param vc_first First VC lane of the best-effort partition.
     * @param vc_count Lanes in the best-effort partition.
     * @param injector Local NI.
     * @param rng Private random stream.
     */
    BestEffortSource(sim::Simulator& simulator, sim::StreamId id,
                     sim::NodeId src, int num_nodes, int message_flits,
                     sim::Tick interval, sim::Tick stop_time,
                     int vc_first, int vc_count, Injector& injector,
                     sim::Rng rng);

    /** Schedules the first injection at a random phase. */
    void start();

    /** Messages injected so far. */
    sim::MessageSeq messagesInjected() const { return nextSeq_; }

  private:
    void injectNext();

    sim::Simulator& simulator_;
    sim::StreamId id_;
    sim::NodeId src_;
    int numNodes_;
    int messageFlits_;
    sim::Tick interval_;
    sim::Tick stopTime_;
    int vcFirst_;
    int vcCount_;
    Injector& injector_;
    sim::Rng rng_;
    sim::MessageSeq nextSeq_ = 0;
    sim::MemberFuncEvent<&BestEffortSource::injectNext> event_;
};

} // namespace mediaworm::traffic

#endif // MEDIAWORM_TRAFFIC_BEST_EFFORT_SOURCE_HH
