#include "pcs/pcs_config.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::pcs {

sim::Tick
PcsConfig::cycleTime() const
{
    return sim::serializationTime(flitSizeBits, linkBandwidthMbps);
}

double
PcsConfig::flitsPerSecond() const
{
    return static_cast<double>(linkBandwidthMbps) * 1e6
        / static_cast<double>(flitSizeBits);
}

void
PcsConfig::validate() const
{
    using sim::fatal;
    if (numPorts < 2 || numPorts > 64)
        fatal("PcsConfig: numPorts %d out of range [2,64]", numPorts);
    if (numVcs < 1 || numVcs > 1024)
        fatal("PcsConfig: numVcs %d out of range [1,1024]", numVcs);
    if (flitBufferDepth < 1)
        fatal("PcsConfig: flitBufferDepth must be >= 1");
    if (flitSizeBits < 1 || linkBandwidthMbps < 1)
        fatal("PcsConfig: invalid link parameters");
    if (pathCycles < 0)
        fatal("PcsConfig: pathCycles must be >= 0");
    if (maxAttemptsPerConnection < 1)
        fatal("PcsConfig: maxAttemptsPerConnection must be >= 1");
}

std::string
PcsConfig::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%dx%d PCS switch, %d VCs/PC, %d Mbps, %s link "
                  "scheduler",
                  numPorts, numPorts, numVcs, linkBandwidthMbps,
                  config::toString(linkScheduler));
    return buf;
}

} // namespace mediaworm::pcs
