#include "pcs/connection_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mediaworm::pcs {

ConnectionTable::ConnectionTable(const PcsConfig& cfg) : cfg_(cfg)
{
    cfg_.validate();
    const auto slots = static_cast<std::size_t>(cfg_.numPorts)
        * static_cast<std::size_t>(cfg_.numVcs);
    srcBusy_.assign(slots, false);
    dstBusy_.assign(slots, false);
}

std::optional<Connection>
ConnectionTable::establish(sim::NodeId src, sim::Tick vtick,
                           sim::Rng& rng)
{
    const int m = cfg_.numVcs;
    const auto src_base = static_cast<std::size_t>(src.value() * m);

    for (int attempt = 0; attempt < cfg_.maxAttemptsPerConnection;
         ++attempt) {
        ++attempts_;

        // Input VC: chosen among the free VCs of the source link
        // ("once the input VC for a connection is determined ...").
        int free_count = 0;
        for (int v = 0; v < m; ++v)
            free_count += !srcBusy_[src_base + static_cast<std::size_t>(v)];
        if (free_count == 0) {
            ++dropped_;
            continue;
        }
        auto pick = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(free_count)));
        int src_vc = -1;
        for (int v = 0; v < m; ++v) {
            if (!srcBusy_[src_base + static_cast<std::size_t>(v)]
                && pick-- == 0) {
                src_vc = v;
                break;
            }
        }

        // Destination and its VC are drawn blindly; a busy VC nacks
        // the probe (no backtracking).
        const auto draw = static_cast<int>(rng.uniformInt(
            static_cast<std::uint64_t>(cfg_.numPorts - 1)));
        const int dst = draw >= src.value() ? draw + 1 : draw;
        const int dst_vc = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(m)));
        const auto dst_slot = static_cast<std::size_t>(dst * m + dst_vc);
        if (dstBusy_[dst_slot]) {
            ++dropped_;
            continue;
        }

        srcBusy_[src_base + static_cast<std::size_t>(src_vc)] = true;
        dstBusy_[dst_slot] = true;
        ++established_;

        Connection connection;
        connection.stream = sim::StreamId(nextStreamId_++);
        connection.src = src;
        connection.dst = sim::NodeId(dst);
        connection.srcVc = src_vc;
        connection.dstVc = dst_vc;
        connection.vtick = vtick;
        connections_.push_back(connection);
        return connection;
    }
    return std::nullopt;
}

void
ConnectionTable::release(const Connection& connection)
{
    const int m = cfg_.numVcs;
    const auto src_slot = static_cast<std::size_t>(
        connection.src.value() * m + connection.srcVc);
    const auto dst_slot = static_cast<std::size_t>(
        connection.dst.value() * m + connection.dstVc);
    MW_ASSERT(srcBusy_[src_slot] && dstBusy_[dst_slot]);
    srcBusy_[src_slot] = false;
    dstBusy_[dst_slot] = false;
    const auto it = std::find_if(
        connections_.begin(), connections_.end(),
        [&](const Connection& c) {
            return c.stream == connection.stream;
        });
    MW_ASSERT(it != connections_.end());
    connections_.erase(it);
}

const Connection*
ConnectionTable::find(sim::StreamId stream) const
{
    for (const Connection& c : connections_) {
        if (c.stream == stream)
            return &c;
    }
    return nullptr;
}

int
ConnectionTable::sourceOccupancy(int node) const
{
    int busy = 0;
    for (int v = 0; v < cfg_.numVcs; ++v)
        busy += srcBusy_[static_cast<std::size_t>(
            node * cfg_.numVcs + v)];
    return busy;
}

int
ConnectionTable::destinationOccupancy(int node) const
{
    int busy = 0;
    for (int v = 0; v < cfg_.numVcs; ++v)
        busy += dstBusy_[static_cast<std::size_t>(
            node * cfg_.numVcs + v)];
    return busy;
}

} // namespace mediaworm::pcs
