#include "pcs/pcs_network.hh"

#include "sim/logging.hh"

namespace mediaworm::pcs {

PcsNetwork::PcsNetwork(sim::Simulator& simulator, const PcsConfig& cfg,
                       network::MetricsHub& metrics)
    : simulator_(simulator), cfg_(cfg), metrics_(metrics),
      cycleTime_(cfg.cycleTime()), table_(cfg)
{
    const int n = cfg_.numPorts;
    const int m = cfg_.numVcs;
    sources_ = std::make_unique<SourceUnit[]>(
        static_cast<std::size_t>(n));
    dests_ = std::make_unique<DestUnit[]>(static_cast<std::size_t>(n));
    destReceivers_ = std::make_unique<DestReceiver[]>(
        static_cast<std::size_t>(n));
    creditReceivers_ = std::make_unique<SourceCreditReceiver[]>(
        static_cast<std::size_t>(n));

    for (int node = 0; node < n; ++node) {
        destReceivers_[static_cast<std::size_t>(node)].init(this, node);
        creditReceivers_[static_cast<std::size_t>(node)].init(this,
                                                              node);

        SourceUnit& su = sources_[static_cast<std::size_t>(node)];
        su.vcs = std::make_unique<SourceVc[]>(
            static_cast<std::size_t>(m));
        su.scheduler = router::makeScheduler(cfg_.linkScheduler);
        su.muxEvent.setCallback([this, node] {
            sources_[static_cast<std::size_t>(node)].muxBusy = false;
            serveSourceMux(node);
        });

        DestUnit& du = dests_[static_cast<std::size_t>(node)];
        du.vcs = std::make_unique<DestVc[]>(static_cast<std::size_t>(m));
        for (int v = 0; v < m; ++v) {
            du.vcs[static_cast<std::size_t>(v)].buffer =
                router::FlitBuffer(
                    static_cast<std::size_t>(cfg_.flitBufferDepth));
        }
        du.scheduler = router::makeScheduler(cfg_.linkScheduler);
        du.muxEvent.setCallback([this, node] {
            dests_[static_cast<std::size_t>(node)].muxBusy = false;
            serveDestMux(node);
        });
    }
    scratch_.reserve(static_cast<std::size_t>(m));
}

void
PcsNetwork::registerConnection(const Connection& connection)
{
    SourceUnit& su =
        sources_[static_cast<std::size_t>(connection.src.value())];
    SourceVc& svc =
        su.vcs[static_cast<std::size_t>(connection.srcVc)];
    MW_ASSERT(!svc.active);

    DestUnit& du =
        dests_[static_cast<std::size_t>(connection.dst.value())];
    DestVc& dvc = du.vcs[static_cast<std::size_t>(connection.dstVc)];
    MW_ASSERT(!dvc.active);

    // One bidirectional circuit segment: data towards the
    // destination, credits back to the source.
    links_.push_back(std::make_unique<router::Link>(
        simulator_,
        static_cast<sim::Tick>(cfg_.pathCycles) * cycleTime_,
        "pcs-conn" + std::to_string(connection.stream.value()),
        router::ChannelIds::forLinkIndex(links_.size())));
    router::Link& link = *links_.back();
    link.connectReceiver(&destReceivers_[static_cast<std::size_t>(
        connection.dst.value())]);
    link.connectCreditReceiver(
        &creditReceivers_[static_cast<std::size_t>(
            connection.src.value())]);

    svc.active = true;
    svc.credits = cfg_.flitBufferDepth;
    svc.dstVc = connection.dstVc;
    svc.link = &link;
    // Connection-oriented Virtual Clock: the reservation persists
    // for the connection's lifetime (unlike MediaWorm's per-message
    // state).
    svc.vclock.beginMessage(connection.vtick);

    dvc.active = true;
    dvc.srcVc = connection.srcVc;
    dvc.link = &link;
    dvc.vclock.beginMessage(connection.vtick);

    const auto index =
        static_cast<std::size_t>(connection.stream.value());
    if (byStream_.size() <= index)
        byStream_.resize(index + 1);
    byStream_[index] = connection;
}

traffic::Stream
PcsNetwork::makeStream(const Connection& connection,
                       const config::TrafficConfig& traffic,
                       sim::Rng& rng) const
{
    traffic::Stream stream;
    stream.id = connection.stream;
    stream.src = connection.src;
    stream.dst = connection.dst;
    stream.cls = traffic.realTimeKind == config::RealTimeKind::Cbr
        ? router::TrafficClass::Cbr
        : router::TrafficClass::Vbr;
    stream.vcLane = connection.srcVc;
    stream.vtick = connection.vtick;
    stream.frameInterval = traffic.frameInterval;
    stream.startOffset = static_cast<sim::Tick>(rng.uniformInt(
        static_cast<std::uint64_t>(traffic.frameInterval)));
    return stream;
}

void
PcsNetwork::injectMessage(const traffic::MessageDesc& message)
{
    const auto index =
        static_cast<std::size_t>(message.stream.value());
    MW_ASSERT(index < byStream_.size());
    const Connection& connection = byStream_[index];

    SourceUnit& su =
        sources_[static_cast<std::size_t>(connection.src.value())];
    SourceVc& svc =
        su.vcs[static_cast<std::size_t>(connection.srcVc)];
    MW_ASSERT(svc.active);

    const sim::Tick now = simulator_.now();
    router::Flit flit;
    flit.cls = message.cls;
    flit.stream = message.stream;
    flit.message = message.seq;
    flit.messageFlits = message.numFlits;
    flit.dest = connection.dst;
    flit.vcLane = connection.srcVc;
    flit.vtick = connection.vtick;
    flit.frame = message.frame;
    flit.injectTime = now;

    for (int i = 0; i < message.numFlits; ++i) {
        flit.index = i;
        flit.type = i == 0 ? router::FlitType::Header
            : i == message.numFlits - 1 ? router::FlitType::Tail
                                        : router::FlitType::Body;
        flit.endOfFrame =
            message.endOfFrame && flit.type == router::FlitType::Tail;
        flit.stamp = svc.vclock.tick(now);
        flit.arrivalSeq = su.nextSeq++;
        svc.queue.push(flit);
    }
    kickSourceMux(connection.src.value());
}

void
PcsNetwork::flitArrived(int node, int vc, const router::Flit& flit)
{
    DestUnit& du = dests_[static_cast<std::size_t>(node)];
    DestVc& dvc = du.vcs[static_cast<std::size_t>(vc)];
    MW_ASSERT(dvc.active);
    MW_ASSERT(!dvc.buffer.full());

    router::Flit stamped = flit;
    stamped.stamp = dvc.vclock.tick(simulator_.now());
    stamped.arrivalSeq = du.nextSeq++;
    dvc.buffer.push(stamped);
    kickDestMux(node);
}

void
PcsNetwork::creditArrived(int node, int vc)
{
    SourceUnit& su = sources_[static_cast<std::size_t>(node)];
    ++su.vcs[static_cast<std::size_t>(vc)].credits;
    kickSourceMux(node);
}

void
PcsNetwork::kickSourceMux(int node)
{
    if (!sources_[static_cast<std::size_t>(node)].muxBusy)
        serveSourceMux(node);
}

void
PcsNetwork::serveSourceMux(int node)
{
    SourceUnit& su = sources_[static_cast<std::size_t>(node)];
    MW_ASSERT(!su.muxBusy);

    scratch_.clear();
    for (int v = 0; v < cfg_.numVcs; ++v) {
        SourceVc& svc = su.vcs[static_cast<std::size_t>(v)];
        if (!svc.active || svc.queue.empty() || svc.credits <= 0)
            continue;
        const router::Flit& head = svc.queue.front();
        scratch_.push_back({v, head.stamp, head.arrivalSeq, head.vtick});
    }
    if (scratch_.empty())
        return;

    const std::size_t winner = su.scheduler->pick(scratch_);
    const int v = scratch_[winner].slot;
    SourceVc& svc = su.vcs[static_cast<std::size_t>(v)];

    const router::Flit flit = svc.queue.pop();
    --svc.credits;
    svc.link->sendFlit(flit, svc.dstVc);

    su.muxBusy = true;
    simulator_.scheduleAfter(su.muxEvent, cycleTime_);
}

void
PcsNetwork::kickDestMux(int node)
{
    if (!dests_[static_cast<std::size_t>(node)].muxBusy)
        serveDestMux(node);
}

void
PcsNetwork::serveDestMux(int node)
{
    DestUnit& du = dests_[static_cast<std::size_t>(node)];
    MW_ASSERT(!du.muxBusy);

    scratch_.clear();
    for (int v = 0; v < cfg_.numVcs; ++v) {
        DestVc& dvc = du.vcs[static_cast<std::size_t>(v)];
        if (!dvc.active || dvc.buffer.empty())
            continue;
        const router::Flit& head = dvc.buffer.front();
        scratch_.push_back({v, head.stamp, head.arrivalSeq, head.vtick});
    }
    if (scratch_.empty())
        return;

    const std::size_t winner = du.scheduler->pick(scratch_);
    const int v = scratch_[winner].slot;
    DestVc& dvc = du.vcs[static_cast<std::size_t>(v)];

    const router::Flit flit = dvc.buffer.pop();
    dvc.link->sendCredit(dvc.srcVc);

    // The flit leaves on the ejection channel now; record delivery.
    const sim::Tick now = simulator_.now();
    ++flitsDelivered_;
    metrics_.recordFlit(flit.stream, now);
    if (flit.isTail()) {
        if (flit.cls == router::TrafficClass::BestEffort) {
            metrics_.recordBeMessage(flit.injectTime, flit.injectTime,
                                     now);
        } else {
            metrics_.recordRtMessage(flit.stream, flit.injectTime,
                                     now);
            if (flit.endOfFrame)
                metrics_.recordFrameDelivery(flit.stream, now);
        }
    }

    du.muxBusy = true;
    simulator_.scheduleAfter(du.muxEvent, cycleTime_);
}

} // namespace mediaworm::pcs
