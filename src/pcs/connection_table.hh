/**
 * @file
 * PCS connection establishment and accounting (Table 3).
 *
 * A connection-establishment probe walks the (single-switch) path
 * reserving one VC per link. The probe's source VC is chosen among
 * the free VCs of the source link; the destination VC is drawn
 * blindly from a uniform distribution over all VCs of the
 * destination link, per the paper's workload description - if that
 * specific VC is busy the probe is nacked and the connection attempt
 * is dropped (deterministic routing, no backtracking, Section 3.5).
 * Dropped attempts retry with fresh draws; every try counts as an
 * attempt. This blind choice is what produces the paper's high drop
 * counts even at modest loads.
 */

#ifndef MEDIAWORM_PCS_CONNECTION_TABLE_HH
#define MEDIAWORM_PCS_CONNECTION_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "pcs/pcs_config.hh"
#include "sim/ids.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace mediaworm::pcs {

/** One established circuit. */
struct Connection
{
    sim::StreamId stream;
    sim::NodeId src;
    sim::NodeId dst;
    int srcVc = -1;  ///< Reserved VC on the source link.
    int dstVc = -1;  ///< Reserved VC on the destination link.
    sim::Tick vtick = 0; ///< Reserved per-flit service interval.
};

/** Tracks VC reservations and attempt statistics. */
class ConnectionTable
{
  public:
    /**
     * @param cfg PCS configuration (ports, VCs, retry budget).
     */
    explicit ConnectionTable(const PcsConfig& cfg);

    /**
     * Attempts to establish a connection from @p src to a uniformly
     * drawn destination, retrying with fresh random choices until a
     * probe succeeds or the per-connection attempt budget runs out.
     *
     * @param src Source endpoint.
     * @param vtick Bandwidth reservation carried by the probe.
     * @param rng Random stream for destination and VC draws.
     * @return The established connection, or nullopt if every
     *         attempt in the budget was dropped.
     */
    std::optional<Connection> establish(sim::NodeId src,
                                        sim::Tick vtick, sim::Rng& rng);

    /** Releases @p connection's VC reservations. */
    void release(const Connection& connection);

    /** Looks up a connection by stream id; nullptr if unknown. */
    const Connection* find(sim::StreamId stream) const;

    /** All live connections. */
    const std::vector<Connection>& connections() const
    {
        return connections_;
    }

    /** Probes sent (every retry counts). */
    std::uint64_t attempts() const { return attempts_; }

    /** Probes that reserved a full path. */
    std::uint64_t established() const { return established_; }

    /** Probes nacked and dropped. */
    std::uint64_t dropped() const { return dropped_; }

    /** Reserved VCs on node @p node's source link. */
    int sourceOccupancy(int node) const;

    /** Reserved VCs on node @p node's destination link. */
    int destinationOccupancy(int node) const;

  private:
    PcsConfig cfg_;
    /** srcBusy_[node*numVcs + vc] - source-link VC reservations. */
    std::vector<bool> srcBusy_;
    /** dstBusy_[node*numVcs + vc] - destination-link reservations. */
    std::vector<bool> dstBusy_;
    std::vector<Connection> connections_;

    std::uint64_t attempts_ = 0;
    std::uint64_t established_ = 0;
    std::uint64_t dropped_ = 0;
    std::int32_t nextStreamId_ = 0;
};

} // namespace mediaworm::pcs

#endif // MEDIAWORM_PCS_CONNECTION_TABLE_HH
