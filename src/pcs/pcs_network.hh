/**
 * @file
 * Single-switch Pipelined Circuit Switching data path (Section 3.5).
 *
 * After a probe reserves a VC on the source and destination links
 * (ConnectionTable), the stream's flits flow along the fixed circuit
 * with no per-hop arbitration. The contended resources are the two
 * physical channels: the source link multiplexes the node's outgoing
 * connections and the destination link multiplexes the connections
 * terminating at that node, each served one flit per cycle under a
 * rate-proportional (Virtual Clock) discipline with the reservation
 * made at setup. Per-connection router buffers apply credit-based
 * backpressure to the source.
 */

#ifndef MEDIAWORM_PCS_PCS_NETWORK_HH
#define MEDIAWORM_PCS_PCS_NETWORK_HH

#include <memory>
#include <vector>

#include "config/traffic_config.hh"
#include "network/metrics.hh"
#include "pcs/connection_table.hh"
#include "pcs/pcs_config.hh"
#include "router/flit.hh"
#include "router/flit_buffer.hh"
#include "router/link.hh"
#include "router/scheduler.hh"
#include "router/virtual_clock.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "traffic/stream.hh"

namespace mediaworm::pcs {

/** The PCS switch plus all endpoint source/sink machinery. */
class PcsNetwork final : public traffic::Injector
{
  public:
    /**
     * @param simulator Owning kernel.
     * @param cfg PCS configuration.
     * @param metrics Shared measurement hub.
     */
    PcsNetwork(sim::Simulator& simulator, const PcsConfig& cfg,
               network::MetricsHub& metrics);

    PcsNetwork(const PcsNetwork&) = delete;
    PcsNetwork& operator=(const PcsNetwork&) = delete;

    /** Probe bookkeeping and VC reservations. */
    ConnectionTable& table() { return table_; }

    /**
     * Wires the queues, buffers and credit loop of an established
     * connection. Must be called once per connection before traffic.
     */
    void registerConnection(const Connection& connection);

    /**
     * Builds the traffic::Stream descriptor driving a FrameSource
     * over @p connection.
     */
    traffic::Stream makeStream(const Connection& connection,
                               const config::TrafficConfig& traffic,
                               sim::Rng& rng) const;

    // traffic::Injector - resolves the connection from the stream id.
    void injectMessage(const traffic::MessageDesc& message) override;

    /** Flits delivered to sinks. */
    std::uint64_t flitsDelivered() const { return flitsDelivered_; }

  private:
    struct SourceVc
    {
        bool active = false;
        router::FlitBuffer queue{0}; // unbounded host queue
        int credits = 0;
        int dstVc = -1;
        router::VirtualClockState vclock;
        router::Link* link = nullptr;
    };

    struct SourceUnit
    {
        std::unique_ptr<SourceVc[]> vcs;
        std::unique_ptr<router::Scheduler> scheduler;
        sim::CallbackEvent muxEvent;
        bool muxBusy = false;
        std::uint64_t nextSeq = 0;
    };

    struct DestVc
    {
        bool active = false;
        router::FlitBuffer buffer;
        int srcVc = -1;
        router::VirtualClockState vclock;
        router::Link* link = nullptr; ///< For credit return.
    };

    struct DestUnit
    {
        std::unique_ptr<DestVc[]> vcs;
        std::unique_ptr<router::Scheduler> scheduler;
        sim::CallbackEvent muxEvent;
        bool muxBusy = false;
        std::uint64_t nextSeq = 0;
    };

    /** Per-node facade receiving flits at the destination link. */
    class DestReceiver final : public router::FlitReceiver
    {
      public:
        void
        init(PcsNetwork* owner, int node)
        {
            owner_ = owner;
            node_ = node;
        }
        void
        receiveFlit(const router::Flit& flit, int vc) override
        {
            owner_->flitArrived(node_, vc, flit);
        }

      private:
        PcsNetwork* owner_ = nullptr;
        int node_ = 0;
    };

    /** Per-node facade receiving credits at the source link. */
    class SourceCreditReceiver final : public router::CreditReceiver
    {
      public:
        void
        init(PcsNetwork* owner, int node)
        {
            owner_ = owner;
            node_ = node;
        }
        void
        creditReturned(int vc) override
        {
            owner_->creditArrived(node_, vc);
        }

      private:
        PcsNetwork* owner_ = nullptr;
        int node_ = 0;
    };

    void flitArrived(int node, int vc, const router::Flit& flit);
    void creditArrived(int node, int vc);
    void kickSourceMux(int node);
    void serveSourceMux(int node);
    void kickDestMux(int node);
    void serveDestMux(int node);

    sim::Simulator& simulator_;
    PcsConfig cfg_;
    network::MetricsHub& metrics_;
    sim::Tick cycleTime_;
    ConnectionTable table_;

    std::unique_ptr<SourceUnit[]> sources_;
    std::unique_ptr<DestUnit[]> dests_;
    std::unique_ptr<DestReceiver[]> destReceivers_;
    std::unique_ptr<SourceCreditReceiver[]> creditReceivers_;
    std::vector<std::unique_ptr<router::Link>> links_;

    /** stream id -> connection (index assigned by ConnectionTable). */
    std::vector<Connection> byStream_;

    std::vector<router::Candidate> scratch_;
    std::uint64_t flitsDelivered_ = 0;
};

} // namespace mediaworm::pcs

#endif // MEDIAWORM_PCS_PCS_NETWORK_HH
