#include "pcs/pcs_experiment.hh"

#include <cmath>
#include <memory>
#include <vector>

#include "network/metrics.hh"
#include "pcs/pcs_network.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "traffic/frame_source.hh"

namespace mediaworm::pcs {

PcsExperimentResult
runPcsExperiment(const PcsExperimentConfig& cfg)
{
    if (cfg.timeScale <= 0.0 || cfg.timeScale > 1.0)
        sim::fatal("runPcsExperiment: timeScale %.3f out of (0,1]",
                   cfg.timeScale);

    config::TrafficConfig traffic = cfg.traffic;
    traffic.frameBytesMean *= cfg.timeScale;
    traffic.frameBytesStddev *= cfg.timeScale;
    traffic.frameInterval = static_cast<sim::Tick>(
        static_cast<double>(traffic.frameInterval) * cfg.timeScale);
    cfg.pcs.validate();
    traffic.validate();

    sim::Simulator simulator(cfg.seed);
    network::MetricsHub metrics;
    PcsNetwork net(simulator, cfg.pcs, metrics);

    // Target concurrent circuits for the offered load: each link
    // carries load * linkRate / streamRate connections.
    const double per_link = cfg.traffic.inputLoad
        * static_cast<double>(cfg.pcs.linkBandwidthMbps)
        / cfg.traffic.streamRateMbps();
    const int target = static_cast<int>(
        std::lround(per_link * static_cast<double>(cfg.pcs.numPorts)));

    PcsExperimentResult result;
    result.connectionsRequested = target;

    const sim::Tick vtick = traffic.streamVtick(cfg.pcs.flitSizeBits);
    sim::Rng setup_rng = simulator.rng().split();

    // Round-robin the sources so every node requests its share of
    // outgoing streams, exactly like the wormhole workload.
    std::vector<Connection> circuits;
    circuits.reserve(static_cast<std::size_t>(target));
    for (int k = 0; k < target; ++k) {
        const sim::NodeId src(k % cfg.pcs.numPorts);
        auto connection = net.table().establish(src, vtick, setup_rng);
        if (connection.has_value()) {
            net.registerConnection(*connection);
            circuits.push_back(*connection);
        }
    }

    // Stream frames over every established circuit.
    sim::Rng stream_rng = simulator.rng().split();
    std::vector<std::unique_ptr<traffic::FrameSource>> sources;
    sources.reserve(circuits.size());
    for (const Connection& connection : circuits) {
        const traffic::Stream stream =
            net.makeStream(connection, traffic, stream_rng);
        sources.push_back(std::make_unique<traffic::FrameSource>(
            simulator, stream, traffic, cfg.pcs.flitSizeBits, net,
            simulator.rng().split()));
        sources.back()->start();
    }

    const sim::Tick warm = static_cast<sim::Tick>(
                               traffic.warmupFrames + 1)
        * traffic.frameInterval;
    sim::CallbackEvent enable_event(
        [&] { metrics.enable(simulator.now()); }, "enableMetrics");
    simulator.schedule(enable_event, warm);

    const sim::Tick horizon = static_cast<sim::Tick>(
                                  traffic.warmupFrames
                                  + traffic.measuredFrames + 1)
        * traffic.frameInterval;
    simulator.run(horizon * 8 + 100 * sim::kMillisecond);

    result.truncated = !simulator.queue().empty();
    if (result.truncated)
        simulator.queue().clear();
    const auto& frames = metrics.frames();
    result.meanIntervalMs = frames.meanIntervalMs();
    result.stddevIntervalMs = frames.stddevIntervalMs();
    result.meanIntervalNormMs = result.meanIntervalMs / cfg.timeScale;
    result.stddevIntervalNormMs =
        result.stddevIntervalMs / cfg.timeScale;
    result.intervalSamples = frames.sampleCount();
    result.framesDelivered = frames.framesDelivered();
    result.attempts = net.table().attempts();
    result.established = net.table().established();
    result.dropped = net.table().dropped();
    result.eventsFired = simulator.eventsFired();
    return result;
}

} // namespace mediaworm::pcs
