/**
 * @file
 * One-call PCS experiment harness (Fig 8 and Table 3).
 */

#ifndef MEDIAWORM_PCS_PCS_EXPERIMENT_HH
#define MEDIAWORM_PCS_PCS_EXPERIMENT_HH

#include <cstdint>

#include "config/traffic_config.hh"
#include "pcs/pcs_config.hh"

namespace mediaworm::pcs {

/** Everything that defines one PCS experiment point. */
struct PcsExperimentConfig
{
    PcsConfig pcs;
    config::TrafficConfig traffic;
    std::uint64_t seed = 1;
    /** Same time-scale compression as core::ExperimentConfig. */
    double timeScale = 0.1;
};

/** Measured outputs of one PCS experiment point. */
struct PcsExperimentResult
{
    double meanIntervalMs = 0.0;
    double stddevIntervalMs = 0.0;
    double meanIntervalNormMs = 0.0;   ///< Re-normalised to 1/timeScale.
    double stddevIntervalNormMs = 0.0; ///< Re-normalised likewise.

    std::uint64_t intervalSamples = 0;
    std::uint64_t framesDelivered = 0;

    int connectionsRequested = 0; ///< Target for the offered load.
    std::uint64_t attempts = 0;   ///< Probes sent (Table 3 col 2).
    std::uint64_t established = 0;///< Circuits set up (col 3).
    std::uint64_t dropped = 0;    ///< Probes nacked (col 4).

    std::uint64_t eventsFired = 0;
    bool truncated = false;
};

/**
 * Establishes enough connections for the offered load (counting
 * every probe attempt), then streams VBR/CBR frames over the
 * circuits and measures delivery-interval statistics.
 */
PcsExperimentResult runPcsExperiment(const PcsExperimentConfig& cfg);

} // namespace mediaworm::pcs

#endif // MEDIAWORM_PCS_PCS_EXPERIMENT_HH
