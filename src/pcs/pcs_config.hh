/**
 * @file
 * Pipelined Circuit Switching router configuration (Sections 3.5 and
 * 5.6 of the paper).
 *
 * The paper's PCS comparison uses an 8x8 switch with 100 Mbps links
 * and 24 VCs per physical channel, one VC per established connection
 * (so 24-25 concurrent 4 Mbps streams saturate a link).
 */

#ifndef MEDIAWORM_PCS_PCS_CONFIG_HH
#define MEDIAWORM_PCS_PCS_CONFIG_HH

#include <string>

#include "config/router_config.hh"
#include "sim/time.hh"

namespace mediaworm::pcs {

/** Static configuration of the PCS system. */
struct PcsConfig
{
    int numPorts = 8;            ///< Switch size (= endpoints).
    int numVcs = 24;             ///< VCs per PC; one per connection.
    int flitBufferDepth = 20;    ///< Per-connection router buffer.
    int flitSizeBits = 32;       ///< Flit width.
    int linkBandwidthMbps = 100; ///< PC bandwidth (paper's Fig 8).

    /** Discipline multiplexing connections onto a link. Connections
     *  have reserved rates, so a rate-proportional scheduler keeps
     *  them jitter-free; Virtual Clock is the natural choice. */
    config::SchedulerKind linkScheduler =
        config::SchedulerKind::VirtualClock;

    /** Path latency a flit pays traversing the switch, in cycles
     *  (the reserved circuit has no per-hop arbitration). */
    int pathCycles = 3;

    /** Attempts allowed per connection before giving up entirely. */
    int maxAttemptsPerConnection = 64;

    /** Flit serialization time on the physical channel. */
    sim::Tick cycleTime() const;

    /** Link payload bandwidth in flits per second. */
    double flitsPerSecond() const;

    /** Aborts via fatal() on out-of-range parameters. */
    void validate() const;

    /** One-line summary. */
    std::string describe() const;
};

} // namespace mediaworm::pcs

#endif // MEDIAWORM_PCS_PCS_CONFIG_HH
