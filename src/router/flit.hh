/**
 * @file
 * Flit and traffic-class definitions.
 *
 * A flit is a plain value: it carries everything the routers need so
 * that the simulator's hot path never allocates. Header flits carry
 * the message's routing and bandwidth request (Vtick), exactly as in
 * the paper's router (Section 3.2); for convenience every flit of a
 * message replicates the descriptor fields.
 */

#ifndef MEDIAWORM_ROUTER_FLIT_HH
#define MEDIAWORM_ROUTER_FLIT_HH

#include <cstdint>
#include <limits>

#include "sim/ids.hh"
#include "sim/time.hh"

namespace mediaworm::router {

/** ATM Forum traffic classes the router differentiates. */
enum class TrafficClass : std::uint8_t {
    Cbr,        ///< Constant bit rate (uncompressed media).
    Vbr,        ///< Variable bit rate (compressed media).
    BestEffort, ///< Everything without real-time requirements.
};

/** True for CBR/VBR traffic that carries a bandwidth request. */
constexpr bool
isRealTime(TrafficClass cls)
{
    return cls != TrafficClass::BestEffort;
}

/** Returns a stable display name for a traffic class. */
const char* toString(TrafficClass cls);

/** Position of a flit within its message. */
enum class FlitType : std::uint8_t {
    Header, ///< First flit; triggers routing and VC allocation.
    Body,   ///< Middle flit; bypasses stages 2-3.
    Tail,   ///< Last flit; releases the held output VC.
};

/**
 * Vtick advertised by best-effort messages: "infinity" (maximum
 * slack, Section 3.3). Kept far from overflow so the Virtual Clock
 * arithmetic can still add it to the wall clock safely.
 */
constexpr sim::Tick kBestEffortVtick =
    std::numeric_limits<sim::Tick>::max() / 4;

/** One flow-control unit. */
struct Flit
{
    FlitType type = FlitType::Header;
    TrafficClass cls = TrafficClass::BestEffort;

    sim::StreamId stream;    ///< Owning stream (connection).
    sim::MessageSeq message = 0; ///< Message number within the stream.
    std::int32_t index = 0;  ///< Flit position within the message.
    std::int32_t messageFlits = 0; ///< Message length (header field).

    sim::NodeId dest;        ///< Destination endpoint.
    std::int32_t vcLane = 0; ///< VC index the stream uses on each link.

    sim::Tick vtick = kBestEffortVtick; ///< Requested service interval.

    sim::FrameSeq frame = 0; ///< Video frame this message belongs to.
    bool endOfFrame = false; ///< Tail of the frame's last message.

    sim::Tick injectTime = 0; ///< Message creation time at the source.
    sim::Tick networkEnterTime = 0; ///< When this flit left its NI.

    /** Virtual Clock timestamp; rewritten at each scheduling point. */
    sim::Tick stamp = 0;
    /** Arrival order at the current scheduling point (FIFO ties). */
    std::uint64_t arrivalSeq = 0;

    /** True for the header flit. */
    bool isHeader() const { return type == FlitType::Header; }
    /** True for the tail flit. */
    bool isTail() const { return type == FlitType::Tail; }
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_FLIT_HH
