/**
 * @file
 * The MediaWorm wormhole router (Section 3 of the paper).
 *
 * Models the five-stage PROUD pipeline as an event-driven network of
 * rate-1-flit-per-cycle servers around the three contention points of
 * Figure 2:
 *
 *   (A) the crossbar input multiplexer (multiplexed crossbars) - one
 *       per input port, serving that port's VCs under the configured
 *       scheduling discipline (Virtual Clock for MediaWorm, FIFO for
 *       the conventional baseline);
 *   (B) the crossbar output port - a capacity-one server per output
 *       port enforcing one flit per cycle through the switch column;
 *   (C) the virtual-channel output multiplexer - one per output
 *       physical channel, sharing link bandwidth among the output
 *       VCs. For full crossbars (which have no input multiplexer)
 *       the configured discipline applies here instead.
 *
 * Wormhole semantics: a header flit traverses stages 1-3 (routing +
 * switch arbitration), then acquires its message's output VC and
 * holds it until the tail flit leaves stage 5. Body flits bypass
 * stages 2-3. Flow control is credit-based on every buffer.
 */

#ifndef MEDIAWORM_ROUTER_WORMHOLE_ROUTER_HH
#define MEDIAWORM_ROUTER_WORMHOLE_ROUTER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "config/router_config.hh"
#include "router/arbiter.hh"
#include "router/flit.hh"
#include "router/flit_buffer.hh"
#include "router/link.hh"
#include "router/ring.hh"
#include "router/virtual_clock.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/tracer.hh"
#include "stats/registry.hh"

namespace mediaworm::router {

/**
 * Output-port candidates for one destination, as produced by a
 * routing function or the routing-policy layer (network/routing.hh).
 *
 * Each candidate pairs an output port with a VC class. Class -1 is
 * the legacy mapping (output VC = the header's vcLane verbatim);
 * class c >= 0 maps the message into the c-th band of the output VCs
 * (out_vc = c * lanes + vcLane % lanes, lanes = numVcs / vcClasses).
 * VC classes are how the deterministic policies stay deadlock-free
 * on wrapped topologies (torus dateline classes) and how adaptive
 * routing keeps its escape subnetwork separate.
 */
struct RouteCandidates
{
    /** How the router picks among multiple candidates. */
    enum class Select : std::uint8_t {
        /** Least-loaded output port (fat channels, Clos up-phase). */
        LeastLoaded,
        /**
         * Candidates 0..count-2 are adaptive choices taken only when
         * their mapped output VC is free right now; the last
         * candidate is the escape route (always grantable order
         * exists because the escape dependency graph is acyclic).
         * Allocation waits therefore only ever happen on escape VCs.
         */
        AdaptiveEscape,
    };

    std::array<int, 4> ports{};
    std::array<std::int8_t, 4> vcClasses{-1, -1, -1, -1};
    int count = 0;
    Select select = Select::LeastLoaded;

    /** Convenience factory for a single-port route. */
    static RouteCandidates
    single(int port, int vc_class = -1)
    {
        RouteCandidates rc;
        rc.ports[0] = port;
        rc.vcClasses[0] = static_cast<std::int8_t>(vc_class);
        rc.count = 1;
        return rc;
    }
};

/** Maps a destination endpoint to candidate output ports. */
using RouteFunction = std::function<RouteCandidates(sim::NodeId dest)>;

/**
 * Precomputed destination -> candidate-ports table, indexed by node
 * id. The fast path for static topologies (single switch, XY-routed
 * fat mesh): header routing becomes one array load instead of a
 * std::function call per header flit.
 */
using RouteTable = std::vector<RouteCandidates>;

/**
 * An 8x8-class pipelined wormhole router with pluggable scheduling.
 *
 * Hot-path organization (DESIGN.md section 13): the router is a
 * sim::BatchSink - all its events carry an opcode and the kernel
 * makes one virtual fireBatch() call per same-tick batch instead of
 * one per event - and a sim::LazyDrain - idle multiplexer wakeups
 * are elided via sim::LazyTick. Per-VC scalars read by the serve
 * loops (output credits, reserved slots, occupancy, Virtual Clock
 * state, allocation bits) live in flat struct-of-arrays members
 * indexed [port * numVcs + vc], so one arbiter round touches a few
 * contiguous cache lines instead of pointer-chasing through fat
 * per-VC structs.
 */
class WormholeRouter : public sim::BatchSink, public sim::LazyDrain
{
  public:
    /**
     * @param simulator Owning simulation kernel.
     * @param cfg Validated hardware configuration.
     * @param name Diagnostic name ("router0").
     */
    WormholeRouter(sim::Simulator& simulator,
                   const config::RouterConfig& cfg, std::string name);

    WormholeRouter(const WormholeRouter&) = delete;
    WormholeRouter& operator=(const WormholeRouter&) = delete;

    /**
     * Attaches the link that feeds input port @p port. The router
     * registers itself as the link's flit receiver and uses the link
     * to return buffer credits upstream.
     */
    void connectInputLink(int port, Link& link);

    /**
     * Attaches the link driven by output port @p port. @p
     * downstream_buffer_depth initializes the credit counters (the
     * input buffer capacity of whatever sits across the link).
     */
    void connectOutputLink(int port, Link& link,
                           int downstream_buffer_depth);

    /** Installs the routing function. Must be set before traffic. */
    void setRouteFunction(RouteFunction fn);

    /**
     * Installs a precomputed route table covering every destination
     * node id; headers then route with one array load. The
     * functional form (setRouteFunction) remains the fallback for
     * destinations outside the table and for load- or random-
     * dependent policies that cannot be tabulated.
     */
    void setRouteTable(RouteTable table);

    /** Hardware configuration. */
    const config::RouterConfig& cfg() const { return cfg_; }

    /** Diagnostic name. */
    const std::string& name() const { return name_; }

    /**
     * Aggregate buffered-flit count of output port @p port; the
     * load signal used for fat-link selection.
     */
    int outputLoad(int port) const;

    /** Total flits that left the router since construction. */
    std::uint64_t flitsForwarded() const { return flitsForwarded_; }

    /** Total headers routed since construction. */
    std::uint64_t headersRouted() const { return headersRouted_; }

    /** Messages that had to wait for output-VC allocation. */
    std::uint64_t allocationWaits() const { return allocationWaits_; }

    /** Runtime sanity check: verifies queue/credit invariants. */
    void checkInvariants() const;

    // sim::BatchSink: one virtual dispatch per same-tick batch; the
    // members fan out through a direct switch on their opcode.
    void fireBatch(sim::Event& first) override;

    // sim::LazyDrain: end-of-run accounting for elided mux wakeups.
    std::uint64_t flushLazy(sim::Tick until) override;
    bool lazyPending() const override;

    /**
     * Test-only: corrupts the state of input VC (@p port, @p vc) so
     * the next checkInvariants() panics, exercising the crash path
     * (flight-recorder dump, contextual panic message). Never call
     * outside tests - the router is unusable afterwards.
     */
    void debugCorruptVcForTest(int port, int vc);

    /**
     * Registers this router's counters under "<name>." in
     * @p registry for end-of-run reporting.
     */
    void registerStats(stats::Registry& registry) const;

    /**
     * Attaches a flit tracer; @p location identifies this router in
     * the records. Pass nullptr to detach.
     */
    void
    setTracer(sim::Tracer* tracer, int location)
    {
        tracer_ = tracer;
        traceLocation_ = location;
    }

  private:
    /** Identifies one input VC. */
    struct InputVcKey
    {
        int port;
        int vc;
    };

    struct OutputVc;
    struct OutputPort;

    // --- pipeline actions -------------------------------------------------
    // (Declared ahead of the port/VC structs so the typed events
    // below can name them as template arguments.)
    void flitArrived(int port, int vc, const Flit& flit);
    void creditArrived(int port, int vc);
    void startRouting(int port, int vc);
    void routeComputed(int port, int vc);
    void requestOutputVc(int port, int vc, int out_port, int out_vc);
    /** Grants the VC to its oldest waiter if the allocation (and,
     *  for cut-through, the downstream-space gate) permits. */
    bool tryGrantNextWaiter(int out_port, int out_vc);
    void grantOutputVc(InputVcKey key, int out_port, int out_vc);
    void finishInputMessage(InputVcKey key);

    // Point A (multiplexed crossbar).
    void kickInputMux(int port);
    void serveInputMux(int port);
    /** Input-mux service slot elapsed: serve the next flit. */
    void inputMuxFired(int port);

    // Full crossbar: per-VC private server.
    void kickInputVcServer(int port, int vc);
    void serveInputVc(int port, int vc);
    /** Per-VC crossbar server finished its in-flight flit. */
    void vcServeFired(int port, int vc);

    // Point B.
    void xbarDeliver(int out_port);
    /** Stamps @p flit in place and copies it into the output VC
     *  buffer; the caller's flit is consumed. */
    void depositIntoOutputVc(int out_port, int out_vc, Flit& flit);

    // Point C.
    void kickOutputMux(int port);
    void serveOutputMux(int port);
    /** Output-mux service slot elapsed: serve the next flit. */
    void outputMuxFired(int port);

    /**
     * Opcodes for batched dispatch: fireBatch() switches on the
     * member event's opcode and casts to its concrete type, replacing
     * the per-event virtual fire() with a direct call.
     */
    enum BatchOp : std::uint8_t {
        kOpRouteComputed, ///< VcEvent<&routeComputed>
        kOpVcServe,       ///< VcEvent<&vcServeFired>
        kOpInputMux,      ///< PortEvent<&inputMuxFired>
        kOpXbarDeliver,   ///< PortEvent<&xbarDeliver>
        kOpOutputMux,     ///< PortEvent<&outputMuxFired>
    };

    /**
     * Intrusive typed event calling a (port) router method; a direct
     * call on fire(), with no std::function erasure or allocation.
     */
    template <void (WormholeRouter::*Method)(int)>
    struct PortEvent final : sim::Event
    {
        WormholeRouter* router = nullptr;
        int port = 0;

        void
        init(WormholeRouter* r, int p)
        {
            router = r;
            port = p;
        }
        void fire() override { (router->*Method)(port); }
        const char* name() const override { return "RouterPortEvent"; }
    };

    /** As PortEvent, for (port, vc) router methods. */
    template <void (WormholeRouter::*Method)(int, int)>
    struct VcEvent final : sim::Event
    {
        WormholeRouter* router = nullptr;
        int port = 0;
        int vc = 0;

        void
        init(WormholeRouter* r, int p, int v)
        {
            router = r;
            port = p;
            vc = v;
        }
        void fire() override { (router->*Method)(port, vc); }
        const char* name() const override { return "RouterVcEvent"; }
    };

    /** Lifecycle of the message occupying an input VC. */
    enum class InputVcState : std::uint8_t {
        Idle,      ///< No message present.
        Routing,   ///< Header in stages 2-3.
        WaitingVc, ///< Output VC busy; message blocked (wormhole).
        Active,    ///< Output VC held; flits may flow.
    };

    struct InputVc
    {
        FlitBuffer buffer;
        InputVcState state = InputVcState::Idle;
        int outPort = -1;
        int outVc = -1;
        // Direct pointers to the granted output port/VC, valid while
        // state == Active (ports and their VC vectors never move
        // after construction). The input-mux gate loop runs once per
        // ready VC per mux round; these save the index arithmetic,
        // and outFlatIdx is the matching [port * numVcs + vc] index
        // into the output-side SoA arrays.
        OutputPort* outPortPtr = nullptr;
        OutputVc* outVcPtr = nullptr;
        std::size_t outFlatIdx = 0;
        sim::Tick vtick = kBestEffortVtick; ///< Current message's rate.
        /// Fires when stages 2-3 finish.
        VcEvent<&WormholeRouter::routeComputed> routeEvent;
        // Full-crossbar mode: this VC's private crossbar input server.
        VcEvent<&WormholeRouter::vcServeFired> serveEvent;
        bool serverBusy = false;
        Flit inFlight;            ///< Flit traversing the crossbar.
        int inFlightOutPort = -1; ///< Destination of the in-flight flit.
        int inFlightOutVc = -1;
        bool inSpaceWaitList = false; ///< Registered on an OutputVc.
    };

    struct InputPort
    {
        // Fixed array: InputVc embeds events and cannot be moved.
        std::unique_ptr<InputVc[]> vcs;
        Link* link = nullptr; ///< For returning credits upstream.
        // Point A (multiplexed mode) arbitration state lives in the
        // router-level inputArb_ (one MultiPortArbiter across all
        // input muxes); eligibility bit v = VC v is Active with a
        // buffered head flit; the serve-time space/crossbar gates
        // prune further.
        PortEvent<&WormholeRouter::inputMuxFired> muxEvent;
        sim::LazyTick mux; ///< Service-slot state; elides idle ticks.
    };

    /**
     * Output-VC cold state. The hot scalars the serve loops read
     * (credits, reserved slots, occupancy, Virtual Clock state,
     * allocation) live in the flat SoA arrays below, indexed
     * [port * numVcs + vc].
     */
    struct OutputVc
    {
        FlitBuffer buffer;
        Ring<InputVcKey> allocWaiters;
        std::vector<InputVcKey> spaceWaiters;
    };

    struct OutputPort
    {
        std::vector<OutputVc> vcs;
        Link* link = nullptr;
        // Point B: the crossbar output port (capacity-one server).
        // Its busy bit lives in the router-level xbarBusyMask_ (and
        // the blocked-mux set in xbarWaiters_), so the input-mux gate
        // loop tests it without dereferencing this struct.
        Flit xbarFlit;
        int xbarFlitVc = -1;
        PortEvent<&WormholeRouter::xbarDeliver> xbarEvent;
        // Point C: the VC output multiplexer driving the link; its
        // arbitration state lives in the router-level outputArb_.
        // Eligibility bit v = VC v has a buffered flit and a credit.
        PortEvent<&WormholeRouter::outputMuxFired> muxEvent;
        sim::LazyTick mux; ///< Service-slot state; elides idle ticks.
        std::uint64_t nextArrivalSeq = 0;
    };

    /** Adapter: per-port FlitReceiver facade over the router. */
    class PortReceiver final : public FlitReceiver
    {
      public:
        PortReceiver() = default;
        void
        init(WormholeRouter* router, int port)
        {
            router_ = router;
            port_ = port;
        }
        void
        receiveFlit(const Flit& flit, int vc) override
        {
            router_->flitArrived(port_, vc, flit);
        }

      private:
        WormholeRouter* router_ = nullptr;
        int port_ = 0;
    };

    /** Adapter: per-port CreditReceiver facade over the router. */
    class PortCreditReceiver final : public CreditReceiver
    {
      public:
        PortCreditReceiver() = default;
        void
        init(WormholeRouter* router, int port)
        {
            router_ = router;
            port_ = port;
        }
        void
        creditReturned(int vc) override
        {
            router_->creditArrived(port_, vc);
        }

      private:
        WormholeRouter* router_ = nullptr;
        int port_ = 0;
    };

    void registerSpaceWaiter(OutputVc& ovc, InputVcKey key);
    void wakeSpaceWaiters(OutputVc& ovc);

    // --- eligibility-mask maintenance (DESIGN.md section 9) ---------------
    // Re-evaluates one slot's bit from current state; called at every
    // event that can change that state, so the serve loops never
    // rescan all VCs.

    /** Input bit v = (state == Active && buffer non-empty). */
    void
    refreshInputEligibility(int port, int vc)
    {
        const InputVc& ivc = vcAt(inputAt(port), vc);
        if (ivc.state == InputVcState::Active && !ivc.buffer.empty())
            inputArb_.setEligible(port, vc, ivc.buffer.front());
        else
            inputArb_.clearEligible(port, vc);
    }

    /** Output bit v = (buffer non-empty && credits > 0). */
    void
    refreshOutputEligibility(int port, int vc)
    {
        const OutputVc& ovc = vcAt(outputAt(port), vc);
        if (!ovc.buffer.empty() && outCredits_[vcIndex(port, vc)] > 0)
            outputArb_.setEligible(port, vc, ovc.buffer.front());
        else
            outputArb_.clearEligible(port, vc);
    }

    /**
     * Re-derives output port @p port 's whole eligibility mask in one
     * pass over the SoA occupancy/credit arrays - a handful of
     * contiguous cache lines for any VC count. The incremental
     * refreshes above keep the arbiter's mask equal to this at every
     * quiescent point; checkInvariants() asserts exactly that.
     */
    std::uint64_t
    computeOutputMask(int port) const
    {
        const std::size_t base = vcIndex(port, 0);
        std::uint64_t mask = 0;
        for (int v = 0; v < cfg_.numVcs; ++v) {
            const std::size_t i = base + static_cast<std::size_t>(v);
            if (outOccupancy_[i] > 0 && outCredits_[i] > 0)
                mask |= std::uint64_t{1} << static_cast<unsigned>(v);
        }
        return mask;
    }

    // --- indexing helpers (keep signed port/vc ids out of the
    // unsigned-cast business everywhere else) ------------------------------
    InputPort&
    inputAt(int port)
    {
        return inputs_[static_cast<std::size_t>(port)];
    }
    const InputPort&
    inputAt(int port) const
    {
        return inputs_[static_cast<std::size_t>(port)];
    }
    OutputPort&
    outputAt(int port)
    {
        return outputs_[static_cast<std::size_t>(port)];
    }
    const OutputPort&
    outputAt(int port) const
    {
        return outputs_[static_cast<std::size_t>(port)];
    }
    static InputVc&
    vcAt(InputPort& ip, int vc)
    {
        return ip.vcs[static_cast<std::size_t>(vc)];
    }
    static const InputVc&
    vcAt(const InputPort& ip, int vc)
    {
        return ip.vcs[static_cast<std::size_t>(vc)];
    }
    static OutputVc&
    vcAt(OutputPort& op, int vc)
    {
        return op.vcs[static_cast<std::size_t>(vc)];
    }
    static const OutputVc&
    vcAt(const OutputPort& op, int vc)
    {
        return op.vcs[static_cast<std::size_t>(vc)];
    }

    /** Flat [port * numVcs + vc] index into the per-VC SoA arrays. */
    std::size_t
    vcIndex(int port, int vc) const
    {
        return static_cast<std::size_t>(port)
            * static_cast<std::size_t>(cfg_.numVcs)
            + static_cast<std::size_t>(vc);
    }

    sim::Tick cycle() const { return cycleTime_; }

    sim::Simulator& simulator_;
    config::RouterConfig cfg_;
    std::string name_;
    sim::Tick cycleTime_;

    RouteFunction routeFn_;
    RouteTable routeTable_; ///< Fast path; empty when not tabulable.

    // Fixed arrays: ports embed events and cannot be moved.
    std::unique_ptr<InputPort[]> inputs_;
    std::unique_ptr<OutputPort[]> outputs_;
    std::unique_ptr<PortReceiver[]> receivers_;
    std::unique_ptr<PortCreditReceiver[]> creditReceivers_;

    // --- data-oriented per-VC hot state (DESIGN.md section 13) ------------
    // Flat [port * numVcs + vc] arrays for the scalars the serve
    // loops and the fat-channel load signal read every round; the
    // cold per-VC state (buffers, waiter lists) stays in the structs.

    /** Downstream buffer slots available per output VC. */
    std::vector<int> outCredits_;
    /** Output-buffer slots claimed by flits in the crossbar. */
    std::vector<int> outReserved_;
    /** Mirror of each output VC buffer's size (checked in
     *  checkInvariants); keeps outputLoad()/computeOutputMask() on
     *  the SoA arrays only. */
    std::vector<int> outOccupancy_;
    /** Point-C Virtual Clock stamping state per output VC. */
    std::vector<VirtualClockState> outVclock_;
    /** Point-A Virtual Clock stamping state per input VC. */
    std::vector<VirtualClockState> inVclock_;
    /** Per-port allocation bitmask: bit v = output VC v held by a
     *  message (replaces a bool strewn across fat structs; popcount
     *  gives outputLoad its allocation term in one instruction). */
    std::vector<std::uint64_t> allocatedMask_;
    // One-pass arbitration (DESIGN.md section 14): all point-A and
    // point-C multiplexers of this router share two MultiPortArbiter
    // instances - per-port masks and 4-padded HeadKey rows in flat
    // arrays - so the serve loops and the whole-router sweeps index
    // shared storage instead of per-port objects.
    MultiPortArbiter inputArb_;  ///< Point A, one mux per input port.
    MultiPortArbiter outputArb_; ///< Point C, one mux per output port.
    /** Bit p = output port p's crossbar server holds a flit. The gate
     *  loop in serveInputMux() tests every candidate VC's crossbar
     *  availability against this one word. */
    std::uint64_t xbarBusyMask_ = 0;
    /** Per-output-port bitmask of input muxes blocked on its crossbar
     *  server; drained (and cleared) by xbarDeliver(). */
    std::vector<std::uint64_t> xbarWaiters_;

    std::uint64_t nextInputSeq_ = 0;
    std::vector<InputVcKey> scratchWaiters_; ///< wakeSpaceWaiters scratch.

    std::uint64_t flitsForwarded_ = 0;
    std::uint64_t headersRouted_ = 0;
    std::uint64_t allocationWaits_ = 0;

    sim::Tracer* tracer_ = nullptr;
    int traceLocation_ = -1;
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_WORMHOLE_ROUTER_HH
