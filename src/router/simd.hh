/**
 * @file
 * Vectorized arbitration pick kernels (DESIGN.md section 14).
 *
 * Portable SIMD via the GCC/Clang vector extensions - no intrinsics
 * headers, so the same code compiles to SSE/AVX on x86 and NEON on
 * arm64. The kernels are built when the MEDIAWORM_SIMD configure
 * option defines MW_SIMD (and the compiler supports
 * __builtin_shufflevector); otherwise MW_SIMD_COMPILED stays 0 and
 * the arbiters always run the scalar kernels in arbiter.hh.
 *
 * Winner selection is bit-identical to the scalar kernels: slots are
 * processed in ascending order within each residue class, a lane's
 * running best is replaced only on a strictly smaller key, and the
 * final horizontal reduce breaks full-key ties toward the smaller
 * slot - exactly the order a ctz enumeration visits. Ineligible
 * lanes are blended to (INT64_MAX, INT64_MAX) sentinels, which no
 * real key reaches: Virtual Clock stamps saturate at kBestEffortVtick
 * (INT64_MAX / 4, router/virtual_clock.hh) and arrival seqs are far
 * below 2^63.
 */

#ifndef MEDIAWORM_ROUTER_SIMD_HH
#define MEDIAWORM_ROUTER_SIMD_HH

#include <cstdint>
#include <limits>

#include "sim/time.hh"

namespace mediaworm::router {

/**
 * The (stamp, fifoSeq) tie-break pair of one slot's head flit; 16
 * bytes so four slots share a cache line and one 32-byte vector load
 * covers two. Shared by the scalar kernels (arbiter.hh) and the
 * vectorized ones below.
 */
struct HeadKey
{
    sim::Tick stamp = 0;
    std::uint64_t fifoSeq = 0;
};

/**
 * Eligible-slot count at which the pick dispatch switches from the
 * ctz enumeration to the vectorized kernel. Sparse masks (the common
 * case at moderate load) finish faster slot-by-slot; wide masks - the
 * high-VC shapes where the scalar SoA round regressed - amortize the
 * fixed per-group vector cost. Either kernel returns the same winner,
 * so the threshold is pure tuning with no behavioral footprint.
 */
inline constexpr int kSimdMinEligible = 8;

// The kernels hinge on packed 64-bit integer compares. Baseline
// x86-64 (SSE2) has no pcmpgtq, and GCC's element-wise emulation of
// it is 4-6x *slower* than the scalar ctz enumeration - measured on
// the reference container - so the vector path is only compiled where
// the target ISA provides real 64-bit lane compares: AVX2 on x86
// (the MEDIAWORM_SIMD configure option adds -mavx2) or AArch64 NEON
// (cmgt.2d is baseline there). Anywhere else the arbiters silently
// keep the scalar kernels, which pick bit-identical winners.
#if defined(MW_SIMD)                                                   \
    && (defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 12))  \
    && (defined(__AVX2__) || defined(__aarch64__))
#define MW_SIMD_COMPILED 1
#else
#define MW_SIMD_COMPILED 0
#endif

#if MW_SIMD_COMPILED

namespace simd {

typedef std::int64_t I64x4 __attribute__((vector_size(32)));

inline I64x4
broadcast(std::int64_t v)
{
    return I64x4{v, v, v, v};
}

/** Lane-blend masks indexed by a 4-bit eligibility nibble. */
inline constexpr I64x4 kNibbleMask[16] = {
    I64x4{0, 0, 0, 0},    I64x4{-1, 0, 0, 0},
    I64x4{0, -1, 0, 0},   I64x4{-1, -1, 0, 0},
    I64x4{0, 0, -1, 0},   I64x4{-1, 0, -1, 0},
    I64x4{0, -1, -1, 0},  I64x4{-1, -1, -1, 0},
    I64x4{0, 0, 0, -1},   I64x4{-1, 0, 0, -1},
    I64x4{0, -1, 0, -1},  I64x4{-1, -1, 0, -1},
    I64x4{0, 0, -1, -1},  I64x4{-1, 0, -1, -1},
    I64x4{0, -1, -1, -1}, I64x4{-1, -1, -1, -1},
};

/**
 * Loads four consecutive HeadKey records and de-interleaves them into
 * a stamp vector and a seq vector (two 32-byte loads + two shuffles).
 * The caller guarantees 4-record alignment of the *count* (arrays are
 * padded to a multiple of four records), not of the address.
 */
inline void
load4(const HeadKey* k, I64x4& stamps, I64x4& seqs)
{
    I64x4 a; // s0 f0 s1 f1
    I64x4 b; // s2 f2 s3 f3
    __builtin_memcpy(&a, k, sizeof(a));
    __builtin_memcpy(&b, k + 2, sizeof(b));
    stamps = __builtin_shufflevector(a, b, 0, 2, 4, 6);
    seqs = __builtin_shufflevector(a, b, 1, 3, 5, 7);
}

/**
 * Vertical 4-lane tournament followed by a horizontal reduce. @p Fifo
 * selects the smallest fifoSeq; otherwise the lexicographically
 * smallest (stamp, fifoSeq). @p m must be non-zero and confined to
 * the first @p num_slots bits.
 */
template <bool Fifo>
inline int
pickKernel(std::uint64_t m, const HeadKey* keys, int num_slots)
{
    constexpr std::int64_t kMax =
        std::numeric_limits<std::int64_t>::max();
    const I64x4 maxv = broadcast(kMax);
    I64x4 best_stamp = maxv;
    I64x4 best_seq = maxv;
    I64x4 best_slot = broadcast(0);
    const int groups = (num_slots + 3) >> 2;
    for (int g = 0; g < groups; ++g) {
        const unsigned nib =
            static_cast<unsigned>(m >> (4 * g)) & 0xFu;
        if (nib == 0)
            continue;
        I64x4 stamps;
        I64x4 seqs;
        load4(keys + 4 * g, stamps, seqs);
        const I64x4 elig = kNibbleMask[nib];
        seqs = (seqs & elig) | (maxv & ~elig);
        I64x4 lt;
        if constexpr (Fifo) {
            lt = seqs < best_seq;
        } else {
            stamps = (stamps & elig) | (maxv & ~elig);
            lt = (stamps < best_stamp)
                | ((stamps == best_stamp) & (seqs < best_seq));
            best_stamp = (stamps & lt) | (best_stamp & ~lt);
        }
        const I64x4 slot = broadcast(4 * g) + I64x4{0, 1, 2, 3};
        best_seq = (seqs & lt) | (best_seq & ~lt);
        best_slot = (slot & lt) | (best_slot & ~lt);
    }
    // Horizontal reduce. A (kMax, kMax) lane never saw an eligible
    // slot (real keys stay below the sentinels); full-key ties across
    // lanes resolve to the smaller slot, matching ascending scalar
    // enumeration.
    int best = -1;
    std::int64_t bs = kMax;
    std::int64_t bq = kMax;
    for (int lane = 0; lane < 4; ++lane) {
        const std::int64_t s = Fifo ? 0 : best_stamp[lane];
        const std::int64_t q = best_seq[lane];
        if (q == kMax && (Fifo || s == kMax))
            continue;
        const auto slot = static_cast<int>(best_slot[lane]);
        const bool smaller =
            s < bs || (s == bs && (q < bq || (q == bq && slot < best)));
        if (best == -1 || smaller) {
            best = slot;
            bs = s;
            bq = q;
        }
    }
    return best;
}

/** Smallest arrival seq among the eligible slots (FIFO discipline). */
inline int
pickFifo(std::uint64_t m, const HeadKey* keys, int num_slots)
{
    return pickKernel<true>(m, keys, num_slots);
}

/** Lexicographically smallest (stamp, fifoSeq) - Virtual Clock. */
inline int
pickVirtualClock(std::uint64_t m, const HeadKey* keys, int num_slots)
{
    return pickKernel<false>(m, keys, num_slots);
}

} // namespace simd

#endif // MW_SIMD_COMPILED

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_SIMD_HH
