/**
 * @file
 * Growable power-of-two ring buffer (FIFO).
 *
 * Replaces std::deque on the router/link hot paths: contiguous
 * storage, index-mask addressing, and no per-node allocation. The
 * ring doubles its backing store when full - in steady state (link
 * pipes bounded by credits, waiter lists bounded by VC counts) it
 * reaches its working-set capacity once and never allocates again.
 */

#ifndef MEDIAWORM_ROUTER_RING_HH
#define MEDIAWORM_ROUTER_RING_HH

#include <cstddef>
#include <vector>

#include "sim/logging.hh"

namespace mediaworm::router {

/** Fixed-layout FIFO ring that grows by doubling when full. */
template <class T>
class Ring
{
  public:
    /** @param capacity_hint Initial capacity (rounded up to a power
     *  of two); 0 defers allocation to the first push. */
    explicit Ring(std::size_t capacity_hint = 0)
    {
        if (capacity_hint > 0)
            slots_.resize(roundUpPow2(capacity_hint));
    }

    /** True when no elements are queued. */
    bool empty() const { return size_ == 0; }

    /** Queued element count. */
    std::size_t size() const { return size_; }

    /** Current backing capacity. */
    std::size_t capacity() const { return slots_.size(); }

    /** The oldest element; the ring must not be empty. */
    const T&
    front() const
    {
        MW_ASSERT(size_ > 0);
        return slots_[head_];
    }

    /** Mutable access to the oldest element. */
    T&
    front()
    {
        MW_ASSERT(size_ > 0);
        return slots_[head_];
    }

    /** Mutable access to the newest element. */
    T&
    back()
    {
        MW_ASSERT(size_ > 0);
        return slots_[(head_ + size_ - 1) & (slots_.size() - 1)];
    }

    /** Appends @p value, growing the backing store if full. */
    void
    push_back(const T& value)
    {
        if (size_ == slots_.size())
            grow();
        slots_[(head_ + size_) & (slots_.size() - 1)] = value;
        ++size_;
    }

    /** Drops the oldest element; the ring must not be empty. */
    void
    pop_front()
    {
        MW_ASSERT(size_ > 0);
        head_ = (head_ + 1) & (slots_.size() - 1);
        --size_;
    }

    /** Drops every element (capacity is retained). */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p *= 2;
        return p;
    }

    void
    grow()
    {
        const std::size_t old_cap = slots_.size();
        std::vector<T> next(old_cap == 0 ? 16 : old_cap * 2);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = slots_[(head_ + i) & (old_cap - 1)];
        slots_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_RING_HH
