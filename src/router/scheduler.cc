#include "router/scheduler.hh"

#include "sim/logging.hh"

namespace mediaworm::router {

std::size_t
FifoScheduler::pick(const std::vector<Candidate>& candidates)
{
    MW_ASSERT(!candidates.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].fifoSeq < candidates[best].fifoSeq)
            best = i;
    }
    return best;
}

std::size_t
RoundRobinScheduler::pick(const std::vector<Candidate>& candidates)
{
    MW_ASSERT(!candidates.empty());
    // Smallest slot strictly greater than the previous winner,
    // wrapping to the smallest slot overall.
    int best_above = -1;
    std::size_t best_above_index = 0;
    int best_any = -1;
    std::size_t best_any_index = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const int slot = candidates[i].slot;
        if (slot > lastSlot_
            && (best_above == -1 || slot < best_above)) {
            best_above = slot;
            best_above_index = i;
        }
        if (best_any == -1 || slot < best_any) {
            best_any = slot;
            best_any_index = i;
        }
    }
    const std::size_t winner =
        best_above != -1 ? best_above_index : best_any_index;
    lastSlot_ = candidates[winner].slot;
    return winner;
}

std::size_t
VirtualClockScheduler::pick(const std::vector<Candidate>& candidates)
{
    MW_ASSERT(!candidates.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const auto& c = candidates[i];
        const auto& b = candidates[best];
        if (c.stamp < b.stamp
            || (c.stamp == b.stamp && c.fifoSeq < b.fifoSeq)) {
            best = i;
        }
    }
    return best;
}

std::size_t
WeightedRoundRobinScheduler::pick(const std::vector<Candidate>& candidates)
{
    MW_ASSERT(!candidates.empty());
    // Track per-slot deficits in Q32.32 fixed point; the quantum
    // added each round is the slot's requested rate normalised so one
    // flit costs kWrrQuantum. Integer accounting replenishes exactly,
    // with no floating-point drift over long runs.
    int max_slot = 0;
    for (const auto& c : candidates)
        max_slot = std::max(max_slot, c.slot);
    if (deficit_.size() <= static_cast<std::size_t>(max_slot))
        deficit_.resize(static_cast<std::size_t>(max_slot) + 1, 0);

    // Find the eligible slot with the largest deficit; if none can
    // afford a flit, replenish all eligible slots proportionally to
    // their requested rate (weight = wrrWeight(minVtick, vtick), so
    // the fastest slot gains exactly kWrrQuantum and the loop always
    // terminates on the second pass).
    for (int round = 0; round < 2; ++round) {
        std::uint64_t best_deficit = 0;
        int best_index = -1;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const std::uint64_t d =
                deficit_[static_cast<std::size_t>(candidates[i].slot)];
            if (d >= kWrrQuantum
                && (best_index == -1 || d > best_deficit)) {
                best_deficit = d;
                best_index = static_cast<int>(i);
            }
        }
        if (best_index != -1) {
            deficit_[static_cast<std::size_t>(
                candidates[best_index].slot)] -= kWrrQuantum;
            lastSlot_ = candidates[best_index].slot;
            return static_cast<std::size_t>(best_index);
        }
        sim::Tick min_vtick = candidates[0].vtick;
        for (const auto& c : candidates)
            min_vtick = std::min(min_vtick, c.vtick);
        for (const auto& c : candidates) {
            deficit_[static_cast<std::size_t>(c.slot)] +=
                wrrWeight(min_vtick, c.vtick);
        }
    }
    sim::panic("WeightedRoundRobinScheduler: no slot became eligible");
}

std::unique_ptr<Scheduler>
makeScheduler(config::SchedulerKind kind)
{
    switch (kind) {
      case config::SchedulerKind::Fifo:
        return std::make_unique<FifoScheduler>();
      case config::SchedulerKind::RoundRobin:
        return std::make_unique<RoundRobinScheduler>();
      case config::SchedulerKind::VirtualClock:
        return std::make_unique<VirtualClockScheduler>();
      case config::SchedulerKind::WeightedRoundRobin:
        return std::make_unique<WeightedRoundRobinScheduler>();
    }
    sim::panic("makeScheduler: unknown kind");
}

} // namespace mediaworm::router
