#include "router/link.hh"

#include "sim/logging.hh"

namespace mediaworm::router {

namespace {

/** Initial pipe capacity; pipes are credit-bounded and small. */
constexpr std::size_t kPipeCapacity = 32;

} // namespace

Link::Link(sim::Simulator& simulator, sim::Tick delay, std::string name,
           ChannelIds ids)
    : senderSim_(&simulator), receiverSim_(&simulator), delay_(delay),
      name_(std::move(name)), flitPipe_(kPipeCapacity),
      creditPipe_(kPipeCapacity), flitEvent_(this, "Link::deliverFlits"),
      creditEvent_(this, "Link::deliverCredits")
{
    MW_ASSERT(delay >= 0);
    if (ids.flit >= 0)
        flitEvent_.setCanonicalSeq(static_cast<std::uint64_t>(ids.flit));
    if (ids.credit >= 0) {
        creditEvent_.setCanonicalSeq(
            static_cast<std::uint64_t>(ids.credit));
    }
}

void
Link::bindShards(sim::Simulator& sender, sim::Simulator& receiver)
{
    senderSim_ = &sender;
    receiverSim_ = &receiver;
    crossShard_ = &sender != &receiver;
    // Cross-shard merge order must not depend on schedule-call
    // order, which only canonical keys guarantee.
    if (crossShard_) {
        MW_ASSERT(flitEvent_.hasCanonicalSeq()
                  && creditEvent_.hasCanonicalSeq());
    }
}

void
Link::connectReceiver(FlitReceiver* receiver)
{
    receiver_ = receiver;
}

void
Link::connectCreditReceiver(CreditReceiver* receiver)
{
    creditReceiver_ = receiver;
}

void
Link::sendFlit(const Flit& flit, int vc)
{
    MW_ASSERT(receiver_ != nullptr);
    flitRate_.add();
    const sim::Tick deliver_at = senderSim_->now() + delay_;
    if (crossShard_) {
        flitOutbox_.push_back({flit, vc, deliver_at});
        return;
    }
    flitPipe_.push_back({flit, vc, deliver_at});
    if (!flitEvent_.scheduled())
        receiverSim_->schedule(flitEvent_, flitPipe_.front().deliverAt);
}

void
Link::sendCredit(int vc)
{
    MW_ASSERT(creditReceiver_ != nullptr);
    const sim::Tick deliver_at = receiverSim_->now() + delay_;
    if (crossShard_) {
        // Same coalescing as the pipe: the outbox is drained in
        // order, so only adjacent entries can share a tick.
        if (!creditOutbox_.empty()) {
            InFlightCredit& newest = creditOutbox_.back();
            if (newest.deliverAt == deliver_at && newest.vc == vc) {
                ++newest.count;
                return;
            }
        }
        creditOutbox_.push_back({vc, 1, deliver_at});
        return;
    }
    // Coalesce with the newest entry when it matches; same-tick
    // credits for one VC collapse into a count, and delivery order
    // across VCs is untouched because only adjacent entries merge.
    if (!creditPipe_.empty()) {
        InFlightCredit& newest = creditPipe_.back();
        if (newest.deliverAt == deliver_at && newest.vc == vc) {
            ++newest.count;
            return;
        }
    }
    creditPipe_.push_back({vc, 1, deliver_at});
    if (!creditEvent_.scheduled())
        senderSim_->schedule(creditEvent_, creditPipe_.front().deliverAt);
}

std::uint64_t
Link::flushFlitOutbox()
{
    if (flitOutbox_.empty())
        return 0;
    const std::uint64_t moved = flitOutbox_.size();
    // Delivery times are monotone in send order (constant delay,
    // monotone sender clock), so appending preserves pipe order and
    // any already-scheduled delivery event stays earliest.
    for (const InFlightFlit& entry : flitOutbox_)
        flitPipe_.push_back(entry);
    flitOutbox_.clear();
    if (!flitEvent_.scheduled())
        receiverSim_->schedule(flitEvent_, flitPipe_.front().deliverAt);
    return moved;
}

std::uint64_t
Link::flushCreditOutbox()
{
    if (creditOutbox_.empty())
        return 0;
    const std::uint64_t moved = creditOutbox_.size();
    for (const InFlightCredit& entry : creditOutbox_)
        creditPipe_.push_back(entry);
    creditOutbox_.clear();
    if (!creditEvent_.scheduled())
        senderSim_->schedule(creditEvent_, creditPipe_.front().deliverAt);
    return moved;
}

void
Link::deliverFlits()
{
    const sim::Tick now = receiverSim_->now();
    while (!flitPipe_.empty() && flitPipe_.front().deliverAt <= now) {
        // Deliver by reference: nothing reached from receiveFlit()
        // pushes onto this link's flit pipe (only the upstream output
        // mux sends here, via a scheduled event), so the front entry
        // stays put until the pop below - no ~112-byte stack copy.
        const InFlightFlit& entry = flitPipe_.front();
        receiver_->receiveFlit(entry.flit, entry.vc);
        flitPipe_.pop_front();
    }
    if (!flitPipe_.empty())
        receiverSim_->schedule(flitEvent_, flitPipe_.front().deliverAt);
}

void
Link::deliverCredits()
{
    const sim::Tick now = senderSim_->now();
    while (!creditPipe_.empty()
           && creditPipe_.front().deliverAt <= now) {
        InFlightCredit entry = creditPipe_.front();
        creditPipe_.pop_front();
        for (int i = 0; i < entry.count; ++i)
            creditReceiver_->creditReturned(entry.vc);
    }
    if (!creditPipe_.empty())
        senderSim_->schedule(creditEvent_, creditPipe_.front().deliverAt);
}

} // namespace mediaworm::router
