#include "router/link.hh"

#include "sim/logging.hh"

namespace mediaworm::router {

namespace {

/** Initial pipe capacity; pipes are credit-bounded and small. */
constexpr std::size_t kPipeCapacity = 32;

} // namespace

Link::Link(sim::Simulator& simulator, sim::Tick delay, std::string name)
    : simulator_(simulator), delay_(delay), name_(std::move(name)),
      flitPipe_(kPipeCapacity), creditPipe_(kPipeCapacity),
      flitEvent_(this, "Link::deliverFlits"),
      creditEvent_(this, "Link::deliverCredits")
{
    MW_ASSERT(delay >= 0);
}

void
Link::connectReceiver(FlitReceiver* receiver)
{
    receiver_ = receiver;
}

void
Link::connectCreditReceiver(CreditReceiver* receiver)
{
    creditReceiver_ = receiver;
}

void
Link::sendFlit(const Flit& flit, int vc)
{
    MW_ASSERT(receiver_ != nullptr);
    flitRate_.add();
    flitPipe_.push_back({flit, vc, simulator_.now() + delay_});
    if (!flitEvent_.scheduled())
        simulator_.schedule(flitEvent_, flitPipe_.front().deliverAt);
}

void
Link::sendCredit(int vc)
{
    MW_ASSERT(creditReceiver_ != nullptr);
    const sim::Tick deliver_at = simulator_.now() + delay_;
    // Coalesce with the newest entry when it matches; same-tick
    // credits for one VC collapse into a count, and delivery order
    // across VCs is untouched because only adjacent entries merge.
    if (!creditPipe_.empty()) {
        InFlightCredit& newest = creditPipe_.back();
        if (newest.deliverAt == deliver_at && newest.vc == vc) {
            ++newest.count;
            return;
        }
    }
    creditPipe_.push_back({vc, 1, deliver_at});
    if (!creditEvent_.scheduled())
        simulator_.schedule(creditEvent_, creditPipe_.front().deliverAt);
}

void
Link::deliverFlits()
{
    const sim::Tick now = simulator_.now();
    while (!flitPipe_.empty() && flitPipe_.front().deliverAt <= now) {
        InFlightFlit entry = flitPipe_.front();
        flitPipe_.pop_front();
        receiver_->receiveFlit(entry.flit, entry.vc);
    }
    if (!flitPipe_.empty())
        simulator_.schedule(flitEvent_, flitPipe_.front().deliverAt);
}

void
Link::deliverCredits()
{
    const sim::Tick now = simulator_.now();
    while (!creditPipe_.empty()
           && creditPipe_.front().deliverAt <= now) {
        InFlightCredit entry = creditPipe_.front();
        creditPipe_.pop_front();
        for (int i = 0; i < entry.count; ++i)
            creditReceiver_->creditReturned(entry.vc);
    }
    if (!creditPipe_.empty())
        simulator_.schedule(creditEvent_, creditPipe_.front().deliverAt);
}

} // namespace mediaworm::router
