/**
 * @file
 * Physical channel model: a unidirectional flit pipe with a reverse
 * credit wire.
 *
 * The Link does no arbitration - the sender's VC multiplexer already
 * serialized flits at one per cycle - it only adds propagation delay
 * and delivers in order. Credits flow the other way with the same
 * delay, implementing credit-based flow control between the sender's
 * output unit and the receiver's input buffers.
 */

#ifndef MEDIAWORM_ROUTER_LINK_HH
#define MEDIAWORM_ROUTER_LINK_HH

#include <string>

#include "router/flit.hh"
#include "router/ring.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "stats/rate_monitor.hh"

namespace mediaworm::router {

/** Consumer side of a link: a router input port or an NI sink. */
class FlitReceiver
{
  public:
    virtual ~FlitReceiver() = default;

    /** Delivers @p flit into virtual channel @p vc. */
    virtual void receiveFlit(const Flit& flit, int vc) = 0;
};

/** Producer side of a link: receives returned buffer credits. */
class CreditReceiver
{
  public:
    virtual ~CreditReceiver() = default;

    /** One buffer slot of virtual channel @p vc was freed downstream. */
    virtual void creditReturned(int vc) = 0;
};

/** Unidirectional physical channel with a credit backchannel. */
class Link
{
  public:
    /**
     * @param simulator The owning simulation kernel.
     * @param delay One-way propagation delay (both directions).
     * @param name Diagnostic name.
     */
    Link(sim::Simulator& simulator, sim::Tick delay, std::string name);

    /** Attaches the downstream flit consumer. */
    void connectReceiver(FlitReceiver* receiver);

    /** Attaches the upstream credit consumer. */
    void connectCreditReceiver(CreditReceiver* receiver);

    /** Sends @p flit on VC @p vc; delivered after the link delay. */
    void sendFlit(const Flit& flit, int vc);

    /** Returns one credit for VC @p vc to the sender. */
    void sendCredit(int vc);

    /** Flits transmitted since the last stats reset. */
    stats::RateMonitor& flitRate() { return flitRate_; }

    /** Flits transmitted since the last stats reset (read-only). */
    const stats::RateMonitor& flitRate() const { return flitRate_; }

    /** Diagnostic name. */
    const std::string& name() const { return name_; }

    /** One-way propagation delay. */
    sim::Tick delay() const { return delay_; }

  private:
    struct InFlightFlit
    {
        Flit flit;
        int vc;
        sim::Tick deliverAt;
    };

    /** Credits for one VC sharing a delivery tick, coalesced. */
    struct InFlightCredit
    {
        int vc;
        int count;
        sim::Tick deliverAt;
    };

    void deliverFlits();
    void deliverCredits();

    sim::Simulator& simulator_;
    sim::Tick delay_;
    std::string name_;

    FlitReceiver* receiver_ = nullptr;
    CreditReceiver* creditReceiver_ = nullptr;

    Ring<InFlightFlit> flitPipe_;
    Ring<InFlightCredit> creditPipe_;
    sim::MemberFuncEvent<&Link::deliverFlits> flitEvent_;
    sim::MemberFuncEvent<&Link::deliverCredits> creditEvent_;

    stats::RateMonitor flitRate_;
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_LINK_HH
