/**
 * @file
 * Physical channel model: a unidirectional flit pipe with a reverse
 * credit wire.
 *
 * The Link does no arbitration - the sender's VC multiplexer already
 * serialized flits at one per cycle - it only adds propagation delay
 * and delivers in order. Credits flow the other way with the same
 * delay, implementing credit-based flow control between the sender's
 * output unit and the receiver's input buffers.
 *
 * A link is also the only place simulation state crosses routers,
 * which makes it the shard boundary for conservative-parallel runs
 * (sim/pdes.hh). Each direction is a channel with its own consumer
 * shard: the flit channel is consumed where the receiver lives, the
 * credit channel where the sender lives. When the two sides are
 * bound to different shard Simulators (bindShards), a send appends
 * to a plain outbox instead of scheduling on the foreign queue; the
 * consumer shard drains the outbox at the next epoch boundary via
 * flushFlitOutbox()/flushCreditOutbox(). Channel delivery events
 * carry canonical tie-break keys (ChannelIds), so their order among
 * same-tick events is identical whether the link is intra-shard,
 * cross-shard, or running single-threaded.
 */

#ifndef MEDIAWORM_ROUTER_LINK_HH
#define MEDIAWORM_ROUTER_LINK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "router/flit.hh"
#include "router/ring.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "stats/rate_monitor.hh"

namespace mediaworm::router {

/** Consumer side of a link: a router input port or an NI sink. */
class FlitReceiver
{
  public:
    virtual ~FlitReceiver() = default;

    /** Delivers @p flit into virtual channel @p vc. */
    virtual void receiveFlit(const Flit& flit, int vc) = 0;
};

/** Producer side of a link: receives returned buffer credits. */
class CreditReceiver
{
  public:
    virtual ~CreditReceiver() = default;

    /** One buffer slot of virtual channel @p vc was freed downstream. */
    virtual void creditReturned(int vc) = 0;
};

/**
 * Canonical tie-break keys for a link's two delivery events, unique
 * across the network (topology builders assign forLinkIndex). The
 * default (-1) keeps the per-queue schedule counter - fine for
 * hand-wired unit tests, required to be canonical for any link built
 * into an experiment topology so sharded runs merge identically.
 */
struct ChannelIds
{
    std::int64_t flit = -1;
    std::int64_t credit = -1;

    /** Keys for the @p index 'th link of a network. */
    static ChannelIds
    forLinkIndex(std::size_t index)
    {
        return {static_cast<std::int64_t>(2 * index),
                static_cast<std::int64_t>(2 * index + 1)};
    }
};

/** Unidirectional physical channel with a credit backchannel. */
class Link
{
  public:
    /**
     * @param simulator The owning simulation kernel (both sides,
     *        until bindShards() says otherwise).
     * @param delay One-way propagation delay (both directions).
     * @param name Diagnostic name.
     * @param ids Canonical delivery-event keys; default keeps the
     *        dynamic schedule counter.
     */
    Link(sim::Simulator& simulator, sim::Tick delay, std::string name,
         ChannelIds ids = {});

    /**
     * Splits the link across shards: the sender's output unit lives
     * on @p sender, the flit receiver on @p receiver. Requires
     * canonical ChannelIds when the shards differ. Call during
     * construction, before any traffic.
     */
    void bindShards(sim::Simulator& sender, sim::Simulator& receiver);

    /** True if bindShards() put the two sides on different shards. */
    bool crossShard() const { return crossShard_; }

    /** Attaches the downstream flit consumer. */
    void connectReceiver(FlitReceiver* receiver);

    /** Attaches the upstream credit consumer. */
    void connectCreditReceiver(CreditReceiver* receiver);

    /** Sends @p flit on VC @p vc; delivered after the link delay.
     *  Caller must be on the sender shard. */
    void sendFlit(const Flit& flit, int vc);

    /** Returns one credit for VC @p vc to the sender. Caller must
     *  be on the receiver shard. */
    void sendCredit(int vc);

    /**
     * Moves cross-shard flits from the outbox into the delivery
     * pipe, scheduling on the receiver shard. Called only from the
     * receiver shard's worker, between PDES epoch barriers.
     * @return Number of flits moved.
     */
    std::uint64_t flushFlitOutbox();

    /** Credit-channel counterpart of flushFlitOutbox(); called from
     *  the sender shard's worker. @return Credit entries moved. */
    std::uint64_t flushCreditOutbox();

    /** Flits transmitted since the last stats reset. */
    stats::RateMonitor& flitRate() { return flitRate_; }

    /** Flits transmitted since the last stats reset (read-only). */
    const stats::RateMonitor& flitRate() const { return flitRate_; }

    /** Diagnostic name. */
    const std::string& name() const { return name_; }

    /** One-way propagation delay. */
    sim::Tick delay() const { return delay_; }

  private:
    struct InFlightFlit
    {
        Flit flit;
        int vc;
        sim::Tick deliverAt;
    };

    /** Credits for one VC sharing a delivery tick, coalesced. */
    struct InFlightCredit
    {
        int vc;
        int count;
        sim::Tick deliverAt;
    };

    void deliverFlits();
    void deliverCredits();

    /** Sender-side clock and credit-delivery queue. */
    sim::Simulator* senderSim_;
    /** Receiver-side clock and flit-delivery queue. */
    sim::Simulator* receiverSim_;
    sim::Tick delay_;
    std::string name_;
    bool crossShard_ = false;

    FlitReceiver* receiver_ = nullptr;
    CreditReceiver* creditReceiver_ = nullptr;

    Ring<InFlightFlit> flitPipe_;
    Ring<InFlightCredit> creditPipe_;
    /**
     * Cross-shard staging: written by the producer side during a
     * PDES epoch, drained by the consumer side between the epoch
     * barriers (which order the accesses); never touched on the
     * intra-shard fast path.
     */
    std::vector<InFlightFlit> flitOutbox_;
    std::vector<InFlightCredit> creditOutbox_;
    sim::MemberFuncEvent<&Link::deliverFlits> flitEvent_;
    sim::MemberFuncEvent<&Link::deliverCredits> creditEvent_;

    stats::RateMonitor flitRate_;
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_LINK_HH
