/**
 * @file
 * Incremental multiplexer arbitration (DESIGN.md sections 9 and 14).
 *
 * Two arbiter front-ends share one set of pick kernels:
 *
 *  - MuxArbiter: a single multiplexer's state (the network
 *    interface's injection mux, and the reference shape the
 *    differential fuzz in tests/test_arbiter.cc exercises);
 *  - MultiPortArbiter: every multiplexer of one router in flat
 *    struct-of-arrays storage - one 64-bit eligibility mask per port
 *    and one contiguous, 4-record-padded HeadKey array - so a
 *    router's serve paths touch a handful of shared cache lines and
 *    the whole-router sweep (peekAll) evaluates all ports in one
 *    call.
 *
 * Each multiplexer keeps
 *
 *  - a 64-bit *eligibility bitmask* with one bit per VC slot, set and
 *    cleared at the events that change eligibility (head enqueue/pop,
 *    credit return, VC grant/release), and
 *  - cached *head fields* per slot, split by access pattern: the
 *    (stamp, fifoSeq) pair every tie-break compares lives in one
 *    contiguous 16-byte-record array (router/simd.hh's HeadKey),
 *    while the WRR-only vtick sits in a separate array the other
 *    disciplines never touch - refreshed whenever the slot's head
 *    flit changes.
 *
 * The winner is computed by kernels selected on config::SchedulerKind
 * through a four-way switch the compiler turns into direct, inlinable
 * calls - no virtual dispatch and no per-round allocation. The
 * stateless disciplines (FIFO, Virtual Clock) additionally dispatch
 * between the scalar ctz enumeration and the vectorized kernels in
 * simd.hh on the eligible-slot count (kSimdMinEligible); both return
 * the same winner, so the choice has no behavioral footprint.
 *
 * Winner selection is bit-identical to the legacy Scheduler classes
 * (kept in scheduler.hh as the reference implementation): the legacy
 * code builds its candidate vector by scanning slots in ascending
 * order, and a ctz loop enumerates set bits in exactly that order, so
 * every tie-break - FIFO's strictly-smaller arrival seq, Virtual
 * Clock's (stamp, fifoSeq) lexicographic order, round-robin's
 * smallest-slot-above rotation, WRR's first-largest-deficit - resolves
 * identically. tests/test_arbiter.cc fuzzes this equivalence.
 */

#ifndef MEDIAWORM_ROUTER_ARBITER_HH
#define MEDIAWORM_ROUTER_ARBITER_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "config/router_config.hh"
#include "router/flit.hh"
#include "router/scheduler.hh"
#include "router/simd.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace mediaworm::router {

/** Cached scheduling fields of a slot's head flit. */
struct HeadRecord
{
    sim::Tick stamp = 0;       ///< Virtual Clock timestamp.
    std::uint64_t fifoSeq = 0; ///< Arrival order at this mux.
    sim::Tick vtick = kBestEffortVtick; ///< Rate request.
};

// --- shared pick kernels ----------------------------------------------------
// Free functions over raw slot arrays, so both arbiter front-ends and
// the benchmarks drive the exact same code. All take the pruned mask
// @p m (non-zero) and enumerate set bits in ascending slot order.

namespace arb {

inline int
lowestBit(std::uint64_t m)
{
    return __builtin_ctzll(m);
}

/** Smallest eligible slot strictly above @p last_slot, wrapping to
 *  the smallest eligible slot; updates the rotation pointer. */
inline int
pickRoundRobin(std::uint64_t m, int& last_slot)
{
    const std::uint64_t above =
        last_slot >= 63
            ? 0
            : m & (~std::uint64_t{0}
                   << static_cast<unsigned>(last_slot + 1));
    const int slot = lowestBit(above != 0 ? above : m);
    last_slot = slot;
    return slot;
}

/** One pass over the seq halves of the key array. */
inline int
pickFifoScalar(std::uint64_t m, const HeadKey* keys)
{
    int best = lowestBit(m);
    std::uint64_t best_seq = keys[best].fifoSeq;
    m &= m - 1;
    while (m != 0) {
        const int slot = lowestBit(m);
        m &= m - 1;
        const std::uint64_t seq = keys[slot].fifoSeq;
        if (seq < best_seq) {
            best = slot;
            best_seq = seq;
        }
    }
    return best;
}

/** Lexicographic (stamp, fifoSeq): both fields of one 16-byte
 *  record, one contiguous stream. */
inline int
pickVirtualClockScalar(std::uint64_t m, const HeadKey* keys)
{
    int best = lowestBit(m);
    HeadKey best_key = keys[best];
    m &= m - 1;
    while (m != 0) {
        const int slot = lowestBit(m);
        m &= m - 1;
        const HeadKey key = keys[slot];
        if (key.stamp < best_key.stamp
            || (key.stamp == best_key.stamp
                && key.fifoSeq < best_key.fifoSeq)) {
            best = slot;
            best_key = key;
        }
    }
    return best;
}

/**
 * Deficit round robin in Q32.32 fixed point (see wrrWeight in
 * scheduler.hh). Two rounds at most: the replenish pass credits the
 * fastest eligible slot with exactly one quantum.
 */
inline int
pickWrr(std::uint64_t m, const sim::Tick* vticks,
        std::uint64_t* deficit, int& last_slot)
{
    for (int round = 0; round < 2; ++round) {
        std::uint64_t scan = m;
        std::uint64_t best_deficit = 0;
        int best = -1;
        while (scan != 0) {
            const int slot = lowestBit(scan);
            scan &= scan - 1;
            const std::uint64_t d = deficit[slot];
            if (d >= kWrrQuantum && (best == -1 || d > best_deficit)) {
                best_deficit = d;
                best = slot;
            }
        }
        if (best != -1) {
            deficit[best] -= kWrrQuantum;
            last_slot = best;
            return best;
        }
        sim::Tick min_vtick = 0;
        scan = m;
        while (scan != 0) {
            const int slot = lowestBit(scan);
            scan &= scan - 1;
            const sim::Tick v = vticks[slot];
            if (min_vtick == 0 || v < min_vtick)
                min_vtick = v;
        }
        scan = m;
        while (scan != 0) {
            const int slot = lowestBit(scan);
            scan &= scan - 1;
            deficit[slot] += wrrWeight(min_vtick, vticks[slot]);
        }
    }
    sim::panic("arbiter: no WRR slot became eligible");
}

/** FIFO pick with scalar/SIMD dispatch on the eligible count. */
inline int
pickFifo(std::uint64_t m, const HeadKey* keys, int num_slots,
         bool use_simd)
{
#if MW_SIMD_COMPILED
    if (use_simd && std::popcount(m) >= kSimdMinEligible)
        return simd::pickFifo(m, keys, num_slots);
#else
    (void)num_slots;
    (void)use_simd;
#endif
    return pickFifoScalar(m, keys);
}

/** Virtual Clock pick with scalar/SIMD dispatch. */
inline int
pickVirtualClock(std::uint64_t m, const HeadKey* keys, int num_slots,
                 bool use_simd)
{
#if MW_SIMD_COMPILED
    if (use_simd && std::popcount(m) >= kSimdMinEligible)
        return simd::pickVirtualClock(m, keys, num_slots);
#else
    (void)num_slots;
    (void)use_simd;
#endif
    return pickVirtualClockScalar(m, keys);
}

/** Key arrays are padded to whole 4-record SIMD groups. */
inline std::size_t
paddedSlots(int num_slots)
{
    return (static_cast<std::size_t>(num_slots) + 3) & ~std::size_t{3};
}

} // namespace arb

/**
 * Per-multiplexer arbitration state: eligibility bitmask, cached head
 * records and the rotation/deficit state of the stateful disciplines.
 */
class MuxArbiter
{
  public:
    MuxArbiter() = default;

    /**
     * Fixes the discipline and slot count. @p num_slots must be at
     * most 64 (one bitmask bit per VC; RouterConfig::validate
     * enforces the same bound on numVcs). @p use_simd opts the
     * stateless disciplines into the vectorized kernels where
     * compiled in; winners are identical either way.
     */
    void
    init(config::SchedulerKind kind, int num_slots, bool use_simd = true)
    {
        MW_ASSERT(num_slots >= 1 && num_slots <= 64);
        kind_ = kind;
        numSlots_ = num_slots;
        simd_ = use_simd && MW_SIMD_COMPILED != 0;
        keys_.assign(arb::paddedSlots(num_slots), HeadKey{});
        vticks_.assign(static_cast<std::size_t>(num_slots),
                       kBestEffortVtick);
        if (kind_ == config::SchedulerKind::WeightedRoundRobin)
            deficit_.assign(static_cast<std::size_t>(num_slots), 0);
        mask_ = 0;
        lastSlot_ = -1;
    }

    /** The discipline this arbiter dispatches to. */
    config::SchedulerKind kind() const { return kind_; }

    /** True when at least one slot is eligible. */
    bool anyEligible() const { return mask_ != 0; }

    /** The current eligibility bitmask (bit v = slot v). */
    std::uint64_t mask() const { return mask_; }

    /** True when @p slot 's bit is set. */
    bool
    eligible(int slot) const
    {
        return (mask_ >> static_cast<unsigned>(slot)) & 1u;
    }

    /** Cached head fields of @p slot (valid while eligible),
     *  gathered from the SoA arrays into a value. Diagnostics only -
     *  the pick kernels read the arrays directly. */
    HeadRecord
    head(int slot) const
    {
        const auto s = static_cast<std::size_t>(slot);
        return {keys_[s].stamp, keys_[s].fifoSeq, vticks_[s]};
    }

    /**
     * Marks @p slot eligible and caches its head fields. Also the
     * way to refresh the cache when an eligible slot's head changes
     * (pop exposing the next flit).
     */
    void
    setEligible(int slot, sim::Tick stamp, std::uint64_t fifo_seq,
                sim::Tick vtick)
    {
        MW_DEBUG_ASSERT(slot >= 0 && slot < numSlots_);
        const auto s = static_cast<std::size_t>(slot);
        keys_[s].stamp = stamp;
        keys_[s].fifoSeq = fifo_seq;
        vticks_[s] = vtick;
        mask_ |= std::uint64_t{1} << static_cast<unsigned>(slot);
    }

    /** Convenience overload reading the fields from a head flit. */
    void
    setEligible(int slot, const Flit& head)
    {
        setEligible(slot, head.stamp, head.arrivalSeq, head.vtick);
    }

    /** Clears @p slot 's eligibility bit (idempotent). */
    void
    clearEligible(int slot)
    {
        MW_DEBUG_ASSERT(slot >= 0 && slot < numSlots_);
        mask_ &= ~(std::uint64_t{1} << static_cast<unsigned>(slot));
    }

    /**
     * Picks the winning slot among all eligible slots and updates the
     * discipline's rotation/deficit state. The mask must be
     * non-empty.
     */
    int pick() { return pickMasked(mask_); }

    /**
     * As pick(), but restricted to @p m, a subset of the eligibility
     * mask. Used by the crossbar input multiplexer, whose
     * space/crossbar gates prune the eligible set at serve time.
     */
    int
    pickMasked(std::uint64_t m)
    {
        MW_DEBUG_ASSERT(m != 0 && (m & ~mask_) == 0);
        switch (kind_) {
          case config::SchedulerKind::Fifo:
            return arb::pickFifo(m, keys_.data(), numSlots_, simd_);
          case config::SchedulerKind::RoundRobin:
            return arb::pickRoundRobin(m, lastSlot_);
          case config::SchedulerKind::VirtualClock:
            return arb::pickVirtualClock(m, keys_.data(), numSlots_,
                                         simd_);
          case config::SchedulerKind::WeightedRoundRobin:
            return arb::pickWrr(m, vticks_.data(), deficit_.data(),
                                lastSlot_);
        }
        sim::panic("MuxArbiter: unknown scheduler kind");
    }

  private:
    std::uint64_t mask_ = 0;
    config::SchedulerKind kind_ = config::SchedulerKind::Fifo;
    int numSlots_ = 0;
    bool simd_ = false;
    int lastSlot_ = -1; ///< Rotation pointer (RoundRobin, WRR).
    // Cached head fields, split by access pattern (see file comment).
    std::vector<HeadKey> keys_;
    std::vector<sim::Tick> vticks_;  ///< WRR rate requests only.
    std::vector<std::uint64_t> deficit_; ///< WRR only; Q32.32.
};

/**
 * All multiplexers of one router in flat struct-of-arrays storage
 * (DESIGN.md section 14): masks_[p] is port p's eligibility bitmask
 * and keys_[p * stride + v] its slot v head key, with the stride
 * padded to whole 4-record SIMD groups. One instance serves a
 * router's input muxes and another its output muxes, replacing the
 * per-port MuxArbiter members - the serve loops index two shared
 * arrays instead of chasing per-port objects, and whole-router
 * queries (peekAll, the invariant cross-check) sweep the arrays in
 * one call.
 *
 * Picks remain per-port operations invoked in the exact event order
 * the batched dispatcher pulls them in: a serve's side effects
 * (crossbar occupancy, credits, seq reservations) feed the very next
 * port's gates, so precomputing winners across ports would reorder
 * the simulation. The one-pass sweep is therefore exposed through the
 * side-effect-free peekAll() - used by diagnostics, invariants and
 * the arbitration benchmarks - while the serve paths call
 * pick()/pickMasked() per port through the same kernels.
 */
class MultiPortArbiter
{
  public:
    MultiPortArbiter() = default;

    /** Fixes discipline, port count and per-port slot count; see
     *  MuxArbiter::init() for the SIMD opt-in. */
    void
    init(config::SchedulerKind kind, int num_ports, int num_slots,
         bool use_simd = true)
    {
        MW_ASSERT(num_ports >= 1 && num_ports <= 64);
        MW_ASSERT(num_slots >= 1 && num_slots <= 64);
        kind_ = kind;
        numPorts_ = num_ports;
        numSlots_ = num_slots;
        stride_ = arb::paddedSlots(num_slots);
        simd_ = use_simd && MW_SIMD_COMPILED != 0;
        const auto ports = static_cast<std::size_t>(num_ports);
        masks_.assign(ports, 0);
        keys_.assign(ports * stride_, HeadKey{});
        vticks_.assign(ports * stride_, kBestEffortVtick);
        if (kind_ == config::SchedulerKind::WeightedRoundRobin)
            deficit_.assign(ports * stride_, 0);
        lastSlot_.assign(ports, -1);
    }

    /** The discipline every port of this arbiter dispatches to. */
    config::SchedulerKind kind() const { return kind_; }

    /** True when at least one of @p port 's slots is eligible. */
    bool
    anyEligible(int port) const
    {
        return masks_[static_cast<std::size_t>(port)] != 0;
    }

    /** Port @p port 's eligibility bitmask (bit v = slot v). */
    std::uint64_t
    mask(int port) const
    {
        return masks_[static_cast<std::size_t>(port)];
    }

    /** True when slot @p slot of @p port is eligible. */
    bool
    eligible(int port, int slot) const
    {
        return (mask(port) >> static_cast<unsigned>(slot)) & 1u;
    }

    /** Cached head fields (diagnostics; see MuxArbiter::head). */
    HeadRecord
    head(int port, int slot) const
    {
        const std::size_t i = base(port) + static_cast<std::size_t>(slot);
        return {keys_[i].stamp, keys_[i].fifoSeq, vticks_[i]};
    }

    /** Marks (@p port, @p slot) eligible and caches its head fields. */
    void
    setEligible(int port, int slot, sim::Tick stamp,
                std::uint64_t fifo_seq, sim::Tick vtick)
    {
        MW_DEBUG_ASSERT(port >= 0 && port < numPorts_);
        MW_DEBUG_ASSERT(slot >= 0 && slot < numSlots_);
        const std::size_t i = base(port) + static_cast<std::size_t>(slot);
        keys_[i].stamp = stamp;
        keys_[i].fifoSeq = fifo_seq;
        vticks_[i] = vtick;
        masks_[static_cast<std::size_t>(port)] |=
            std::uint64_t{1} << static_cast<unsigned>(slot);
    }

    /** Convenience overload reading the fields from a head flit. */
    void
    setEligible(int port, int slot, const Flit& head)
    {
        setEligible(port, slot, head.stamp, head.arrivalSeq,
                    head.vtick);
    }

    /** Clears (@p port, @p slot)'s eligibility bit (idempotent). */
    void
    clearEligible(int port, int slot)
    {
        MW_DEBUG_ASSERT(port >= 0 && port < numPorts_);
        MW_DEBUG_ASSERT(slot >= 0 && slot < numSlots_);
        masks_[static_cast<std::size_t>(port)] &=
            ~(std::uint64_t{1} << static_cast<unsigned>(slot));
    }

    /** Picks @p port 's winner among all its eligible slots. */
    int pick(int port) { return pickMasked(port, mask(port)); }

    /** As pick(), restricted to @p m (a subset of the port's mask). */
    int
    pickMasked(int port, std::uint64_t m)
    {
        MW_DEBUG_ASSERT(m != 0 && (m & ~mask(port)) == 0);
        const HeadKey* keys = keys_.data() + base(port);
        switch (kind_) {
          case config::SchedulerKind::Fifo:
            return arb::pickFifo(m, keys, numSlots_, simd_);
          case config::SchedulerKind::RoundRobin:
            return arb::pickRoundRobin(
                m, lastSlot_[static_cast<std::size_t>(port)]);
          case config::SchedulerKind::VirtualClock:
            return arb::pickVirtualClock(m, keys, numSlots_, simd_);
          case config::SchedulerKind::WeightedRoundRobin:
            return arb::pickWrr(
                m, vticks_.data() + base(port),
                deficit_.data() + base(port),
                lastSlot_[static_cast<std::size_t>(port)]);
        }
        sim::panic("MultiPortArbiter: unknown scheduler kind");
    }

    /** True for disciplines whose pick has no side effects, making
     *  peekMasked()/peekAll() well defined. */
    bool
    statelessKind() const
    {
        return kind_ == config::SchedulerKind::Fifo
            || kind_ == config::SchedulerKind::VirtualClock;
    }

    /**
     * The winner pickMasked() would return, without updating any
     * state. Stateless disciplines only.
     */
    int
    peekMasked(int port, std::uint64_t m) const
    {
        MW_DEBUG_ASSERT(statelessKind());
        MW_DEBUG_ASSERT(m != 0 && (m & ~mask(port)) == 0);
        const HeadKey* keys = keys_.data() + base(port);
        if (kind_ == config::SchedulerKind::Fifo)
            return arb::pickFifo(m, keys, numSlots_, simd_);
        return arb::pickVirtualClock(m, keys, numSlots_, simd_);
    }

    /**
     * One-pass whole-router sweep: writes each port's would-be winner
     * to @p winners[port], -1 where the port has no eligible slot.
     * Side-effect free (stateless disciplines only); the diagnostics
     * and benchmark entry point for the vectorized kernels.
     */
    void
    peekAll(int* winners) const
    {
        for (int p = 0; p < numPorts_; ++p) {
            const std::uint64_t m = mask(p);
            winners[p] = m == 0 ? -1 : peekMasked(p, m);
        }
    }

  private:
    std::size_t
    base(int port) const
    {
        return static_cast<std::size_t>(port) * stride_;
    }

    config::SchedulerKind kind_ = config::SchedulerKind::Fifo;
    int numPorts_ = 0;
    int numSlots_ = 0;
    std::size_t stride_ = 0;
    bool simd_ = false;
    std::vector<std::uint64_t> masks_;
    std::vector<HeadKey> keys_;
    std::vector<sim::Tick> vticks_;  ///< WRR rate requests only.
    std::vector<std::uint64_t> deficit_; ///< WRR only; Q32.32.
    std::vector<int> lastSlot_; ///< Rotation pointers (RR, WRR).
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_ARBITER_HH
