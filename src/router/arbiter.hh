/**
 * @file
 * Incremental multiplexer arbitration (DESIGN.md section 9).
 *
 * A MuxArbiter replaces the rebuild-and-scan pattern around the
 * virtual Scheduler classes on the per-flit hot path: instead of
 * collecting a std::vector<Candidate> by scanning every VC and then
 * paying a virtual pick() that scans it again, each multiplexer keeps
 *
 *  - a 64-bit *eligibility bitmask* with one bit per VC slot, set and
 *    cleared at the events that change eligibility (head enqueue/pop,
 *    credit return, VC grant/release), and
 *  - cached *head fields* per slot, split by access pattern: the
 *    (stamp, fifoSeq) pair every tie-break compares lives in one
 *    contiguous 16-byte-record array (Virtual Clock reads the pair
 *    with a single stride-16 stream, FIFO the seq half of it), while
 *    the WRR-only vtick sits in a separate array the other
 *    disciplines never touch - refreshed whenever the slot's head
 *    flit changes,
 *
 * and the winner is computed by a kernel templated on
 * config::SchedulerKind that iterates the set bits with ctz. The kind
 * is fixed at construction; pick() dispatches through a four-way
 * switch on it, which the compiler turns into direct, inlinable calls
 * - no virtual dispatch and no per-round allocation.
 *
 * Winner selection is bit-identical to the legacy Scheduler classes
 * (kept in scheduler.hh as the reference implementation): the legacy
 * code builds its candidate vector by scanning slots in ascending
 * order, and a ctz loop enumerates set bits in exactly that order, so
 * every tie-break - FIFO's strictly-smaller arrival seq, Virtual
 * Clock's (stamp, fifoSeq) lexicographic order, round-robin's
 * smallest-slot-above rotation, WRR's first-largest-deficit - resolves
 * identically. tests/test_arbiter.cc fuzzes this equivalence.
 */

#ifndef MEDIAWORM_ROUTER_ARBITER_HH
#define MEDIAWORM_ROUTER_ARBITER_HH

#include <cstdint>
#include <vector>

#include "config/router_config.hh"
#include "router/flit.hh"
#include "router/scheduler.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace mediaworm::router {

/** Cached scheduling fields of a slot's head flit. */
struct HeadRecord
{
    sim::Tick stamp = 0;       ///< Virtual Clock timestamp.
    std::uint64_t fifoSeq = 0; ///< Arrival order at this mux.
    sim::Tick vtick = kBestEffortVtick; ///< Rate request.
};

/**
 * Per-multiplexer arbitration state: eligibility bitmask, cached head
 * records and the rotation/deficit state of the stateful disciplines.
 */
class MuxArbiter
{
  public:
    MuxArbiter() = default;

    /**
     * Fixes the discipline and slot count. @p num_slots must be at
     * most 64 (one bitmask bit per VC; RouterConfig::validate
     * enforces the same bound on numVcs).
     */
    void
    init(config::SchedulerKind kind, int num_slots)
    {
        MW_ASSERT(num_slots >= 1 && num_slots <= 64);
        kind_ = kind;
        keys_.assign(static_cast<std::size_t>(num_slots), HeadKey{});
        vticks_.assign(static_cast<std::size_t>(num_slots),
                       kBestEffortVtick);
        if (kind_ == config::SchedulerKind::WeightedRoundRobin)
            deficit_.assign(static_cast<std::size_t>(num_slots), 0);
        mask_ = 0;
        lastSlot_ = -1;
    }

    /** The discipline this arbiter dispatches to. */
    config::SchedulerKind kind() const { return kind_; }

    /** True when at least one slot is eligible. */
    bool anyEligible() const { return mask_ != 0; }

    /** The current eligibility bitmask (bit v = slot v). */
    std::uint64_t mask() const { return mask_; }

    /** True when @p slot 's bit is set. */
    bool
    eligible(int slot) const
    {
        return (mask_ >> static_cast<unsigned>(slot)) & 1u;
    }

    /** Cached head fields of @p slot (valid while eligible),
     *  gathered from the SoA arrays into a value. Diagnostics only -
     *  the pick kernels read the arrays directly. */
    HeadRecord
    head(int slot) const
    {
        const auto s = static_cast<std::size_t>(slot);
        return {keys_[s].stamp, keys_[s].fifoSeq, vticks_[s]};
    }

    /**
     * Marks @p slot eligible and caches its head fields. Also the
     * way to refresh the cache when an eligible slot's head changes
     * (pop exposing the next flit).
     */
    void
    setEligible(int slot, sim::Tick stamp, std::uint64_t fifo_seq,
                sim::Tick vtick)
    {
        MW_DEBUG_ASSERT(slot >= 0
                        && static_cast<std::size_t>(slot)
                               < keys_.size());
        const auto s = static_cast<std::size_t>(slot);
        keys_[s].stamp = stamp;
        keys_[s].fifoSeq = fifo_seq;
        vticks_[s] = vtick;
        mask_ |= std::uint64_t{1} << static_cast<unsigned>(slot);
    }

    /** Convenience overload reading the fields from a head flit. */
    void
    setEligible(int slot, const Flit& head)
    {
        setEligible(slot, head.stamp, head.arrivalSeq, head.vtick);
    }

    /** Clears @p slot 's eligibility bit (idempotent). */
    void
    clearEligible(int slot)
    {
        MW_DEBUG_ASSERT(slot >= 0
                        && static_cast<std::size_t>(slot)
                               < keys_.size());
        mask_ &= ~(std::uint64_t{1} << static_cast<unsigned>(slot));
    }

    /**
     * Picks the winning slot among all eligible slots and updates the
     * discipline's rotation/deficit state. The mask must be
     * non-empty.
     */
    int pick() { return pickMasked(mask_); }

    /**
     * As pick(), but restricted to @p m, a subset of the eligibility
     * mask. Used by the crossbar input multiplexer, whose
     * space/crossbar gates prune the eligible set at serve time.
     */
    int
    pickMasked(std::uint64_t m)
    {
        MW_DEBUG_ASSERT(m != 0 && (m & ~mask_) == 0);
        switch (kind_) {
          case config::SchedulerKind::Fifo:
            return kernel<config::SchedulerKind::Fifo>(m);
          case config::SchedulerKind::RoundRobin:
            return kernel<config::SchedulerKind::RoundRobin>(m);
          case config::SchedulerKind::VirtualClock:
            return kernel<config::SchedulerKind::VirtualClock>(m);
          case config::SchedulerKind::WeightedRoundRobin:
            return kernel<config::SchedulerKind::WeightedRoundRobin>(
                m);
        }
        sim::panic("MuxArbiter: unknown scheduler kind");
    }

  private:
    static int
    lowestBit(std::uint64_t m)
    {
        return __builtin_ctzll(m);
    }

    /**
     * The arbitration kernel for discipline @p Kind: one pass over
     * the set bits of @p m in ascending slot order. Mirrors the
     * corresponding Scheduler::pick() exactly; see the file comment
     * for why the iteration order makes the two bit-identical.
     */
    template <config::SchedulerKind Kind>
    int
    kernel(std::uint64_t m)
    {
        if constexpr (Kind == config::SchedulerKind::RoundRobin) {
            // Smallest slot strictly above the previous winner,
            // wrapping to the smallest eligible slot.
            const std::uint64_t above =
                lastSlot_ >= 63
                    ? 0
                    : m & (~std::uint64_t{0}
                           << static_cast<unsigned>(lastSlot_ + 1));
            const int slot = lowestBit(above != 0 ? above : m);
            lastSlot_ = slot;
            return slot;
        } else if constexpr (Kind == config::SchedulerKind::Fifo) {
            // One pass over the seq halves of the key array.
            int best = lowestBit(m);
            std::uint64_t best_seq =
                keys_[static_cast<std::size_t>(best)].fifoSeq;
            m &= m - 1;
            while (m != 0) {
                const int slot = lowestBit(m);
                m &= m - 1;
                const std::uint64_t seq =
                    keys_[static_cast<std::size_t>(slot)].fifoSeq;
                if (seq < best_seq) {
                    best = slot;
                    best_seq = seq;
                }
            }
            return best;
        } else if constexpr (Kind
                             == config::SchedulerKind::VirtualClock) {
            // Lexicographic (stamp, fifoSeq): both fields of one
            // 16-byte record, one contiguous stream.
            int best = lowestBit(m);
            HeadKey best_key = keys_[static_cast<std::size_t>(best)];
            m &= m - 1;
            while (m != 0) {
                const int slot = lowestBit(m);
                m &= m - 1;
                const HeadKey key =
                    keys_[static_cast<std::size_t>(slot)];
                if (key.stamp < best_key.stamp
                    || (key.stamp == best_key.stamp
                        && key.fifoSeq < best_key.fifoSeq)) {
                    best = slot;
                    best_key = key;
                }
            }
            return best;
        } else {
            static_assert(
                Kind == config::SchedulerKind::WeightedRoundRobin);
            // Deficit round robin in Q32.32 fixed point (see
            // wrrWeight in scheduler.hh). Two rounds at most: the
            // replenish pass credits the fastest eligible slot with
            // exactly one quantum.
            for (int round = 0; round < 2; ++round) {
                std::uint64_t scan = m;
                std::uint64_t best_deficit = 0;
                int best = -1;
                while (scan != 0) {
                    const int slot = lowestBit(scan);
                    scan &= scan - 1;
                    const std::uint64_t d =
                        deficit_[static_cast<std::size_t>(slot)];
                    if (d >= kWrrQuantum
                        && (best == -1 || d > best_deficit)) {
                        best_deficit = d;
                        best = slot;
                    }
                }
                if (best != -1) {
                    deficit_[static_cast<std::size_t>(best)] -=
                        kWrrQuantum;
                    lastSlot_ = best;
                    return best;
                }
                sim::Tick min_vtick = 0;
                scan = m;
                while (scan != 0) {
                    const int slot = lowestBit(scan);
                    scan &= scan - 1;
                    const sim::Tick v =
                        vticks_[static_cast<std::size_t>(slot)];
                    if (min_vtick == 0 || v < min_vtick)
                        min_vtick = v;
                }
                scan = m;
                while (scan != 0) {
                    const int slot = lowestBit(scan);
                    scan &= scan - 1;
                    deficit_[static_cast<std::size_t>(slot)] +=
                        wrrWeight(
                            min_vtick,
                            vticks_[static_cast<std::size_t>(slot)]);
                }
            }
            sim::panic("MuxArbiter: no WRR slot became eligible");
        }
    }

    /** The (stamp, fifoSeq) tie-break pair of one slot's head flit;
     *  16 bytes so four slots share a cache line. */
    struct HeadKey
    {
        sim::Tick stamp = 0;
        std::uint64_t fifoSeq = 0;
    };

    std::uint64_t mask_ = 0;
    config::SchedulerKind kind_ = config::SchedulerKind::Fifo;
    int lastSlot_ = -1; ///< Rotation pointer (RoundRobin, WRR).
    // Cached head fields, split by access pattern (see file comment).
    std::vector<HeadKey> keys_;
    std::vector<sim::Tick> vticks_;  ///< WRR rate requests only.
    std::vector<std::uint64_t> deficit_; ///< WRR only; Q32.32.
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_ARBITER_HH
