/**
 * @file
 * Fixed-capacity FIFO flit buffer (a VC's flit storage).
 */

#ifndef MEDIAWORM_ROUTER_FLIT_BUFFER_HH
#define MEDIAWORM_ROUTER_FLIT_BUFFER_HH

#include <vector>

#include "router/flit.hh"
#include "sim/logging.hh"

namespace mediaworm::router {

/**
 * Ring buffer of flits with a hard capacity.
 *
 * Capacity 0 means unbounded (used for NI injection queues, which
 * model host memory rather than router SRAM).
 */
class FlitBuffer
{
  public:
    /** @param capacity Maximum flits held; 0 for unbounded. */
    explicit FlitBuffer(std::size_t capacity = 0) : capacity_(capacity)
    {
        if (capacity_ > 0)
            ring_.reserve(capacity_);
    }

    /** True when no flits are buffered. */
    bool empty() const { return size_ == 0; }

    /** Buffered flit count. */
    std::size_t size() const { return size_; }

    /** Configured capacity; 0 if unbounded. */
    std::size_t capacity() const { return capacity_; }

    /** Remaining space; a large value if unbounded. */
    std::size_t
    space() const
    {
        if (capacity_ == 0)
            return static_cast<std::size_t>(-1) / 2;
        return capacity_ - size_;
    }

    /** True if at capacity (never for unbounded buffers). */
    bool full() const { return capacity_ != 0 && size_ == capacity_; }

    /**
     * Appends a flit; the buffer must not be full. Returns a
     * reference to the stored copy (valid until the next push/pop),
     * so callers that stamp arrival fields can write them in place
     * instead of staging the flit through a stack temporary.
     */
    Flit&
    push(const Flit& flit)
    {
        MW_DEBUG_ASSERT(!full());
        if (capacity_ == 0) {
            // Unbounded: plain growable ring via vector doubling.
            if (size_ == ring_.size()) {
                grow();
            }
        }
        // head_ < ring size and size_ <= ring size, so one
        // conditional subtract wraps; avoids a per-push integer
        // division (ring sizes are not powers of two in general).
        std::size_t tail = head_ + size_;
        if (tail >= ring_.size())
            tail -= ring_.size();
        ring_[tail] = flit;
        ++size_;
        return ring_[tail];
    }

    /** The oldest flit; the buffer must not be empty. */
    const Flit&
    front() const
    {
        MW_DEBUG_ASSERT(size_ > 0);
        return ring_[head_];
    }

    /** Mutable access to the oldest flit. */
    Flit&
    front()
    {
        MW_DEBUG_ASSERT(size_ > 0);
        return ring_[head_];
    }

    /** Removes and returns the oldest flit. */
    Flit
    pop()
    {
        MW_DEBUG_ASSERT(size_ > 0);
        Flit flit = ring_[head_];
        dropFront();
        return flit;
    }

    /** Removes the oldest flit without copying it out; pair with
     *  front() when the caller has already consumed the head. */
    void
    dropFront()
    {
        MW_DEBUG_ASSERT(size_ > 0);
        ++head_;
        if (head_ == ring_.size())
            head_ = 0;
        --size_;
    }

    /** Drops all flits. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    grow()
    {
        const std::size_t old_cap = ring_.size();
        const std::size_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
        std::vector<Flit> next(new_cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = ring_[(head_ + i) % old_cap];
        ring_ = std::move(next);
        head_ = 0;
    }

    std::size_t capacity_;
    std::vector<Flit> ring_ = std::vector<Flit>(capacity_ ? capacity_ : 0);
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_FLIT_BUFFER_HH
