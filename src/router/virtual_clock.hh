/**
 * @file
 * Virtual Clock per-connection state (Zhang, TOCS 1991; Section 3.3).
 *
 * In MediaWorm each message acts as a connection and each flit as a
 * packet: on every flit arrival at a scheduling point,
 *
 *     auxVC <- max(Clock, auxVC); auxVC <- auxVC + Vtick
 *
 * and the flit is stamped with the resulting auxVC. The scheduler
 * serves pending flits in increasing stamp order. Vtick is carried in
 * the header flit and discarded when the tail leaves the router.
 */

#ifndef MEDIAWORM_ROUTER_VIRTUAL_CLOCK_HH
#define MEDIAWORM_ROUTER_VIRTUAL_CLOCK_HH

#include <algorithm>

#include "router/flit.hh"
#include "sim/time.hh"

namespace mediaworm::router {

/** auxVC/Vtick pair for the message currently using a VC. */
class VirtualClockState
{
  public:
    VirtualClockState() = default;

    /**
     * Installs a new message's bandwidth request (header arrival).
     * Resets auxVC so the new message starts from the wall clock.
     */
    void
    beginMessage(sim::Tick vtick) noexcept
    {
        vtick_ = vtick;
        auxVc_ = 0;
    }

    /** Clears state when the tail leaves (paper: info discarded). */
    void
    endMessage() noexcept
    {
        vtick_ = kBestEffortVtick;
        auxVc_ = 0;
    }

    /**
     * Advances the clock for one flit arriving at @p now and returns
     * the timestamp to stamp the flit with. Saturates for best-effort
     * traffic whose Vtick is "infinite". The returned stamp is what
     * the scheduling points cache in their per-VC head records
     * (router/arbiter.hh), so it is computed exactly once per flit
     * per point.
     */
    sim::Tick
    tick(sim::Tick now) noexcept
    {
        auxVc_ = std::max(now, auxVc_);
        if (auxVc_ > kBestEffortVtick - vtick_)
            auxVc_ = kBestEffortVtick; // saturate, never overflow
        else
            auxVc_ += vtick_;
        return auxVc_;
    }

    /** Current auxVC value. */
    sim::Tick auxVc() const noexcept { return auxVc_; }

    /** Current Vtick value. */
    sim::Tick vtick() const noexcept { return vtick_; }

  private:
    sim::Tick auxVc_ = 0;
    sim::Tick vtick_ = kBestEffortVtick;
};

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_VIRTUAL_CLOCK_HH
