#include "router/wormhole_router.hh"

#include <bit>

#include "sim/logging.hh"

namespace mediaworm::router {

WormholeRouter::WormholeRouter(sim::Simulator& simulator,
                               const config::RouterConfig& cfg,
                               std::string name)
    : simulator_(simulator), cfg_(cfg), name_(std::move(name)),
      cycleTime_(cfg.cycleTime())
{
    cfg_.validate();

    const int n = cfg_.numPorts;
    const int m = cfg_.numVcs;

    inputs_ = std::make_unique<InputPort[]>(static_cast<std::size_t>(n));
    outputs_ =
        std::make_unique<OutputPort[]>(static_cast<std::size_t>(n));
    receivers_ =
        std::make_unique<PortReceiver[]>(static_cast<std::size_t>(n));
    creditReceivers_ = std::make_unique<PortCreditReceiver[]>(
        static_cast<std::size_t>(n));

    const std::size_t total = static_cast<std::size_t>(n)
        * static_cast<std::size_t>(m);
    outCredits_.assign(total, 0);
    outReserved_.assign(total, 0);
    outOccupancy_.assign(total, 0);
    outVclock_.assign(total, VirtualClockState{});
    inVclock_.assign(total, VirtualClockState{});
    allocatedMask_.assign(static_cast<std::size_t>(n), 0);
    xbarWaiters_.assign(static_cast<std::size_t>(n), 0);

    for (int p = 0; p < n; ++p) {
        receivers_[static_cast<std::size_t>(p)].init(this, p);
        creditReceivers_[static_cast<std::size_t>(p)].init(this, p);

        InputPort& ip = inputAt(p);
        ip.vcs = std::make_unique<InputVc[]>(
            static_cast<std::size_t>(m));
        for (int v = 0; v < m; ++v) {
            InputVc& ivc = vcAt(ip, v);
            ivc.buffer = FlitBuffer(
                static_cast<std::size_t>(cfg_.flitBufferDepth));
            ivc.routeEvent.init(this, p, v);
            ivc.routeEvent.setBatchSink(this, kOpRouteComputed);
            ivc.serveEvent.init(this, p, v);
            ivc.serveEvent.setBatchSink(this, kOpVcServe);
        }
        ip.muxEvent.init(this, p);
        ip.muxEvent.setBatchSink(this, kOpInputMux);

        OutputPort& op = outputAt(p);
        op.vcs.resize(static_cast<std::size_t>(m));
        for (OutputVc& ovc : op.vcs) {
            ovc.buffer = FlitBuffer(
                static_cast<std::size_t>(cfg_.flitBufferDepth));
            // Waiter lists are bounded by the input-VC count; size
            // them once so the hot path never allocates.
            ovc.allocWaiters =
                Ring<InputVcKey>(static_cast<std::size_t>(n * m));
            ovc.spaceWaiters.reserve(static_cast<std::size_t>(n * m));
        }
        op.xbarEvent.init(this, p);
        op.xbarEvent.setBatchSink(this, kOpXbarDeliver);
        op.muxEvent.init(this, p);
        op.muxEvent.setBatchSink(this, kOpOutputMux);
    }
    // The point-A arbiter only serves multiplexed crossbars, but is
    // initialised unconditionally so its mask state is always well
    // defined. Point C uses the configured discipline for full
    // crossbars (where it is the only flit-level contention point)
    // and FIFO otherwise, matching Section 3.3's placement argument.
    inputArb_.init(cfg_.scheduler, n, m, cfg_.simdArbiter);
    outputArb_.init(cfg_.crossbar == config::CrossbarKind::Full
                        ? cfg_.scheduler
                        : config::SchedulerKind::Fifo,
                    n, m, cfg_.simdArbiter);
    scratchWaiters_.reserve(static_cast<std::size_t>(n * m));
    simulator_.addLazyDrain(this);
}

void
WormholeRouter::connectInputLink(int port, Link& link)
{
    MW_ASSERT(port >= 0 && port < cfg_.numPorts);
    link.connectReceiver(&receivers_[static_cast<std::size_t>(port)]);
    inputs_[static_cast<std::size_t>(port)].link = &link;
}

void
WormholeRouter::connectOutputLink(int port, Link& link,
                                  int downstream_buffer_depth)
{
    MW_ASSERT(port >= 0 && port < cfg_.numPorts);
    MW_ASSERT(downstream_buffer_depth > 0);
    OutputPort& op = outputs_[static_cast<std::size_t>(port)];
    op.link = &link;
    link.connectCreditReceiver(
        &creditReceivers_[static_cast<std::size_t>(port)]);
    for (int v = 0; v < cfg_.numVcs; ++v)
        outCredits_[vcIndex(port, v)] = downstream_buffer_depth;
}

void
WormholeRouter::setRouteFunction(RouteFunction fn)
{
    routeFn_ = std::move(fn);
}

void
WormholeRouter::setRouteTable(RouteTable table)
{
    routeTable_ = std::move(table);
}

int
WormholeRouter::outputLoad(int port) const
{
    int load = static_cast<int>(
        (xbarBusyMask_ >> static_cast<unsigned>(port)) & 1);
    const std::size_t base = vcIndex(port, 0);
    for (int v = 0; v < cfg_.numVcs; ++v) {
        const std::size_t i = base + static_cast<std::size_t>(v);
        load += outOccupancy_[i] + outReserved_[i];
    }
    load += std::popcount(allocatedMask_[static_cast<std::size_t>(port)]);
    return load;
}

// --- arrival ---------------------------------------------------------------

void
WormholeRouter::flitArrived(int port, int vc, const Flit& flit)
{
    InputPort& ip = inputAt(port);
    InputVc& ivc = vcAt(ip, vc);
    MW_ASSERT(!ivc.buffer.full());

    // Push first, stamp in place: the buffer hands back the stored
    // slot, so the arrival fields land directly in ring memory
    // instead of staging the ~96-byte flit through a stack temporary.
    Flit& stamped = ivc.buffer.push(flit);
    VirtualClockState& vclock = inVclock_[vcIndex(port, vc)];
    if (stamped.isHeader()) {
        // The header carries the message's bandwidth request; install
        // it as this VC's Virtual Clock state (Section 3.3).
        vclock.beginMessage(stamped.vtick);
        ivc.vtick = stamped.vtick;
    }
    stamped.stamp = vclock.tick(simulator_.now());
    stamped.arrivalSeq = nextInputSeq_++;
    if (tracer_ != nullptr && tracer_->accepts(stamped.stream)) {
        tracer_->record({simulator_.now(),
                         sim::TracePoint::RouterArrive, stamped.stream,
                         stamped.message, stamped.index,
                         traceLocation_, port, vc});
    }

    if (ivc.state == InputVcState::Idle) {
        MW_ASSERT(stamped.isHeader());
        startRouting(port, vc);
    } else if (ivc.state == InputVcState::Active) {
        if (cfg_.crossbar == config::CrossbarKind::Multiplexed) {
            refreshInputEligibility(port, vc);
            kickInputMux(port);
        } else {
            kickInputVcServer(port, vc);
        }
    }
}

void
WormholeRouter::creditArrived(int port, int vc)
{
    // Credits carry no stream identity, so a stream-filtered tracer
    // drops them (accepts(invalid) is false once a filter is set).
    if (tracer_ != nullptr && tracer_->accepts(sim::StreamId())) {
        tracer_->record({simulator_.now(),
                         sim::TracePoint::CreditReturn, sim::StreamId(),
                         0, 0, traceLocation_, port, vc});
    }
    ++outCredits_[vcIndex(port, vc)];
    refreshOutputEligibility(port, vc);
    if (cfg_.switching == config::SwitchingKind::VirtualCutThrough)
        tryGrantNextWaiter(port, vc);
    kickOutputMux(port);
}

// --- routing and VC allocation ---------------------------------------------

void
WormholeRouter::startRouting(int port, int vc)
{
    InputVc& ivc = vcAt(inputAt(port), vc);
    MW_ASSERT(!ivc.buffer.empty() && ivc.buffer.front().isHeader());
    ivc.state = InputVcState::Routing;
    simulator_.scheduleAfter(
        ivc.routeEvent,
        static_cast<sim::Tick>(cfg_.headerPipelineCycles) * cycle());
}

void
WormholeRouter::routeComputed(int port, int vc)
{
    InputVc& ivc = vcAt(inputAt(port), vc);
    MW_ASSERT(ivc.state == InputVcState::Routing);
    MW_ASSERT(!ivc.buffer.empty());
    const Flit& header = ivc.buffer.front();
    MW_ASSERT(header.isHeader());

    RouteCandidates candidates;
    const auto dest = static_cast<std::size_t>(header.dest.value());
    if (dest < routeTable_.size()) {
        candidates = routeTable_[dest];
    } else {
        MW_ASSERT(routeFn_ != nullptr);
        candidates = routeFn_(header.dest);
    }
    MW_ASSERT(candidates.count >= 1);

    // VC-class mapping: class -1 keeps the legacy identity (output
    // VC = the header's lane); class c maps into the c-th band of
    // lanes = numVcs / vcClasses output VCs.
    const int lanes = cfg_.numVcs / cfg_.vcClasses;
    const auto map_vc = [&](int i) {
        const int cls = candidates.vcClasses[static_cast<std::size_t>(i)];
        return cls < 0 ? static_cast<int>(header.vcLane)
                       : cls * lanes + header.vcLane % lanes;
    };

    int choice;
    if (candidates.select == RouteCandidates::Select::AdaptiveEscape
        && candidates.count > 1) {
        // Adaptive selection: prefer the least-loaded adaptive
        // candidate whose mapped output VC is free right now, so a
        // message never waits for the allocation of an adaptive VC;
        // otherwise fall back to the escape candidate (last), whose
        // dependency graph is acyclic by construction.
        choice = candidates.count - 1;
        int best_load = -1;
        for (int i = 0; i < candidates.count - 1; ++i) {
            const int p = candidates.ports[static_cast<std::size_t>(i)];
            const std::uint64_t vbit = std::uint64_t{1}
                << static_cast<unsigned>(map_vc(i));
            if ((allocatedMask_[static_cast<std::size_t>(p)] & vbit)
                != 0)
                continue;
            const int load = outputLoad(p);
            if (best_load < 0 || load < best_load) {
                best_load = load;
                choice = i;
            }
        }
    } else {
        // Fat-channel selection: pick the least-loaded candidate port
        // (Section 3.4: "a message can use any one of the two links
        // ... based on the current load").
        choice = 0;
        int best_load = outputLoad(candidates.ports[0]);
        for (int i = 1; i < candidates.count; ++i) {
            const int load =
                outputLoad(candidates.ports[static_cast<std::size_t>(i)]);
            if (load < best_load) {
                best_load = load;
                choice = i;
            }
        }
    }

    const int out_port =
        candidates.ports[static_cast<std::size_t>(choice)];
    const int out_vc = map_vc(choice);
    MW_ASSERT(out_vc >= 0 && out_vc < cfg_.numVcs);
    ++headersRouted_;
    requestOutputVc(port, vc, out_port, out_vc);
}

void
WormholeRouter::requestOutputVc(int port, int vc, int out_port,
                                int out_vc)
{
    InputVc& ivc = vcAt(inputAt(port), vc);
    OutputVc& ovc = vcAt(outputAt(out_port), out_vc);
    ivc.outPort = out_port;
    ivc.outVc = out_vc;
    ivc.state = InputVcState::WaitingVc;
    ovc.allocWaiters.push_back({port, vc});
    if (!tryGrantNextWaiter(out_port, out_vc))
        ++allocationWaits_;
}

bool
WormholeRouter::tryGrantNextWaiter(int out_port, int out_vc)
{
    OutputVc& ovc = vcAt(outputAt(out_port), out_vc);
    const std::uint64_t vbit = std::uint64_t{1}
        << static_cast<unsigned>(out_vc);
    if ((allocatedMask_[static_cast<std::size_t>(out_port)] & vbit) != 0
        || ovc.allocWaiters.empty())
        return false;

    const InputVcKey key = ovc.allocWaiters.front();
    if (cfg_.switching == config::SwitchingKind::VirtualCutThrough) {
        // Cut-through gate: the next hop must be able to buffer the
        // whole message, so a blocked message parks here instead of
        // stretching across the link. Re-checked on credit returns.
        const InputVc& ivc = vcAt(inputAt(key.port), key.vc);
        MW_ASSERT(!ivc.buffer.empty()
                  && ivc.buffer.front().isHeader());
        const int message_flits = ivc.buffer.front().messageFlits;
        if (message_flits > cfg_.flitBufferDepth) {
            sim::fatal("virtual cut-through requires messages (%d "
                       "flits) to fit the %d-flit VC buffers",
                       message_flits, cfg_.flitBufferDepth);
        }
        if (outCredits_[vcIndex(out_port, out_vc)] < message_flits)
            return false;
    }
    ovc.allocWaiters.pop_front();
    allocatedMask_[static_cast<std::size_t>(out_port)] |= vbit;
    grantOutputVc(key, out_port, out_vc);
    return true;
}

void
WormholeRouter::grantOutputVc(InputVcKey key, int out_port, int out_vc)
{
    InputPort& ip = inputAt(key.port);
    InputVc& ivc = vcAt(ip, key.vc);
    MW_ASSERT(ivc.outPort == out_port && ivc.outVc == out_vc);
    ivc.state = InputVcState::Active;
    ivc.outPortPtr = &outputAt(out_port);
    ivc.outVcPtr = &vcAt(*ivc.outPortPtr, out_vc);
    ivc.outFlatIdx = vcIndex(out_port, out_vc);
    if (cfg_.crossbar == config::CrossbarKind::Multiplexed) {
        refreshInputEligibility(key.port, key.vc);
        kickInputMux(key.port);
    } else {
        kickInputVcServer(key.port, key.vc);
    }
}

void
WormholeRouter::finishInputMessage(InputVcKey key)
{
    InputVc& ivc = vcAt(inputAt(key.port), key.vc);
    ivc.outPort = -1;
    ivc.outVc = -1;
    ivc.outPortPtr = nullptr;
    ivc.outVcPtr = nullptr;
    ivc.outFlatIdx = 0;
    if (!ivc.buffer.empty()) {
        // The next message's header is already queued behind the tail.
        startRouting(key.port, key.vc);
    } else {
        ivc.state = InputVcState::Idle;
    }
}

// --- point A: crossbar input multiplexer (multiplexed crossbar) ------------

void
WormholeRouter::kickInputMux(int port)
{
    InputPort& ip = inputAt(port);
    if (ip.mux.kick(simulator_, ip.muxEvent))
        serveInputMux(port);
}

void
WormholeRouter::serveInputMux(int port)
{
    InputPort& ip = inputAt(port);
    MW_DEBUG_ASSERT(!ip.mux.busy());
    MW_DEBUG_ASSERT(cfg_.crossbar == config::CrossbarKind::Multiplexed);

    // The arbiter mask holds every Active VC with a buffered head
    // flit; the crossbar and downstream-space gates are evaluated
    // here (they depend on other ports' state), pruning the mask and
    // parking blocked VCs on the matching wait list. Bits are walked
    // in ascending VC order, exactly like the scan this replaces.
    // Both gates read SoA state only - the downstream-space test uses
    // the occupancy mirror (output buffers all have flitBufferDepth
    // capacity) and the crossbar test one bit of xbarBusyMask_ - so
    // the common path never dereferences the granted port/VC structs.
    const int depth = cfg_.flitBufferDepth;
    std::uint64_t pending = inputArb_.mask(port);
    std::uint64_t serveable = 0;
    while (pending != 0) {
        const int v = __builtin_ctzll(pending);
        pending &= pending - 1;
        InputVc& ivc = vcAt(ip, v);
        const std::size_t idx = ivc.outFlatIdx;
        if (depth - outOccupancy_[idx] <= outReserved_[idx]) {
            registerSpaceWaiter(*ivc.outVcPtr, {port, v});
            continue;
        }
        if ((xbarBusyMask_ >> static_cast<unsigned>(ivc.outPort)) & 1) {
            xbarWaiters_[static_cast<std::size_t>(ivc.outPort)] |=
                std::uint64_t{1} << static_cast<unsigned>(port);
            continue;
        }
        serveable |= std::uint64_t{1} << static_cast<unsigned>(v);
    }
    if (serveable == 0)
        return;

    const int v = inputArb_.pickMasked(port, serveable);
    InputVc& ivc = vcAt(ip, v);

    // Dispatch the head flit into the crossbar (point B server).
    // The flit is copied straight from the buffer head into the
    // crossbar register; no intermediate stack copy.
    OutputPort& op = *ivc.outPortPtr;
    ++outReserved_[ivc.outFlatIdx];
    MW_DEBUG_ASSERT(
        ((xbarBusyMask_ >> static_cast<unsigned>(ivc.outPort)) & 1)
        == 0);
    xbarBusyMask_ |= std::uint64_t{1}
        << static_cast<unsigned>(ivc.outPort);
    op.xbarFlit = ivc.buffer.front();
    op.xbarFlitVc = ivc.outVc;
    ivc.buffer.dropFront();
    const bool is_tail = op.xbarFlit.isTail();
    simulator_.scheduleAfter(
        op.xbarEvent,
        static_cast<sim::Tick>(cfg_.crossbarCycles) * cycle());

    if (ip.link)
        ip.link->sendCredit(v);
    if (is_tail)
        finishInputMessage({port, v});
    // The pop (and, for tails, the VC release) changed this slot's
    // head; re-derive its bit once the dust settles.
    refreshInputEligibility(port, v);

    // An empty mask means next cycle's wakeup is provably a no-op
    // (the serve loop above has no side effects on an empty mask), so
    // LazyTick elides it unless something raises a bit first.
    ip.mux.arm(simulator_, ip.muxEvent, cycle(),
               inputArb_.mask(port) == 0);
}

void
WormholeRouter::inputMuxFired(int port)
{
    inputAt(port).mux.fired();
    serveInputMux(port);
}

// --- full crossbar: one private server per input VC -------------------------

void
WormholeRouter::kickInputVcServer(int port, int vc)
{
    if (!vcAt(inputAt(port), vc).serverBusy)
        serveInputVc(port, vc);
}

void
WormholeRouter::serveInputVc(int port, int vc)
{
    InputVc& ivc = vcAt(inputAt(port), vc);
    MW_DEBUG_ASSERT(!ivc.serverBusy);
    if (ivc.state != InputVcState::Active || ivc.buffer.empty())
        return;
    OutputVc& ovc = *ivc.outVcPtr;
    if (ovc.buffer.space()
        <= static_cast<std::size_t>(outReserved_[ivc.outFlatIdx])) {
        registerSpaceWaiter(ovc, {port, vc});
        return;
    }

    ++outReserved_[ivc.outFlatIdx];
    ivc.inFlight = ivc.buffer.front();
    ivc.buffer.dropFront();
    ivc.inFlightOutPort = ivc.outPort;
    ivc.inFlightOutVc = ivc.outVc;
    ivc.serverBusy = true;
    simulator_.scheduleAfter(
        ivc.serveEvent,
        static_cast<sim::Tick>(cfg_.crossbarCycles) * cycle());

    InputPort& ip = inputAt(port);
    if (ip.link)
        ip.link->sendCredit(vc);
    if (ivc.inFlight.isTail())
        finishInputMessage({port, vc});
}

void
WormholeRouter::vcServeFired(int port, int vc)
{
    InputVc& ivc = vcAt(inputAt(port), vc);
    const int out_port = ivc.inFlightOutPort;
    const int out_vc = ivc.inFlightOutVc;
    ivc.serverBusy = false;
    depositIntoOutputVc(out_port, out_vc, ivc.inFlight);
    serveInputVc(port, vc);
}

// --- point B: crossbar output port ------------------------------------------

void
WormholeRouter::xbarDeliver(int out_port)
{
    OutputPort& op = outputAt(out_port);
    MW_DEBUG_ASSERT(
        ((xbarBusyMask_ >> static_cast<unsigned>(out_port)) & 1) == 1);
    const int out_vc = op.xbarFlitVc;
    xbarBusyMask_ &=
        ~(std::uint64_t{1} << static_cast<unsigned>(out_port));
    op.xbarFlitVc = -1;
    // The crossbar register is dead once deposited (the deposit
    // copies it into the output buffer before any nested serve can
    // reload it), so hand it over by reference.
    depositIntoOutputVc(out_port, out_vc, op.xbarFlit);

    // Wake input multiplexers blocked on this crossbar output.
    std::uint64_t waiters = xbarWaiters_[static_cast<std::size_t>(out_port)];
    xbarWaiters_[static_cast<std::size_t>(out_port)] = 0;
    while (waiters != 0) {
        const int p = __builtin_ctzll(waiters);
        waiters &= waiters - 1;
        kickInputMux(p);
    }
}

void
WormholeRouter::depositIntoOutputVc(int out_port, int out_vc,
                                    Flit& flit)
{
    OutputPort& op = outputAt(out_port);
    OutputVc& ovc = vcAt(op, out_vc);
    const std::size_t idx = vcIndex(out_port, out_vc);
    MW_DEBUG_ASSERT(outReserved_[idx] > 0);
    --outReserved_[idx];

    // Point-C stamping: relevant when the configured discipline runs
    // at the VC output multiplexer (full crossbars). Stamped in
    // place — the caller's flit is dead after the push below.
    VirtualClockState& vclock = outVclock_[idx];
    if (flit.isHeader())
        vclock.beginMessage(flit.vtick);
    flit.stamp = vclock.tick(simulator_.now());
    flit.arrivalSeq = op.nextArrivalSeq++;
    MW_DEBUG_ASSERT(!ovc.buffer.full());
    ovc.buffer.push(flit);
    ++outOccupancy_[idx];
    refreshOutputEligibility(out_port, out_vc);
    kickOutputMux(out_port);
}

// --- point C: VC output multiplexer ------------------------------------------

void
WormholeRouter::kickOutputMux(int port)
{
    OutputPort& op = outputAt(port);
    if (op.mux.kick(simulator_, op.muxEvent))
        serveOutputMux(port);
}

void
WormholeRouter::serveOutputMux(int port)
{
    OutputPort& op = outputAt(port);
    MW_DEBUG_ASSERT(!op.mux.busy());
    MW_DEBUG_ASSERT(op.link != nullptr);

    // Point-C eligibility (buffered flit + credit) is maintained
    // incrementally at deposit/credit/send time, so an idle kick is
    // one mask test instead of a VC scan.
    if (!outputArb_.anyEligible(port))
        return;

    const int v = outputArb_.pick(port);
    OutputVc& ovc = vcAt(op, v);

    // The link copies the flit into its in-flight queue (delivery is
    // a later event), so it can be sent straight from the buffer head
    // and dropped — no stack copy of the ~96-byte Flit.
    const Flit& flit = ovc.buffer.front();
    const bool is_tail = flit.isTail();
    op.link->sendFlit(flit, v);
    ++flitsForwarded_;
    if (tracer_ != nullptr && tracer_->accepts(flit.stream)) {
        tracer_->record({simulator_.now(),
                         sim::TracePoint::RouterDepart, flit.stream,
                         flit.message, flit.index, traceLocation_,
                         port, v});
    }
    ovc.buffer.dropFront();
    const std::size_t idx = vcIndex(port, v);
    --outCredits_[idx];
    --outOccupancy_[idx];
    refreshOutputEligibility(port, v);
    wakeSpaceWaiters(ovc);

    if (is_tail) {
        // Tail left stage 5: discard the Vtick state and hand the VC
        // to the next waiting message (stage-3 arbitration order;
        // virtual cut-through additionally gates on downstream
        // buffer space).
        outVclock_[idx].endMessage();
        allocatedMask_[static_cast<std::size_t>(port)] &=
            ~(std::uint64_t{1} << static_cast<unsigned>(v));
        tryGrantNextWaiter(port, v);
    }

    // An empty eligibility mask means next cycle's wakeup would do
    // nothing (the anyEligible() gate above returns before any side
    // effect), so LazyTick elides it.
    op.mux.arm(simulator_, op.muxEvent, cycle(),
               !outputArb_.anyEligible(port));
}

void
WormholeRouter::outputMuxFired(int port)
{
    outputAt(port).mux.fired();
    serveOutputMux(port);
}

// --- waiter bookkeeping -------------------------------------------------------

void
WormholeRouter::registerSpaceWaiter(OutputVc& ovc, InputVcKey key)
{
    InputVc& ivc = vcAt(inputAt(key.port), key.vc);
    if (ivc.inSpaceWaitList)
        return;
    ivc.inSpaceWaitList = true;
    ovc.spaceWaiters.push_back(key);
}

void
WormholeRouter::wakeSpaceWaiters(OutputVc& ovc)
{
    if (ovc.spaceWaiters.empty())
        return;
    // Copy out first: kicked handlers may re-register. The member
    // scratch (instead of a fresh vector) keeps both lists at their
    // working-set capacity; wakes never nest because every path from
    // a kick back to serveOutputMux crosses a scheduled event.
    MW_ASSERT(scratchWaiters_.empty());
    scratchWaiters_.assign(ovc.spaceWaiters.begin(),
                           ovc.spaceWaiters.end());
    ovc.spaceWaiters.clear();
    for (const InputVcKey& key : scratchWaiters_)
        vcAt(inputAt(key.port), key.vc).inSpaceWaitList = false;
    for (const InputVcKey& key : scratchWaiters_) {
        if (cfg_.crossbar == config::CrossbarKind::Multiplexed)
            kickInputMux(key.port);
        else
            kickInputVcServer(key.port, key.vc);
    }
    scratchWaiters_.clear();
}

// --- batched dispatch (DESIGN.md section 13) --------------------------------

void
WormholeRouter::fireBatch(sim::Event& first)
{
    // One virtual call covers every same-tick event targeting this
    // router. Members are pulled from the live queue one at a time
    // (Simulator::nextBatchMember), so events inserted mid-batch —
    // e.g. a lazily-elided mux wakeup re-materialized by a kick —
    // fire in exact (when, seq) order.
    sim::Event* e = &first;
    do {
        switch (static_cast<BatchOp>(e->batchOp())) {
        case kOpRouteComputed: {
            auto* ev =
                static_cast<VcEvent<&WormholeRouter::routeComputed>*>(e);
            routeComputed(ev->port, ev->vc);
            break;
        }
        case kOpVcServe: {
            auto* ev =
                static_cast<VcEvent<&WormholeRouter::vcServeFired>*>(e);
            vcServeFired(ev->port, ev->vc);
            break;
        }
        case kOpInputMux: {
            auto* ev =
                static_cast<PortEvent<&WormholeRouter::inputMuxFired>*>(
                    e);
            inputMuxFired(ev->port);
            break;
        }
        case kOpXbarDeliver: {
            auto* ev =
                static_cast<PortEvent<&WormholeRouter::xbarDeliver>*>(e);
            xbarDeliver(ev->port);
            break;
        }
        case kOpOutputMux: {
            auto* ev =
                static_cast<PortEvent<&WormholeRouter::outputMuxFired>*>(
                    e);
            outputMuxFired(ev->port);
            break;
        }
        }
        e = simulator_.nextBatchMember(this);
    } while (e != nullptr);
}

std::uint64_t
WormholeRouter::flushLazy(sim::Tick until)
{
    std::uint64_t credited = 0;
    for (int p = 0; p < cfg_.numPorts; ++p) {
        credited += inputAt(p).mux.flush(until);
        credited += outputAt(p).mux.flush(until);
    }
    return credited;
}

bool
WormholeRouter::lazyPending() const
{
    for (int p = 0; p < cfg_.numPorts; ++p) {
        if (inputAt(p).mux.pending() || outputAt(p).mux.pending())
            return true;
    }
    return false;
}

// --- diagnostics ----------------------------------------------------------------

void
WormholeRouter::registerStats(stats::Registry& registry) const
{
    registry.add(name_ + ".flits_forwarded",
                 "flits that left the router",
                 [this] { return static_cast<double>(flitsForwarded_); });
    registry.add(name_ + ".headers_routed",
                 "messages whose header computed a route",
                 [this] { return static_cast<double>(headersRouted_); });
    registry.add(name_ + ".allocation_waits",
                 "messages that blocked on output-VC allocation",
                 [this] {
                     return static_cast<double>(allocationWaits_);
                 });
    for (int p = 0; p < cfg_.numPorts; ++p) {
        registry.add(name_ + ".port" + std::to_string(p)
                         + ".output_load",
                     "buffered flits at this output port",
                     [this, p] {
                         return static_cast<double>(outputLoad(p));
                     });
    }
}

void
WormholeRouter::debugCorruptVcForTest(int port, int vc)
{
    // An Active input VC must carry a valid grant; wiping it is the
    // smallest corruption every invariant profile detects.
    InputVc& ivc = vcAt(inputAt(port), vc);
    ivc.state = InputVcState::Active;
    ivc.outPort = -1;
    ivc.outVc = -1;
}

/**
 * Contextual invariant check: panics with the router name and the
 * offending port/VC, so a crash dump (see obs::FlightRecorder)
 * pinpoints where the state went bad. Relies on `p` and `v` being the
 * loop variables in scope at the use site.
 */
#define MW_CHECK(cond)                                                  \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::mediaworm::sim::panic(                                    \
                "%s: invariant '%s' failed at port=%d vc=%d (%s:%d)",   \
                name_.c_str(), #cond, p, v, __FILE__, __LINE__);        \
        }                                                               \
    } while (0)

void
WormholeRouter::checkInvariants() const
{
    for (int p = 0; p < cfg_.numPorts; ++p) {
        const InputPort& ip = inputAt(p);
        for (int v = 0; v < cfg_.numVcs; ++v) {
            const InputVc& ivc = vcAt(ip, v);
            MW_CHECK(ivc.buffer.size()
                      <= static_cast<std::size_t>(
                          cfg_.flitBufferDepth));
            if (ivc.state == InputVcState::Active) {
                MW_CHECK(ivc.outPort >= 0 && ivc.outVc >= 0);
                // The cached grant pointers must track the ids.
                MW_CHECK(ivc.outPortPtr == &outputAt(ivc.outPort));
                MW_CHECK(ivc.outVcPtr
                          == &vcAt(*ivc.outPortPtr, ivc.outVc));
            }
            if (ivc.state == InputVcState::Idle)
                MW_CHECK(ivc.buffer.empty());
            if (cfg_.crossbar == config::CrossbarKind::Multiplexed) {
                // Eligibility-mask invariant: bit v mirrors (Active
                // && non-empty), and the cached head record matches
                // the head flit (DESIGN.md section 9).
                const bool ready =
                    ivc.state == InputVcState::Active
                    && !ivc.buffer.empty();
                MW_CHECK(inputArb_.eligible(p, v) == ready);
                if (ready) {
                    const Flit& head = ivc.buffer.front();
                    MW_CHECK(inputArb_.head(p, v).stamp == head.stamp);
                    MW_CHECK(inputArb_.head(p, v).fifoSeq
                              == head.arrivalSeq);
                    MW_CHECK(inputArb_.head(p, v).vtick == head.vtick);
                }
            }
        }
        const OutputPort& op = outputAt(p);
        for (int v = 0; v < cfg_.numVcs; ++v) {
            const OutputVc& ovc = vcAt(op, v);
            const std::size_t i = vcIndex(p, v);
            MW_CHECK(outReserved_[i] >= 0);
            MW_CHECK(ovc.buffer.size()
                          + static_cast<std::size_t>(outReserved_[i])
                      <= ovc.buffer.capacity());
            MW_CHECK(outCredits_[i] >= 0);
            // SoA occupancy mirrors the buffer it shadows.
            MW_CHECK(outOccupancy_[i]
                      == static_cast<int>(ovc.buffer.size()));
            const bool allocated =
                (allocatedMask_[static_cast<std::size_t>(p)]
                 >> static_cast<unsigned>(v))
                & 1;
            if (!allocated) {
                // Wormhole grants immediately on release; only the
                // cut-through space gate may leave waiters parked.
                if (cfg_.switching == config::SwitchingKind::Wormhole)
                    MW_CHECK(ovc.allocWaiters.empty());
                MW_CHECK(ovc.buffer.empty());
            }
            const bool ready =
                !ovc.buffer.empty() && outCredits_[i] > 0;
            MW_CHECK(outputArb_.eligible(p, v) == ready);
            if (ready) {
                const Flit& head = ovc.buffer.front();
                MW_CHECK(outputArb_.head(p, v).stamp == head.stamp);
                MW_CHECK(outputArb_.head(p, v).fifoSeq == head.arrivalSeq);
                MW_CHECK(outputArb_.head(p, v).vtick == head.vtick);
            }
        }
        {
            // The incremental refreshes must keep the arbiter mask
            // equal to the one-pass SoA derivation.
            const int v = -1;
            (void)v;
            MW_CHECK(outputArb_.mask(p) == computeOutputMask(p));
        }
    }
    // One-pass sweep consistency: for stateless disciplines the
    // vectorized all-ports peek must agree with the per-port pick
    // the serve paths would make (DESIGN.md section 14).
    const MultiPortArbiter* const sweeps[] = {&inputArb_, &outputArb_};
    for (const MultiPortArbiter* arb : sweeps) {
        if (!arb->statelessKind())
            continue;
        int winners[64];
        arb->peekAll(winners);
        for (int p = 0; p < cfg_.numPorts; ++p) {
            const int v = -1;
            (void)v;
            const std::uint64_t m = arb->mask(p);
            MW_CHECK(winners[p]
                      == (m == 0 ? -1 : arb->peekMasked(p, m)));
        }
    }
}

#undef MW_CHECK

} // namespace mediaworm::router
