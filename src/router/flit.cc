#include "router/flit.hh"

namespace mediaworm::router {

const char*
toString(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::Cbr:
        return "CBR";
      case TrafficClass::Vbr:
        return "VBR";
      case TrafficClass::BestEffort:
        return "best-effort";
    }
    return "?";
}

} // namespace mediaworm::router
