/**
 * @file
 * Multiplexer scheduling disciplines.
 *
 * A Scheduler chooses which of several competing virtual channels a
 * multiplexer serves next. MediaWorm's contribution is plugging
 * Virtual Clock in where conventional routers use FIFO; this
 * interface makes the discipline a one-line configuration change and
 * lets the ablation benches sweep all of them.
 */

#ifndef MEDIAWORM_ROUTER_SCHEDULER_HH
#define MEDIAWORM_ROUTER_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config/router_config.hh"
#include "sim/time.hh"

namespace mediaworm::router {

/** One VC competing for the multiplexer in this round. */
struct Candidate
{
    int slot;              ///< VC index at this scheduling point.
    sim::Tick stamp;       ///< Virtual Clock timestamp of the head flit.
    std::uint64_t fifoSeq; ///< Arrival order of the head flit.
    sim::Tick vtick;       ///< Rate request (for weighted disciplines).
};

/** Strategy interface: pick one candidate to serve. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Picks the winning candidate.
     *
     * @param candidates Non-empty set of eligible VCs.
     * @return Index into @p candidates of the winner.
     */
    virtual std::size_t
    pick(const std::vector<Candidate>& candidates) = 0;

    /** Display name of the discipline. */
    virtual const char* name() const = 0;
};

/** Serves the flit that arrived first (conventional router). */
class FifoScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "fifo"; }
};

/** Rotating priority among VC slots. */
class RoundRobinScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "round-robin"; }

  private:
    int lastSlot_ = -1;
};

/** Lowest Virtual Clock stamp first; FIFO among equal stamps. */
class VirtualClockScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "virtual-clock"; }
};

/**
 * Deficit round robin with quanta proportional to requested rate
 * (1/Vtick). A rate-aware alternative to Virtual Clock used by the
 * scheduler ablation bench.
 */
class WeightedRoundRobinScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "weighted-rr"; }

  private:
    std::vector<double> deficit_;
    int lastSlot_ = -1;
};

/** Instantiates the scheduler selected by @p kind. */
std::unique_ptr<Scheduler> makeScheduler(config::SchedulerKind kind);

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_SCHEDULER_HH
