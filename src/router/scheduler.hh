/**
 * @file
 * Multiplexer scheduling disciplines.
 *
 * A Scheduler chooses which of several competing virtual channels a
 * multiplexer serves next. MediaWorm's contribution is plugging
 * Virtual Clock in where conventional routers use FIFO; this
 * interface makes the discipline a one-line configuration change and
 * lets the ablation benches sweep all of them.
 */

#ifndef MEDIAWORM_ROUTER_SCHEDULER_HH
#define MEDIAWORM_ROUTER_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "config/router_config.hh"
#include "sim/time.hh"

namespace mediaworm::router {

/** One VC competing for the multiplexer in this round. */
struct Candidate
{
    int slot;              ///< VC index at this scheduling point.
    sim::Tick stamp;       ///< Virtual Clock timestamp of the head flit.
    std::uint64_t fifoSeq; ///< Arrival order of the head flit.
    sim::Tick vtick;       ///< Rate request (for weighted disciplines).
};

/**
 * Weighted round robin's one-flit service quantum in Q32.32 fixed
 * point. Deficits are integers so repeated replenishment accumulates
 * exactly - the old double-based accounting drifted when rate ratios
 * had no finite binary expansion (1/3, 1/10, ...), skewing long-run
 * service shares.
 */
constexpr std::uint64_t kWrrQuantum = std::uint64_t{1} << 32;

/**
 * Replenishment weight of a slot requesting one flit per @p vtick
 * when the fastest competing slot requests one per @p min_vtick:
 * floor(min_vtick / vtick) in Q32.32. The fastest slot gets exactly
 * kWrrQuantum, pinning the guarantee that one replenish pass always
 * makes some slot eligible. Shared by the legacy
 * WeightedRoundRobinScheduler and the MuxArbiter kernel so the two
 * stay bit-identical.
 */
inline std::uint64_t
wrrWeight(sim::Tick min_vtick, sim::Tick vtick)
{
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(
             static_cast<std::uint64_t>(min_vtick))
         << 32)
        / static_cast<std::uint64_t>(vtick));
}

/** Strategy interface: pick one candidate to serve. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Picks the winning candidate.
     *
     * @param candidates Non-empty set of eligible VCs.
     * @return Index into @p candidates of the winner.
     */
    virtual std::size_t
    pick(const std::vector<Candidate>& candidates) = 0;

    /** Display name of the discipline. */
    virtual const char* name() const = 0;
};

/** Serves the flit that arrived first (conventional router). */
class FifoScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "fifo"; }
};

/** Rotating priority among VC slots. */
class RoundRobinScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "round-robin"; }

  private:
    int lastSlot_ = -1;
};

/** Lowest Virtual Clock stamp first; FIFO among equal stamps. */
class VirtualClockScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "virtual-clock"; }
};

/**
 * Deficit round robin with quanta proportional to requested rate
 * (1/Vtick). A rate-aware alternative to Virtual Clock used by the
 * scheduler ablation bench.
 */
class WeightedRoundRobinScheduler final : public Scheduler
{
  public:
    std::size_t pick(const std::vector<Candidate>& candidates) override;
    const char* name() const override { return "weighted-rr"; }

  private:
    std::vector<std::uint64_t> deficit_; ///< Q32.32 fixed point.
    int lastSlot_ = -1;
};

/** Instantiates the scheduler selected by @p kind. */
std::unique_ptr<Scheduler> makeScheduler(config::SchedulerKind kind);

} // namespace mediaworm::router

#endif // MEDIAWORM_ROUTER_SCHEDULER_HH
