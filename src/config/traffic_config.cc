#include "config/traffic_config.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::config {

const char*
toString(RealTimeKind kind)
{
    switch (kind) {
      case RealTimeKind::Vbr:
        return "vbr";
      case RealTimeKind::Cbr:
        return "cbr";
      case RealTimeKind::MpegGop:
        return "mpeg-gop";
    }
    return "?";
}

const char*
toString(StreamPlacement placement)
{
    switch (placement) {
      case StreamPlacement::Balanced:
        return "balanced";
      case StreamPlacement::UniformRandom:
        return "uniform-random";
    }
    return "?";
}

double
TrafficConfig::streamRateMbps() const
{
    const double bits_per_frame = frameBytesMean * 8.0;
    const double frames_per_second = static_cast<double>(sim::kSecond)
        / static_cast<double>(frameInterval);
    return bits_per_frame * frames_per_second / 1e6;
}

sim::Tick
TrafficConfig::streamVtick(int flit_size_bits) const
{
    // Flits per second reserved by one stream (the mean demand times
    // the reservation factor); Vtick is its inverse.
    const double flits_per_second = reservedRateFactor
        * streamRateMbps() * 1e6 / static_cast<double>(flit_size_bits);
    return static_cast<sim::Tick>(
        std::llround(static_cast<double>(sim::kSecond)
                     / flits_per_second));
}

void
TrafficConfig::validate() const
{
    using sim::fatal;
    if (inputLoad < 0.0 || inputLoad > 1.5)
        fatal("TrafficConfig: inputLoad %.3f out of range [0,1.5]",
              inputLoad);
    if (realTimeFraction < 0.0 || realTimeFraction > 1.0)
        fatal("TrafficConfig: realTimeFraction %.3f out of range [0,1]",
              realTimeFraction);
    if (frameBytesMean <= 0.0 || frameBytesStddev < 0.0)
        fatal("TrafficConfig: invalid frame size parameters");
    if (frameInterval <= 0)
        fatal("TrafficConfig: frameInterval must be positive");
    if (messageFlits < 2 || beMessageFlits < 2)
        fatal("TrafficConfig: messages need at least 2 flits "
              "(header + tail)");
    if (reservedRateFactor < 1.0 || reservedRateFactor > 64.0)
        fatal("TrafficConfig: reservedRateFactor %.3f out of [1,64]",
              reservedRateFactor);
    if (warmupFrames < 0 || measuredFrames < 1)
        fatal("TrafficConfig: invalid warmup/measurement frame counts");
}

std::string
TrafficConfig::describe() const
{
    char buf[200];
    const double x = realTimeFraction * 100.0;
    std::snprintf(buf, sizeof(buf),
                  "load=%.2f mix=%.0f:%.0f rt=%s frame=%.0fB+-%.0fB/"
                  "%.0fms msg=%d flits",
                  inputLoad, x, 100.0 - x, toString(realTimeKind),
                  frameBytesMean, frameBytesStddev,
                  sim::toMilliseconds(frameInterval), messageFlits);
    return buf;
}

} // namespace mediaworm::config
