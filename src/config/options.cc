#include "config/options.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mediaworm::config {

namespace {

/** Parses a long integer strictly; returns false on trailing junk. */
bool
parseLong(const std::string& text, long* out)
{
    if (text.empty())
        return false;
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    *out = value;
    return true;
}

/** Parses a double strictly. */
bool
parseDouble(const std::string& text, double* out)
{
    if (text.empty())
        return false;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    *out = value;
    return true;
}

} // namespace

OptionParser::OptionParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
OptionParser::addFlag(const std::string& name, const std::string& help,
                      bool* target)
{
    Option option;
    option.name = name;
    option.help = help;
    option.isFlag = true;
    option.apply = [target](const std::string& value) -> std::string {
        if (value.empty() || value == "true" || value == "1") {
            *target = true;
        } else if (value == "false" || value == "0") {
            *target = false;
        } else {
            return "expected true/false";
        }
        return "";
    };
    options_.push_back(std::move(option));
}

void
OptionParser::addInt(const std::string& name, const std::string& help,
                     int* target, int min_value, int max_value)
{
    Option option;
    option.name = name;
    option.help = help;
    char hint[64];
    std::snprintf(hint, sizeof(hint), "<int %d..%d>", min_value,
                  max_value);
    option.valueHint = hint;
    option.apply = [target, min_value,
                    max_value](const std::string& value) -> std::string {
        long parsed = 0;
        if (!parseLong(value, &parsed))
            return "expected an integer, got '" + value + "'";
        if (parsed < min_value || parsed > max_value) {
            return "value " + value + " outside ["
                + std::to_string(min_value) + ", "
                + std::to_string(max_value) + "]";
        }
        *target = static_cast<int>(parsed);
        return "";
    };
    options_.push_back(std::move(option));
}

void
OptionParser::addDouble(const std::string& name,
                        const std::string& help, double* target,
                        double min_value, double max_value)
{
    Option option;
    option.name = name;
    option.help = help;
    char hint[64];
    std::snprintf(hint, sizeof(hint), "<float %g..%g>", min_value,
                  max_value);
    option.valueHint = hint;
    option.apply = [target, min_value,
                    max_value](const std::string& value) -> std::string {
        double parsed = 0;
        if (!parseDouble(value, &parsed))
            return "expected a number, got '" + value + "'";
        if (parsed < min_value || parsed > max_value) {
            char msg[96];
            std::snprintf(msg, sizeof(msg),
                          "value %s outside [%g, %g]", value.c_str(),
                          min_value, max_value);
            return msg;
        }
        *target = parsed;
        return "";
    };
    options_.push_back(std::move(option));
}

void
OptionParser::addString(const std::string& name,
                        const std::string& help, std::string* target)
{
    Option option;
    option.name = name;
    option.help = help;
    option.valueHint = "<string>";
    option.apply = [target](const std::string& value) -> std::string {
        *target = value;
        return "";
    };
    options_.push_back(std::move(option));
}

void
OptionParser::addChoice(const std::string& name,
                        const std::string& help,
                        std::vector<std::string> choices, int* target)
{
    Option option;
    option.name = name;
    option.help = help;
    std::string hint = "<";
    for (std::size_t i = 0; i < choices.size(); ++i) {
        if (i > 0)
            hint += "|";
        hint += choices[i];
    }
    hint += ">";
    option.valueHint = hint;
    option.apply = [target, choices = std::move(choices)](
                       const std::string& value) -> std::string {
        const auto it =
            std::find(choices.begin(), choices.end(), value);
        if (it == choices.end())
            return "unknown choice '" + value + "'";
        *target = static_cast<int>(it - choices.begin());
        return "";
    };
    options_.push_back(std::move(option));
}

const OptionParser::Option*
OptionParser::find(const std::string& name) const
{
    for (const Option& option : options_) {
        if (option.name == name)
            return &option;
    }
    return nullptr;
}

bool
OptionParser::parse(int argc, const char* const* argv,
                    std::string* error)
{
    positional_.clear();
    helpRequested_ = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            return true;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        const Option* option = find(name);
        if (option == nullptr) {
            *error = "unknown option --" + name;
            return false;
        }
        if (!has_value && !option->isFlag) {
            if (i + 1 >= argc) {
                *error = "option --" + name + " needs a value";
                return false;
            }
            value = argv[++i];
        }
        const std::string apply_error = option->apply(value);
        if (!apply_error.empty()) {
            *error = "option --" + name + ": " + apply_error;
            return false;
        }
    }
    return true;
}

std::string
OptionParser::help() const
{
    std::string out = "usage: " + program_ + " [options]\n";
    if (!description_.empty())
        out += description_ + "\n";
    out += "\noptions:\n";
    std::size_t width = 0;
    for (const Option& option : options_) {
        width = std::max(width, option.name.size() + 2
                                    + (option.valueHint.empty()
                                           ? 0
                                           : option.valueHint.size()
                                               + 1));
    }
    width = std::max(width, std::string("--help").size());
    for (const Option& option : options_) {
        std::string left = "--" + option.name;
        if (!option.valueHint.empty())
            left += " " + option.valueHint;
        out += "  " + left;
        out.append(width - left.size() + 2, ' ');
        out += option.help + "\n";
    }
    out += "  --help";
    out.append(width - 6 + 2, ' ');
    out += "show this message\n";
    return out;
}

} // namespace mediaworm::config
