#include "config/network_config.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::config {

const char*
toString(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::SingleSwitch:
        return "single-switch";
      case TopologyKind::FatMesh:
        return "fat-mesh";
    }
    return "?";
}

const char*
toString(FatLinkPolicy policy)
{
    switch (policy) {
      case FatLinkPolicy::LeastLoaded:
        return "least-loaded";
      case FatLinkPolicy::Static:
        return "static";
      case FatLinkPolicy::Random:
        return "random";
    }
    return "?";
}

int
NetworkConfig::totalNodes(int router_ports) const
{
    if (topology == TopologyKind::SingleSwitch)
        return router_ports;
    return meshWidth * meshHeight * endpointsPerSwitch;
}

void
NetworkConfig::validate(int router_ports) const
{
    using sim::fatal;
    if (topology == TopologyKind::SingleSwitch)
        return;
    if (meshWidth < 1 || meshHeight < 1)
        fatal("NetworkConfig: mesh dimensions must be >= 1");
    if (meshWidth * meshHeight < 2)
        fatal("NetworkConfig: a mesh needs at least 2 switches");
    if (fatFactor < 1)
        fatal("NetworkConfig: fatFactor must be >= 1");
    if (endpointsPerSwitch < 1)
        fatal("NetworkConfig: endpointsPerSwitch must be >= 1");

    // Each switch needs ports for its endpoints plus fatFactor links
    // towards each mesh neighbour (at most 4 neighbours).
    int max_neighbours = 0;
    for (int y = 0; y < meshHeight; ++y) {
        for (int x = 0; x < meshWidth; ++x) {
            int neighbours = 0;
            neighbours += (x > 0) + (x < meshWidth - 1);
            neighbours += (y > 0) + (y < meshHeight - 1);
            if (neighbours > max_neighbours)
                max_neighbours = neighbours;
        }
    }
    const int needed = endpointsPerSwitch + max_neighbours * fatFactor;
    if (needed > router_ports) {
        fatal("NetworkConfig: %d endpoint + %d fat-link ports exceed "
              "the %d-port router",
              endpointsPerSwitch, max_neighbours * fatFactor,
              router_ports);
    }
}

std::string
NetworkConfig::describe() const
{
    char buf[160];
    if (topology == TopologyKind::SingleSwitch) {
        std::snprintf(buf, sizeof(buf), "single switch");
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%dx%d fat-mesh, fat=%d (%s), %d endpoints/switch",
                      meshWidth, meshHeight, fatFactor,
                      toString(fatLinkPolicy), endpointsPerSwitch);
    }
    return buf;
}

} // namespace mediaworm::config
