#include "config/network_config.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::config {

const char*
toString(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::SingleSwitch:
        return "single-switch";
      case TopologyKind::FatMesh:
        return "fat-mesh";
      case TopologyKind::Mesh:
        return "mesh";
      case TopologyKind::Torus:
        return "torus";
      case TopologyKind::Clos:
        return "clos";
    }
    return "?";
}

const char*
toString(FatLinkPolicy policy)
{
    switch (policy) {
      case FatLinkPolicy::LeastLoaded:
        return "least-loaded";
      case FatLinkPolicy::Static:
        return "static";
      case FatLinkPolicy::Random:
        return "random";
    }
    return "?";
}

const char*
toString(RoutingKind kind)
{
    switch (kind) {
      case RoutingKind::Default:
        return "default";
      case RoutingKind::DimensionOrder:
        return "dimension-order";
      case RoutingKind::UpDown:
        return "up*/down*";
      case RoutingKind::Adaptive:
        return "adaptive";
    }
    return "?";
}

int
NetworkConfig::totalNodes(int router_ports) const
{
    switch (topology) {
      case TopologyKind::SingleSwitch:
        return router_ports;
      case TopologyKind::FatMesh:
      case TopologyKind::Mesh:
      case TopologyKind::Torus:
        return meshWidth * meshHeight * endpointsPerSwitch;
      case TopologyKind::Clos:
        return closN * closR;
    }
    return 0;
}

int
NetworkConfig::numRouters() const
{
    switch (topology) {
      case TopologyKind::SingleSwitch:
        return 1;
      case TopologyKind::FatMesh:
      case TopologyKind::Mesh:
      case TopologyKind::Torus:
        return meshWidth * meshHeight;
      case TopologyKind::Clos:
        return closR + closM;
    }
    return 0;
}

RoutingKind
NetworkConfig::effectiveRouting() const
{
    if (routing != RoutingKind::Default)
        return routing;
    switch (topology) {
      case TopologyKind::SingleSwitch:
      case TopologyKind::FatMesh:
        // Legacy shapes keep their built-in routing (identity / the
        // paper's XY with fat-link selection).
        return RoutingKind::Default;
      case TopologyKind::Mesh:
      case TopologyKind::Torus:
        return RoutingKind::DimensionOrder;
      case TopologyKind::Clos:
        return RoutingKind::UpDown;
    }
    return RoutingKind::Default;
}

void
NetworkConfig::validate(int router_ports) const
{
    using sim::fatal;
    if (topology == TopologyKind::SingleSwitch)
        return;

    if (topology == TopologyKind::Clos) {
        if (closM < 1 || closN < 1 || closR < 1)
            fatal("NetworkConfig: clos(m,n,r) must all be >= 1");
        if (closM > 4)
            fatal("NetworkConfig: clos spine count %d exceeds the "
                  "4-candidate route limit",
                  closM);
        if (closN + closM > router_ports)
            fatal("NetworkConfig: clos leaf needs %d ports (n=%d "
                  "endpoints + m=%d uplinks) but the router has %d",
                  closN + closM, closN, closM, router_ports);
        if (closR > router_ports)
            fatal("NetworkConfig: clos spine needs %d ports (one per "
                  "leaf) but the router has %d",
                  closR, router_ports);
        // All three routing kinds are defined on the Clos:
        // dimension-order degenerates to a deterministic single-up
        // path (spine = dest leaf mod m), up*/down* spreads across
        // all spines, adaptive prefers free spines with the
        // deterministic one as escape.
        return;
    }

    if (meshWidth < 1 || meshHeight < 1)
        fatal("NetworkConfig: mesh dimensions must be >= 1");
    if (meshWidth * meshHeight < 2)
        fatal("NetworkConfig: a mesh needs at least 2 switches");
    if (fatFactor < 1)
        fatal("NetworkConfig: fatFactor must be >= 1");
    if (endpointsPerSwitch < 1)
        fatal("NetworkConfig: endpointsPerSwitch must be >= 1");
    if (topology == TopologyKind::FatMesh
        && (routing == RoutingKind::UpDown
            || routing == RoutingKind::Adaptive))
        fatal("NetworkConfig: the fat mesh keeps its paper XY "
              "routing (Default/DimensionOrder); up*/down* and "
              "adaptive apply to mesh/torus/clos");

    // Each switch needs ports for its endpoints plus fatFactor links
    // towards each neighbour (at most 4; on the torus, exactly the
    // present wrap directions).
    const bool is_torus = topology == TopologyKind::Torus;
    const int fat =
        topology == TopologyKind::FatMesh ? fatFactor : 1;
    int max_neighbours = 0;
    for (int y = 0; y < meshHeight; ++y) {
        for (int x = 0; x < meshWidth; ++x) {
            int neighbours = 0;
            if (is_torus) {
                neighbours += 2 * (meshWidth > 1);
                neighbours += 2 * (meshHeight > 1);
            } else {
                neighbours += (x > 0) + (x < meshWidth - 1);
                neighbours += (y > 0) + (y < meshHeight - 1);
            }
            if (neighbours > max_neighbours)
                max_neighbours = neighbours;
        }
    }
    const int needed = endpointsPerSwitch + max_neighbours * fat;
    if (needed > router_ports) {
        fatal("NetworkConfig: %d endpoint + %d inter-switch ports "
              "exceed the %d-port router",
              endpointsPerSwitch, max_neighbours * fat, router_ports);
    }
}

std::string
NetworkConfig::describe() const
{
    char buf[160];
    switch (topology) {
      case TopologyKind::SingleSwitch:
        std::snprintf(buf, sizeof(buf), "single switch");
        break;
      case TopologyKind::FatMesh:
        std::snprintf(buf, sizeof(buf),
                      "%dx%d fat-mesh, fat=%d (%s), %d endpoints/switch",
                      meshWidth, meshHeight, fatFactor,
                      toString(fatLinkPolicy), endpointsPerSwitch);
        break;
      case TopologyKind::Mesh:
      case TopologyKind::Torus:
        std::snprintf(buf, sizeof(buf),
                      "%dx%d %s, %d endpoints/switch, %s routing",
                      meshWidth, meshHeight, toString(topology),
                      endpointsPerSwitch,
                      toString(effectiveRouting()));
        break;
      case TopologyKind::Clos:
        std::snprintf(buf, sizeof(buf),
                      "clos(m=%d,n=%d,r=%d), %d endpoints, %s routing",
                      closM, closN, closR, closN * closR,
                      toString(effectiveRouting()));
        break;
    }
    return buf;
}

} // namespace mediaworm::config
