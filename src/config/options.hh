/**
 * @file
 * Minimal declarative command-line option parser for the simulator
 * front-end and examples.
 *
 * Supports --name=value and --name value forms, boolean flags,
 * numeric range validation and string choices; produces aligned
 * --help text. No dynamic dispatch surprises, no global state.
 */

#ifndef MEDIAWORM_CONFIG_OPTIONS_HH
#define MEDIAWORM_CONFIG_OPTIONS_HH

#include <functional>
#include <string>
#include <vector>

namespace mediaworm::config {

/** Declarative option table with type-checked binding. */
class OptionParser
{
  public:
    /** @param program Name shown in the help header. */
    explicit OptionParser(std::string program,
                          std::string description = "");

    /** Boolean flag: present -> true ("--name" or "--name=true"). */
    void addFlag(const std::string& name, const std::string& help,
                 bool* target);

    /** Integer option with an inclusive validity range. */
    void addInt(const std::string& name, const std::string& help,
                int* target, int min_value, int max_value);

    /** Floating-point option with an inclusive validity range. */
    void addDouble(const std::string& name, const std::string& help,
                   double* target, double min_value, double max_value);

    /** Free-form string option. */
    void addString(const std::string& name, const std::string& help,
                   std::string* target);

    /**
     * Enumerated option: the value must be one of @p choices; the
     * matching index is stored through @p target.
     */
    void addChoice(const std::string& name, const std::string& help,
                   std::vector<std::string> choices, int* target);

    /**
     * Parses argv. Unknown options, missing values and range
     * violations fail with a message in @p error.
     *
     * @return True on success. "--help" sets helpRequested() and
     *         returns true without consuming further arguments.
     */
    bool parse(int argc, const char* const* argv, std::string* error);

    /** True if "--help" was seen during parse(). */
    bool helpRequested() const { return helpRequested_; }

    /** Aligned usage text. */
    std::string help() const;

    /** Positional (non-option) arguments seen during parse(). */
    const std::vector<std::string>& positional() const
    {
        return positional_;
    }

  private:
    struct Option
    {
        std::string name;
        std::string help;
        std::string valueHint;
        bool isFlag = false;
        /** Applies a value string; returns an error or empty. */
        std::function<std::string(const std::string&)> apply;
    };

    const Option* find(const std::string& name) const;

    std::string program_;
    std::string description_;
    std::vector<Option> options_;
    std::vector<std::string> positional_;
    bool helpRequested_ = false;
};

} // namespace mediaworm::config

#endif // MEDIAWORM_CONFIG_OPTIONS_HH
