/**
 * @file
 * Topology-level configuration.
 */

#ifndef MEDIAWORM_CONFIG_NETWORK_CONFIG_HH
#define MEDIAWORM_CONFIG_NETWORK_CONFIG_HH

#include <string>

namespace mediaworm::config {

/** Supported interconnect topologies. */
enum class TopologyKind {
    SingleSwitch, ///< One router, one endpoint per port (Sections 5.1-5.6).
    FatMesh,      ///< k x k mesh with parallel inter-switch links (5.7).
};

/** Policy used to pick among the parallel links of a fat channel. */
enum class FatLinkPolicy {
    LeastLoaded, ///< Fewest queued flits right now (the paper's choice).
    Static,      ///< Hash of the stream id (no load awareness).
    Random,      ///< Uniform random per message.
};

/** Returns a stable display name for a topology kind. */
const char* toString(TopologyKind kind);

/** Returns a stable display name for a fat-link policy. */
const char* toString(FatLinkPolicy policy);

/**
 * Interconnect shape.
 *
 * Defaults describe the paper's fat-mesh study: a 2x2 mesh of 8-port
 * switches with 2 parallel links between neighbours, leaving 4
 * endpoint ports per switch (16 nodes).
 */
struct NetworkConfig
{
    TopologyKind topology = TopologyKind::SingleSwitch;

    int meshWidth = 2;  ///< Switches per mesh row.
    int meshHeight = 2; ///< Switches per mesh column.
    int fatFactor = 2;  ///< Parallel links between adjacent switches.
    FatLinkPolicy fatLinkPolicy = FatLinkPolicy::LeastLoaded;

    /**
     * Endpoints attached to each switch. For SingleSwitch this always
     * equals the router port count and is derived, not read.
     */
    int endpointsPerSwitch = 4;

    /** Number of endpoint nodes in the configured topology. */
    int totalNodes(int router_ports) const;

    /** Aborts via fatal() if the shape is inconsistent. */
    void validate(int router_ports) const;

    /** One-line summary for logs and reports. */
    std::string describe() const;
};

} // namespace mediaworm::config

#endif // MEDIAWORM_CONFIG_NETWORK_CONFIG_HH
