/**
 * @file
 * Topology-level configuration.
 */

#ifndef MEDIAWORM_CONFIG_NETWORK_CONFIG_HH
#define MEDIAWORM_CONFIG_NETWORK_CONFIG_HH

#include <string>

namespace mediaworm::config {

/** Supported interconnect topologies. */
enum class TopologyKind {
    SingleSwitch, ///< One router, one endpoint per port (Sections 5.1-5.6).
    FatMesh,      ///< k x k mesh with parallel inter-switch links (5.7).
    Mesh,         ///< k-ary 2-mesh, single links, dimension-order default.
    Torus,        ///< 2-D torus (wrap-around), dateline VC classes.
    Clos,         ///< 3-stage folded Clos (m spines, r leaves, n each).
};

/** Policy used to pick among the parallel links of a fat channel. */
enum class FatLinkPolicy {
    LeastLoaded, ///< Fewest queued flits right now (the paper's choice).
    Static,      ///< Hash of the stream id (no load awareness).
    Random,      ///< Uniform random per message.
};

/**
 * Routing policy over the topology graph (network/routing.hh).
 * Default resolves per topology: identity for the single switch,
 * the paper's XY + fat-link policy for the fat mesh, dimension-order
 * for mesh/torus, up-down (Clos natural routing) for the Clos.
 */
enum class RoutingKind {
    Default,
    DimensionOrder, ///< Deterministic XY (+ dateline classes on tori).
    UpDown,         ///< Spanning-tree up*/down* (natural on the Clos).
    Adaptive,       ///< Minimal adaptive + dimension-order escape class.
};

/** Returns a stable display name for a topology kind. */
const char* toString(TopologyKind kind);

/** Returns a stable display name for a fat-link policy. */
const char* toString(FatLinkPolicy policy);

/** Returns a stable display name for a routing kind. */
const char* toString(RoutingKind kind);

/**
 * Interconnect shape.
 *
 * Defaults describe the paper's fat-mesh study: a 2x2 mesh of 8-port
 * switches with 2 parallel links between neighbours, leaving 4
 * endpoint ports per switch (16 nodes).
 */
struct NetworkConfig
{
    TopologyKind topology = TopologyKind::SingleSwitch;
    RoutingKind routing = RoutingKind::Default;

    int meshWidth = 2;  ///< Switches per mesh/torus row.
    int meshHeight = 2; ///< Switches per mesh/torus column.
    int fatFactor = 2;  ///< Parallel links between adjacent switches
                        ///< (fat mesh only; mesh/torus use 1).
    FatLinkPolicy fatLinkPolicy = FatLinkPolicy::LeastLoaded;

    /**
     * Endpoints attached to each switch (fat-mesh/mesh/torus). For
     * SingleSwitch this always equals the router port count and is
     * derived, not read; for the Clos it is closN.
     */
    int endpointsPerSwitch = 4;

    /**
     * Single-switch port count used by the topology graph builder.
     * Network overwrites it with the router's numPorts before
     * building, so the graph and hardware always agree.
     */
    int singleSwitchPorts = 8;

    int closM = 4; ///< Spine switches.
    int closN = 4; ///< Endpoints per leaf switch.
    int closR = 8; ///< Leaf switches.

    /** Number of endpoint nodes in the configured topology. */
    int totalNodes(int router_ports) const;

    /** Routers in the configured topology. */
    int numRouters() const;

    /** The routing kind Default resolves to for this topology. */
    RoutingKind effectiveRouting() const;

    /** Aborts via fatal() if the shape is inconsistent. */
    void validate(int router_ports) const;

    /** One-line summary for logs and reports. */
    std::string describe() const;
};

} // namespace mediaworm::config

#endif // MEDIAWORM_CONFIG_NETWORK_CONFIG_HH
