/**
 * @file
 * Workload configuration (Section 4.2 of the paper).
 */

#ifndef MEDIAWORM_CONFIG_TRAFFIC_CONFIG_HH
#define MEDIAWORM_CONFIG_TRAFFIC_CONFIG_HH

#include <string>

#include "sim/time.hh"

namespace mediaworm::config {

/** Which real-time traffic model the RT component uses. */
enum class RealTimeKind {
    Vbr,     ///< Frame sizes ~ Normal(mean, stddev) (MPEG-2 like).
    Cbr,     ///< Constant frame sizes.
    MpegGop, ///< I/P/B group-of-pictures pattern (extension).
};

/** How real-time streams choose destinations and VC lanes. */
enum class StreamPlacement {
    /**
     * Rounds of random derangements: every node sources and sinks
     * exactly streamsPerNode streams, and lanes rotate per round, so
     * no output (port, VC) pair exceeds the paper's streams-per-VC
     * capacity. This realizes the admission-controlled operating
     * points the paper's jitter-free results assume.
     */
    Balanced,
    /**
     * Fully uniform random destination and lane per stream. sqrt(n)
     * hot-spot imbalance oversubscribes some ports at high load
     * (ablation of the admission-control assumption).
     */
    UniformRandom,
};

/** Returns a stable display name for a placement policy. */
const char* toString(StreamPlacement placement);

/** Returns a stable display name for a real-time traffic kind. */
const char* toString(RealTimeKind kind);

/**
 * Workload description for one experiment point.
 *
 * Defaults reproduce the paper's MPEG-2 stream model: frames of
 * Normal(16666 B, 3333 B) every 33 ms (4 Mbps per stream), broken
 * into 20-flit messages, mixed with 20-flit best-effort messages.
 */
struct TrafficConfig
{
    /** Offered load as a fraction of PC bandwidth (the x axis of
     *  most figures). */
    double inputLoad = 0.8;

    /** Real-time share of the load: x / (x + y) for an x:y mix. */
    double realTimeFraction = 0.8;

    RealTimeKind realTimeKind = RealTimeKind::Vbr;

    StreamPlacement streamPlacement = StreamPlacement::Balanced;

    double frameBytesMean = 16666.0;  ///< Mean MPEG-2 frame size.
    double frameBytesStddev = 3333.0; ///< VBR frame-size deviation.
    sim::Tick frameInterval = 33 * sim::kMillisecond; ///< 30 frames/s.

    int messageFlits = 20;   ///< RT message size in flits.
    int beMessageFlits = 20; ///< Best-effort message size in flits.

    /**
     * Scale on the Virtual Clock rate every stream reserves: the
     * advertised Vtick shrinks by this factor, so stamps advance
     * slower and the stream's lane is guaranteed factor x the mean
     * rate. 1.0 (the default, the paper's setting) reserves exactly
     * the mean rate; calculus::provision() raises it to buy delay
     * guarantees with envelope headroom. Admission bookkeeping
     * charges the reserved (scaled) rate, as it should.
     */
    double reservedRateFactor = 1.0;

    /**
     * Anchor the last message of every frame at a fixed offset
     * before the next frame, spreading the earlier messages evenly.
     * Without anchoring, the frame-completion instant wobbles with
     * the VBR message count (a source quantization artifact that
     * time-scale compression would exaggerate ~1/timeScale in the
     * normalised sigma_d); with it, sigma_d measures network jitter
     * only. Negligible at full MPEG-2 scale either way.
     */
    bool anchorFrameTail = true;

    /** Frames injected per stream before measurement starts. */
    int warmupFrames = 3;
    /** Frames injected per stream during measurement. */
    int measuredFrames = 12;

    /** Mean stream bandwidth in Mbps (4 Mbps at the defaults). */
    double streamRateMbps() const;

    /**
     * Vtick value (expected per-flit service interval) a stream of
     * this configuration advertises in its headers.
     */
    sim::Tick streamVtick(int flit_size_bits) const;

    /** Aborts via fatal() if any parameter is out of range. */
    void validate() const;

    /** One-line summary for logs and reports. */
    std::string describe() const;
};

} // namespace mediaworm::config

#endif // MEDIAWORM_CONFIG_TRAFFIC_CONFIG_HH
