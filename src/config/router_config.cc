#include "config/router_config.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::config {

const char*
toString(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fifo:
        return "fifo";
      case SchedulerKind::RoundRobin:
        return "round-robin";
      case SchedulerKind::VirtualClock:
        return "virtual-clock";
      case SchedulerKind::WeightedRoundRobin:
        return "weighted-rr";
    }
    return "?";
}

const char*
toString(CrossbarKind kind)
{
    switch (kind) {
      case CrossbarKind::Multiplexed:
        return "multiplexed";
      case CrossbarKind::Full:
        return "full";
    }
    return "?";
}

const char*
toString(SwitchingKind kind)
{
    switch (kind) {
      case SwitchingKind::Wormhole:
        return "wormhole";
      case SwitchingKind::VirtualCutThrough:
        return "virtual-cut-through";
    }
    return "?";
}

sim::Tick
RouterConfig::cycleTime() const
{
    return sim::serializationTime(flitSizeBits, linkBandwidthMbps);
}

double
RouterConfig::flitsPerSecond() const
{
    return static_cast<double>(linkBandwidthMbps) * 1e6
        / static_cast<double>(flitSizeBits);
}

void
RouterConfig::validate() const
{
    using sim::fatal;
    if (numPorts < 1 || numPorts > 64)
        fatal("RouterConfig: numPorts %d out of range [1,64]", numPorts);
    // 64 is the width of the arbitration eligibility bitmasks
    // (router/arbiter.hh); the paper's sweeps top out at 24 VCs.
    if (numVcs < 1 || numVcs > 64)
        fatal("RouterConfig: numVcs %d out of range [1,64]", numVcs);
    if (vcClasses < 1 || vcClasses > numVcs)
        fatal("RouterConfig: vcClasses %d out of range [1,%d]",
              vcClasses, numVcs);
    if (flitBufferDepth < 1)
        fatal("RouterConfig: flitBufferDepth %d must be >= 1",
              flitBufferDepth);
    if (flitSizeBits < 1)
        fatal("RouterConfig: flitSizeBits %d must be >= 1", flitSizeBits);
    if (linkBandwidthMbps < 1)
        fatal("RouterConfig: linkBandwidthMbps %d must be >= 1",
              linkBandwidthMbps);
    if (headerPipelineCycles < 1 || bodyPipelineCycles < 0
        || crossbarCycles < 1 || outputCycles < 0 || linkDelayCycles < 0) {
        fatal("RouterConfig: invalid pipeline latencies");
    }
}

std::string
RouterConfig::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%dx%d switch, %d VCs/PC, %d-flit buffers, %d Mbps, "
                  "%s crossbar, %s scheduler",
                  numPorts, numPorts, numVcs, flitBufferDepth,
                  linkBandwidthMbps, toString(crossbar),
                  toString(scheduler));
    return buf;
}

} // namespace mediaworm::config
