/**
 * @file
 * Router hardware configuration (the paper's Table 1 knobs).
 */

#ifndef MEDIAWORM_CONFIG_ROUTER_CONFIG_HH
#define MEDIAWORM_CONFIG_ROUTER_CONFIG_HH

#include <string>

#include "sim/time.hh"

namespace mediaworm::config {

/** Which resource-scheduling discipline a multiplexer uses. */
enum class SchedulerKind {
    Fifo,             ///< Oldest flit first (conventional router).
    RoundRobin,       ///< Rotating priority among VCs.
    VirtualClock,     ///< Rate-based Virtual Clock (the MediaWorm change).
    WeightedRoundRobin, ///< Deficit round-robin weighted by stream rate.
};

/** Crossbar organisations considered in Section 3.2 of the paper. */
enum class CrossbarKind {
    Multiplexed, ///< n x n crossbar; VCs share a port via a multiplexer.
    Full,        ///< (n*m) x (n*m) crossbar; one port per VC.
};

/**
 * Cut-through switching disciplines (Section 1 / related work). The
 * paper's MediaWorm is a wormhole router; virtual cut-through is the
 * alternative used by Mercury, S-Connect and the hybrid multimedia
 * routers it compares against.
 */
enum class SwitchingKind {
    /** Flits follow the header immediately; a blocked message
     *  stretches across links, holding them (hold-and-wait). */
    Wormhole,
    /** A message advances only when the next hop can buffer it
     *  entirely, so blocked messages park in one node and never
     *  hold upstream links. Requires messages to fit the per-VC
     *  flit buffers. */
    VirtualCutThrough,
};

/** Returns a stable display name for a scheduler kind. */
const char* toString(SchedulerKind kind);

/** Returns a stable display name for a crossbar kind. */
const char* toString(CrossbarKind kind);

/** Returns a stable display name for a switching kind. */
const char* toString(SwitchingKind kind);

/**
 * Static configuration of one wormhole router.
 *
 * Defaults reproduce the paper's Table 1: an 8-port switch with
 * 32-bit flits, 20-flit messages and buffers, 400 Mbps links and a
 * variable number of VCs (16 by default).
 */
struct RouterConfig
{
    int numPorts = 8;          ///< Physical channels (n), at most 64.
    int numVcs = 16;           ///< Virtual channels per PC (m), at most 64.

    /**
     * VC classes the routing policy partitions the output VCs into
     * (network/routing.hh): 1 for the legacy identity mapping, 2 for
     * torus dateline / mesh adaptive-escape, 3 for torus adaptive.
     * Network sets this from the built routing tables; each class
     * owns numVcs / vcClasses lanes.
     */
    int vcClasses = 1;
    int flitBufferDepth = 20;  ///< Flit buffer capacity per VC.
    int flitSizeBits = 32;     ///< Flit width.
    int linkBandwidthMbps = 400; ///< PC bandwidth.

    CrossbarKind crossbar = CrossbarKind::Multiplexed;
    SwitchingKind switching = SwitchingKind::Wormhole;
    /** Discipline at the router's contention point (A for
     *  multiplexed crossbars, C for full crossbars). */
    SchedulerKind scheduler = SchedulerKind::VirtualClock;

    /**
     * Discipline of the NI's injection multiplexer (the source end
     * of the input link). The paper applies Virtual Clock inside the
     * router; sources drain their per-VC queues in arrival order, so
     * best-effort messages are not starved at injection. FIFO here
     * reproduces that; setting VirtualClock gives real-time traffic
     * end-to-end priority from the host outward (ablation knob).
     */
    SchedulerKind injectionScheduler = SchedulerKind::Fifo;

    /**
     * Opts the arbiters (router and NI) into the vectorized pick
     * kernels where the build compiled them in (router/simd.hh).
     * Winner selection is bit-identical with the flag on or off; the
     * toggle exists for differential determinism tests and kernel
     * A/B benchmarks.
     */
    bool simdArbiter = true;

    /** Stages 1-3 traversed by a header before switch allocation. */
    int headerPipelineCycles = 3;
    /** Stage-1 latency paid by body/tail flits (bypass path). */
    int bodyPipelineCycles = 1;
    /** Stage-4 crossbar traversal latency. */
    int crossbarCycles = 1;
    /** Stage-5 output buffering/sync latency. */
    int outputCycles = 1;

    /** Link propagation delay between routers/NIs, in cycles. */
    int linkDelayCycles = 1;

    /**
     * Router cycle time: the serialization time of one flit on the
     * physical channel (80 ns at 400 Mbps with 32-bit flits).
     */
    sim::Tick cycleTime() const;

    /** Link payload bandwidth in flits per second. */
    double flitsPerSecond() const;

    /** Aborts via fatal() if any parameter is out of range. */
    void validate() const;

    /** One-line summary for logs and reports. */
    std::string describe() const;
};

} // namespace mediaworm::config

#endif // MEDIAWORM_CONFIG_ROUTER_CONFIG_HH
