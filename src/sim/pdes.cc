#include "sim/pdes.hh"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <limits>
#include <thread>

#include "sim/logging.hh"

namespace mediaworm::sim {

namespace {

/** "No pending event" sentinel for the shared min-reduction
 *  (kTickNever is -1 and would win every min). */
constexpr Tick kNoEvent = std::numeric_limits<Tick>::max();

void
atomicMinTick(std::atomic<Tick>& slot, Tick value)
{
    Tick current = slot.load(std::memory_order_relaxed);
    while (value < current
           && !slot.compare_exchange_weak(current, value,
                                          std::memory_order_relaxed)) {
    }
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

PdesExecutor::PdesExecutor(std::vector<Simulator*> shards,
                           Tick lookahead)
    : shards_(std::move(shards)), lookahead_(lookahead)
{
    MW_ASSERT(!shards_.empty());
    MW_ASSERT(lookahead_ == kTickNever || lookahead_ > 0);
    stats_.resize(shards_.size());
}

void
PdesExecutor::addMailbox(int consumer_shard,
                         std::function<std::uint64_t()> flush)
{
    MW_ASSERT(consumer_shard >= 0
              && consumer_shard < static_cast<int>(shards_.size()));
    mailboxes_.push_back({consumer_shard, std::move(flush)});
}

void
PdesExecutor::run(Tick cap)
{
    stats_.assign(shards_.size(), ShardRunStats{});

    if (shards_.size() == 1) {
        const auto start = std::chrono::steady_clock::now();
        const std::uint64_t before = shards_[0]->eventsFired();
        shards_[0]->run(cap);
        ShardRunStats& s = stats_[0];
        s.epochs = 1;
        s.eventsFired = shards_[0]->eventsFired() - before;
        s.runSeconds = secondsSince(start);
        return;
    }

    // Starting epoch: the earliest pending event anywhere.
    Tick start_time = kNoEvent;
    for (Simulator* shard : shards_) {
        const Tick next = shard->queue().nextTime();
        if (next != kTickNever)
            start_time = std::min(start_time, next);
    }
    if (start_time == kNoEvent || start_time > cap) {
        // No queued work, but elided wakeups at or before the cap
        // would have fired as no-ops in the legacy path; settle them
        // so eventsFired matches.
        for (std::size_t i = 0; i < shards_.size(); ++i)
            stats_[i].eventsFired += shards_[i]->settleLazy(cap);
        return;
    }

    const int n = static_cast<int>(shards_.size());
    std::barrier<> exec_done(n);
    std::barrier<> merge_done(n);
    // Double-buffered min-reduction slot: epoch k publishes into
    // next[k & 1]; the other slot is reset for epoch k+1 between
    // the barriers, when no thread can still be reading it.
    std::atomic<Tick> next_time[2] = {kNoEvent, kNoEvent};

    auto worker = [&](int index) {
        Simulator& shard = *shards_[index];
        ShardRunStats& stat = stats_[index];
        Tick epoch_start = start_time;
        int parity = 0;

        for (;;) {
            const Tick window_end = lookahead_ == kTickNever
                ? cap
                : std::min(epoch_start + lookahead_ - 1, cap);

            auto t0 = std::chrono::steady_clock::now();
            const std::uint64_t before = shard.eventsFired();
            shard.run(window_end);
            stat.eventsFired += shard.eventsFired() - before;
            stat.runSeconds += secondsSince(t0);

            t0 = std::chrono::steady_clock::now();
            exec_done.arrive_and_wait();
            stat.blockedSeconds += secondsSince(t0);

            next_time[1 - parity].store(kNoEvent,
                                        std::memory_order_relaxed);
            for (const Mailbox& mailbox : mailboxes_) {
                if (mailbox.consumerShard == index)
                    stat.mailboxItems += mailbox.flush();
            }
            stat.maxQueueDepth = std::max(
                stat.maxQueueDepth,
                static_cast<std::uint64_t>(shard.queue().size()));
            stat.maxNearDepth = std::max(
                stat.maxNearDepth,
                static_cast<std::uint64_t>(shard.queue().nearSize()));
            const Tick local_next = shard.queue().nextTime();
            if (local_next != kTickNever)
                atomicMinTick(next_time[parity], local_next);

            t0 = std::chrono::steady_clock::now();
            merge_done.arrive_and_wait();
            stat.blockedSeconds += secondsSince(t0);

            const Tick global_next =
                next_time[parity].load(std::memory_order_relaxed);
            parity = 1 - parity;
            ++stat.epochs;

            if (global_next == kNoEvent || global_next > cap)
                break;
            // Conservative invariant: everything at or before the
            // window end fired, and mailbox arrivals land at least
            // one lookahead past the epoch start.
            MW_ASSERT(global_next > window_end);
            if (global_next > window_end + 1) {
                // The min-reduction already fast-forwards: the next
                // epoch starts at the global next event, not at
                // window_end + 1, so every fully idle window in
                // between is never entered. Count the jump.
                ++stat.fastForwardEpochs;
                stat.fastForwardTicks += static_cast<std::uint64_t>(
                    global_next - (window_end + 1));
            }
            epoch_start = global_next;
        }

        // The loop stops once no *queued* event remains at or before
        // the cap, but elided no-op wakeups (sim::LazyTick) between
        // the final window and the cap are invisible to the
        // min-reduction; the legacy path would have kept running
        // epochs to fire them. Settle them here so per-shard stats
        // and eventsFired stay bit-identical.
        stat.eventsFired += shard.settleLazy(cap);
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n - 1));
    for (int i = 1; i < n; ++i)
        threads.emplace_back(worker, i);
    worker(0);
    for (std::thread& thread : threads)
        thread.join();
}

} // namespace mediaworm::sim
