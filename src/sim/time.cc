#include "sim/time.hh"

#include <cstdio>

namespace mediaworm::sim {

std::string
formatTime(Tick t)
{
    char buf[64];
    if (t == kTickNever) {
        return "never";
    }
    const double abs_t = t < 0 ? -static_cast<double>(t)
                               : static_cast<double>(t);
    if (abs_t >= kSecond) {
        std::snprintf(buf, sizeof(buf), "%.3fs", toSeconds(t));
    } else if (abs_t >= kMillisecond) {
        std::snprintf(buf, sizeof(buf), "%.3fms", toMilliseconds(t));
    } else if (abs_t >= kMicrosecond) {
        std::snprintf(buf, sizeof(buf), "%.3fus", toMicroseconds(t));
    } else if (abs_t >= kNanosecond) {
        std::snprintf(buf, sizeof(buf), "%.3fns", toNanoseconds(t));
    } else {
        std::snprintf(buf, sizeof(buf), "%lldps",
                      static_cast<long long>(t));
    }
    return buf;
}

} // namespace mediaworm::sim
