#include "sim/distributions.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mediaworm::sim {

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi)
{
    MW_ASSERT(lo <= hi);
}

double
UniformDistribution::sample(Rng& rng)
{
    return rng.uniform(lo_, hi_);
}

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev)
{
    MW_ASSERT(stddev >= 0.0);
}

double
NormalDistribution::sample(Rng& rng)
{
    if (hasSpare_) {
        hasSpare_ = false;
        return mean_ + stddev_ * spare_;
    }
    double u;
    double v;
    double s;
    do {
        u = rng.uniform(-1.0, 1.0);
        v = rng.uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    hasSpare_ = true;
    return mean_ + stddev_ * u * factor;
}

TruncatedNormalDistribution::TruncatedNormalDistribution(double mean,
                                                         double stddev,
                                                         double floor)
    : normal_(mean, stddev), floor_(floor)
{
    MW_ASSERT(floor < mean);
}

double
TruncatedNormalDistribution::sample(Rng& rng)
{
    double x;
    do {
        x = normal_.sample(rng);
    } while (x < floor_);
    return x;
}

ExponentialDistribution::ExponentialDistribution(double mean) : mean_(mean)
{
    MW_ASSERT(mean > 0.0);
}

double
ExponentialDistribution::sample(Rng& rng)
{
    // 1 - uniform01() is in (0, 1], keeping log() finite.
    return -mean_ * std::log(1.0 - rng.uniform01());
}

} // namespace mediaworm::sim
