/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator uses xoshiro256** seeded through SplitMix64, which is
 * fast, has excellent statistical quality, and - unlike std::mt19937
 * with std::normal_distribution - produces identical streams on every
 * platform and standard library, keeping experiments reproducible.
 */

#ifndef MEDIAWORM_SIM_RANDOM_HH
#define MEDIAWORM_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace mediaworm::sim {

/**
 * xoshiro256** generator (Blackman & Vigna).
 *
 * Satisfies the UniformRandomBitGenerator named requirement so it can
 * also drive standard-library distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Constructs a generator from a 64-bit seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seeds the generator. */
    void seed(std::uint64_t seed);

    /** Returns the next 64 raw bits. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be positive. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability @p p of true. */
    bool bernoulli(double p);

    /**
     * Splits off an independently-seeded child generator.
     *
     * Used to give each traffic source its own stream so adding a
     * source never perturbs the draws seen by the others.
     */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_RANDOM_HH
