#include "sim/simulator.hh"

#include <limits>

#include "sim/logging.hh"

namespace mediaworm::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void
Simulator::reschedule(Event& event, Tick when)
{
    MW_ASSERT(when >= now_);
    queue_.reschedule(event, when);
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    Event& event = queue_.pop();
    MW_ASSERT(event.when() >= now_);
    now_ = event.when();
    curSeq_ = event.seq();
    ++eventsFired_;
    BatchSink* sink = batched_ ? event.batchSink() : nullptr;
    if (sink == nullptr)
        event.fire();
    else
        // Same coalescing as run(): one virtual dispatch per
        // (tick, sink) group, members pulled via nextBatchMember().
        sink->fireBatch(event);
    return true;
}

std::uint64_t
Simulator::run(Tick until)
{
    const std::uint64_t before = eventsFired_;
    for (;;) {
        Event* event = queue_.popIfAtOrBefore(until);
        if (event == nullptr)
            break;
        MW_DEBUG_ASSERT(event->when() >= now_);
        // Reporting only (hash-excluded): idle ticks jumped over
        // between consecutive events.
        if (event->when() > now_)
            idleTicksSkipped_ +=
                static_cast<std::uint64_t>(event->when() - now_) - 1;
        now_ = event->when();
        curSeq_ = event->seq();
        ++eventsFired_;
        BatchSink* sink = batched_ ? event->batchSink() : nullptr;
        if (sink == nullptr)
            event->fire();
        else
            // One virtual dispatch for the whole same-tick batch;
            // the sink pulls further members via nextBatchMember().
            sink->fireBatch(*event);
    }
    if (now_ < until) {
        idleTicksSkipped_ += static_cast<std::uint64_t>(until - now_);
        now_ = until;
    }
    // Settle elided no-op wakeups whose time fell inside this window:
    // the legacy path would have fired them (as no-ops) before
    // returning, so the credit must land inside this run() for
    // eventsFired() deltas - per-shard PDES stats included - to
    // match bit-for-bit.
    settleLazy(until);
    return eventsFired_ - before;
}

std::uint64_t
Simulator::runToCompletion()
{
    const std::uint64_t before = eventsFired_;
    while (step()) {
    }
    settleLazy(std::numeric_limits<Tick>::max());
    return eventsFired_ - before;
}

bool
Simulator::lazyTickPending() const
{
    // The settle index tracks the outstanding count exactly; the
    // per-drain scan remains as the legacy differential path.
    if (fastForward_)
        return lazyCount_ != 0;
    for (const LazyDrain* drain : lazyDrains_) {
        if (drain->lazyPending())
            return true;
    }
    return false;
}

} // namespace mediaworm::sim
