#include "sim/simulator.hh"

#include "sim/logging.hh"

namespace mediaworm::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void
Simulator::schedule(Event& event, Tick when)
{
    MW_ASSERT(when >= now_);
    queue_.schedule(event, when);
}

void
Simulator::scheduleAfter(Event& event, Tick delay)
{
    MW_ASSERT(delay >= 0);
    queue_.schedule(event, now_ + delay);
}

void
Simulator::deschedule(Event& event)
{
    queue_.deschedule(event);
}

void
Simulator::reschedule(Event& event, Tick when)
{
    MW_ASSERT(when >= now_);
    queue_.reschedule(event, when);
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    Event& event = queue_.pop();
    MW_ASSERT(event.when() >= now_);
    now_ = event.when();
    ++eventsFired_;
    event.fire();
    return true;
}

std::uint64_t
Simulator::run(Tick until)
{
    std::uint64_t fired = 0;
    while (!queue_.empty() && queue_.nextTime() <= until) {
        step();
        ++fired;
    }
    if (now_ < until)
        now_ = until;
    return fired;
}

std::uint64_t
Simulator::runToCompletion()
{
    std::uint64_t fired = 0;
    while (step())
        ++fired;
    return fired;
}

} // namespace mediaworm::sim
