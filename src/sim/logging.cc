#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mediaworm::sim {

namespace {

// Atomic so concurrent experiment workers (campaign engine) can read
// the threshold while another thread adjusts it, race-free.
std::atomic<LogLevel> g_level{LogLevel::Info};

// Crash hook; the pair is read on the (single) failing thread just
// before termination.
std::atomic<CrashHook> g_crashHook{nullptr};
std::atomic<void*> g_crashContext{nullptr};

void
runCrashHook()
{
    if (CrashHook hook = g_crashHook.load())
        hook(g_crashContext.load());
}

void
vprint(const char* tag, const char* fmt, std::va_list args)
{
    std::fprintf(stderr, "%s", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
fatal(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vprint("fatal: ", fmt, args);
    va_end(args);
    runCrashHook();
    std::exit(1);
}

void
panic(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vprint("panic: ", fmt, args);
    va_end(args);
    runCrashHook();
    std::abort();
}

void
setCrashHook(CrashHook hook, void* context)
{
    g_crashHook = hook;
    g_crashContext = context;
}

CrashHook
crashHook(void** context)
{
    if (context != nullptr)
        *context = g_crashContext.load();
    return g_crashHook.load();
}

void
warn(const char* fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    vprint("warn: ", fmt, args);
    va_end(args);
}

void
inform(const char* fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    vprint("info: ", fmt, args);
    va_end(args);
}

void
debug(const char* fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    vprint("debug: ", fmt, args);
    va_end(args);
}

} // namespace mediaworm::sim
