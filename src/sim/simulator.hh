/**
 * @file
 * The discrete-event simulation kernel.
 *
 * This replaces the commercial CSIM library used by the paper: a
 * single-threaded event loop over an EventQueue, plus a root random
 * number generator. All model components hold a reference to the
 * Simulator to read the clock and schedule their events.
 */

#ifndef MEDIAWORM_SIM_SIMULATOR_HH
#define MEDIAWORM_SIM_SIMULATOR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace mediaworm::sim {

/**
 * A component that elides provably-no-op self-wakeups (see LazyTick).
 *
 * Elided wakeups never enter the event queue, so at the end of every
 * run() the kernel asks each registered drain to account for the ones
 * whose time has passed (they would have fired as no-ops within the
 * run) and, at experiment teardown, whether any are still outstanding
 * (they would have been left in the queue, marking the run
 * truncated).
 */
class LazyDrain
{
  public:
    virtual ~LazyDrain() = default;

    /**
     * Credits every elided wakeup with readyAt <= @p until as fired;
     * returns how many were credited.
     */
    virtual std::uint64_t flushLazy(Tick until) = 0;

    /** True if any elided wakeup is still outstanding. */
    virtual bool lazyPending() const = 0;
};

/** Event-driven simulation engine. */
class Simulator
{
  public:
    /** Creates a simulator whose root RNG uses @p seed. */
    explicit Simulator(std::uint64_t seed = 1);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** The pending-event queue. */
    EventQueue& queue() { return queue_; }

    /** Root random generator; split() it per component. */
    Rng& rng() { return rng_; }

    /** Schedules @p event at absolute time @p when (>= now). */
    void
    schedule(Event& event, Tick when)
    {
        MW_ASSERT(when >= now_);
        queue_.schedule(event, when);
    }

    /** Schedules @p event @p delay ticks from now. */
    void
    scheduleAfter(Event& event, Tick delay)
    {
        MW_ASSERT(delay >= 0);
        queue_.schedule(event, now_ + delay);
    }

    /** Cancels @p event if scheduled. */
    void deschedule(Event& event) { queue_.deschedule(event); }

    /** Moves @p event to absolute time @p when (>= now). */
    void reschedule(Event& event, Tick when);

    /**
     * Runs events until the queue drains or the clock passes @p until.
     *
     * Events scheduled exactly at @p until still fire.
     * @return Number of events fired.
     */
    std::uint64_t run(Tick until);

    /** Runs until the event queue is empty. */
    std::uint64_t runToCompletion();

    /**
     * Fires exactly one event, if any.
     * @return True if an event fired.
     */
    bool step();

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return eventsFired_; }

    // --- batched dispatch and lazy-tick elision -------------------

    /**
     * Enables/disables batched dispatch AND lazy-tick elision (both
     * default on). Off restores the exact legacy per-event path;
     * results are bit-identical either way - the toggle exists for
     * differential testing and micro-benchmark A/B comparison.
     */
    void setBatchedDispatch(bool on) { batched_ = on; }

    /** True if batched dispatch / lazy elision is enabled. */
    bool batchedDispatch() const { return batched_; }

    /**
     * Pops and returns the next event iff it fires at the current
     * tick and targets @p sink; nullptr ends the batch. Call only
     * from inside BatchSink::fireBatch(). Members come off the live
     * queue one at a time, so events inserted mid-batch still fire
     * in exact (when, seq) order.
     */
    Event*
    nextBatchMember(BatchSink* sink)
    {
        Event* next = queue_.peekEarliest();
        if (next == nullptr || next->when() != now_
            || next->batchSink() != sink) {
            return nullptr;
        }
        queue_.popFront(*next);
        curSeq_ = next->seq();
        ++eventsFired_;
        return next;
    }

    /** See EventQueue::reserveSeq(). */
    std::uint64_t reserveSeq() { return queue_.reserveSeq(); }

    /** See EventQueue::scheduleReserved(); @p when must be >= now. */
    void
    scheduleReserved(Event& event, Tick when, std::uint64_t seq)
    {
        MW_ASSERT(when >= now_);
        queue_.scheduleReserved(event, when, seq);
    }

    /**
     * Would an event keyed (when, seq) already have fired? True iff
     * its key precedes the key of the event being fired right now -
     * the discriminator a LazyTick kick uses to decide between
     * re-materializing its wakeup (still ahead of us) and crediting
     * it as an already-fired no-op (behind us).
     */
    bool
    keyAlreadyFired(Tick when, std::uint64_t seq) const
    {
        return when < now_ || (when == now_ && seq < curSeq_);
    }

    /** Counts @p n elided no-op wakeups as fired events. */
    void
    creditElided(std::uint64_t n)
    {
        eventsFired_ += n;
        elidedEvents_ += n;
    }

    /**
     * Total elided (never-enqueued) no-op wakeups since construction;
     * a subset of eventsFired(). The idle-epoch fast-forward counter:
     * each one is a queue insert, pop and virtual dispatch the kernel
     * skipped while remaining bit-identical to the legacy path.
     */
    std::uint64_t elidedEvents() const { return elidedEvents_; }

    /**
     * Enables/disables the idle-epoch fast-forward bookkeeping
     * (default on): the O(1) lazy-wakeup settle index that lets run()
     * and the PDES epoch loop skip the per-drain scan when no elided
     * wakeup can mature in the window, plus the skipped-tick
     * accounting. Off restores the always-scan legacy path; results
     * are bit-identical either way - the toggle exists for the
     * differential determinism goldens.
     */
    void setFastForward(bool on) { fastForward_ = on; }

    /** True if fast-forward bookkeeping is enabled. */
    bool fastForward() const { return fastForward_; }

    /**
     * Idle ticks the clock jumped over instead of draining: for every
     * inter-event gap, the ticks strictly between the previous and
     * next event (plus the final jump to the run() horizon). A pure
     * reporting counter - it depends on how the simulation is sharded
     * and is excluded from deterministic hashes.
     */
    std::uint64_t idleTicksSkipped() const { return idleTicksSkipped_; }

    /** Registers @p drain for end-of-run lazy-wakeup accounting. */
    void addLazyDrain(LazyDrain* drain) { lazyDrains_.push_back(drain); }

    /**
     * Credits every elided wakeup with readyAt <= @p until, without
     * advancing the clock. run() calls this on its way out; the PDES
     * executor also calls it directly after its epoch loop, where the
     * final window may stop short of the cap while elided no-op
     * wakeups - which the legacy path would have kept running epochs
     * to fire - still sit between the two.
     * @return Number of wakeups credited.
     */
    std::uint64_t
    settleLazy(Tick until)
    {
        if (!batched_)
            return 0;
        // Fast-forward fast path: the (count, min-readyAt) index
        // proves no elided wakeup matures by `until`, so the whole
        // per-drain scan - O(ports) across every component, paid once
        // per PDES epoch - collapses to this one comparison.
        if (fastForward_ && (lazyCount_ == 0 || lazyMin_ > until))
            return 0;
        std::uint64_t credited = 0;
        for (LazyDrain* drain : lazyDrains_)
            credited += drain->flushLazy(until);
        creditElided(credited);
        MW_DEBUG_ASSERT(lazyCount_ >= credited);
        lazyCount_ -= credited;
        // Everything at or before `until` was just flushed, so the
        // surviving minimum is past the window; kTickNever when the
        // index is empty.
        lazyMin_ = lazyCount_ == 0
                       ? kTickNever
                       : std::max(lazyMin_, until + 1);
        return credited;
    }

    /** True if any registered drain still holds an elided wakeup. */
    bool lazyTickPending() const;

  private:
    friend class LazyTick;

    /** A LazyTick elided a wakeup maturing at @p readyAt. */
    void
    noteLazyArmed(Tick readyAt)
    {
        ++lazyCount_;
        if (readyAt < lazyMin_)
            lazyMin_ = readyAt;
    }

    /** A LazyTick settled one elided wakeup (kick credit or rearm).
     *  lazyMin_ stays a conservative lower bound; it re-tightens at
     *  the next settleLazy(). */
    void
    noteLazySettled()
    {
        MW_DEBUG_ASSERT(lazyCount_ > 0);
        if (--lazyCount_ == 0)
            lazyMin_ = kTickNever;
    }

    EventQueue queue_;
    Rng rng_;
    Tick now_ = 0;
    std::uint64_t eventsFired_ = 0;
    std::uint64_t elidedEvents_ = 0;
    std::uint64_t idleTicksSkipped_ = 0;
    /** Tie-break key of the event currently being fired. */
    std::uint64_t curSeq_ = 0;
    bool batched_ = true;
    bool fastForward_ = true;
    std::vector<LazyDrain*> lazyDrains_;
    /**
     * Fast-forward settle index over every registered drain's elided
     * wakeups: exact outstanding count, plus a conservative-low bound
     * on the earliest readyAt (never above the true minimum, so the
     * settleLazy() fast path can only err toward scanning).
     */
    std::uint64_t lazyCount_ = 0;
    Tick lazyMin_ = kTickNever;
};

/**
 * Elidable self-rescheduling service slot.
 *
 * The router and NI multiplexers re-arm a wakeup one cycle after
 * every service; when the arbiter mask is empty that wakeup is a
 * provable no-op (serve() returns without side effects), yet the
 * legacy path still paid a queue insert, pop and dispatch for it.
 * LazyTick elides exactly those wakeups while preserving
 * bit-identical behavior:
 *
 *  - arm() with an empty mask reserves the wakeup's tie-break seq at
 *    the same program point schedule() would have consumed it (so
 *    every later event's key is unchanged) and just records
 *    (readyAt, seq) instead of inserting.
 *  - kick() - called when eligibility may have appeared - compares
 *    that key against the event being fired right now: if the wakeup
 *    is still ahead it is re-materialized at its exact original
 *    position via scheduleReserved(); if it is behind, it already
 *    fired as a no-op in the legacy order, so it is credited and the
 *    caller serves inline (just as it would after a non-busy slot).
 *  - flushLazy()/flush() settle the remaining no-ops at the end of
 *    each run() window, and pending() reports wakeups beyond the
 *    horizon (the legacy path would have left those in the queue,
 *    marking the run truncated).
 */
class LazyTick
{
  public:
    enum class State : std::uint8_t { Idle, Armed, Lazy };

    /** True if the slot has a wakeup outstanding (armed or elided). */
    bool busy() const { return state_ != State::Idle; }

    /**
     * Re-arms after a service: schedules @p event @p delay ticks out,
     * or - when @p maskEmpty says the wakeup would be a no-op and the
     * simulator runs batched - elides it. Either way one tie-break
     * seq is consumed, keeping the queue's key evolution identical.
     */
    void
    arm(Simulator& sim, Event& event, Tick delay, bool maskEmpty)
    {
        if (sim.batched_ && maskEmpty) {
            readyAt_ = sim.now() + delay;
            seq_ = sim.reserveSeq();
            state_ = State::Lazy;
            sim.noteLazyArmed(readyAt_);
        } else {
            sim.scheduleAfter(event, delay);
            state_ = State::Armed;
        }
    }

    /** The scheduled wakeup fired; the slot is free again. */
    void fired() { state_ = State::Idle; }

    /**
     * Eligibility may have appeared. Returns true if the caller
     * should serve inline now (slot idle, or its elided wakeup
     * already counts as fired); false if a wakeup ahead of us will
     * do the serving.
     */
    bool
    kick(Simulator& sim, Event& event)
    {
        switch (state_) {
        case State::Idle:
            return true;
        case State::Armed:
            return false;
        case State::Lazy:
            sim.noteLazySettled();
            if (sim.keyAlreadyFired(readyAt_, seq_)) {
                sim.creditElided(1);
                state_ = State::Idle;
                return true;
            }
            sim.scheduleReserved(event, readyAt_, seq_);
            state_ = State::Armed;
            return false;
        }
        return false;
    }

    /** End-of-run accounting; see LazyDrain::flushLazy(). */
    std::uint64_t
    flush(Tick until)
    {
        if (state_ == State::Lazy && readyAt_ <= until) {
            state_ = State::Idle;
            return 1;
        }
        return 0;
    }

    /** True if an elided wakeup is outstanding. */
    bool pending() const { return state_ == State::Lazy; }

  private:
    Tick readyAt_ = 0;
    std::uint64_t seq_ = 0;
    State state_ = State::Idle;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_SIMULATOR_HH
