/**
 * @file
 * The discrete-event simulation kernel.
 *
 * This replaces the commercial CSIM library used by the paper: a
 * single-threaded event loop over an EventQueue, plus a root random
 * number generator. All model components hold a reference to the
 * Simulator to read the clock and schedule their events.
 */

#ifndef MEDIAWORM_SIM_SIMULATOR_HH
#define MEDIAWORM_SIM_SIMULATOR_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace mediaworm::sim {

/** Event-driven simulation engine. */
class Simulator
{
  public:
    /** Creates a simulator whose root RNG uses @p seed. */
    explicit Simulator(std::uint64_t seed = 1);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** The pending-event queue. */
    EventQueue& queue() { return queue_; }

    /** Root random generator; split() it per component. */
    Rng& rng() { return rng_; }

    /** Schedules @p event at absolute time @p when (>= now). */
    void schedule(Event& event, Tick when);

    /** Schedules @p event @p delay ticks from now. */
    void scheduleAfter(Event& event, Tick delay);

    /** Cancels @p event if scheduled. */
    void deschedule(Event& event);

    /** Moves @p event to absolute time @p when (>= now). */
    void reschedule(Event& event, Tick when);

    /**
     * Runs events until the queue drains or the clock passes @p until.
     *
     * Events scheduled exactly at @p until still fire.
     * @return Number of events fired.
     */
    std::uint64_t run(Tick until);

    /** Runs until the event queue is empty. */
    std::uint64_t runToCompletion();

    /**
     * Fires exactly one event, if any.
     * @return True if an event fired.
     */
    bool step();

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return eventsFired_; }

  private:
    EventQueue queue_;
    Rng rng_;
    Tick now_ = 0;
    std::uint64_t eventsFired_ = 0;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_SIMULATOR_HH
