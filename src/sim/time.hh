/**
 * @file
 * Simulated time base for the MediaWorm simulator.
 *
 * All simulated time is kept as a signed 64-bit count of picoseconds.
 * Picoseconds give sub-cycle resolution for any link rate of interest
 * (a 32-bit flit on a 400 Mbps link lasts 80,000 ps) while still
 * representing more than 100 simulated days without overflow.
 */

#ifndef MEDIAWORM_SIM_TIME_HH
#define MEDIAWORM_SIM_TIME_HH

#include <cstdint>
#include <string>

namespace mediaworm::sim {

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** Sentinel for "never" / unscheduled. */
constexpr Tick kTickNever = -1;

/** One picosecond expressed in ticks. */
constexpr Tick kPicosecond = 1;
/** One nanosecond expressed in ticks. */
constexpr Tick kNanosecond = 1000 * kPicosecond;
/** One microsecond expressed in ticks. */
constexpr Tick kMicrosecond = 1000 * kNanosecond;
/** One millisecond expressed in ticks. */
constexpr Tick kMillisecond = 1000 * kMicrosecond;
/** One second expressed in ticks. */
constexpr Tick kSecond = 1000 * kMillisecond;

/** Builds a Tick from a picosecond count. */
constexpr Tick
picoseconds(std::int64_t n)
{
    return n * kPicosecond;
}

/** Builds a Tick from a nanosecond count. */
constexpr Tick
nanoseconds(std::int64_t n)
{
    return n * kNanosecond;
}

/** Builds a Tick from a microsecond count. */
constexpr Tick
microseconds(std::int64_t n)
{
    return n * kMicrosecond;
}

/** Builds a Tick from a millisecond count. */
constexpr Tick
milliseconds(std::int64_t n)
{
    return n * kMillisecond;
}

/** Builds a Tick from a second count. */
constexpr Tick
seconds(std::int64_t n)
{
    return n * kSecond;
}

/** Converts ticks to (fractional) nanoseconds. */
constexpr double
toNanoseconds(Tick t)
{
    return static_cast<double>(t) / kNanosecond;
}

/** Converts ticks to (fractional) microseconds. */
constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / kMicrosecond;
}

/** Converts ticks to (fractional) milliseconds. */
constexpr double
toMilliseconds(Tick t)
{
    return static_cast<double>(t) / kMillisecond;
}

/** Converts ticks to (fractional) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / kSecond;
}

/**
 * Transmission time of one data unit on a serial link.
 *
 * @param bits Payload size in bits.
 * @param megabits_per_second Link rate in Mbps.
 * @return Ticks needed to serialize @p bits onto the link.
 */
constexpr Tick
serializationTime(std::int64_t bits, std::int64_t megabits_per_second)
{
    // bits / (Mbps * 1e6 bit/s) seconds == bits * 1e6 / Mbps picoseconds.
    return bits * 1000000 / megabits_per_second;
}

/** Renders a tick count with an adaptive human-readable unit. */
std::string formatTime(Tick t);

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_TIME_HH
