/**
 * @file
 * Two-tier pending-event queue.
 *
 * Near tier: a calendar-style ring of time buckets covering a few
 * dozen router cycles ahead of the cursor. Almost every event a
 * simulation schedules (pipeline stages, multiplexer service slots,
 * link deliveries) lands 1-few cycles in the future, which this tier
 * absorbs with O(1) schedule, deschedule and pop.
 *
 * Far tier: the original indexed binary min-heap, holding everything
 * outside the near window (frame interarrivals tens of milliseconds
 * out, warmup/drain timers) plus rare awkward inserts the near tier
 * declines. O(log n) schedule, cancel and reschedule.
 *
 * Tier placement is purely a performance decision: pop() compares the
 * earliest candidate of each tier under the same total (when, seq)
 * order the single heap used, so service order - including FIFO
 * delivery of same-tick events, even across tiers - is bit-identical
 * to the previous implementation regardless of which tier an event
 * sat in.
 */

#ifndef MEDIAWORM_SIM_EVENT_QUEUE_HH
#define MEDIAWORM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/time.hh"

namespace mediaworm::sim {

/** Priority queue of events ordered by (time, schedule order). */
class EventQueue
{
  public:
    /**
     * Near-tier bucket width as a power of two: 2^12 ticks = 4.096 ns.
     * Comfortably finer than any router cycle of interest (an 80 ns
     * cycle spans ~20 buckets), so a bucket rarely holds events of
     * more than one or two distinct ticks.
     */
    static constexpr int kBucketShift = 12;

    /**
     * Near-tier bucket count (power of two). Together with the width
     * this covers a ~4.2 us window - roughly 50 cycles of a 400 Mbps
     * link - ahead of the cursor.
     */
    static constexpr std::size_t kNumBuckets = 1024;

    /**
     * Bound on the sorted-insert scan inside one bucket. An insert
     * that would need a longer walk is sent to the far-tier heap
     * instead, capping the near tier's worst case at O(this bound)
     * without affecting service order.
     */
    static constexpr int kMaxInsertScan = 16;

    /**
     * First tie-break value the per-queue monotone counter hands
     * out. Event::setCanonicalSeq() keys must stay below this, so
     * the (when, seq) total order makes every canonical-key event
     * precede every counter-keyed event at the same tick, in every
     * execution mode (see event.hh).
     */
    static constexpr std::uint64_t kFirstDynamicSeq = 1ULL << 32;

    EventQueue();

    /**
     * Schedules @p event to fire at @p when.
     * The event must not already be scheduled.
     */
    void schedule(Event& event, Tick when);

    /** Removes @p event from the queue; no-op if not scheduled. */
    void deschedule(Event& event);

    /**
     * Moves @p event to fire at @p when, scheduling it if needed.
     * The event keeps its FIFO position only relative to events
     * scheduled after this call.
     */
    void reschedule(Event& event, Tick when);

    /** True if no events are pending. */
    bool empty() const { return nearCount_ == 0 && heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return nearCount_ + heap_.size(); }

    /** Firing time of the earliest event; kTickNever if empty. */
    Tick nextTime() const;

    /**
     * Removes and returns the earliest event.
     * Must not be called on an empty queue.
     */
    Event& pop();

    /**
     * Deschedules every pending event without firing it. Use before
     * tearing down a truncated simulation so events outlive the
     * queue cleanly.
     */
    void clear();

    /** Events currently held by the near-tier ring (observability). */
    std::size_t nearSize() const { return nearCount_; }

    /** Events currently held by the far-tier heap (observability). */
    std::size_t farSize() const { return heap_.size(); }

  private:
    /** One near-tier bucket: a (when, seq)-sorted intrusive list. */
    struct Bucket
    {
        Event* head = nullptr;
        Event* tail = nullptr;
    };

    bool before(const Event& a, const Event& b) const;

    // Near tier.
    bool tryScheduleNear(Event& event, std::int64_t bucket_number);
    void unlinkNear(Event& event);
    /** Earliest near-tier event; nullptr if the tier is empty.
     *  Advances the (cached) cursor past empty buckets. */
    Event* nearFront() const;
    /** Earliest event of either tier; nullptr if the queue is empty. */
    Event* earliest() const;

    // Far tier (indexed binary heap).
    void siftUp(std::size_t index);
    void siftDown(std::size_t index);
    void place(Event* event, std::size_t index);
    void scheduleFar(Event& event);
    void descheduleFar(Event& event);

    std::vector<Bucket> buckets_;
    /**
     * Absolute bucket number (when >> kBucketShift) the cursor sits
     * on; the ring slot is cursorBucket_ & (kNumBuckets - 1). Near
     * events always live in [cursorBucket_, cursorBucket_ +
     * kNumBuckets). Mutable: nextTime() advances it past empty
     * buckets, which is pure caching.
     */
    mutable std::int64_t cursorBucket_ = 0;
    std::size_t nearCount_ = 0;

    std::vector<Event*> heap_;
    std::uint64_t nextSeq_ = kFirstDynamicSeq;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_EVENT_QUEUE_HH
