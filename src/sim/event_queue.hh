/**
 * @file
 * Indexed binary min-heap of events.
 *
 * Supports O(log n) schedule, cancel and reschedule. Events firing at
 * the same tick are delivered in schedule order (stable), which keeps
 * simulations deterministic regardless of heap internals.
 */

#ifndef MEDIAWORM_SIM_EVENT_QUEUE_HH
#define MEDIAWORM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <vector>

#include "sim/event.hh"
#include "sim/time.hh"

namespace mediaworm::sim {

/** Priority queue of events ordered by (time, schedule order). */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedules @p event to fire at @p when.
     * The event must not already be scheduled.
     */
    void schedule(Event& event, Tick when);

    /** Removes @p event from the queue; no-op if not scheduled. */
    void deschedule(Event& event);

    /**
     * Moves @p event to fire at @p when, scheduling it if needed.
     * The event keeps its FIFO position only relative to events
     * scheduled after this call.
     */
    void reschedule(Event& event, Tick when);

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Firing time of the earliest event; kTickNever if empty. */
    Tick nextTime() const;

    /**
     * Removes and returns the earliest event.
     * Must not be called on an empty queue.
     */
    Event& pop();

    /**
     * Deschedules every pending event without firing it. Use before
     * tearing down a truncated simulation so events outlive the
     * queue cleanly.
     */
    void clear();

  private:
    bool before(const Event& a, const Event& b) const;
    void siftUp(std::size_t index);
    void siftDown(std::size_t index);
    void place(Event* event, std::size_t index);

    std::vector<Event*> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_EVENT_QUEUE_HH
