/**
 * @file
 * Two-tier pending-event queue.
 *
 * Near tier: a calendar-style ring of time buckets covering a few
 * dozen router cycles ahead of the cursor. Almost every event a
 * simulation schedules (pipeline stages, multiplexer service slots,
 * link deliveries) lands 1-few cycles in the future, which this tier
 * absorbs with O(1) schedule, deschedule and pop.
 *
 * Far tier: the original indexed binary min-heap, holding everything
 * outside the near window (frame interarrivals tens of milliseconds
 * out, warmup/drain timers) plus rare awkward inserts the near tier
 * declines. O(log n) schedule, cancel and reschedule.
 *
 * Tier placement is purely a performance decision: pop() compares the
 * earliest candidate of each tier under the same total (when, seq)
 * order the single heap used, so service order - including FIFO
 * delivery of same-tick events, even across tiers - is bit-identical
 * to the previous implementation regardless of which tier an event
 * sat in.
 */

#ifndef MEDIAWORM_SIM_EVENT_QUEUE_HH
#define MEDIAWORM_SIM_EVENT_QUEUE_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace mediaworm::sim {

/** Priority queue of events ordered by (time, schedule order). */
class EventQueue
{
  public:
    /**
     * Near-tier bucket width as a power of two: 2^12 ticks = 4.096 ns.
     * Comfortably finer than any router cycle of interest (an 80 ns
     * cycle spans ~20 buckets), so a bucket rarely holds events of
     * more than one or two distinct ticks.
     */
    static constexpr int kBucketShift = 12;

    /**
     * Near-tier bucket count (power of two). Together with the width
     * this covers a ~4.2 us window - roughly 50 cycles of a 400 Mbps
     * link - ahead of the cursor. Widening the window to ~67 us
     * (4096 x 16.4 ns) so per-message source interarrivals skip the
     * far heap was measured and is a wash: the saved sift traffic is
     * repaid in cache footprint (the 64 KiB ring no longer fits L1).
     */
    static constexpr std::size_t kNumBuckets = 1024;

    /**
     * Bound on the sorted-insert scan inside one bucket. An insert
     * that would need a longer walk is sent to the far-tier heap
     * instead, capping the near tier's worst case at O(this bound)
     * without affecting service order.
     */
    static constexpr int kMaxInsertScan = 16;

    /**
     * First tie-break value the per-queue monotone counter hands
     * out. Event::setCanonicalSeq() keys must stay below this, so
     * the (when, seq) total order makes every canonical-key event
     * precede every counter-keyed event at the same tick, in every
     * execution mode (see event.hh).
     */
    static constexpr std::uint64_t kFirstDynamicSeq = 1ULL << 32;

    EventQueue();

    /**
     * Schedules @p event to fire at @p when.
     * The event must not already be scheduled.
     */
    [[gnu::always_inline]] void schedule(Event& event, Tick when);

    /**
     * Consumes and returns the next dynamic tie-break key, exactly as
     * one schedule() call would have. Pair with scheduleReserved():
     * a component that knows a wakeup would fire as a no-op can skip
     * the queue insert entirely yet keep the per-queue seq evolution
     * - and therefore every later event's (when, seq) key -
     * bit-identical to always-scheduling (see sim::LazyTick).
     */
    std::uint64_t reserveSeq() { return nextSeq_++; }

    /**
     * Schedules @p event at @p when under the previously reserved
     * tie-break key @p seq, restoring exactly the service position a
     * schedule() call at reservation time would have produced. The
     * event must not be scheduled and must not carry a canonical key.
     */
    void scheduleReserved(Event& event, Tick when, std::uint64_t seq);

    /** Removes @p event from the queue; no-op if not scheduled. */
    void deschedule(Event& event);

    /**
     * Moves @p event to fire at @p when, scheduling it if needed.
     * The event keeps its FIFO position only relative to events
     * scheduled after this call.
     */
    void reschedule(Event& event, Tick when);

    /** True if no events are pending. */
    bool empty() const { return nearCount_ == 0 && heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return nearCount_ + heap_.size(); }

    /** Firing time of the earliest event; kTickNever if empty. */
    Tick nextTime() const;

    /**
     * Removes and returns the earliest event.
     * Must not be called on an empty queue.
     */
    [[gnu::always_inline]] Event& pop();

    /**
     * Earliest event without removing it; nullptr if empty. The
     * batched run loop peeks to decide whether the next event joins
     * the current batch before paying the pop.
     */
    Event* peekEarliest() { return earliest(); }

    /**
     * Fused nextTime()+pop(): removes and returns the earliest event
     * if its time is <= @p until, else leaves the queue untouched and
     * returns nullptr. Saves one earliest-event search per fired
     * event over the peek-then-pop idiom.
     */
    [[gnu::always_inline]] Event* popIfAtOrBefore(Tick until);

    /**
     * Removes @p event, which must be the earliest event (checked in
     * debug builds). Used after peekEarliest() accepted it into a
     * batch, skipping the redundant search pop() would repeat.
     */
    [[gnu::always_inline]] void popFront(Event& event);

    /**
     * Deschedules every pending event without firing it. Use before
     * tearing down a truncated simulation so events outlive the
     * queue cleanly.
     */
    void clear();

    /** Events currently held by the near-tier ring (observability). */
    std::size_t nearSize() const { return nearCount_; }

    /** Events currently held by the far-tier heap (observability). */
    std::size_t farSize() const { return heap_.size(); }

  private:
    /** One near-tier bucket: a (when, seq)-sorted intrusive list. */
    struct Bucket
    {
        Event* head = nullptr;
        Event* tail = nullptr;
    };

    bool
    before(const Event& a, const Event& b) const
    {
        if (a.when_ != b.when_)
            return a.when_ < b.when_;
        return a.seq_ < b.seq_;
    }

    /** New event inserted: keep the cached front exact. */
    void
    noteScheduled(Event& event)
    {
        if (front_ != nullptr && before(event, *front_))
            front_ = &event;
    }

    /** @p event leaves the queue: drop the cache if it was the front. */
    void
    noteRemoved(const Event& event)
    {
        if (front_ == &event)
            front_ = nullptr;
    }

    // Near tier. Force-inlined: these run two or three times per
    // fired event, and the compiler otherwise outlines them (they
    // are just over its inlining budget), costing a call per peek,
    // pop and schedule on the hottest loop in the tree.
    [[gnu::always_inline]] bool
    tryScheduleNear(Event& event, std::int64_t bucket_number);
    [[gnu::always_inline]] void unlinkNear(Event& event);
    /** Earliest near-tier event; nullptr if the tier is empty.
     *  Advances the (cached) cursor past empty buckets. */
    [[gnu::always_inline]] Event* nearFront() const;
    /** Earliest event of either tier; nullptr if the queue is empty. */
    [[gnu::always_inline]] Event* earliest() const;

    // Far tier (indexed binary heap).
    void siftUp(std::size_t index);
    void siftDown(std::size_t index);
    void place(Event* event, std::size_t index);
    void scheduleFar(Event& event);
    void descheduleFar(Event& event);

    std::vector<Bucket> buckets_;
    /**
     * Absolute bucket number (when >> kBucketShift) the cursor sits
     * on; the ring slot is cursorBucket_ & (kNumBuckets - 1). Near
     * events always live in [cursorBucket_, cursorBucket_ +
     * kNumBuckets). Mutable: nextTime() advances it past empty
     * buckets, which is pure caching.
     */
    mutable std::int64_t cursorBucket_ = 0;
    std::size_t nearCount_ = 0;
    /**
     * One bit per ring slot, set while the slot's bucket is
     * non-empty. nearFront() finds the next occupied bucket with a
     * count-trailing-zeros scan over these words instead of probing
     * buckets one by one - the difference matters when idle-tick
     * elision makes the clock jump many empty buckets at once.
     */
    std::array<std::uint64_t, kNumBuckets / 64> occupied_{};

    std::vector<Event*> heap_;
    std::uint64_t nextSeq_ = kFirstDynamicSeq;
    /**
     * Cached earliest event: non-null means it *is* the earliest
     * pending event; null means unknown (recomputed lazily by
     * earliest()). Inserts keep it exact via noteScheduled();
     * removals clear it via noteRemoved(). Saves the front search
     * when the batched run loop peeks right after a failed batch
     * probe. Mutable: earliest() is a logically-const cache fill.
     */
    mutable Event* front_ = nullptr;
};

// --- inline hot path --------------------------------------------------------
//
// One of these runs for every event a simulation fires (often two or
// three); keeping them header-inline lets the run loop see through
// the bucket/bitmap bookkeeping instead of paying a call per peek,
// pop and schedule - measurably faster than the out-of-line versions
// on the end-to-end benchmark.

inline bool
EventQueue::tryScheduleNear(Event& event, std::int64_t bucket_number)
{
    // An empty near tier can re-anchor its window anywhere.
    if (nearCount_ == 0)
        cursorBucket_ = bucket_number;
    else if (bucket_number < cursorBucket_
             || bucket_number
                 >= cursorBucket_
                     + static_cast<std::int64_t>(kNumBuckets)) {
        return false;
    }

    constexpr std::size_t mask = kNumBuckets - 1;
    Bucket& bucket =
        buckets_[static_cast<std::size_t>(bucket_number) & mask];

    // Sorted insert under the full (when, seq) order, entered from
    // the end where the event's key lives. A counter-keyed event
    // carries the largest seq, so a tail-first walk stops at the
    // last event with when_ <= event.when_ - usually immediately. A
    // canonical-key event (seq below the counter range) precedes
    // every same-tick counter-keyed event, so it walks head-first
    // instead: past earlier ticks and earlier canonical keys only,
    // never through a same-tick batch. (Tail-first for those used to
    // exhaust kMaxInsertScan against busy ticks and bounce the
    // link-delivery events - two per flit - to the far heap.)
    if (event.canonicalSeq_) {
        Event* at = bucket.head;
        int scanned = 0;
        while (at != nullptr && before(*at, event)) {
            if (++scanned > kMaxInsertScan)
                return false; // Awkward insert; the heap takes it.
            at = at->nearNext_;
        }
        // Insert immediately before `at` (or at the tail).
        event.nearNext_ = at;
        if (at != nullptr) {
            event.nearPrev_ = at->nearPrev_;
            at->nearPrev_ = &event;
        } else {
            event.nearPrev_ = bucket.tail;
            bucket.tail = &event;
        }
        if (event.nearPrev_ != nullptr)
            event.nearPrev_->nearNext_ = &event;
        else
            bucket.head = &event;
    } else {
        Event* at = bucket.tail;
        int scanned = 0;
        while (at != nullptr && before(event, *at)) {
            if (++scanned > kMaxInsertScan)
                return false; // Awkward insert; the heap takes it.
            at = at->nearPrev_;
        }
        event.nearPrev_ = at;
        if (at != nullptr) {
            event.nearNext_ = at->nearNext_;
            at->nearNext_ = &event;
        } else {
            event.nearNext_ = bucket.head;
            bucket.head = &event;
        }
        if (event.nearNext_ != nullptr)
            event.nearNext_->nearPrev_ = &event;
        else
            bucket.tail = &event;
    }

    event.heapIndex_ = Event::kInNearTier;
    ++nearCount_;
    const std::size_t slot =
        static_cast<std::size_t>(bucket_number) & mask;
    occupied_[slot >> 6] |= 1ULL << (slot & 63);
    return true;
}

inline void
EventQueue::unlinkNear(Event& event)
{
    constexpr std::size_t mask = kNumBuckets - 1;
    const std::size_t slot = static_cast<std::size_t>(
                                 event.when_ >> kBucketShift)
                             & mask;
    Bucket& bucket = buckets_[slot];
    Event* const succ = event.nearNext_;
    if (event.nearPrev_ != nullptr)
        event.nearPrev_->nearNext_ = succ;
    else
        bucket.head = succ;
    if (succ != nullptr)
        succ->nearPrev_ = event.nearPrev_;
    else
        bucket.tail = event.nearPrev_;
    event.nearPrev_ = nullptr;
    event.nearNext_ = nullptr;
    event.heapIndex_ = Event::kUnscheduled;
    --nearCount_;
    if (bucket.head == nullptr)
        occupied_[slot >> 6] &= ~(1ULL << (slot & 63));
    // O(1) front repair: when the removed event was the cached front
    // it was the global minimum, so its in-bucket successor - if any -
    // is the new near-tier minimum (every other near event sits after
    // it in this sorted bucket or in a later-time bucket). Compare
    // against the far-tier top and cache the winner, instead of
    // dropping the cache and paying a full bitmap rescan on the next
    // peek. An empty successor means the near minimum moved to a
    // later bucket; fall back to the lazy recompute.
    if (front_ == &event) {
        if (succ != nullptr) {
            front_ = (heap_.empty() || before(*succ, *heap_.front()))
                         ? succ
                         : heap_.front();
        } else {
            front_ = nullptr;
        }
    }
}

inline Event*
EventQueue::nearFront() const
{
    if (nearCount_ == 0)
        return nullptr;
    // All near events live within [cursorBucket_, cursorBucket_ +
    // kNumBuckets), so every set occupancy bit maps to exactly one
    // absolute bucket at or ahead of the cursor: scan forward (with
    // ring wrap) for the first set bit and jump the cursor straight
    // to it, instead of probing empty buckets one at a time.
    constexpr std::size_t mask = kNumBuckets - 1;
    constexpr std::size_t num_words = kNumBuckets / 64;
    const std::size_t slot =
        static_cast<std::size_t>(cursorBucket_) & mask;
    std::size_t word = slot >> 6;
    std::uint64_t bits = occupied_[word] & (~0ULL << (slot & 63));
    while (bits == 0) {
        word = (word + 1) & (num_words - 1);
        bits = occupied_[word];
    }
    const std::size_t found =
        (word << 6)
        + static_cast<std::size_t>(std::countr_zero(bits));
    cursorBucket_ += static_cast<std::int64_t>((found - slot) & mask);
    return buckets_[found].head;
}

inline Event*
EventQueue::earliest() const
{
    if (front_ != nullptr)
        return front_;
    Event* near = nearFront();
    Event* best;
    if (near == nullptr)
        best = heap_.empty() ? nullptr : heap_.front();
    else if (heap_.empty() || before(*near, *heap_.front()))
        best = near;
    else
        best = heap_.front();
    front_ = best;
    return best;
}

inline void
EventQueue::schedule(Event& event, Tick when)
{
    MW_ASSERT(!event.scheduled());
    MW_ASSERT(when >= 0);
    event.when_ = when;
    if (event.canonicalSeq_)
        MW_ASSERT(event.seq_ < kFirstDynamicSeq);
    else
        event.seq_ = nextSeq_++;
    if (!tryScheduleNear(event, when >> kBucketShift))
        scheduleFar(event);
    noteScheduled(event);
}

inline Tick
EventQueue::nextTime() const
{
    const Event* event = earliest();
    return event == nullptr ? kTickNever : event->when_;
}

inline Event&
EventQueue::pop()
{
    Event* event = earliest();
    MW_ASSERT(event != nullptr);
    if (event->heapIndex_ == Event::kInNearTier)
        unlinkNear(*event);
    else
        descheduleFar(*event);
    return *event;
}

inline Event*
EventQueue::popIfAtOrBefore(Tick until)
{
    Event* event = earliest();
    if (event == nullptr || event->when_ > until)
        return nullptr;
    if (event->heapIndex_ == Event::kInNearTier)
        unlinkNear(*event);
    else
        descheduleFar(*event);
    return event;
}

inline void
EventQueue::popFront(Event& event)
{
    MW_DEBUG_ASSERT(&event == earliest());
    if (event.heapIndex_ == Event::kInNearTier)
        unlinkNear(event);
    else
        descheduleFar(event);
}

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_EVENT_QUEUE_HH
