/**
 * @file
 * Event base class for the discrete-event kernel.
 *
 * Events are intrusive: the queue stores their scheduled time, a
 * monotonically increasing sequence number (for deterministic FIFO
 * tie-breaking of same-tick events) and their heap index (for O(log n)
 * cancellation/rescheduling) inside the event object itself, so the
 * hot path performs no allocation.
 */

#ifndef MEDIAWORM_SIM_EVENT_HH
#define MEDIAWORM_SIM_EVENT_HH

#include <cstdint>
#include <functional>

#include "sim/time.hh"

namespace mediaworm::sim {

class EventQueue;

/**
 * A schedulable action.
 *
 * Subclasses implement fire(). The owning object typically embeds its
 * events by value and reschedules them; an event must outlive any
 * queue it is scheduled on.
 */
class Event
{
  public:
    Event() = default;
    virtual ~Event();

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /** Invoked by the kernel when simulated time reaches when(). */
    virtual void fire() = 0;

    /** Human-readable name for tracing. */
    virtual const char* name() const { return "Event"; }

    /** True if currently scheduled on a queue. */
    bool scheduled() const { return heapIndex_ >= 0; }

    /** Scheduled firing time; meaningless unless scheduled(). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    Tick when_ = kTickNever;
    std::uint64_t seq_ = 0;
    std::int32_t heapIndex_ = -1;
};

/** Event adapter that invokes an arbitrary callable. */
class CallbackEvent final : public Event
{
  public:
    CallbackEvent() = default;

    /** Constructs with the callable to run on fire(). */
    explicit CallbackEvent(std::function<void()> fn,
                           const char* name = "CallbackEvent")
        : fn_(std::move(fn)), name_(name)
    {
    }

    /** Replaces the callable; must not be scheduled when called. */
    void
    setCallback(std::function<void()> fn)
    {
        fn_ = std::move(fn);
    }

    void
    fire() override
    {
        fn_();
    }

    const char* name() const override { return name_; }

  private:
    std::function<void()> fn_;
    const char* name_ = "CallbackEvent";
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_EVENT_HH
