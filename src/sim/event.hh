/**
 * @file
 * Event base class for the discrete-event kernel.
 *
 * Events are intrusive: the queue stores their scheduled time, a
 * monotonically increasing sequence number (for deterministic FIFO
 * tie-breaking of same-tick events) and their queue position (heap
 * index or near-tier list links, see event_queue.hh) inside the event
 * object itself, so the hot path performs no allocation.
 */

#ifndef MEDIAWORM_SIM_EVENT_HH
#define MEDIAWORM_SIM_EVENT_HH

#include <cstdint>
#include <functional>

#include "sim/time.hh"

namespace mediaworm::sim {

class EventQueue;
class Event;

/**
 * Coalescing target for batched dispatch.
 *
 * A component (router, network interface) registers itself as the
 * batch sink of its hot-path events. When Simulator::run() pops such
 * an event it makes ONE virtual fireBatch() call and the sink then
 * pulls every remaining same-tick event targeting it via
 * Simulator::nextBatchMember(), dispatching each through a direct
 * (non-virtual) opcode switch. Service order stays bit-identical to
 * per-event dispatch because members are popped one at a time from
 * the live queue under the same (when, seq) total order - an event
 * inserted mid-batch lands in its correct position.
 */
class BatchSink
{
  public:
    virtual ~BatchSink() = default;

    /**
     * Fire @p first, then keep calling
     * Simulator::nextBatchMember(this) and firing what it returns
     * until it returns nullptr.
     */
    virtual void fireBatch(Event& first) = 0;
};

/**
 * A schedulable action.
 *
 * Subclasses implement fire(). The owning object typically embeds its
 * events by value and reschedules them; an event must outlive any
 * queue it is scheduled on.
 */
class Event
{
  public:
    Event() = default;
    virtual ~Event();

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /** Invoked by the kernel when simulated time reaches when(). */
    virtual void fire() = 0;

    /** Human-readable name for tracing. */
    virtual const char* name() const { return "Event"; }

    /** True if currently scheduled on a queue. */
    bool scheduled() const { return heapIndex_ != kUnscheduled; }

    /** Scheduled firing time; meaningless unless scheduled(). */
    Tick when() const { return when_; }

    /** Tie-break key of the most recent schedule (see EventQueue). */
    std::uint64_t seq() const { return seq_; }

    /**
     * Marks this event as coalescible into batches targeting
     * @p sink; @p op is the sink-private opcode its fireBatch()
     * switches on instead of a virtual call. Set once at
     * construction, before the first schedule.
     */
    void
    setBatchSink(BatchSink* sink, std::uint8_t op)
    {
        batchSink_ = sink;
        batchOp_ = op;
    }

    /** Coalescing target; nullptr means per-event dispatch. */
    BatchSink* batchSink() const { return batchSink_; }

    /** Sink-private dispatch opcode (meaningful if batchSink()). */
    std::uint8_t batchOp() const { return batchOp_; }

    /**
     * Pins this event's tie-break key to @p key forever, instead of
     * the per-schedule monotone counter. Canonical keys occupy the
     * range below EventQueue's dynamic counter, so among same-tick
     * events every canonical-key event fires before every
     * counter-keyed event, and canonical-key events fire in key
     * order - a total order that does not depend on schedule-call
     * order. This is what lets conservative-parallel shards merge
     * cross-shard link events in the same order the single-threaded
     * kernel would have used (see sim/pdes.hh).
     *
     * Must be called before the first schedule; @p key must be
     * unique per queue among canonical events that can share a tick.
     */
    void
    setCanonicalSeq(std::uint64_t key)
    {
        seq_ = key;
        canonicalSeq_ = true;
    }

    /** True if setCanonicalSeq() pinned the tie-break key. */
    bool hasCanonicalSeq() const { return canonicalSeq_; }

  private:
    friend class EventQueue;

    /** heapIndex_ sentinel: not on any queue. */
    static constexpr std::int64_t kUnscheduled = -1;
    /** heapIndex_ sentinel: linked into a near-tier bucket. */
    static constexpr std::int64_t kInNearTier = -2;

    Tick when_ = kTickNever;
    std::uint64_t seq_ = 0;
    /**
     * Position marker. Non-negative values index the far-tier heap;
     * 64 bits wide so the index can never overflow the representable
     * range (the heap would exhaust memory first), unlike the
     * previous 31-bit field which silently narrowed heap_.size().
     */
    std::int64_t heapIndex_ = kUnscheduled;
    /** Near-tier bucket list links (meaningful only in the near tier). */
    Event* nearPrev_ = nullptr;
    Event* nearNext_ = nullptr;
    /** True once setCanonicalSeq() fixed seq_ permanently. */
    bool canonicalSeq_ = false;
    /** Coalescing target for batched dispatch; nullptr = per-event. */
    BatchSink* batchSink_ = nullptr;
    /** Sink-private opcode, switched on inside fireBatch(). */
    std::uint8_t batchOp_ = 0;
};

namespace detail {

/** Extracts the class type from a pointer-to-member-function. */
template <class M>
struct MemberFnClass;

template <class C>
struct MemberFnClass<void (C::*)()>
{
    using type = C;
};

} // namespace detail

/**
 * Event bound at compile time to one member function of one object.
 *
 * fire() is a direct (devirtualized-template) call through a plain
 * object pointer: no std::function type erasure, no allocation, no
 * captured state beyond the object pointer. This is the hot-path
 * replacement for CallbackEvent; use it whenever the action is "call
 * this method on this object".
 *
 *   class Link {
 *       void deliverFlits();
 *       sim::MemberFuncEvent<&Link::deliverFlits> flitEvent_{this};
 *   };
 */
template <auto Method>
class MemberFuncEvent final : public Event
{
    using Class = typename detail::MemberFnClass<decltype(Method)>::type;

  public:
    /** Binds to @p object; @p name is used for tracing. */
    explicit MemberFuncEvent(Class* object,
                             const char* name = "MemberFuncEvent")
        : object_(object), name_(name)
    {
    }

    void
    fire() override
    {
        (object_->*Method)();
    }

    const char* name() const override { return name_; }

  private:
    Class* object_;
    const char* name_;
};

/**
 * Event adapter that invokes an arbitrary callable.
 *
 * Flexible but pays std::function type erasure per fire(); reserve it
 * for cold paths (one-shot timers, tests) and use MemberFuncEvent on
 * hot paths.
 */
class CallbackEvent final : public Event
{
  public:
    CallbackEvent() = default;

    /** Constructs with the callable to run on fire(). */
    explicit CallbackEvent(std::function<void()> fn,
                           const char* name = "CallbackEvent")
        : fn_(std::move(fn)), name_(name)
    {
    }

    /** Replaces the callable; must not be scheduled when called. */
    void
    setCallback(std::function<void()> fn)
    {
        fn_ = std::move(fn);
    }

    void
    fire() override
    {
        fn_();
    }

    const char* name() const override { return name_; }

  private:
    std::function<void()> fn_;
    const char* name_ = "CallbackEvent";
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_EVENT_HH
