/**
 * @file
 * Status and error reporting helpers, modelled on gem5's logging.hh.
 *
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters). Exits cleanly.
 * panic()  - an internal invariant was violated (a simulator bug).
 *            Aborts so a core/backtrace is available.
 * warn()   - something looks wrong but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef MEDIAWORM_SIM_LOGGING_HH
#define MEDIAWORM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mediaworm::sim {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel {
    Silent = 0, ///< Only fatal/panic output.
    Warn = 1,   ///< Warnings and errors.
    Info = 2,   ///< Warnings, errors and status messages.
    Debug = 3,  ///< Everything, including debug traces.
};

/** Sets the global log threshold. Defaults to Info. */
void setLogLevel(LogLevel level);

/** Returns the current global log threshold. */
LogLevel logLevel();

/** Terminates with exit(1); for user errors. Printf-style format. */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Terminates with abort(); for simulator bugs. Printf-style format. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Last-words callback invoked by fatal() and panic() after printing
 * their message and before terminating, so an observer (the obs
 * flight recorder) can dump its trail of recent events to stderr.
 *
 * A plain function pointer + context keeps logging free of
 * std::function; pass nullptr to uninstall. The hook must be
 * async-termination-safe in the ordinary sense: it runs on the
 * failing thread and must not call fatal()/panic() itself.
 */
using CrashHook = void (*)(void* context);

/** Installs @p hook (replacing any previous one). */
void setCrashHook(CrashHook hook, void* context);

/** Current hook, or nullptr; @p context receives its context. */
CrashHook crashHook(void** context);

/** Non-fatal complaint. Printf-style format. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message. Printf-style format. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug trace, suppressed unless the level is Debug. */
void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Hard invariant check that survives NDEBUG builds.
 * Use for conditions whose violation means a simulator bug.
 */
#define MW_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::mediaworm::sim::panic("assertion '%s' failed at %s:%d",   \
                                    #cond, __FILE__, __LINE__);         \
        }                                                               \
    } while (0)

/**
 * Invariant check on a per-flit hot path (buffer accesses, arbiter
 * kernels). Same contract as MW_ASSERT in debug builds, compiled out
 * under NDEBUG so Release builds pay nothing; the CI Release job runs
 * the full test suite with these disabled to catch code that relies
 * on an assert's side effects.
 */
#ifdef NDEBUG
#define MW_DEBUG_ASSERT(cond, ...) \
    do {                           \
    } while (0)
#else
#define MW_DEBUG_ASSERT(cond, ...) MW_ASSERT(cond)
#endif

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_LOGGING_HH
