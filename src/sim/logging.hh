/**
 * @file
 * Status and error reporting helpers, modelled on gem5's logging.hh.
 *
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters). Exits cleanly.
 * panic()  - an internal invariant was violated (a simulator bug).
 *            Aborts so a core/backtrace is available.
 * warn()   - something looks wrong but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef MEDIAWORM_SIM_LOGGING_HH
#define MEDIAWORM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mediaworm::sim {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel {
    Silent = 0, ///< Only fatal/panic output.
    Warn = 1,   ///< Warnings and errors.
    Info = 2,   ///< Warnings, errors and status messages.
    Debug = 3,  ///< Everything, including debug traces.
};

/** Sets the global log threshold. Defaults to Info. */
void setLogLevel(LogLevel level);

/** Returns the current global log threshold. */
LogLevel logLevel();

/** Terminates with exit(1); for user errors. Printf-style format. */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Terminates with abort(); for simulator bugs. Printf-style format. */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal complaint. Printf-style format. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message. Printf-style format. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug trace, suppressed unless the level is Debug. */
void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Hard invariant check that survives NDEBUG builds.
 * Use for conditions whose violation means a simulator bug.
 */
#define MW_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::mediaworm::sim::panic("assertion '%s' failed at %s:%d",   \
                                    #cond, __FILE__, __LINE__);         \
        }                                                               \
    } while (0)

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_LOGGING_HH
