/**
 * @file
 * Strongly-typed identifiers used throughout the simulator.
 *
 * Using distinct types for node, port, virtual-channel, stream and
 * message identifiers prevents the classic "swapped int arguments"
 * class of bugs in a codebase whose interfaces pass many small
 * integers around.
 */

#ifndef MEDIAWORM_SIM_IDS_HH
#define MEDIAWORM_SIM_IDS_HH

#include <cstdint>
#include <functional>

namespace mediaworm::sim {

/**
 * CRTP-free strong integer wrapper.
 *
 * @tparam Tag Phantom type distinguishing id families.
 */
template <typename Tag>
class StrongId
{
  public:
    /** Constructs the invalid id. */
    constexpr StrongId() : value_(kInvalid) {}

    /** Constructs from a raw integer value. */
    constexpr explicit StrongId(std::int32_t value) : value_(value) {}

    /** Returns the raw integer value. */
    constexpr std::int32_t value() const { return value_; }

    /** True if this id was assigned (non-negative). */
    constexpr bool valid() const { return value_ >= 0; }

    constexpr bool operator==(const StrongId&) const = default;
    constexpr auto operator<=>(const StrongId&) const = default;

  private:
    static constexpr std::int32_t kInvalid = -1;

    std::int32_t value_;
};

struct NodeTag {};
struct SwitchTag {};
struct PortTag {};
struct VcTag {};
struct StreamTag {};
struct LinkTag {};

/** Endpoint (traffic source/sink) identifier. */
using NodeId = StrongId<NodeTag>;
/** Router/switch identifier within a topology. */
using SwitchId = StrongId<SwitchTag>;
/** Physical-channel (port) index within a router. */
using PortId = StrongId<PortTag>;
/** Virtual-channel index within a physical channel. */
using VcId = StrongId<VcTag>;
/** Traffic stream (connection) identifier. */
using StreamId = StrongId<StreamTag>;
/** Physical link identifier within a topology. */
using LinkId = StrongId<LinkTag>;

/** Message sequence number; unique per stream. */
using MessageSeq = std::int64_t;
/** Video frame sequence number; unique per stream. */
using FrameSeq = std::int64_t;

} // namespace mediaworm::sim

namespace std {

template <typename Tag>
struct hash<mediaworm::sim::StrongId<Tag>>
{
    size_t
    operator()(const mediaworm::sim::StrongId<Tag>& id) const noexcept
    {
        return std::hash<std::int32_t>{}(id.value());
    }
};

} // namespace std

#endif // MEDIAWORM_SIM_IDS_HH
