#include "sim/random.hh"

#include "sim/logging.hh"

namespace mediaworm::sim {

namespace {

/** SplitMix64 step; used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t s = seed_value;
    for (auto& word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform01()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    MW_ASSERT(n > 0);
    // Lemire's debiased multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = -n % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    MW_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    return uniform01() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace mediaworm::sim
