#include "sim/tracer.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::sim {

const char*
toString(TracePoint point)
{
    switch (point) {
      case TracePoint::HostInject:
        return "host-inject";
      case TracePoint::NetworkLaunch:
        return "network-launch";
      case TracePoint::RouterArrive:
        return "router-arrive";
      case TracePoint::RouterDepart:
        return "router-depart";
      case TracePoint::Eject:
        return "eject";
      case TracePoint::CreditReturn:
        return "credit-return";
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity)
    : ring_(capacity), capacity_(capacity)
{
    MW_ASSERT(capacity > 0);
}

void
Tracer::record(const TraceRecord& entry)
{
    ring_[(head_ + count_) % capacity_] = entry;
    if (count_ < capacity_)
        ++count_;
    else
        head_ = (head_ + 1) % capacity_;
    ++totalRecorded_;
}

std::size_t
Tracer::size() const
{
    return count_;
}

void
Tracer::forEach(
    const std::function<void(const TraceRecord&)>& visit) const
{
    for (std::size_t i = 0; i < count_; ++i)
        visit(ring_[(head_ + i) % capacity_]);
}

std::string
Tracer::toString(std::size_t tail) const
{
    std::string out;
    char line[160];
    std::size_t skip =
        (tail != 0 && count_ > tail) ? count_ - tail : 0;
    forEach([&](const TraceRecord& entry) {
        if (skip != 0) {
            --skip;
            return;
        }
        std::snprintf(line, sizeof(line),
                      "%14s  %-14s stream=%d msg=%lld flit=%d "
                      "at=%d port=%d vc=%d\n",
                      formatTime(entry.when).c_str(),
                      mediaworm::sim::toString(entry.point),
                      entry.stream.value(),
                      static_cast<long long>(entry.message),
                      entry.flitIndex, entry.location, entry.port,
                      entry.vc);
        out += line;
    });
    return out;
}

void
Tracer::clear()
{
    head_ = 0;
    count_ = 0;
}

} // namespace mediaworm::sim
