/**
 * @file
 * Flit-level event tracing.
 *
 * A Tracer is an optional ring buffer of timestamped flit lifecycle
 * records that the network components fill when one is attached.
 * Filtered by stream to keep volume manageable, it answers the
 * questions simulator users actually ask: where did this message
 * spend its time, in what order did its flits move, and which hop
 * blocked it.
 */

#ifndef MEDIAWORM_SIM_TRACER_HH
#define MEDIAWORM_SIM_TRACER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/ids.hh"
#include "sim/time.hh"

namespace mediaworm::sim {

/** Lifecycle points a flit passes. */
enum class TracePoint : std::uint8_t {
    HostInject,   ///< Message queued at the source NI.
    NetworkLaunch,///< Flit left the NI onto the injection link.
    RouterArrive, ///< Flit entered a router input VC.
    RouterDepart, ///< Flit left a router's VC output multiplexer.
    Eject,        ///< Flit consumed by the destination NI.
    CreditReturn, ///< Credit came back to a router output VC (no
                  ///< flit; stream/message fields are invalid).
};

/** Returns a stable display name for a trace point. */
const char* toString(TracePoint point);

/** One trace entry. */
struct TraceRecord
{
    Tick when = 0;
    TracePoint point = TracePoint::HostInject;
    StreamId stream;
    MessageSeq message = 0;
    std::int32_t flitIndex = 0;
    /** Component id: node for NI points, switch for router points. */
    std::int32_t location = -1;
    std::int32_t port = -1; ///< Router port, where meaningful.
    std::int32_t vc = -1;   ///< VC lane at the point.
};

/** Bounded ring of TraceRecords with a stream filter. */
class Tracer
{
  public:
    /** @param capacity Records retained (oldest evicted first). */
    explicit Tracer(std::size_t capacity = 65536);

    /**
     * Restricts recording to one stream. An invalid id (the default)
     * records every stream.
     */
    void filterStream(StreamId stream) { filter_ = stream; }

    /** True if @p stream passes the filter. */
    bool
    accepts(StreamId stream) const
    {
        return !filter_.valid() || filter_ == stream;
    }

    /** Appends a record (evicting the oldest when full). */
    void record(const TraceRecord& entry);

    /** Records retained (min of capacity and total recorded). */
    std::size_t size() const;

    /** Total records ever accepted, including evicted ones. */
    std::uint64_t totalRecorded() const { return totalRecorded_; }

    /** Visits retained records oldest-first. */
    void forEach(
        const std::function<void(const TraceRecord&)>& visit) const;

    /**
     * Renders retained records, one line each.
     * @param tail Render only the newest @p tail records (0 = all).
     */
    std::string toString(std::size_t tail = 0) const;

    /** Drops all retained records. */
    void clear();

  private:
    std::vector<TraceRecord> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t totalRecorded_ = 0;
    StreamId filter_;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_TRACER_HH
