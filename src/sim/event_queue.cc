#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace mediaworm::sim {

Event::~Event()
{
    MW_ASSERT(!scheduled());
}

EventQueue::EventQueue() : buckets_(kNumBuckets) {}

// The near-tier hot path (tryScheduleNear, unlinkNear, nearFront,
// earliest, schedule, pop variants) lives inline in the header; this
// file keeps the far-tier heap and the cold maintenance entry points.

// --- far tier ---------------------------------------------------------------

void
EventQueue::place(Event* event, std::size_t index)
{
    heap_[index] = event;
    event->heapIndex_ = static_cast<std::int64_t>(index);
}

void
EventQueue::siftUp(std::size_t index)
{
    Event* event = heap_[index];
    while (index > 0) {
        const std::size_t parent = (index - 1) / 2;
        if (!before(*event, *heap_[parent]))
            break;
        place(heap_[parent], index);
        index = parent;
    }
    place(event, index);
}

void
EventQueue::siftDown(std::size_t index)
{
    Event* event = heap_[index];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t child = 2 * index + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(*heap_[child + 1], *heap_[child]))
            ++child;
        if (!before(*heap_[child], *event))
            break;
        place(heap_[child], index);
        index = child;
    }
    place(event, index);
}

void
EventQueue::scheduleFar(Event& event)
{
    heap_.push_back(&event);
    event.heapIndex_ = static_cast<std::int64_t>(heap_.size() - 1);
    siftUp(heap_.size() - 1);
}

void
EventQueue::descheduleFar(Event& event)
{
    const auto index = static_cast<std::size_t>(event.heapIndex_);
    MW_ASSERT(index < heap_.size() && heap_[index] == &event);
    event.heapIndex_ = Event::kUnscheduled;
    noteRemoved(event);
    Event* last = heap_.back();
    heap_.pop_back();
    if (last == &event)
        return;
    place(last, index);
    // The replacement can need to move either direction.
    siftUp(index);
    siftDown(static_cast<std::size_t>(last->heapIndex_));
}

// --- public API -------------------------------------------------------------

void
EventQueue::scheduleReserved(Event& event, Tick when,
                             std::uint64_t seq)
{
    MW_ASSERT(!event.scheduled());
    MW_ASSERT(when >= 0);
    MW_ASSERT(!event.canonicalSeq_);
    MW_ASSERT(seq >= kFirstDynamicSeq && seq < nextSeq_);
    event.when_ = when;
    event.seq_ = seq;
    if (!tryScheduleNear(event, when >> kBucketShift))
        scheduleFar(event);
    noteScheduled(event);
}

void
EventQueue::deschedule(Event& event)
{
    if (!event.scheduled())
        return;
    if (event.heapIndex_ == Event::kInNearTier)
        unlinkNear(event);
    else
        descheduleFar(event);
}

void
EventQueue::reschedule(Event& event, Tick when)
{
    deschedule(event);
    schedule(event, when);
}

void
EventQueue::clear()
{
    for (Bucket& bucket : buckets_) {
        Event* event = bucket.head;
        while (event != nullptr) {
            Event* next = event->nearNext_;
            event->nearPrev_ = nullptr;
            event->nearNext_ = nullptr;
            event->heapIndex_ = Event::kUnscheduled;
            event = next;
        }
        bucket.head = nullptr;
        bucket.tail = nullptr;
    }
    occupied_.fill(0);
    nearCount_ = 0;
    for (Event* event : heap_)
        event->heapIndex_ = Event::kUnscheduled;
    heap_.clear();
    front_ = nullptr;
}

} // namespace mediaworm::sim
