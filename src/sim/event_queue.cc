#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace mediaworm::sim {

namespace {

constexpr std::size_t kBucketMask = EventQueue::kNumBuckets - 1;
static_assert((EventQueue::kNumBuckets & kBucketMask) == 0,
              "bucket count must be a power of two");

} // namespace

Event::~Event()
{
    MW_ASSERT(!scheduled());
}

EventQueue::EventQueue() : buckets_(kNumBuckets) {}

bool
EventQueue::before(const Event& a, const Event& b) const
{
    if (a.when_ != b.when_)
        return a.when_ < b.when_;
    return a.seq_ < b.seq_;
}

// --- near tier --------------------------------------------------------------

bool
EventQueue::tryScheduleNear(Event& event, std::int64_t bucket_number)
{
    // An empty near tier can re-anchor its window anywhere.
    if (nearCount_ == 0)
        cursorBucket_ = bucket_number;
    else if (bucket_number < cursorBucket_
             || bucket_number
                 >= cursorBucket_
                     + static_cast<std::int64_t>(kNumBuckets)) {
        return false;
    }

    Bucket& bucket =
        buckets_[static_cast<std::size_t>(bucket_number) & kBucketMask];

    // Sorted insert from the tail under the full (when, seq) order.
    // A counter-keyed event carries the largest seq, so for it this
    // stops at the last event with when_ <= event.when_ - the tail
    // check is the dominant case; a canonical-key event (seq below
    // the counter range) may walk past same-tick counter-keyed
    // events to its key slot.
    Event* at = bucket.tail;
    int scanned = 0;
    while (at != nullptr && before(event, *at)) {
        if (++scanned > kMaxInsertScan)
            return false; // Awkward insert; the heap takes it.
        at = at->nearPrev_;
    }

    event.nearPrev_ = at;
    if (at != nullptr) {
        event.nearNext_ = at->nearNext_;
        at->nearNext_ = &event;
    } else {
        event.nearNext_ = bucket.head;
        bucket.head = &event;
    }
    if (event.nearNext_ != nullptr)
        event.nearNext_->nearPrev_ = &event;
    else
        bucket.tail = &event;

    event.heapIndex_ = Event::kInNearTier;
    ++nearCount_;
    return true;
}

void
EventQueue::unlinkNear(Event& event)
{
    Bucket& bucket = buckets_[static_cast<std::size_t>(
                                  event.when_ >> kBucketShift)
                              & kBucketMask];
    if (event.nearPrev_ != nullptr)
        event.nearPrev_->nearNext_ = event.nearNext_;
    else
        bucket.head = event.nearNext_;
    if (event.nearNext_ != nullptr)
        event.nearNext_->nearPrev_ = event.nearPrev_;
    else
        bucket.tail = event.nearPrev_;
    event.nearPrev_ = nullptr;
    event.nearNext_ = nullptr;
    event.heapIndex_ = Event::kUnscheduled;
    --nearCount_;
}

Event*
EventQueue::nearFront() const
{
    if (nearCount_ == 0)
        return nullptr;
    // All near events live within kNumBuckets of the cursor, so this
    // terminates; the cursor only ever moves forward, so the scan
    // cost amortizes to one bucket visit per bucket of elapsed time.
    while (buckets_[static_cast<std::size_t>(cursorBucket_)
                    & kBucketMask]
               .head
           == nullptr) {
        ++cursorBucket_;
    }
    return buckets_[static_cast<std::size_t>(cursorBucket_)
                    & kBucketMask]
        .head;
}

Event*
EventQueue::earliest() const
{
    Event* near = nearFront();
    if (near == nullptr)
        return heap_.empty() ? nullptr : heap_.front();
    if (heap_.empty() || before(*near, *heap_.front()))
        return near;
    return heap_.front();
}

// --- far tier ---------------------------------------------------------------

void
EventQueue::place(Event* event, std::size_t index)
{
    heap_[index] = event;
    event->heapIndex_ = static_cast<std::int64_t>(index);
}

void
EventQueue::siftUp(std::size_t index)
{
    Event* event = heap_[index];
    while (index > 0) {
        const std::size_t parent = (index - 1) / 2;
        if (!before(*event, *heap_[parent]))
            break;
        place(heap_[parent], index);
        index = parent;
    }
    place(event, index);
}

void
EventQueue::siftDown(std::size_t index)
{
    Event* event = heap_[index];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t child = 2 * index + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(*heap_[child + 1], *heap_[child]))
            ++child;
        if (!before(*heap_[child], *event))
            break;
        place(heap_[child], index);
        index = child;
    }
    place(event, index);
}

void
EventQueue::scheduleFar(Event& event)
{
    heap_.push_back(&event);
    event.heapIndex_ = static_cast<std::int64_t>(heap_.size() - 1);
    siftUp(heap_.size() - 1);
}

void
EventQueue::descheduleFar(Event& event)
{
    const auto index = static_cast<std::size_t>(event.heapIndex_);
    MW_ASSERT(index < heap_.size() && heap_[index] == &event);
    event.heapIndex_ = Event::kUnscheduled;
    Event* last = heap_.back();
    heap_.pop_back();
    if (last == &event)
        return;
    place(last, index);
    // The replacement can need to move either direction.
    siftUp(index);
    siftDown(static_cast<std::size_t>(last->heapIndex_));
}

// --- public API -------------------------------------------------------------

void
EventQueue::schedule(Event& event, Tick when)
{
    MW_ASSERT(!event.scheduled());
    MW_ASSERT(when >= 0);
    event.when_ = when;
    if (event.canonicalSeq_)
        MW_ASSERT(event.seq_ < kFirstDynamicSeq);
    else
        event.seq_ = nextSeq_++;
    if (!tryScheduleNear(event, when >> kBucketShift))
        scheduleFar(event);
}

void
EventQueue::deschedule(Event& event)
{
    if (!event.scheduled())
        return;
    if (event.heapIndex_ == Event::kInNearTier)
        unlinkNear(event);
    else
        descheduleFar(event);
}

void
EventQueue::reschedule(Event& event, Tick when)
{
    deschedule(event);
    schedule(event, when);
}

Tick
EventQueue::nextTime() const
{
    const Event* event = earliest();
    return event == nullptr ? kTickNever : event->when_;
}

Event&
EventQueue::pop()
{
    Event* event = earliest();
    MW_ASSERT(event != nullptr);
    if (event->heapIndex_ == Event::kInNearTier)
        unlinkNear(*event);
    else
        descheduleFar(*event);
    return *event;
}

void
EventQueue::clear()
{
    for (Bucket& bucket : buckets_) {
        Event* event = bucket.head;
        while (event != nullptr) {
            Event* next = event->nearNext_;
            event->nearPrev_ = nullptr;
            event->nearNext_ = nullptr;
            event->heapIndex_ = Event::kUnscheduled;
            event = next;
        }
        bucket.head = nullptr;
        bucket.tail = nullptr;
    }
    nearCount_ = 0;
    for (Event* event : heap_)
        event->heapIndex_ = Event::kUnscheduled;
    heap_.clear();
}

} // namespace mediaworm::sim
