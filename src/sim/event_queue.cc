#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace mediaworm::sim {

Event::~Event()
{
    MW_ASSERT(!scheduled());
}

bool
EventQueue::before(const Event& a, const Event& b) const
{
    if (a.when_ != b.when_)
        return a.when_ < b.when_;
    return a.seq_ < b.seq_;
}

void
EventQueue::place(Event* event, std::size_t index)
{
    heap_[index] = event;
    event->heapIndex_ = static_cast<std::int32_t>(index);
}

void
EventQueue::siftUp(std::size_t index)
{
    Event* event = heap_[index];
    while (index > 0) {
        const std::size_t parent = (index - 1) / 2;
        if (!before(*event, *heap_[parent]))
            break;
        place(heap_[parent], index);
        index = parent;
    }
    place(event, index);
}

void
EventQueue::siftDown(std::size_t index)
{
    Event* event = heap_[index];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t child = 2 * index + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(*heap_[child + 1], *heap_[child]))
            ++child;
        if (!before(*heap_[child], *event))
            break;
        place(heap_[child], index);
        index = child;
    }
    place(event, index);
}

void
EventQueue::schedule(Event& event, Tick when)
{
    MW_ASSERT(!event.scheduled());
    MW_ASSERT(when >= 0);
    event.when_ = when;
    event.seq_ = nextSeq_++;
    heap_.push_back(&event);
    event.heapIndex_ = static_cast<std::int32_t>(heap_.size() - 1);
    siftUp(heap_.size() - 1);
}

void
EventQueue::deschedule(Event& event)
{
    if (!event.scheduled())
        return;
    const auto index = static_cast<std::size_t>(event.heapIndex_);
    MW_ASSERT(index < heap_.size() && heap_[index] == &event);
    event.heapIndex_ = -1;
    Event* last = heap_.back();
    heap_.pop_back();
    if (last == &event)
        return;
    place(last, index);
    // The replacement can need to move either direction.
    siftUp(index);
    siftDown(static_cast<std::size_t>(last->heapIndex_));
}

void
EventQueue::reschedule(Event& event, Tick when)
{
    deschedule(event);
    schedule(event, when);
}

Tick
EventQueue::nextTime() const
{
    return heap_.empty() ? kTickNever : heap_.front()->when_;
}

Event&
EventQueue::pop()
{
    MW_ASSERT(!heap_.empty());
    Event& event = *heap_.front();
    deschedule(event);
    return event;
}

void
EventQueue::clear()
{
    for (Event* event : heap_)
        event->heapIndex_ = -1;
    heap_.clear();
}

} // namespace mediaworm::sim
