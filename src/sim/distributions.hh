/**
 * @file
 * Random variate distributions used by the traffic models.
 *
 * Implemented locally (rather than via <random>) so that every
 * platform produces bit-identical draws for a given seed.
 */

#ifndef MEDIAWORM_SIM_DISTRIBUTIONS_HH
#define MEDIAWORM_SIM_DISTRIBUTIONS_HH

#include "sim/random.hh"

namespace mediaworm::sim {

/** Interface for a real-valued random distribution. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draws the next variate using @p rng. */
    virtual double sample(Rng& rng) = 0;

    /** Analytic mean of the distribution. */
    virtual double mean() const = 0;
};

/** Degenerate distribution: always returns the same value. */
class ConstantDistribution final : public Distribution
{
  public:
    explicit ConstantDistribution(double value) : value_(value) {}

    double sample(Rng&) override { return value_; }
    double mean() const override { return value_; }

  private:
    double value_;
};

/** Continuous uniform on [lo, hi). */
class UniformDistribution final : public Distribution
{
  public:
    UniformDistribution(double lo, double hi);

    double sample(Rng& rng) override;
    double mean() const override { return 0.5 * (lo_ + hi_); }

  private:
    double lo_;
    double hi_;
};

/**
 * Normal distribution via the Marsaglia polar method.
 *
 * Caches the spare variate, so draws come in deterministic pairs.
 */
class NormalDistribution final : public Distribution
{
  public:
    NormalDistribution(double mean, double stddev);

    double sample(Rng& rng) override;
    double mean() const override { return mean_; }

    /** Standard deviation parameter. */
    double stddev() const { return stddev_; }

  private:
    double mean_;
    double stddev_;
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

/**
 * Normal distribution truncated below at @p floor.
 *
 * The paper draws MPEG-2 frame sizes from Normal(16666, 3333) bytes;
 * truncation keeps pathological negative sizes out of the tail
 * (5-sigma events) without visibly changing the mean.
 */
class TruncatedNormalDistribution final : public Distribution
{
  public:
    TruncatedNormalDistribution(double mean, double stddev, double floor);

    double sample(Rng& rng) override;
    double mean() const override { return normal_.mean(); }

  private:
    NormalDistribution normal_;
    double floor_;
};

/** Exponential distribution with the given mean (rate = 1/mean). */
class ExponentialDistribution final : public Distribution
{
  public:
    explicit ExponentialDistribution(double mean);

    double sample(Rng& rng) override;
    double mean() const override { return mean_; }

  private:
    double mean_;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_DISTRIBUTIONS_HH
