/**
 * @file
 * Conservative parallel discrete-event execution (Chandy-Misra-Bryant
 * style) over a set of shard Simulators.
 *
 * Each shard owns a disjoint set of model components with their own
 * two-tier event queue and clock. Shards interact only through
 * registered mailboxes (cross-shard link channels): during an epoch a
 * producer appends into a mailbox without scheduling anything on the
 * consumer; at the epoch boundary the consumer drains its mailboxes
 * and schedules the resulting delivery events on its own queue.
 *
 * Epoch protocol (two barriers per epoch):
 *
 *   1. Every shard runs its local events in the window [T, T+W-1]
 *      where W is the lookahead - the minimum cross-shard link
 *      delay. Anything a shard sends in this window arrives at or
 *      after T+W, so no shard can receive an event inside the window
 *      it is currently executing: local order is safe.
 *   2. Barrier. Each shard flushes the mailboxes it consumes,
 *      scheduling arrivals (all at >= T+W) on its queue, and
 *      publishes its next pending event time.
 *   3. Barrier. All shards adopt T' = min over shards of the next
 *      pending time (fast-forward over idle gaps) and start the next
 *      epoch, or terminate when no events remain or T' exceeds the
 *      cap.
 *
 * Determinism: mailbox delivery events carry canonical tie-break
 * keys (Event::setCanonicalSeq), so each shard's (when, seq) order
 * over its own events is identical to the single-threaded kernel's
 * order restricted to that shard - sharded runs reproduce the
 * single-threaded deterministicHash bit for bit (see DESIGN.md
 * section 12 for the induction argument).
 */

#ifndef MEDIAWORM_SIM_PDES_HH
#define MEDIAWORM_SIM_PDES_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hh"
#include "sim/time.hh"

namespace mediaworm::sim {

/** Per-shard execution counters from one PdesExecutor::run(). */
struct ShardRunStats
{
    /** Synchronization epochs this shard participated in. */
    std::uint64_t epochs = 0;
    /** Events fired by this shard during the run. */
    std::uint64_t eventsFired = 0;
    /** Largest pending-queue size observed at an epoch boundary. */
    std::uint64_t maxQueueDepth = 0;
    /** Near-tier share of maxQueueDepth's snapshot. */
    std::uint64_t maxNearDepth = 0;
    /** Items this shard's consumed mailboxes delivered to it. */
    std::uint64_t mailboxItems = 0;
    /** Epoch transitions that jumped past at least one fully idle
     *  lookahead window (global next event beyond window_end + 1). */
    std::uint64_t fastForwardEpochs = 0;
    /** Ticks skipped by those jumps; intra-window idle ticks are
     *  counted by each shard's Simulator::idleTicksSkipped(). */
    std::uint64_t fastForwardTicks = 0;
    /** Wall time spent executing local events. */
    double runSeconds = 0.0;
    /** Wall time spent blocked on the epoch barriers (waiting for
     *  slower shards - the conservative-sync overhead). */
    double blockedSeconds = 0.0;
};

/**
 * Runs N shard Simulators to a time cap under conservative
 * lookahead synchronization. The executor does not own the shards
 * or the model; it only drives their queues.
 */
class PdesExecutor
{
  public:
    /**
     * @param shards One Simulator per shard; index is the shard id.
     * @param lookahead Minimum cross-shard event latency W (> 0).
     *        Pass kTickNever when no mailboxes exist: shards are
     *        then independent and run straight to the cap.
     */
    PdesExecutor(std::vector<Simulator*> shards, Tick lookahead);

    /**
     * Registers a mailbox drained by @p consumer_shard. @p flush
     * moves everything its producer appended into the consumer's
     * queue and returns the number of items moved. It is called only
     * from the consumer's worker thread, between epoch barriers.
     */
    void addMailbox(int consumer_shard,
                    std::function<std::uint64_t()> flush);

    /**
     * Runs all shards until their queues drain or the next event
     * would fire after @p cap (events exactly at the cap still
     * fire, matching Simulator::run semantics). Single entry, joins
     * all workers before returning.
     */
    void run(Tick cap);

    /** Per-shard counters from the last run(). */
    const std::vector<ShardRunStats>& stats() const { return stats_; }

  private:
    struct Mailbox
    {
        int consumerShard;
        std::function<std::uint64_t()> flush;
    };

    std::vector<Simulator*> shards_;
    Tick lookahead_;
    std::vector<Mailbox> mailboxes_;
    std::vector<ShardRunStats> stats_;
};

} // namespace mediaworm::sim

#endif // MEDIAWORM_SIM_PDES_HH
