/**
 * @file
 * Analytic admission test: admit a stream only if every admitted
 * stream's worst-case delay bound (including the newcomer's) still
 * meets the SLA.
 *
 * This is the oracle turned into a gatekeeper: where the capacity
 * bookkeeping of traffic::AdmissionController enforces the paper's
 * bandwidth arithmetic, SlaAdmission enforces the end-to-end
 * guarantee itself, re-running computeBounds() over the tentative
 * admitted set. Admission therefore degrades from "the load fits"
 * to "the delay bound holds" - the analytic admission-control
 * strategy the paper's Section 6 calls for.
 */

#ifndef MEDIAWORM_CALCULUS_SLA_ADMISSION_HH
#define MEDIAWORM_CALCULUS_SLA_ADMISSION_HH

#include <vector>

#include "calculus/oracle.hh"
#include "traffic/admission.hh"

namespace mediaworm::calculus {

/** SLA-bound admission test over the oracle. */
class SlaAdmission : public traffic::AnalyticAdmission
{
  public:
    /**
     * @param router  Router configuration.
     * @param traffic Workload AS RUN (scaled), for the envelopes.
     * @param net     Topology.
     * @param sla_us  Required worst-case delay per stream, us.
     * @param oracle  Envelope knobs; enabled is forced on.
     */
    SlaAdmission(const config::RouterConfig& router,
                 const config::TrafficConfig& traffic,
                 const config::NetworkConfig& net, double sla_us,
                 const OracleConfig& oracle = {});

    /** True when the tentative set {admitted + stream} keeps every
     *  bound finite and within the SLA. */
    bool permits(const traffic::Stream& stream) const override;

    void committed(const traffic::Stream& stream) override;

    void released(const traffic::Stream& stream) override;

    /** The committed stream set the test currently guarantees. */
    const std::vector<traffic::Stream>& admitted() const
    {
        return admitted_;
    }

    /** Bounds for the committed set (recomputed on call). */
    BoundsReport report() const;

  private:
    config::RouterConfig router_;
    config::TrafficConfig traffic_;
    config::NetworkConfig net_;
    double slaUs_;
    OracleConfig oracle_;
    std::vector<traffic::Stream> admitted_;
};

} // namespace mediaworm::calculus

#endif // MEDIAWORM_CALCULUS_SLA_ADMISSION_HH
