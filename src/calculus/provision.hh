/**
 * @file
 * Inverse provisioning: choose VC counts and Virtual Clock stamp
 * rates so every admitted stream's analytic delay bound meets an SLA.
 *
 * The oracle (oracle.hh) maps an allocation to per-stream bounds;
 * this module inverts it by searching the two MediaWorm allocation
 * levers the paper studies:
 *
 *  - the VC count (RouterConfig::numVcs) - more lanes mean fewer
 *    streams share a lane FIFO, but each lane's stamp-rate share of
 *    the link shrinks, so neither direction is always better; and
 *  - the per-stream reserved rate (TrafficConfig::reservedRateFactor,
 *    which scales the advertised Vtick) - reserving above the mean
 *    rate turns the stamp-rate service curve into a real guarantee,
 *    at the cost of admission-budget headroom.
 *
 * For each candidate VC count the search scans the feasible
 * reserved-rate factors from least to most aggressive and keeps the
 * smallest factor whose worst-case bound meets the SLA; among VC
 * candidates it returns the allocation with the least reservation
 * (ties broken by the tighter bound). The evaluation plans the mix
 * exactly as runExperiment() would for the given seed, so the
 * returned allocation's bounds apply verbatim to the subsequent
 * simulation.
 */

#ifndef MEDIAWORM_CALCULUS_PROVISION_HH
#define MEDIAWORM_CALCULUS_PROVISION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "calculus/oracle.hh"

namespace mediaworm::calculus {

/** What the provisioner must achieve and where it may search. */
struct ProvisionRequest
{
    /** Required worst-case end-to-end delay per stream, us (in the
     *  same time base as the workload handed in - i.e. scaled). */
    double slaUs = 0.0;

    /** Cap on the summed lane stamp rates as a fraction of link
     *  capacity, keeping headroom for best-effort progress. */
    double maxStampLoad = 0.95;

    /** VC counts to try; empty selects {4, 8, 16, 32, 64}. */
    std::vector<int> vcCandidates;

    /** Grid resolution of the reserved-rate scan per VC count. */
    int rateSteps = 24;

    /** Envelope knobs forwarded to the oracle. */
    OracleConfig oracle;
};

/** The chosen allocation, or infeasibility. */
struct ProvisionResult
{
    bool feasible = false;

    /** Chosen RouterConfig::numVcs. */
    int numVcs = 0;

    /** Chosen TrafficConfig::reservedRateFactor. */
    double reservedRateFactor = 1.0;

    /** Worst per-stream bound under the chosen allocation, us. */
    double worstBoundUs = kUnbounded;

    /** Streams the evaluated plan carries. */
    int rtStreams = 0;

    /** One-line human-readable summary. */
    std::string describe() const;
};

/**
 * Searches for the least allocation meeting @p request.
 *
 * @param router  Base router configuration (numVcs is overridden).
 * @param traffic Workload at full scale, BEFORE time-scale
 *                compression (reservedRateFactor is overridden).
 * @param net     Topology.
 * @param seed    The experiment seed; the mix is planned with the
 *                same derived RNG runExperiment() will use.
 * @param time_scale The experiment's timeScale, applied here the
 *                same way runExperiment() applies it.
 * @param request SLA target and search space.
 */
ProvisionResult provision(const config::RouterConfig& router,
                          const config::TrafficConfig& traffic,
                          const config::NetworkConfig& net,
                          std::uint64_t seed, double time_scale,
                          const ProvisionRequest& request);

} // namespace mediaworm::calculus

#endif // MEDIAWORM_CALCULUS_PROVISION_HH
