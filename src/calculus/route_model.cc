#include "calculus/route_model.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/time.hh"

namespace mediaworm::calculus {

namespace {

/** Cycle time in microseconds. */
double
cycleUs(const config::RouterConfig& router)
{
    return sim::toMicroseconds(router.cycleTime());
}

/** Fixed latency behind a router output port: the header pipeline,
 *  crossbar and output stages plus downstream link propagation. */
double
routerHopLatencyUs(const config::RouterConfig& router)
{
    return static_cast<double>(router.headerPipelineCycles
                               + router.crossbarCycles
                               + router.outputCycles
                               + router.linkDelayCycles)
        * cycleUs(router);
}

/** Identity key for output @p port of switch @p switch_index. */
int
outputKey(int switch_index, int port)
{
    return switch_index * 4096 + port;
}

/** Ring distance between columns/rows @p a and @p b on a wrapped
 *  dimension of size @p k. */
int
ringDistance(int a, int b, int k)
{
    const int fwd = (b - a + k) % k;
    return std::min(fwd, k - fwd);
}

/** True when the policy routes over graph-built tables. */
bool
tableDriven(const config::NetworkConfig& net)
{
    switch (net.topology) {
      case config::TopologyKind::SingleSwitch:
      case config::TopologyKind::FatMesh:
        return false;
      case config::TopologyKind::Mesh:
      case config::TopologyKind::Torus:
      case config::TopologyKind::Clos:
        return true;
    }
    return false;
}

} // namespace

double
linkCapacityFlitsPerUs(const config::RouterConfig& router)
{
    return router.flitsPerSecond() / 1e6;
}

RouteModel::RouteModel(const config::RouterConfig& router,
                       const config::NetworkConfig& net)
    : router_(router), net_(net)
{
    if (!tableDriven(net_))
        return;
    const config::RoutingKind kind = net_.effectiveRouting();
    if (kind == config::RoutingKind::Adaptive) {
        // Adaptive paths depend on run-time load; no static route to
        // analyse. (Hop counts stay closed-form: minimal routing.)
        analyzable_ = false;
        topo_.emplace(network::Topology::build(net_));
        vcClasses_ = network::buildRouting(*topo_, kind).vcClasses;
        return;
    }
    topo_.emplace(network::Topology::build(net_));
    tables_ = network::buildRouting(*topo_, kind);
    vcClasses_ = tables_.vcClasses;
}

int
RouteModel::routerHops(int src, int dst) const
{
    const int eps = net_.endpointsPerSwitch;
    switch (net_.topology) {
      case config::TopologyKind::SingleSwitch:
        return 1;
      case config::TopologyKind::FatMesh:
      case config::TopologyKind::Mesh:
      case config::TopologyKind::Torus: {
        const int ss = src / eps;
        const int ds = dst / eps;
        const int sx = ss % net_.meshWidth;
        const int sy = ss / net_.meshWidth;
        const int dx = ds % net_.meshWidth;
        const int dy = ds / net_.meshWidth;
        if (net_.topology == config::TopologyKind::Torus) {
            return 1 + ringDistance(sx, dx, net_.meshWidth)
                + ringDistance(sy, dy, net_.meshHeight);
        }
        int hops = 1 + std::abs(sx - dx) + std::abs(sy - dy);
        if (tableDriven(net_)
            && net_.effectiveRouting() == config::RoutingKind::UpDown
            && ss != ds) {
            // Tree routes are not minimal; count the walked path.
            hops = static_cast<int>(routeOf(src, dst).size()) - 1;
        }
        return hops;
      }
      case config::TopologyKind::Clos:
        return src / net_.closN == dst / net_.closN ? 1 : 3;
    }
    return 1;
}

Route
RouteModel::routeOf(int src, int dst) const
{
    MW_ASSERT(src != dst);
    if (!tableDriven(net_))
        return legacyRouteOf(src, dst);
    MW_ASSERT(analyzable_);

    const double cap = linkCapacityFlitsPerUs(router_);
    const double hop_latency = routerHopLatencyUs(router_);
    const network::Topology& topo = *topo_;

    Route route;
    route.push_back({-(src + 1), cap, router_.injectionScheduler,
                     static_cast<double>(router_.linkDelayCycles)
                         * cycleUs(router_)});

    int cur = topo.routerOfNode(src);
    const int dest_r = topo.routerOfNode(dst);
    int guard = 0;
    while (cur != dest_r) {
        const router::RouteCandidates& rc =
            tables_.perRouter[static_cast<std::size_t>(cur)]
                             [static_cast<std::size_t>(dst)];
        MW_ASSERT(rc.count >= 1);
        const int chan = topo.outChannelAt(cur, rc.ports[0]);
        MW_ASSERT(chan >= 0);
        const int next =
            topo.channels()[static_cast<std::size_t>(chan)].dstRouter;
        if (rc.count > 1) {
            // Clos up-phase: the least-loaded pick spreads a flow
            // over all m spines - one aggregate server of m x rate,
            // and the same for the symmetric spine->leaf down
            // bundle (keyed by the first spine's down port, shared
            // by every flow into that leaf).
            MW_ASSERT(topo.kind() == config::TopologyKind::Clos);
            const double bundle =
                cap * static_cast<double>(rc.count);
            route.push_back({outputKey(cur, rc.ports[0]), bundle,
                             router_.scheduler, hop_latency});
            route.push_back({outputKey(next, dest_r), bundle,
                             router_.scheduler, hop_latency});
            cur = dest_r;
            break;
        }
        route.push_back({outputKey(cur, rc.ports[0]), cap,
                         router_.scheduler, hop_latency});
        cur = next;
        MW_ASSERT(++guard <= topo.numRouters());
    }

    // Ejection: the destination router's endpoint port.
    route.push_back(
        {outputKey(dest_r,
                   topo.endpoints()[static_cast<std::size_t>(dst)]
                       .port),
         cap, router_.scheduler, hop_latency});
    return route;
}

Route
RouteModel::legacyRouteOf(int src, int dst) const
{
    const config::RouterConfig& router = router_;
    const config::NetworkConfig& net = net_;
    const double cap = linkCapacityFlitsPerUs(router);
    const double hop_latency = routerHopLatencyUs(router);

    Route route;
    // Injection multiplexer: the source end of the injection link.
    route.push_back({-(src + 1), cap, router.injectionScheduler,
                     static_cast<double>(router.linkDelayCycles)
                         * cycleUs(router)});

    if (net.topology == config::TopologyKind::SingleSwitch) {
        // One router; the ejection port is the destination's port.
        route.push_back(
            {outputKey(0, dst), cap, router.scheduler, hop_latency});
        return route;
    }

    // Fat mesh: deterministic XY, X moves first (buildFatMesh()).
    const int eps = net.endpointsPerSwitch;
    const int width = net.meshWidth;
    const int height = net.meshHeight;
    const int fat = net.fatFactor;
    const int dest_switch = dst / eps;
    int cur = src / eps;

    // Port map mirror of Topology::fatMesh(): endpoint ports first,
    // then fat channels per present direction in East/West/South/
    // North order.
    auto dir_base = [&](int s, int dir) {
        const int x = s % width;
        const int y = s / width;
        int next = eps;
        const bool present[4] = {x < width - 1, x > 0, y < height - 1,
                                 y > 0};
        for (int d = 0; d < 4; ++d) {
            if (d == dir) {
                MW_ASSERT(present[d]);
                return next;
            }
            if (present[d])
                next += fat;
        }
        sim::panic("routeOf: direction %d absent at switch %d", dir, s);
    };

    while (cur != dest_switch) {
        const int x = cur % width;
        const int y = cur / width;
        const int dx = dest_switch % width;
        const int dy = dest_switch / width;
        int dir;   // 0=E 1=W 2=S 3=N, as in Network::Direction.
        int step;  // Switch-index delta.
        if (dx != x) {
            dir = dx > x ? 0 : 1;
            step = dx > x ? 1 : -1;
        } else {
            dir = dy > y ? 2 : 3;
            step = dy > y ? width : -width;
        }
        const int base = dir_base(cur, dir);
        if (net.fatLinkPolicy == config::FatLinkPolicy::Static) {
            // The simulator picks port base + dst % fat per header.
            route.push_back({outputKey(cur, base + dst % fat), cap,
                             router.scheduler, hop_latency});
        } else {
            // Least-loaded / random spread over the parallel links:
            // model the fat channel as one server of fat x rate.
            route.push_back({outputKey(cur, base),
                             cap * static_cast<double>(fat),
                             router.scheduler, hop_latency});
        }
        cur += step;
    }

    // Ejection: the destination switch's endpoint port.
    route.push_back({outputKey(cur, dst % eps), cap, router.scheduler,
                     hop_latency});
    return route;
}

Route
routeOf(const config::RouterConfig& router,
        const config::NetworkConfig& net, int src, int dst)
{
    return RouteModel(router, net).routeOf(src, dst);
}

int
routerHops(const config::NetworkConfig& net, int src, int dst)
{
    return RouteModel(config::RouterConfig{}, net)
        .routerHops(src, dst);
}

} // namespace mediaworm::calculus
