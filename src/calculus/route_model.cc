#include "calculus/route_model.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/time.hh"

namespace mediaworm::calculus {

namespace {

/** Cycle time in microseconds. */
double
cycleUs(const config::RouterConfig& router)
{
    return sim::toMicroseconds(router.cycleTime());
}

/** Fixed latency behind a router output port: the header pipeline,
 *  crossbar and output stages plus downstream link propagation. */
double
routerHopLatencyUs(const config::RouterConfig& router)
{
    return static_cast<double>(router.headerPipelineCycles
                               + router.crossbarCycles
                               + router.outputCycles
                               + router.linkDelayCycles)
        * cycleUs(router);
}

/** Identity key for output @p port of switch @p switch_index. */
int
outputKey(int switch_index, int port)
{
    return switch_index * 4096 + port;
}

} // namespace

double
linkCapacityFlitsPerUs(const config::RouterConfig& router)
{
    return router.flitsPerSecond() / 1e6;
}

int
routerHops(const config::NetworkConfig& net, int src, int dst)
{
    if (net.topology == config::TopologyKind::SingleSwitch)
        return 1;
    const int eps = net.endpointsPerSwitch;
    const int ss = src / eps;
    const int ds = dst / eps;
    const int dx = std::abs(ss % net.meshWidth - ds % net.meshWidth);
    const int dy = std::abs(ss / net.meshWidth - ds / net.meshWidth);
    return 1 + dx + dy;
}

Route
routeOf(const config::RouterConfig& router,
        const config::NetworkConfig& net, int src, int dst)
{
    MW_ASSERT(src != dst);
    const double cap = linkCapacityFlitsPerUs(router);
    const double hop_latency = routerHopLatencyUs(router);

    Route route;
    // Injection multiplexer: the source end of the injection link.
    route.push_back({-(src + 1), cap, router.injectionScheduler,
                     static_cast<double>(router.linkDelayCycles)
                         * cycleUs(router)});

    if (net.topology == config::TopologyKind::SingleSwitch) {
        // One router; the ejection port is the destination's port.
        route.push_back(
            {outputKey(0, dst), cap, router.scheduler, hop_latency});
        return route;
    }

    // Fat mesh: deterministic XY, X moves first (buildFatMesh()).
    const int eps = net.endpointsPerSwitch;
    const int width = net.meshWidth;
    const int height = net.meshHeight;
    const int fat = net.fatFactor;
    const int dest_switch = dst / eps;
    int cur = src / eps;

    // Port map mirror of buildFatMesh(): endpoint ports first, then
    // fat channels per present direction in East/West/South/North
    // order.
    auto dir_base = [&](int s, int dir) {
        const int x = s % width;
        const int y = s / width;
        int next = eps;
        const bool present[4] = {x < width - 1, x > 0, y < height - 1,
                                 y > 0};
        for (int d = 0; d < 4; ++d) {
            if (d == dir) {
                MW_ASSERT(present[d]);
                return next;
            }
            if (present[d])
                next += fat;
        }
        sim::panic("routeOf: direction %d absent at switch %d", dir, s);
    };

    while (cur != dest_switch) {
        const int x = cur % width;
        const int y = cur / width;
        const int dx = dest_switch % width;
        const int dy = dest_switch / width;
        int dir;   // 0=E 1=W 2=S 3=N, as in Network::Direction.
        int step;  // Switch-index delta.
        if (dx != x) {
            dir = dx > x ? 0 : 1;
            step = dx > x ? 1 : -1;
        } else {
            dir = dy > y ? 2 : 3;
            step = dy > y ? width : -width;
        }
        const int base = dir_base(cur, dir);
        if (net.fatLinkPolicy == config::FatLinkPolicy::Static) {
            // The simulator picks port base + dst % fat per header.
            route.push_back({outputKey(cur, base + dst % fat), cap,
                             router.scheduler, hop_latency});
        } else {
            // Least-loaded / random spread over the parallel links:
            // model the fat channel as one server of fat x rate.
            route.push_back({outputKey(cur, base),
                             cap * static_cast<double>(fat),
                             router.scheduler, hop_latency});
        }
        cur += step;
    }

    // Ejection: the destination switch's endpoint port.
    route.push_back({outputKey(cur, dst % eps), cap, router.scheduler,
                     hop_latency});
    return route;
}

} // namespace mediaworm::calculus
