#include "calculus/provision.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "calculus/route_model.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/time.hh"
#include "traffic/traffic_mix.hh"

namespace mediaworm::calculus {

namespace {

/** One evaluated allocation. */
struct Candidate
{
    bool meets = false;
    int numVcs = 0;
    double factor = 1.0;
    double worstUs = kUnbounded;
    int streams = 0;
};

/**
 * Plans the mix for @p seed exactly as runExperiment() does (same
 * RNG derivation: the network split is drawn first, then the mix
 * split) and returns the oracle's worst bound.
 */
Candidate
evaluate(config::RouterConfig router, config::TrafficConfig traffic,
         const config::NetworkConfig& net, std::uint64_t seed,
         int num_vcs, double factor, const OracleConfig& oracle)
{
    router.numVcs = num_vcs;
    traffic.reservedRateFactor = factor;

    sim::Rng root(seed);
    sim::Rng net_rng = root.split();
    (void)net_rng;
    sim::Rng mix_rng = root.split();
    const traffic::MixPlan plan = traffic::planMix(
        router, traffic, net.totalNodes(router.numPorts), mix_rng);

    OracleConfig ocfg = oracle;
    ocfg.enabled = true;
    const BoundsReport report =
        computeBounds(router, traffic, net, plan.streams, ocfg);

    Candidate c;
    c.numVcs = num_vcs;
    c.factor = factor;
    c.streams = static_cast<int>(report.streams.size());
    c.worstUs =
        report.allBounded() ? report.maxBoundUs : kUnbounded;
    return c;
}

} // namespace

std::string
ProvisionResult::describe() const
{
    char buf[160];
    if (!feasible) {
        std::snprintf(buf, sizeof(buf),
                      "infeasible: no allocation met the SLA "
                      "(%d streams)", rtStreams);
        return buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "numVcs=%d reservedRateFactor=%.3f "
                  "worstBound=%.1fus (%d streams)",
                  numVcs, reservedRateFactor, worstBoundUs,
                  rtStreams);
    return buf;
}

ProvisionResult
provision(const config::RouterConfig& router,
          const config::TrafficConfig& traffic,
          const config::NetworkConfig& net, std::uint64_t seed,
          double time_scale, const ProvisionRequest& request)
{
    MW_ASSERT(request.slaUs > 0.0);
    MW_ASSERT(time_scale > 0.0 && time_scale <= 1.0);

    // Same workload compression runExperiment() applies.
    config::TrafficConfig scaled = traffic;
    scaled.frameBytesMean *= time_scale;
    scaled.frameBytesStddev *= time_scale;
    scaled.frameInterval = static_cast<sim::Tick>(
        static_cast<double>(scaled.frameInterval) * time_scale);

    std::vector<int> vc_candidates = request.vcCandidates;
    if (vc_candidates.empty())
        vc_candidates = {4, 8, 16, 32, 64};

    const double capacity = linkCapacityFlitsPerUs(router);
    const double base_stamp_rate =
        static_cast<double>(sim::kMicrosecond)
        / static_cast<double>(
              scaled.streamVtick(router.flitSizeBits));

    ProvisionResult result;
    for (const int num_vcs : vc_candidates) {
        if (num_vcs < 2 || num_vcs > 64)
            continue;

        // Stamp-rate feasibility caps the reservation scale: in the
        // worst case every real-time lane of the partition is present
        // at a contention point.
        const traffic::VcPartition partition =
            traffic::partitionVcs(num_vcs, scaled.realTimeFraction);
        if (partition.rtCount < 1)
            continue;
        const double factor_max = std::max(
            1.0, request.maxStampLoad * capacity
                     / (static_cast<double>(partition.rtCount)
                        * base_stamp_rate));

        // Least reservation first; the bound is non-increasing in the
        // factor, so the first hit is this VC count's answer.
        const int steps = std::max(1, request.rateSteps);
        for (int k = 0; k <= steps; ++k) {
            const double factor = 1.0
                + (factor_max - 1.0) * static_cast<double>(k)
                    / static_cast<double>(steps);
            Candidate c = evaluate(router, scaled, net, seed,
                                   num_vcs, factor, request.oracle);
            result.rtStreams = std::max(result.rtStreams, c.streams);
            if (c.worstUs > request.slaUs)
                continue;
            c.meets = true;
            const bool better = !result.feasible
                || c.factor < result.reservedRateFactor
                || (c.factor == result.reservedRateFactor
                    && c.worstUs < result.worstBoundUs);
            if (better) {
                result.feasible = true;
                result.numVcs = c.numVcs;
                result.reservedRateFactor = c.factor;
                result.worstBoundUs = c.worstUs;
            }
            break;
        }
    }
    return result;
}

} // namespace mediaworm::calculus
