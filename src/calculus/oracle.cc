#include "calculus/oracle.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "calculus/route_model.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace mediaworm::calculus {

namespace {

/**
 * Largest GoP frame-size multiplier of the IBBPBB... pattern in
 * traffic/frame_source.cc (the I frame). The pattern is normalised
 * to mean 1.0, and its worst k-frame window never exceeds
 * kGopPeakMultiplier + (k - 1) x mean, so a burst covering one I
 * frame needs no extra sustained-rate margin for the pattern itself.
 */
constexpr double kGopPeakMultiplier = 2.4;

/** True for disciplines whose saturated best-effort stamps give
 *  real-time traffic strict priority. */
bool
strictPriority(config::SchedulerKind kind)
{
    return kind == config::SchedulerKind::VirtualClock
        || kind == config::SchedulerKind::WeightedRoundRobin;
}

/** One analysed flow: a real-time stream or a best-effort
 *  source->destination pair-flow. */
struct Flow
{
    Route route;
    ArrivalCurve source;
    double stampRateFlitsPerUs = 0.0; ///< 1/Vtick; 0 for best-effort.
    int vcLane = -1;
    /** True when vcLane identifies the physical VC FIFO. Multi-class
     *  routing folds lanes (out_vc = class x lanes + lane % lanes),
     *  so distinct lanes may share a FIFO and the lane-exact
     *  stamp-rate argument no longer applies. */
    bool laneExact = true;
    bool rt = false;
    int streamIndex = -1; ///< Into the input stream table; -1 for BE.

    /** cum[h]: delay bound accumulated before hop h (TFA state). */
    std::vector<double> cum;
};

/** A contention point with its member (flow, hop) pairs. */
struct PointData
{
    ContentionPoint info;
    std::vector<std::pair<int, int>> members;
};

/** Flow @p f's envelope after @p cum_delay_us of upstream jitter:
 *  sigma grows by rho x delay (burstiness propagation). */
ArrivalCurve
envelopeAfter(const Flow& f, double cum_delay_us)
{
    if (cum_delay_us >= kUnbounded)
        return {kUnbounded, f.source.rhoFlitsPerUs};
    return {f.source.sigmaFlits
                + f.source.rhoFlitsPerUs * cum_delay_us,
            f.source.rhoFlitsPerUs};
}

/**
 * The two candidate service curves flow @p i can claim at point
 * @p pd, evaluated against the competitors' current TFA state:
 *
 *   [0] blind-multiplexing residual - capacity minus every
 *       competitor's envelope; under strict priority, best-effort
 *       competitors collapse to one non-preemptable blocking flit.
 *   [1] stamp-rate curve (strict-priority points, RT flows only) -
 *       the Virtual Clock lane drains at its stamp rate 1/Vtick
 *       whenever the stamp rates of all lanes at the point fit the
 *       capacity; the lane's FIFO is shared with its other members.
 *       none() when infeasible or not applicable.
 *
 * Both are valid guarantees; callers keep whichever bounds the
 * target's delay tighter.
 */
void
candidateCurves(const std::vector<Flow>& flows, int i,
                const PointData& pd, ServiceCurve out[2])
{
    const ContentionPoint& point = pd.info;
    const Flow& target = flows[i];
    const bool drop_be =
        strictPriority(point.discipline) && target.rt;

    ArrivalCurve blind{0.0, 0.0};
    ArrivalCurve lane_others{0.0, 0.0};
    for (const auto& [j, h] : pd.members) {
        if (j == i)
            continue;
        const Flow& other = flows[j];
        if (drop_be && !other.rt)
            continue;
        const ArrivalCurve env = envelopeAfter(other, other.cum[h]);
        blind = aggregate(blind, env);
        if (drop_be && other.rt && other.vcLane == target.vcLane)
            lane_others = aggregate(lane_others, env);
    }
    if (drop_be)
        blind = aggregate(blind, {1.0, 0.0});

    out[0] = residual(point.capacityFlitsPerUs, blind,
                      point.fixedLatencyUs);
    out[1] = ServiceCurve::none();
    if (!drop_be || !target.laneExact)
        return;

    // Stamp-rate branch: per-lane stamp rates must fit the capacity
    // (checked with each lane's largest member rate, guaranteed with
    // the target lane's smallest - identical in practice, since every
    // planned stream advertises the same Vtick).
    std::map<int, double> lane_rate_max;
    double lane_rate_min = target.stampRateFlitsPerUs;
    for (const auto& [j, h] : pd.members) {
        const Flow& other = flows[j];
        if (!other.rt)
            continue;
        double& rate = lane_rate_max[other.vcLane];
        rate = std::max(rate, other.stampRateFlitsPerUs);
        if (other.vcLane == target.vcLane)
            lane_rate_min =
                std::min(lane_rate_min, other.stampRateFlitsPerUs);
    }
    double stamp_sum = 0.0;
    for (const auto& [lane, rate] : lane_rate_max)
        stamp_sum += rate;
    if (stamp_sum > point.capacityFlitsPerUs)
        return;
    // One blocked flit of another lane or class may be in service.
    out[1] = residual(lane_rate_min, lane_others,
                      point.fixedLatencyUs
                          + 1.0 / point.capacityFlitsPerUs);
}

/** Flow @p i's sojourn bound at hop @p h given its entry delay
 *  @p entry_delay_us: the better candidate's horizontal deviation. */
double
sojournAt(const std::vector<Flow>& flows, int i, int h,
          const PointData& pd, double entry_delay_us)
{
    if (entry_delay_us >= kUnbounded)
        return kUnbounded;
    ServiceCurve cand[2];
    candidateCurves(flows, i, pd, cand);
    const ArrivalCurve entry =
        envelopeAfter(flows[i], entry_delay_us);
    return std::min(delayBoundUs(entry, cand[0]),
                    delayBoundUs(entry, cand[1]));
}

} // namespace

StreamEnvelope
rtStreamEnvelope(const config::RouterConfig& router,
                 const config::TrafficConfig& traffic,
                 const OracleConfig& oracle)
{
    // Header flits carry no payload (frame_source.cc).
    const double flit_bytes = router.flitSizeBits / 8.0;
    const double payload_bytes =
        (traffic.messageFlits - 1) * flit_bytes;
    const double interval_us =
        sim::toMicroseconds(traffic.frameInterval);
    MW_ASSERT(payload_bytes > 0.0 && interval_us > 0.0);

    double worst_bytes = traffic.frameBytesMean;
    double margin = 0.0;
    switch (traffic.realTimeKind) {
      case config::RealTimeKind::Cbr:
        break;
      case config::RealTimeKind::Vbr:
        worst_bytes += oracle.burstSigmas * traffic.frameBytesStddev;
        margin = traffic.frameBytesStddev / traffic.frameBytesMean;
        break;
      case config::RealTimeKind::MpegGop:
        worst_bytes =
            (traffic.frameBytesMean
             + oracle.burstSigmas * traffic.frameBytesStddev)
            * kGopPeakMultiplier;
        margin = traffic.frameBytesStddev / traffic.frameBytesMean;
        break;
    }
    if (oracle.rateMargin >= 0.0)
        margin = oracle.rateMargin;

    const double mean_messages =
        std::ceil(traffic.frameBytesMean / payload_bytes);
    const double max_messages =
        std::max(1.0, std::ceil(worst_bytes / payload_bytes));

    StreamEnvelope env;
    env.maxMessageFlits = traffic.messageFlits;
    env.meanRateFlitsPerUs =
        mean_messages * traffic.messageFlits / interval_us;
    env.curve = {max_messages * traffic.messageFlits,
                 env.meanRateFlitsPerUs * (1.0 + margin)};
    return env;
}

const StreamBound*
BoundsReport::find(sim::StreamId id) const
{
    const auto it = std::lower_bound(
        streams.begin(), streams.end(), id,
        [](const StreamBound& b, sim::StreamId key) {
            return b.stream < key;
        });
    if (it == streams.end() || !(it->stream == id))
        return nullptr;
    return &*it;
}

BoundsReport
computeBounds(const config::RouterConfig& router,
              const config::TrafficConfig& traffic,
              const config::NetworkConfig& net,
              const std::vector<traffic::Stream>& streams,
              const OracleConfig& oracle)
{
    BoundsReport report;
    if (streams.empty())
        return report;

    const int num_nodes = net.totalNodes(router.numPorts);
    const StreamEnvelope envelope =
        rtStreamEnvelope(router, traffic, oracle);
    const RouteModel model(router, net);

    // Adaptive routing has no static path to analyse: report every
    // stream unbounded (hop counts stay exact - minimal routing).
    if (!model.analyzable()) {
        report.streams.reserve(streams.size());
        for (const traffic::Stream& s : streams) {
            StreamBound b;
            b.stream = s.id;
            b.src = s.src;
            b.dst = s.dst;
            b.hops = model.routerHops(s.src.value(), s.dst.value());
            b.sigmaFlits = envelope.curve.sigmaFlits;
            b.rhoFlitsPerUs = envelope.curve.rhoFlitsPerUs;
            b.reservedFlitsPerUs =
                static_cast<double>(sim::kMicrosecond)
                / static_cast<double>(s.vtick);
            b.boundUs = kUnbounded;
            b.bounded = false;
            report.streams.push_back(b);
        }
        std::sort(report.streams.begin(), report.streams.end(),
                  [](const StreamBound& a, const StreamBound& b) {
                      return a.stream < b.stream;
                  });
        report.unboundedStreams =
            static_cast<int>(report.streams.size());
        return report;
    }

    const bool lane_exact = model.vcClasses() == 1;
    std::vector<Flow> flows;
    flows.reserve(streams.size());
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const traffic::Stream& s = streams[i];
        Flow f;
        f.route = model.routeOf(s.src.value(), s.dst.value());
        f.source = envelope.curve;
        f.stampRateFlitsPerUs = static_cast<double>(sim::kMicrosecond)
            / static_cast<double>(s.vtick);
        f.vcLane = s.vcLane;
        f.laneExact = lane_exact;
        f.rt = true;
        f.streamIndex = static_cast<int>(i);
        flows.push_back(std::move(f));
    }

    // Best-effort component: each node injects at be_load x link rate
    // with uniform destinations; model it as (n - 1) pair-flows per
    // node, each carrying the per-destination rate share but the full
    // message burst (the source may aim any burst anywhere).
    const double be_load =
        traffic.inputLoad * (1.0 - traffic.realTimeFraction);
    if (be_load > 0.0 && num_nodes >= 2) {
        const double pair_rate = be_load
            * linkCapacityFlitsPerUs(router)
            / static_cast<double>(num_nodes - 1);
        for (int src = 0; src < num_nodes; ++src) {
            for (int dst = 0; dst < num_nodes; ++dst) {
                if (dst == src)
                    continue;
                Flow f;
                f.route = model.routeOf(src, dst);
                f.source = {
                    static_cast<double>(traffic.beMessageFlits),
                    pair_rate};
                flows.push_back(std::move(f));
            }
        }
    }

    // Contention-point table: who meets whom, where.
    std::map<int, PointData> points;
    std::size_t max_route_len = 0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
        Flow& f = flows[i];
        max_route_len = std::max(max_route_len, f.route.size());
        f.cum.assign(f.route.size() + 1, 0.0);
        for (std::size_t h = 0; h < f.route.size(); ++h) {
            PointData& pd = points[f.route[h].key];
            pd.info = f.route[h];
            pd.members.emplace_back(static_cast<int>(i),
                                    static_cast<int>(h));
        }
    }

    // TFA burstiness propagation. XY routing is feed-forward, so the
    // in-place (Gauss-Seidel) iteration reaches its fixed point
    // within max-route-length sweeps; one extra sweep verifies.
    const int passes = oracle.tfaPasses > 0
        ? oracle.tfaPasses
        : static_cast<int>(max_route_len) + 1;
    for (int pass = 0; pass < passes; ++pass) {
        bool changed = false;
        for (std::size_t i = 0; i < flows.size(); ++i) {
            Flow& f = flows[i];
            double total = 0.0;
            for (std::size_t h = 0; h < f.route.size(); ++h) {
                const PointData& pd = points.at(f.route[h].key);
                total += sojournAt(flows, static_cast<int>(i),
                                   static_cast<int>(h), pd, total);
                if (f.cum[h + 1] != total) {
                    f.cum[h + 1] = total;
                    changed = true;
                }
            }
        }
        if (!changed)
            break;
    }

    // Final per-stream bounds: SFA convolution along the route with
    // the propagated interference state ("pay bursts only once"),
    // never worse than the plain TFA per-hop sum.
    report.streams.reserve(streams.size());
    for (std::size_t i = 0; i < flows.size(); ++i) {
        const Flow& f = flows[i];
        if (!f.rt)
            continue;
        ServiceCurve e2e{kUnbounded, 0.0};
        for (std::size_t h = 0; h < f.route.size(); ++h) {
            const PointData& pd = points.at(f.route[h].key);
            ServiceCurve cand[2];
            candidateCurves(flows, static_cast<int>(i), pd, cand);
            const ArrivalCurve entry = envelopeAfter(f, f.cum[h]);
            const ServiceCurve chosen =
                delayBoundUs(entry, cand[0])
                        <= delayBoundUs(entry, cand[1])
                    ? cand[0]
                    : cand[1];
            e2e = convolve(e2e, chosen);
        }
        const double bound =
            std::min(delayBoundUs(f.source, e2e),
                     f.cum[f.route.size()]);

        const traffic::Stream& s =
            streams[static_cast<std::size_t>(f.streamIndex)];
        StreamBound b;
        b.stream = s.id;
        b.src = s.src;
        b.dst = s.dst;
        b.hops = model.routerHops(s.src.value(), s.dst.value());
        b.sigmaFlits = f.source.sigmaFlits;
        b.rhoFlitsPerUs = f.source.rhoFlitsPerUs;
        b.reservedFlitsPerUs = f.stampRateFlitsPerUs;
        b.boundUs = bound;
        b.bounded = bound < kUnbounded;
        report.streams.push_back(b);
    }

    std::sort(report.streams.begin(), report.streams.end(),
              [](const StreamBound& a, const StreamBound& b) {
                  return a.stream < b.stream;
              });
    for (const StreamBound& b : report.streams) {
        if (b.bounded)
            report.maxBoundUs = std::max(report.maxBoundUs, b.boundUs);
        else
            ++report.unboundedStreams;
    }
    return report;
}

} // namespace mediaworm::calculus
