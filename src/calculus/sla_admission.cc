#include "calculus/sla_admission.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mediaworm::calculus {

SlaAdmission::SlaAdmission(const config::RouterConfig& router,
                           const config::TrafficConfig& traffic,
                           const config::NetworkConfig& net,
                           double sla_us, const OracleConfig& oracle)
    : router_(router), traffic_(traffic), net_(net), slaUs_(sla_us),
      oracle_(oracle)
{
    MW_ASSERT(sla_us > 0.0);
    oracle_.enabled = true;
}

bool
SlaAdmission::permits(const traffic::Stream& stream) const
{
    std::vector<traffic::Stream> tentative = admitted_;
    tentative.push_back(stream);
    const BoundsReport report =
        computeBounds(router_, traffic_, net_, tentative, oracle_);
    return report.allBounded() && report.maxBoundUs <= slaUs_;
}

void
SlaAdmission::committed(const traffic::Stream& stream)
{
    admitted_.push_back(stream);
}

void
SlaAdmission::released(const traffic::Stream& stream)
{
    const auto it = std::find_if(
        admitted_.begin(), admitted_.end(),
        [&](const traffic::Stream& s) { return s.id == stream.id; });
    MW_ASSERT(it != admitted_.end());
    admitted_.erase(it);
}

BoundsReport
SlaAdmission::report() const
{
    return computeBounds(router_, traffic_, net_, admitted_, oracle_);
}

} // namespace mediaworm::calculus
