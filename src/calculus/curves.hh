/**
 * @file
 * Network-calculus primitives: leaky-bucket arrival curves and
 * rate-latency service curves (Cruz; Le Boudec & Thiran; applied to
 * wormhole routing by Farhi & Gaujal).
 *
 * Everything the delay oracle computes reduces to three operations on
 * these two curve families:
 *
 *  - aggregation of arrival curves (sum of leaky buckets is a leaky
 *    bucket: sigma and rho add),
 *  - min-plus convolution of service curves (a tandem of rate-latency
 *    servers is rate-latency: R = min, T = sum), and
 *  - the horizontal-deviation delay bound D <= T + sigma / R, valid
 *    whenever the long-term arrival rate fits the service rate
 *    (rho <= R).
 *
 * Units are flits and microseconds throughout: sigma in flits, rho
 * and R in flits/us, T in us. "No guarantee" (a saturated or
 * oversubscribed server) is represented by rate 0 / infinite latency;
 * delay bounds through such a server are infinity, which the report
 * layer surfaces as bounded = false rather than a number.
 */

#ifndef MEDIAWORM_CALCULUS_CURVES_HH
#define MEDIAWORM_CALCULUS_CURVES_HH

#include <limits>

namespace mediaworm::calculus {

/** Positive infinity, the "no bound exists" value. */
inline constexpr double kUnbounded =
    std::numeric_limits<double>::infinity();

/**
 * Leaky-bucket (token-bucket) arrival envelope
 * alpha(t) = sigma + rho * t: at most sigma flits at once and at most
 * rho flits/us sustained.
 */
struct ArrivalCurve
{
    double sigmaFlits = 0.0;  ///< Burst allowance (flits).
    double rhoFlitsPerUs = 0.0; ///< Sustained rate (flits/us).

    /** Envelope value at @p t_us (t >= 0). */
    double at(double t_us) const
    {
        return sigmaFlits + rhoFlitsPerUs * t_us;
    }
};

/** Aggregates two envelopes: the sum of leaky buckets. */
ArrivalCurve aggregate(const ArrivalCurve& a, const ArrivalCurve& b);

/**
 * Rate-latency service guarantee beta(t) = R * max(0, t - T): after a
 * latency of at most T us the server sustains at least R flits/us.
 */
struct ServiceCurve
{
    double rateFlitsPerUs = 0.0; ///< Guaranteed rate R (flits/us).
    double latencyUs = kUnbounded; ///< Worst-case latency T (us).

    /** True when the curve guarantees any service at all. */
    bool guarantees() const
    {
        return rateFlitsPerUs > 0.0 && latencyUs < kUnbounded;
    }

    /** The no-guarantee curve (rate 0, infinite latency). */
    static ServiceCurve none()
    {
        return {0.0, kUnbounded};
    }
};

/**
 * Min-plus convolution of two rate-latency curves: the end-to-end
 * guarantee of traversing both servers in sequence.
 * R = min(R1, R2), T = T1 + T2.
 */
ServiceCurve convolve(const ServiceCurve& a, const ServiceCurve& b);

/**
 * Residual (leftover) service of a constant-rate server of
 * @p capacity flits/us shared with cross traffic of envelope
 * @p interference, under arbitrary work-conserving multiplexing:
 *
 *   beta(t) = [capacity * t - interference(t)]+
 *           = (C - rho_I) * [t - (sigma_I + base_latency_flits) /
 *                                (C - rho_I)]+
 *
 * @p base_latency_us is a fixed pre-service latency (pipeline stages,
 * link propagation) added to T after the residual is formed.
 * Returns ServiceCurve::none() when the cross traffic saturates the
 * server (rho_I >= C): no finite guarantee exists.
 */
ServiceCurve residual(double capacity_flits_per_us,
                      const ArrivalCurve& interference,
                      double base_latency_us);

/**
 * Worst-case delay (horizontal deviation) of a flow with envelope
 * @p arrival through a server guaranteeing @p service, assuming
 * FIFO order within the flow:
 *
 *   D <= T + sigma / R       when rho <= R,
 *   D = infinity (kUnbounded) otherwise.
 */
double delayBoundUs(const ArrivalCurve& arrival,
                    const ServiceCurve& service);

/**
 * Worst-case backlog (vertical deviation) in flits:
 * B <= sigma + rho * T, infinity when rho > R.
 */
double backlogBoundFlits(const ArrivalCurve& arrival,
                         const ServiceCurve& service);

} // namespace mediaworm::calculus

#endif // MEDIAWORM_CALCULUS_CURVES_HH
