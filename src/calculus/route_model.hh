/**
 * @file
 * Analytic route model: the ordered contention points a stream's
 * flits traverse, mirroring network::Network's wiring exactly.
 *
 * The simulator has two scheduling-point families on a stream's path:
 *
 *  - the NI injection multiplexer (the source end of the injection
 *    link, discipline RouterConfig::injectionScheduler), and
 *  - one output-port multiplexer per traversed router (discipline
 *    RouterConfig::scheduler) - the ejection link's server is the
 *    destination router's output port, and the NI sink drains at link
 *    rate, so ejection adds no further contention point.
 *
 * For the fat mesh the model reproduces buildFatMesh()'s deterministic
 * XY routing (X moves first, then Y) and treats a fat channel under
 * the least-loaded or random policies as one aggregate server of
 * fat x link rate (the policies spread a stream's messages across the
 * parallel links); under the static policy each parallel link is its
 * own single-rate server keyed by destination hash, matching the
 * simulator's port choice.
 *
 * Each contention point carries a stable identity key so the oracle
 * can intersect routes: two streams interfere at a point iff their
 * routes contain the same key.
 */

#ifndef MEDIAWORM_CALCULUS_ROUTE_MODEL_HH
#define MEDIAWORM_CALCULUS_ROUTE_MODEL_HH

#include <optional>
#include <vector>

#include "config/network_config.hh"
#include "config/router_config.hh"
#include "network/routing.hh"
#include "network/topology.hh"

namespace mediaworm::calculus {

/** One multiplexing point on a stream's path. */
struct ContentionPoint
{
    /**
     * Stable identity for interference matching. Injection points
     * use -(node + 1); router output points use
     * switchIndex * 4096 + outputPortKey, where outputPortKey is the
     * concrete port (endpoint and static-policy fat links) or the fat
     * channel's first port (aggregated fat channels).
     */
    int key = 0;

    /** Server capacity in flits/us (fat x link rate for aggregated
     *  fat channels). */
    double capacityFlitsPerUs = 0.0;

    /** Scheduling discipline arbitrating the point. */
    config::SchedulerKind discipline =
        config::SchedulerKind::VirtualClock;

    /** Fixed pipeline + propagation latency behind the point, us. */
    double fixedLatencyUs = 0.0;
};

/** A stream's path as an ordered list of contention points. */
using Route = std::vector<ContentionPoint>;

/**
 * Precomputed route model for one (router, network) configuration.
 *
 * The single switch and the fat mesh keep their closed-form paths;
 * mesh/torus/Clos build the topology graph and the deterministic
 * routing tables once (network/routing.hh) and walk them per
 * stream, so the model analyses exactly the paths the simulator
 * routes. Multi-candidate hops (the Clos up-phase under up-down
 * routing) become one aggregate server of count x link rate, with
 * the symmetric spine->leaf down-phase bundled the same way -
 * every flow into a leaf shares the bundle's key, so interference
 * matching stays exact at bundle granularity.
 *
 * Adaptive routing has no static path: analyzable() returns false
 * and the oracle reports every stream unbounded instead of walking.
 */
class RouteModel
{
  public:
    RouteModel(const config::RouterConfig& router,
               const config::NetworkConfig& net);

    /** False when the routing policy has no static path (adaptive). */
    bool analyzable() const { return analyzable_; }

    /** VC classes of the active policy (RouterConfig::vcClasses). */
    int vcClasses() const { return vcClasses_; }

    /** The (src, dst) stream's ordered contention points. Requires
     *  analyzable(). */
    Route routeOf(int src, int dst) const;

    /** Routers on the (src, dst) path: 1 for the single switch,
     *  1 + switch distance otherwise. Valid for every policy. */
    int routerHops(int src, int dst) const;

  private:
    Route legacyRouteOf(int src, int dst) const;

    config::RouterConfig router_;
    config::NetworkConfig net_;
    bool analyzable_ = true;
    int vcClasses_ = 1;
    /** Graph + tables, built for mesh/torus/Clos only. */
    std::optional<network::Topology> topo_;
    network::RoutingTables tables_;
};

/**
 * Builds the route of a (src, dst) stream through the configured
 * topology. Convenience wrapper over a throwaway RouteModel; batch
 * callers (the oracle) construct the model once instead.
 */
Route routeOf(const config::RouterConfig& router,
              const config::NetworkConfig& net, int src, int dst);

/** Link capacity in flits/us for @p router. */
double linkCapacityFlitsPerUs(const config::RouterConfig& router);

/**
 * Router hops on the (src, dst) path. Convenience wrapper, as
 * routeOf(). Used for the multi-hop backpressure slack term.
 */
int routerHops(const config::NetworkConfig& net, int src, int dst);

} // namespace mediaworm::calculus

#endif // MEDIAWORM_CALCULUS_ROUTE_MODEL_HH
