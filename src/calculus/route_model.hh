/**
 * @file
 * Analytic route model: the ordered contention points a stream's
 * flits traverse, mirroring network::Network's wiring exactly.
 *
 * The simulator has two scheduling-point families on a stream's path:
 *
 *  - the NI injection multiplexer (the source end of the injection
 *    link, discipline RouterConfig::injectionScheduler), and
 *  - one output-port multiplexer per traversed router (discipline
 *    RouterConfig::scheduler) - the ejection link's server is the
 *    destination router's output port, and the NI sink drains at link
 *    rate, so ejection adds no further contention point.
 *
 * For the fat mesh the model reproduces buildFatMesh()'s deterministic
 * XY routing (X moves first, then Y) and treats a fat channel under
 * the least-loaded or random policies as one aggregate server of
 * fat x link rate (the policies spread a stream's messages across the
 * parallel links); under the static policy each parallel link is its
 * own single-rate server keyed by destination hash, matching the
 * simulator's port choice.
 *
 * Each contention point carries a stable identity key so the oracle
 * can intersect routes: two streams interfere at a point iff their
 * routes contain the same key.
 */

#ifndef MEDIAWORM_CALCULUS_ROUTE_MODEL_HH
#define MEDIAWORM_CALCULUS_ROUTE_MODEL_HH

#include <vector>

#include "config/network_config.hh"
#include "config/router_config.hh"

namespace mediaworm::calculus {

/** One multiplexing point on a stream's path. */
struct ContentionPoint
{
    /**
     * Stable identity for interference matching. Injection points
     * use -(node + 1); router output points use
     * switchIndex * 4096 + outputPortKey, where outputPortKey is the
     * concrete port (endpoint and static-policy fat links) or the fat
     * channel's first port (aggregated fat channels).
     */
    int key = 0;

    /** Server capacity in flits/us (fat x link rate for aggregated
     *  fat channels). */
    double capacityFlitsPerUs = 0.0;

    /** Scheduling discipline arbitrating the point. */
    config::SchedulerKind discipline =
        config::SchedulerKind::VirtualClock;

    /** Fixed pipeline + propagation latency behind the point, us. */
    double fixedLatencyUs = 0.0;
};

/** A stream's path as an ordered list of contention points. */
using Route = std::vector<ContentionPoint>;

/**
 * Builds the route of a (src, dst) stream through the configured
 * topology. @p net must have been validated against @p router.
 */
Route routeOf(const config::RouterConfig& router,
              const config::NetworkConfig& net, int src, int dst);

/** Link capacity in flits/us for @p router. */
double linkCapacityFlitsPerUs(const config::RouterConfig& router);

/**
 * Router hops on the (src, dst) path: 1 for the single switch,
 * 1 + Manhattan switch distance for the fat mesh. Used for the
 * multi-hop backpressure slack term.
 */
int routerHops(const config::NetworkConfig& net, int src, int dst);

} // namespace mediaworm::calculus

#endif // MEDIAWORM_CALCULUS_ROUTE_MODEL_HH
