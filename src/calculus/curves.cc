#include "calculus/curves.hh"

#include <algorithm>

namespace mediaworm::calculus {

ArrivalCurve
aggregate(const ArrivalCurve& a, const ArrivalCurve& b)
{
    return {a.sigmaFlits + b.sigmaFlits,
            a.rhoFlitsPerUs + b.rhoFlitsPerUs};
}

ServiceCurve
convolve(const ServiceCurve& a, const ServiceCurve& b)
{
    if (!a.guarantees() || !b.guarantees())
        return ServiceCurve::none();
    return {std::min(a.rateFlitsPerUs, b.rateFlitsPerUs),
            a.latencyUs + b.latencyUs};
}

ServiceCurve
residual(double capacity_flits_per_us,
         const ArrivalCurve& interference, double base_latency_us)
{
    const double rate =
        capacity_flits_per_us - interference.rhoFlitsPerUs;
    if (rate <= 0.0)
        return ServiceCurve::none();
    return {rate, interference.sigmaFlits / rate + base_latency_us};
}

double
delayBoundUs(const ArrivalCurve& arrival, const ServiceCurve& service)
{
    if (!service.guarantees()
        || arrival.rhoFlitsPerUs > service.rateFlitsPerUs)
        return kUnbounded;
    return service.latencyUs
        + arrival.sigmaFlits / service.rateFlitsPerUs;
}

double
backlogBoundFlits(const ArrivalCurve& arrival,
                  const ServiceCurve& service)
{
    if (!service.guarantees()
        || arrival.rhoFlitsPerUs > service.rateFlitsPerUs)
        return kUnbounded;
    return arrival.sigmaFlits
        + arrival.rhoFlitsPerUs * service.latencyUs;
}

} // namespace mediaworm::calculus
