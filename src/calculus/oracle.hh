/**
 * @file
 * The delay-bound oracle: per-stream worst-case end-to-end delay
 * bounds for a planned traffic mix, computed purely from the
 * configuration and the stream table (no simulation, no randomness).
 *
 * Model
 * -----
 * Every flow gets a leaky-bucket contract envelope at its source
 * (rtStreamEnvelope() below; best-effort nodes get one (sigma, rho)
 * pair-flow per destination). Every multiplexing point on a route
 * (route_model.hh) is a constant-rate server shared under the
 * configured discipline. The oracle runs two standard analyses:
 *
 *  - Total Flow Analysis (TFA) burstiness propagation: per-flow
 *    per-hop sojourn bounds are iterated in Jacobi passes so that a
 *    flow's envelope at hop k is inflated by rho x (delay bound over
 *    hops < k). Feed-forward XY routing makes this converge within
 *    max-route-length passes.
 *  - Separated Flow Analysis (SFA): with the propagated interference
 *    envelopes, each hop yields a rate-latency service curve for the
 *    target stream; the curves convolve along the route ("pay bursts
 *    only once") and the horizontal deviation against the source
 *    envelope is the end-to-end bound. The reported bound is
 *    min(SFA, sum of per-hop TFA sojourns) - both are valid.
 *
 * Per hop the oracle takes the better of two valid service curves:
 *
 *  - the blind-multiplexing residual (capacity minus all competing
 *    envelopes), valid for ANY work-conserving discipline; under
 *    Virtual Clock / WRR the saturated best-effort stamps give
 *    real-time strict priority, so best-effort cross traffic shrinks
 *    to a single non-preemptable blocking flit; and
 *  - the stamp-rate curve (Virtual Clock / WRR only): the per-lane
 *    Virtual Clock stamps advance by Vtick per flit, so when the
 *    stamp rates of the lanes present at the point fit the capacity,
 *    each lane is served at its stamp rate 1/Vtick and the lane's
 *    FIFO members share that rate-latency guarantee. This is the
 *    branch provisioning (provision.hh) strengthens by scaling
 *    Vtick with TrafficConfig::reservedRateFactor.
 *
 * Where the bound is conservative (and why that is safe) is
 * documented in DESIGN.md section 11. The one non-conservatism to be
 * aware of: VBR/GoP frame sizes are unbounded Normal draws, so the
 * envelope truncates at burstSigmas standard deviations - it is a
 * statistical contract, not an absolute one. A stream violating its
 * contract (a > 4 sigma frame) may exceed the bound; everything else
 * in the analysis is worst-case.
 *
 * A saturated point (competing rate >= capacity) yields an infinite
 * bound, reported as bounded = false: "no guarantee exists", the
 * analytic face of the paper's missed-deadline region.
 */

#ifndef MEDIAWORM_CALCULUS_ORACLE_HH
#define MEDIAWORM_CALCULUS_ORACLE_HH

#include <vector>

#include "calculus/curves.hh"
#include "config/network_config.hh"
#include "config/router_config.hh"
#include "config/traffic_config.hh"
#include "sim/ids.hh"
#include "traffic/stream.hh"

namespace mediaworm::calculus {

/** Envelope-construction and analysis knobs. */
struct OracleConfig
{
    /** Master switch: when false, runExperiment() skips the oracle. */
    bool enabled = false;

    /**
     * Where the VBR/GoP frame-size envelope truncates the Normal
     * distribution, in standard deviations. The per-frame burst is
     * sized for mean + burstSigmas x stddev bytes.
     */
    double burstSigmas = 4.0;

    /**
     * Headroom on the sustained envelope rate over the mean rate,
     * as a fraction. Negative (the default) selects automatically:
     * 0 for CBR, stddev/mean for VBR and GoP (the GoP pattern itself
     * needs no extra margin once the burst covers an I frame).
     */
    double rateMargin = -1.0;

    /**
     * Jacobi passes for TFA burstiness propagation; 0 (default)
     * derives max route length + 1, enough for feed-forward routes.
     */
    int tfaPasses = 0;
};

/** Source envelope and message geometry shared by every RT stream. */
struct StreamEnvelope
{
    ArrivalCurve curve;            ///< Contract (sigma, rho).
    double maxMessageFlits = 0.0;  ///< Largest single message.
    double meanRateFlitsPerUs = 0.0; ///< Mean (un-margined) rate.
};

/**
 * Builds the contract envelope of one real-time stream of
 * @p traffic: sigma covers the largest contract frame (all its
 * messages back to back, header overhead included), rho the mean
 * rate plus the configured margin.
 */
StreamEnvelope rtStreamEnvelope(const config::RouterConfig& router,
                                const config::TrafficConfig& traffic,
                                const OracleConfig& oracle);

/** Analytic verdict for one admitted real-time stream. */
struct StreamBound
{
    sim::StreamId stream;
    sim::NodeId src;
    sim::NodeId dst;
    int hops = 1;            ///< Routers traversed.
    double sigmaFlits = 0.0; ///< Source envelope burst.
    double rhoFlitsPerUs = 0.0; ///< Source envelope rate.
    double reservedFlitsPerUs = 0.0; ///< Stamp rate 1/Vtick.
    double boundUs = kUnbounded; ///< Worst-case e2e message delay.
    bool bounded = false;    ///< False when boundUs is infinite.
};

/** Bounds for every real-time stream of one experiment point. */
struct BoundsReport
{
    std::vector<StreamBound> streams; ///< Sorted by stream id.
    int unboundedStreams = 0;  ///< Streams with no finite bound.
    double maxBoundUs = 0.0;   ///< Largest finite bound, 0 if none.

    /** True when every stream has a finite bound. */
    bool allBounded() const { return unboundedStreams == 0; }

    /** Bound for @p id, nullptr when absent. */
    const StreamBound* find(sim::StreamId id) const;
};

/**
 * Computes per-stream worst-case delay bounds for the planned
 * workload.
 *
 * @param router  Router configuration (the experiment's, unscaled).
 * @param traffic Workload configuration AS RUN - i.e. after any
 *                timeScale compression runExperiment() applies.
 * @param net     Topology.
 * @param streams The planned real-time streams (MixPlan::streams).
 * @param oracle  Envelope and analysis knobs.
 */
BoundsReport computeBounds(const config::RouterConfig& router,
                           const config::TrafficConfig& traffic,
                           const config::NetworkConfig& net,
                           const std::vector<traffic::Stream>& streams,
                           const OracleConfig& oracle = {});

} // namespace mediaworm::calculus

#endif // MEDIAWORM_CALCULUS_ORACLE_HH
