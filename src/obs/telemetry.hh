/**
 * @file
 * Per-stream sliding-window QoS telemetry.
 *
 * The paper's argument is about per-stream behaviour: Virtual Clock
 * keeps every stream's frame-delivery interval pinned at 33 ms while
 * FIFO lets individual streams jitter (Section 5). The end-of-run
 * aggregates in MetricsHub cannot see a scheduler starving one stream
 * while the mean stays flat, so this collector keeps one state record
 * per stream and closes a sample window every `window` ticks:
 * bandwidth (delivered flits), frame count, and the delivery-interval
 * statistics d / sigma_d within the window. Window closing is lazy -
 * driven entirely by delivery observations, never by scheduled
 * events - so an attached collector observes the simulation without
 * perturbing it (same event count, same RNG draws, same
 * deterministicHash).
 *
 * A parallel cumulative accumulator per stream (restricted to
 * deliveries at or after `measureFrom`, the steady-state boundary)
 * feeds worst-stream selection: the stream with the largest overall
 * sigma_d, the quantity a QoS regression moves first.
 */

#ifndef MEDIAWORM_OBS_TELEMETRY_HH
#define MEDIAWORM_OBS_TELEMETRY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/ids.hh"
#include "sim/time.hh"
#include "stats/accumulator.hh"
#include "stats/rate_monitor.hh"

namespace mediaworm::obs {

/** Collector knobs, carried inside core::ExperimentConfig. */
struct TelemetryConfig
{
    /** Master switch; disabled collectors are never constructed and
     *  the MetricsHub hooks stay null-pointer no-ops. */
    bool enabled = false;

    /** Sample window width; 0 lets runExperiment() default it to
     *  four (scaled) frame intervals. */
    sim::Tick window = 0;

    /** Deliveries before this tick are excluded from the per-stream
     *  overall (steady-state) aggregates; the time series keeps
     *  them, so the warmup transient stays visible. */
    sim::Tick measureFrom = 0;

    /** Flit payload size, for bandwidth conversion. */
    int flitSizeBits = 32;
};

/** One closed window of one stream's activity. */
struct TelemetrySample
{
    sim::Tick windowStart = 0;
    sim::Tick windowEnd = 0;
    std::uint64_t frames = 0;      ///< Frame deliveries in the window.
    std::uint64_t flits = 0;       ///< Flit deliveries in the window.
    double meanIntervalMs = 0.0;   ///< d over in-window intervals.
    double stddevIntervalMs = 0.0; ///< sigma_d over in-window intervals.
    std::uint64_t intervalCount = 0;
    double mbps = 0.0;             ///< Delivered bandwidth.
};

/** One stream's full time series plus overall aggregates. */
struct StreamSeries
{
    sim::StreamId stream;
    /** Windows in which the stream was active, oldest first. Idle
     *  windows produce no sample (the gaps are visible through
     *  windowStart). */
    std::vector<TelemetrySample> samples;

    // Overall steady-state aggregates (deliveries >= measureFrom).
    std::uint64_t frames = 0;        ///< Total frames (whole run).
    std::uint64_t intervalCount = 0; ///< Measured intervals.
    double meanIntervalMs = 0.0;     ///< Overall d.
    double stddevIntervalMs = 0.0;   ///< Overall sigma_d.

    // Whole-run message-delay extrema (not gated on measureFrom:
    // the analytic bound must hold for warmup messages too).
    std::uint64_t messages = 0;          ///< Messages delivered.
    double worstMessageDelayUs = 0.0;    ///< Max host-to-sink delay.
};

/** Everything the collector measured, ready for serialisation. */
struct TelemetryReport
{
    sim::Tick window = 0;
    /** Time-scale compression of the run; divide the (scaled) ms
     *  values by this to land on the paper's 33 ms axis. */
    double timeScale = 1.0;
    /** Flit payload size the bandwidth samples were computed with
     *  (kept so merged reports can recompute them). */
    int flitSizeBits = 32;
    /** Per-stream series, sorted by stream id (deterministic). */
    std::vector<StreamSeries> streams;
    /** Stream with the largest overall sigma_d among streams with
     *  >= 2 measured intervals; invalid if no stream qualifies. */
    sim::StreamId worstStream;
    double worstStddevMs = 0.0;

    /** Series for @p stream; nullptr if it never appeared. */
    const StreamSeries* find(sim::StreamId stream) const;
};

/**
 * The collector. Hook it into a MetricsHub (attachTelemetry) and call
 * finish() after the run drains to obtain the report.
 */
class StreamTelemetry
{
  public:
    /** @param cfg Validated config; cfg.window must be > 0 here. */
    explicit StreamTelemetry(const TelemetryConfig& cfg);

    /** Observes delivery of a complete frame of @p stream. */
    void recordFrameDelivery(sim::StreamId stream, sim::Tick now);

    /** Observes delivery of one flit of @p stream. */
    void recordFlit(sim::StreamId stream, sim::Tick now);

    /**
     * Observes a completed message of @p stream with host-to-sink
     * delay @p delay_us. Feeds only the whole-run per-stream worst
     * delay (the quantity the calculus oracle bounds); windows are
     * untouched, and the companion recordFlit() call at the same
     * timestamp has already rolled them.
     */
    void recordMessageDelay(sim::StreamId stream, double delay_us);

    /** Closes the final partial window and builds the report.
     *  @param end The simulation end time (>= every observation). */
    TelemetryReport finish(sim::Tick end);

    /** Observations accepted so far (frames + flits). */
    std::uint64_t observations() const { return observations_; }

    /**
     * Merges per-shard reports (one collector per shard, identical
     * configs) into the report a single whole-network collector would
     * have produced. Windows are absolute-aligned in every collector,
     * so same-window samples of the same stream combine exactly:
     * frame/flit counts add, bandwidth is recomputed from the summed
     * flits, and interval statistics come from the one collector that
     * observed them (a real-time stream sinks at exactly one node,
     * hence one shard). The worst stream is re-selected over the
     * merged series.
     */
    static TelemetryReport merge(std::vector<TelemetryReport> parts);

  private:
    struct StreamState
    {
        // Current-window accumulators.
        stats::RateMonitor flitRate;
        stats::Accumulator windowIntervals;
        std::uint64_t windowFrames = 0;
        // Cross-window state.
        sim::Tick lastDelivery = sim::kTickNever;
        // Whole-run aggregates.
        stats::Accumulator overallIntervals; ///< >= measureFrom only.
        std::uint64_t totalFrames = 0;
        std::uint64_t totalMessages = 0;
        double worstMessageDelayUs = 0.0;
        std::vector<TelemetrySample> samples;
    };

    /** Closes every window that ends at or before @p now. */
    void rollWindows(sim::Tick now);
    void closeWindow();
    StreamState& stateFor(sim::StreamId stream);

    TelemetryConfig cfg_;
    sim::Tick windowStart_ = 0;
    std::unordered_map<sim::StreamId, StreamState> streams_;
    /** Streams with activity in the open window (avoids a full map
     *  scan per roll). */
    std::vector<sim::StreamId> activeInWindow_;
    std::uint64_t observations_ = 0;
};

} // namespace mediaworm::obs

#endif // MEDIAWORM_OBS_TELEMETRY_HH
