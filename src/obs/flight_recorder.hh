/**
 * @file
 * Crash-time flight recorder.
 *
 * A fixed-size ring buffer of the most recent simulation events
 * (flit lifecycle points and credit returns, each with time, router /
 * port / VC and flit identity) that is always cheap enough to leave
 * armed on debugging runs: recording is the same ring-buffer append
 * the Tracer performs, and a disarmed recorder costs the usual null
 * tracer-pointer check on the hot paths.
 *
 * arm() installs a sim::setCrashHook() handler, so the moment
 * checkInvariants() trips an assertion, a panic() fires, or a
 * configuration fatal() aborts the run, the recorder dumps its trail
 * to stderr - the last N things the simulator did, ending at the
 * failure - before the process terminates. That turns "assertion
 * failed at wormhole_router.cc:614" into an actionable trace of which
 * flits moved through which ports right before the state went bad.
 */

#ifndef MEDIAWORM_OBS_FLIGHT_RECORDER_HH
#define MEDIAWORM_OBS_FLIGHT_RECORDER_HH

#include <cstddef>
#include <memory>
#include <string>

#include "sim/tracer.hh"

namespace mediaworm::obs {

/** Ring buffer of recent sim events with a crash-dump hook. */
class FlightRecorder
{
  public:
    /** A crash dump renders at most this many trailing events. */
    static constexpr std::size_t kDumpTail = 256;

    /** @param capacity Events retained (oldest evicted first). */
    explicit FlightRecorder(std::size_t capacity = 512);

    /**
     * Records into @p ring instead of an owned buffer, so one trace
     * ring can feed both the Chrome-trace export and the crash dump.
     * @p ring must outlive the recorder.
     */
    explicit FlightRecorder(sim::Tracer& ring);

    /** Disarms (uninstalls the crash hook) if still armed. */
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /**
     * The event sink. Attach it to the components to observe
     * (Network::attachTracer wires every router and NI).
     */
    sim::Tracer& tracer() { return *ring_; }
    const sim::Tracer& tracer() const { return *ring_; }

    /**
     * Installs this recorder as the process crash hook: fatal() and
     * panic() dump the trail before terminating. Only one recorder
     * can be armed at a time; arming replaces the previous hook.
     */
    void arm();

    /** Uninstalls the crash hook if this recorder holds it. */
    void disarm();

    /** True while this recorder is the installed crash hook. */
    bool armed() const { return armed_; }

    /** Events currently retained. */
    std::size_t size() const { return ring_->size(); }

    /** Events ever recorded, including evicted ones. */
    std::uint64_t totalRecorded() const
    {
        return ring_->totalRecorded();
    }

    /**
     * The human-readable trail: a header plus one line per event,
     * oldest first (the same rendering a crash prints). Capped at the
     * newest kDumpTail events so a crash stays readable even when the
     * recorder shares a large trace ring.
     */
    std::string dump() const;

  private:
    static void crashDump(void* context);

    std::unique_ptr<sim::Tracer> own_;
    sim::Tracer* ring_;
    bool armed_ = false;
};

} // namespace mediaworm::obs

#endif // MEDIAWORM_OBS_FLIGHT_RECORDER_HH
