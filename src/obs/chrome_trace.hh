/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto JSON) export of flit
 * lifecycle traces.
 *
 * Converts a sim::Tracer ring into the Trace Event Format: one
 * complete ("X") event per flit lifetime (host-inject to eject, on a
 * per-stream track) and per router residency (router-arrive to
 * router-depart, on a per-router track), plus counter ("C") events
 * tracking per-input-port occupancy. Load the file at
 * chrome://tracing or https://ui.perfetto.dev to scrub through a
 * small run visually - which stream hogged which port, where a flit
 * sat blocked, how occupancy built up ahead of a jitter excursion.
 *
 * Intended for small runs: the JSON is a few hundred bytes per
 * traced flit hop, so trace a filtered stream or a short horizon.
 */

#ifndef MEDIAWORM_OBS_CHROME_TRACE_HH
#define MEDIAWORM_OBS_CHROME_TRACE_HH

#include <string>

#include "sim/tracer.hh"

namespace mediaworm::obs {

/** Schema tag recorded in the document's otherData member. */
inline constexpr const char* kChromeTraceSchema =
    "mediaworm-chrome-trace-v1";

/**
 * Renders @p tracer's retained records as Chrome trace JSON.
 *
 * Deterministic: the output is a pure function of the record
 * sequence (fixed key order, fixed number formatting).
 */
std::string toChromeTraceJson(const sim::Tracer& tracer);

/**
 * toChromeTraceJson() + write to @p path.
 * @return False (with a warn) if the file cannot be written.
 */
bool writeChromeTrace(const std::string& path,
                      const sim::Tracer& tracer);

} // namespace mediaworm::obs

#endif // MEDIAWORM_OBS_CHROME_TRACE_HH
