#include "obs/telemetry.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mediaworm::obs {

namespace {

constexpr double kMs = static_cast<double>(sim::kMillisecond);

} // namespace

const StreamSeries*
TelemetryReport::find(sim::StreamId stream) const
{
    for (const StreamSeries& series : streams) {
        if (series.stream == stream)
            return &series;
    }
    return nullptr;
}

StreamTelemetry::StreamTelemetry(const TelemetryConfig& cfg)
    : cfg_(cfg)
{
    MW_ASSERT(cfg.window > 0);
}

StreamTelemetry::StreamState&
StreamTelemetry::stateFor(sim::StreamId stream)
{
    StreamState& state = streams_[stream];
    // First touch this window: both counters are still zero (they are
    // incremented by the caller after this returns, and only reset
    // when the window closes), so this pushes exactly once per stream
    // per window.
    if (state.flitRate.count() == 0 && state.windowFrames == 0)
        activeInWindow_.push_back(stream);
    return state;
}

void
StreamTelemetry::rollWindows(sim::Tick now)
{
    while (now >= windowStart_ + cfg_.window)
        closeWindow();
}

void
StreamTelemetry::closeWindow()
{
    const sim::Tick end = windowStart_ + cfg_.window;
    // Sort so the samples land in deterministic order regardless of
    // the observation interleaving that first touched each stream.
    std::sort(activeInWindow_.begin(), activeInWindow_.end());
    for (sim::StreamId id : activeInWindow_) {
        StreamState& state = streams_[id];
        const std::uint64_t flits = state.flitRate.count();
        if (flits == 0 && state.windowFrames == 0)
            continue;
        TelemetrySample sample;
        sample.windowStart = windowStart_;
        sample.windowEnd = end;
        sample.frames = state.windowFrames;
        sample.flits = flits;
        sample.intervalCount = state.windowIntervals.count();
        sample.meanIntervalMs = state.windowIntervals.mean() / kMs;
        sample.stddevIntervalMs = state.windowIntervals.stddev() / kMs;
        // bits / window-seconds / 1e6 = Mbps; invariant under time
        // scaling (bytes and time shrink together).
        sample.mbps = static_cast<double>(flits)
            * static_cast<double>(cfg_.flitSizeBits)
            / sim::toSeconds(cfg_.window) / 1e6;
        state.samples.push_back(sample);
        state.flitRate.reset(end);
        state.windowIntervals.reset();
        state.windowFrames = 0;
    }
    activeInWindow_.clear();
    windowStart_ = end;
}

void
StreamTelemetry::recordFrameDelivery(sim::StreamId stream,
                                     sim::Tick now)
{
    rollWindows(now);
    StreamState& state = stateFor(stream);
    ++state.windowFrames;
    ++state.totalFrames;
    if (state.lastDelivery != sim::kTickNever) {
        const double interval =
            static_cast<double>(now - state.lastDelivery);
        state.windowIntervals.add(interval);
        if (now >= cfg_.measureFrom)
            state.overallIntervals.add(interval);
    }
    state.lastDelivery = now;
    ++observations_;
}

void
StreamTelemetry::recordFlit(sim::StreamId stream, sim::Tick now)
{
    rollWindows(now);
    stateFor(stream).flitRate.add();
    ++observations_;
}

void
StreamTelemetry::recordMessageDelay(sim::StreamId stream,
                                    double delay_us)
{
    // Direct map access, not stateFor(): this touches no window
    // counter, so it must not mark the stream window-active.
    StreamState& state = streams_[stream];
    ++state.totalMessages;
    state.worstMessageDelayUs =
        std::max(state.worstMessageDelayUs, delay_us);
    ++observations_;
}

TelemetryReport
StreamTelemetry::finish(sim::Tick end)
{
    // Flush whatever the final (partial or idle) windows hold.
    rollWindows(end);
    if (!activeInWindow_.empty())
        closeWindow();

    TelemetryReport report;
    report.window = cfg_.window;

    std::vector<sim::StreamId> ids;
    ids.reserve(streams_.size());
    for (const auto& [id, state] : streams_) {
        (void)state;
        ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());

    report.streams.reserve(ids.size());
    for (sim::StreamId id : ids) {
        StreamState& state = streams_[id];
        StreamSeries series;
        series.stream = id;
        series.samples = std::move(state.samples);
        series.frames = state.totalFrames;
        series.intervalCount = state.overallIntervals.count();
        series.meanIntervalMs = state.overallIntervals.mean() / kMs;
        series.stddevIntervalMs =
            state.overallIntervals.stddev() / kMs;
        series.messages = state.totalMessages;
        series.worstMessageDelayUs = state.worstMessageDelayUs;
        // Worst stream: largest steady-state sigma_d with enough
        // intervals for a meaningful spread; ids ascend, so ties
        // resolve to the lowest id deterministically.
        if (series.intervalCount >= 2
            && series.stddevIntervalMs > report.worstStddevMs) {
            report.worstStream = id;
            report.worstStddevMs = series.stddevIntervalMs;
        }
        report.streams.push_back(std::move(series));
    }
    return report;
}

} // namespace mediaworm::obs
