#include "obs/telemetry.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mediaworm::obs {

namespace {

constexpr double kMs = static_cast<double>(sim::kMillisecond);

} // namespace

const StreamSeries*
TelemetryReport::find(sim::StreamId stream) const
{
    for (const StreamSeries& series : streams) {
        if (series.stream == stream)
            return &series;
    }
    return nullptr;
}

StreamTelemetry::StreamTelemetry(const TelemetryConfig& cfg)
    : cfg_(cfg)
{
    MW_ASSERT(cfg.window > 0);
}

StreamTelemetry::StreamState&
StreamTelemetry::stateFor(sim::StreamId stream)
{
    StreamState& state = streams_[stream];
    // First touch this window: both counters are still zero (they are
    // incremented by the caller after this returns, and only reset
    // when the window closes), so this pushes exactly once per stream
    // per window.
    if (state.flitRate.count() == 0 && state.windowFrames == 0)
        activeInWindow_.push_back(stream);
    return state;
}

void
StreamTelemetry::rollWindows(sim::Tick now)
{
    while (now >= windowStart_ + cfg_.window)
        closeWindow();
}

void
StreamTelemetry::closeWindow()
{
    const sim::Tick end = windowStart_ + cfg_.window;
    // Sort so the samples land in deterministic order regardless of
    // the observation interleaving that first touched each stream.
    std::sort(activeInWindow_.begin(), activeInWindow_.end());
    for (sim::StreamId id : activeInWindow_) {
        StreamState& state = streams_[id];
        const std::uint64_t flits = state.flitRate.count();
        if (flits == 0 && state.windowFrames == 0)
            continue;
        TelemetrySample sample;
        sample.windowStart = windowStart_;
        sample.windowEnd = end;
        sample.frames = state.windowFrames;
        sample.flits = flits;
        sample.intervalCount = state.windowIntervals.count();
        sample.meanIntervalMs = state.windowIntervals.mean() / kMs;
        sample.stddevIntervalMs = state.windowIntervals.stddev() / kMs;
        // bits / window-seconds / 1e6 = Mbps; invariant under time
        // scaling (bytes and time shrink together).
        sample.mbps = static_cast<double>(flits)
            * static_cast<double>(cfg_.flitSizeBits)
            / sim::toSeconds(cfg_.window) / 1e6;
        state.samples.push_back(sample);
        state.flitRate.reset(end);
        state.windowIntervals.reset();
        state.windowFrames = 0;
    }
    activeInWindow_.clear();
    windowStart_ = end;
}

void
StreamTelemetry::recordFrameDelivery(sim::StreamId stream,
                                     sim::Tick now)
{
    rollWindows(now);
    StreamState& state = stateFor(stream);
    ++state.windowFrames;
    ++state.totalFrames;
    if (state.lastDelivery != sim::kTickNever) {
        const double interval =
            static_cast<double>(now - state.lastDelivery);
        state.windowIntervals.add(interval);
        if (now >= cfg_.measureFrom)
            state.overallIntervals.add(interval);
    }
    state.lastDelivery = now;
    ++observations_;
}

void
StreamTelemetry::recordFlit(sim::StreamId stream, sim::Tick now)
{
    rollWindows(now);
    stateFor(stream).flitRate.add();
    ++observations_;
}

void
StreamTelemetry::recordMessageDelay(sim::StreamId stream,
                                    double delay_us)
{
    // Direct map access, not stateFor(): this touches no window
    // counter, so it must not mark the stream window-active.
    StreamState& state = streams_[stream];
    ++state.totalMessages;
    state.worstMessageDelayUs =
        std::max(state.worstMessageDelayUs, delay_us);
    ++observations_;
}

TelemetryReport
StreamTelemetry::finish(sim::Tick end)
{
    // Flush whatever the final (partial or idle) windows hold.
    rollWindows(end);
    if (!activeInWindow_.empty())
        closeWindow();

    TelemetryReport report;
    report.window = cfg_.window;
    report.flitSizeBits = cfg_.flitSizeBits;

    std::vector<sim::StreamId> ids;
    ids.reserve(streams_.size());
    for (const auto& [id, state] : streams_) {
        (void)state;
        ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());

    report.streams.reserve(ids.size());
    for (sim::StreamId id : ids) {
        StreamState& state = streams_[id];
        StreamSeries series;
        series.stream = id;
        series.samples = std::move(state.samples);
        series.frames = state.totalFrames;
        series.intervalCount = state.overallIntervals.count();
        series.meanIntervalMs = state.overallIntervals.mean() / kMs;
        series.stddevIntervalMs =
            state.overallIntervals.stddev() / kMs;
        series.messages = state.totalMessages;
        series.worstMessageDelayUs = state.worstMessageDelayUs;
        // Worst stream: largest steady-state sigma_d with enough
        // intervals for a meaningful spread; ids ascend, so ties
        // resolve to the lowest id deterministically.
        if (series.intervalCount >= 2
            && series.stddevIntervalMs > report.worstStddevMs) {
            report.worstStream = id;
            report.worstStddevMs = series.stddevIntervalMs;
        }
        report.streams.push_back(std::move(series));
    }
    return report;
}

TelemetryReport
StreamTelemetry::merge(std::vector<TelemetryReport> parts)
{
    MW_ASSERT(!parts.empty());
    if (parts.size() == 1)
        return std::move(parts.front());

    TelemetryReport merged;
    merged.window = parts.front().window;
    merged.timeScale = parts.front().timeScale;
    merged.flitSizeBits = parts.front().flitSizeBits;

    // Per-part cursors over the id-sorted series lists.
    std::vector<std::size_t> cursor(parts.size(), 0);
    for (;;) {
        // Lowest stream id not yet consumed in any part.
        sim::StreamId id;
        for (std::size_t p = 0; p < parts.size(); ++p) {
            if (cursor[p] >= parts[p].streams.size())
                continue;
            const sim::StreamId candidate =
                parts[p].streams[cursor[p]].stream;
            if (!id.valid() || candidate < id)
                id = candidate;
        }
        if (!id.valid())
            break;

        std::vector<StreamSeries*> contributors;
        for (std::size_t p = 0; p < parts.size(); ++p) {
            if (cursor[p] < parts[p].streams.size()
                && parts[p].streams[cursor[p]].stream == id)
                contributors.push_back(
                    &parts[p].streams[cursor[p]++]);
        }

        StreamSeries series;
        series.stream = id;
        for (StreamSeries* c : contributors) {
            series.frames += c->frames;
            series.messages += c->messages;
            series.worstMessageDelayUs = std::max(
                series.worstMessageDelayUs, c->worstMessageDelayUs);
            if (c->intervalCount > 0) {
                // Frame deliveries of a stream all land at one sink,
                // so exactly one collector measured its intervals.
                MW_ASSERT(series.intervalCount == 0);
                series.intervalCount = c->intervalCount;
                series.meanIntervalMs = c->meanIntervalMs;
                series.stddevIntervalMs = c->stddevIntervalMs;
            }
        }

        // Merge the window series by windowStart (each contributor's
        // samples ascend; best-effort streams deliver to sinks on
        // several shards, so counts add within a window).
        std::vector<std::size_t> at(contributors.size(), 0);
        for (;;) {
            sim::Tick start = sim::kTickNever;
            for (std::size_t c = 0; c < contributors.size(); ++c) {
                if (at[c] >= contributors[c]->samples.size())
                    continue;
                const sim::Tick s =
                    contributors[c]->samples[at[c]].windowStart;
                if (start == sim::kTickNever || s < start)
                    start = s;
            }
            if (start == sim::kTickNever)
                break;
            TelemetrySample sample;
            sample.windowStart = start;
            sample.windowEnd = start + merged.window;
            for (std::size_t c = 0; c < contributors.size(); ++c) {
                if (at[c] >= contributors[c]->samples.size()
                    || contributors[c]->samples[at[c]].windowStart
                        != start)
                    continue;
                const TelemetrySample& part =
                    contributors[c]->samples[at[c]++];
                sample.frames += part.frames;
                sample.flits += part.flits;
                if (part.intervalCount > 0) {
                    MW_ASSERT(sample.intervalCount == 0);
                    sample.intervalCount = part.intervalCount;
                    sample.meanIntervalMs = part.meanIntervalMs;
                    sample.stddevIntervalMs = part.stddevIntervalMs;
                }
            }
            sample.mbps = static_cast<double>(sample.flits)
                * static_cast<double>(merged.flitSizeBits)
                / sim::toSeconds(merged.window) / 1e6;
            series.samples.push_back(sample);
        }

        if (series.intervalCount >= 2
            && series.stddevIntervalMs > merged.worstStddevMs) {
            merged.worstStream = id;
            merged.worstStddevMs = series.stddevIntervalMs;
        }
        merged.streams.push_back(std::move(series));
    }
    return merged;
}

} // namespace mediaworm::obs
