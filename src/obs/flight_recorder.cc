#include "obs/flight_recorder.hh"

#include <cstdio>
#include <memory>

#include "sim/logging.hh"

namespace mediaworm::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : own_(std::make_unique<sim::Tracer>(capacity)),
      ring_(own_.get())
{
}

FlightRecorder::FlightRecorder(sim::Tracer& ring)
    : ring_(&ring)
{
}

FlightRecorder::~FlightRecorder()
{
    disarm();
}

void
FlightRecorder::arm()
{
    sim::setCrashHook(&FlightRecorder::crashDump, this);
    armed_ = true;
}

void
FlightRecorder::disarm()
{
    if (!armed_)
        return;
    void* context = nullptr;
    if (sim::crashHook(&context) == &FlightRecorder::crashDump
        && context == this)
        sim::setCrashHook(nullptr, nullptr);
    armed_ = false;
}

std::string
FlightRecorder::dump() const
{
    const std::size_t shown =
        ring_->size() < kDumpTail ? ring_->size() : kDumpTail;
    char header[128];
    std::snprintf(header, sizeof(header),
                  "flight recorder: last %zu of %llu events "
                  "(oldest first)\n",
                  shown,
                  static_cast<unsigned long long>(
                      ring_->totalRecorded()));
    return header + ring_->toString(kDumpTail);
}

void
FlightRecorder::crashDump(void* context)
{
    const auto* recorder = static_cast<const FlightRecorder*>(context);
    std::fputs(recorder->dump().c_str(), stderr);
    std::fflush(stderr);
}

} // namespace mediaworm::obs
