/**
 * @file
 * Observability configuration and per-run observation bundle.
 *
 * ObsConfig rides inside core::ExperimentConfig and selects which
 * observers runExperiment() attaches: per-stream telemetry
 * (telemetry.hh), the crash-time flight recorder
 * (flight_recorder.hh) and/or the full flit tracer that feeds the
 * Chrome-trace exporter (chrome_trace.hh). Everything defaults off;
 * a disabled observer leaves the simulation's hot paths at their
 * null-pointer-check no-ops, and none of the observers schedules
 * events or draws random numbers, so enabling them changes no
 * deterministic output (deterministicHash is bit-identical either
 * way - tests/test_determinism.cc enforces this).
 *
 * RunObservations is what a run hands back: the telemetry report and
 * the trace ring, carried by shared_ptr in ExperimentResult so the
 * campaign engine can copy results cheaply.
 */

#ifndef MEDIAWORM_OBS_OBSERVER_HH
#define MEDIAWORM_OBS_OBSERVER_HH

#include <cstddef>
#include <vector>

#include "obs/telemetry.hh"
#include "sim/pdes.hh"
#include "sim/tracer.hh"

namespace mediaworm::obs {

/** Which observers a run attaches; everything defaults off. */
struct ObsConfig
{
    /** Per-stream sliding-window telemetry. */
    TelemetryConfig telemetry;

    /** Arm the crash-time flight recorder for the run. */
    bool flightRecorder = false;

    /** Flight-recorder ring capacity (events). */
    std::size_t flightRecorderCapacity = 512;

    /** Record the full flit trace (for Chrome-trace export). */
    bool trace = false;

    /** Trace ring capacity (events). */
    std::size_t traceCapacity = 1 << 20;

    /** Restrict the trace to one stream; invalid = all streams. */
    sim::StreamId traceStream;

    /** True if any observer is enabled. */
    bool
    any() const
    {
        return telemetry.enabled || flightRecorder || trace;
    }
};

/** What an observed run hands back. */
struct RunObservations
{
    /** @param traceCapacity Ring size for the shared event trace. */
    explicit RunObservations(std::size_t traceCapacity)
        : trace(traceCapacity)
    {
    }

    bool hasTelemetry = false;
    TelemetryReport telemetry;

    /** True when the trace ring was attached (trace or flight
     *  recorder requested); the ring holds the recent events. */
    bool hasTrace = false;
    sim::Tracer trace;

    /** True when the run executed on >1 shard; shards then holds one
     *  entry per shard (queue occupancy high-water marks, mailbox
     *  traffic, and time blocked on the lookahead barriers). */
    bool hasShards = false;
    std::vector<sim::ShardRunStats> shards;
};

} // namespace mediaworm::obs

#endif // MEDIAWORM_OBS_OBSERVER_HH
