#include "obs/chrome_trace.hh"

#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "campaign/artifact.hh"
#include "campaign/json.hh"

namespace mediaworm::obs {

namespace {

using campaign::JsonWriter;

/** Identity of one flit, the unit every event pair is keyed on. */
using FlitKey = std::tuple<std::int32_t, std::int64_t, std::int32_t>;

FlitKey
keyOf(const sim::TraceRecord& r)
{
    return {r.stream.value(), r.message, r.flitIndex};
}

/** Ticks (ps) to the format's microsecond timestamps. */
double
toUs(sim::Tick t)
{
    return sim::toMicroseconds(t);
}

std::string
flitName(const sim::TraceRecord& r)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "s%d m%lld f%d", r.stream.value(),
                  static_cast<long long>(r.message), r.flitIndex);
    return buf;
}

/** Emits the fixed fields every event carries. */
void
eventHeader(JsonWriter& json, const char* ph, const std::string& name,
            const char* cat, double ts, std::int64_t pid,
            std::int64_t tid)
{
    json.member("name", name);
    json.member("cat", cat);
    json.member("ph", ph);
    json.member("ts", ts);
    json.member("pid", pid);
    json.member("tid", tid);
}

} // namespace

std::string
toChromeTraceJson(const sim::Tracer& tracer)
{
    // Track ids: pid 1 holds one thread per stream (flit lifetimes),
    // pid 2 one thread per router (residencies + occupancy counters).
    constexpr std::int64_t kStreamPid = 1;
    constexpr std::int64_t kRouterPid = 2;

    // Pass 1: collect the tracks so metadata can lead the array.
    std::set<std::int32_t> streamTids;
    std::set<std::int32_t> routerTids;
    tracer.forEach([&](const sim::TraceRecord& r) {
        switch (r.point) {
          case sim::TracePoint::HostInject:
          case sim::TracePoint::NetworkLaunch:
          case sim::TracePoint::Eject:
            streamTids.insert(r.stream.value());
            break;
          case sim::TracePoint::RouterArrive:
          case sim::TracePoint::RouterDepart:
          case sim::TracePoint::CreditReturn:
            routerTids.insert(r.location);
            break;
        }
    });

    JsonWriter json;
    json.beginObject();
    json.member("displayTimeUnit", "ms");
    json.key("otherData");
    json.beginObject();
    json.member("schema", kChromeTraceSchema);
    json.endObject();
    json.key("traceEvents");
    json.beginArray();

    auto nameMeta = [&](const char* what, std::int64_t pid,
                        std::int64_t tid, const std::string& name) {
        json.beginObject();
        json.member("name", what);
        json.member("ph", "M");
        json.member("pid", pid);
        if (tid >= 0)
            json.member("tid", tid);
        json.key("args");
        json.beginObject();
        json.member("name", name);
        json.endObject();
        json.endObject();
    };
    nameMeta("process_name", kStreamPid, -1, "streams");
    nameMeta("process_name", kRouterPid, -1, "routers");
    for (std::int32_t tid : streamTids)
        nameMeta("thread_name", kStreamPid, tid,
                 "stream" + std::to_string(tid));
    for (std::int32_t tid : routerTids)
        nameMeta("thread_name", kRouterPid, tid,
                 "router" + std::to_string(tid));

    // Pass 2: pair begin/end points and emit in completion order.
    std::map<FlitKey, sim::Tick> lifetimeStart;
    // (flit, router) -> (arrive tick, input port, input vc)
    std::map<std::tuple<std::int32_t, std::int64_t, std::int32_t,
                        std::int32_t>,
             std::tuple<sim::Tick, std::int32_t, std::int32_t>>
        residencyStart;
    // (router, input port) -> resident flits, for "C" counters.
    std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t>
        occupancy;

    auto occupancyCounter = [&](std::int32_t router, std::int32_t port,
                                sim::Tick when) {
        char name[48];
        std::snprintf(name, sizeof(name), "router%d.port%d.occupancy",
                      router, port);
        json.beginObject();
        eventHeader(json, "C", name, "occupancy", toUs(when),
                    kRouterPid, router);
        json.key("args");
        json.beginObject();
        json.member("flits", occupancy[{router, port}]);
        json.endObject();
        json.endObject();
    };

    tracer.forEach([&](const sim::TraceRecord& r) {
        switch (r.point) {
          case sim::TracePoint::HostInject:
            lifetimeStart[keyOf(r)] = r.when;
            break;
          case sim::TracePoint::NetworkLaunch:
            break; // Visible via the router events.
          case sim::TracePoint::Eject: {
            const auto it = lifetimeStart.find(keyOf(r));
            if (it == lifetimeStart.end())
                break; // Inject fell off the ring; skip the pair.
            json.beginObject();
            eventHeader(json, "X", flitName(r), "flit",
                        toUs(it->second), kStreamPid,
                        r.stream.value());
            json.member("dur", toUs(r.when - it->second));
            json.endObject();
            lifetimeStart.erase(it);
            break;
          }
          case sim::TracePoint::RouterArrive:
            residencyStart[{r.stream.value(), r.message, r.flitIndex,
                            r.location}] = {r.when, r.port, r.vc};
            ++occupancy[{r.location, r.port}];
            occupancyCounter(r.location, r.port, r.when);
            break;
          case sim::TracePoint::RouterDepart: {
            const auto it = residencyStart.find(
                {r.stream.value(), r.message, r.flitIndex,
                 r.location});
            if (it == residencyStart.end())
                break;
            const auto [arrived, inPort, inVc] = it->second;
            json.beginObject();
            eventHeader(json, "X", flitName(r), "router",
                        toUs(arrived), kRouterPid, r.location);
            json.member("dur", toUs(r.when - arrived));
            json.key("args");
            json.beginObject();
            json.member("in_port", static_cast<std::int64_t>(inPort));
            json.member("in_vc", static_cast<std::int64_t>(inVc));
            json.member("out_port",
                        static_cast<std::int64_t>(r.port));
            json.member("out_vc", static_cast<std::int64_t>(r.vc));
            json.endObject();
            json.endObject();
            --occupancy[{r.location, inPort}];
            occupancyCounter(r.location, inPort, r.when);
            residencyStart.erase(it);
            break;
          }
          case sim::TracePoint::CreditReturn:
            json.beginObject();
            eventHeader(json, "i", "credit", "credit", toUs(r.when),
                        kRouterPid, r.location);
            json.member("s", "t");
            json.endObject();
            break;
        }
    });

    json.endArray();
    json.endObject();
    return json.str();
}

bool
writeChromeTrace(const std::string& path, const sim::Tracer& tracer)
{
    return campaign::writeTextFile(path, toChromeTraceJson(tracer));
}

} // namespace mediaworm::obs
