/**
 * @file
 * Running scalar statistics (Welford's online algorithm).
 */

#ifndef MEDIAWORM_STATS_ACCUMULATOR_HH
#define MEDIAWORM_STATS_ACCUMULATOR_HH

#include <cstdint>
#include <limits>

namespace mediaworm::stats {

/**
 * Accumulates count/mean/variance/min/max of a sample stream in O(1)
 * memory, numerically stable for millions of samples.
 */
class Accumulator
{
  public:
    Accumulator() = default;

    /** Adds one sample. */
    void add(double x);

    /** Merges another accumulator into this one (parallel Welford). */
    void merge(const Accumulator& other);

    /** Discards all samples. */
    void reset();

    /** Number of samples added. */
    std::uint64_t count() const { return count_; }

    /** True if no samples were added. */
    bool empty() const { return count_ == 0; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (divide by n); 0 for n < 1. */
    double variance() const;

    /** Unbiased sample variance (divide by n-1); 0 for n < 2. */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Sample standard deviation. */
    double sampleStddev() const;

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace mediaworm::stats

#endif // MEDIAWORM_STATS_ACCUMULATOR_HH
