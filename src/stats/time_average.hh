/**
 * @file
 * Time-weighted average of a piecewise-constant signal.
 *
 * Used for quantities like buffer occupancy and link utilization,
 * where each value persists for an interval rather than being a
 * point sample.
 */

#ifndef MEDIAWORM_STATS_TIME_AVERAGE_HH
#define MEDIAWORM_STATS_TIME_AVERAGE_HH

#include "sim/time.hh"

namespace mediaworm::stats {

/** Integrates value * dt to produce a time-weighted mean. */
class TimeAverage
{
  public:
    /** @param start Time at which observation begins. */
    explicit TimeAverage(sim::Tick start = 0)
        : lastTime_(start), startTime_(start)
    {
    }

    /** Records that the signal changed to @p value at @p now. */
    void
    update(sim::Tick now, double value)
    {
        integral_ += current_ * static_cast<double>(now - lastTime_);
        current_ = value;
        lastTime_ = now;
    }

    /** Restarts the observation window at @p now, keeping the value. */
    void
    reset(sim::Tick now)
    {
        integral_ = 0.0;
        lastTime_ = now;
        startTime_ = now;
    }

    /** Time-weighted mean over [start, now]. */
    double
    average(sim::Tick now) const
    {
        const double elapsed = static_cast<double>(now - startTime_);
        if (elapsed <= 0.0)
            return current_;
        const double total = integral_
            + current_ * static_cast<double>(now - lastTime_);
        return total / elapsed;
    }

    /** Most recently recorded value. */
    double current() const { return current_; }

  private:
    double integral_ = 0.0;
    double current_ = 0.0;
    sim::Tick lastTime_;
    sim::Tick startTime_;
};

} // namespace mediaworm::stats

#endif // MEDIAWORM_STATS_TIME_AVERAGE_HH
