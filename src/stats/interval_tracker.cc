#include "stats/interval_tracker.hh"

namespace mediaworm::stats {

void
IntervalTracker::recordDelivery(sim::StreamId stream, sim::Tick now)
{
    ++framesDelivered_;
    const auto it = lastDelivery_.find(stream);
    if (it != lastDelivery_.end()) {
        if (enabled_)
            intervals_.add(static_cast<double>(now - it->second));
        it->second = now;
    } else {
        lastDelivery_.emplace(stream, now);
    }
}

void
IntervalTracker::resetMeasurement()
{
    intervals_.reset();
}

void
IntervalTracker::mergeFrom(const IntervalTracker& other)
{
    intervals_.merge(other.intervals_);
    framesDelivered_ += other.framesDelivered_;
}

double
IntervalTracker::meanIntervalMs() const
{
    return intervals_.mean() / static_cast<double>(sim::kMillisecond);
}

double
IntervalTracker::stddevIntervalMs() const
{
    return intervals_.stddev() / static_cast<double>(sim::kMillisecond);
}

} // namespace mediaworm::stats
