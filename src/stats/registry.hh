/**
 * @file
 * Named statistics registry for end-of-run reporting.
 *
 * Components register scalar-producing callbacks under hierarchical
 * names ("router0.port3.xbar_grants"); the registry renders them as
 * text or CSV after a run.
 */

#ifndef MEDIAWORM_STATS_REGISTRY_HH
#define MEDIAWORM_STATS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

namespace mediaworm::stats {

/** A named scalar statistic with a lazy value producer. */
struct StatEntry
{
    std::string name;        ///< Hierarchical dotted name.
    std::string description; ///< Human-readable meaning.
    std::function<double()> value; ///< Evaluated at dump time.
};

/** Collects StatEntry items and renders them. */
class Registry
{
  public:
    Registry() = default;

    /** Registers a scalar statistic. */
    void add(std::string name, std::string description,
             std::function<double()> value);

    /** Number of registered statistics. */
    std::size_t size() const { return entries_.size(); }

    /** All entries in registration order. */
    const std::vector<StatEntry>& entries() const { return entries_; }

    /** Looks up the current value by exact name; NaN if absent. */
    double lookup(const std::string& name) const;

    /** Renders "name value  # description" lines. */
    std::string dumpText() const;

    /** Renders "name,value" lines with a header row. */
    std::string dumpCsv() const;

  private:
    std::vector<StatEntry> entries_;
};

} // namespace mediaworm::stats

#endif // MEDIAWORM_STATS_REGISTRY_HH
