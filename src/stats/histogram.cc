#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    MW_ASSERT(buckets > 0);
    MW_ASSERT(hi > lo);
}

void
Histogram::add(double x)
{
    summary_.add(x);
    if (x < lo_) {
        ++underflow_;
        return;
    }
    const auto index = static_cast<std::size_t>((x - lo_) / width_);
    if (index >= counts_.size()) {
        ++overflow_;
        return;
    }
    ++counts_[index];
}

void
Histogram::merge(const Histogram& other)
{
    MW_ASSERT(lo_ == other.lo_ && width_ == other.width_
              && counts_.size() == other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    summary_.merge(other.summary_);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    summary_.reset();
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    if (summary_.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(summary_.count());
    double cumulative = static_cast<double>(underflow_);
    if (cumulative >= target && underflow_ > 0)
        return summary_.min();
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto in_bucket = static_cast<double>(counts_[i]);
        if (cumulative + in_bucket >= target && in_bucket > 0) {
            const double frac = (target - cumulative) / in_bucket;
            return bucketLow(i) + frac * width_;
        }
        cumulative += in_bucket;
    }
    return summary_.max();
}

std::string
Histogram::toString() const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "n=%llu mean=%.4g sd=%.4g min=%.4g max=%.4g "
                  "under=%llu over=%llu\n",
                  static_cast<unsigned long long>(summary_.count()),
                  summary_.mean(), summary_.stddev(), summary_.min(),
                  summary_.max(),
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
    const std::uint64_t peak =
        *std::max_element(counts_.begin(), counts_.end());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const int bar = peak
            ? static_cast<int>(40 * counts_[i] / peak) : 0;
        std::snprintf(line, sizeof(line), "  [%10.4g) %8llu %s\n",
                      bucketLow(i),
                      static_cast<unsigned long long>(counts_[i]),
                      std::string(static_cast<std::size_t>(bar), '#')
                          .c_str());
        out += line;
    }
    return out;
}

} // namespace mediaworm::stats
