#include "stats/registry.hh"

#include <cmath>
#include <cstdio>
#include <limits>

namespace mediaworm::stats {

void
Registry::add(std::string name, std::string description,
              std::function<double()> value)
{
    entries_.push_back({std::move(name), std::move(description),
                        std::move(value)});
}

double
Registry::lookup(const std::string& name) const
{
    for (const auto& entry : entries_) {
        if (entry.name == name)
            return entry.value();
    }
    return std::numeric_limits<double>::quiet_NaN();
}

std::string
Registry::dumpText() const
{
    std::string out;
    char line[256];
    for (const auto& entry : entries_) {
        std::snprintf(line, sizeof(line), "%-48s %14.6g  # %s\n",
                      entry.name.c_str(), entry.value(),
                      entry.description.c_str());
        out += line;
    }
    return out;
}

std::string
Registry::dumpCsv() const
{
    std::string out = "stat,value\n";
    char line[256];
    for (const auto& entry : entries_) {
        std::snprintf(line, sizeof(line), "%s,%.9g\n",
                      entry.name.c_str(), entry.value());
        out += line;
    }
    return out;
}

} // namespace mediaworm::stats
