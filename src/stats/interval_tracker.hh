/**
 * @file
 * Frame delivery-interval tracking: the paper's primary QoS metrics.
 *
 * The paper reports, per workload point, the mean frame delivery
 * interval d and its standard deviation sigma_d, where the delivery
 * interval is the gap between the delivery times of two successive
 * frames of the same stream at its destination (Section 4.1).
 * d = 33 ms with sigma_d = 0 means jitter-free MPEG-2 delivery.
 */

#ifndef MEDIAWORM_STATS_INTERVAL_TRACKER_HH
#define MEDIAWORM_STATS_INTERVAL_TRACKER_HH

#include <unordered_map>

#include "sim/ids.hh"
#include "sim/time.hh"
#include "stats/accumulator.hh"

namespace mediaworm::stats {

/** Aggregates per-stream frame delivery intervals. */
class IntervalTracker
{
  public:
    IntervalTracker() = default;

    /**
     * Records that @p stream delivered a complete frame at @p now.
     *
     * Frames must be reported in delivery order per stream; the first
     * frame of a stream only establishes the baseline. Samples taken
     * before enable() are discarded (warmup).
     */
    void recordDelivery(sim::StreamId stream, sim::Tick now);

    /**
     * Starts measurement. Intervals that span the enable point are
     * included only if the previous delivery was already seen, which
     * matches the paper's steady-state measurement after warmup.
     */
    void enable() { enabled_ = true; }

    /** Stops measurement (deliveries still update baselines). */
    void disable() { enabled_ = false; }

    /** True while measurement is running. */
    bool enabled() const { return enabled_; }

    /** Clears measured intervals, keeping per-stream baselines. */
    void resetMeasurement();

    /**
     * Folds @p other 's aggregate statistics into this tracker:
     * measured intervals (parallel Welford merge) and the delivered
     * frame count. Per-stream baselines are not merged - the result
     * is a read-only roll-up, used to combine per-node trackers in
     * canonical node order (network/metrics.hh).
     */
    void mergeFrom(const IntervalTracker& other);

    /** Aggregate over all streams, in ticks. */
    const Accumulator& intervals() const { return intervals_; }

    /** Mean delivery interval d in milliseconds; 0 if no samples. */
    double meanIntervalMs() const;

    /** Standard deviation sigma_d in milliseconds. */
    double stddevIntervalMs() const;

    /** Number of measured intervals. */
    std::uint64_t sampleCount() const { return intervals_.count(); }

    /** Number of frames delivered (measured or not). */
    std::uint64_t framesDelivered() const { return framesDelivered_; }

  private:
    std::unordered_map<sim::StreamId, sim::Tick> lastDelivery_;
    Accumulator intervals_;
    std::uint64_t framesDelivered_ = 0;
    bool enabled_ = false;
};

} // namespace mediaworm::stats

#endif // MEDIAWORM_STATS_INTERVAL_TRACKER_HH
