/**
 * @file
 * Event-rate measurement over the observation window.
 *
 * Counts discrete occurrences (flits transmitted, messages delivered)
 * and converts them to a rate over the elapsed measurement window;
 * used for link-utilization and throughput reporting.
 */

#ifndef MEDIAWORM_STATS_RATE_MONITOR_HH
#define MEDIAWORM_STATS_RATE_MONITOR_HH

#include <cstdint>

#include "sim/time.hh"

namespace mediaworm::stats {

/** Counts occurrences and reports them as a rate per second. */
class RateMonitor
{
  public:
    RateMonitor() = default;

    /** Records @p n occurrences. */
    void add(std::uint64_t n = 1) { count_ += n; }

    /** Restarts the window at @p now, zeroing the count. */
    void
    reset(sim::Tick now)
    {
        count_ = 0;
        windowStart_ = now;
    }

    /** Occurrences since the window start. */
    std::uint64_t count() const { return count_; }

    /** Occurrences per simulated second over [start, now]. */
    double
    ratePerSecond(sim::Tick now) const
    {
        const auto elapsed = static_cast<double>(now - windowStart_);
        if (elapsed <= 0.0)
            return 0.0;
        return static_cast<double>(count_)
            / (elapsed / static_cast<double>(sim::kSecond));
    }

    /**
     * Fraction of a resource's capacity consumed, given the per-unit
     * service time (e.g. one flit time for link utilization).
     */
    double
    utilization(sim::Tick now, sim::Tick service_time) const
    {
        const auto elapsed = static_cast<double>(now - windowStart_);
        if (elapsed <= 0.0)
            return 0.0;
        return static_cast<double>(count_)
            * static_cast<double>(service_time) / elapsed;
    }

  private:
    std::uint64_t count_ = 0;
    sim::Tick windowStart_ = 0;
};

} // namespace mediaworm::stats

#endif // MEDIAWORM_STATS_RATE_MONITOR_HH
