/**
 * @file
 * Fixed-width bucketed histogram with under/overflow buckets.
 */

#ifndef MEDIAWORM_STATS_HISTOGRAM_HH
#define MEDIAWORM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/accumulator.hh"

namespace mediaworm::stats {

/** Histogram over [lo, hi) with equal-width buckets. */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the bucketed range.
     * @param hi Upper bound of the bucketed range (exclusive).
     * @param buckets Number of equal-width buckets; must be > 0.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Adds a sample; out-of-range samples land in the edge buckets. */
    void add(double x);

    /** Discards all samples. */
    void reset();

    /**
     * Adds @p other 's samples to this histogram. Bucket counts sum
     * exactly; the scalar summary uses the parallel Welford merge.
     * Both histograms must share lo/width/bucket count.
     */
    void merge(const Histogram& other);

    /** Total samples, including under/overflow. */
    std::uint64_t count() const { return summary_.count(); }

    /** Samples below the bucketed range. */
    std::uint64_t underflow() const { return underflow_; }

    /** Samples at or above the bucketed range. */
    std::uint64_t overflow() const { return overflow_; }

    /** Count in bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }

    /** Number of buckets. */
    std::size_t buckets() const { return counts_.size(); }

    /** Lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const;

    /** Scalar summary (mean/stddev/min/max) of all samples. */
    const Accumulator& summary() const { return summary_; }

    /**
     * Linear-interpolated quantile estimate in [0, 1].
     * Returns min()/max() at the extremes; 0 when empty.
     */
    double quantile(double q) const;

    /** Multi-line text rendering for reports. */
    std::string toString() const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    Accumulator summary_;
};

} // namespace mediaworm::stats

#endif // MEDIAWORM_STATS_HISTOGRAM_HH
