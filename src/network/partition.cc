#include "network/partition.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mediaworm::network {

ShardPlan
planShards(const config::NetworkConfig& net, int requested_shards,
           unsigned hardware_threads)
{
    MW_ASSERT(requested_shards >= 0);

    ShardPlan plan;
    if (net.topology == config::TopologyKind::SingleSwitch)
        return plan;

    const int num_routers = net.numRouters();
    int shards = requested_shards;
    if (shards == 0)
        shards = static_cast<int>(std::max(1u, hardware_threads));
    shards = std::clamp(shards, 1, num_routers);
    if (shards <= 1)
        return plan;

    plan.numShards = shards;
    plan.routerShard.resize(static_cast<std::size_t>(num_routers));
    // Balanced contiguous blocks over the row-major router index:
    // router r goes to shard r*S/R, giving each shard floor(R/S) or
    // ceil(R/S) consecutive routers (horizontal strips of the mesh).
    for (int r = 0; r < num_routers; ++r) {
        plan.routerShard[static_cast<std::size_t>(r)] = static_cast<int>(
            (static_cast<long long>(r) * shards) / num_routers);
    }
    return plan;
}

} // namespace mediaworm::network
