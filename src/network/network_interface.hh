/**
 * @file
 * Endpoint network interface.
 *
 * Injection side: per-VC message queues (host memory, unbounded), a
 * VC multiplexer onto the injection link scheduled by the configured
 * discipline - the same Virtual Clock machinery as the router's
 * output stage, since the injection link is itself a contended
 * physical channel - and credit flow control against the router's
 * input buffers.
 *
 * Ejection side: a sink that consumes flits at link rate, reassembles
 * frame completions from tail flits and reports them to the
 * MetricsHub.
 */

#ifndef MEDIAWORM_NETWORK_NETWORK_INTERFACE_HH
#define MEDIAWORM_NETWORK_NETWORK_INTERFACE_HH

#include <memory>
#include <string>
#include <vector>

#include "config/router_config.hh"
#include "network/metrics.hh"
#include "router/arbiter.hh"
#include "router/flit.hh"
#include "router/flit_buffer.hh"
#include "router/link.hh"
#include "router/virtual_clock.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/tracer.hh"
#include "traffic/stream.hh"

namespace mediaworm::network {

/**
 * One endpoint's injection/ejection machinery.
 *
 * Like the router, the NI participates in batched dispatch (its mux
 * event carries an opcode and fires through fireBatch) and lazy-tick
 * elision (an injection-mux wakeup with nothing eligible is skipped;
 * sim::LazyDrain settles the accounting). Per-VC credits and Virtual
 * Clock state live in flat arrays (DESIGN.md section 13).
 */
class NetworkInterface final : public traffic::Injector,
                               public router::FlitReceiver,
                               public router::CreditReceiver,
                               public sim::BatchSink,
                               public sim::LazyDrain
{
  public:
    /**
     * @param simulator Owning kernel.
     * @param node This endpoint's id.
     * @param cfg Router configuration (VC count, cycle time, flit
     *            size, scheduling discipline for the injection mux).
     * @param metrics Shared measurement hub.
     * @param name Diagnostic name.
     */
    NetworkInterface(sim::Simulator& simulator, sim::NodeId node,
                     const config::RouterConfig& cfg, MetricsHub& metrics,
                     std::string name);

    /**
     * Attaches the injection link towards the router. The NI
     * registers as the link's credit receiver; @p router_buffer_depth
     * initializes per-VC credits.
     */
    void connectInjectionLink(router::Link& link,
                              int router_buffer_depth);

    /** Attaches the ejection link; the NI registers as receiver. */
    void connectEjectionLink(router::Link& link);

    /** This endpoint's id. */
    sim::NodeId node() const { return node_; }

    // traffic::Injector
    void injectMessage(const traffic::MessageDesc& message) override;

    // router::FlitReceiver (ejection sink)
    void receiveFlit(const router::Flit& flit, int vc) override;

    // router::CreditReceiver (injection credits)
    void creditReturned(int vc) override;

    // sim::BatchSink: the NI has a single event (the injection mux),
    // so the batch loop needs no opcode switch.
    void fireBatch(sim::Event& first) override;

    // sim::LazyDrain: end-of-run accounting for elided mux wakeups.
    std::uint64_t flushLazy(sim::Tick until) override;
    bool lazyPending() const override;

    /** Messages queued at the host and not yet fully transmitted. */
    std::uint64_t backlogFlits() const;

    /** Attaches a flit tracer; nullptr detaches. */
    void setTracer(sim::Tracer* tracer) { tracer_ = tracer; }

    /** Flits injected onto the link since construction. */
    std::uint64_t flitsInjected() const { return flitsInjected_; }

  private:
    /** Per-VC cold state; the hot scalars (credits, Virtual Clock)
     *  live in the flat arrays below. */
    struct InjectionVc
    {
        router::FlitBuffer queue{0}; // unbounded host-side queue
    };

    void kickMux();
    void serveMux();
    /** Mux service slot elapsed: serve the next flit. */
    void muxFired();

    /**
     * Re-derives VC @p vc 's eligibility bit: a queued head flit, a
     * credit, and (for virtual cut-through headers) enough credits to
     * launch the whole message. Called on enqueue, credit return and
     * after every send - the only events that move the predicate.
     */
    void refreshEligibility(int vc);

    sim::Simulator& simulator_;
    sim::NodeId node_;
    config::RouterConfig cfg_;
    /** This node's measurement lane, resolved once: during a sharded
     *  run only this shard touches it, so recording needs no locks. */
    MetricsLane* lane_;
    std::string name_;
    sim::Tick cycleTime_;

    std::vector<InjectionVc> vcs_;
    // Data-oriented per-VC hot state, indexed by VC lane.
    std::vector<int> credits_;
    std::vector<router::VirtualClockState> vclock_;
    router::MuxArbiter arb_; ///< Injection-mux eligibility + kernels.
    sim::MemberFuncEvent<&NetworkInterface::muxFired> muxEvent_;
    sim::LazyTick mux_; ///< Service-slot state; elides idle ticks.
    std::uint64_t nextArrivalSeq_ = 0;

    router::Link* injectionLink_ = nullptr;
    int routerBufferDepth_ = 0;
    sim::Tracer* tracer_ = nullptr;

    std::uint64_t flitsInjected_ = 0;
};

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_NETWORK_INTERFACE_HH
