/**
 * @file
 * Declarative topology graph: the shape of an interconnect as plain
 * data, independent of the simulation objects that realize it.
 *
 * A Topology is a list of routers, a node -> (router, port) endpoint
 * map, and an ordered connect-pair table of directed inter-router
 * channels. network::Network walks these tables to instantiate
 * routers, links and NIs; network::buildRouting derives route tables
 * from the same graph; tests check graph-level properties
 * (connectivity, degree, symmetry) without building a simulation.
 *
 * Builders cover the paper's two shapes (single switch, fat mesh)
 * plus k-ary 2-meshes, 2-D tori and 3-stage folded Clos networks,
 * all expressed in the same connect-pair idiom. Channel-creation
 * order is part of the contract: Network derives canonical
 * cross-shard event keys from link order, so the builders enumerate
 * channels deterministically (and the fat-mesh builder reproduces
 * the historical wiring order exactly, keeping determinism goldens
 * unchanged).
 */

#ifndef MEDIAWORM_NETWORK_TOPOLOGY_HH
#define MEDIAWORM_NETWORK_TOPOLOGY_HH

#include <string>
#include <vector>

#include "config/network_config.hh"

namespace mediaworm::network {

/** Endpoint attachment: node i lives at (router, port). */
struct TopoEndpoint
{
    int router = 0;
    int port = 0;
};

/** One directed inter-router channel. */
struct TopoChannel
{
    int srcRouter = 0;
    int srcPort = 0;
    int dstRouter = 0;
    int dstPort = 0;
};

/** An interconnect shape as a declarative graph. */
class Topology
{
  public:
    /** One 8-port-class switch; node p on port p. */
    static Topology singleSwitch(int ports);

    /**
     * The paper's fat mesh: a width x height grid with @p fat
     * parallel links between adjacent switches and @p eps endpoints
     * per switch. Port map per switch: endpoint ports first, then
     * fat channels per present direction in East/West/South/North
     * order (the historical buildFatMesh() layout).
     */
    static Topology fatMesh(int width, int height, int fat, int eps);

    /** k-ary 2-mesh: fatMesh with single links, dimension-ordered
     *  port map, @p eps endpoints per switch. */
    static Topology mesh(int width, int height, int eps);

    /** 2-D torus: the mesh plus wrap-around channels; every switch
     *  has all four directions. */
    static Topology torus(int width, int height, int eps);

    /**
     * 3-stage folded Clos: @p r leaf switches with @p n endpoints
     * each, @p m spine switches, one up/down channel pair between
     * every (leaf, spine). Routers 0..r-1 are leaves, r..r+m-1
     * spines. Leaf ports: 0..n-1 endpoints, n+j to spine j. Spine
     * ports: i to leaf i.
     */
    static Topology clos(int m, int n, int r);

    /** Builds the graph described by a validated NetworkConfig. */
    static Topology build(const config::NetworkConfig& net);

    config::TopologyKind kind() const { return kind_; }
    int numRouters() const { return numRouters_; }
    int numNodes() const { return static_cast<int>(endpoints_.size()); }

    /** Largest port index used by any router, plus one. */
    int portsRequired() const { return portsRequired_; }

    const std::vector<TopoEndpoint>& endpoints() const
    {
        return endpoints_;
    }

    /** Directed channels in canonical creation order. */
    const std::vector<TopoChannel>& channels() const
    {
        return channels_;
    }

    /** Router hosting endpoint @p node. */
    int
    routerOfNode(int node) const
    {
        return endpoints_[static_cast<std::size_t>(node)].router;
    }

    /**
     * Channel leaving @p router at @p port, or -1 when the port is
     * an endpoint/unused port.
     */
    int outChannelAt(int router, int port) const;

    /** All channel indices leaving @p router, in creation order. */
    std::vector<int> outChannelsOf(int router) const;

    /** Number of distinct neighbour routers of @p router. */
    int degreeOf(int router) const;

    /** True when every router can reach every other router. */
    bool connected() const;

    /**
     * True when the channel table is symmetric: for every directed
     * channel a->b there is exactly one b->a channel joining the
     * same two (router, port) pairs in reverse.
     */
    bool symmetric() const;

    // Shape metadata the routing policies consume. Valid per kind.
    int meshWidth = 0;   ///< Mesh/torus/fat-mesh grid width.
    int meshHeight = 0;  ///< Mesh/torus/fat-mesh grid height.
    int fatFactor = 1;   ///< Parallel links per grid direction.
    bool wrap = false;   ///< True for the torus.
    int endpointsPerSwitch = 1;
    int closM = 0; ///< Spine count.
    int closN = 0; ///< Endpoints per leaf.
    int closR = 0; ///< Leaf count.

    /**
     * Port map of grid shapes: first port of direction @p dir
     * (0=E 1=W 2=S 3=N) at switch @p s, or -1 when absent.
     */
    int dirPort(int s, int dir) const;

  private:
    Topology() = default;

    /** Shared grid builder behind fatMesh/mesh/torus. */
    static Topology grid(config::TopologyKind kind, int width,
                         int height, int fat, int eps, bool wrap);

    void addChannel(int src_router, int src_port, int dst_router,
                    int dst_port);
    void finalize();

    config::TopologyKind kind_ = config::TopologyKind::SingleSwitch;
    int numRouters_ = 1;
    int portsRequired_ = 0;
    std::vector<TopoEndpoint> endpoints_;
    std::vector<TopoChannel> channels_;
    /** outChan_[router * portsRequired_ + port] = channel or -1. */
    std::vector<int> outChan_;
    /** dirPort_[switch * 4 + dir] for grid kinds; empty otherwise. */
    std::vector<int> dirPort_;
};

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_TOPOLOGY_HH
