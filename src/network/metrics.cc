#include "network/metrics.hh"

namespace mediaworm::network {

void
MetricsHub::growLanes(std::size_t count)
{
    while (lanes_.size() < count) {
        lanes_.push_back(std::make_unique<MetricsLane>(this));
#ifndef MEDIAWORM_NO_OBS
        lanes_.back()->attachTelemetry(defaultTelemetry_);
#endif
    }
}

const stats::IntervalTracker&
MetricsHub::frames() const
{
    merged_.frames = stats::IntervalTracker();
    for (const auto& lane : lanes_)
        merged_.frames.mergeFrom(lane->frames_);
    return merged_.frames;
}

const stats::Accumulator&
MetricsHub::beLatency() const
{
    merged_.beLatency.reset();
    for (const auto& lane : lanes_)
        merged_.beLatency.merge(lane->beLatency_);
    return merged_.beLatency;
}

const stats::Accumulator&
MetricsHub::beNetworkLatency() const
{
    merged_.beNetworkLatency.reset();
    for (const auto& lane : lanes_)
        merged_.beNetworkLatency.merge(lane->beNetworkLatency_);
    return merged_.beNetworkLatency;
}

const stats::Histogram&
MetricsHub::beLatencyHistogram() const
{
    merged_.beLatencyHistogram.reset();
    for (const auto& lane : lanes_)
        merged_.beLatencyHistogram.merge(lane->beLatencyHistogram_);
    return merged_.beLatencyHistogram;
}

const stats::Accumulator&
MetricsHub::rtMessageLatency() const
{
    merged_.rtMessageLatency.reset();
    for (const auto& lane : lanes_)
        merged_.rtMessageLatency.merge(lane->rtMessageLatency_);
    return merged_.rtMessageLatency;
}

std::uint64_t
MetricsHub::beMessages() const
{
    std::uint64_t total = 0;
    for (const auto& lane : lanes_)
        total += lane->beMessages_;
    return total;
}

std::uint64_t
MetricsHub::rtMessages() const
{
    std::uint64_t total = 0;
    for (const auto& lane : lanes_)
        total += lane->rtMessages_;
    return total;
}

std::uint64_t
MetricsHub::flitsDelivered() const
{
    std::uint64_t total = 0;
    for (const auto& lane : lanes_)
        total += lane->flitsDelivered_;
    return total;
}

} // namespace mediaworm::network
