/**
 * @file
 * Routing-policy layer: turns a declarative Topology into per-router
 * route tables plus the VC-class structure that keeps them
 * deadlock-free, and exposes the channel-dependency graph (CDG) the
 * deadlock-freedom tests check.
 *
 * Policies
 *  - DimensionOrder: deterministic XY on meshes; on tori the
 *    shortest way around each ring with two dateline VC classes
 *    (class 0 while the remaining ring path still crosses the wrap
 *    channel, class 1 after), which orders every ring's channels
 *    acyclically; on the Clos it degenerates to a deterministic
 *    single-up path (spine = dest leaf mod m).
 *  - UpDown: on the Clos, the natural multi-up routing (all spines
 *    are candidates, least-loaded pick, then the single down link);
 *    on meshes/tori, classic up-down routing over a BFS spanning tree
 *    rooted at router 0 (up to the LCA, then down), which is acyclic
 *    because up channels order by decreasing depth and down channels
 *    by increasing depth.
 *  - Adaptive: minimal adaptive candidates in a dedicated top VC
 *    class, taken only when their mapped output VC is free at
 *    route time, with the DimensionOrder route as the always-present
 *    escape candidate in the lower class(es). Allocation waits only
 *    ever happen on the escape subnetwork, whose CDG is acyclic -
 *    Duato's condition for deadlock-free wormhole adaptive routing.
 *    (On the Clos, where every spine choice is already cycle-free,
 *    adaptive keeps one VC class and just prefers free spines.)
 *
 * The CDG helpers build the dependency graph from the *actual*
 * tables, so the acyclicity tests validate what the router executes,
 * not what the builder intended.
 */

#ifndef MEDIAWORM_NETWORK_ROUTING_HH
#define MEDIAWORM_NETWORK_ROUTING_HH

#include <utility>
#include <vector>

#include "config/network_config.hh"
#include "network/topology.hh"
#include "router/wormhole_router.hh"

namespace mediaworm::network {

/** Route tables for every router of a topology, plus VC structure. */
struct RoutingTables
{
    /** VC classes the tables assume (RouterConfig::vcClasses). */
    int vcClasses = 1;

    /** True when any entry uses Select::AdaptiveEscape. */
    bool adaptive = false;

    /** perRouter[r][dest_node] = candidates at router r. */
    std::vector<router::RouteTable> perRouter;
};

/**
 * Builds route tables for @p kind over @p topo. @p kind must be a
 * concrete policy (not Default; resolve with
 * NetworkConfig::effectiveRouting() first) except for SingleSwitch,
 * where every policy is the identity.
 */
RoutingTables buildRouting(const Topology& topo,
                           config::RoutingKind kind);

/**
 * BFS spanning tree over the topology's channels, rooted at router
 * 0: parents[r] is r's tree parent (-1 for the root). Neighbour
 * visit order follows channel-creation order, so the tree is
 * deterministic. Shared by the UpDown policy and the calculus route
 * model.
 */
std::vector<int> bfsTreeParents(const Topology& topo);

/**
 * Channel-dependency graph of @p tables over @p topo: node id =
 * channel * vcClasses + vcClass, one edge per (hold, request) pair a
 * message can create. With @p escape_only, AdaptiveEscape entries
 * contribute only their escape (last) candidate - the subnetwork
 * whose acyclicity Duato's condition requires; entries with other
 * Select modes always contribute all candidates.
 */
std::vector<std::pair<int, int>>
channelDependencyEdges(const Topology& topo,
                       const RoutingTables& tables, bool escape_only);

/** True when the directed graph on @p num_nodes nodes is acyclic. */
bool acyclic(int num_nodes,
             const std::vector<std::pair<int, int>>& edges);

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_ROUTING_HH
