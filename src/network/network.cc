#include "network/network.hh"

#include <array>

#include "sim/logging.hh"

namespace mediaworm::network {

namespace {

/** Credit depth that never throttles an ejection sink. */
constexpr int kSinkCredits = 1 << 20;

/** Mesh directions, in port-assignment order. */
enum Direction { kEast = 0, kWest = 1, kSouth = 2, kNorth = 3 };

} // namespace

Network::Network(sim::Simulator& simulator,
                 const config::RouterConfig& router_cfg,
                 const config::NetworkConfig& net_cfg,
                 MetricsHub& metrics, sim::Rng& rng)
    : Network(std::vector<sim::Simulator*>{&simulator}, ShardPlan{},
              router_cfg, net_cfg, metrics, rng)
{
}

Network::Network(std::vector<sim::Simulator*> shard_sims,
                 const ShardPlan& plan,
                 const config::RouterConfig& router_cfg,
                 const config::NetworkConfig& net_cfg,
                 MetricsHub& metrics, sim::Rng& rng)
    : sims_(std::move(shard_sims)), plan_(plan), routerCfg_(router_cfg),
      netCfg_(net_cfg), metrics_(metrics), rng_(&rng)
{
    MW_ASSERT(!sims_.empty());
    MW_ASSERT(static_cast<int>(sims_.size()) == plan_.numShards
              || (plan_.trivial() && sims_.size() == 1));
    routerCfg_.validate();
    netCfg_.validate(routerCfg_.numPorts);
    linkDelay_ =
        static_cast<sim::Tick>(routerCfg_.linkDelayCycles
                               + routerCfg_.outputCycles)
        * routerCfg_.cycleTime();

    if (netCfg_.topology == config::TopologyKind::SingleSwitch) {
        MW_ASSERT(plan_.trivial());
        buildSingleSwitch();
    } else {
        buildFatMesh();
    }
}

sim::Simulator&
Network::simOfRouter(int r) const
{
    return *sims_[static_cast<std::size_t>(plan_.shardOfRouter(r))];
}

router::Link&
Network::newLink(const std::string& name, int sender_router,
                 int receiver_router)
{
    // Canonical channel keys in link-creation order: the same keys
    // in every execution mode, so same-tick link deliveries merge
    // identically whether the link is intra- or cross-shard.
    links_.push_back(std::make_unique<router::Link>(
        simOfRouter(sender_router), linkDelay_, name,
        router::ChannelIds::forLinkIndex(links_.size())));
    router::Link& link = *links_.back();

    const int sender_shard = plan_.shardOfRouter(sender_router);
    const int receiver_shard = plan_.shardOfRouter(receiver_router);
    link.bindShards(simOfRouter(sender_router),
                    simOfRouter(receiver_router));
    if (sender_shard != receiver_shard) {
        crossChannels_.push_back({&link, true, receiver_shard});
        crossChannels_.push_back({&link, false, sender_shard});
    }
    return link;
}

void
Network::attachEndpoint(router::WormholeRouter& sw, int sw_index,
                        int port, int node)
{
    auto ni = std::make_unique<NetworkInterface>(
        simOfRouter(sw_index), sim::NodeId(node), routerCfg_, metrics_,
        "ni" + std::to_string(node));

    router::Link& inj =
        newLink("inj" + std::to_string(node), sw_index, sw_index);
    sw.connectInputLink(port, inj);
    ni->connectInjectionLink(inj, routerCfg_.flitBufferDepth);

    router::Link& ej =
        newLink("ej" + std::to_string(node), sw_index, sw_index);
    sw.connectOutputLink(port, ej, kSinkCredits);
    ni->connectEjectionLink(ej);

    MW_ASSERT(static_cast<int>(nis_.size()) == node);
    nis_.push_back(std::move(ni));
}

void
Network::buildSingleSwitch()
{
    auto sw = std::make_unique<router::WormholeRouter>(
        *sims_[0], routerCfg_, "router0");

    routers_.push_back(std::move(sw));
    for (int p = 0; p < routerCfg_.numPorts; ++p)
        attachEndpoint(*routers_[0], 0, p, p);

    // One endpoint per port: the destination id is the output port.
    routers_[0]->setRouteFunction([](sim::NodeId dest) {
        return router::RouteCandidates::single(dest.value());
    });
    // Static topology: precompute the table so headers route with an
    // array load instead of a std::function call.
    router::RouteTable table(
        static_cast<std::size_t>(routerCfg_.numPorts));
    for (int node = 0; node < routerCfg_.numPorts; ++node)
        table[static_cast<std::size_t>(node)] =
            router::RouteCandidates::single(node);
    routers_[0]->setRouteTable(std::move(table));
}

void
Network::buildFatMesh()
{
    const int width = netCfg_.meshWidth;
    const int height = netCfg_.meshHeight;
    const int fat = netCfg_.fatFactor;
    const int eps = netCfg_.endpointsPerSwitch;
    const int num_switches = width * height;

    // Port map per switch: endpoint ports first, then fat channels
    // per present direction in East/West/South/North order.
    std::vector<std::array<int, 4>> dir_port(
        static_cast<std::size_t>(num_switches), {-1, -1, -1, -1});

    for (int s = 0; s < num_switches; ++s) {
        routers_.push_back(std::make_unique<router::WormholeRouter>(
            simOfRouter(s), routerCfg_, "router" + std::to_string(s)));
        const int x = s % width;
        const int y = s / width;
        int next_port = eps;
        auto assign = [&](Direction d, bool present) {
            if (!present)
                return;
            dir_port[static_cast<std::size_t>(s)]
                    [static_cast<std::size_t>(d)] = next_port;
            next_port += fat;
        };
        assign(kEast, x < width - 1);
        assign(kWest, x > 0);
        assign(kSouth, y < height - 1);
        assign(kNorth, y > 0);
        MW_ASSERT(next_port <= routerCfg_.numPorts);
    }

    // Endpoints: node n lives on switch n / eps at port n % eps.
    for (int s = 0; s < num_switches; ++s) {
        for (int e = 0; e < eps; ++e) {
            attachEndpoint(*routers_[static_cast<std::size_t>(s)], s, e,
                           s * eps + e);
        }
    }

    // Inter-switch fat channels: for each adjacent pair, fat links in
    // each direction, pairing the k-th port on both sides.
    auto wire = [&](int s, Direction sd, int t, Direction td) {
        for (int k = 0; k < fat; ++k) {
            const int sp =
                dir_port[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(sd)] + k;
            const int tp =
                dir_port[static_cast<std::size_t>(t)]
                        [static_cast<std::size_t>(td)] + k;
            router::Link& link = newLink(
                "sw" + std::to_string(s) + "p" + std::to_string(sp)
                    + "-sw" + std::to_string(t) + "p"
                    + std::to_string(tp),
                s, t);
            routers_[static_cast<std::size_t>(s)]->connectOutputLink(
                sp, link, routerCfg_.flitBufferDepth);
            routers_[static_cast<std::size_t>(t)]->connectInputLink(
                tp, link);
        }
    };
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int s = y * width + x;
            if (x < width - 1) {
                wire(s, kEast, s + 1, kWest);
                wire(s + 1, kWest, s, kEast);
            }
            if (y < height - 1) {
                wire(s, kSouth, s + width, kNorth);
                wire(s + width, kNorth, s, kSouth);
            }
        }
    }

    // Deterministic XY routing with fat-channel selection.
    for (int s = 0; s < num_switches; ++s) {
        const int x = s % width;
        const int y = s / width;
        const auto& ports = dir_port[static_cast<std::size_t>(s)];
        const config::FatLinkPolicy policy = netCfg_.fatLinkPolicy;
        // The Random policy draws per routed header at run time;
        // give each switch its own split so the draws stay inside
        // the switch's shard (construction-order deterministic).
        sim::Rng* rng = rng_;
        if (policy == config::FatLinkPolicy::Random) {
            routeRngs_.push_back(
                std::make_unique<sim::Rng>(rng_->split()));
            rng = routeRngs_.back().get();
        }
        auto route =
            [=, this](sim::NodeId dest) -> router::RouteCandidates {
                const int dest_switch = dest.value() / eps;
                if (dest_switch == s) {
                    return router::RouteCandidates::single(
                        dest.value() % eps);
                }
                const int dx = dest_switch % width;
                const int dy = dest_switch / width;
                Direction dir;
                if (dx != x)
                    dir = dx > x ? kEast : kWest;
                else
                    dir = dy > y ? kSouth : kNorth;
                const int first =
                    ports[static_cast<std::size_t>(dir)];
                MW_ASSERT(first >= 0);
                switch (policy) {
                  case config::FatLinkPolicy::LeastLoaded: {
                    router::RouteCandidates rc;
                    rc.count = fat;
                    for (int k = 0; k < fat; ++k)
                        rc.ports[static_cast<std::size_t>(k)] =
                            first + k;
                    return rc;
                  }
                  case config::FatLinkPolicy::Static:
                    return router::RouteCandidates::single(
                        first + dest.value() % fat);
                  case config::FatLinkPolicy::Random:
                    return router::RouteCandidates::single(
                        first
                        + static_cast<int>(rng->uniformInt(
                            static_cast<std::uint64_t>(fat))));
                }
                sim::panic("unreachable fat-link policy");
            };
        routers_[static_cast<std::size_t>(s)]->setRouteFunction(route);

        // XY routes are static per destination for the least-loaded
        // and static policies (candidate sets do not depend on when
        // the route is asked for), so precompute them. The random
        // policy draws from the RNG per header and must stay
        // functional.
        if (policy != config::FatLinkPolicy::Random) {
            const int num_nodes = num_switches * eps;
            router::RouteTable table(
                static_cast<std::size_t>(num_nodes));
            for (int node = 0; node < num_nodes; ++node)
                table[static_cast<std::size_t>(node)] =
                    route(sim::NodeId(node));
            routers_[static_cast<std::size_t>(s)]->setRouteTable(
                std::move(table));
        }
    }
}

int
Network::switchOfNode(int node) const
{
    if (netCfg_.topology == config::TopologyKind::SingleSwitch)
        return 0;
    return node / netCfg_.endpointsPerSwitch;
}

sim::Tick
Network::minCrossShardDelay() const
{
    sim::Tick min_delay = sim::kTickNever;
    for (const CrossChannel& channel : crossChannels_) {
        if (min_delay == sim::kTickNever
            || channel.link->delay() < min_delay)
            min_delay = channel.link->delay();
    }
    return min_delay;
}

std::uint64_t
Network::totalBacklogFlits() const
{
    std::uint64_t total = 0;
    for (const auto& ni : nis_)
        total += ni->backlogFlits();
    return total;
}

void
Network::attachTracer(sim::Tracer& tracer)
{
    for (std::size_t i = 0; i < routers_.size(); ++i)
        routers_[i]->setTracer(&tracer, static_cast<int>(i));
    for (auto& ni : nis_)
        ni->setTracer(&tracer);
}

void
Network::registerStats(stats::Registry& registry) const
{
    for (const auto& sw : routers_)
        sw->registerStats(registry);
    for (std::size_t i = 0; i < nis_.size(); ++i) {
        const NetworkInterface* ni = nis_[i].get();
        registry.add("ni" + std::to_string(i) + ".flits_injected",
                     "flits this endpoint put on its link", [ni] {
                         return static_cast<double>(
                             ni->flitsInjected());
                     });
        registry.add("ni" + std::to_string(i) + ".backlog_flits",
                     "flits queued at the host", [ni] {
                         return static_cast<double>(
                             ni->backlogFlits());
                     });
    }
    for (const auto& link : links_) {
        const router::Link* raw = link.get();
        registry.add("link." + raw->name() + ".flits",
                     "flits transmitted", [raw] {
                         return static_cast<double>(
                             raw->flitRate().count());
                     });
    }
}

} // namespace mediaworm::network
