#include "network/network.hh"

#include <array>

#include "network/routing.hh"
#include "sim/logging.hh"

namespace mediaworm::network {

namespace {

/** Credit depth that never throttles an ejection sink. */
constexpr int kSinkCredits = 1 << 20;

/** Mesh directions, in port-assignment order. */
enum Direction { kEast = 0, kWest = 1, kSouth = 2, kNorth = 3 };

} // namespace

Network::Network(sim::Simulator& simulator,
                 const config::RouterConfig& router_cfg,
                 const config::NetworkConfig& net_cfg,
                 MetricsHub& metrics, sim::Rng& rng)
    : Network(std::vector<sim::Simulator*>{&simulator}, ShardPlan{},
              router_cfg, net_cfg, metrics, rng)
{
}

Network::Network(std::vector<sim::Simulator*> shard_sims,
                 const ShardPlan& plan,
                 const config::RouterConfig& router_cfg,
                 const config::NetworkConfig& net_cfg,
                 MetricsHub& metrics, sim::Rng& rng)
    : sims_(std::move(shard_sims)), plan_(plan), routerCfg_(router_cfg),
      netCfg_(net_cfg), metrics_(metrics), rng_(&rng)
{
    MW_ASSERT(!sims_.empty());
    MW_ASSERT(static_cast<int>(sims_.size()) == plan_.numShards
              || (plan_.trivial() && sims_.size() == 1));
    routerCfg_.validate();
    // The topology graph builder sizes the single switch from the
    // router hardware, so graph and router always agree.
    netCfg_.singleSwitchPorts = routerCfg_.numPorts;
    netCfg_.validate(routerCfg_.numPorts);
    linkDelay_ =
        static_cast<sim::Tick>(routerCfg_.linkDelayCycles
                               + routerCfg_.outputCycles)
        * routerCfg_.cycleTime();

    switch (netCfg_.topology) {
      case config::TopologyKind::SingleSwitch:
        MW_ASSERT(plan_.trivial());
        buildSingleSwitch();
        break;
      case config::TopologyKind::FatMesh:
        buildFatMesh();
        break;
      case config::TopologyKind::Mesh:
      case config::TopologyKind::Torus:
      case config::TopologyKind::Clos:
        buildRouted();
        break;
    }
}

sim::Simulator&
Network::simOfRouter(int r) const
{
    return *sims_[static_cast<std::size_t>(plan_.shardOfRouter(r))];
}

router::Link&
Network::newLink(const std::string& name, int sender_router,
                 int receiver_router)
{
    // Canonical channel keys in link-creation order: the same keys
    // in every execution mode, so same-tick link deliveries merge
    // identically whether the link is intra- or cross-shard.
    links_.push_back(std::make_unique<router::Link>(
        simOfRouter(sender_router), linkDelay_, name,
        router::ChannelIds::forLinkIndex(links_.size())));
    router::Link& link = *links_.back();

    const int sender_shard = plan_.shardOfRouter(sender_router);
    const int receiver_shard = plan_.shardOfRouter(receiver_router);
    link.bindShards(simOfRouter(sender_router),
                    simOfRouter(receiver_router));
    if (sender_shard != receiver_shard) {
        crossChannels_.push_back({&link, true, receiver_shard});
        crossChannels_.push_back({&link, false, sender_shard});
    }
    return link;
}

void
Network::attachEndpoint(router::WormholeRouter& sw, int sw_index,
                        int port, int node)
{
    auto ni = std::make_unique<NetworkInterface>(
        simOfRouter(sw_index), sim::NodeId(node), routerCfg_, metrics_,
        "ni" + std::to_string(node));

    router::Link& inj =
        newLink("inj" + std::to_string(node), sw_index, sw_index);
    sw.connectInputLink(port, inj);
    ni->connectInjectionLink(inj, routerCfg_.flitBufferDepth);

    router::Link& ej =
        newLink("ej" + std::to_string(node), sw_index, sw_index);
    sw.connectOutputLink(port, ej, kSinkCredits);
    ni->connectEjectionLink(ej);

    MW_ASSERT(static_cast<int>(nis_.size()) == node);
    nis_.push_back(std::move(ni));
}

void
Network::wireTopology(const Topology& topo)
{
    MW_ASSERT(topo.portsRequired() <= routerCfg_.numPorts);

    for (int r = 0; r < topo.numRouters(); ++r) {
        routers_.push_back(std::make_unique<router::WormholeRouter>(
            simOfRouter(r), routerCfg_, "router" + std::to_string(r)));
    }

    // Endpoints in node order (node n of a grid lives on switch
    // n / eps at port n % eps; Clos leaves follow the same pattern).
    nodeRouter_.resize(static_cast<std::size_t>(topo.numNodes()));
    for (int node = 0; node < topo.numNodes(); ++node) {
        const TopoEndpoint ep =
            topo.endpoints()[static_cast<std::size_t>(node)];
        nodeRouter_[static_cast<std::size_t>(node)] = ep.router;
        attachEndpoint(*routers_[static_cast<std::size_t>(ep.router)],
                       ep.router, ep.port, node);
    }

    // Inter-router channels in the graph's canonical order.
    for (const TopoChannel& ch : topo.channels()) {
        router::Link& link = newLink(
            "sw" + std::to_string(ch.srcRouter) + "p"
                + std::to_string(ch.srcPort) + "-sw"
                + std::to_string(ch.dstRouter) + "p"
                + std::to_string(ch.dstPort),
            ch.srcRouter, ch.dstRouter);
        routers_[static_cast<std::size_t>(ch.srcRouter)]
            ->connectOutputLink(ch.srcPort, link,
                                routerCfg_.flitBufferDepth);
        routers_[static_cast<std::size_t>(ch.dstRouter)]
            ->connectInputLink(ch.dstPort, link);
    }
}

void
Network::buildSingleSwitch()
{
    wireTopology(Topology::singleSwitch(routerCfg_.numPorts));

    // One endpoint per port: the destination id is the output port.
    routers_[0]->setRouteFunction([](sim::NodeId dest) {
        return router::RouteCandidates::single(dest.value());
    });
    // Static topology: precompute the table so headers route with an
    // array load instead of a std::function call.
    router::RouteTable table(
        static_cast<std::size_t>(routerCfg_.numPorts));
    for (int node = 0; node < routerCfg_.numPorts; ++node)
        table[static_cast<std::size_t>(node)] =
            router::RouteCandidates::single(node);
    routers_[0]->setRouteTable(std::move(table));
}

void
Network::buildRouted()
{
    const Topology topo = Topology::build(netCfg_);
    const RoutingTables tables =
        buildRouting(topo, netCfg_.effectiveRouting());
    // The routers copy their config at construction, so the VC-class
    // structure must be in place before wiring.
    routerCfg_.vcClasses = tables.vcClasses;
    routerCfg_.validate();
    wireTopology(topo);
    for (int r = 0; r < topo.numRouters(); ++r) {
        routers_[static_cast<std::size_t>(r)]->setRouteTable(
            tables.perRouter[static_cast<std::size_t>(r)]);
    }
}

void
Network::buildFatMesh()
{
    const int width = netCfg_.meshWidth;
    const int height = netCfg_.meshHeight;
    const int fat = netCfg_.fatFactor;
    const int eps = netCfg_.endpointsPerSwitch;
    const int num_switches = width * height;

    const Topology topo =
        Topology::fatMesh(width, height, fat, eps);
    wireTopology(topo);

    // Deterministic XY routing with fat-channel selection (the
    // paper's policy; kept as a closure because the Random policy
    // draws at route time).
    for (int s = 0; s < num_switches; ++s) {
        const int x = s % width;
        const int y = s / width;
        const std::array<int, 4> ports = {
            topo.dirPort(s, kEast), topo.dirPort(s, kWest),
            topo.dirPort(s, kSouth), topo.dirPort(s, kNorth)};
        const config::FatLinkPolicy policy = netCfg_.fatLinkPolicy;
        // The Random policy draws per routed header at run time;
        // give each switch its own split so the draws stay inside
        // the switch's shard (construction-order deterministic).
        sim::Rng* rng = rng_;
        if (policy == config::FatLinkPolicy::Random) {
            routeRngs_.push_back(
                std::make_unique<sim::Rng>(rng_->split()));
            rng = routeRngs_.back().get();
        }
        auto route =
            [=, this](sim::NodeId dest) -> router::RouteCandidates {
                const int dest_switch = dest.value() / eps;
                if (dest_switch == s) {
                    return router::RouteCandidates::single(
                        dest.value() % eps);
                }
                const int dx = dest_switch % width;
                const int dy = dest_switch / width;
                Direction dir;
                if (dx != x)
                    dir = dx > x ? kEast : kWest;
                else
                    dir = dy > y ? kSouth : kNorth;
                const int first =
                    ports[static_cast<std::size_t>(dir)];
                MW_ASSERT(first >= 0);
                switch (policy) {
                  case config::FatLinkPolicy::LeastLoaded: {
                    router::RouteCandidates rc;
                    rc.count = fat;
                    for (int k = 0; k < fat; ++k)
                        rc.ports[static_cast<std::size_t>(k)] =
                            first + k;
                    return rc;
                  }
                  case config::FatLinkPolicy::Static:
                    return router::RouteCandidates::single(
                        first + dest.value() % fat);
                  case config::FatLinkPolicy::Random:
                    return router::RouteCandidates::single(
                        first
                        + static_cast<int>(rng->uniformInt(
                            static_cast<std::uint64_t>(fat))));
                }
                sim::panic("unreachable fat-link policy");
            };
        routers_[static_cast<std::size_t>(s)]->setRouteFunction(route);

        // XY routes are static per destination for the least-loaded
        // and static policies (candidate sets do not depend on when
        // the route is asked for), so precompute them. The random
        // policy draws from the RNG per header and must stay
        // functional.
        if (policy != config::FatLinkPolicy::Random) {
            const int num_nodes = num_switches * eps;
            router::RouteTable table(
                static_cast<std::size_t>(num_nodes));
            for (int node = 0; node < num_nodes; ++node)
                table[static_cast<std::size_t>(node)] =
                    route(sim::NodeId(node));
            routers_[static_cast<std::size_t>(s)]->setRouteTable(
                std::move(table));
        }
    }
}

int
Network::switchOfNode(int node) const
{
    return nodeRouter_[static_cast<std::size_t>(node)];
}

sim::Tick
Network::minCrossShardDelay() const
{
    sim::Tick min_delay = sim::kTickNever;
    for (const CrossChannel& channel : crossChannels_) {
        if (min_delay == sim::kTickNever
            || channel.link->delay() < min_delay)
            min_delay = channel.link->delay();
    }
    return min_delay;
}

std::uint64_t
Network::totalBacklogFlits() const
{
    std::uint64_t total = 0;
    for (const auto& ni : nis_)
        total += ni->backlogFlits();
    return total;
}

void
Network::attachTracer(sim::Tracer& tracer)
{
    for (std::size_t i = 0; i < routers_.size(); ++i)
        routers_[i]->setTracer(&tracer, static_cast<int>(i));
    for (auto& ni : nis_)
        ni->setTracer(&tracer);
}

void
Network::registerStats(stats::Registry& registry) const
{
    for (const auto& sw : routers_)
        sw->registerStats(registry);
    for (std::size_t i = 0; i < nis_.size(); ++i) {
        const NetworkInterface* ni = nis_[i].get();
        registry.add("ni" + std::to_string(i) + ".flits_injected",
                     "flits this endpoint put on its link", [ni] {
                         return static_cast<double>(
                             ni->flitsInjected());
                     });
        registry.add("ni" + std::to_string(i) + ".backlog_flits",
                     "flits queued at the host", [ni] {
                         return static_cast<double>(
                             ni->backlogFlits());
                     });
    }
    for (const auto& link : links_) {
        const router::Link* raw = link.get();
        registry.add("link." + raw->name() + ".flits",
                     "flits transmitted", [raw] {
                         return static_cast<double>(
                             raw->flitRate().count());
                     });
    }
}

} // namespace mediaworm::network
